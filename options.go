package murphy

import (
	"runtime"

	"murphy/internal/core"
	"murphy/internal/explain"
	"murphy/internal/resilience"
	"murphy/internal/telemetry"
)

// Config re-exports the algorithm parameters of the MRF core; the zero value
// of any field falls back to the paper's defaults.
type Config = core.Config

// DefaultConfig returns the paper's parameter choices (B=10 features, W=4
// Gibbs rounds, 5000 Monte-Carlo samples, one-week training window).
func DefaultConfig() Config { return core.DefaultConfig() }

// RetryPolicy configures the retry arm of the resilient telemetry read path
// (attempt budget, backoff, jitter); it aliases the resilience layer's
// Policy so external callers can construct one without reaching into
// internal packages.
type RetryPolicy = resilience.Policy

// BreakerConfig tunes the circuit breaker of the resilient telemetry read
// path; zero fields fall back to defaults suited to per-diagnosis reads.
type BreakerConfig = resilience.BreakerConfig

// SourceStats counts what the resilient read path absorbed (reads, retries,
// failures, breaker rejections); see System.SourceStats.
type SourceStats = resilience.SourceStats

// FactorCache shares trained factors between Systems; see WithCaching.
type FactorCache = core.FactorCache

// FactorCacheStats reports a factor cache's hit/miss/occupancy counters; see
// System.FactorCacheStats.
type FactorCacheStats = core.FactorCacheStats

// NewFactorCache builds a shareable trained-factor cache holding up to
// capacity factors (<= 0 uses the default); entries are evicted LRU.
func NewFactorCache(capacity int) *FactorCache { return core.NewFactorCache(capacity) }

// FactorStore is the persistent incremental factor store behind
// WithIncrementalTraining: per-(entity, window, hyperparameters) sufficient
// statistics slid point by point instead of retrained from scratch, with
// drift-gated fallbacks to the full fit and crash-safe snapshot/restore.
type FactorStore = core.FactorStore

// FactorStoreStats reports the incremental trainer's hit/refit/drift
// counters; see System.FactorStoreStats.
type FactorStoreStats = core.FactorStoreStats

// NewFactorStore builds a shareable incremental factor store with the
// default drift threshold and refresh interval.
func NewFactorStore() *FactorStore { return core.NewFactorStore() }

// SamplerConfig bundles every knob of the batched Gibbs sampling kernel
// (precision, chains, early stopping, scratch sizing); see WithSampler.
type SamplerConfig = core.SamplerConfig

// Precision selects the floating-point width of the sampling kernel; see
// PrecisionFloat64 and PrecisionFloat32.
type Precision = core.Precision

const (
	// PrecisionFloat64 is the default kernel: bit-identical to the original
	// per-sample sampler (golden rankings are pinned against it).
	PrecisionFloat64 = core.PrecisionFloat64
	// PrecisionFloat32 is the fast path: float32 chain state, folded
	// regression terms, and a table-driven noise source — several times the
	// sampling throughput, validated against float64 by the metamorphic
	// equivalence suite rather than bit-compared.
	PrecisionFloat32 = core.PrecisionFloat32
)

// Option customizes a System.
type Option func(*System)

// WithConfig overrides the algorithm parameters.
func WithConfig(cfg Config) Option {
	return func(s *System) { s.cfg = cfg }
}

// WithSeeds sets the entities the relationship graph is grown from
// (typically the affected application's members, or the symptom entity).
// When unset, the graph covers every entity in the database.
func WithSeeds(seeds ...telemetry.EntityID) Option {
	return func(s *System) { s.seeds = seeds }
}

// WithApp seeds the relationship graph with the tagged members of an
// application, as operators do when a ticket names an affected app.
func WithApp(db *telemetry.DB, app string) Option {
	return func(s *System) { s.seeds = db.AppMembers(app) }
}

// WithMaxHops bounds the graph expansion from the seed set; negative (the
// default) expands the reachable component. The paper's incident dataset
// used four hops from the affected application.
func WithMaxHops(h int) Option {
	return func(s *System) { s.maxHop = h }
}

// WithThresholds overrides the explanation labeling thresholds.
func WithThresholds(th explain.Thresholds) Option {
	return func(s *System) { s.th = th }
}

// WithWorkers fans candidate evaluations out over n workers per Diagnose
// call. n <= 1 (including WithWorkers(0)) is valid and stays on the serial
// code path — no goroutines, no channels; results are identical either way,
// per the independently seeded samplers.
func WithWorkers(n int) Option {
	return func(s *System) {
		if n < 1 {
			n = 1
		}
		s.workers = n
	}
}

// WithParallelTraining fans the online training pass — per-series
// preprocessing and per-factor ridge fits — out over n pool workers per
// train. n <= 0 uses GOMAXPROCS. The trained model is bit-identical at any
// worker count (deterministic job order, per-slot outputs), so this is purely
// a latency knob; without it, training follows WithWorkers. The worker pool
// composes with the factor cache and honors context cancellation mid-pool.
func WithParallelTraining(n int) Option {
	return func(s *System) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.trainWorkers = n
	}
}

// WithSampler configures the batched Gibbs sampling kernel in one bundle
// (the survivor of WithChains/WithEarlyStop, which set the deprecated flat
// Config fields):
//
//   - Precision: PrecisionFloat64 (default, bit-identical to the original
//     sampler) or PrecisionFloat32 (the fast path — several times the
//     sampling throughput at float32 chain state).
//   - Chains: split each counterfactual test's draws across k independent
//     Gibbs chains with splitmix-derived RNG streams, run on up to
//     min(k, GOMAXPROCS) goroutines. For a fixed k the verdicts are
//     bit-identical at any goroutine count; 0 or 1 keeps the historical
//     single-stream sampler.
//   - EarlyStop / EarlyStopConfidence: sequential significance testing —
//     draws arrive in batches through a streaming Welch t-test and stop as
//     soon as the verdict at Alpha is decided with margin to spare
//     (confidence 0 uses the 0.999 default).
//   - ArenaSamples: pre-size the per-chain scratch vectors.
//
// Apply after WithConfig. A non-zero bundle field overrides the
// corresponding deprecated flat Config field (and option); zero-value bundle
// fields inherit them, so existing WithChains/WithEarlyStop callers keep
// their behavior.
func WithSampler(sc SamplerConfig) Option {
	return func(s *System) { s.cfg.Sampler = sc }
}

// WithChains splits each counterfactual test's Monte-Carlo draws across k
// independent Gibbs chains.
//
// Deprecated: use WithSampler(SamplerConfig{Chains: k}).
func WithChains(k int) Option {
	return func(s *System) {
		if k < 1 {
			k = 1
		}
		s.cfg.Chains = k
	}
}

// WithEarlyStop enables sequential significance testing at the given
// confidence (0 uses the 0.999 default).
//
// Deprecated: use WithSampler(SamplerConfig{EarlyStop: true,
// EarlyStopConfidence: confidence}).
func WithEarlyStop(confidence float64) Option {
	return func(s *System) {
		s.cfg.EarlyStop = true
		s.cfg.EarlyStopConfidence = confidence
	}
}

// Resilience bundles the resilient telemetry read path: an optional
// interposed source plus the retry/breaker layers that absorb its faults.
// The zero value changes nothing; set only the parts you need.
type Resilience struct {
	// Source replaces the database as the online-training read path — a
	// chaos injector in robustness drills, a remote collector in production.
	// Nil keeps the (infallible) database reads.
	Source telemetry.Source
	// Retry wraps the reads in backoff-retries for transient faults
	// (telemetry.ErrTransient). Nil adds no retry layer.
	Retry *RetryPolicy
	// Breaker adds a circuit breaker: a source failing persistently is
	// given a cooldown (reads fail fast and degrade to missing data)
	// instead of retry pressure. The breaker persists across Diagnose
	// calls. Nil adds no breaker.
	Breaker *BreakerConfig
}

// WithResilience configures the resilient telemetry read path in one bundle
// (the survivor of WithSource/WithRetry/WithBreaker). Reads that still fail
// after the configured resilience degrade to missing data and are reported
// via Report.ReadFailures and System.SourceStats. The factor cache is
// bypassed while a fallible read path is interposed (see WithCaching).
func WithResilience(r Resilience) Option {
	return func(s *System) {
		if r.Source != nil {
			s.src = r.Source
		}
		if r.Retry != nil {
			p := *r.Retry
			s.retry = &p
		}
		if r.Breaker != nil {
			c := *r.Breaker
			s.brkCfg = &c
		}
	}
}

// Caching bundles the trained-factor reuse configuration. Exactly one of
// Shared or Capacity is consulted: a non-nil Shared wins.
type Caching struct {
	// Capacity caps this System's own factor cache (<= 0 uses the
	// default). Ignored when Shared is set.
	Capacity int
	// Shared installs an existing cache, so several Systems over the same
	// database (e.g. one per symptom seed set) share trained factors.
	Shared *FactorCache
}

// WithCaching reuses trained factors across Diagnose and WhatIf calls (the
// survivor of WithFactorCache/WithSharedFactorCache): Murphy retrains its
// MRF online on every call, but between two calls at the same time slice
// every factor comes out identical, so an operator triaging several symptoms
// of one incident pays the ridge fits and feature selection only once.
// Behavior-preserving: rankings are bit-identical with the cache on or off.
// The cache is bypassed automatically while a fallible read path is
// interposed (see core.FactorCache for why).
func WithCaching(c Caching) Option {
	return func(s *System) {
		if c.Shared != nil {
			s.cache = c.Shared
			return
		}
		s.cache = core.NewFactorCache(c.Capacity)
	}
}

// IncrementalTraining bundles the amortized-training configuration. The
// zero value of every field inherits a default: a nil Store builds this
// System its own store, and non-positive thresholds keep the store's current
// policy (DefaultDriftThreshold / DefaultRefreshEvery for a fresh store).
type IncrementalTraining struct {
	// Store installs an existing incremental factor store, so several
	// Systems over the same database share slid statistics, or so a daemon
	// can snapshot/restore the store across restarts. Nil builds an own
	// store.
	Store *FactorStore
	// DriftThreshold is the MASE score of a factor's one-step-ahead
	// predictions above which the incremental path falls back to a full
	// refit. <= 0 inherits the store's current policy.
	DriftThreshold float64
	// RefreshEvery bounds how many window slides a factor's statistics may
	// accumulate before a scheduled full re-anchor. <= 0 inherits the
	// store's current policy.
	RefreshEvery int
}

// WithIncrementalTraining makes training amortized: instead of recomputing
// every factor's Gram matrix, correlation ranking, and robust statistics
// from scratch on each Diagnose call, the session keeps per-factor
// sufficient statistics in a FactorStore and slides them as the training
// window advances, falling back to the full (bit-identical) refit when the
// feature selection shifts, the drift score trips, or numeric conditioning
// degrades. Steady-state training cost drops by an order of magnitude on
// point-by-point replays at unchanged diagnosis output (rounding-bounded
// factors, property-tested).
//
// Like WithSampler, the bundle's non-zero fields override and zero fields
// inherit, so option order does not matter. The store subsumes the factor
// cache: when both WithCaching and WithIncrementalTraining are configured,
// the store takes over and the cache sees no traffic. Like the cache, the
// store is bypassed automatically while a fallible read path is interposed
// (WithResilience) or a custom trainer is in play.
func WithIncrementalTraining(it IncrementalTraining) Option {
	return func(s *System) {
		st := it.Store
		if st == nil {
			st = core.NewFactorStore()
		}
		st.SetPolicy(it.DriftThreshold, it.RefreshEvery)
		s.incStore = st
	}
}

// WithSource routes the online-training reads through src instead of the
// database directly.
//
// Deprecated: use WithResilience(Resilience{Source: src}).
func WithSource(src telemetry.Source) Option {
	return func(s *System) { s.src = src }
}

// WithRetry wraps the training-window reads in a retry policy.
//
// Deprecated: use WithResilience(Resilience{Retry: &p}).
func WithRetry(p RetryPolicy) Option {
	return func(s *System) { s.retry = &p }
}

// WithBreaker adds a circuit breaker on the telemetry read path.
//
// Deprecated: use WithResilience(Resilience{Breaker: &cfg}).
func WithBreaker(cfg BreakerConfig) Option {
	return func(s *System) { s.brkCfg = &cfg }
}

// WithFactorCache gives this System its own trained-factor cache.
//
// Deprecated: use WithCaching(Caching{Capacity: capacity}).
func WithFactorCache(capacity int) Option {
	return func(s *System) { s.cache = core.NewFactorCache(capacity) }
}

// WithSharedFactorCache installs an existing trained-factor cache.
//
// Deprecated: use WithCaching(Caching{Shared: c}).
func WithSharedFactorCache(c *FactorCache) Option {
	return func(s *System) { s.cache = c }
}
