package degrade

import (
	"errors"
	"math/rand"
	"testing"

	"murphy/internal/telemetry"
)

func sampleDB(t *testing.T) *telemetry.DB {
	t.Helper()
	db := telemetry.NewDB(60)
	for _, id := range []telemetry.EntityID{"a", "b", "c", "d"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeVM, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][2]telemetry.EntityID{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if err := db.Associate(p[0], p[1], telemetry.Bidirectional); err != nil {
			t.Fatal(err)
		}
	}
	for tt := 0; tt < 20; tt++ {
		for _, id := range []telemetry.EntityID{"a", "b", "c", "d"} {
			if err := db.Observe(id, telemetry.MetricCPU, tt, float64(tt)); err != nil {
				t.Fatal(err)
			}
			if err := db.Observe(id, telemetry.MetricMem, tt, float64(tt)*2); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestMissingEdge(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(1))
	c, pair, err := MissingEdge(db, Protected{"a": true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.HasEdge(pair[0], pair[1]) || c.HasEdge(pair[1], pair[0]) {
		t.Fatal("edge should be gone in both directions")
	}
	if !db.HasEdge(pair[0], pair[1]) {
		t.Fatal("original must be untouched")
	}
	if pair[0] == "a" || pair[1] == "a" {
		t.Fatal("protected entity's edges must not be chosen")
	}
	// All protected: nothing removable.
	if _, _, err := MissingEdge(db, Protected{"a": true, "b": true, "c": true, "d": true}, rng); err == nil {
		t.Fatal("no removable edges should error")
	}
}

func TestMissingEntity(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(2))
	prot := Protected{"a": true, "d": true}
	c, victim, err := MissingEntity(db, prot, rng)
	if err != nil {
		t.Fatal(err)
	}
	if prot[victim] {
		t.Fatal("protected entity removed")
	}
	if c.HasEntity(victim) {
		t.Fatal("victim should be gone")
	}
	if !db.HasEntity(victim) {
		t.Fatal("original must be untouched")
	}
	all := Protected{"a": true, "b": true, "c": true, "d": true}
	if _, _, err := MissingEntity(db, all, rng); err == nil {
		t.Fatal("no removable entities should error")
	}
}

func TestMissingMetric(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(3))
	c, metric, err := MissingMetric(db, "b", rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.Series("b", metric) != nil {
		t.Fatal("metric should be gone")
	}
	if db.Series("b", metric) == nil {
		t.Fatal("original must be untouched")
	}
	if len(c.MetricNames("b")) != 1 {
		t.Fatal("exactly one metric should be removed")
	}
	empty := telemetry.NewDB(60)
	if err := empty.AddEntity(&telemetry.Entity{ID: "x", Type: telemetry.TypeVM, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MissingMetric(empty, "x", rng); err == nil {
		t.Fatal("no metrics should error")
	}
}

func TestMissingValues(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(4))
	c, n, err := MissingValues(db, 1.0, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("affected = %d, want all 4", n)
	}
	// History erased (marked missing), tail intact.
	if v := c.At("a", telemetry.MetricCPU, 5); v == v {
		t.Fatalf("history should be missing, got %v", v)
	}
	if c.At("a", telemetry.MetricCPU, 17) != 17 {
		t.Fatal("in-incident tail must survive")
	}
	if db.At("a", telemetry.MetricCPU, 5) != 5 {
		t.Fatal("original must be untouched")
	}
	if _, _, err := MissingValues(db, 0, 5, rng); err == nil {
		t.Fatal("zero fraction should error")
	}
	if _, _, err := MissingValues(db, 0.5, 99, rng); err == nil {
		t.Fatal("keepFrom past timeline should error")
	}
}

func TestMissingValuesFraction(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(5))
	c, n, err := MissingValues(db, 0.5, 10, rng)
	// A fractional draw either corrupts at least one entity or reports the
	// typed sentinel — it never hands back a pristine copy as corrupted.
	if errors.Is(err, ErrNoneSelected) {
		if c != nil || n != 0 {
			t.Fatalf("sentinel with db=%v n=%d", c, n)
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 4 {
		t.Fatalf("affected = %d out of range", n)
	}
}

func TestMissingValuesNoneSelectedSentinel(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(6))
	// A vanishingly small fraction never selects an entity: the caller must
	// get the typed sentinel, not a pristine clone passed off as corrupted.
	c, n, err := MissingValues(db, 1e-12, 10, rng)
	if !errors.Is(err, ErrNoneSelected) {
		t.Fatalf("err = %v, want ErrNoneSelected", err)
	}
	if c != nil || n != 0 {
		t.Fatalf("no-op corruption should return nothing, got db=%v n=%d", c, n)
	}
}

func TestMissingValuesZeroMetricEntities(t *testing.T) {
	// A database of metric-less entities has no history to erase anywhere:
	// even fraction 1.0 must report ErrNoneSelected, and such entities never
	// count as victims.
	db := telemetry.NewDB(60)
	for _, id := range []telemetry.EntityID{"bare1", "bare2"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeVM, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	// One entity with metrics so the timeline is non-empty.
	if err := db.AddEntity(&telemetry.Entity{ID: "rich", Type: telemetry.TypeVM, Name: "rich"}); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 20; tt++ {
		if err := db.Observe("rich", telemetry.MetricCPU, tt, float64(tt)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	c, n, err := MissingValues(db, 1.0, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("affected = %d, want just the entity that has metrics", n)
	}
	if v := c.At("rich", telemetry.MetricCPU, 3); v == v {
		t.Fatal("rich entity's history should be erased")
	}
}

func TestMissingValuesKeepFromBoundary(t *testing.T) {
	db := sampleDB(t) // 20 slices
	rng := rand.New(rand.NewSource(8))
	// keepFrom == db.Len()-1: everything except the very last slice erased.
	c, n, err := MissingValues(db, 1.0, db.Len()-1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("affected = %d, want all 4", n)
	}
	for _, id := range []telemetry.EntityID{"a", "b", "c", "d"} {
		if v := c.At(id, telemetry.MetricCPU, db.Len()-2); v == v {
			t.Fatalf("%s slice %d should be erased, got %v", id, db.Len()-2, v)
		}
		if v := c.At(id, telemetry.MetricCPU, db.Len()-1); v != float64(db.Len()-1) {
			t.Fatalf("%s last slice must survive, got %v", id, v)
		}
	}
	// keepFrom == db.Len() is outside the timeline and must error.
	if _, _, err := MissingValues(db, 1.0, db.Len(), rng); err == nil || errors.Is(err, ErrNoneSelected) {
		t.Fatalf("keepFrom at timeline length should be a validation error, got %v", err)
	}
}

func TestMissingValuesDeterministicSeed(t *testing.T) {
	run := func() (*telemetry.DB, int) {
		db := sampleDB(t)
		c, n, err := MissingValues(db, 0.5, 12, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		return c, n
	}
	c1, n1 := run()
	c2, n2 := run()
	if n1 != n2 {
		t.Fatalf("same seed, different victim counts: %d vs %d", n1, n2)
	}
	for _, id := range []telemetry.EntityID{"a", "b", "c", "d"} {
		for _, metric := range []string{telemetry.MetricCPU, telemetry.MetricMem} {
			for tt := 0; tt < 20; tt++ {
				v1, v2 := c1.At(id, metric, tt), c2.At(id, metric, tt)
				same := v1 == v2 || (v1 != v1 && v2 != v2) // NaN-aware
				if !same {
					t.Fatalf("same seed diverged at %s/%s[%d]: %v vs %v", id, metric, tt, v1, v2)
				}
			}
		}
	}
}

func TestMissingEdgeAllProtected(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(10))
	// Protecting every other endpoint leaves no removable pair even though
	// unprotected entities exist.
	if _, _, err := MissingEdge(db, Protected{"b": true, "d": true}, rng); err == nil {
		t.Fatal("no removable edges should error")
	}
}
