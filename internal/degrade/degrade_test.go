package degrade

import (
	"math/rand"
	"testing"

	"murphy/internal/telemetry"
)

func sampleDB(t *testing.T) *telemetry.DB {
	t.Helper()
	db := telemetry.NewDB(60)
	for _, id := range []telemetry.EntityID{"a", "b", "c", "d"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeVM, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][2]telemetry.EntityID{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if err := db.Associate(p[0], p[1], telemetry.Bidirectional); err != nil {
			t.Fatal(err)
		}
	}
	for tt := 0; tt < 20; tt++ {
		for _, id := range []telemetry.EntityID{"a", "b", "c", "d"} {
			if err := db.Observe(id, telemetry.MetricCPU, tt, float64(tt)); err != nil {
				t.Fatal(err)
			}
			if err := db.Observe(id, telemetry.MetricMem, tt, float64(tt)*2); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestMissingEdge(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(1))
	c, pair, err := MissingEdge(db, Protected{"a": true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.HasEdge(pair[0], pair[1]) || c.HasEdge(pair[1], pair[0]) {
		t.Fatal("edge should be gone in both directions")
	}
	if !db.HasEdge(pair[0], pair[1]) {
		t.Fatal("original must be untouched")
	}
	if pair[0] == "a" || pair[1] == "a" {
		t.Fatal("protected entity's edges must not be chosen")
	}
	// All protected: nothing removable.
	if _, _, err := MissingEdge(db, Protected{"a": true, "b": true, "c": true, "d": true}, rng); err == nil {
		t.Fatal("no removable edges should error")
	}
}

func TestMissingEntity(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(2))
	prot := Protected{"a": true, "d": true}
	c, victim, err := MissingEntity(db, prot, rng)
	if err != nil {
		t.Fatal(err)
	}
	if prot[victim] {
		t.Fatal("protected entity removed")
	}
	if c.HasEntity(victim) {
		t.Fatal("victim should be gone")
	}
	if !db.HasEntity(victim) {
		t.Fatal("original must be untouched")
	}
	all := Protected{"a": true, "b": true, "c": true, "d": true}
	if _, _, err := MissingEntity(db, all, rng); err == nil {
		t.Fatal("no removable entities should error")
	}
}

func TestMissingMetric(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(3))
	c, metric, err := MissingMetric(db, "b", rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.Series("b", metric) != nil {
		t.Fatal("metric should be gone")
	}
	if db.Series("b", metric) == nil {
		t.Fatal("original must be untouched")
	}
	if len(c.MetricNames("b")) != 1 {
		t.Fatal("exactly one metric should be removed")
	}
	empty := telemetry.NewDB(60)
	if err := empty.AddEntity(&telemetry.Entity{ID: "x", Type: telemetry.TypeVM, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MissingMetric(empty, "x", rng); err == nil {
		t.Fatal("no metrics should error")
	}
}

func TestMissingValues(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(4))
	c, n, err := MissingValues(db, 1.0, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("affected = %d, want all 4", n)
	}
	// History erased (marked missing), tail intact.
	if v := c.At("a", telemetry.MetricCPU, 5); v == v {
		t.Fatalf("history should be missing, got %v", v)
	}
	if c.At("a", telemetry.MetricCPU, 17) != 17 {
		t.Fatal("in-incident tail must survive")
	}
	if db.At("a", telemetry.MetricCPU, 5) != 5 {
		t.Fatal("original must be untouched")
	}
	if _, _, err := MissingValues(db, 0, 5, rng); err == nil {
		t.Fatal("zero fraction should error")
	}
	if _, _, err := MissingValues(db, 0.5, 99, rng); err == nil {
		t.Fatal("keepFrom past timeline should error")
	}
}

func TestMissingValuesFraction(t *testing.T) {
	db := sampleDB(t)
	rng := rand.New(rand.NewSource(5))
	_, n, err := MissingValues(db, 0.5, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n < 0 || n > 4 {
		t.Fatalf("affected = %d out of range", n)
	}
}
