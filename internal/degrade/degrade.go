// Package degrade corrupts a telemetry database in the four ways Table 2
// evaluates robustness against: a missing association edge, a missing
// entity, a missing metric on the root-cause entity, and missing historical
// values for a fraction of entities. Every operation works on a clone so the
// pristine database survives for the next corruption.
package degrade

import (
	"errors"
	"fmt"
	"math/rand"

	"murphy/internal/telemetry"
	"murphy/internal/timeseries"
)

// ErrNoneSelected reports that a randomized corruption selected zero
// victims, leaving the database effectively pristine. Harness callers must
// treat it as "retry with more randomness", never as a successful
// corruption: scoring an uncorrupted run as a robustness pass silently
// inflates Table 2.
var ErrNoneSelected = errors.New("degrade: corruption selected no victims")

// Protected marks entities a corruption must not delete outright (the
// symptom entity and the ground-truth entity: removing those changes the
// question, not the data quality).
type Protected map[telemetry.EntityID]bool

// MissingEdge removes one random association (both directions) between a
// non-protected entity pair that has an edge — the "missing RPC parent link"
// case. It returns the corrupted clone and the removed pair.
func MissingEdge(db *telemetry.DB, prot Protected, rng *rand.Rand) (*telemetry.DB, [2]telemetry.EntityID, error) {
	c := db.Clone()
	type pair struct{ a, b telemetry.EntityID }
	var pairs []pair
	for _, a := range c.Entities() {
		if prot[a] {
			continue
		}
		for _, b := range c.OutNeighbors(a) {
			if prot[b] || a >= b {
				continue
			}
			pairs = append(pairs, pair{a, b})
		}
	}
	if len(pairs) == 0 {
		return nil, [2]telemetry.EntityID{}, fmt.Errorf("degrade: no removable edges")
	}
	p := pairs[rng.Intn(len(pairs))]
	c.RemoveEdge(p.a, p.b)
	c.RemoveEdge(p.b, p.a)
	return c, [2]telemetry.EntityID{p.a, p.b}, nil
}

// MissingEntity removes one random non-protected entity with all its metrics
// and associations.
func MissingEntity(db *telemetry.DB, prot Protected, rng *rand.Rand) (*telemetry.DB, telemetry.EntityID, error) {
	c := db.Clone()
	var victims []telemetry.EntityID
	for _, id := range c.Entities() {
		if !prot[id] {
			victims = append(victims, id)
		}
	}
	if len(victims) == 0 {
		return nil, "", fmt.Errorf("degrade: no removable entities")
	}
	v := victims[rng.Intn(len(victims))]
	c.RemoveEntity(v)
	return c, v, nil
}

// MissingMetric removes one random metric series from the given entity (the
// paper removes a metric of the root-cause entity).
func MissingMetric(db *telemetry.DB, entity telemetry.EntityID, rng *rand.Rand) (*telemetry.DB, string, error) {
	names := db.MetricNames(entity)
	if len(names) == 0 {
		return nil, "", fmt.Errorf("degrade: entity %q has no metrics", entity)
	}
	c := db.Clone()
	m := names[rng.Intn(len(names))]
	c.RemoveMetric(entity, m)
	return c, m, nil
}

// MissingValues erases the historical values (everything before keepFrom) of
// a random fraction of entities, leaving the in-incident tail intact — the
// newly-spawned-entity case. It returns the corrupted clone and how many
// entities were affected. When the draw selects no entity with metrics to
// erase (tiny fraction, or a database of metric-less entities), it returns
// ErrNoneSelected so the caller never mistakes a pristine copy for a
// corrupted one.
func MissingValues(db *telemetry.DB, fraction float64, keepFrom int, rng *rand.Rand) (*telemetry.DB, int, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, 0, fmt.Errorf("degrade: fraction %v out of (0,1]", fraction)
	}
	if keepFrom < 0 || keepFrom >= db.Len() {
		return nil, 0, fmt.Errorf("degrade: keepFrom %d outside timeline", keepFrom)
	}
	c := db.Clone()
	n := 0
	for _, id := range c.Entities() {
		if rng.Float64() >= fraction {
			continue
		}
		// An entity with no metric series has no history to erase; it does
		// not count as a victim.
		if len(c.MetricNames(id)) == 0 {
			continue
		}
		n++
		for _, metric := range c.MetricNames(id) {
			s := c.Series(id, metric)
			for t := 0; t < keepFrom && t < s.Len(); t++ {
				// Erase the observation. Consumers fill placeholders at
				// training time (Murphy's edge-case rule) but can still see
				// that the point was never observed.
				s.Set(t, timeseries.Missing)
			}
		}
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("degrade: fraction %v erased no history: %w", fraction, ErrNoneSelected)
	}
	return c, n, nil
}
