package anomaly

import (
	"math/rand"
	"testing"

	"murphy/internal/telemetry"
)

func symptomDB(t *testing.T) *telemetry.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	db := telemetry.NewDB(600)
	for _, e := range []*telemetry.Entity{
		{ID: "a", Type: telemetry.TypeVM, Name: "a", App: "shop"},
		{ID: "b", Type: telemetry.TypeVM, Name: "b", App: "shop"},
		{ID: "fresh", Type: telemetry.TypeVM, Name: "fresh", App: "shop"},
		{ID: "other", Type: telemetry.TypeVM, Name: "other", App: "blog"},
	} {
		if err := db.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	total := 100
	for tt := 0; tt < total; tt++ {
		// a: spikes high at the end; b: quiet; other: spikes but wrong app.
		av := 10 + rng.NormFloat64()
		if tt == total-1 {
			av = 50
		}
		if err := db.Observe("a", telemetry.MetricCPU, tt, av); err != nil {
			t.Fatal(err)
		}
		if err := db.Observe("a", telemetry.MetricMem, tt, 30+rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
		if err := db.Observe("b", telemetry.MetricCPU, tt, 20+rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
		ov := 5 + rng.NormFloat64()
		if tt == total-1 {
			ov = 80
		}
		if err := db.Observe("other", telemetry.MetricCPU, tt, ov); err != nil {
			t.Fatal(err)
		}
	}
	// fresh has only the current observation: insufficient history.
	if err := db.Observe("fresh", telemetry.MetricCPU, total-1, 99); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestScanEntityFindsSpike(t *testing.T) {
	db := symptomDB(t)
	d := NewDetector()
	got := d.ScanEntity(db, "a", db.Len()-1)
	if len(got) != 1 {
		t.Fatalf("symptoms = %+v, want exactly the CPU spike", got)
	}
	s := got[0]
	if s.Metric != telemetry.MetricCPU || !s.High || s.Z < d.ZThreshold {
		t.Fatalf("symptom = %+v", s)
	}
}

func TestScanEntityQuiet(t *testing.T) {
	db := symptomDB(t)
	d := NewDetector()
	if got := d.ScanEntity(db, "b", db.Len()-1); len(got) != 0 {
		t.Fatalf("quiet entity should have no symptoms, got %+v", got)
	}
}

func TestScanEntitySkipsInsufficientHistory(t *testing.T) {
	db := symptomDB(t)
	d := NewDetector()
	if got := d.ScanEntity(db, "fresh", db.Len()-1); len(got) != 0 {
		t.Fatalf("entity without history must be skipped, got %+v", got)
	}
}

func TestScanAppScopedAndSorted(t *testing.T) {
	db := symptomDB(t)
	d := NewDetector()
	got := d.ScanApp(db, "shop", db.Len()-1)
	if len(got) != 1 || got[0].Entity != "a" {
		t.Fatalf("app scan = %+v", got)
	}
	// The blog app's entity must not leak into shop's scan.
	for _, s := range got {
		if s.Entity == "other" {
			t.Fatal("wrong-app entity in scan")
		}
	}
	if got := d.ScanApp(db, "ghost-app", db.Len()-1); len(got) != 0 {
		t.Fatal("unknown app should scan empty")
	}
}

func TestLowDirectionSymptom(t *testing.T) {
	db := telemetry.NewDB(600)
	if err := db.AddEntity(&telemetry.Entity{ID: "x", Type: telemetry.TypeVM, Name: "x", App: "a"}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for tt := 0; tt < 60; tt++ {
		v := 100 + rng.NormFloat64()
		if tt == 59 {
			v = 5 // collapse
		}
		if err := db.Observe("x", telemetry.MetricThroughput, tt, v); err != nil {
			t.Fatal(err)
		}
	}
	got := NewDetector().ScanEntity(db, "x", 59)
	if len(got) != 1 || got[0].High {
		t.Fatalf("collapse should be a low symptom, got %+v", got)
	}
}

func TestScanAppOrdersByMagnitude(t *testing.T) {
	db := telemetry.NewDB(600)
	for _, id := range []telemetry.EntityID{"big", "small"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeVM, Name: string(id), App: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for tt := 0; tt < 60; tt++ {
		bv, sv := 10+rng.NormFloat64(), 10+rng.NormFloat64()
		if tt == 59 {
			bv, sv = 200, 50 // both anomalous, big more so
		}
		if err := db.Observe("big", telemetry.MetricCPU, tt, bv); err != nil {
			t.Fatal(err)
		}
		if err := db.Observe("small", telemetry.MetricCPU, tt, sv); err != nil {
			t.Fatal(err)
		}
	}
	got := NewDetector().ScanApp(db, "a", 59)
	if len(got) != 2 {
		t.Fatalf("symptoms = %+v", got)
	}
	if got[0].Entity != "big" || got[1].Entity != "small" {
		t.Fatalf("order wrong: %+v", got)
	}
}

func TestScanAppTieBreaking(t *testing.T) {
	// Two entities with identical series: |z| ties break by entity then
	// metric name, deterministically.
	db := telemetry.NewDB(600)
	for _, id := range []telemetry.EntityID{"b-ent", "a-ent"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeVM, Name: string(id), App: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	for tt := 0; tt < 40; tt++ {
		v := float64(10)
		if tt == 39 {
			v = 100
		}
		// Slight jitter so std is non-zero but identical across entities.
		v += float64(tt % 2)
		for _, id := range []telemetry.EntityID{"b-ent", "a-ent"} {
			if err := db.Observe(id, telemetry.MetricCPU, tt, v); err != nil {
				t.Fatal(err)
			}
			if err := db.Observe(id, telemetry.MetricMem, tt, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := NewDetector().ScanApp(db, "a", 39)
	if len(got) != 4 {
		t.Fatalf("symptoms = %d, want 4", len(got))
	}
	if got[0].Entity != "a-ent" || got[0].Metric != telemetry.MetricCPU {
		t.Fatalf("tie-break order wrong: %+v", got[:2])
	}
	if got[1].Entity != "a-ent" || got[1].Metric != telemetry.MetricMem {
		t.Fatalf("metric tie-break wrong: %+v", got[:2])
	}
}
