// Package anomaly identifies problematic symptoms (Appendix A.1): when a
// trouble ticket names an affected application but not a concrete (entity,
// metric) pair, Murphy scans the application's entities for metrics that are
// anomalous in the current time slice under preset conservative thresholds,
// and feeds each hit to the diagnosis engine as a symptom.
package anomaly

import (
	"sort"

	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// Detector scans entity metrics for threshold violations.
type Detector struct {
	// ZThreshold is the minimum |z| (vs trailing history) for a metric to
	// count as a problematic symptom.
	ZThreshold float64
	// HistoryWindow is how many trailing slices (excluding the current one)
	// form the baseline.
	HistoryWindow int
	// MinHistory is the minimum number of baseline points required; newer
	// entities are skipped rather than misjudged.
	MinHistory int
}

// NewDetector returns a detector with the conservative defaults used in the
// evaluation (z >= 3 against up to one day of history).
func NewDetector() *Detector {
	return &Detector{ZThreshold: 3, HistoryWindow: 144, MinHistory: 8}
}

// ScoredSymptom is a detected symptom with its anomaly magnitude.
type ScoredSymptom struct {
	telemetry.Symptom
	Z float64 // signed z-score of the current value vs history
}

// Score returns the signed z-score of (id, metric)'s value at slice now
// against the trailing-history baseline, regardless of ZThreshold — the query
// surface reports the score for healthy metrics too. ok is false when nothing
// is observed at now or the baseline has fewer than MinHistory points.
func (d *Detector) Score(db *telemetry.DB, id telemetry.EntityID, metric string, now int) (z float64, ok bool) {
	lo := now - d.HistoryWindow
	if lo < 0 {
		lo = 0
	}
	// Read through the copying DB accessors (At/RawWindow), not the shared
	// Series pointer: the always-on daemon scores metrics while its ingest
	// goroutine appends, and only the DB methods synchronize with the append
	// path.
	cur := db.At(id, metric, now)
	if cur != cur { // NaN: nothing observed now
		return 0, false
	}
	hist := db.RawWindow(id, metric, lo, now)
	clean := hist[:0]
	for _, v := range hist {
		if v == v {
			clean = append(clean, v)
		}
	}
	if len(clean) < d.MinHistory {
		return 0, false
	}
	return stats.ZScore(cur, clean), true
}

// ScanEntity returns the problematic symptoms of one entity at slice now.
func (d *Detector) ScanEntity(db *telemetry.DB, id telemetry.EntityID, now int) []ScoredSymptom {
	var out []ScoredSymptom
	for _, metric := range db.MetricNames(id) {
		z, ok := d.Score(db, id, metric, now)
		if !ok {
			continue
		}
		if z >= d.ZThreshold || z <= -d.ZThreshold {
			out = append(out, ScoredSymptom{
				Symptom: telemetry.Symptom{Entity: id, Metric: metric, High: z > 0},
				Z:       z,
			})
		}
	}
	return out
}

// ScanApp returns the problematic symptoms across all entities of an
// application at slice now, most anomalous first.
func (d *Detector) ScanApp(db *telemetry.DB, app string, now int) []ScoredSymptom {
	return d.scanIDs(db, db.AppMembers(app), now)
}

// ScanAll returns the problematic symptoms across every entity in the
// database at slice now, most anomalous first. The always-on daemon's
// continuous symptom detector runs it over each fresh window.
func (d *Detector) ScanAll(db *telemetry.DB, now int) []ScoredSymptom {
	return d.scanIDs(db, db.Entities(), now)
}

func (d *Detector) scanIDs(db *telemetry.DB, ids []telemetry.EntityID, now int) []ScoredSymptom {
	var out []ScoredSymptom
	for _, id := range ids {
		out = append(out, d.ScanEntity(db, id, now)...)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Z, out[j].Z
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
