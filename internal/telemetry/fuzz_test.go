package telemetry

import (
	"bytes"
	"testing"
)

// fuzzSeedSnapshot builds a small valid snapshot for the corpus.
func fuzzSeedSnapshot() []byte {
	db := NewDB(60)
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(db.AddEntity(&Entity{ID: "vm-1", Type: TypeVM, App: "shop"}))
	must(db.AddEntity(&Entity{ID: "host-1", Type: TypeNode}))
	must(db.Associate("vm-1", "host-1", Bidirectional))
	must(db.Observe("vm-1", MetricCPU, 0, 0.5))
	must(db.Observe("vm-1", MetricCPU, 1, 0.7))
	must(db.Observe("host-1", MetricCPU, 0, 0.2))
	must(db.Observe("host-1", MetricCPU, 1, 0.3))
	must(db.RecordEvent(Event{Slice: 1, Entity: "vm-1", Kind: EventConfigChanged, Detail: "resize"}))
	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadJSON checks that snapshot ingestion never panics on arbitrary
// bytes, and that any accepted snapshot survives a write→read→write round
// trip with identical serialized bytes (WriteJSON is deterministic: ordered
// entities, sorted edges, sorted JSON object keys).
func FuzzReadJSON(f *testing.F) {
	f.Add(fuzzSeedSnapshot())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"interval_seconds":1,"entities":[{"id":"a"}],"edges":[["a","a"]],"series":{"a":{"cpu":[1,2]}}}`))
	f.Add([]byte(`{"interval_seconds":-5,"entities":[{"id":"a"},{"id":"a"}],"series":{"b":{"m":[0]}}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"series":{"x":{"m":[1e308,-1e308,0.0000001]}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var first bytes.Buffer
		if err := db.WriteJSON(&first); err != nil {
			t.Fatalf("accepted snapshot failed to serialize: %v", err)
		}
		db2, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, first.String())
		}
		if db.Len() != db2.Len() || db.NumEntities() != db2.NumEntities() {
			t.Fatalf("round trip changed shape: %d slices/%d entities vs %d/%d",
				db.Len(), db.NumEntities(), db2.Len(), db2.NumEntities())
		}
		var second bytes.Buffer
		if err := db2.WriteJSON(&second); err != nil {
			t.Fatalf("second serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write→read→write is not a fixed point:\n first: %s\nsecond: %s", first.String(), second.String())
		}
	})
}
