package telemetry

import (
	"context"
	"errors"
)

// ErrTransient classifies a telemetry read failure as transient: the read
// may succeed if retried (a flaky collector connection, a momentarily
// overloaded shard). Wrappers that inject or surface such faults wrap this
// sentinel so retry policies can distinguish them from permanent failures.
var ErrTransient = errors.New("telemetry: transient read fault")

// IsTransient reports whether err is (or wraps) a transient read fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Source is the read-side interface the diagnosis core consumes during
// online training. *DB satisfies it directly (and never fails); wrappers
// interpose behavior on the read path — internal/chaos injects faults,
// internal/resilience absorbs them with retries and a circuit breaker.
//
// Reads take a context so a slow or stalled source can be abandoned when
// the diagnosis deadline expires, and return an error so transient faults
// can propagate instead of silently yielding empty data.
type Source interface {
	// Len returns the number of time slices on the shared grid.
	Len() int
	// Entities returns all entity IDs in a stable order.
	Entities() []EntityID
	// MetricNames returns the sorted metric names recorded for an entity.
	MetricNames(id EntityID) []string
	// ReadRawWindow returns a copy of (id, metric) over [lo, hi) with
	// missing observations preserved as NaN, like DB.RawWindow.
	ReadRawWindow(ctx context.Context, id EntityID, metric string, lo, hi int) ([]float64, error)
}

// ReadRawWindow implements Source over the in-memory database. It never
// fails and ignores the context: an in-process map read cannot stall.
func (db *DB) ReadRawWindow(_ context.Context, id EntityID, metric string, lo, hi int) ([]float64, error) {
	return db.RawWindow(id, metric, lo, hi), nil
}
