package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestDBConcurrentAppendWhileRead hammers every write-path method against
// every read-path method under -race: the always-on daemon appends ingest
// batches while diagnosis workers and the symptom detector read windows, so
// the DB must serialize the two without corrupting either.
func TestDBConcurrentAppendWhileRead(t *testing.T) {
	db := NewDB(60)
	for i := 0; i < 4; i++ {
		id := EntityID(fmt.Sprintf("vm-%d", i))
		if err := db.AddEntity(&Entity{ID: id, Type: TypeVM, Name: string(id), App: "shop"}); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 50; s++ {
			if err := db.Observe(id, MetricCPU, s, float64(s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Associate("vm-0", "vm-1", Directed); err != nil {
		t.Fatal(err)
	}

	const writers, readers, rounds = 4, 8, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := EntityID(fmt.Sprintf("vm-%d", w))
			for i := 0; i < rounds; i++ {
				t0 := 50 + i
				if err := db.Observe(id, MetricCPU, t0, float64(i)); err != nil {
					t.Error(err)
					return
				}
				if i%25 == 0 {
					_ = db.RecordEvent(Event{Slice: t0, Kind: EventConfigChanged, Entity: id, Detail: "soak"})
				}
				if i%50 == 0 {
					nid := EntityID(fmt.Sprintf("vm-%d-extra-%d", w, i))
					if err := db.AddEntity(&Entity{ID: nid, Type: TypeVM, Name: string(nid)}); err != nil {
						t.Error(err)
						return
					}
					_ = db.Associate(id, nid, Directed)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			id := EntityID(fmt.Sprintf("vm-%d", r%writers))
			for i := 0; i < rounds; i++ {
				now := db.Len() - 1
				_ = db.At(id, MetricCPU, now)
				_ = db.RawWindow(id, MetricCPU, 0, now+1)
				_ = db.Window(id, MetricCPU, 0, now+1)
				_ = db.MetricNames(id)
				_ = db.Entities()
				_ = db.OutNeighbors(id)
				_ = db.EventsSince(0)
				_ = db.HasEntity(id)
			}
		}(r)
	}
	wg.Wait()

	// Post-hammer sanity: the grid advanced and the original points survived.
	if got := db.Len(); got < 50+rounds {
		t.Fatalf("Len() = %d after appends, want >= %d", got, 50+rounds)
	}
	if v := db.At("vm-0", MetricCPU, 10); v != 10 {
		t.Fatalf("pre-existing point corrupted: At(vm-0, cpu, 10) = %v, want 10", v)
	}
}
