// Package telemetry models the monitoring substrate Murphy consumes: typed
// entities (VMs, hosts, containers, flows, NICs, switch ports, services, …),
// per-entity metric time series on a shared slice grid, and the loose
// metadata associations between entities ("VM v1 is on host h5 and has a TCP
// connection to v2"). The in-memory MonitoringDB stands in for the
// application-aware network observability platform the paper collects its
// production data from; everything downstream (graph construction, Murphy,
// and the baselines) sees only this interface.
package telemetry

import "fmt"

// EntityID uniquely identifies an entity inside a MonitoringDB.
type EntityID string

// EntityType classifies an entity. The catalog mirrors the entity table in
// §2.1 of the paper.
type EntityType string

// Entity types known to the monitoring platform.
const (
	TypeVM         EntityType = "vm"
	TypeHost       EntityType = "host"
	TypeContainer  EntityType = "container"
	TypeService    EntityType = "service"
	TypeVirtualNIC EntityType = "vnic"
	TypePhysNIC    EntityType = "pnic"
	TypeFlow       EntityType = "flow"
	TypeSwitch     EntityType = "switch"
	TypeSwitchPort EntityType = "switchport"
	TypeDatastore  EntityType = "datastore"
	TypeClient     EntityType = "client"
	TypeNode       EntityType = "node" // a Kubernetes/worker node in the microservice setup
)

// Common metric names. Not every entity type carries every metric; the
// catalog below records the usual set per type.
const (
	MetricCPU        = "cpu_util"
	MetricMem        = "mem_util"
	MetricDiskRead   = "disk_read"
	MetricDiskWrite  = "disk_write"
	MetricDiskUtil   = "disk_util"
	MetricNetTx      = "net_tx"
	MetricNetRx      = "net_rx"
	MetricPktDrops   = "pkt_drops"
	MetricLatency    = "latency"
	MetricRPS        = "rps"
	MetricErrorRate  = "error_rate"
	MetricThroughput = "throughput"
	MetricSessions   = "session_count"
	MetricRTT        = "rtt"
	MetricLoss       = "packet_loss"
	MetricRetransmit = "retransmit_ratio"
	MetricBufferUtil = "buffer_util"
	MetricSpaceUtil  = "space_util"
	MetricUp         = "up"
)

// MetricCatalog lists the metrics each entity type usually reports, per the
// platform described in §2.1.
var MetricCatalog = map[EntityType][]string{
	TypeVM:         {MetricCPU, MetricMem, MetricNetTx, MetricNetRx, MetricPktDrops, MetricDiskRead, MetricDiskWrite},
	TypeHost:       {MetricCPU, MetricMem, MetricNetTx, MetricNetRx, MetricPktDrops, MetricDiskRead, MetricDiskWrite},
	TypeContainer:  {MetricCPU, MetricMem, MetricDiskUtil, MetricNetTx, MetricNetRx},
	TypeNode:       {MetricCPU, MetricMem, MetricDiskUtil, MetricNetTx, MetricNetRx},
	TypeService:    {MetricLatency, MetricRPS, MetricErrorRate},
	TypeClient:     {MetricLatency, MetricRPS},
	TypeVirtualNIC: {MetricNetTx, MetricNetRx, MetricPktDrops},
	TypePhysNIC:    {MetricNetTx, MetricNetRx, MetricPktDrops, MetricLatency, MetricBufferUtil},
	TypeFlow:       {MetricSessions, MetricThroughput, MetricRTT, MetricLoss, MetricRetransmit},
	TypeSwitch:     {MetricNetTx, MetricNetRx, MetricPktDrops},
	TypeSwitchPort: {MetricNetTx, MetricPktDrops, MetricLatency, MetricBufferUtil},
	TypeDatastore:  {MetricSpaceUtil, MetricDiskRead, MetricDiskWrite},
}

// Entity is one monitored object with its identifying metadata.
type Entity struct {
	ID   EntityID
	Type EntityType
	// Name is the human-readable name shown in explanations.
	Name string
	// App is the application this entity is tagged as belonging to
	// (operators tag or auto-classify VMs into applications, §2.1).
	App string
	// Tier is the application tier (web, app, db, ...), when defined.
	Tier string
	// Attrs holds any additional platform metadata.
	Attrs map[string]string
}

// String renders the entity as "type:name" for logs and explanations.
func (e *Entity) String() string {
	if e == nil {
		return "<nil entity>"
	}
	return fmt.Sprintf("%s:%s", e.Type, e.Name)
}

// Symptom is a problematic (entity, metric) pair — the input to diagnosis.
// The JSON tags are part of the public report schema (murphy.Report).
type Symptom struct {
	Entity EntityID `json:"entity"`
	Metric string   `json:"metric"`
	// High records the direction of the anomaly: true when the metric is
	// abnormally high (the common case: CPU, latency, drops), false when
	// abnormally low (e.g. throughput collapse).
	High bool `json:"high"`
}

// String renders the symptom for logs.
func (s Symptom) String() string {
	dir := "high"
	if !s.High {
		dir = "low"
	}
	return fmt.Sprintf("%s %s on %s", dir, s.Metric, s.Entity)
}
