package telemetry

import (
	"bytes"
	"math"
	"testing"

	"murphy/internal/timeseries"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB(600)
	for _, e := range []*Entity{
		{ID: "vm1", Type: TypeVM, Name: "web-1", App: "shop", Tier: "web"},
		{ID: "vm2", Type: TypeVM, Name: "db-1", App: "shop", Tier: "db"},
		{ID: "h1", Type: TypeHost, Name: "esx-1"},
		{ID: "f1", Type: TypeFlow, Name: "web-1->db-1"},
	} {
		if err := db.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	mustAssoc := func(a, b EntityID, k AssocKind) {
		t.Helper()
		if err := db.Associate(a, b, k); err != nil {
			t.Fatal(err)
		}
	}
	mustAssoc("vm1", "h1", Bidirectional)
	mustAssoc("vm2", "h1", Bidirectional)
	mustAssoc("f1", "vm1", Bidirectional)
	mustAssoc("f1", "vm2", Bidirectional)
	return db
}

func TestAddEntityValidation(t *testing.T) {
	db := NewDB(60)
	if err := db.AddEntity(&Entity{ID: "a", Type: TypeVM}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddEntity(&Entity{ID: "a", Type: TypeVM}); err == nil {
		t.Fatal("duplicate ID should error")
	}
	if err := db.AddEntity(&Entity{}); err == nil {
		t.Fatal("missing ID should error")
	}
	if err := db.AddEntity(nil); err == nil {
		t.Fatal("nil entity should error")
	}
}

func TestAssociations(t *testing.T) {
	db := newTestDB(t)
	if err := db.Associate("vm1", "nope", Bidirectional); err == nil {
		t.Fatal("unknown entity should error")
	}
	if err := db.Associate("vm1", "vm1", Bidirectional); err == nil {
		t.Fatal("self association should error")
	}
	// Bidirectional adds both directed edges.
	if !db.HasEdge("vm1", "h1") || !db.HasEdge("h1", "vm1") {
		t.Fatal("bidirectional association should add both edges")
	}
	// Directed adds only one.
	if err := db.Associate("vm1", "vm2", Directed); err != nil {
		t.Fatal(err)
	}
	if !db.HasEdge("vm1", "vm2") || db.HasEdge("vm2", "vm1") {
		t.Fatal("directed association should add one edge")
	}
	in := db.InNeighbors("h1")
	if len(in) != 2 || in[0] != "vm1" || in[1] != "vm2" {
		t.Fatalf("InNeighbors(h1) = %v", in)
	}
	nbrs := db.Neighbors("vm1")
	if len(nbrs) != 3 { // h1, f1, vm2
		t.Fatalf("Neighbors(vm1) = %v", nbrs)
	}
}

func TestObserveAndWindow(t *testing.T) {
	db := newTestDB(t)
	for tt := 0; tt < 5; tt++ {
		if err := db.Observe("vm1", MetricCPU, tt, float64(10*tt)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 5 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.At("vm1", MetricCPU, 3) != 30 {
		t.Fatal("At wrong")
	}
	if !math.IsNaN(db.At("vm1", "unknown_metric", 0)) {
		t.Fatal("missing metric should be NaN")
	}
	w := db.Window("vm1", MetricCPU, 2, 7)
	if len(w) != 5 {
		t.Fatalf("padded window length = %d", len(w))
	}
	if w[0] != 20 || w[2] != 40 || w[3] != 0 || w[4] != 0 {
		t.Fatalf("window = %v (missing should fill with 0)", w)
	}
	// Window of an entirely absent metric: zeros of the right width.
	w = db.Window("vm2", MetricCPU, 0, 3)
	if len(w) != 3 || w[0] != 0 {
		t.Fatalf("absent metric window = %v", w)
	}
	if err := db.Observe("nope", MetricCPU, 0, 1); err == nil {
		t.Fatal("Observe on unknown entity should error")
	}
}

func TestSetSeries(t *testing.T) {
	db := newTestDB(t)
	if err := db.SetSeries("vm1", MetricMem, timeseries.FromValues([]float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatal("SetSeries should extend timeline")
	}
	if err := db.SetSeries("nope", MetricMem, timeseries.New()); err == nil {
		t.Fatal("unknown entity should error")
	}
	names := db.MetricNames("vm1")
	if len(names) != 1 || names[0] != MetricMem {
		t.Fatalf("MetricNames = %v", names)
	}
}

func TestApps(t *testing.T) {
	db := newTestDB(t)
	apps := db.Apps()
	if len(apps) != 1 || apps[0] != "shop" {
		t.Fatalf("Apps = %v", apps)
	}
	members := db.AppMembers("shop")
	if len(members) != 2 {
		t.Fatalf("AppMembers = %v", members)
	}
	if db.AppMembers("ghost") != nil {
		t.Fatal("unknown app should have no members")
	}
}

func TestRemoveEntity(t *testing.T) {
	db := newTestDB(t)
	db.RemoveEntity("h1")
	if db.HasEntity("h1") {
		t.Fatal("entity should be gone")
	}
	if db.HasEdge("vm1", "h1") || db.HasEdge("h1", "vm1") {
		t.Fatal("edges touching removed entity should be gone")
	}
	for _, id := range db.Entities() {
		if id == "h1" {
			t.Fatal("order should not contain removed entity")
		}
	}
	db.RemoveEntity("vm1")
	if len(db.AppMembers("shop")) != 1 {
		t.Fatal("app membership should shrink")
	}
	db.RemoveEntity("ghost") // no-op, must not panic
}

func TestRemoveEdgeAndMetric(t *testing.T) {
	db := newTestDB(t)
	db.RemoveEdge("vm1", "h1")
	if db.HasEdge("vm1", "h1") {
		t.Fatal("edge should be removed")
	}
	if !db.HasEdge("h1", "vm1") {
		t.Fatal("reverse edge must survive")
	}
	if err := db.Observe("vm1", MetricCPU, 0, 5); err != nil {
		t.Fatal(err)
	}
	db.RemoveMetric("vm1", MetricCPU)
	if db.Series("vm1", MetricCPU) != nil {
		t.Fatal("metric should be removed")
	}
	db.RemoveMetric("ghost", MetricCPU) // no-op
}

func TestCloneIsIndependent(t *testing.T) {
	db := newTestDB(t)
	if err := db.Observe("vm1", MetricCPU, 0, 5); err != nil {
		t.Fatal(err)
	}
	c := db.Clone()
	c.RemoveEntity("vm1")
	if !db.HasEntity("vm1") {
		t.Fatal("clone removal must not affect original")
	}
	if err := c.Observe("vm2", MetricCPU, 0, 99); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(db.At("vm2", MetricCPU, 0)) {
		t.Fatal("clone observation must not affect original")
	}
	// Edges preserved in clone.
	c2 := db.Clone()
	if !c2.HasEdge("vm1", "h1") || !c2.HasEdge("f1", "vm2") {
		t.Fatal("clone should preserve edges")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := newTestDB(t)
	for tt := 0; tt < 4; tt++ {
		if err := db.Observe("vm1", MetricCPU, tt, float64(tt)); err != nil {
			t.Fatal(err)
		}
		if err := db.Observe("f1", MetricThroughput, tt, float64(100+tt)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEntities() != db.NumEntities() {
		t.Fatalf("entities %d != %d", got.NumEntities(), db.NumEntities())
	}
	if got.At("vm1", MetricCPU, 2) != 2 || got.At("f1", MetricThroughput, 3) != 103 {
		t.Fatal("series values lost in round trip")
	}
	if !got.HasEdge("vm1", "h1") || !got.HasEdge("h1", "vm1") {
		t.Fatal("edges lost in round trip")
	}
	if got.IntervalSeconds != 600 {
		t.Fatal("interval lost")
	}
	if got.Entity("vm1").App != "shop" {
		t.Fatal("entity metadata lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Fatal("malformed JSON should error")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"interval_seconds":0}`)); err == nil {
		t.Fatal("zero interval should error")
	}
	bad := `{"interval_seconds":60,"entities":[{"ID":"a","Type":"vm"}],"series":{"ghost":{"cpu_util":[1]}}}`
	if _, err := ReadJSON(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("series for unknown entity should error")
	}
}

func TestEntityAndSymptomString(t *testing.T) {
	e := &Entity{ID: "x", Type: TypeVM, Name: "web"}
	if e.String() != "vm:web" {
		t.Fatalf("String = %q", e.String())
	}
	var nilE *Entity
	if nilE.String() != "<nil entity>" {
		t.Fatal("nil entity String should be safe")
	}
	s := Symptom{Entity: "x", Metric: MetricCPU, High: true}
	if s.String() != "high cpu_util on x" {
		t.Fatalf("Symptom.String = %q", s.String())
	}
	s.High = false
	if s.String() != "low cpu_util on x" {
		t.Fatalf("Symptom.String = %q", s.String())
	}
}

func TestMetricCatalogCoversAllTypes(t *testing.T) {
	types := []EntityType{TypeVM, TypeHost, TypeContainer, TypeService, TypeVirtualNIC,
		TypePhysNIC, TypeFlow, TypeSwitch, TypeSwitchPort, TypeDatastore, TypeClient, TypeNode}
	for _, ty := range types {
		if len(MetricCatalog[ty]) == 0 {
			t.Fatalf("MetricCatalog missing %s", ty)
		}
	}
}

func TestEvents(t *testing.T) {
	db := newTestDB(t)
	if err := db.RecordEvent(Event{Slice: 3, Kind: EventScaled, Entity: "vm1", Detail: "vCPUs 4 -> 8"}); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordEvent(Event{Slice: 1, Kind: EventEntityCreated, Entity: "vm2", Detail: "spawned"}); err != nil {
		t.Fatal(err)
	}
	// Removal events may reference gone entities.
	if err := db.RecordEvent(Event{Slice: 5, Kind: EventEntityRemoved, Entity: "old-vm", Detail: "decommissioned"}); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordEvent(Event{Slice: 2, Kind: EventScaled, Entity: "ghost", Detail: "x"}); err == nil {
		t.Fatal("non-removal event for unknown entity should error")
	}
	if err := db.RecordEvent(Event{Slice: -1, Kind: EventScaled, Entity: "vm1"}); err == nil {
		t.Fatal("negative slice should error")
	}
	got := db.EventsSince(2)
	if len(got) != 2 || got[0].Slice != 3 || got[1].Slice != 5 {
		t.Fatalf("EventsSince = %+v", got)
	}
	forVM := db.EventsFor("vm1")
	if len(forVM) != 1 || forVM[0].Kind != EventScaled {
		t.Fatalf("EventsFor = %+v", forVM)
	}
	if s := forVM[0].String(); s == "" {
		t.Fatal("event should render")
	}
	// Clone carries events.
	c := db.Clone()
	if len(c.EventsSince(0)) != 3 {
		t.Fatal("clone should carry events")
	}
}

func TestEventsJSONRoundTrip(t *testing.T) {
	db := newTestDB(t)
	if err := db.Observe("vm1", MetricCPU, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordEvent(Event{Slice: 0, Kind: EventConfigChanged, Entity: "vm1", Detail: "mtu 1500 -> 9000"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := got.EventsSince(0)
	if len(evs) != 1 || evs[0].Detail != "mtu 1500 -> 9000" {
		t.Fatalf("events lost in round trip: %+v", evs)
	}
}
