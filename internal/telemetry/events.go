package telemetry

import (
	"fmt"
	"sort"
)

// EventKind classifies a configuration-change event recorded by the
// monitoring platform.
type EventKind string

// Configuration-change kinds the platform records.
const (
	EventEntityCreated EventKind = "entity-created"
	EventEntityRemoved EventKind = "entity-removed"
	EventConfigChanged EventKind = "config-changed"
	EventMigrated      EventKind = "migrated"
	EventScaled        EventKind = "scaled"
)

// Event is one configuration change: Murphy presents recent ones alongside
// its diagnosis to catch problems caused by recently spawned or modified
// entities (§4.2 edge cases).
type Event struct {
	// Slice is the time slice the change happened in.
	Slice int
	// Kind classifies the change.
	Kind EventKind
	// Entity is the affected entity.
	Entity EntityID
	// Detail is a human-readable description ("vCPUs 4 -> 8").
	Detail string
}

// String renders the event for operator display.
func (e Event) String() string {
	return fmt.Sprintf("[t=%d] %s %s: %s", e.Slice, e.Entity, e.Kind, e.Detail)
}

// RecordEvent appends a configuration-change event. Unknown entities are an
// error except for removals, which naturally reference entities that are
// already gone.
func (db *DB) RecordEvent(ev Event) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if ev.Kind != EventEntityRemoved && !db.hasEntityLocked(ev.Entity) {
		return fmt.Errorf("telemetry: event for unknown entity %q", ev.Entity)
	}
	if ev.Slice < 0 {
		return fmt.Errorf("telemetry: event with negative slice %d", ev.Slice)
	}
	db.events = append(db.events, ev)
	return nil
}

// EventsSince returns the events at slice >= since, ordered by slice (stable
// for equal slices). Murphy shows these next to the root-cause list.
func (db *DB) EventsSince(since int) []Event {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Event
	for _, ev := range db.events {
		if ev.Slice >= since {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Slice < out[j].Slice })
	return out
}

// EventsFor returns all events touching one entity, ordered by slice.
func (db *DB) EventsFor(id EntityID) []Event {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Event
	for _, ev := range db.events {
		if ev.Entity == id {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Slice < out[j].Slice })
	return out
}
