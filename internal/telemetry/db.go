package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"murphy/internal/timeseries"
)

// AssocKind distinguishes the directionality knowledge attached to an
// association. Most platform metadata gives only a loose neighborhood
// relation (both directions possible); a known caller→callee edge can be
// recorded as directed (§4.1).
type AssocKind int

const (
	// Bidirectional adds potential-influence edges in both directions.
	Bidirectional AssocKind = iota
	// Directed adds a single influence edge from the first entity to the
	// second.
	Directed
)

// edge is one directed potential-influence edge u → v ("u may influence v").
type edge struct {
	from, to EntityID
}

// DB is the in-memory monitoring database. It stores entities, their
// metric time series on a shared slice grid, and metadata associations.
//
// Concurrency: every method takes the database's reader/writer lock, so an
// ingest goroutine may append observations (Observe, SetSeries, RecordEvent)
// while diagnosis workers read trailing windows — the always-on daemon's
// append-while-diagnose pattern. Past slices are never rewritten by append
// traffic, so a window read over a fixed [lo, hi) range is stable regardless
// of interleaving. The pointer-returning accessors (Series, Entities,
// AppMembers) hand out shared internals and are only safe against concurrent
// *structural* mutation when treated as read-only snapshots; concurrent
// readers should prefer At/Window/RawWindow, which copy under the lock.
type DB struct {
	// IntervalSeconds is the width of a time slice (600 s in the enterprise
	// environment, 10 s in the microservice emulation).
	IntervalSeconds int

	// mu guards every field below. Write-path methods (AddEntity, Observe,
	// SetSeries, Associate, Remove*, RecordEvent) take it exclusively; read
	// paths share it.
	mu sync.RWMutex

	entities map[EntityID]*Entity
	order    []EntityID // insertion order for deterministic iteration
	series   map[EntityID]map[string]*timeseries.Series
	out      map[EntityID]map[EntityID]bool // directed influence edges
	in       map[EntityID]map[EntityID]bool
	apps     map[string][]EntityID
	length   int // number of time slices present
	events   []Event
}

// NewDB returns an empty monitoring database with the given slice interval.
func NewDB(intervalSeconds int) *DB {
	return &DB{
		IntervalSeconds: intervalSeconds,
		entities:        make(map[EntityID]*Entity),
		series:          make(map[EntityID]map[string]*timeseries.Series),
		out:             make(map[EntityID]map[EntityID]bool),
		in:              make(map[EntityID]map[EntityID]bool),
		apps:            make(map[string][]EntityID),
	}
}

// AddEntity registers an entity. It returns an error on duplicate IDs.
func (db *DB) AddEntity(e *Entity) error {
	if e == nil || e.ID == "" {
		return fmt.Errorf("telemetry: entity must have an ID")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.entities[e.ID]; dup {
		return fmt.Errorf("telemetry: duplicate entity %q", e.ID)
	}
	db.entities[e.ID] = e
	db.order = append(db.order, e.ID)
	db.series[e.ID] = make(map[string]*timeseries.Series)
	if e.App != "" {
		db.apps[e.App] = append(db.apps[e.App], e.ID)
	}
	return nil
}

// Entity returns the entity with the given ID, or nil when unknown.
func (db *DB) Entity(id EntityID) *Entity {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.entities[id]
}

// HasEntity reports whether id is registered.
func (db *DB) HasEntity(id EntityID) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.hasEntityLocked(id)
}

// hasEntityLocked is HasEntity for callers already holding db.mu.
func (db *DB) hasEntityLocked(id EntityID) bool { _, ok := db.entities[id]; return ok }

// Entities returns all entity IDs in insertion order. The slice is shared;
// treat it as read-only.
func (db *DB) Entities() []EntityID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.order
}

// NumEntities returns the number of registered entities.
func (db *DB) NumEntities() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entities)
}

// Apps returns the sorted list of application names with members.
func (db *DB) Apps() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.apps))
	for a := range db.apps {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// AppMembers returns the entities tagged as members of app, in insertion
// order. The slice is shared; treat it as read-only.
func (db *DB) AppMembers(app string) []EntityID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.apps[app]
}

// Associate records a metadata association between a and b. Bidirectional
// associations add influence edges both ways (the conservative default of
// §4.1); Directed adds only a→b. Unknown entities are an error.
func (db *DB) Associate(a, b EntityID, kind AssocKind) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.hasEntityLocked(a) || !db.hasEntityLocked(b) {
		return fmt.Errorf("telemetry: association %q-%q references unknown entity", a, b)
	}
	if a == b {
		return fmt.Errorf("telemetry: self association on %q", a)
	}
	db.addEdge(a, b)
	if kind == Bidirectional {
		db.addEdge(b, a)
	}
	return nil
}

func (db *DB) addEdge(from, to EntityID) {
	if db.out[from] == nil {
		db.out[from] = make(map[EntityID]bool)
	}
	if db.in[to] == nil {
		db.in[to] = make(map[EntityID]bool)
	}
	db.out[from][to] = true
	db.in[to][from] = true
}

// RemoveEdge deletes the directed influence edge from→to (and nothing else).
// It is used by the data-degradation experiments (Table 2).
func (db *DB) RemoveEdge(from, to EntityID) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.out[from], to)
	delete(db.in[to], from)
}

// RemoveAllEdges drops every association, keeping entities and metrics. The
// evaluation uses it to hand Sage a database whose only edges are a causal
// call-graph DAG.
func (db *DB) RemoveAllEdges() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.out = make(map[EntityID]map[EntityID]bool)
	db.in = make(map[EntityID]map[EntityID]bool)
}

// RemoveEntity deletes an entity together with its metrics and all edges
// touching it (Table 2, "missing entity").
func (db *DB) RemoveEntity(id EntityID) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.hasEntityLocked(id) {
		return
	}
	for nb := range db.out[id] {
		delete(db.in[nb], id)
	}
	for nb := range db.in[id] {
		delete(db.out[nb], id)
	}
	delete(db.out, id)
	delete(db.in, id)
	e := db.entities[id]
	if e.App != "" {
		members := db.apps[e.App]
		for i, m := range members {
			if m == id {
				db.apps[e.App] = append(members[:i:i], members[i+1:]...)
				break
			}
		}
	}
	delete(db.entities, id)
	delete(db.series, id)
	for i, o := range db.order {
		if o == id {
			db.order = append(db.order[:i:i], db.order[i+1:]...)
			break
		}
	}
}

// RemoveMetric deletes one metric series of an entity (Table 2,
// "missing metric").
func (db *DB) RemoveMetric(id EntityID, metric string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if m := db.series[id]; m != nil {
		delete(m, metric)
	}
}

// OutNeighbors returns the entities that id may influence, sorted.
func (db *DB) OutNeighbors(id EntityID) []EntityID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return sortedKeys(db.out[id])
}

// InNeighbors returns the entities that may influence id, sorted. These are
// the in_nbrs(v) of the MRF factor definition.
func (db *DB) InNeighbors(id EntityID) []EntityID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return sortedKeys(db.in[id])
}

// Neighbors returns the union of in- and out-neighbors, sorted: the loose
// "neighborhood" used to grow the relationship graph.
func (db *DB) Neighbors(id EntityID) []EntityID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set := make(map[EntityID]bool, len(db.out[id])+len(db.in[id]))
	for nb := range db.out[id] {
		set[nb] = true
	}
	for nb := range db.in[id] {
		set[nb] = true
	}
	return sortedKeys(set)
}

// HasEdge reports whether the directed influence edge from→to exists.
func (db *DB) HasEdge(from, to EntityID) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.out[from][to]
}

func sortedKeys(m map[EntityID]bool) []EntityID {
	out := make([]EntityID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetSeries installs (replacing) the series for one metric of an entity and
// extends the database timeline if needed.
func (db *DB) SetSeries(id EntityID, metric string, s *timeseries.Series) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.hasEntityLocked(id) {
		return fmt.Errorf("telemetry: SetSeries on unknown entity %q", id)
	}
	db.series[id][metric] = s
	if s.Len() > db.length {
		db.length = s.Len()
	}
	return nil
}

// Observe appends v at slice t for the metric, growing the series as needed.
func (db *DB) Observe(id EntityID, metric string, t int, v float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.hasEntityLocked(id) {
		return fmt.Errorf("telemetry: Observe on unknown entity %q", id)
	}
	s := db.series[id][metric]
	if s == nil {
		s = timeseries.New()
		db.series[id][metric] = s
	}
	s.Set(t, v)
	if t+1 > db.length {
		db.length = t + 1
	}
	return nil
}

// Len returns the number of time slices on the shared grid.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.length
}

// Series returns the series for (id, metric), or nil when absent. The
// returned series is shared; treat it as read-only.
func (db *DB) Series(id EntityID, metric string) *timeseries.Series {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.series[id][metric]
}

// MetricNames returns the sorted metric names recorded for an entity.
func (db *DB) MetricNames(id EntityID) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := db.series[id]
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// At returns the value of (id, metric) at slice t, or NaN when missing.
func (db *DB) At(id EntityID, metric string, t int) float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[id][metric]
	if s == nil {
		return math.NaN()
	}
	return s.At(t)
}

// Window returns a copy of (id, metric) over [lo, hi), with missing values
// filled by the type-appropriate default (0), implementing the paper's
// placeholder rule for entities with missing history.
func (db *DB) Window(id EntityID, metric string, lo, hi int) []float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[id][metric]
	if s == nil {
		out := make([]float64, hi-lo)
		return out
	}
	w := s.Window(lo, hi)
	// Pad to the requested width so callers get aligned slices even at the
	// ragged end of the timeline.
	for len(w) < hi-lo {
		w = append(w, timeseries.Missing)
	}
	for i, v := range w {
		if timeseries.IsMissing(v) {
			w[i] = 0
		}
	}
	return w
}

// RawWindow returns a copy of (id, metric) over [lo, hi) with missing
// observations preserved as NaN (unlike Window, which fills placeholders).
// An absent metric yields an all-missing slice of the requested width.
func (db *DB) RawWindow(id EntityID, metric string, lo, hi int) []float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[id][metric]
	if s == nil {
		out := make([]float64, hi-lo)
		for i := range out {
			out[i] = timeseries.Missing
		}
		return out
	}
	w := s.Window(lo, hi)
	for len(w) < hi-lo {
		w = append(w, timeseries.Missing)
	}
	return w
}

// Clone returns a deep copy of the database (entities, edges, series). The
// degradation experiments corrupt a clone, never the original.
func (db *DB) Clone() *DB {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c := NewDB(db.IntervalSeconds)
	c.length = db.length
	for _, id := range db.order {
		e := *db.entities[id]
		if e.Attrs != nil {
			attrs := make(map[string]string, len(e.Attrs))
			for k, v := range e.Attrs {
				attrs[k] = v
			}
			e.Attrs = attrs
		}
		if err := c.AddEntity(&e); err != nil {
			panic("telemetry: clone: " + err.Error())
		}
		for name, s := range db.series[id] {
			c.series[id][name] = s.Clone()
		}
	}
	for from, tos := range db.out {
		for to := range tos {
			c.addEdge(from, to)
		}
	}
	c.events = append([]Event(nil), db.events...)
	return c
}

// snapshot is the JSON wire form of a DB.
type snapshot struct {
	IntervalSeconds int                               `json:"interval_seconds"`
	Entities        []*Entity                         `json:"entities"`
	Edges           [][2]EntityID                     `json:"edges"`
	Series          map[EntityID]map[string][]float64 `json:"series"`
	Events          []Event                           `json:"events,omitempty"`
}

// WriteJSON serializes the database (NaN encoded as null via pointer trick is
// avoided by writing missing values as -1e308 sentinel-free: we emit NaN as
// the JSON string "NaN" inside a float slice is invalid, so missing points
// are dropped to 0 on export — exported snapshots are always fully observed).
func (db *DB) WriteJSON(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := snapshot{IntervalSeconds: db.IntervalSeconds}
	for _, id := range db.order {
		snap.Entities = append(snap.Entities, db.entities[id])
	}
	for _, from := range db.order {
		for _, to := range sortedKeys(db.out[from]) {
			snap.Edges = append(snap.Edges, [2]EntityID{from, to})
		}
	}
	snap.Series = make(map[EntityID]map[string][]float64, len(db.series))
	for id, metrics := range db.series {
		m := make(map[string][]float64, len(metrics))
		for name, s := range metrics {
			vals := make([]float64, s.Len())
			for i := 0; i < s.Len(); i++ {
				v := s.At(i)
				if timeseries.IsMissing(v) {
					v = 0
				}
				vals[i] = v
			}
			m[name] = vals
		}
		snap.Series[id] = m
	}
	snap.Events = db.events
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// ReadJSON deserializes a database previously written by WriteJSON.
func ReadJSON(r io.Reader) (*DB, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	if snap.IntervalSeconds <= 0 {
		return nil, fmt.Errorf("telemetry: snapshot has invalid interval %d", snap.IntervalSeconds)
	}
	db := NewDB(snap.IntervalSeconds)
	for _, e := range snap.Entities {
		if err := db.AddEntity(e); err != nil {
			return nil, err
		}
	}
	for _, ed := range snap.Edges {
		if err := db.Associate(ed[0], ed[1], Directed); err != nil {
			return nil, err
		}
	}
	for id, metrics := range snap.Series {
		if !db.HasEntity(id) {
			return nil, fmt.Errorf("telemetry: snapshot series for unknown entity %q", id)
		}
		for name, vals := range metrics {
			if err := db.SetSeries(id, name, timeseries.FromValues(vals)); err != nil {
				return nil, err
			}
		}
	}
	for _, ev := range snap.Events {
		if err := db.RecordEvent(ev); err != nil {
			return nil, err
		}
	}
	return db, nil
}
