package resilience

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by a breaker that is refusing calls because the
// protected source has been failing persistently. Callers treat it like an
// unavailable source (the diagnosis core falls back to missing-data
// placeholders) rather than hammering a sick backend with retries.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// Closed passes calls through, counting consecutive failures.
	Closed BreakerState = iota
	// Open rejects calls outright until the cooldown elapses.
	Open
	// HalfOpen lets probe calls through; success closes, failure reopens.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker; zero fields fall back to defaults suited
// to per-diagnosis telemetry reads (trip after 5 consecutive failures,
// probe again after 5 s, one success closes).
type BreakerConfig struct {
	// FailureThreshold is the run of consecutive failures that opens the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before letting a probe
	// through (default 5 s).
	Cooldown time.Duration
	// SuccessesToClose is how many half-open probe successes close the
	// breaker again (default 1).
	SuccessesToClose int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 1
	}
	return c
}

// Breaker is a thread-safe circuit breaker. It protects one downstream
// source: when the source fails persistently the breaker opens and fails
// fast, giving the source a cooldown instead of retry pressure, then probes
// it half-open before resuming full traffic.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // test seam

	// onTrip, when set, fires (outside the lock) each time the breaker
	// transitions to Open.
	onTrip func()

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	// probes counts half-open probe calls admitted but not yet recorded.
	// Only a single in-flight probe is admitted at a time: concurrent Allow
	// calls during half-open must not race to hammer a recovering source
	// with a thundering herd of "probes".
	probes   int
	openedAt time.Time
}

// SetOnTrip installs a callback fired on every Closed/HalfOpen → Open
// transition. The callback runs outside the breaker's lock (so it may call
// State) but inline with the tripping Record call; it must be fast and safe
// for concurrent use. Set it before the breaker is shared between goroutines.
func (b *Breaker) SetOnTrip(fn func()) { b.onTrip = fn }

// NewBreaker builds a closed breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// WithClock replaces the breaker's time source (test seam).
func (b *Breaker) WithClock(now func() time.Time) *Breaker {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	return b
}

// State returns the breaker's current state (advancing Open → HalfOpen if
// the cooldown has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	return b.state
}

// tick advances Open → HalfOpen once the cooldown has elapsed. Callers must
// hold b.mu.
func (b *Breaker) tick() {
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = HalfOpen
		b.successes = 0
		b.probes = 0
	}
}

// Allow reports whether a call may proceed right now; ErrOpen means the
// caller should fail fast. A nil result must be followed by a Record call
// with the outcome. While half-open, only one probe is admitted at a time:
// concurrent callers fail fast with ErrOpen until the in-flight probe's
// outcome is recorded, so a recovering source sees a single probe per
// decision instead of a thundering herd.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case Open:
		return ErrOpen
	case HalfOpen:
		if b.probes > 0 {
			return ErrOpen
		}
		b.probes++
	}
	return nil
}

// Record feeds one call outcome into the automaton. Context cancellations
// are not counted: the caller gave up, which says nothing about the source.
func (b *Breaker) Record(err error) {
	if contextErr(err) {
		return
	}
	b.mu.Lock()
	tripped := b.recordLocked(err)
	b.mu.Unlock()
	if tripped && b.onTrip != nil {
		b.onTrip()
	}
}

// recordLocked applies one outcome and reports whether it tripped the
// breaker. Callers must hold b.mu.
func (b *Breaker) recordLocked(err error) bool {
	b.tick()
	if b.state == HalfOpen && b.probes > 0 {
		// The in-flight probe (or a pre-trip straggler — indistinguishable
		// by outcome alone, and equally informative) has finished; free the
		// probe slot for the next Allow.
		b.probes--
	}
	switch b.state {
	case Closed:
		if err == nil {
			b.failures = 0
			return false
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
			return true
		}
	case HalfOpen:
		if err != nil {
			b.trip()
			return true
		}
		b.successes++
		if b.successes >= b.cfg.SuccessesToClose {
			b.state = Closed
			b.failures = 0
		}
	case Open:
		// A straggler finishing after the trip; nothing to update.
	}
	return false
}

// trip opens the breaker. Callers must hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.now()
	b.failures = 0
	b.successes = 0
	b.probes = 0
}

// Do runs op under the breaker: fails fast with ErrOpen when open,
// otherwise records the outcome.
func (b *Breaker) Do(ctx context.Context, op func(context.Context) error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op(ctx)
	b.Record(err)
	return err
}
