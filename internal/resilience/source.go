package resilience

import (
	"context"
	"errors"
	"sync"

	"murphy/internal/telemetry"
)

// SourceStats counts what the resilient wrapper absorbed, for operator
// visibility (reports and the CLI surface these).
type SourceStats struct {
	// Reads is the number of window reads requested.
	Reads int
	// Retried is the number of reads that needed at least one retry and
	// ultimately succeeded.
	Retried int
	// Failed is the number of reads that failed even after retries (or
	// were rejected by an open breaker); the core degrades these to
	// missing data.
	Failed int
	// Rejected is the number of reads that ended rejected by an open
	// breaker.
	Rejected int
}

// Source wraps a telemetry source with a retry policy and an optional
// circuit breaker: transient read faults are absorbed by backoff-retries;
// persistent failure opens the breaker so a sick source gets a cooldown
// instead of retry pressure. A nil retry RetryIf defaults to retrying only
// transient faults (telemetry.IsTransient).
type Source struct {
	inner   telemetry.Source
	retry   Policy
	breaker *Breaker

	// hook, when set, observes every completed read: retried is true for
	// reads that needed at least one retry and succeeded, failed for reads
	// that ultimately failed.
	hook func(retried, failed bool)

	mu    sync.Mutex
	stats SourceStats
}

// SetHook installs a per-read outcome observer. The hook runs inline with
// ReadRawWindow and must be fast and safe for concurrent use; set it before
// the source is shared between goroutines.
func (s *Source) SetHook(fn func(retried, failed bool)) { s.hook = fn }

// NewSource builds a resilient view over inner. breaker may be nil (retry
// only).
func NewSource(inner telemetry.Source, retry Policy, breaker *Breaker) *Source {
	if retry.RetryIf == nil {
		retry.RetryIf = telemetry.IsTransient
	}
	return &Source{inner: inner, retry: retry, breaker: breaker}
}

// Stats returns a snapshot of the absorbed-fault counters.
func (s *Source) Stats() SourceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Source) bump(f func(*SourceStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Len implements telemetry.Source.
func (s *Source) Len() int { return s.inner.Len() }

// Entities implements telemetry.Source.
func (s *Source) Entities() []telemetry.EntityID { return s.inner.Entities() }

// MetricNames implements telemetry.Source.
func (s *Source) MetricNames(id telemetry.EntityID) []string { return s.inner.MetricNames(id) }

// ReadRawWindow implements telemetry.Source: the inner read runs under the
// breaker (when configured) and the retry policy.
func (s *Source) ReadRawWindow(ctx context.Context, id telemetry.EntityID, metric string, lo, hi int) ([]float64, error) {
	s.bump(func(st *SourceStats) { st.Reads++ })
	attempts := 0
	op := func(ctx context.Context) ([]float64, error) {
		attempts++
		if s.breaker != nil {
			if err := s.breaker.Allow(); err != nil {
				return nil, err
			}
		}
		w, err := s.inner.ReadRawWindow(ctx, id, metric, lo, hi)
		if s.breaker != nil {
			s.breaker.Record(err)
		}
		return w, err
	}
	retry := s.retry
	if s.breaker != nil {
		// An open breaker means "stop asking": never burn retries on it.
		userIf := retry.RetryIf
		retry.RetryIf = func(err error) bool {
			return !errors.Is(err, ErrOpen) && userIf(err)
		}
	}
	w, err := Do(ctx, retry, op)
	if err != nil {
		s.bump(func(st *SourceStats) {
			st.Failed++
			if errors.Is(err, ErrOpen) {
				st.Rejected++
			}
		})
		if s.hook != nil {
			s.hook(false, true)
		}
		return nil, err
	}
	if attempts > 1 {
		s.bump(func(st *SourceStats) { st.Retried++ })
	}
	if s.hook != nil {
		s.hook(attempts > 1, false)
	}
	return w, nil
}
