// Package resilience provides the runtime fault-tolerance primitives the
// diagnosis pipeline is built on: a context-aware generic retry with
// exponential backoff and jitter, and a per-source circuit breaker. They are
// the dynamic counterpart to internal/degrade's static corruptions — degrade
// asks "does the algorithm survive bad data?", resilience makes the *system*
// survive bad reads, stalls, and panicking evaluations at runtime.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy parameterizes a retry loop. The zero value retries up to four
// attempts starting at a 10 ms backoff, doubling up to 1 s, with ±50%
// jitter, retrying every error except context cancellation.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (<= 0 means the default of 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 10 ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 1 s).
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1]:
	// the actual delay is d * (1 - Jitter/2 + Jitter*u) for uniform u.
	// Negative disables jitter; 0 means the default of 0.5.
	Jitter float64
	// RetryIf decides whether an error is worth another attempt. Nil
	// retries everything except context.Canceled / DeadlineExceeded
	// (those also stop the loop regardless of RetryIf).
	RetryIf func(error) bool
	// Seed makes the jitter sequence deterministic (0 is a valid seed).
	Seed int64
	// sleep is a test seam; nil uses a context-aware timer sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

// WithSleep returns a copy of the policy using fn to wait between attempts
// (a test seam so retry tests don't consume wall-clock time).
func (p Policy) WithSleep(fn func(ctx context.Context, d time.Duration) error) Policy {
	p.sleep = fn
	return p
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.5
	case p.Jitter > 1:
		p.Jitter = 1
	}
	if p.sleep == nil {
		p.sleep = sleepCtx
	}
	return p
}

// sleepCtx waits for d or until the context is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// contextErr reports whether err is a context cancellation or deadline —
// errors that must never be retried (the caller gave up, not the source).
func contextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Do runs op under the policy: on a retryable error it backs off
// (exponentially, with jitter) and tries again until the attempts are
// exhausted or the context is done. The zero value of T and the last error
// are returned on failure; the error reports how many attempts were made.
func Do[T any](ctx context.Context, p Policy, op func(context.Context) (T, error)) (T, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	var zero T
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return zero, fmt.Errorf("resilience: aborted before attempt %d: %w", attempt, cerr)
		}
		var v T
		v, err = op(ctx)
		if err == nil {
			return v, nil
		}
		if contextErr(err) {
			return zero, err
		}
		if p.RetryIf != nil && !p.RetryIf(err) {
			return zero, err
		}
		if attempt >= p.MaxAttempts {
			break
		}
		d := delay
		if p.Jitter > 0 {
			f := 1 - p.Jitter/2 + p.Jitter*rng.Float64()
			d = time.Duration(float64(d) * f)
		}
		if serr := p.sleep(ctx, d); serr != nil {
			return zero, fmt.Errorf("resilience: aborted during backoff after attempt %d: %w", attempt, serr)
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
	return zero, fmt.Errorf("resilience: %d attempts exhausted: %w", p.MaxAttempts, err)
}
