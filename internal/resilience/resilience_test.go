package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"murphy/internal/telemetry"
)

// noSleep is a sleep seam that records requested delays without waiting.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 5}.WithSleep(noSleep(&delays))
	calls := 0
	v, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, fmt.Errorf("flaky: %w", telemetry.ErrTransient)
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 3}.WithSleep(noSleep(&delays))
	calls := 0
	boom := errors.New("boom")
	_, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		return 0, boom
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("exhausted error should wrap the last failure, got %v", err)
	}
}

func TestDoBackoffGrowsAndIsCapped(t *testing.T) {
	var delays []time.Duration
	p := Policy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Jitter:      -1, // disable for exact delays
	}.WithSleep(noSleep(&delays))
	_, _ = Do(context.Background(), p, func(context.Context) (int, error) {
		return 0, errors.New("always")
	})
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if delays[i] != w*time.Millisecond {
			t.Fatalf("delay[%d] = %v, want %v", i, delays[i], w*time.Millisecond)
		}
	}
}

func TestDoJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var delays []time.Duration
		p := Policy{MaxAttempts: 4, Seed: 7}.WithSleep(noSleep(&delays))
		_, _ = Do(context.Background(), p, func(context.Context) (int, error) {
			return 0, errors.New("always")
		})
		return delays
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
	}
}

func TestDoRespectsRetryIf(t *testing.T) {
	p := Policy{MaxAttempts: 5, RetryIf: telemetry.IsTransient}.WithSleep(noSleep(new([]time.Duration)))
	calls := 0
	permanent := errors.New("permanent")
	_, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		return 0, permanent
	})
	if calls != 1 {
		t.Fatalf("non-retryable error retried %d times", calls)
	}
	if !errors.Is(err, permanent) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := Do(ctx, Policy{MaxAttempts: 5}, func(context.Context) (int, error) {
		calls++
		return 0, errors.New("x")
	})
	if calls != 0 {
		t.Fatalf("cancelled context should prevent attempts, got %d", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err should wrap context.Canceled, got %v", err)
	}
	// Cancellation surfaced by the op itself also stops the loop.
	calls = 0
	_, err = Do(context.Background(), Policy{MaxAttempts: 5}.WithSleep(noSleep(new([]time.Duration))),
		func(context.Context) (int, error) {
			calls++
			return 0, fmt.Errorf("read: %w", context.DeadlineExceeded)
		})
	if calls != 1 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second}).
		WithClock(func() time.Time { return now })
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.Record(boom)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker should refuse, got %v", err)
	}
	// Cooldown elapses: half-open, a probe is allowed.
	now = now.Add(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker should allow a probe: %v", err)
	}
	// Probe fails: reopen.
	b.Record(boom)
	if b.State() != Open {
		t.Fatalf("failed probe should reopen, state = %v", b.State())
	}
	// Next cooldown, successful probe closes.
	now = now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerIgnoresContextErrors(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1})
	b.Record(context.Canceled)
	b.Record(fmt.Errorf("wrapped: %w", context.DeadlineExceeded))
	if b.State() != Closed {
		t.Fatal("context errors must not trip the breaker")
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2})
	boom := errors.New("boom")
	b.Record(boom)
	b.Record(nil)
	b.Record(boom)
	if b.State() != Closed {
		t.Fatal("non-consecutive failures must not trip")
	}
	b.Record(boom)
	if b.State() != Open {
		t.Fatal("two consecutive failures should trip")
	}
}

// flakySource fails the first `failFirst` reads of each (entity, metric)
// with a transient fault.
type flakySource struct {
	db        *telemetry.DB
	failFirst int
	calls     map[string]int
}

func (f *flakySource) Len() int                                   { return f.db.Len() }
func (f *flakySource) Entities() []telemetry.EntityID             { return f.db.Entities() }
func (f *flakySource) MetricNames(id telemetry.EntityID) []string { return f.db.MetricNames(id) }
func (f *flakySource) ReadRawWindow(ctx context.Context, id telemetry.EntityID, metric string, lo, hi int) ([]float64, error) {
	if f.calls == nil {
		f.calls = map[string]int{}
	}
	key := string(id) + "/" + metric
	f.calls[key]++
	if f.calls[key] <= f.failFirst {
		return nil, fmt.Errorf("flaky read %s: %w", key, telemetry.ErrTransient)
	}
	return f.db.ReadRawWindow(ctx, id, metric, lo, hi)
}

func testDB(t *testing.T) *telemetry.DB {
	t.Helper()
	db := telemetry.NewDB(60)
	if err := db.AddEntity(&telemetry.Entity{ID: "a", Type: telemetry.TypeVM, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Observe("a", telemetry.MetricCPU, i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSourceAbsorbsTransientFaults(t *testing.T) {
	db := testDB(t)
	inner := &flakySource{db: db, failFirst: 2}
	src := NewSource(inner, Policy{MaxAttempts: 4}.WithSleep(noSleep(new([]time.Duration))), nil)
	w, err := src.ReadRawWindow(context.Background(), "a", telemetry.MetricCPU, 0, 10)
	if err != nil {
		t.Fatalf("transient faults should be absorbed: %v", err)
	}
	if len(w) != 10 || w[9] != 9 {
		t.Fatalf("window = %v", w)
	}
	st := src.Stats()
	if st.Reads != 1 || st.Retried != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSourceGivesUpAfterPolicy(t *testing.T) {
	db := testDB(t)
	inner := &flakySource{db: db, failFirst: 10}
	src := NewSource(inner, Policy{MaxAttempts: 3}.WithSleep(noSleep(new([]time.Duration))), nil)
	if _, err := src.ReadRawWindow(context.Background(), "a", telemetry.MetricCPU, 0, 10); !telemetry.IsTransient(err) {
		t.Fatalf("exhausted read should surface the transient fault, got %v", err)
	}
	if st := src.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSourceBreakerFailsFast(t *testing.T) {
	db := testDB(t)
	inner := &flakySource{db: db, failFirst: 1 << 30}
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute}).
		WithClock(func() time.Time { return now })
	src := NewSource(inner, Policy{MaxAttempts: 2}.WithSleep(noSleep(new([]time.Duration))), b)
	// First read: 2 attempts, both fail → breaker trips.
	if _, err := src.ReadRawWindow(context.Background(), "a", telemetry.MetricCPU, 0, 10); err == nil {
		t.Fatal("want error")
	}
	if b.State() != Open {
		t.Fatalf("breaker state = %v, want open", b.State())
	}
	before := len(inner.calls)
	// Second read: rejected without touching the inner source.
	_, err := src.ReadRawWindow(context.Background(), "a", telemetry.MetricMem, 0, 10)
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if len(inner.calls) != before {
		t.Fatal("open breaker must not reach the inner source")
	}
	st := src.Stats()
	if st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
