package resilience

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tripBreaker drives a breaker to Open and advances the fake clock past the
// cooldown so the next State/Allow observes HalfOpen.
func tripBreaker(t *testing.T, b *Breaker, now *time.Time, boom error) {
	t.Helper()
	for i := 0; i < 3 && b.State() != Open; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused: %v", err)
		}
		b.Record(boom)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	*now = now.Add(time.Second)
}

func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second}).
		WithClock(func() time.Time { return now })
	boom := errors.New("boom")
	tripBreaker(t, b, &now, boom)

	// Serial: exactly one probe until its outcome is recorded.
	if err := b.Allow(); err != nil {
		t.Fatalf("first half-open probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe should be refused, got %v", err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
}

func TestBreakerHalfOpenProbeRace(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex // guards now against the clock-reading breaker
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second}).WithClock(clock)
	boom := errors.New("boom")
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(boom)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	advance(time.Second)

	// A stampede of concurrent callers races Allow against one half-open
	// breaker: exactly one may win the probe slot before any outcome is
	// recorded. Run under -race this also proves the automaton's locking.
	const callers = 64
	var admitted atomic.Int32
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			if b.Allow() == nil {
				admitted.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open breaker admitted %d concurrent probes, want exactly 1", got)
	}

	// The winning probe succeeds: breaker closes, everyone flows again.
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	b.Record(nil)
}

func TestBreakerHalfOpenProbeFailureReopensAndReprobes(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second}).
		WithClock(func() time.Time { return now })
	boom := errors.New("boom")
	tripBreaker(t, b, &now, boom)

	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Record(boom) // failed probe: reopen
	if b.State() != Open {
		t.Fatalf("state = %v, want open after failed probe", b.State())
	}
	// Next cooldown: the probe slot must be free again (a stale probes
	// counter would deadlock the breaker half-open forever).
	now = now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe slot not released after reopen: %v", err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerOnTripFiresExactlyOncePerTrip(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	b := NewBreaker(BreakerConfig{FailureThreshold: 5, Cooldown: time.Hour}).WithClock(clock)
	var trips atomic.Int32
	b.SetOnTrip(func() { trips.Add(1) })
	boom := errors.New("boom")

	// Concurrent failure recording: far more failures than the threshold
	// land at once, but the Closed→Open transition happens exactly once, so
	// OnTrip must fire exactly once (stragglers recording after the trip
	// hit the Open arm, which never re-trips).
	const workers = 32
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < workers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			for j := 0; j < 8; j++ {
				b.Record(boom)
			}
		}()
	}
	start.Done()
	done.Wait()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if got := trips.Load(); got != 1 {
		t.Fatalf("OnTrip fired %d times for one trip, want exactly 1", got)
	}

	// Second trip cycle: cooldown, failed probe → exactly one more firing.
	mu.Lock()
	now = now.Add(time.Hour)
	mu.Unlock()
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Record(boom)
	if got := trips.Load(); got != 2 {
		t.Fatalf("OnTrip fired %d times after two trips, want exactly 2", got)
	}
}
