// Incremental (sliding-window) statistics for the amortized training path:
// shifted running moments with an exact recenter correction, a sorted window
// for O(1) medians and O(n) MADs, and a MASE-based drift tracker. These are
// the per-series sufficient statistics the incremental trainer slides instead
// of recomputing Center/Median/MAD from scratch on every diagnosis.
package stats

import (
	"math"
	"sort"
)

// WindowMoments maintains the first two moments of a sliding window in
// shifted form: relative to an anchor Shift it keeps S1 = Σ(x−Shift) and
// S2 = Σ(x−Shift)². Keeping the sums shifted (instead of raw Σx, Σx²) is what
// makes the derived centered sum of squares
//
//	CSS = S2 − S1²/N
//
// numerically safe when the mean dwarfs the spread (a rescaled utilization
// series at mean 10⁶ and σ 1 loses ~12 digits in raw form, none in shifted
// form as long as Shift tracks the mean). Recenter applies the exact
// correction that re-anchors Shift at the current mean:
//
//	Shift' = Shift + S1/N,  S2' = S2 − S1²/N,  S1' = 0,
//
// which is algebraically identity-preserving — the same correction
// stats.Center performs in one shot when it subtracts the mean — so the
// moments never drift away from their Center-semantics meaning, no matter how
// far the window slides from its anchor.
type WindowMoments struct {
	// Shift is the anchor the sums are taken relative to.
	Shift float64
	// N is the number of points currently in the window.
	N int
	// S1 is Σ(x−Shift) over the window.
	S1 float64
	// S2 is Σ(x−Shift)² over the window.
	S2 float64
}

// Anchor resets the moments over xs with the anchor at the exact mean of xs
// (so S1 starts near zero and CSS at full precision).
func (m *WindowMoments) Anchor(xs []float64) {
	m.Shift = Mean(xs)
	m.N = len(xs)
	m.S1, m.S2 = 0, 0
	for _, x := range xs {
		d := x - m.Shift
		m.S1 += d
		m.S2 += d * d
	}
}

// Push adds one point entering the window.
func (m *WindowMoments) Push(x float64) {
	d := x - m.Shift
	m.N++
	m.S1 += d
	m.S2 += d * d
}

// Pop removes one point leaving the window. The caller must pass the exact
// value that was pushed (or anchored), so the sums stay telescoping.
func (m *WindowMoments) Pop(x float64) {
	d := x - m.Shift
	m.N--
	m.S1 -= d
	m.S2 -= d * d
}

// Mean returns the window mean, Shift + S1/N.
func (m *WindowMoments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Shift + m.S1/float64(m.N)
}

// CenteredSumSq returns Σ(x−mean)² = S2 − S1²/N, clamped at zero (the exact
// value is non-negative; rounding can push the difference a hair below).
func (m *WindowMoments) CenteredSumSq() float64 {
	if m.N == 0 {
		return 0
	}
	css := m.S2 - m.S1*m.S1/float64(m.N)
	if css < 0 {
		return 0
	}
	return css
}

// Std returns the unbiased sample standard deviation, matching
// stats.MeanStd's n−1 denominator. Fewer than two points yield 0.
func (m *WindowMoments) Std() float64 {
	if m.N < 2 {
		return 0
	}
	return math.Sqrt(m.CenteredSumSq() / float64(m.N-1))
}

// Drift returns |S1/N|, how far the current mean has wandered from the
// anchor. The incremental trainer recenters once this exceeds a fraction of
// the window spread, bounding the cancellation error of CenteredSumSq.
func (m *WindowMoments) Drift() float64 {
	if m.N == 0 {
		return 0
	}
	return math.Abs(m.S1 / float64(m.N))
}

// Recenter re-anchors Shift at the current mean using the exact correction
// and returns the applied delta d = S1/N (zero when the window is empty).
// Callers holding cross-term statistics taken against the old anchor must
// apply the matching closed-form correction with the pre-recenter S1 values.
func (m *WindowMoments) Recenter() float64 {
	if m.N == 0 {
		return 0
	}
	d := m.S1 / float64(m.N)
	m.S2 -= m.S1 * m.S1 / float64(m.N)
	if m.S2 < 0 {
		m.S2 = 0
	}
	m.S1 = 0
	m.Shift += d
	return d
}

// SortedWindow keeps an ascending copy of a sliding window so the robust
// per-factor statistics stay cheap as the window slides: Median is O(1),
// MAD is O(n) (a two-pointer walk instead of the sort-twice full
// computation), and each slide costs one binary-search insert plus one
// delete (an O(n) memmove each). Both Median and MAD are bit-identical to
// stats.Median / stats.MAD on the same multiset.
type SortedWindow struct {
	vals []float64
}

// NewSortedWindow builds the sorted view of xs (copied).
func NewSortedWindow(xs []float64) *SortedWindow {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &SortedWindow{vals: s}
}

// Len returns the number of values in the window.
func (w *SortedWindow) Len() int { return len(w.vals) }

// Insert adds x, keeping the ascending order.
func (w *SortedWindow) Insert(x float64) {
	i := sort.SearchFloat64s(w.vals, x)
	w.vals = append(w.vals, 0)
	copy(w.vals[i+1:], w.vals[i:])
	w.vals[i] = x
}

// Remove deletes one occurrence of x. The caller must only remove values
// previously inserted (it panics otherwise — a telescoping-invariant bug).
func (w *SortedWindow) Remove(x float64) {
	i := sort.SearchFloat64s(w.vals, x)
	if i >= len(w.vals) || w.vals[i] != x {
		panic("stats: SortedWindow.Remove of absent value")
	}
	w.vals = append(w.vals[:i], w.vals[i+1:]...)
}

// Median returns the nearest-rank sample median, bit-identical to
// stats.Median on the same values. Empty input yields NaN.
func (w *SortedWindow) Median() float64 {
	n := len(w.vals)
	if n == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(0.5*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	return w.vals[i]
}

// MAD returns the median absolute deviation around the median, bit-identical
// to stats.MAD on the same values, in one O(n) two-pointer walk: in the
// sorted order the deviations |x−med| form two monotone runs on either side
// of the median, so the k-th smallest deviation is found by merging outward
// from the median position. (m−x for x ≤ m equals math.Abs(x−m) exactly —
// IEEE subtraction is correctly rounded and negation exact — so the selected
// value matches the full computation bit for bit.)
func (w *SortedWindow) MAD() float64 {
	n := len(w.vals)
	if n == 0 {
		return math.NaN()
	}
	med := w.Median()
	k := int(math.Ceil(0.5*float64(n))) - 1
	if k < 0 {
		k = 0
	}
	pm := int(math.Ceil(0.5*float64(n))) - 1
	l, r := pm, pm+1
	dev := 0.0
	for taken := 0; taken <= k; taken++ {
		dl, dr := math.Inf(1), math.Inf(1)
		if l >= 0 {
			dl = med - w.vals[l]
		}
		if r < n {
			dr = w.vals[r] - med
		}
		if dl <= dr {
			dev = dl
			l--
		} else {
			dev = dr
			r++
		}
	}
	return dev
}

// Values returns the ascending values (the window's own backing array; treat
// as read-only).
func (w *SortedWindow) Values() []float64 { return w.vals }

// DriftTracker accumulates one-step-ahead (prediction, actual) pairs of a
// trained factor as the window slides, and scores the model's staleness as
// the MASE of those predictions against the lag-1 naive forecast error of
// the current window. A score near 1 means the stale model still predicts as
// well as a naive forecaster; a large score means the relationship between
// the target and its neighbors has changed since the model was fitted — the
// incremental trainer's cue to fall back to a full refit.
type DriftTracker struct {
	preds, actuals []float64
	head, n        int
}

// NewDriftTracker returns a tracker remembering the last cap pairs
// (cap <= 0 uses 32).
func NewDriftTracker(capacity int) *DriftTracker {
	if capacity <= 0 {
		capacity = 32
	}
	return &DriftTracker{
		preds:   make([]float64, capacity),
		actuals: make([]float64, capacity),
	}
}

// Push records one one-step-ahead prediction and the realized value.
func (d *DriftTracker) Push(pred, actual float64) {
	d.preds[d.head] = pred
	d.actuals[d.head] = actual
	d.head = (d.head + 1) % len(d.preds)
	if d.n < len(d.preds) {
		d.n++
	}
}

// Len returns the number of recorded pairs.
func (d *DriftTracker) Len() int { return d.n }

// Reset forgets all recorded pairs (called after a refit: the new model's
// staleness starts from scratch).
func (d *DriftTracker) Reset() { d.head, d.n = 0, 0 }

// Pairs returns copies of the recorded predictions and actuals, oldest
// first. Used for snapshot/restore of the factor store.
func (d *DriftTracker) Pairs() (preds, actuals []float64) {
	preds = make([]float64, 0, d.n)
	actuals = make([]float64, 0, d.n)
	start := d.head - d.n
	if start < 0 {
		start += len(d.preds)
	}
	for i := 0; i < d.n; i++ {
		j := (start + i) % len(d.preds)
		preds = append(preds, d.preds[j])
		actuals = append(actuals, d.actuals[j])
	}
	return preds, actuals
}

// Score returns the MASE of the recorded predictions against the naive
// forecast error of train (the current target window). It returns 0 while
// fewer than minPairs pairs are recorded (not enough evidence to trip a
// retrain) and on degenerate inputs.
func (d *DriftTracker) Score(train []float64, minPairs int) float64 {
	if minPairs < 1 {
		minPairs = 1
	}
	if d.n < minPairs {
		return 0
	}
	preds, actuals := d.Pairs()
	s, err := MASE(preds, actuals, train)
	if err != nil || math.IsNaN(s) {
		return 0
	}
	return s
}
