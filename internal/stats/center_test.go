package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestAbsPearsonCenteredBitIdentical is the contract the parallel trainer
// leans on: ranking candidates through precomputed centered views must produce
// exactly the bits AbsPearson produces on the raw series.
func TestAbsPearsonCenteredBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(400)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*float64(1+trial%13) + float64(trial)
			ys[i] = 0.3*xs[i] + rng.NormFloat64()
		}
		want := AbsPearson(xs, ys)
		cx, cy := Center(xs), Center(ys)
		got := AbsPearsonCentered(&cx, &cy)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("trial %d (n=%d): centered %v != raw %v", trial, n, got, want)
		}
	}
}

// TestAbsPearsonCenteredDegenerate pins the edge cases: constant series,
// too-short series, and mismatched lengths all return 0 on both paths.
func TestAbsPearsonCenteredDegenerate(t *testing.T) {
	constant := []float64{5, 5, 5, 5}
	varying := []float64{1, 2, 3, 4}
	cases := []struct {
		name   string
		xs, ys []float64
	}{
		{"constant-x", constant, varying},
		{"constant-y", varying, constant},
		{"both-constant", constant, constant},
		{"single-point", []float64{1}, []float64{2}},
		{"empty", nil, nil},
	}
	for _, tc := range cases {
		want := AbsPearson(tc.xs, tc.ys)
		cx, cy := Center(tc.xs), Center(tc.ys)
		got := AbsPearsonCentered(&cx, &cy)
		if want != 0 || got != 0 {
			t.Errorf("%s: raw=%v centered=%v, want both 0", tc.name, want, got)
		}
	}
	// Mismatched lengths only arise on the centered path (AbsPearson's
	// callers guarantee equal length); it must degrade to 0, not panic.
	cx, cy := Center(varying), Center(varying[:3])
	if got := AbsPearsonCentered(&cx, &cy); got != 0 {
		t.Errorf("mismatched lengths: got %v, want 0", got)
	}
}

// TestCenterSumSqMatchesMeanStd ties Center's accumulated sum of squares to
// MeanStd: the trainer derives the factor's hstd from Center's SumSq, so the
// two must agree bit-for-bit.
func TestCenterSumSqMatchesMeanStd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 40
		}
		mean, std := MeanStd(xs)
		c := Center(xs)
		if math.Float64bits(mean) != math.Float64bits(c.Mean) {
			t.Fatalf("trial %d: mean %v != %v", trial, c.Mean, mean)
		}
		fromSumSq := math.Sqrt(c.SumSq / float64(n-1))
		if math.Float64bits(std) != math.Float64bits(fromSumSq) {
			t.Fatalf("trial %d: std from SumSq %v != MeanStd %v", trial, fromSumSq, std)
		}
	}
}
