package stats

import "math"

// RunningMoments accumulates count, mean, and centered sum of squares of a
// sample one observation at a time (Welford's algorithm), so mean and
// unbiased variance are available at any point without storing the sample.
type RunningMoments struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the moments.
func (r *RunningMoments) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddAll folds a batch of observations into the moments.
func (r *RunningMoments) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// Count returns the number of observations seen.
func (r *RunningMoments) Count() int { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *RunningMoments) Mean() float64 { return r.mean }

// Variance returns the running unbiased sample variance (n-1 denominator),
// or 0 with fewer than two observations.
func (r *RunningMoments) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the running unbiased sample standard deviation.
func (r *RunningMoments) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StreamingWelch is an incremental two-sample Welch t-test: observations are
// fed one (or a batch) at a time into either sample and the test can be
// evaluated after any prefix. It computes the same statistic as WelchTTest
// over the observations seen so far, which is what lets the inference fast
// path cut a 5000-sample Monte-Carlo budget short once the verdict for a
// candidate is already decided.
type StreamingWelch struct {
	A, B RunningMoments
}

// Test evaluates Welch's t-test on the observations accumulated so far,
// under the same semantics (including the degenerate constant-sample case)
// as the batch WelchTTest.
func (s *StreamingWelch) Test(alt Alternative) (TTestResult, error) {
	na, nb := float64(s.A.n), float64(s.B.n)
	if na < 2 || nb < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := s.A.mean, s.B.mean
	va, vb := s.A.Variance()/na, s.B.Variance()/nb
	se := math.Sqrt(va + vb)
	if se == 0 {
		r := TTestResult{T: 0, DF: na + nb - 2, P: 1}
		switch {
		case ma == mb:
			r.P = 1
		case alt == Less && ma < mb, alt == Greater && ma > mb, alt == TwoSided:
			r.P = 0
			r.T = math.Inf(1)
			if ma < mb {
				r.T = math.Inf(-1)
			}
		}
		return r, nil
	}
	t := (ma - mb) / se
	df := (va + vb) * (va + vb) / (va*va/(na-1) + vb*vb/(nb-1))
	var p float64
	switch alt {
	case Less:
		p = StudentTCDF(t, df)
	case Greater:
		p = 1 - StudentTCDF(t, df)
	default:
		p = 2 * StudentTCDF(-math.Abs(t), df)
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

// MeanDiff returns mean(A) - mean(B) over the observations seen so far.
func (s *StreamingWelch) MeanDiff() float64 { return s.A.mean - s.B.mean }

// Decisive reports whether the significance verdict at level alpha is
// already decided with zMargin standard deviations to spare: the verdict is
// decided when the Welch t statistic sits more than zMargin away from the
// critical value at alpha (on the "significant" side: decided significant;
// on the other: decided not significant). The t statistic's sampling
// standard deviation is ~1, so zMargin = Φ⁻¹(c) keeps the probability that
// further observations walk the statistic back across the critical value
// below ~1-c. A statistic within the band is still in play and needs more
// samples; zMargin <= 0 treats any verdict as decided (plain sequential
// testing, maximal early stopping).
func (s *StreamingWelch) Decisive(alt Alternative, alpha, zMargin float64) (significant, decided bool) {
	res, err := s.Test(alt)
	if err != nil {
		return false, false
	}
	if zMargin < 0 {
		zMargin = 0
	}
	// Orient so that a larger statistic is always more significant.
	stat, tail := res.T, alpha
	switch alt {
	case Less:
		stat = -res.T
	case TwoSided:
		stat = math.Abs(res.T)
		tail = alpha / 2
	}
	if math.IsInf(stat, 0) {
		return stat > 0, true // degenerate zero-variance samples
	}
	crit := StudentTUpperQuantile(tail, res.DF)
	switch {
	case stat >= crit+zMargin:
		return true, true
	case stat <= crit-zMargin:
		return false, true
	}
	return res.P <= alpha, false
}

// StudentTUpperQuantile returns the t with upper-tail probability q under a
// Student's t distribution with df degrees of freedom (i.e. the critical
// value t* with 1 - CDF(t*) = q), by bisection on StudentTCDF.
func StudentTUpperQuantile(q, df float64) float64 {
	if q <= 0 {
		return math.Inf(1)
	}
	if q >= 1 {
		return math.Inf(-1)
	}
	target := 1 - q
	lo, hi := -2.0, 2.0
	for StudentTCDF(lo, df) > target && lo > -1e12 {
		lo *= 2
	}
	for StudentTCDF(hi, df) < target && hi < 1e12 {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+math.Abs(lo)+math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		if StudentTCDF(mid, df) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}
