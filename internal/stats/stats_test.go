package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Mean(xs), 5, 1e-12, "mean")
	almost(t, Variance(xs), 32.0/7.0, 1e-12, "variance")
	almost(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "stddev")
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice mean/variance should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-element variance should be 0")
	}
}

func TestMeanStdMatchesSeparate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		m, s := MeanStd(xs)
		almost(t, m, Mean(xs), 1e-9, "MeanStd mean")
		almost(t, s, StdDev(xs), 1e-9, "MeanStd std")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max wrong: %v %v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, r, 1, 1e-12, "perfect positive correlation")
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	almost(t, r, -1, 1e-12, "perfect negative correlation")
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("constant series should give r=0, got %v err %v", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("n<2 should error")
	}
}

func TestAbsPearsonSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = r.NormFloat64(), r.NormFloat64()
		}
		a, b := AbsPearson(xs, ys), AbsPearson(ys, xs)
		return math.Abs(a-b) < 1e-12 && a >= 0 && a <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	almost(t, StudentTCDF(0, 10), 0.5, 1e-12, "t=0")
	almost(t, StudentTCDF(1.812, 10), 0.95, 1e-3, "t_{0.95,10}")
	almost(t, StudentTCDF(2.228, 10), 0.975, 1e-3, "t_{0.975,10}")
	almost(t, StudentTCDF(-2.228, 10), 0.025, 1e-3, "lower tail symmetry")
	// Large df converges to the normal distribution.
	almost(t, StudentTCDF(1.96, 1e6), NormalCDF(1.96), 1e-4, "df->inf")
	if StudentTCDF(math.Inf(1), 5) != 1 || StudentTCDF(math.Inf(-1), 5) != 0 {
		t.Fatal("infinite t should saturate CDF")
	}
}

func TestStudentTCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		if math.IsNaN(lo) || math.IsInf(lo, 0) {
			return true
		}
		return StudentTCDF(lo, 7) <= StudentTCDF(hi, 7)+1e-12
	}
	cfg := &quick.Config{Values: nil, MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTTestSeparatesMeans(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 1.0
	}
	res, err := WelchTTest(a, b, Less)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("clearly separated means should have tiny p, got %v", res.P)
	}
	res, _ = WelchTTest(a, b, Greater)
	if res.P < 0.999 {
		t.Fatalf("wrong-direction alternative should have p~1, got %v", res.P)
	}
}

func TestWelchTTestIdenticalSamples(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := make([]float64, 200)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	res, err := WelchTTest(a, a, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.99 {
		t.Fatalf("identical samples should not reject, p=%v", res.P)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	res, err := WelchTTest([]float64{1, 1, 1}, []float64{2, 2, 2}, Less)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("constant a<b under Less should be p=0, got %v", res.P)
	}
	res, _ = WelchTTest([]float64{2, 2}, []float64{2, 2}, TwoSided)
	if res.P != 1 {
		t.Fatalf("equal constants should be p=1, got %v", res.P)
	}
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}, Less); err == nil {
		t.Fatal("n<2 should error")
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.99, 0.999} {
		x := NormalQuantile(p)
		almost(t, NormalCDF(x), p, 1e-9, "round trip")
	}
	almost(t, NormalQuantile(0.975), 1.959964, 1e-5, "z_{0.975}")
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile boundary values should be infinite")
	}
}

func TestRegIncBetaBoundaries(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.37, 0.9} {
		almost(t, RegIncBeta(1, 1, x), x, 1e-10, "uniform case")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	almost(t, RegIncBeta(2.5, 4, 0.3), 1-RegIncBeta(4, 2.5, 0.7), 1e-10, "symmetry")
}

func TestMASE(t *testing.T) {
	train := []float64{1, 2, 3, 4, 5} // naive MAE = 1
	pred := []float64{6, 7}
	actual := []float64{6.5, 6.5}
	m, err := MASE(pred, actual, train)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, m, 0.5, 1e-12, "MASE")
	if _, err := MASE([]float64{1}, []float64{1, 2}, train); err == nil {
		t.Fatal("length mismatch should error")
	}
	m, err = MASE([]float64{5}, []float64{5}, []float64{2, 2, 2})
	if err != nil || m != 0 {
		t.Fatalf("flat train, zero error should give 0: %v %v", m, err)
	}
	m, _ = MASE([]float64{5}, []float64{6}, []float64{2, 2, 2})
	if !math.IsInf(m, 1) {
		t.Fatalf("flat train with error should be +Inf, got %v", m)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 10})
	almost(t, e.At(0), 0, 1e-12, "below range")
	almost(t, e.At(2), 0.6, 1e-12, "at tie")
	almost(t, e.At(100), 1, 1e-12, "above range")
	almost(t, e.Quantile(0.5), 2, 1e-12, "median")
	almost(t, e.Quantile(1), 10, 1e-12, "max quantile")
	almost(t, e.Quantile(0), 1, 1e-12, "min quantile")
	if e.Len() != 5 {
		t.Fatalf("Len = %d", e.Len())
	}
	if !math.IsNaN(NewECDF(nil).Quantile(0.5)) {
		t.Fatal("empty ECDF quantile should be NaN")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(40))
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		e := NewECDF(xs)
		prev := -1.0
		for q := -2.0; q <= 2.0; q += 0.25 {
			v := e.At(q)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZScore(t *testing.T) {
	hist := []float64{10, 10, 10, 10, 14, 6} // mean 10, std 2.53...
	z := ZScore(10, hist)
	almost(t, z, 0, 1e-12, "at mean")
	if ZScore(20, hist) <= 0 {
		t.Fatal("above mean should be positive")
	}
	if !math.IsInf(ZScore(5, []float64{3, 3, 3}), 1) {
		t.Fatal("zero-variance history, off-mean value should be +Inf")
	}
	if ZScore(3, []float64{3, 3, 3}) != 0 {
		t.Fatal("zero-variance history at mean should be 0")
	}
}

func TestQuantileHelper(t *testing.T) {
	xs := []float64{5, 1, 3}
	almost(t, Quantile(xs, 0.5), 3, 1e-12, "median helper")
	// Input must not be mutated.
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMedianMAD(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	almost(t, Median(xs), 3, 1e-12, "median")
	almost(t, MAD(xs), 1, 1e-12, "MAD") // deviations 2,1,0,1,97 -> median 1
	if !math.IsNaN(Median(nil)) || !math.IsNaN(MAD(nil)) {
		t.Fatal("empty median/MAD should be NaN")
	}
}

func TestRobustZ(t *testing.T) {
	hist := []float64{10, 10, 11, 9, 10, 10, 12, 8}
	if z := RobustZ(10, hist); math.Abs(z) > 0.5 {
		t.Fatalf("central value robust z = %v", z)
	}
	if z := RobustZ(100, hist); z < 10 {
		t.Fatalf("outlier robust z = %v, want large", z)
	}
	// Robustness: one enormous historical outlier barely moves the score.
	contaminated := append(append([]float64(nil), hist...), 1e9)
	a, b := RobustZ(100, hist), RobustZ(100, contaminated)
	if math.Abs(a-b) > a*0.5 {
		t.Fatalf("MAD scale should resist contamination: %v vs %v", a, b)
	}
	// Zero-MAD history falls back to classic z; constant history is capped.
	if z := RobustZ(5, []float64{3, 3, 3}); z != 1e6 {
		t.Fatalf("constant-history robust z = %v, want capped 1e6", z)
	}
	if z := RobustZ(-5, []float64{3, 3, 3, 3}); z != -1e6 {
		t.Fatalf("constant-history negative robust z = %v, want -1e6", z)
	}
	if RobustZ(7, nil) != 0 {
		t.Fatal("empty history robust z should be 0")
	}
}
