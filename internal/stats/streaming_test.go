package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamingWelchAgreesWithBatch is the property test backing the
// inference fast path: over 1000 random sample pairs — varied sizes, scales,
// offsets, and a slice of exactly-equal-mean pairs — the streaming test must
// reach the same verdict as the batch WelchTTest at every alpha of interest,
// with T, DF, and P matching to tight tolerance.
func TestStreamingWelchAgreesWithBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alts := []Alternative{TwoSided, Less, Greater}
	for trial := 0; trial < 1000; trial++ {
		na := 2 + rng.Intn(200)
		nb := 2 + rng.Intn(200)
		scaleA := math.Exp(rng.NormFloat64() * 2)
		scaleB := math.Exp(rng.NormFloat64() * 2)
		offset := rng.NormFloat64() * 3
		if trial%5 == 0 {
			offset = 0 // exercise the near-null regime explicitly
		}
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.NormFloat64() * scaleA
		}
		for i := range b {
			b[i] = offset + rng.NormFloat64()*scaleB
		}
		var st StreamingWelch
		// Interleave Add and AddAll so both entry points are exercised.
		for i, x := range a {
			if i%2 == 0 {
				st.A.Add(x)
			} else {
				st.A.AddAll([]float64{x})
			}
		}
		st.B.AddAll(b)
		alt := alts[trial%len(alts)]
		want, err := WelchTTest(a, b, alt)
		if err != nil {
			t.Fatalf("trial %d: batch: %v", trial, err)
		}
		got, err := st.Test(alt)
		if err != nil {
			t.Fatalf("trial %d: streaming: %v", trial, err)
		}
		if math.Abs(got.P-want.P) > 1e-9 {
			t.Fatalf("trial %d: p mismatch: streaming %.15g batch %.15g", trial, got.P, want.P)
		}
		if math.Abs(got.T-want.T) > 1e-9*(1+math.Abs(want.T)) {
			t.Fatalf("trial %d: t mismatch: streaming %.15g batch %.15g", trial, got.T, want.T)
		}
		if math.Abs(got.DF-want.DF) > 1e-9*(1+want.DF) {
			t.Fatalf("trial %d: df mismatch: streaming %.15g batch %.15g", trial, got.DF, want.DF)
		}
		for _, alpha := range []float64{0.01, 0.05, 0.1} {
			if (got.P <= alpha) != (want.P <= alpha) {
				t.Fatalf("trial %d: verdict at alpha=%g differs: streaming p=%g batch p=%g", trial, alpha, got.P, want.P)
			}
		}
	}
}

// TestStreamingWelchKnownFixture pins the hand-computed Welch fixture
// a={1..5}, b={2,4,..,10}: mean diff -3, t = -3/sqrt(2.5/5+10/5),
// df = 2.5^2/(0.5^2/4 + 2^2/4) per the Welch-Satterthwaite formula.
func TestStreamingWelchKnownFixture(t *testing.T) {
	var st StreamingWelch
	st.A.AddAll([]float64{1, 2, 3, 4, 5})
	st.B.AddAll([]float64{2, 4, 6, 8, 10})
	res, err := st.Test(TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	const wantT = -1.8973665961010278 // -3/sqrt(0.5+2)
	const wantDF = 5.882352941176471  // 6.25/(0.0625+1)
	if math.Abs(res.T-wantT) > 1e-12 {
		t.Errorf("t = %.15g, want %.15g", res.T, wantT)
	}
	if math.Abs(res.DF-wantDF) > 1e-12 {
		t.Errorf("df = %.15g, want %.15g", res.DF, wantDF)
	}
	// p from the regularized incomplete beta at these values is ~0.1073;
	// pin loosely against an independent evaluation of the t CDF.
	wantP := 2 * StudentTCDF(wantT, wantDF)
	if math.Abs(res.P-wantP) > 1e-12 {
		t.Errorf("p = %.15g, want %.15g", res.P, wantP)
	}
	if res.P < 0.10 || res.P > 0.12 {
		t.Errorf("p = %g outside the known [0.10, 0.12] bracket", res.P)
	}
	if d := st.MeanDiff(); math.Abs(d-(-3)) > 1e-12 {
		t.Errorf("mean diff = %g, want -3", d)
	}
}

// TestRunningMomentsMatchesBatch checks Welford's accumulator against the
// batch mean/variance on random data, including catastrophic-cancellation
// bait (large common offset).
func TestRunningMomentsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(500)
		offset := 0.0
		if trial%3 == 0 {
			offset = 1e9
		}
		xs := make([]float64, n)
		var r RunningMoments
		for i := range xs {
			xs[i] = offset + rng.NormFloat64()
			r.Add(xs[i])
		}
		if r.Count() != n {
			t.Fatalf("count = %d, want %d", r.Count(), n)
		}
		if m := Mean(xs); math.Abs(r.Mean()-m) > 1e-6*(1+math.Abs(m)) {
			t.Fatalf("trial %d: mean %.15g vs %.15g", trial, r.Mean(), m)
		}
		if v := Variance(xs); math.Abs(r.Variance()-v) > 1e-6*(1+v) {
			t.Fatalf("trial %d: variance %.15g vs %.15g", trial, r.Variance(), v)
		}
	}
}

// TestStudentTUpperQuantileKnownValues pins the inverse t CDF against
// standard table critical values and the closed-form df=1 (Cauchy) and df=2
// distributions.
func TestStudentTUpperQuantileKnownValues(t *testing.T) {
	cases := []struct {
		q, df, want, tol float64
	}{
		{0.025, 10, 2.2281388519649385, 1e-8},
		{0.05, 5, 2.015048372669157, 1e-8},
		{0.025, 30, 2.0422724563012373, 1e-8},
		// df=1 is Cauchy: upper-q quantile = tan(pi*(0.5-q)).
		{0.05, 1, math.Tan(math.Pi * 0.45), 1e-8},
		{0.25, 1, 1, 1e-8},
		// df=2 closed form: CDF(t) = 1/2 + t/(2*sqrt(2+t^2)); q=0.025 -> t
		// solves that, known value 4.302652729911275.
		{0.025, 2, 4.302652729911275, 1e-8},
		// Symmetry: upper 0.975 quantile is the negative of the 0.025 one.
		{0.975, 10, -2.2281388519649385, 1e-8},
		{0.5, 7, 0, 1e-6},
	}
	for _, c := range cases {
		got := StudentTUpperQuantile(c.q, c.df)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("StudentTUpperQuantile(%g, df=%g) = %.12g, want %.12g", c.q, c.df, got, c.want)
		}
	}
	// Round trip: 1 - CDF(quantile(q)) == q across a grid (to the CDF's own
	// numerical accuracy, ~1e-8).
	for _, df := range []float64{1, 2, 5, 30, 500} {
		for _, q := range []float64{0.001, 0.01, 0.05, 0.2, 0.5, 0.8, 0.99} {
			tq := StudentTUpperQuantile(q, df)
			if p := 1 - StudentTCDF(tq, df); math.Abs(p-q) > 1e-7 {
				t.Errorf("round trip df=%g q=%g: got %g", df, q, p)
			}
		}
	}
	if !math.IsInf(StudentTUpperQuantile(0, 5), 1) || !math.IsInf(StudentTUpperQuantile(1, 5), -1) {
		t.Error("degenerate tail probabilities should map to infinities")
	}
}

// TestDecisive covers the three regimes of the sequential stopping helper:
// clearly separated samples decide significant, identical samples stay
// undecided at small n (their t hovers inside the band), and a decisively
// wrong-direction shift decides not-significant for a one-sided test.
func TestDecisive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sep, same, neg := StreamingWelch{}, StreamingWelch{}, StreamingWelch{}
	for i := 0; i < 400; i++ {
		x := rng.NormFloat64()
		sep.A.Add(x)
		sep.B.Add(10 + rng.NormFloat64())
		same.A.Add(rng.NormFloat64())
		same.B.Add(rng.NormFloat64())
		neg.A.Add(x)
		neg.B.Add(-10 + rng.NormFloat64())
	}
	z := NormalQuantile(0.999)
	if sig, dec := sep.Decisive(TwoSided, 0.05, z); !sig || !dec {
		t.Errorf("separated samples: sig=%v decided=%v, want both true", sig, dec)
	}
	// B is far *below* A, so the "B greater" one-sided test (alt=Less tests
	// mean(A) < mean(B)) is decisively not significant.
	if sig, dec := neg.Decisive(Less, 0.05, z); sig || !dec {
		t.Errorf("wrong-direction shift: sig=%v decided=%v, want decided rejection", sig, dec)
	}
	if _, dec := same.Decisive(TwoSided, 0.05, z); dec {
		t.Error("identical distributions at n=400 should stay inside the undecided band")
	}
	// Insufficient data never decides.
	var empty StreamingWelch
	if sig, dec := empty.Decisive(TwoSided, 0.05, z); sig || dec {
		t.Error("empty samples must be undecided")
	}
	// Degenerate zero-variance samples with distinct means decide instantly.
	var cst StreamingWelch
	cst.A.AddAll([]float64{1, 1, 1})
	cst.B.AddAll([]float64{2, 2, 2})
	if sig, dec := cst.Decisive(TwoSided, 0.05, z); !sig || !dec {
		t.Errorf("constant distinct samples: sig=%v decided=%v, want both true", sig, dec)
	}
}

// TestDecisiveAgreesWithFullRun simulates the sequential protocol: feed
// random pairs batch by batch, stop at the first decision, and check the
// stopped verdict against the full-sample batch verdict. Effects are either
// null or strong (the regimes the inference fast path sees); the decided
// verdict must agree with the full run in every trial at this margin.
func TestDecisiveAgreesWithFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	z := NormalQuantile(0.999)
	const total, batch, minN = 4000, 256, 512
	for trial := 0; trial < 60; trial++ {
		shift := 0.0
		if trial%2 == 0 {
			shift = 1.5
		}
		a := make([]float64, total)
		b := make([]float64, total)
		for i := range a {
			a[i] = shift + rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		var st StreamingWelch
		stopSig, stopped := false, false
		for n := 0; n < total && !stopped; n += batch {
			end := n + batch
			if end > total {
				end = total
			}
			st.A.AddAll(a[n:end])
			st.B.AddAll(b[n:end])
			if end < minN {
				continue
			}
			if sig, dec := st.Decisive(Greater, 0.05, z); dec {
				stopSig, stopped = sig, true
			}
		}
		fullRes, err := WelchTTest(a, b, Greater) // alt Greater: mean(a) > mean(b)
		if err != nil {
			t.Fatal(err)
		}
		if stopped {
			if stopSig != (fullRes.P <= 0.05) {
				t.Fatalf("trial %d (shift=%g): stopped verdict %v disagrees with full-run p=%g", trial, shift, stopSig, fullRes.P)
			}
		}
	}
}
