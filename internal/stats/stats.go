// Package stats provides the statistical primitives Murphy's diagnosis
// pipeline depends on: descriptive statistics, Pearson correlation, Welch's
// t-test (with a Student-t CDF built on the regularized incomplete beta
// function), normal-distribution helpers, MASE forecast error, and empirical
// CDFs. Everything is stdlib-only and deterministic given a seed.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator needs more observations
// than it was given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when fewer than two observations are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns both the mean and the sample standard deviation in one pass
// over the data.
func MeanStd(xs []float64) (mean, std float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	s := 0.0
	for _, x := range xs {
		d := x - mean
		s += d * d
	}
	return mean, math.Sqrt(s / float64(n-1))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant, and an error when the series
// lengths differ or fewer than two points are supplied.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// AbsPearson returns |Pearson(xs, ys)|, treating errors and NaNs as zero
// correlation. It is the convenience form used for feature ranking, where a
// degenerate series simply means "uninformative neighbor".
func AbsPearson(xs, ys []float64) float64 {
	r, err := Pearson(xs, ys)
	if err != nil || math.IsNaN(r) {
		return 0
	}
	return math.Abs(r)
}

// Centered is a precomputed centered view of one series: its mean, the
// mean-subtracted values, and their sum of squares. Training ranks every
// (neighbor, target) metric pair by |Pearson|; computing the correlation from
// two Centered series reduces the per-pair cost to a single dot product,
// instead of re-deriving both means and both sums of squares on every pair.
//
// The moments are accumulated in the same operation order as Pearson, so
// AbsPearsonCentered is bit-identical to AbsPearson on the raw series.
type Centered struct {
	// Mean is the arithmetic mean of the source series.
	Mean float64
	// Vals is the centered copy: source[i] - Mean.
	Vals []float64
	// SumSq is Σ Vals[i]² accumulated in index order.
	SumSq float64
}

// Center computes the centered view of xs in a single pass over the centered
// values (one prior pass derives the mean, exactly as Pearson does).
func Center(xs []float64) Centered {
	c := Centered{Mean: Mean(xs), Vals: make([]float64, len(xs))}
	for i, x := range xs {
		d := x - c.Mean
		c.Vals[i] = d
		c.SumSq += d * d
	}
	return c
}

// AbsPearsonCentered returns |Pearson| of the two source series given their
// precomputed centered views. It is bit-for-bit identical to calling
// AbsPearson on the raw series: the cross sum runs over the same centered
// differences in the same order, and the per-series sums of squares were
// accumulated identically by Center.
func AbsPearsonCentered(a, b *Centered) float64 {
	if len(a.Vals) != len(b.Vals) || len(a.Vals) < 2 {
		return 0
	}
	if a.SumSq == 0 || b.SumSq == 0 {
		return 0
	}
	sxy := 0.0
	for i, av := range a.Vals {
		sxy += av * b.Vals[i]
	}
	r := sxy / math.Sqrt(a.SumSq*b.SumSq)
	if math.IsNaN(r) {
		return 0
	}
	return math.Abs(r)
}

// TTestResult reports the outcome of a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // t statistic (mean(a) - mean(b), scaled)
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // p-value for the requested alternative
}

// Alternative selects the alternative hypothesis of a t-test.
type Alternative int

const (
	// TwoSided tests mean(a) != mean(b).
	TwoSided Alternative = iota
	// Less tests mean(a) < mean(b).
	Less
	// Greater tests mean(a) > mean(b).
	Greater
)

// WelchTTest performs Welch's unequal-variance t-test of the means of a and
// b under the given alternative. Murphy uses it to decide whether the
// counterfactual samples of the symptom metric are significantly lower than
// the factual ones (§4.2 step 4).
func WelchTTest(a, b []float64, alt Alternative) (TTestResult, error) {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, sa := MeanStd(a)
	mb, sb := MeanStd(b)
	va, vb := sa*sa/na, sb*sb/nb
	se := math.Sqrt(va + vb)
	if se == 0 {
		// Both samples are constant. Degenerate but well-defined: the test
		// is decided purely by the ordering of the two means.
		r := TTestResult{T: 0, DF: na + nb - 2, P: 1}
		switch {
		case ma == mb:
			r.P = 1
		case alt == Less && ma < mb, alt == Greater && ma > mb, alt == TwoSided:
			r.P = 0
			r.T = math.Inf(1)
			if ma < mb {
				r.T = math.Inf(-1)
			}
		}
		return r, nil
	}
	t := (ma - mb) / se
	df := (va + vb) * (va + vb) / (va*va/(na-1) + vb*vb/(nb-1))
	var p float64
	switch alt {
	case Less:
		p = StudentTCDF(t, df)
	case Greater:
		p = 1 - StudentTCDF(t, df)
	default:
		p = 2 * StudentTCDF(-math.Abs(t), df)
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

// StudentTCDF returns P(T <= t) for a Student-t distribution with df degrees
// of freedom, computed through the regularized incomplete beta function.
func StudentTCDF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	ib := RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's method).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// NormalCDF returns P(X <= x) for a standard normal variable.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the x such that NormalCDF(x) = p, for p in (0, 1),
// using the Acklam rational approximation refined by one Newton step.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Rational approximation coefficients.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const pl = 0.02425
	var x float64
	switch {
	case p < pl:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pl:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Newton refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// MASE returns the mean absolute scaled error of predictions against actuals,
// scaled by the in-sample naive (lag-1) forecast error of the training series
// (Hyndman & Koehler). This is the per-entity prediction error plotted in
// Fig 8a. It returns an error when inputs are degenerate.
func MASE(pred, actual, train []float64) (float64, error) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return 0, errors.New("stats: MASE length mismatch")
	}
	if len(train) < 2 {
		return 0, ErrInsufficientData
	}
	naive := 0.0
	for i := 1; i < len(train); i++ {
		naive += math.Abs(train[i] - train[i-1])
	}
	naive /= float64(len(train) - 1)
	mae := 0.0
	for i := range pred {
		mae += math.Abs(pred[i] - actual[i])
	}
	mae /= float64(len(pred))
	if naive == 0 {
		if mae == 0 {
			return 0, nil
		}
		// A perfectly flat training series with non-zero test error: the
		// error is effectively unbounded; report a large sentinel.
		return math.Inf(1), nil
	}
	return mae / naive, nil
}

// ECDF is an empirical cumulative distribution over a fixed sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from the sample xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of the sample that is <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th sample quantile, q in [0, 1], by nearest-rank.
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Len returns the sample size underlying the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// Quantile returns the q-th quantile of xs by nearest rank without building
// an ECDF. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	return NewECDF(xs).Quantile(q)
}

// Median returns the sample median (nearest rank), or NaN for empty input.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MAD returns the median absolute deviation around the median, the robust
// scale estimate used for anomaly ranking. Empty input yields NaN.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// RobustZ returns a robust z-score of x against hist: deviation from the
// median scaled by 1.4826*MAD (the normal-consistent MAD factor). When MAD
// is zero it falls back to the classic ZScore, and its magnitude is capped
// at 1e6 so a zero-variance history cannot produce infinities in rankings.
func RobustZ(x float64, hist []float64) float64 {
	if len(hist) == 0 {
		return 0
	}
	med := Median(hist)
	scale := 1.4826 * MAD(hist)
	var z float64
	if scale == 0 {
		z = ZScore(x, hist)
	} else {
		z = (x - med) / scale
	}
	switch {
	case z > 1e6 || math.IsInf(z, 1):
		return 1e6
	case z < -1e6 || math.IsInf(z, -1):
		return -1e6
	case math.IsNaN(z):
		return 0
	}
	return z
}

// ZScore returns how many standard deviations x lies from the mean of the
// historical sample hist. A zero-variance history yields 0 when x equals the
// mean and +Inf/-Inf otherwise; this is the "anomaly score" Murphy uses to
// rank root causes (§4.2).
func ZScore(x float64, hist []float64) float64 {
	m, s := MeanStd(hist)
	if s == 0 {
		switch {
		case x == m:
			return 0
		case x > m:
			return math.Inf(1)
		default:
			return math.Inf(-1)
		}
	}
	return (x - m) / s
}
