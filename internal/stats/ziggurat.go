// Fast normal deviates for the float32 sampling kernel: a splitmix64
// counter generator feeding a 128-layer Marsaglia–Tsang ziggurat. The
// float64 Gibbs kernel keeps math/rand's generator for bit-compatibility
// with the original sampler; the float32 fast path trades that stream for
// this one, which draws a standard normal in a handful of integer ops plus
// one multiply in the ~98% common case — several times faster per draw.

package stats

import "math"

// zigLayers is the number of ziggurat rectangles. 128 keeps the tables in
// two cache lines' worth of float64s while keeping the wedge-rejection rate
// under ~2%.
const zigLayers = 128

// zigR/zigV are the standard base-strip parameters for a 128-layer normal
// ziggurat: x_1 = zigR, and every rectangle (plus the base strip, tail
// included) has area zigV.
const (
	zigR = 3.442619855899
	zigV = 9.91256303526217e-3
)

var (
	// zigX[0] = zigV/f(zigR) is the virtual width of the base strip,
	// zigX[1] = zigR, then widths shrink to zigX[zigLayers] = 0.
	zigX [zigLayers + 1]float64
	// zigF[i] = exp(-zigX[i]²/2), the curve height at each layer edge.
	zigF [zigLayers + 1]float64
)

func init() {
	f := func(x float64) float64 { return math.Exp(-x * x / 2) }
	zigX[0] = zigV / f(zigR)
	zigX[1] = zigR
	for i := 1; i < zigLayers; i++ {
		// Each rectangle has area zigV: x_i·(f(x_{i+1})−f(x_i)) = zigV.
		h := f(zigX[i]) + zigV/zigX[i]
		if h >= 1 {
			// Only the topmost layer may close the ziggurat at the mode.
			if i < zigLayers-1 {
				panic("stats: ziggurat table construction failed")
			}
			zigX[i+1] = 0
			break
		}
		zigX[i+1] = math.Sqrt(-2 * math.Log(h))
		if zigX[i+1] >= zigX[i] {
			panic("stats: ziggurat table not monotone")
		}
	}
	zigX[zigLayers] = 0
	for i := range zigF {
		zigF[i] = f(zigX[i])
	}
}

// NormSource is a deterministic stream of standard-normal deviates: a
// splitmix64 sequence (the same finalizer the sampler uses for seed
// derivation) driving the ziggurat tables above. The zero value is a valid
// stream seeded at 0; use NewNormSource to seed. Not safe for concurrent
// use — one stream per Gibbs chain, like *rand.Rand in the float64 kernel.
type NormSource struct {
	state uint64
}

// NewNormSource returns a stream seeded with seed. Streams with different
// seeds start at unrelated points of the splitmix64 sequence.
func NewNormSource(seed int64) *NormSource {
	return &NormSource{state: uint64(seed)}
}

// next advances the splitmix64 counter and returns the finalized output.
func (s *NormSource) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next raw 64-bit draw of the underlying stream.
func (s *NormSource) Uint64() uint64 { return s.next() }

// uniform returns a draw in (0, 1] — never exactly 0, so callers can take
// its log.
func (s *NormSource) uniform() float64 {
	return (float64(s.next()>>11) + 1) * 0x1p-53
}

// normTabBits/normTabSize size the empirical noise table of the bulk float32
// path: 2^12 float32 entries = 16 KiB. The table is indexed randomly, so it
// must stay L1-resident next to the kernel's streaming chain vectors — at
// 64 KiB the random loads fell out of L1 and AddNoise32 dominated the
// profile; 16 KiB keeps the exact-moment guarantees (below) with enough
// distinct values (~2k magnitudes) for the mean statistics downstream.
const (
	normTabBits = 12
	normTabSize = 1 << normTabBits
)

// normTab32 is a fixed empirical standard normal: normTabSize/2 ziggurat
// draws from a pinned seed, antithetically mirrored (every entry appears
// with both signs, so the table's mean and every odd moment are exactly
// zero) and rescaled so the table variance is exactly 1. Bulk float32 noise
// resamples this table uniformly — an i.i.d. draw from a discrete
// distribution with the exact first two moments of N(0,1), which is what
// the downstream Welch t-tests on sample means consume. Tail resolution is
// bounded by the largest tabled draw (≈4σ at this size); the float64 kernel
// and the per-sample float32 fallback keep exact Gaussian streams.
var normTab32 [normTabSize]float32

func init() {
	src := NewNormSource(0x3273796d75727068) // fixed: the table is part of the kernel definition
	half := normTabSize / 2
	xs := make([]float64, half)
	sum2 := 0.0
	for i := range xs {
		x := src.NormFloat64()
		xs[i] = x
		sum2 += x * x
	}
	scale := math.Sqrt(float64(half) / sum2) // table variance exactly 1
	for i, x := range xs {
		v := float32(scale * x)
		normTab32[2*i] = v
		normTab32[2*i+1] = -v
	}
}

// AddNoise32 adds scale·N(0,1) noise to every element of dst, drawing from
// the empirical normal table. It is the bulk noise primitive of the float32
// Gibbs kernel: each splitmix64 output is split into two independent table
// indices (bits 0..13 and 32..45 of the well-mixed finalizer output), so the
// amortized per-element cost is half a splitmix64 finalizer plus one table
// load — an order of magnitude cheaper than a full ziggurat draw. The stream
// advances ceil(len(dst)/2) raw draws per call; the sequence is a pure
// function of the seed and the lengths of the calls made so far.
func (s *NormSource) AddNoise32(dst []float32, scale float32) {
	st := s.state
	n := len(dst)
	i := 0
	for ; i+1 < n; i += 2 {
		st += 0x9e3779b97f4a7c15
		z := st
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		dst[i] += scale * normTab32[z&(normTabSize-1)]
		dst[i+1] += scale * normTab32[(z>>32)&(normTabSize-1)]
	}
	if i < n {
		st += 0x9e3779b97f4a7c15
		z := st
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		dst[i] += scale * normTab32[z&(normTabSize-1)]
	}
	s.state = st
}

// NormFloat64 returns the next standard-normal deviate of the stream.
func (s *NormSource) NormFloat64() float64 {
	for {
		u := s.next()
		i := int(u & (zigLayers - 1))
		neg := u&zigLayers != 0
		// The top 53 bits give the within-layer uniform.
		x := float64(u>>11) * 0x1p-53 * zigX[i]
		if x < zigX[i+1] {
			// Strictly inside the narrower layer above: accept (~98%).
			if neg {
				return -x
			}
			return x
		}
		if i == 0 {
			// Base strip past zigR (the x < zigX[1] accept above already
			// kept everything inside the rectangle): sample the tail with
			// Marsaglia's exponential method.
			for {
				ex := -math.Log(s.uniform()) / zigR
				ey := -math.Log(s.uniform())
				if ey+ey >= ex*ex {
					if neg {
						return -(zigR + ex)
					}
					return zigR + ex
				}
			}
		}
		// Wedge: accept x with probability proportional to how far the
		// density at x pokes above the layer's flat top.
		if zigF[i]+float64(s.next()>>11)*0x1p-53*(zigF[i+1]-zigF[i]) < math.Exp(-x*x/2) {
			if neg {
				return -x
			}
			return x
		}
	}
}
