package stats

import (
	"math"
	"testing"
)

// TestNormSourceMoments checks mean/variance/skew/kurtosis of a large fixed
// sample against the standard normal within generous bounds (the seed is
// fixed, so this is deterministic, not flaky).
func TestNormSourceMoments(t *testing.T) {
	const n = 2_000_000
	src := NewNormSource(12345)
	var s1, s2, s3, s4 float64
	for i := 0; i < n; i++ {
		x := src.NormFloat64()
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("draw %d is %v", i, x)
		}
		s1 += x
		s2 += x * x
		s3 += x * x * x
		s4 += x * x * x * x
	}
	mean := s1 / n
	variance := s2/n - mean*mean
	skew := s3 / n
	kurt := s4 / n
	if math.Abs(mean) > 3e-3 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 5e-3 {
		t.Errorf("variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 1e-2 {
		t.Errorf("third moment = %v, want ~0", skew)
	}
	if math.Abs(kurt-3) > 5e-2 {
		t.Errorf("fourth moment = %v, want ~3", kurt)
	}
}

// TestNormSourceTails checks the tail mass beyond 1σ/2σ/3σ and that the
// ziggurat tail algorithm actually produces draws past the base strip edge.
func TestNormSourceTails(t *testing.T) {
	const n = 2_000_000
	src := NewNormSource(99)
	counts := [3]int{}
	beyondR := 0
	maxAbs := 0.0
	for i := 0; i < n; i++ {
		x := math.Abs(src.NormFloat64())
		for k, th := range [3]float64{1, 2, 3} {
			if x > th {
				counts[k]++
			}
		}
		if x > zigR {
			beyondR++
		}
		if x > maxAbs {
			maxAbs = x
		}
	}
	// 2·(1−Φ(k)) for k = 1, 2, 3.
	want := [3]float64{0.317310, 0.045500, 0.002700}
	for k := range counts {
		got := float64(counts[k]) / n
		if math.Abs(got-want[k]) > 0.15*want[k]+2e-4 {
			t.Errorf("P(|X|>%d) = %v, want ~%v", k+1, got, want[k])
		}
	}
	// P(|X| > 3.44) ≈ 5.8e-4: a 2M-draw sample must visit the tail.
	if beyondR == 0 {
		t.Error("no draws beyond the ziggurat base strip — tail path never taken")
	}
	if maxAbs < 4 {
		t.Errorf("max |draw| = %v over 2M draws, want > 4", maxAbs)
	}
}

// TestNormSourceDeterminism pins the stream to its seed: same seed, same
// sequence; different seed, different sequence.
func TestNormSourceDeterminism(t *testing.T) {
	a, b := NewNormSource(7), NewNormSource(7)
	for i := 0; i < 1000; i++ {
		if x, y := a.NormFloat64(), b.NormFloat64(); x != y {
			t.Fatalf("draw %d: %v != %v for equal seeds", i, x, y)
		}
	}
	c := NewNormSource(8)
	same := 0
	a = NewNormSource(7)
	for i := 0; i < 1000; i++ {
		if a.NormFloat64() == c.NormFloat64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 7 and 8 shared %d of 1000 draws", same)
	}
}

// TestZigguratTables sanity-checks the constructed tables: widths strictly
// decreasing, curve heights strictly increasing to 1, and the top layer
// closing near the mode.
func TestZigguratTables(t *testing.T) {
	for i := 0; i < zigLayers; i++ {
		if zigX[i+1] >= zigX[i] {
			t.Fatalf("zigX not strictly decreasing at %d: %v >= %v", i, zigX[i+1], zigX[i])
		}
		if zigF[i+1] <= zigF[i] {
			t.Fatalf("zigF not strictly increasing at %d", i)
		}
	}
	if zigX[zigLayers] != 0 {
		t.Errorf("zigX[%d] = %v, want 0", zigLayers, zigX[zigLayers])
	}
	if zigF[zigLayers] != 1 {
		t.Errorf("zigF[%d] = %v, want 1", zigLayers, zigF[zigLayers])
	}
	if zigX[1] != zigR || zigX[0] <= zigR {
		t.Errorf("base strip edges wrong: zigX[0]=%v zigX[1]=%v", zigX[0], zigX[1])
	}
}

func BenchmarkNormSource(b *testing.B) {
	src := NewNormSource(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.NormFloat64()
	}
	_ = sink
}
