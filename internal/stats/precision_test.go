package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamingWelchFloat32Rounding is the property test behind the float32
// kernel's statistical contract: feeding the *same* data through the
// streaming Welch test once at float64 and once rounded through float32 must
// move the t statistic by no more than first-order rounding analysis allows.
//
// Rounding x to float32 perturbs it by at most eps·|x| (eps = 2^-24), so with
// M = max|x|: the mean difference moves by at most 2·eps·M, and the standard
// error moves relatively by O(eps·M/sd). To first order
//
//	|Δt| ≤ eps·M·(2/se + 4·|t|/sd_min)
//
// and the test asserts that bound with an 8x safety factor for the
// higher-order and accumulation terms, across scales spanning unit data,
// large offsets (catastrophic-cancellation territory), and tiny variances.
func TestStreamingWelchFloat32Rounding(t *testing.T) {
	const eps = 1.0 / (1 << 24)
	rng := rand.New(rand.NewSource(7))
	type scale struct {
		offset, sd, shift float64
	}
	scales := []scale{
		{0, 1, 0.5},        // unit data
		{1000, 1, 0.8},     // large common offset, small signal
		{0, 1e-3, 5e-4},    // tiny variance
		{-50, 20, 3},       // wide spread
		{1e6, 300, 100},    // large magnitudes
		{0.1, 0.01, 0.004}, // small everything
	}
	for _, sc := range scales {
		for trial := 0; trial < 20; trial++ {
			n := 64 + rng.Intn(512)
			var w64, w32 StreamingWelch
			maxAbs, minSD := 0.0, math.Inf(1)
			for i := 0; i < n; i++ {
				a := sc.offset + sc.shift + rng.NormFloat64()*sc.sd
				b := sc.offset + rng.NormFloat64()*sc.sd
				w64.A.Add(a)
				w64.B.Add(b)
				w32.A.Add(float64(float32(a)))
				w32.B.Add(float64(float32(b)))
				if v := math.Abs(a); v > maxAbs {
					maxAbs = v
				}
				if v := math.Abs(b); v > maxAbs {
					maxAbs = v
				}
			}
			if sd := w64.A.StdDev(); sd < minSD {
				minSD = sd
			}
			if sd := w64.B.StdDev(); sd < minSD {
				minSD = sd
			}
			r64, err := w64.Test(TwoSided)
			if err != nil {
				t.Fatal(err)
			}
			r32, err := w32.Test(TwoSided)
			if err != nil {
				t.Fatal(err)
			}
			na, nb := float64(w64.A.Count()), float64(w64.B.Count())
			se := math.Sqrt(w64.A.Variance()/na + w64.B.Variance()/nb)
			if se == 0 || minSD == 0 {
				continue // degenerate; the zero-variance branch is pinned elsewhere
			}
			bound := 8 * eps * maxAbs * (2/se + 4*math.Abs(r64.T)/minSD)
			if d := math.Abs(r32.T - r64.T); d > bound {
				t.Errorf("scale %+v trial %d: |t32-t64| = %.3g exceeds rounding bound %.3g (t64=%.4g, n=%d)",
					sc, trial, d, bound, r64.T, n)
			}
		}
	}
}

// TestNoiseTableMoments pins the construction guarantees of the empirical
// noise table: the antithetic mirroring makes the mean (and every odd moment)
// exactly zero, and the rescaling step sets the variance to 1 up to float32
// rounding of the entries.
func TestNoiseTableMoments(t *testing.T) {
	var sum, sum2 float64
	for _, v := range normTab32 {
		sum += float64(v)
		sum2 += float64(v) * float64(v)
	}
	if sum != 0 {
		t.Errorf("table mean = %g, want exactly 0 (antithetic pairs)", sum/normTabSize)
	}
	if v := sum2 / normTabSize; math.Abs(v-1) > 1e-6 {
		t.Errorf("table variance = %v, want 1 within float32 rounding", v)
	}
	// Mirrored layout: entry 2i+1 is the exact negation of entry 2i.
	for i := 0; i < normTabSize; i += 2 {
		if normTab32[i] != -normTab32[i+1] {
			t.Fatalf("entries %d,%d not antithetic: %v, %v", i, i+1, normTab32[i], normTab32[i+1])
		}
	}
}

// TestAddNoise32 pins the bulk noise primitive: deterministic under the same
// seed, different across calls (the state advances), scaling linear in the
// scale argument, and sample moments consistent with N(0, scale²).
func TestAddNoise32(t *testing.T) {
	const n = 1 << 16
	a := make([]float32, n)
	b := make([]float32, n)
	NewNormSource(42).AddNoise32(a, 1)
	NewNormSource(42).AddNoise32(b, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// The state advances: a second call on the same source continues the
	// stream rather than repeating it.
	src := NewNormSource(42)
	c := make([]float32, n)
	d := make([]float32, n)
	src.AddNoise32(c, 1)
	src.AddNoise32(d, 1)
	same := 0
	for i := range c {
		if c[i] == d[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("second AddNoise32 call repeated the first call's draws")
	}
	// Adds (not overwrites), scaled by the scale argument.
	e := make([]float32, 4)
	for i := range e {
		e[i] = 10
	}
	NewNormSource(7).AddNoise32(e, 2)
	f := make([]float32, 4)
	NewNormSource(7).AddNoise32(f, 1)
	for i := range e {
		want := 10 + 2*f[i]
		if math.Abs(float64(e[i]-want)) > 1e-5 {
			t.Errorf("element %d: got %v, want base+2·draw = %v", i, e[i], want)
		}
	}
	// Sample moments over 64k draws: mean within ~5/sqrt(n), variance within
	// a few percent of 1.
	var sum, sum2 float64
	for _, v := range a {
		sum += float64(v)
		sum2 += float64(v) * float64(v)
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 5/math.Sqrt(n) {
		t.Errorf("sample mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("sample variance = %v, want ~1", variance)
	}
}
