package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWindowMomentsMatchesCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 120
	data := make([]float64, 0, n+500)
	for i := 0; i < n+500; i++ {
		data = append(data, 50+10*rng.NormFloat64())
	}
	var m WindowMoments
	m.Anchor(data[:n])
	for hi := n; hi < len(data); hi++ {
		m.Push(data[hi])
		m.Pop(data[hi-n])
		win := data[hi-n+1 : hi+1]
		ctr := Center(win)
		if got, want := m.Mean(), ctr.Mean; math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Fatalf("slide %d: mean %v want %v", hi, got, want)
		}
		if got, want := m.CenteredSumSq(), ctr.SumSq; math.Abs(got-want) > 1e-6*want {
			t.Fatalf("slide %d: CSS %v want %v", hi, got, want)
		}
	}
}

// TestWindowMomentsRecenterExact checks the recenter correction is the
// identity on the derived statistics: mean and centered sum of squares are
// unchanged (up to the rounding the correction itself removes), and S1 is
// exactly zero afterwards.
func TestWindowMomentsRecenterExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var m WindowMoments
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 1e6 + rng.NormFloat64()
	}
	m.Anchor(xs)
	// Slide far from the anchor so S1 accumulates.
	for i := 0; i < 64; i++ {
		m.Push(2e6 + rng.NormFloat64())
		m.Pop(xs[i])
	}
	meanBefore, cssBefore := m.Mean(), m.CenteredSumSq()
	d := m.Recenter()
	if m.S1 != 0 {
		t.Fatalf("S1 after recenter = %v, want exactly 0", m.S1)
	}
	if math.Abs(m.Mean()-meanBefore) > 1e-9*math.Abs(meanBefore) {
		t.Fatalf("mean changed by recenter: %v -> %v", meanBefore, m.Mean())
	}
	if math.Abs(m.CenteredSumSq()-cssBefore) > 1e-6*cssBefore+1e-9 {
		t.Fatalf("CSS changed by recenter: %v -> %v", cssBefore, m.CenteredSumSq())
	}
	if d == 0 {
		t.Fatalf("expected a non-zero recenter delta after a 1e6 level shift")
	}
}

// TestWindowMomentsShiftedBeatsRaw demonstrates why the sums are kept
// shifted: at mean≫σ the shifted CSS stays accurate where the raw
// Σx²−n·mean² form loses most of its digits.
func TestWindowMomentsShiftedBeatsRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 256)
	var rawS1, rawS2 float64
	for i := range xs {
		xs[i] = 1e9 + rng.NormFloat64()
		rawS1 += xs[i]
		rawS2 += xs[i] * xs[i]
	}
	var m WindowMoments
	m.Anchor(xs)
	want := Center(xs).SumSq
	rawCSS := rawS2 - rawS1*rawS1/float64(len(xs))
	shiftErr := math.Abs(m.CenteredSumSq()-want) / want
	rawErr := math.Abs(rawCSS-want) / want
	if shiftErr > 1e-10 {
		t.Fatalf("shifted CSS relative error %v, want < 1e-10", shiftErr)
	}
	if rawErr < 10*shiftErr {
		t.Fatalf("expected raw accumulation to be much worse: raw %v shifted %v", rawErr, shiftErr)
	}
}

func TestSortedWindowMedianMADBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 8, 63, 64, 301} {
		xs := make([]float64, n)
		for i := range xs {
			// Quantized values so duplicates occur.
			xs[i] = math.Round(rng.NormFloat64()*8) / 4
		}
		w := NewSortedWindow(xs)
		if got, want := w.Median(), Median(xs); got != want {
			t.Fatalf("n=%d: Median %v != stats.Median %v", n, got, want)
		}
		if got, want := w.MAD(), MAD(xs); got != want {
			t.Fatalf("n=%d: MAD %v != stats.MAD %v", n, got, want)
		}
	}
}

func TestSortedWindowSlideBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 97
	data := make([]float64, n+300)
	for i := range data {
		data[i] = math.Round(100*rng.NormFloat64()) / 10
	}
	w := NewSortedWindow(data[:n])
	for hi := n; hi < len(data); hi++ {
		w.Insert(data[hi])
		w.Remove(data[hi-n])
		win := data[hi-n+1 : hi+1]
		if got, want := w.Median(), Median(win); got != want {
			t.Fatalf("slide %d: Median %v != %v", hi, got, want)
		}
		if got, want := w.MAD(), MAD(win); got != want {
			t.Fatalf("slide %d: MAD %v != %v", hi, got, want)
		}
	}
}

func TestSortedWindowRemoveAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on removing an absent value")
		}
	}()
	NewSortedWindow([]float64{1, 2, 3}).Remove(4)
}

func TestDriftTrackerScore(t *testing.T) {
	train := []float64{1, 2, 1, 2, 1, 2, 1, 2, 1, 2}
	d := NewDriftTracker(16)
	if s := d.Score(train, 8); s != 0 {
		t.Fatalf("empty tracker score = %v, want 0", s)
	}
	// Perfect predictions: MASE 0.
	for i := 0; i < 10; i++ {
		d.Push(5, 5)
	}
	if s := d.Score(train, 8); s != 0 {
		t.Fatalf("perfect predictions score = %v, want 0", s)
	}
	// Far-off predictions: the naive error of train is 1, so MASE = |err|.
	d.Reset()
	for i := 0; i < 10; i++ {
		d.Push(0, 8)
	}
	if s := d.Score(train, 8); math.Abs(s-8) > 1e-12 {
		t.Fatalf("off predictions score = %v, want 8", s)
	}
	// Below the evidence floor the score stays 0.
	d.Reset()
	d.Push(0, 8)
	if s := d.Score(train, 8); s != 0 {
		t.Fatalf("under-evidence score = %v, want 0", s)
	}
}

func TestDriftTrackerRing(t *testing.T) {
	d := NewDriftTracker(4)
	for i := 0; i < 7; i++ {
		d.Push(float64(i), float64(i)+100)
	}
	preds, actuals := d.Pairs()
	if len(preds) != 4 || len(actuals) != 4 {
		t.Fatalf("ring kept %d pairs, want 4", len(preds))
	}
	for i, p := range preds {
		if want := float64(3 + i); p != want || actuals[i] != want+100 {
			t.Fatalf("pair %d = (%v,%v), want (%v,%v)", i, p, actuals[i], want, want+100)
		}
	}
}
