// Package metamorph is the correctness subsystem guarding the diagnosis
// pipeline end to end. Conventional unit tests cannot tell a subtly-wrong
// statistical ranking from a right one, so this package attacks the problem
// from two sides:
//
//   - an adversarial scenario fuzzer that composes randomized ground-truth
//     incidents (heavy hitters, noisy neighbors, cascade chains,
//     correlated-but-innocent confounders, enterprise crawler spikes) from
//     the microsim and enterprise topologies, every parameter derived from
//     one splitmix64-expanded seed so any failure replays exactly;
//   - metamorphic invariants over the full pipeline: a diagnosis must
//     survive entity renaming, edge-insertion-order permutation, affine
//     metric rescaling, and injection of disconnected decoy entities, must
//     never *gain* a root cause when the true cause's telemetry is ablated,
//     and every fast-path configuration (factor cache × early stopping ×
//     chains × train workers) must agree with the reference serial path.
//
// The same fuzzer feeds harness.RunAccuracy, whose precision/recall numbers
// cmd/accguard pins against testdata/acc_baseline.json in CI.
package metamorph

import (
	"fmt"
	"math/rand"

	"murphy/internal/core"
	"murphy/internal/enterprise"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// Case is one fuzzed ground-truth incident ready for diagnosis.
type Case struct {
	// Family is the scenario family that generated the case.
	Family string
	// Index is the case number within the family.
	Index int
	// Seed is the derived splitmix64 sub-seed every random choice of the
	// case came from. Logging it is enough to regenerate the case exactly:
	// Generate(Family, Index, base) with the same base yields the same Seed.
	Seed int64
	// DB is the recorded telemetry.
	DB *telemetry.DB
	// Symptom is the problematic (entity, metric) an operator would report.
	Symptom telemetry.Symptom
	// Truth is the injected root cause.
	Truth telemetry.EntityID
	// Accept contains Truth plus the additional entities counted as hits
	// under the relaxed criteria of §6.1.
	Accept map[telemetry.EntityID]bool
	// FaultStart is the slice at which the incident begins.
	FaultStart int
	// CallDAG lists the directed cause→effect edges of the affected
	// entrypoint's call tree — the honest DAG view a Sage-style diagnoser is
	// given (§6.1). Families whose environment has no usable causal DAG (the
	// cyclic enterprise topology) leave it nil; Sage is then structurally
	// inapplicable, exactly as in Table 1.
	CallDAG [][2]telemetry.EntityID
}

// Scenario families the fuzzer composes.
const (
	FamilyHeavyHitter   = "heavyhitter"   // Fig 5a interference: an aggressor client spikes
	FamilyNoisyNeighbor = "noisyneighbor" // §6.3 resource contention on a random container
	FamilyCascade       = "cascade"       // a deep call chain with a fault at a random depth
	FamilyConfounder    = "confounder"    // contention plus a correlated-but-innocent decoy client
	FamilyEnterprise    = "enterprise"    // Fig 1 crawler heavy hitter on the enterprise topology
)

// Families lists the scenario families in fixed order.
var Families = []string{FamilyHeavyHitter, FamilyNoisyNeighbor, FamilyCascade, FamilyConfounder, FamilyEnterprise}

// CaseSeed expands (base, family, index) into the case's sub-seed through
// the engine's splitmix64 finalizer: unrelated streams per family and index,
// a pure function of its inputs.
func CaseSeed(base int64, family string, index int) int64 {
	h := core.SplitMix64(uint64(base))
	for i := 0; i < len(family); i++ {
		h = core.SplitMix64(h ^ uint64(family[i]))
	}
	return int64(core.SplitMix64(h ^ uint64(index)*0x9e3779b97f4a7c15))
}

// Generate builds case number index of a family from a base seed. All
// randomness — topology choice, fault kind and placement, rates, durations —
// derives from CaseSeed(base, family, index), so a logged (family, index,
// base) triple replays the exact case.
func Generate(family string, index int, base int64) (*Case, error) {
	seed := CaseSeed(base, family, index)
	rng := rand.New(rand.NewSource(seed))
	var (
		c   *Case
		err error
	)
	switch family {
	case FamilyHeavyHitter:
		c, err = genHeavyHitter(rng, seed)
	case FamilyNoisyNeighbor:
		c, err = genNoisyNeighbor(rng, seed)
	case FamilyCascade:
		c, err = genCascade(rng, seed)
	case FamilyConfounder:
		c, err = genConfounder(rng, seed)
	case FamilyEnterprise:
		c, err = genEnterprise(rng, seed)
	default:
		return nil, fmt.Errorf("metamorph: unknown family %q", family)
	}
	if err != nil {
		return nil, fmt.Errorf("metamorph: %s[%d] seed=%d: %w", family, index, seed, err)
	}
	c.Family, c.Index, c.Seed = family, index, seed
	return c, nil
}

// acceptSet collects the truth and any additional acceptable entities.
func acceptSet(truth telemetry.EntityID, more ...telemetry.EntityID) map[telemetry.EntityID]bool {
	set := map[telemetry.EntityID]bool{truth: true}
	for _, id := range more {
		set[id] = true
	}
	return set
}

// genHeavyHitter randomizes the Fig 5a interference scenario: aggressor
// spike magnitude, base rates, and length all vary per case.
func genHeavyHitter(rng *rand.Rand, seed int64) (*Case, error) {
	opts := microsim.InterferenceOptions{
		Steps:             120 + rng.Intn(80),
		VictimBaseRPS:     60 + rng.Float64()*60,
		AggressorBaseRPS:  80 + rng.Float64()*60,
		AggressorSpikeRPS: 800 + rng.Float64()*800,
		Seed:              seed,
	}
	sc, err := microsim.Interference(opts)
	if err != nil {
		return nil, err
	}
	return fromScenario(sc), nil
}

// genNoisyNeighbor randomizes the §6.3 contention scenario: topology, fault
// kind, intensity, prior-incident count, and length.
func genNoisyNeighbor(rng *rand.Rand, seed int64) (*Case, error) {
	kinds := []microsim.FaultKind{microsim.FaultCPU, microsim.FaultMem, microsim.FaultDisk}
	topo := "hotel"
	if rng.Intn(4) == 0 {
		topo = "social"
	}
	opts := microsim.ContentionOptions{
		Topo:           topo,
		Steps:          160 + rng.Intn(80),
		PriorIncidents: rng.Intn(5),
		Kind:           kinds[rng.Intn(len(kinds))],
		Intensity:      0.45 + rng.Float64()*0.25,
		Seed:           seed,
	}
	sc, err := microsim.Contention(opts)
	if err != nil {
		return nil, err
	}
	return fromScenario(sc), nil
}

// fromScenario adapts a microsim scenario into a fuzz case.
func fromScenario(sc *microsim.Scenario) *Case {
	return &Case{
		DB:         sc.Result.DB,
		Symptom:    sc.Symptom,
		Truth:      sc.TruthEntity,
		Accept:     acceptSet(sc.TruthEntity, sc.Acceptable...),
		FaultStart: sc.FaultStart,
		CallDAG:    sc.CallDAG,
	}
}

// genCascade builds a linear call chain client → s0 → s1 → … → s(L-1), each
// service on its own node, and stresses the container of a random service at
// depth ≥ 1. The symptom is the client's end-to-end latency; the anomaly has
// to be traced down the whole chain.
func genCascade(rng *rand.Rand, seed int64) (*Case, error) {
	depth := 4 + rng.Intn(4) // 4..7 services
	nodes := make(map[string]float64, depth)
	defs := make([]*microsim.ServiceDef, 0, depth)
	for i := 0; i < depth; i++ {
		node := fmt.Sprintf("node-%d", i)
		nodes[node] = 4
		def := &microsim.ServiceDef{
			Name:          fmt.Sprintf("svc-%d", i),
			CostCPU:       0.002 + rng.Float64()*0.003,
			BaseLatencyMS: 1 + rng.Float64()*3,
			Node:          node,
		}
		if i+1 < depth {
			def.Children = []string{fmt.Sprintf("svc-%d", i+1)}
		}
		defs = append(defs, def)
	}
	topo := microsim.NewTopology("cascade", nodes, defs, "svc-0")
	steps := 140 + rng.Intn(60)
	// Keep the fault short relative to the training window: a fault that
	// occupies a quarter of the history inflates every historical std enough
	// that the coarse explanation labels (z-score based) never fire, which
	// would leave fuzzed cascades without explanation chains.
	faultDur := 10 + rng.Intn(8)
	faultStart := steps - faultDur
	target := fmt.Sprintf("svc-%d", 1+rng.Intn(depth-1))
	baseRPS := 80 + rng.Float64()*60
	sim := &microsim.Sim{
		Topo:  topo,
		Steps: steps,
		Workloads: []*microsim.Workload{{
			Name:  "client",
			Entry: "svc-0",
			RPS:   microsim.ConstantRPS(baseRPS, baseRPS*0.05, rng),
		}},
		Faults: []microsim.Fault{{
			Service:   target,
			Kind:      microsim.FaultCPU,
			Intensity: 0.5 + rng.Float64()*0.25,
			Start:     faultStart,
			Duration:  faultDur,
		}},
		Seed:      seed,
		NoiseFrac: 0.02,
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	truth := res.ContainerEntity[target]
	dag := append(microsim.VictimCallDAG(topo, res, "svc-0"),
		[2]telemetry.EntityID{res.ServiceEntity["svc-0"], res.ClientEntity["client"]})
	return &Case{
		DB:         res.DB,
		Symptom:    telemetry.Symptom{Entity: res.ClientEntity["client"], Metric: telemetry.MetricLatency, High: true},
		Truth:      truth,
		Accept:     acceptSet(truth, res.ServiceEntity[target], res.NodeEntity[topo.Services[target].Node]),
		FaultStart: faultStart,
		CallDAG:    dag,
	}, nil
}

// genConfounder is the contention scenario with an adversarial twist: a
// second, low-volume client whose request rate spikes in exactly the fault
// window. Its RPS correlates strongly with the symptom but its load is far
// too small to cause it — a ranking scheme keying on correlation alone will
// finger the decoy, the counterfactual test should not.
func genConfounder(rng *rand.Rand, seed int64) (*Case, error) {
	topo := microsim.HotelReservation()
	steps := 160 + rng.Intn(60)
	faultDur := 25 + rng.Intn(15)
	faultStart := steps - faultDur
	// The fault lands on a random service in the entry tree (all hotel
	// services are reachable from the frontend).
	names := topo.ServiceNames()
	target := names[1+rng.Intn(len(names)-1)]
	baseRPS := 100 + rng.Float64()*40
	decoyBase := 10 + rng.Float64()*10
	victim := &microsim.Workload{
		Name:  "client",
		Entry: "frontend",
		RPS:   microsim.ConstantRPS(baseRPS, baseRPS*0.05, rng),
	}
	// Decoy: spikes 3x inside the fault window — visible, correlated, and
	// causally irrelevant (its peak adds well under 0.1 CPU to one node).
	decoy := &microsim.Workload{
		Name:  "decoy",
		Entry: "user",
		RPS:   microsim.StepRPS(decoyBase, decoyBase*3, faultStart, steps, decoyBase*0.05, rng),
	}
	sim := &microsim.Sim{
		Topo:      topo,
		Steps:     steps,
		Workloads: []*microsim.Workload{victim, decoy},
		Faults: []microsim.Fault{{
			Service:   target,
			Kind:      microsim.FaultCPU,
			Intensity: 0.5 + rng.Float64()*0.25,
			Start:     faultStart,
			Duration:  faultDur,
		}},
		Seed:      seed,
		NoiseFrac: 0.02,
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	truth := res.ContainerEntity[target]
	dag := append(microsim.VictimCallDAG(topo, res, "frontend"),
		[2]telemetry.EntityID{res.ServiceEntity["frontend"], res.ClientEntity["client"]})
	return &Case{
		DB:         res.DB,
		Symptom:    telemetry.Symptom{Entity: res.ClientEntity["client"], Metric: telemetry.MetricLatency, High: true},
		Truth:      truth,
		Accept:     acceptSet(truth, res.ServiceEntity[target]),
		FaultStart: faultStart,
		CallDAG:    dag,
	}, nil
}

// genEnterprise is the Fig 1 crawler incident on a small randomized
// enterprise topology: one application's client demand multiplies inside the
// fault window, saturating its backend database VM. The symptom is the
// backend CPU; the truth is the client flow (with the client VM acceptable).
func genEnterprise(rng *rand.Rand, seed int64) (*Case, error) {
	opts := enterprise.GenOptions{
		Apps:          3,
		Hosts:         4,
		Switches:      1,
		MaxVMsPerTier: 2,
		Steps:         110 + rng.Intn(40),
		Seed:          seed,
	}
	env, err := enterprise.Generate(opts)
	if err != nil {
		return nil, err
	}
	appIx := rng.Intn(opts.Apps)
	factor := 4 + rng.Float64()*4
	start := opts.Steps - opts.Steps/5
	hook := func(e *enterprise.Env, st *enterprise.StepState) {
		if t := st.T(); t >= start && t < opts.Steps {
			st.ScaleDemand(appIx, factor)
		}
	}
	if err := env.Run(hook); err != nil {
		return nil, err
	}
	truth := env.ClientFlow(appIx)
	return &Case{
		DB:         env.DB,
		Symptom:    telemetry.Symptom{Entity: env.DBVM(appIx), Metric: telemetry.MetricCPU, High: true},
		Truth:      truth,
		Accept:     acceptSet(truth, env.Client(appIx), env.WebVM(appIx)),
		FaultStart: start,
	}, nil
}
