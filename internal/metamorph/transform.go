package metamorph

import (
	"fmt"
	"math/rand"
	"sort"

	"murphy/internal/telemetry"
	"murphy/internal/timeseries"
)

// Rename rewrites every entity ID to an order-preserving opaque name
// ("ent-000042", assigned in sorted-ID order) and returns the transformed
// case plus the inverse mapping (new → old). The rename is monotone on
// purpose: the pipeline's deterministic tie-breaks (BFS over sorted neighbor
// lists, score ties broken by entity ID) compare IDs lexicographically, so an
// order-preserving rename must reproduce the reference diagnosis bit for bit
// once the RNG seed hook replays the original IDs' streams. Entity names,
// apps, and attrs are preserved — only IDs change.
func Rename(c *Case) (*Case, map[telemetry.EntityID]telemetry.EntityID) {
	ids := append([]telemetry.EntityID(nil), c.DB.Entities()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fwd := make(map[telemetry.EntityID]telemetry.EntityID, len(ids))
	inv := make(map[telemetry.EntityID]telemetry.EntityID, len(ids))
	for i, id := range ids {
		nid := telemetry.EntityID(fmt.Sprintf("ent-%06d", i))
		fwd[id], inv[nid] = nid, id
	}
	db := telemetry.NewDB(c.DB.IntervalSeconds)
	for _, id := range c.DB.Entities() { // preserve insertion order
		old := c.DB.Entity(id)
		e := *old
		e.ID = fwd[id]
		if err := db.AddEntity(&e); err != nil {
			panic("metamorph: rename: " + err.Error())
		}
		for _, name := range c.DB.MetricNames(id) {
			if err := db.SetSeries(e.ID, name, c.DB.Series(id, name).Clone()); err != nil {
				panic("metamorph: rename: " + err.Error())
			}
		}
	}
	for _, from := range c.DB.Entities() {
		for _, to := range c.DB.OutNeighbors(from) {
			if err := db.Associate(fwd[from], fwd[to], telemetry.Directed); err != nil {
				panic("metamorph: rename: " + err.Error())
			}
		}
	}
	out := *c
	out.DB = db
	out.Symptom.Entity = fwd[c.Symptom.Entity]
	out.Truth = fwd[c.Truth]
	out.Accept = make(map[telemetry.EntityID]bool, len(c.Accept))
	for id := range c.Accept {
		out.Accept[fwd[id]] = true
	}
	out.CallDAG = make([][2]telemetry.EntityID, len(c.CallDAG))
	for i, e := range c.CallDAG {
		out.CallDAG[i] = [2]telemetry.EntityID{fwd[e[0]], fwd[e[1]]}
	}
	return &out, inv
}

// PermuteEdges rebuilds the case's association edges in a seed-shuffled
// insertion order. The monitoring DB's neighbor accessors sort their output,
// so edge-insertion order must be immaterial: the transformed case must
// diagnose bit-identically.
func PermuteEdges(c *Case, seed int64) *Case {
	type edge struct{ from, to telemetry.EntityID }
	var edges []edge
	for _, from := range c.DB.Entities() {
		for _, to := range c.DB.OutNeighbors(from) {
			edges = append(edges, edge{from, to})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	db := c.DB.Clone()
	db.RemoveAllEdges()
	for _, e := range edges {
		if err := db.Associate(e.from, e.to, telemetry.Directed); err != nil {
			panic("metamorph: permute: " + err.Error())
		}
	}
	out := *c
	out.DB = db
	// The causal call DAG's edge list gets the same treatment: insertion
	// order must be immaterial to any diagnoser consuming it.
	out.CallDAG = append([][2]telemetry.EntityID(nil), c.CallDAG...)
	rng.Shuffle(len(out.CallDAG), func(i, j int) { out.CallDAG[i], out.CallDAG[j] = out.CallDAG[j], out.CallDAG[i] })
	return &out
}

// rescalableMetrics are the metric names whose units are environment-defined
// (milliseconds vs seconds, bytes vs kilobytes): the pipeline must tolerate a
// positive linear rescaling of any of them. Metrics with absolute semantics
// (utilization fractions, drop rates, session counts — the conservative
// pruning thresholds of §4.2's footnote) are excluded: scaling those
// legitimately changes what counts as anomalous.
var rescalableMetrics = []string{
	telemetry.MetricLatency,
	telemetry.MetricRPS,
	telemetry.MetricRTT,
	telemetry.MetricThroughput,
	telemetry.MetricNetTx,
	telemetry.MetricNetRx,
	telemetry.MetricDiskRead,
	telemetry.MetricDiskWrite,
}

// Rescale multiplies every unit-bearing metric by a per-metric power-of-two
// factor drawn from the seed (the same factor for every entity carrying the
// metric, as a real unit change would). Power-of-two factors keep the
// float64 mantissas exact, so the only drift the pipeline sees is the ridge
// penalty's mild scale sensitivity; the certified root-cause set must
// survive.
func Rescale(c *Case, seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	factors := make(map[string]float64, len(rescalableMetrics))
	choices := []float64{0.25, 0.5, 2, 4}
	for _, name := range rescalableMetrics {
		factors[name] = choices[rng.Intn(len(choices))]
	}
	db := c.DB.Clone()
	for _, id := range db.Entities() {
		for _, name := range db.MetricNames(id) {
			f, ok := factors[name]
			if !ok {
				continue
			}
			s := db.Series(id, name)
			vals := s.Values()
			scaled := make([]float64, len(vals))
			for i, v := range vals {
				if timeseries.IsMissing(v) {
					scaled[i] = v
					continue
				}
				scaled[i] = v * f
			}
			if err := db.SetSeries(id, name, timeseries.FromValues(scaled)); err != nil {
				panic("metamorph: rescale: " + err.Error())
			}
		}
	}
	out := *c
	out.DB = db
	return &out
}

// InjectDecoys adds 1–3 wildly anomalous entities that have no association
// with anything: disconnected telemetry the relationship graph must never
// reach from the symptom. The diagnosis must be bit-identical.
func InjectDecoys(c *Case, seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	db := c.DB.Clone()
	n := 1 + rng.Intn(3)
	steps := db.Len()
	for i := 0; i < n; i++ {
		id := telemetry.EntityID(fmt.Sprintf("decoy/disconnected-%d", i))
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeContainer, Name: string(id)}); err != nil {
			panic("metamorph: decoy: " + err.Error())
		}
		for _, name := range []string{telemetry.MetricCPU, telemetry.MetricLatency} {
			s := timeseries.New()
			level := rng.Float64()
			for t := 0; t < steps; t++ {
				v := level + rng.NormFloat64()*0.01
				if t >= c.FaultStart { // spike exactly in the incident window
					v += 10 + rng.Float64()*10
				}
				s.Set(t, v)
			}
			if err := db.SetSeries(id, name, s); err != nil {
				panic("metamorph: decoy: " + err.Error())
			}
		}
	}
	out := *c
	out.DB = db
	return &out
}

// AblateTruth erases the incident's evidence at its source: every metric of
// the true-cause entity is flattened to its pre-fault mean from FaultStart
// on. With the causal signal gone the pipeline may certify fewer causes but
// must never certify a new one — and never the ablated truth itself.
func AblateTruth(c *Case) *Case {
	db := c.DB.Clone()
	for _, name := range db.MetricNames(c.Truth) {
		s := db.Series(c.Truth, name)
		vals := s.Values()
		if c.FaultStart <= 0 || c.FaultStart >= len(vals) {
			continue
		}
		sum, n := 0.0, 0
		for _, v := range vals[:c.FaultStart] {
			if timeseries.IsMissing(v) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			continue
		}
		mean := sum / float64(n)
		flat := make([]float64, len(vals))
		copy(flat, vals[:c.FaultStart])
		for t := c.FaultStart; t < len(vals); t++ {
			flat[t] = mean
		}
		if err := db.SetSeries(c.Truth, name, timeseries.FromValues(flat)); err != nil {
			panic("metamorph: ablate: " + err.Error())
		}
	}
	out := *c
	out.DB = db
	return &out
}
