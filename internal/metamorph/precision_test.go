package metamorph

import (
	"testing"

	"murphy/internal/core"
)

// TestMetamorphFloat32Families validates the float32 fast-path kernel across
// every fuzzed family with the two invariants its design promises:
//
//   - Rescale equivalence *within* the float32 kernel: an affine rescaling of
//     unit-bearing metrics must leave the certified root-cause set intact,
//     exactly as the float64 rescale invariant demands. Both runs share the
//     same deterministic noise streams, so this holds as set equality.
//
//   - Decisive-cause agreement *against* float64: the float32 kernel draws
//     from different noise streams with different rounding, so it sits in the
//     same statistical-noise band as extra chains or early stopping —
//     decisive causes (p and effect with stream-stable margin) must match
//     exactly; borderline bystanders may flip, and empirically ~1 in 6 fuzzed
//     cases flips one. The Table-2 workload's full certified-set equality is
//     pinned separately by the fastpath harness (F32CausesIdentical).
func TestMetamorphFloat32Families(t *testing.T) {
	n := casesPerFamily(t, 2)
	for _, fam := range Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < n; i++ {
				c, err := Generate(fam, i, fixedBase)
				if err != nil {
					t.Fatal(err)
				}
				f32 := Options{Samples: crossCheckSamples, Precision: core.PrecisionFloat32}
				ref32, err := Diagnose(c, f32)
				if err != nil {
					t.Fatalf("float32 reference: %v", err)
				}

				// Rescale equivalence at float32.
				got, err := Diagnose(Rescale(c, c.Seed+2), f32)
				if err != nil {
					t.Fatalf("float32 rescale: %v", err)
				}
				if err := sameCertified(ref32, got, identity); err != nil {
					t.Errorf("float32 rescale invariant: %v (replay: Generate(%q, %d, %d))", err, fam, i, fixedBase)
				}

				// Decisive-cause agreement with the float64 kernel.
				ref64, err := Diagnose(c, Options{Samples: crossCheckSamples})
				if err != nil {
					t.Fatalf("float64 reference: %v", err)
				}
				if err := agreeCertified(ref64, ref32); err != nil {
					t.Errorf("float32 vs float64: %v (replay: Generate(%q, %d, %d))", err, fam, i, fixedBase)
				}
			}
		})
	}
}

// TestMetamorphFloat32Deterministic pins the float32 kernel's replay
// contract: identical case and configuration must reproduce the identical
// diagnosis (entity, score, p-value, effect, sample count) — the fast path
// trades the float64 kernel's streams away but not its determinism.
func TestMetamorphFloat32Deterministic(t *testing.T) {
	for _, fam := range Families {
		c, err := Generate(fam, 0, fixedBase)
		if err != nil {
			t.Fatal(err)
		}
		f32 := Options{Samples: crossCheckSamples, Precision: core.PrecisionFloat32}
		a, err := Diagnose(c, f32)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Diagnose(c, f32)
		if err != nil {
			t.Fatal(err)
		}
		if err := bitIdentical(a, b, identity); err != nil {
			t.Errorf("%s: float32 rerun differs: %v", fam, err)
		}
	}
}
