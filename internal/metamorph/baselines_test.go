// Baseline metamorphic invariants: the NetMedic / ExplainIt / Sage
// comparison points must be as transform-stable as Murphy itself, or the
// comparative accuracy table would measure harness artifacts instead of
// methods. This lives in an external test package because the invariants
// drive the baselines through the harness's shared Diagnoser adapters
// (harness imports metamorph).
package metamorph_test

import (
	"testing"

	"murphy/internal/harness"
	"murphy/internal/metamorph"
	"murphy/internal/netmedic"
	"murphy/internal/telemetry"
)

// baselineSchemes are the diagnosers under invariant test. Murphy's rename
// invariance needs the RNG seed hook and is already covered bit-for-bit by
// metamorph.CheckInvariants; the baselines are sampling-free, so their
// rankings must survive the transforms with no hooks at all.
func baselineSchemes() []harness.Diagnoser {
	var out []harness.Diagnoser
	for _, d := range harness.Diagnosers() {
		if d.Name() != harness.SchemeMurphy {
			out = append(out, d)
		}
	}
	return out
}

func env(t *testing.T, c *metamorph.Case) *harness.CaseEnv {
	t.Helper()
	e, err := harness.NewCaseEnv(c)
	if err != nil {
		t.Fatalf("%s[%d] seed=%d: %v", c.Family, c.Index, c.Seed, err)
	}
	return e
}

func ranking(t *testing.T, d harness.Diagnoser, e *harness.CaseEnv) []telemetry.EntityID {
	t.Helper()
	r, err := d.Diagnose(e)
	if err != nil {
		t.Fatalf("%s: %v", d.Name(), err)
	}
	return r
}

func equalIDs(a, b []telemetry.EntityID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBaselineRenameInvariant: an order-preserving entity rename must leave
// every baseline's ranking identical modulo the renaming. The baselines rank
// by data-derived scores with entity-ID tie-breaks, and a monotone rename
// preserves ID comparisons, so the mapped-back ranking must match exactly.
func TestBaselineRenameInvariant(t *testing.T) {
	for _, fam := range metamorph.Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			c, err := metamorph.Generate(fam, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref := env(t, c)
			renamed, inv := metamorph.Rename(c)
			got := env(t, renamed)
			for _, d := range baselineSchemes() {
				want := ranking(t, d, ref)
				back := ranking(t, d, got)
				mapped := make([]telemetry.EntityID, len(back))
				for i, id := range back {
					mapped[i] = inv[id]
				}
				if !equalIDs(want, mapped) {
					t.Errorf("%s: ranking not rename-invariant:\nref:     %v\nrenamed: %v", d.Name(), want, mapped)
				}
			}
		})
	}
}

// TestBaselinePermuteEdgesInvariant: association-edge (and call-DAG edge)
// insertion order must be immaterial to every method — the DB's neighbor
// accessors sort, and the Sage adapter seeds its BFS deterministically.
// Murphy is included: its permute invariance holds bit-for-bit with no hook.
func TestBaselinePermuteEdgesInvariant(t *testing.T) {
	for _, fam := range metamorph.Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			c, err := metamorph.Generate(fam, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref := env(t, c)
			got := env(t, metamorph.PermuteEdges(c, c.Seed+1))
			for _, d := range harness.Diagnosers() {
				want := ranking(t, d, ref)
				perm := ranking(t, d, got)
				if !equalIDs(want, perm) {
					t.Errorf("%s: ranking depends on edge insertion order:\nref:      %v\npermuted: %v", d.Name(), want, perm)
				}
			}
		})
	}
}

// TestRescaleKeepsNetMedicAbnormalityOrder: a per-metric power-of-two unit
// rescale multiplies means and standard deviations by the same exact factor,
// so every z-score — and therefore NetMedic's per-entity abnormality and its
// induced ordering — must survive bit for bit.
func TestRescaleKeepsNetMedicAbnormalityOrder(t *testing.T) {
	for _, fam := range metamorph.Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			c, err := metamorph.Generate(fam, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			scaled := metamorph.Rescale(c, c.Seed+2)
			hi := c.DB.Len()
			lo := hi - metamorph.BaseConfig().TrainWindow
			if lo < 0 {
				lo = 0
			}
			for _, id := range c.DB.Entities() {
				a := netmedic.Abnormality(c.DB, id, lo, hi)
				b := netmedic.Abnormality(scaled.DB, id, lo, hi)
				if a != b {
					t.Errorf("abnormality of %s changed under rescale: %v -> %v", id, a, b)
				}
			}
		})
	}
}
