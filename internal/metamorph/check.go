package metamorph

import (
	"context"
	"fmt"
	"math"
	"sort"

	"murphy/internal/core"
	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// Options selects one fast-path configuration of the pipeline. The zero
// value is the reference serial path every invariant compares against.
type Options struct {
	// Cache trains through a fresh FactorCache (exercising the cache fill
	// path; a second Train through the same cache exercises the hit path).
	Cache bool
	// EarlyStop enables the sequential Welch test.
	EarlyStop bool
	// Chains is the Gibbs chain count (0/1 = single stream).
	Chains int
	// Workers is the training worker pool size (0/1 = serial).
	Workers int
	// Store trains through a fresh incremental factor store (the anchoring
	// pass, which promises bit-identical factors to a full retrain).
	Store bool
	// Precision selects the sampling kernel width (the zero value is the
	// bit-stable float64 reference; PrecisionFloat32 is the fast path).
	Precision core.Precision
	// SeedFor overrides the per-candidate-pair RNG seed derivation (used by
	// the rename invariant to replay the original IDs' streams).
	SeedFor func(candidate, symptom telemetry.EntityID) int64
	// Samples overrides the Monte-Carlo budget (0 = BaseConfig's).
	Samples int
}

// BaseConfig is the reduced-budget Murphy configuration all metamorphic runs
// use: the code path is identical to production, the Monte-Carlo and
// training budgets are sized so a fuzzed case diagnoses in tens of
// milliseconds.
func BaseConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Samples = 96
	cfg.TrainWindow = 120
	return cfg
}

// Diagnose trains and diagnoses one case under the given configuration.
func Diagnose(c *Case, opt Options) (*core.Diagnosis, error) {
	cfg := BaseConfig()
	cfg.EarlyStop = opt.EarlyStop
	cfg.Chains = opt.Chains
	cfg.Sampler.Precision = opt.Precision
	cfg.SeedFor = opt.SeedFor
	if opt.Samples > 0 {
		cfg.Samples = opt.Samples
	}
	g, err := graph.Build(c.DB, []telemetry.EntityID{c.Symptom.Entity}, -1)
	if err != nil {
		return nil, fmt.Errorf("build graph: %w", err)
	}
	topts := core.TrainOpts{Now: -1, Workers: opt.Workers}
	if opt.Cache {
		topts.Cache = core.NewFactorCache(4)
	}
	if opt.Store {
		topts.Store = core.NewFactorStore()
	}
	model, err := core.TrainOpt(context.Background(), c.DB, g, cfg, topts)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	diag, err := model.Diagnose(c.Symptom)
	if err != nil {
		return nil, fmt.Errorf("diagnose: %w", err)
	}
	return diag, nil
}

// identity is the no-op entity back-mapping.
func identity(id telemetry.EntityID) telemetry.EntityID { return id }

// certifiedIDs returns the certified cause entities back-mapped through
// back and sorted.
func certifiedIDs(d *core.Diagnosis, back func(telemetry.EntityID) telemetry.EntityID) []telemetry.EntityID {
	out := make([]telemetry.EntityID, len(d.Causes))
	for i, rc := range d.Causes {
		out[i] = back(rc.Entity)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sameCertified checks that two diagnoses certified the same root-cause set.
func sameCertified(ref, got *core.Diagnosis, back func(telemetry.EntityID) telemetry.EntityID) error {
	a, b := certifiedIDs(ref, identity), certifiedIDs(got, back)
	if len(a) != len(b) {
		return fmt.Errorf("certified %d causes, reference certified %d (%v vs %v)", len(b), len(a), b, a)
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("certified set differs from reference: %v vs %v", b, a)
		}
	}
	return nil
}

// bitIdentical checks that two diagnoses agree bit for bit on every
// certified cause (entity, score, p-value, effect, sample count) after
// back-mapping got's entities. Both lists are compared in back-mapped entity
// order so exact score ties cannot produce spurious mismatches.
func bitIdentical(ref, got *core.Diagnosis, back func(telemetry.EntityID) telemetry.EntityID) error {
	if err := sameCertified(ref, got, back); err != nil {
		return err
	}
	if len(ref.Candidates) != len(got.Candidates) {
		return fmt.Errorf("candidate space %d vs reference %d", len(got.Candidates), len(ref.Candidates))
	}
	type row struct {
		entity           telemetry.EntityID
		score, p, effect float64
		samples          int
	}
	collect := func(d *core.Diagnosis, back func(telemetry.EntityID) telemetry.EntityID) []row {
		rows := make([]row, len(d.Causes))
		for i, rc := range d.Causes {
			rows[i] = row{back(rc.Entity), rc.Score, rc.PValue, rc.Effect, rc.SamplesUsed}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].entity < rows[j].entity })
		return rows
	}
	ra, rb := collect(ref, identity), collect(got, back)
	for i := range ra {
		a, b := ra[i], rb[i]
		if a.entity != b.entity ||
			math.Float64bits(a.score) != math.Float64bits(b.score) ||
			math.Float64bits(a.p) != math.Float64bits(b.p) ||
			math.Float64bits(a.effect) != math.Float64bits(b.effect) ||
			a.samples != b.samples {
			return fmt.Errorf("cause %s: got (score=%v p=%v eff=%v n=%d), reference (score=%v p=%v eff=%v n=%d)",
				a.entity, b.score, b.p, b.effect, b.samples, a.score, a.p, a.effect, a.samples)
		}
	}
	return nil
}

// decisive reports whether a certified cause's verdict has enough
// statistical margin to survive any equally valid RNG stream. Across
// independent Gibbs streams a candidate's t-statistic moves by roughly one
// standard unit (the effect estimate shifts ~1 standard error per stream,
// more when early stopping truncates the sample), so a verdict is only
// stream-stable when it clears the certification boundary by several
// stream-sigmas, i.e. by orders of magnitude in p, not a factor of ten:
// p ≤ Alpha×1e-8 puts the t-statistic ≈4 stream-sigmas above the
// certification threshold, and effect ≥ 3×MinEffect leaves the effect
// boundary ≥4 standard errors of slack at that significance. (Empirically
// the fuzzed suites separate cleanly: genuine causes land at p ≤ 1e-50 with
// effects ≥ 0.7, while correlated bystanders oscillate between p ≈ 1e-7 and
// non-certification from stream to stream.) Causes without that margin are
// borderline and may flip under configurations that legitimately alter
// sampling.
func decisive(rc core.RootCause, cfg core.Config) bool {
	return rc.PValue <= cfg.Alpha*1e-8 && rc.Effect >= cfg.MinEffect*3
}

// agreeCertified checks that two diagnoses agree on every decisive cause:
// a decisive cause on either side must be certified on the other. Borderline
// causes may differ — that slack is exactly the statistical noise band the
// sampling configurations are allowed to occupy.
func agreeCertified(ref, got *core.Diagnosis) error {
	cfg := BaseConfig()
	inGot := map[telemetry.EntityID]bool{}
	for _, rc := range got.Causes {
		inGot[rc.Entity] = true
	}
	inRef := map[telemetry.EntityID]bool{}
	for _, rc := range ref.Causes {
		inRef[rc.Entity] = true
	}
	for _, rc := range ref.Causes {
		if decisive(rc, cfg) && !inGot[rc.Entity] {
			return fmt.Errorf("decisive reference cause %s (p=%.2g eff=%.3f) lost", rc.Entity, rc.PValue, rc.Effect)
		}
	}
	for _, rc := range got.Causes {
		if decisive(rc, cfg) && !inRef[rc.Entity] {
			return fmt.Errorf("decisive cause %s (p=%.2g eff=%.3f) gained over the reference", rc.Entity, rc.PValue, rc.Effect)
		}
	}
	return nil
}

// CheckInvariants runs every metamorphic invariant of one case against its
// reference diagnosis and returns an error naming the first violation. The
// case's (Family, Index, Seed) triple in the error is enough to replay it.
func CheckInvariants(c *Case) error {
	ref, err := Diagnose(c, Options{})
	if err != nil {
		return caseErr(c, "reference", err)
	}

	// Rename: order-preserving ID rewrite + original seed streams → the
	// diagnosis must survive bit for bit.
	renamed, inv := Rename(c)
	baseSeed := BaseConfig().Seed
	seedFor := func(a, d telemetry.EntityID) int64 {
		return core.PairSeed(baseSeed, inv[a], inv[d])
	}
	got, err := Diagnose(renamed, Options{SeedFor: seedFor})
	if err != nil {
		return caseErr(c, "rename", err)
	}
	back := func(id telemetry.EntityID) telemetry.EntityID { return inv[id] }
	if err := bitIdentical(ref, got, back); err != nil {
		return caseErr(c, "rename", err)
	}

	// Edge-insertion-order permutation: neighbor accessors sort, so the
	// result must be bit-identical.
	got, err = Diagnose(PermuteEdges(c, c.Seed+1), Options{})
	if err != nil {
		return caseErr(c, "permute-edges", err)
	}
	if err := bitIdentical(ref, got, identity); err != nil {
		return caseErr(c, "permute-edges", err)
	}

	// Affine rescaling of unit-bearing metrics: the ridge penalty is mildly
	// scale-sensitive, so the guarantee is outcome-level — the certified
	// root-cause set survives.
	got, err = Diagnose(Rescale(c, c.Seed+2), Options{})
	if err != nil {
		return caseErr(c, "rescale", err)
	}
	if err := sameCertified(ref, got, identity); err != nil {
		return caseErr(c, "rescale", err)
	}

	// Disconnected decoys: unreachable from the symptom, so bit-identical.
	got, err = Diagnose(InjectDecoys(c, c.Seed+3), Options{})
	if err != nil {
		return caseErr(c, "inject-decoys", err)
	}
	if err := bitIdentical(ref, got, identity); err != nil {
		return caseErr(c, "inject-decoys", err)
	}

	// Ablating the truth's telemetry: monotone degradation. Flattening the
	// true cause's metrics rewires every factor that used them as features,
	// so blame legitimately shifts onto correlated bystanders — what must
	// never happen is the diagnosis getting *better* at finding the incident
	// after its evidence was deleted. Concretely: the truth itself must not
	// stay certified, and a case the reference missed must not become a hit.
	got, err = Diagnose(AblateTruth(c), Options{})
	if err != nil {
		return caseErr(c, "ablate-truth", err)
	}
	for _, rc := range got.Causes {
		if rc.Entity == c.Truth {
			return caseErr(c, "ablate-truth", fmt.Errorf("truth %s still certified after its telemetry was ablated", rc.Entity))
		}
	}
	if !hitTopK(ref, c.Accept, 5) && hitTopK(got, c.Accept, 5) {
		return caseErr(c, "ablate-truth", fmt.Errorf("ablating the truth turned a top-5 miss into a top-5 hit: %v", certifiedIDs(got, identity)))
	}
	return nil
}

// hitTopK reports whether any acceptable entity ranks in the certified
// top k of the diagnosis.
func hitTopK(d *core.Diagnosis, accept map[telemetry.EntityID]bool, k int) bool {
	for i, id := range d.Ranked() {
		if i >= k {
			break
		}
		if accept[id] {
			return true
		}
	}
	return false
}

// FastPathGrid enumerates every fast-path configuration the cross-check
// compares against the reference serial path: cache × early-stop × chains ×
// train workers × kernel precision, plus the incremental-store training arm
// (serial and pooled — both anchor bit-identically, so a full cross product
// with the sampling axes would only re-test the sampling paths).
func FastPathGrid() []Options {
	var grid []Options
	for _, cache := range []bool{false, true} {
		for _, es := range []bool{false, true} {
			for _, chains := range []int{1, 2} {
				for _, workers := range []int{1, 4} {
					for _, prec := range []core.Precision{core.PrecisionFloat64, core.PrecisionFloat32} {
						grid = append(grid, Options{Cache: cache, EarlyStop: es, Chains: chains, Workers: workers, Precision: prec})
					}
				}
			}
		}
	}
	grid = append(grid,
		Options{Store: true},
		Options{Store: true, Workers: 4},
		Options{Store: true, Cache: true}) // store supersedes cache
	return grid
}

// crossCheckSamples is the Monte-Carlo budget of the configuration
// cross-check. It is deliberately larger than BaseConfig's: with a small
// budget the t-statistic itself is noisy enough that an independent RNG
// stream (chains ≥ 2) can flip a borderline candidate decisively, which is
// sampling noise, not a fast-path bug. It also exceeds the sequential test's
// minimum draw count, so the early-stop configurations genuinely stop early
// instead of degenerating into the full-budget path.
const crossCheckSamples = 640

// CheckCrossConfigs diagnoses one case under every fast-path configuration
// and checks agreement with the reference serial path: decisive root causes
// always match; configurations that only change training (cache, workers)
// must additionally match bit for bit, since those paths promise
// bit-identical factors.
func CheckCrossConfigs(c *Case) error {
	ref, err := Diagnose(c, Options{Samples: crossCheckSamples})
	if err != nil {
		return caseErr(c, "reference", err)
	}
	for _, opt := range FastPathGrid() {
		if !opt.Cache && !opt.EarlyStop && opt.Chains <= 1 && opt.Workers <= 1 && opt.Precision == core.PrecisionFloat64 && !opt.Store {
			continue // the reference itself
		}
		opt.Samples = crossCheckSamples
		label := fmt.Sprintf("config{cache=%v earlystop=%v chains=%d workers=%d prec=%s store=%v}", opt.Cache, opt.EarlyStop, opt.Chains, opt.Workers, opt.Precision, opt.Store)
		got, err := Diagnose(c, opt)
		if err != nil {
			return caseErr(c, label, err)
		}
		if !opt.EarlyStop && opt.Chains <= 1 && opt.Precision == core.PrecisionFloat64 {
			// Training-only variants promise bit-identical factors.
			err = bitIdentical(ref, got, identity)
		} else {
			// Early stopping truncates samples, extra chains use different
			// RNG streams, and the float32 kernel uses different streams and
			// arithmetic: decisive causes must agree, borderline ones may
			// flip.
			err = agreeCertified(ref, got)
		}
		if err != nil {
			return caseErr(c, label, err)
		}
	}
	return nil
}

// incSlideBack is how many slices the incremental-slide check anchors behind
// the newest slice before sliding forward, and incSlideTol the per-parameter
// relative rounding bound the slid factors must stay within. The incremental
// path accumulates one rank-1 update and downdate per slide on the Gram and
// cross-term statistics; each is O(n·eps) relative rounding error, so a
// handful of slides stays ~1e-12 and 1e-6 is a generous certified bound.
const (
	incSlideBack = 6
	incSlideTol  = 1e-6
)

// CheckIncrementalSlide verifies the incremental trainer's sliding contract
// on one case: a store anchored incSlideBack slices in the past and slid
// forward one slice at a time must arrive at factors within incSlideTol of a
// from-scratch retrain at the final slice — with identically selected
// features — and the resulting diagnosis must certify the same decisive
// causes. (The fresh-store bit-identity contract is covered by the
// cross-config grid's store arms.)
func CheckIncrementalSlide(c *Case) error {
	cfg := BaseConfig()
	g, err := graph.Build(c.DB, []telemetry.EntityID{c.Symptom.Entity}, -1)
	if err != nil {
		return caseErr(c, "inc-slide", err)
	}
	ctx := context.Background()
	store := core.NewFactorStore()
	last := c.DB.Len() - 1
	var incModel *core.Model
	for t := last - incSlideBack; t <= last; t++ {
		incModel, err = core.TrainOpt(ctx, c.DB, g, cfg, core.TrainOpts{Now: t, Store: store})
		if err != nil {
			return caseErr(c, "inc-slide", err)
		}
	}
	fullModel, err := core.TrainOpt(ctx, c.DB, g, cfg, core.TrainOpts{Now: last})
	if err != nil {
		return caseErr(c, "inc-slide", err)
	}
	for _, id := range c.DB.Entities() {
		for _, metric := range c.DB.MetricNames(id) {
			fv, fok := fullModel.FactorView(id, metric)
			iv, iok := incModel.FactorView(id, metric)
			if fok != iok {
				return caseErr(c, "inc-slide", fmt.Errorf("factor %s/%s trained on one path only (full=%v inc=%v)", id, metric, fok, iok))
			}
			if !fok {
				continue
			}
			if err := factorWithin(fv, iv, incSlideTol); err != nil {
				return caseErr(c, "inc-slide", fmt.Errorf("factor %s/%s: %w", id, metric, err))
			}
		}
	}
	fullDiag, err := fullModel.Diagnose(c.Symptom)
	if err != nil {
		return caseErr(c, "inc-slide", err)
	}
	incDiag, err := incModel.Diagnose(c.Symptom)
	if err != nil {
		return caseErr(c, "inc-slide", err)
	}
	if err := agreeCertified(fullDiag, incDiag); err != nil {
		return caseErr(c, "inc-slide", err)
	}
	return nil
}

// factorWithin checks that two factor views selected the same features and
// agree on every learned parameter within the relative tolerance.
func factorWithin(want, got core.FactorView, tol float64) error {
	if len(want.Features) != len(got.Features) {
		return fmt.Errorf("selected %d features, full retrain selected %d", len(got.Features), len(want.Features))
	}
	for i := range want.Features {
		if want.Features[i] != got.Features[i] {
			return fmt.Errorf("feature %d is %s, full retrain selected %s", i, got.Features[i], want.Features[i])
		}
	}
	check := func(name string, a, b float64) error {
		if math.IsNaN(a) && math.IsNaN(b) {
			return nil
		}
		scale := math.Abs(a)
		if scale < 1 {
			scale = 1
		}
		if math.Abs(a-b) > tol*scale {
			return fmt.Errorf("%s = %v, full retrain got %v (tolerance %.0e)", name, b, a, tol)
		}
		return nil
	}
	if err := check("intercept", want.Intercept, got.Intercept); err != nil {
		return err
	}
	if err := check("residual-std", want.ResidualStd, got.ResidualStd); err != nil {
		return err
	}
	for i := range want.Coef {
		if err := check(fmt.Sprintf("coef[%d]", i), want.Coef[i], got.Coef[i]); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("feat-mean[%d]", i), want.FeatMean[i], got.FeatMean[i]); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("feat-std[%d]", i), want.FeatStd[i], got.FeatStd[i]); err != nil {
			return err
		}
	}
	for _, p := range [][3]any{
		{"hmean", want.HMean, got.HMean}, {"hstd", want.HStd, got.HStd},
		{"median", want.Med, got.Med}, {"mad-scale", want.MADScale, got.MADScale},
		{"rscore", want.RScore, got.RScore},
	} {
		if err := check(p[0].(string), p[1].(float64), p[2].(float64)); err != nil {
			return err
		}
	}
	if want.Novel != got.Novel {
		return fmt.Errorf("novel = %v, full retrain got %v", got.Novel, want.Novel)
	}
	return nil
}

// caseErr wraps a violation with the replay coordinates of its case.
func caseErr(c *Case, stage string, err error) error {
	return fmt.Errorf("%s[%d] seed=%d %s: %w", c.Family, c.Index, c.Seed, stage, err)
}
