package metamorph

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"

	"murphy/internal/telemetry"
)

// fixedBase is the fixed base seed of the checked-in suite: quick CI runs
// and the full sweep both expand their cases from it, so every reported
// failure carries replayable coordinates.
const fixedBase int64 = 0x6d757270 // "murp"

// casesPerFamily returns how many fuzzed cases per family a test should run:
// the quick default in ordinary test runs, METAMORPH_CASES when set, and the
// full acceptance sweep under METAMORPH_FULL=1.
func casesPerFamily(t *testing.T, quick int) int {
	t.Helper()
	if v := os.Getenv("METAMORPH_CASES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad METAMORPH_CASES=%q", v)
		}
		return n
	}
	if os.Getenv("METAMORPH_FULL") == "1" {
		return 200
	}
	return quick
}

// TestMetamorphGenerateDeterministic pins the replay contract: the same
// (family, index, base) triple must regenerate a byte-identical case.
func TestMetamorphGenerateDeterministic(t *testing.T) {
	for _, fam := range Families {
		a, err := Generate(fam, 3, fixedBase)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(fam, 3, fixedBase)
		if err != nil {
			t.Fatal(err)
		}
		if a.Seed != b.Seed || a.Symptom != b.Symptom || a.Truth != b.Truth {
			t.Fatalf("%s: regenerated case differs: %+v vs %+v", fam, a, b)
		}
		if snapshot(t, a.DB) != snapshot(t, b.DB) {
			t.Fatalf("%s: regenerated telemetry differs", fam)
		}
		c, err := Generate(fam, 4, fixedBase)
		if err != nil {
			t.Fatal(err)
		}
		if c.Seed == a.Seed {
			t.Fatalf("%s: distinct indices produced the same sub-seed", fam)
		}
	}
}

func snapshot(t *testing.T, db *telemetry.DB) string {
	t.Helper()
	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMetamorphInvariants fuzzes scenarios per family and checks every
// metamorphic invariant (rename, edge permutation, rescaling, decoys,
// truth ablation) against the reference diagnosis.
func TestMetamorphInvariants(t *testing.T) {
	n := casesPerFamily(t, 3)
	for _, fam := range Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < n; i++ {
				c, err := Generate(fam, i, fixedBase)
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckInvariants(c); err != nil {
					t.Fatalf("invariant violated: %v (replay: Generate(%q, %d, %d))", err, fam, i, fixedBase)
				}
			}
		})
	}
}

// TestMetamorphCrossConfigs fuzzes scenarios per family and checks that
// every fast-path configuration (cache × early-stop × chains × workers)
// agrees with the reference serial path.
func TestMetamorphCrossConfigs(t *testing.T) {
	n := casesPerFamily(t, 2)
	for _, fam := range Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < n; i++ {
				c, err := Generate(fam, i, fixedBase)
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckCrossConfigs(c); err != nil {
					t.Fatalf("fast-path disagreement: %v (replay: Generate(%q, %d, %d))", err, fam, i, fixedBase)
				}
			}
		})
	}
}

// TestMetamorphIncrementalSlide fuzzes scenarios per family and checks the
// incremental trainer's sliding contract: a factor store slid one slice at a
// time must arrive within the certified rounding bound of a from-scratch
// retrain, with the same selected features and the same decisive causes.
func TestMetamorphIncrementalSlide(t *testing.T) {
	n := casesPerFamily(t, 2)
	for _, fam := range Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < n; i++ {
				c, err := Generate(fam, i, fixedBase)
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckIncrementalSlide(c); err != nil {
					t.Fatalf("incremental slide diverged: %v (replay: Generate(%q, %d, %d))", err, fam, i, fixedBase)
				}
			}
		})
	}
}

// TestMetamorphTruthFound sanity-checks the fuzzer itself: on a sample of
// cases per family, the reference diagnosis should rank an acceptable
// entity in its top 5 most of the time — a fuzzer whose ground truth the
// pipeline cannot find would make every invariant vacuous.
func TestMetamorphTruthFound(t *testing.T) {
	n := casesPerFamily(t, 4)
	for _, fam := range Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			hits := 0
			for i := 0; i < n; i++ {
				c, err := Generate(fam, i, fixedBase)
				if err != nil {
					t.Fatal(err)
				}
				d, err := Diagnose(c, Options{})
				if err != nil {
					t.Fatal(err)
				}
				ranked := d.Ranked()
				for k, id := range ranked {
					if k >= 5 {
						break
					}
					if c.Accept[id] {
						hits++
						break
					}
				}
			}
			if hits*2 < n {
				t.Fatalf("top-5 hit on only %d/%d cases — fuzzer ground truth too hard for the pipeline", hits, n)
			}
		})
	}
}

func ExampleGenerate() {
	c, err := Generate(FamilyCascade, 0, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Family, c.Symptom.Metric, c.Symptom.High)
	// Output: cascade latency true
}
