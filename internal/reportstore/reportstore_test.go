package reportstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testRecord(i int) *Record {
	return &Record{
		At:     time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		Source: []string{"api", "detector"}[i%2],
		Entity: fmt.Sprintf("svc-%d", i%5),
		Metric: "latency",
		App:    fmt.Sprintf("app-%d", i%3),
		Causes: []string{fmt.Sprintf("cause-%d", i%7)},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestAppendAssignsMonotonicSeqs(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 10; i++ {
		seq, err := st.Append(testRecord(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if want := int64(i + 1); seq != want {
			t.Fatalf("Append %d: seq = %d, want %d", i, seq, want)
		}
	}
	if got := st.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	// A caller-provided seq ahead of the store is adopted; one behind is not.
	seq, err := st.Append(&Record{Seq: 100, Entity: "e"})
	if err != nil || seq != 100 {
		t.Fatalf("adopt caller seq: got (%d, %v), want (100, nil)", seq, err)
	}
	seq, err = st.Append(&Record{Seq: 7, Entity: "e"})
	if err != nil || seq != 101 {
		t.Fatalf("stale caller seq: got (%d, %v), want (101, nil)", seq, err)
	}
}

// TestReopenRecoversAcknowledgedRecords is the kill -9 contract: every record
// whose Append returned is replayed by a fresh Open over the same directory,
// with no Close in between (a crashed process never closes).
func TestReopenRecoversAcknowledgedRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := st.Append(testRecord(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// No st.Close(): simulate kill -9 by abandoning the handle.
	re := mustOpen(t, dir, Options{})
	if got := re.Len(); got != n {
		t.Fatalf("recovered %d records, want %d", got, n)
	}
	page, err := re.Query(Query{Limit: MaxLimit})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for i, rec := range page.Records {
		if rec.Seq != int64(i+1) {
			t.Fatalf("record %d: seq %d, want %d", i, rec.Seq, i+1)
		}
		if want := testRecord(i).Entity; rec.Entity != want {
			t.Fatalf("record %d: entity %q, want %q", i, rec.Entity, want)
		}
	}
	st.Close()
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := st.Append(testRecord(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st.Close()
	seg := filepath.Join(dir, segmentName)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop three bytes off the final record: a crash mid-write.
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	if got := re.Len(); got != 9 {
		t.Fatalf("recovered %d records after torn tail, want 9", got)
	}
	if tr := re.Stats().Truncated; tr == 0 {
		t.Fatal("Stats.Truncated = 0, want > 0")
	}
	// Appends continue cleanly on the repaired boundary.
	seq, err := re.Append(testRecord(99))
	if err != nil || seq != 10 {
		t.Fatalf("append after repair: got (%d, %v), want (10, nil)", seq, err)
	}
	re2 := mustOpen(t, dir, Options{})
	if got := re2.Len(); got != 10 {
		t.Fatalf("re-recovered %d records, want 10", got)
	}
}

func TestCorruptTailCRCDropped(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := st.Append(testRecord(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st.Close()
	seg := filepath.Join(dir, segmentName)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF // flip a payload byte in the final record
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	if got := re.Len(); got != 4 {
		t.Fatalf("recovered %d records after CRC corruption, want 4", got)
	}
}

func TestRetentionCompaction(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{MaxRecords: 100, NoSync: true})
	for i := 0; i < 1000; i++ {
		if _, err := st.Append(testRecord(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	stats := st.Stats()
	if stats.Compactions == 0 {
		t.Fatal("no compactions after 10x overshoot")
	}
	if stats.Records > 125 {
		t.Fatalf("retained %d records, want <= 125", stats.Records)
	}
	// The newest records survive, contiguous up to the last seq.
	page, err := st.Query(Query{AfterSeq: 1000 - int64(stats.Records), Limit: MaxLimit})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(page.Records) != stats.Records {
		t.Fatalf("queried %d, want %d", len(page.Records), stats.Records)
	}
	if last := page.Records[len(page.Records)-1].Seq; last != 1000 {
		t.Fatalf("last seq %d, want 1000", last)
	}
	// The compacted segment survives reopen with identical contents.
	st.Close()
	re := mustOpen(t, dir, Options{MaxRecords: 100})
	if re.Len() != stats.Records || re.LastSeq() != 1000 {
		t.Fatalf("reopen: %d records last %d, want %d last 1000", re.Len(), re.LastSeq(), stats.Records)
	}
}

func TestQueryFilters(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{NoSync: true})
	for i := 0; i < 60; i++ {
		if _, err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{Limit: MaxLimit}, 60},
		{"entity", Query{Entity: "svc-0", Limit: MaxLimit}, 12},
		{"app", Query{App: "app-1", Limit: MaxLimit}, 20},
		{"cause", Query{Cause: "cause-3", Limit: MaxLimit}, 9},
		{"source", Query{Source: "api", Limit: MaxLimit}, 30},
		{"entity+source", Query{Entity: "svc-0", Source: "api", Limit: MaxLimit}, 6},
		{"since-seq", Query{SinceSeq: 50, Limit: MaxLimit}, 10},
		{"time-range", Query{
			Since: time.Date(2026, 1, 1, 0, 10, 0, 0, time.UTC),
			Until: time.Date(2026, 1, 1, 0, 19, 0, 0, time.UTC),
			Limit: MaxLimit,
		}, 10},
		{"none", Query{Entity: "absent", Limit: MaxLimit}, 0},
	}
	for _, tc := range cases {
		page, err := st.Query(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(page.Records) != tc.want {
			t.Errorf("%s: %d records, want %d", tc.name, len(page.Records), tc.want)
		}
		if page.NextCursor != "" {
			t.Errorf("%s: unexpected next cursor on exhausted scan", tc.name)
		}
	}
}

func TestPaginationWalksEverything(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{NoSync: true})
	const n = 257
	for i := 0; i < n; i++ {
		if _, err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("pagination did not terminate")
		}
		q := Query{Limit: 10}
		if cursor != "" {
			after, err := ParseCursor(cursor)
			if err != nil {
				t.Fatalf("ParseCursor(%q): %v", cursor, err)
			}
			q.AfterSeq = after
		}
		page, err := st.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range page.Records {
			got = append(got, rec.Seq)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(got) != n {
		t.Fatalf("walked %d records, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != int64(i+1) {
			t.Fatalf("position %d: seq %d, want %d", i, seq, i+1)
		}
	}
}

func TestCursorRoundTripAndRejects(t *testing.T) {
	for _, seq := range []int64{0, 1, 42, 1 << 40} {
		got, err := ParseCursor(Cursor(seq))
		if err != nil || got != seq {
			t.Fatalf("round trip %d: got (%d, %v)", seq, got, err)
		}
	}
	for _, bad := range []string{"", "not-base64!", "djE6", "djI6NQ", Cursor(-1)} {
		if _, err := ParseCursor(bad); err == nil {
			t.Errorf("ParseCursor(%q): want error", bad)
		}
	}
}

// TestPaginate10kUnderConcurrentIngest is the acceptance drill: 10k+
// persisted reports paginate with stable cursors while appends continue.
// Every record that existed when the walk began must be seen exactly once, in
// order, regardless of interleaved ingest.
func TestPaginate10kUnderConcurrentIngest(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{NoSync: true})
	const preload = 10_000
	for i := 0; i < preload; i++ {
		if _, err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.Append(testRecord(w*1000 + i)); err != nil {
					t.Errorf("concurrent append: %v", err)
					return
				}
			}
		}(w)
	}
	var seen []int64
	after := int64(0)
	for len(seen) < preload {
		page, err := st.Query(Query{AfterSeq: after, Limit: 500})
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Records) == 0 {
			t.Fatalf("scan dried up at %d records", len(seen))
		}
		for _, rec := range page.Records {
			if rec.Seq <= after {
				t.Fatalf("cursor went backwards: seq %d after %d", rec.Seq, after)
			}
			after = rec.Seq
			seen = append(seen, rec.Seq)
		}
	}
	close(stop)
	wg.Wait()
	for i := 0; i < preload; i++ {
		if seen[i] != int64(i+1) {
			t.Fatalf("position %d: seq %d, want %d (lost or duplicated under ingest)", i, seen[i], i+1)
		}
	}
}

// TestCompactionConsistentUnderConcurrency hammers appends, queries, and the
// retention compactor together; run under -race in CI. Invariants: pages stay
// ascending and duplicate-free, and the retained suffix always ends at the
// newest acknowledged seq.
func TestCompactionConsistentUnderConcurrency(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{MaxRecords: 200, NoSync: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if _, err := st.Append(testRecord(w*2000 + i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			page, err := st.Query(Query{Limit: 50})
			if err != nil {
				t.Errorf("query: %v", err)
				return
			}
			last := int64(0)
			for _, rec := range page.Records {
				if rec.Seq <= last {
					t.Errorf("page out of order: %d after %d", rec.Seq, last)
					return
				}
				last = rec.Seq
			}
		}
	}()
	wg.Wait() // appenders done; then release the queryer
	close(stop)
	qwg.Wait()
	if got, want := st.LastSeq(), int64(6000); got != want {
		t.Fatalf("LastSeq = %d, want %d", got, want)
	}
	if n := st.Len(); n > 250 {
		t.Fatalf("retention failed: %d records retained", n)
	}
	page, err := st.Query(Query{AfterSeq: 5900, Limit: MaxLimit})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Records) != 100 || page.Records[99].Seq != 6000 {
		t.Fatalf("newest suffix wrong: %d records, last %d", len(page.Records), page.Records[len(page.Records)-1].Seq)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	payload := json.RawMessage(`{"seq":1,"source":"api","report":{"schema_version":1}}`)
	rec := testRecord(0)
	rec.Payload = payload
	if _, err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
	st.Close()
	re := mustOpen(t, dir, Options{})
	page, err := re.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Records) != 1 {
		t.Fatalf("got %d records", len(page.Records))
	}
	if string(page.Records[0].Payload) != string(payload) {
		t.Fatalf("payload = %s, want %s", page.Records[0].Payload, payload)
	}
}

func TestClosedStoreRejects(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	st.Close()
	if _, err := st.Append(testRecord(0)); err != ErrClosed {
		t.Fatalf("Append after close: %v, want ErrClosed", err)
	}
	if _, err := st.Query(Query{}); err != ErrClosed {
		t.Fatalf("Query after close: %v, want ErrClosed", err)
	}
}
