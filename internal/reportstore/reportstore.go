// Package reportstore persists completed diagnosis reports beyond the serve
// layer's in-memory ring: an append-only segment file with CRC-framed JSON
// records, an in-memory index over the indexed fields, and a search API with
// stable pagination cursors.
//
// Durability contract: Append fsyncs the segment before returning, so a
// record whose Append returned nil survives kill -9 — the daemon acknowledges
// a diagnosis to its client only after the append returns. Crash recovery is
// Open: the segment is scanned frame by frame and a torn or corrupt final
// record (a crash mid-write) is truncated away, never propagated.
//
// Retention rewrites the segment through the same temp + fsync + rename
// discipline the serve snapshots use, keeping the newest MaxRecords records.
// Sequence numbers are preserved across compaction, so pagination cursors
// (opaque encodings of the last-seen sequence number) stay valid: a cursor
// taken before a compaction simply skips the expired prefix.
package reportstore

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// segmentName is the single segment file inside the store directory.
const segmentName = "reports.seg"

// frameHeaderLen is the per-record framing overhead: a 4-byte big-endian
// payload length followed by a 4-byte IEEE CRC32 of the payload.
const frameHeaderLen = 8

// maxFrameLen rejects absurd lengths decoded from a corrupt header before
// they turn into huge allocations.
const maxFrameLen = 16 << 20

// DefaultLimit and MaxLimit bound Query pages.
const (
	DefaultLimit = 100
	MaxLimit     = 1000
)

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("reportstore: store is closed")

// Record is one persisted report: the indexed search fields plus the raw
// payload (the serve layer's full wire record). The store never interprets
// Payload; search runs over the indexed fields only, so the store stays
// decoupled from the report schema above it.
type Record struct {
	// Seq is the monotonically increasing sequence number; it doubles as the
	// pagination cursor position and survives retention compaction.
	Seq int64 `json:"seq"`
	// At is the completion time (UTC).
	At time.Time `json:"at"`
	// Source, Entity, Metric, and App index the diagnosis: who asked, which
	// (entity, metric) symptom, and the entity's application.
	Source string `json:"source,omitempty"`
	Entity string `json:"entity"`
	Metric string `json:"metric,omitempty"`
	App    string `json:"app,omitempty"`
	// Causes lists the certified cause entities, rank order.
	Causes []string `json:"causes,omitempty"`
	// Failed marks a diagnosis that ended in an error (partial shell report).
	Failed bool `json:"failed,omitempty"`
	// Payload is the full report record as served by the query API.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Options tunes a store.
type Options struct {
	// MaxRecords caps retained records (0 = unlimited). Compaction keeps the
	// newest MaxRecords once the index overshoots the cap by 25%.
	MaxRecords int
	// NoSync skips the per-append fsync. Only for tests and benchmarks that
	// trade the durability contract for speed.
	NoSync bool
}

// Query selects records. Zero-valued fields do not filter.
type Query struct {
	// Entity, App, Cause, and Source filter on the indexed fields (Cause
	// matches membership in a record's Causes list).
	Entity string
	App    string
	Cause  string
	Source string
	// Since/Until bound the completion time (inclusive); zero means open.
	Since time.Time
	Until time.Time
	// SinceSeq keeps only records with Seq > SinceSeq (the legacy ring
	// protocol: "records newer than the last one I saw").
	SinceSeq int64
	// AfterSeq resumes a paginated scan after a cursor position.
	AfterSeq int64
	// Limit caps the page size (0 = DefaultLimit, never above MaxLimit).
	Limit int
}

// Page is one page of query results, ascending by Seq.
type Page struct {
	Records []*Record
	// NextCursor resumes the scan after the last returned record; empty when
	// the scan is exhausted.
	NextCursor string
}

// Stats is a point-in-time view of the store.
type Stats struct {
	Records      int
	LastSeq      int64
	Appends      uint64
	Compactions  uint64
	SegmentBytes int64
	// Truncated reports how many trailing bytes Open discarded as a torn or
	// corrupt final record.
	Truncated int64
}

// Store is a crash-safe persisted report store over one directory. All
// methods are safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	dir  string
	path string
	opts Options

	f      *os.File
	size   int64
	recs   []*Record // ascending Seq
	last   int64
	closed bool

	appends     uint64
	compactions uint64
	truncated   int64
}

// Open opens (creating if necessary) the store under dir and replays its
// segment into the in-memory index. A torn or corrupt tail is truncated away;
// everything before it is recovered.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("reportstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reportstore: create %s: %w", dir, err)
	}
	path := filepath.Join(dir, segmentName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("reportstore: open segment: %w", err)
	}
	s := &Store{dir: dir, path: path, opts: opts, f: f}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the segment, indexes every intact record, and truncates the
// file at the first torn or corrupt frame.
func (s *Store) replay() error {
	buf, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("reportstore: read segment: %w", err)
	}
	off := 0
	for {
		rec, n, ok := decodeFrame(buf[off:])
		if !ok {
			break
		}
		off += n
		s.recs = append(s.recs, rec)
		if rec.Seq > s.last {
			s.last = rec.Seq
		}
	}
	if off < len(buf) {
		// Torn or corrupt tail — a crash mid-append. Drop it so the next
		// append lands on a clean frame boundary.
		s.truncated = int64(len(buf) - off)
		if err := s.f.Truncate(int64(off)); err != nil {
			return fmt.Errorf("reportstore: truncate torn tail: %w", err)
		}
	}
	// Defensive: a hand-edited or merged segment could be out of order;
	// queries rely on ascending Seq for the cursor binary search.
	sort.SliceStable(s.recs, func(i, j int) bool { return s.recs[i].Seq < s.recs[j].Seq })
	s.size = int64(off)
	if _, err := s.f.Seek(int64(off), io.SeekStart); err != nil {
		return fmt.Errorf("reportstore: seek segment end: %w", err)
	}
	return nil
}

// decodeFrame decodes one framed record from the head of buf, returning the
// record, the bytes consumed, and whether the frame was intact.
func decodeFrame(buf []byte) (*Record, int, bool) {
	if len(buf) < frameHeaderLen {
		return nil, 0, false
	}
	n := int(binary.BigEndian.Uint32(buf[0:4]))
	sum := binary.BigEndian.Uint32(buf[4:8])
	if n <= 0 || n > maxFrameLen || len(buf) < frameHeaderLen+n {
		return nil, 0, false
	}
	payload := buf[frameHeaderLen : frameHeaderLen+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, 0, false
	}
	return &rec, frameHeaderLen + n, true
}

// encodeFrame appends the framed encoding of payload to dst.
func encodeFrame(dst []byte, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Append durably persists one record and returns its sequence number. A
// caller-provided Seq greater than the store's last is adopted (the serve
// layer owns the sequence); otherwise the store assigns last+1. When Append
// returns nil the record has been fsynced: it survives kill -9.
func (s *Store) Append(rec *Record) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if rec.Seq > s.last {
		s.last = rec.Seq
	} else {
		s.last++
		rec.Seq = s.last
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("reportstore: encode record: %w", err)
	}
	frame := encodeFrame(make([]byte, 0, frameHeaderLen+len(payload)), payload)
	if _, err := s.f.Write(frame); err != nil {
		return 0, fmt.Errorf("reportstore: append record: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return 0, fmt.Errorf("reportstore: sync segment: %w", err)
		}
	}
	s.size += int64(len(frame))
	s.recs = append(s.recs, rec)
	s.appends++
	if s.opts.MaxRecords > 0 && len(s.recs) > s.opts.MaxRecords+s.opts.MaxRecords/4 {
		if err := s.compactLocked(); err != nil {
			// The append itself is durable; a failed compaction only delays
			// retention until the next trigger.
			return rec.Seq, nil
		}
	}
	return rec.Seq, nil
}

// compactLocked rewrites the segment keeping the newest MaxRecords records,
// via a temp file and an atomic rename so a crash mid-compaction leaves the
// previous segment intact. Callers hold s.mu.
func (s *Store) compactLocked() error {
	keep := s.recs[len(s.recs)-s.opts.MaxRecords:]
	tmp, err := os.CreateTemp(s.dir, ".reports-seg-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	var buf []byte
	for _, rec := range keep {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		buf = encodeFrame(buf, payload)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return err
	}
	// The old handle points at the unlinked inode; reopen the published file
	// for subsequent appends.
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.f.Close()
	s.f = f
	s.size = int64(len(buf))
	s.recs = append(s.recs[:0], keep...)
	s.compactions++
	return nil
}

// Query returns one page of matching records, ascending by Seq.
func (s *Store) Query(q Query) (*Page, error) {
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	if limit > MaxLimit {
		limit = MaxLimit
	}
	after := q.AfterSeq
	if q.SinceSeq > after {
		after = q.SinceSeq
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	// First index with Seq > after: the cursor position survives compaction
	// because expired records only ever vanish from the front.
	i := sort.Search(len(s.recs), func(i int) bool { return s.recs[i].Seq > after })
	page := &Page{}
	for ; i < len(s.recs); i++ {
		rec := s.recs[i]
		if !q.Matches(rec) {
			continue
		}
		if len(page.Records) == limit {
			// One more match exists beyond the full page, so the scan is not
			// exhausted: hand back a resume cursor.
			page.NextCursor = Cursor(page.Records[limit-1].Seq)
			return page, nil
		}
		page.Records = append(page.Records, rec)
	}
	return page, nil
}

// Matches reports whether rec passes every set filter (Seq cursors are the
// caller's concern; only the field filters apply). Exported so the serve
// layer's ring fallback shares the store's exact search semantics.
func (q Query) Matches(rec *Record) bool {
	if q.Entity != "" && rec.Entity != q.Entity {
		return false
	}
	if q.App != "" && rec.App != q.App {
		return false
	}
	if q.Source != "" && rec.Source != q.Source {
		return false
	}
	if q.Cause != "" {
		found := false
		for _, c := range rec.Causes {
			if c == q.Cause {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if !q.Since.IsZero() && rec.At.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && rec.At.After(q.Until) {
		return false
	}
	return true
}

// LastSeq returns the highest sequence number ever appended (0 when empty).
func (s *Store) LastSeq() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.last
}

// Len returns the number of records currently retained.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Stats returns a point-in-time view of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:      len(s.recs),
		LastSeq:      s.last,
		Appends:      s.appends,
		Compactions:  s.compactions,
		SegmentBytes: s.size,
		Truncated:    s.truncated,
	}
}

// Close syncs and closes the segment. Further calls return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			return err
		}
	}
	return s.f.Close()
}

// cursorPrefix versions the cursor encoding; unknown versions are rejected
// rather than misread.
const cursorPrefix = "v1:"

// Cursor encodes a resume position after seq as an opaque token.
func Cursor(seq int64) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + strconv.FormatInt(seq, 10)))
}

// ParseCursor decodes a token produced by Cursor.
func ParseCursor(tok string) (int64, error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, fmt.Errorf("reportstore: bad cursor: %w", err)
	}
	rest, ok := strings.CutPrefix(string(raw), cursorPrefix)
	if !ok {
		return 0, fmt.Errorf("reportstore: bad cursor version")
	}
	seq, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || seq < 0 {
		return 0, fmt.Errorf("reportstore: bad cursor position")
	}
	return seq, nil
}
