// Package chaos injects runtime faults into the telemetry read path: the
// dynamic counterpart to internal/degrade's static Table 2 corruptions.
// Where degrade hands the algorithm a corrupted database, chaos makes the
// *reads themselves* misbehave — transient errors, latency, NaN-corrupted
// values, whole series dropped — so the resilience layer (retries, circuit
// breaker, missing-data degradation) can be exercised end to end on a
// healthy database.
//
// All injection is driven by a seeded generator, so a given configuration
// over a given read sequence reproduces the same faults.
package chaos

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"murphy/internal/telemetry"
)

// Config sets the per-read fault rates. All rates are probabilities in
// [0, 1]; zero disables that fault class.
type Config struct {
	// Seed drives all randomness (same seed + same read order ⇒ same
	// faults).
	Seed int64
	// FaultRate is the probability a read fails with a transient error
	// (wrapping telemetry.ErrTransient, so retry policies recognize it).
	FaultRate float64
	// LatencyRate is the probability a read stalls for Latency before
	// returning; the stall respects context cancellation.
	LatencyRate float64
	// Latency is the injected stall duration (default 5 ms when
	// LatencyRate > 0).
	Latency time.Duration
	// CorruptRate is the per-element probability that a returned window
	// value is replaced with NaN (an unparseable/corrupt observation).
	CorruptRate float64
	// DropRate is the probability a given (entity, metric) series is
	// dropped entirely — invisible in MetricNames and all-missing when
	// read directly. Drops are chosen by a seeded hash, so they are
	// stable across reads.
	DropRate float64
}

// Stats counts the faults an injector has dealt out.
type Stats struct {
	// Reads is the number of ReadRawWindow calls received.
	Reads int
	// Faults is the number of injected transient errors.
	Faults int
	// Stalls is the number of injected latency stalls.
	Stalls int
	// Corrupted is the number of window elements flipped to NaN.
	Corrupted int
	// DroppedSeries is the number of distinct (entity, metric) series
	// hidden by DropRate.
	DroppedSeries int
}

// Injector is a fault-injecting telemetry.Source wrapping another source.
// It is safe for concurrent use.
type Injector struct {
	inner telemetry.Source
	cfg   Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
	// dropped memoizes the per-series drop decision for stats counting.
	dropped map[seriesKey]bool
}

type seriesKey struct {
	id     telemetry.EntityID
	metric string
}

// Wrap builds an injector over a source (typically a *telemetry.DB).
func Wrap(inner telemetry.Source, cfg Config) *Injector {
	if cfg.LatencyRate > 0 && cfg.Latency <= 0 {
		cfg.Latency = 5 * time.Millisecond
	}
	return &Injector{
		inner:   inner,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		dropped: make(map[seriesKey]bool),
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Len implements telemetry.Source.
func (in *Injector) Len() int { return in.inner.Len() }

// Entities implements telemetry.Source.
func (in *Injector) Entities() []telemetry.EntityID { return in.inner.Entities() }

// MetricNames implements telemetry.Source, hiding dropped series.
func (in *Injector) MetricNames(id telemetry.EntityID) []string {
	names := in.inner.MetricNames(id)
	if in.cfg.DropRate <= 0 {
		return names
	}
	kept := make([]string, 0, len(names))
	for _, name := range names {
		if in.isDropped(id, name) {
			continue
		}
		kept = append(kept, name)
	}
	return kept
}

// isDropped decides (deterministically, by seeded hash) whether a series is
// dropped, and counts first sightings.
func (in *Injector) isDropped(id telemetry.EntityID, metric string) bool {
	h := hash64(in.cfg.Seed, string(id), metric)
	drop := float64(h%1_000_000)/1_000_000 < in.cfg.DropRate
	if drop {
		in.mu.Lock()
		k := seriesKey{id, metric}
		if !in.dropped[k] {
			in.dropped[k] = true
			in.stats.DroppedSeries++
		}
		in.mu.Unlock()
	}
	return drop
}

// ReadRawWindow implements telemetry.Source with fault injection: possibly
// stall, possibly fail transiently, possibly corrupt elements of the result.
func (in *Injector) ReadRawWindow(ctx context.Context, id telemetry.EntityID, metric string, lo, hi int) ([]float64, error) {
	// Draw all randomness for this read up front under the lock, so
	// concurrent readers can't interleave mid-read draws.
	in.mu.Lock()
	in.stats.Reads++
	stall := in.cfg.LatencyRate > 0 && in.rng.Float64() < in.cfg.LatencyRate
	fault := in.cfg.FaultRate > 0 && in.rng.Float64() < in.cfg.FaultRate
	var corruptAt []int
	if in.cfg.CorruptRate > 0 {
		for t := lo; t < hi; t++ {
			if in.rng.Float64() < in.cfg.CorruptRate {
				corruptAt = append(corruptAt, t-lo)
			}
		}
	}
	if stall {
		in.stats.Stalls++
	}
	if fault {
		in.stats.Faults++
	}
	in.mu.Unlock()

	if stall {
		t := time.NewTimer(in.cfg.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	if fault {
		return nil, fmt.Errorf("chaos: injected fault reading %s/%s: %w", id, metric, telemetry.ErrTransient)
	}
	if in.cfg.DropRate > 0 && in.isDropped(id, metric) {
		w := make([]float64, hi-lo)
		for i := range w {
			w[i] = math.NaN()
		}
		return w, nil
	}
	w, err := in.inner.ReadRawWindow(ctx, id, metric, lo, hi)
	if err != nil {
		return nil, err
	}
	if len(corruptAt) > 0 {
		in.mu.Lock()
		for _, i := range corruptAt {
			if i < len(w) && !math.IsNaN(w[i]) {
				w[i] = math.NaN()
				in.stats.Corrupted++
			}
		}
		in.mu.Unlock()
	}
	return w, nil
}

// hash64 is FNV-1a over the seed and strings, for stable drop decisions.
func hash64(seed int64, parts ...string) uint64 {
	var h uint64 = 14695981039346656037
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			mix(p[i])
		}
		mix(0)
	}
	return h
}
