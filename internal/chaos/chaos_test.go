package chaos

import (
	"context"
	"math"
	"testing"
	"time"

	"murphy/internal/telemetry"
)

func testDB(t *testing.T) *telemetry.DB {
	t.Helper()
	db := telemetry.NewDB(60)
	for _, id := range []telemetry.EntityID{"a", "b"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeVM, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := db.Observe(id, telemetry.MetricCPU, i, float64(i)); err != nil {
				t.Fatal(err)
			}
			if err := db.Observe(id, telemetry.MetricMem, i, float64(i)*2); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestZeroConfigIsTransparent(t *testing.T) {
	db := testDB(t)
	in := Wrap(db, Config{Seed: 1})
	w, err := in.ReadRawWindow(context.Background(), "a", telemetry.MetricCPU, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range w {
		if v != float64(i) {
			t.Fatalf("w[%d] = %v", i, v)
		}
	}
	if got := in.MetricNames("a"); len(got) != 2 {
		t.Fatalf("MetricNames = %v", got)
	}
	if in.Len() != db.Len() || len(in.Entities()) != 2 {
		t.Fatal("Len/Entities must pass through")
	}
}

func TestTransientFaultRate(t *testing.T) {
	db := testDB(t)
	in := Wrap(db, Config{Seed: 3, FaultRate: 0.5})
	faults := 0
	for i := 0; i < 200; i++ {
		_, err := in.ReadRawWindow(context.Background(), "a", telemetry.MetricCPU, 0, 10)
		if err != nil {
			if !telemetry.IsTransient(err) {
				t.Fatalf("injected fault must be transient, got %v", err)
			}
			faults++
		}
	}
	if faults < 60 || faults > 140 {
		t.Fatalf("faults = %d of 200 at rate 0.5", faults)
	}
	if in.Stats().Faults != faults {
		t.Fatalf("stats disagree: %+v vs %d", in.Stats(), faults)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	db := testDB(t)
	read := func(seed int64) []bool {
		in := Wrap(db, Config{Seed: seed, FaultRate: 0.3})
		outcomes := make([]bool, 50)
		for i := range outcomes {
			_, err := in.ReadRawWindow(context.Background(), "a", telemetry.MetricCPU, 0, 10)
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := read(9), read(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must inject the same faults")
		}
	}
}

func TestCorruptValues(t *testing.T) {
	db := testDB(t)
	in := Wrap(db, Config{Seed: 5, CorruptRate: 0.2})
	w, err := in.ReadRawWindow(context.Background(), "a", telemetry.MetricCPU, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	nans := 0
	for _, v := range w {
		if math.IsNaN(v) {
			nans++
		}
	}
	if nans == 0 {
		t.Fatal("corrupt rate 0.2 over 50 elements should flip something")
	}
	if in.Stats().Corrupted != nans {
		t.Fatalf("stats = %+v, nans = %d", in.Stats(), nans)
	}
	// Original database untouched.
	if math.IsNaN(db.At("a", telemetry.MetricCPU, 0)) {
		t.Fatal("chaos must not mutate the wrapped source")
	}
}

func TestDroppedSeries(t *testing.T) {
	db := testDB(t)
	in := Wrap(db, Config{Seed: 11, DropRate: 0.5})
	visible := 0
	for _, id := range []telemetry.EntityID{"a", "b"} {
		visible += len(in.MetricNames(id))
	}
	if visible == 4 {
		t.Fatal("drop rate 0.5 over 4 series should hide something (seeded)")
	}
	// Drop decisions are stable across calls.
	for i := 0; i < 3; i++ {
		again := 0
		for _, id := range []telemetry.EntityID{"a", "b"} {
			again += len(in.MetricNames(id))
		}
		if again != visible {
			t.Fatal("drop decisions must be stable")
		}
	}
	// A dropped series reads as all-missing, not as an error.
	for _, id := range []telemetry.EntityID{"a", "b"} {
		for _, name := range []string{telemetry.MetricCPU, telemetry.MetricMem} {
			seen := false
			for _, kept := range in.MetricNames(id) {
				if kept == name {
					seen = true
				}
			}
			if seen {
				continue
			}
			w, err := in.ReadRawWindow(context.Background(), id, name, 0, 10)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range w {
				if !math.IsNaN(v) {
					t.Fatal("dropped series must read all-missing")
				}
			}
		}
	}
	if in.Stats().DroppedSeries == 0 {
		t.Fatalf("stats = %+v", in.Stats())
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	db := testDB(t)
	in := Wrap(db, Config{Seed: 2, LatencyRate: 1, Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := in.ReadRawWindow(ctx, "a", telemetry.MetricCPU, 0, 10)
	if err == nil {
		t.Fatal("stalled read under an expired context should fail")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stall did not respect cancellation: %v", elapsed)
	}
	if in.Stats().Stalls != 1 {
		t.Fatalf("stats = %+v", in.Stats())
	}
}
