package chaos

import (
	"context"
	"testing"
	"time"

	"murphy/internal/core"
	"murphy/internal/graph"
	"murphy/internal/microsim"
	"murphy/internal/resilience"
	"murphy/internal/telemetry"
)

// contentionScenario builds one hotel-reservation contention incident and
// the accept set for its diagnosis.
func contentionScenario(t *testing.T) (*microsim.Scenario, map[telemetry.EntityID]bool) {
	t.Helper()
	sc, err := microsim.Contention(microsim.ContentionOptions{
		Topo: "hotel", Steps: 300, PriorIncidents: 4,
		Kind: microsim.FaultCPU, Intensity: 0.55, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	accept := map[telemetry.EntityID]bool{sc.TruthEntity: true}
	for _, id := range sc.Acceptable {
		accept[id] = true
	}
	return sc, accept
}

func murphyConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Samples = 400
	cfg.TrainWindow = 280
	return cfg
}

// TestDiagnosisSurvivesTransientFaults is the end-to-end robustness drill:
// 10% of telemetry reads fail transiently and a few window elements are
// corrupted to NaN, the retry layer absorbs the faults, and the top-1 root
// cause must match the clean run's ground truth.
func TestDiagnosisSurvivesTransientFaults(t *testing.T) {
	sc, accept := contentionScenario(t)
	db := sc.Result.DB
	g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		t.Fatal(err)
	}
	inj := Wrap(db, Config{Seed: 17, FaultRate: 0.10, CorruptRate: 0.002})
	src := resilience.NewSource(inj, resilience.Policy{
		MaxAttempts: 5,
		Seed:        1,
	}.WithSleep(func(context.Context, time.Duration) error { return nil }), nil)

	m, err := core.TrainSource(context.Background(), db, src, g, murphyConfig())
	if err != nil {
		t.Fatal(err)
	}
	diag, err := m.Diagnose(sc.Symptom)
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Causes) == 0 {
		t.Fatal("no causes under chaos")
	}
	if !accept[diag.Causes[0].Entity] {
		t.Fatalf("top-1 = %s, want ground truth %s (accept %v); ranking %v",
			diag.Causes[0].Entity, sc.TruthEntity, accept, diag.Ranked())
	}
	if st := inj.Stats(); st.Faults == 0 {
		t.Fatalf("chaos injected nothing: %+v", st)
	}
}

// TestParallelDiagnosisUnderChaosAndPanic is the acceptance drill: 10%
// transient read faults plus one panicking candidate evaluator, and
// DiagnoseParallel must still complete with the ground-truth root cause in
// the top 3.
func TestParallelDiagnosisUnderChaosAndPanic(t *testing.T) {
	sc, accept := contentionScenario(t)
	db := sc.Result.DB
	g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		t.Fatal(err)
	}
	inj := Wrap(db, Config{Seed: 23, FaultRate: 0.10})
	src := resilience.NewSource(inj, resilience.Policy{
		MaxAttempts: 5,
		Seed:        2,
	}.WithSleep(func(context.Context, time.Duration) error { return nil }), nil)
	m, err := core.TrainSource(context.Background(), db, src, g, murphyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Poison one non-truth candidate's evaluation.
	var victim telemetry.EntityID
	for _, cand := range m.Candidates(sc.Symptom.Entity) {
		if !accept[cand] {
			victim = cand
			break
		}
	}
	if victim == "" {
		t.Skip("no non-truth candidate to poison")
	}
	m.SetEvalHook(func(a telemetry.EntityID) {
		if a == victim {
			panic("chaos: poisoned candidate")
		}
	})
	diag, err := m.DiagnoseParallelContext(context.Background(), sc.Symptom, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Partial || len(diag.Skipped) == 0 {
		t.Fatal("the poisoned candidate should be flagged as skipped")
	}
	top3 := false
	for i, c := range diag.Causes {
		if i >= 3 {
			break
		}
		if accept[c.Entity] {
			top3 = true
		}
	}
	if !top3 {
		t.Fatalf("ground truth %s not in top-3 under chaos+panic: %v", sc.TruthEntity, diag.Ranked())
	}
}
