package microsim

import (
	"bytes"
	"math/rand"
	"testing"

	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

func TestTopologiesValidate(t *testing.T) {
	for _, tp := range []*Topology{HotelReservation(), SocialNetwork()} {
		if err := tp.Validate(); err != nil {
			t.Fatalf("%s: %v", tp.App, err)
		}
	}
}

func TestTopologySizesMatchPaper(t *testing.T) {
	hotel := HotelReservation()
	if got := len(hotel.Services); got != 8 {
		t.Fatalf("hotel services = %d, want 8", got)
	}
	social := SocialNetwork()
	if got := len(social.Services); got != 24 {
		t.Fatalf("social services = %d, want 24", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	tp := HotelReservation()
	tp.Services["frontend"].Children = append(tp.Services["frontend"].Children, "ghost")
	if err := tp.Validate(); err == nil {
		t.Fatal("unknown child should fail validation")
	}
	tp = HotelReservation()
	tp.Services["frontend"].Node = "ghost-node"
	if err := tp.Validate(); err == nil {
		t.Fatal("unknown node should fail validation")
	}
	tp = HotelReservation()
	tp.Services["geo"].Children = []string{"frontend"} // creates a cycle
	if err := tp.Validate(); err == nil {
		t.Fatal("cyclic call graph should fail validation")
	}
	tp = HotelReservation()
	tp.App = ""
	if err := tp.Validate(); err == nil {
		t.Fatal("empty app name should fail validation")
	}
	tp = HotelReservation()
	tp.Entrypoints = []string{"ghost"}
	if err := tp.Validate(); err == nil {
		t.Fatal("unknown entrypoint should fail validation")
	}
}

func TestCallMultipliers(t *testing.T) {
	tp := HotelReservation()
	m := tp.callMultipliers("frontend")
	if m["frontend"] != 1 {
		t.Fatalf("frontend multiplier = %v", m["frontend"])
	}
	// profile is called by both recommendation and reservation.
	if m["profile"] != 2 {
		t.Fatalf("profile multiplier = %v, want 2", m["profile"])
	}
	if m["geo"] != 1 {
		t.Fatalf("geo multiplier = %v, want 1", m["geo"])
	}
}

func TestSimProducesEntitiesAndMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sim := &Sim{
		Topo:      HotelReservation(),
		Steps:     50,
		Workloads: []*Workload{{Name: "c", Entry: "frontend", RPS: ConstantRPS(100, 5, rng)}},
		Seed:      1,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 8 services + 8 containers + 7 nodes + 1 client + 1 flow = 25 entities.
	if got := res.DB.NumEntities(); got != 25 {
		t.Fatalf("entities = %d, want 25", got)
	}
	if res.DB.Len() != 50 {
		t.Fatalf("timeline = %d", res.DB.Len())
	}
	lat := res.ServiceLatency("frontend")
	if len(lat) != 50 {
		t.Fatalf("latency points = %d", len(lat))
	}
	for _, v := range lat {
		if v <= 0 {
			t.Fatal("latency must be positive")
		}
	}
	// Container CPU in [0,1].
	cpu := res.DB.Series(res.ContainerEntity["search"], telemetry.MetricCPU)
	for i := 0; i < cpu.Len(); i++ {
		if cpu.At(i) < 0 || cpu.At(i) > 1 {
			t.Fatalf("container CPU out of range: %v", cpu.At(i))
		}
	}
}

func TestSimErrors(t *testing.T) {
	sim := &Sim{Topo: HotelReservation(), Steps: 0}
	if _, err := sim.Run(); err == nil {
		t.Fatal("zero steps should error")
	}
	rng := rand.New(rand.NewSource(1))
	sim = &Sim{
		Topo:      HotelReservation(),
		Steps:     10,
		Workloads: []*Workload{{Name: "c", Entry: "ghost", RPS: ConstantRPS(1, 0, rng)}},
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("unknown entry should error")
	}
}

func TestCPUFaultRaisesLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sim := &Sim{
		Topo:      HotelReservation(),
		Steps:     100,
		Workloads: []*Workload{{Name: "c", Entry: "frontend", RPS: ConstantRPS(100, 2, rng)}},
		Faults:    []Fault{{Service: "geo", Kind: FaultCPU, Intensity: 0.6, Start: 80, Duration: 20}},
		Seed:      2,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	lat := res.ServiceLatency("frontend")
	before := stats.Mean(lat[40:80])
	during := stats.Mean(lat[80:])
	if during < before*1.3 {
		t.Fatalf("fault should raise frontend latency: before %v, during %v", before, during)
	}
	// The faulted container's CPU must be visibly higher.
	cpu := res.DB.Series(res.ContainerEntity["geo"], telemetry.MetricCPU)
	cb := stats.Mean(cpu.Values()[40:80])
	cd := stats.Mean(cpu.Values()[80:])
	if cd < cb+0.2 {
		t.Fatalf("fault should raise container CPU: %v -> %v", cb, cd)
	}
}

func TestMemAndDiskFaultsVisible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sim := &Sim{
		Topo:      HotelReservation(),
		Steps:     60,
		Workloads: []*Workload{{Name: "c", Entry: "frontend", RPS: ConstantRPS(100, 2, rng)}},
		Faults: []Fault{
			{Service: "user", Kind: FaultMem, Intensity: 0.5, Start: 50, Duration: 10},
			{Service: "rate", Kind: FaultDisk, Intensity: 0.5, Start: 50, Duration: 10},
		},
		Seed: 3,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	mem := res.DB.Series(res.ContainerEntity["user"], telemetry.MetricMem)
	if mem.At(55) < mem.At(10)+0.3 {
		t.Fatalf("mem fault invisible: %v -> %v", mem.At(10), mem.At(55))
	}
	disk := res.DB.Series(res.ContainerEntity["rate"], telemetry.MetricDiskUtil)
	if disk.At(55) < disk.At(10)+0.3 {
		t.Fatalf("disk fault invisible: %v -> %v", disk.At(10), disk.At(55))
	}
}

func TestInterferenceScenarioShape(t *testing.T) {
	opts := DefaultInterferenceOptions()
	opts.Steps = 200
	sc, err := Interference(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Victim latency must spike after the fault starts.
	lat := sc.Result.DB.Series(sc.Symptom.Entity, telemetry.MetricLatency).Values()
	before := stats.Mean(lat[sc.FaultStart-40 : sc.FaultStart])
	during := stats.Mean(lat[sc.FaultStart:])
	if during < before*1.5 {
		t.Fatalf("victim latency should spike: %v -> %v", before, during)
	}
	if sc.TruthEntity != sc.Result.ClientEntity["clientA"] {
		t.Fatal("truth should be the aggressor client")
	}
	if len(sc.Acceptable) == 0 {
		t.Fatal("relaxed accept set should be non-empty")
	}
	// The aggressor must NOT be in the victim's Sage DAG.
	for _, e := range sc.CallDAG {
		if e[0] == sc.TruthEntity || e[1] == sc.TruthEntity {
			t.Fatal("aggressor must be outside the victim call DAG")
		}
	}
	if _, err := Interference(InterferenceOptions{Steps: 5}); err == nil {
		t.Fatal("too-short interference should error")
	}
}

func TestContentionScenarioShape(t *testing.T) {
	for _, topoName := range []string{"hotel", "social"} {
		opts := DefaultContentionOptions()
		opts.Topo = topoName
		opts.Steps = 150
		opts.Seed = 7
		sc, err := Contention(opts)
		if err != nil {
			t.Fatal(err)
		}
		lat := sc.Result.DB.Series(sc.Symptom.Entity, telemetry.MetricLatency).Values()
		before := stats.Mean(lat[sc.FaultStart-30 : sc.FaultStart])
		during := stats.Mean(lat[sc.FaultStart:])
		if during < before*1.2 {
			t.Fatalf("%s: fault should raise client latency: %v -> %v", topoName, before, during)
		}
		if sc.Result.DB.Entity(sc.TruthEntity) == nil {
			t.Fatal("truth entity must exist")
		}
		if sc.Result.DB.Entity(sc.TruthEntity).Type != telemetry.TypeContainer {
			t.Fatal("truth should be a container")
		}
	}
	if _, err := Contention(ContentionOptions{Topo: "bogus", Steps: 100}); err == nil {
		t.Fatal("unknown topology should error")
	}
	if _, err := Contention(ContentionOptions{Steps: 5}); err == nil {
		t.Fatal("too-short contention should error")
	}
}

func TestContentionDeterministicPerSeed(t *testing.T) {
	opts := DefaultContentionOptions()
	opts.Steps = 100
	a, err := Contention(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Contention(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.TruthEntity != b.TruthEntity {
		t.Fatal("same seed must pick the same fault target")
	}
	la := a.Result.DB.Series(a.Symptom.Entity, telemetry.MetricLatency).Values()
	lb := b.Result.DB.Series(b.Symptom.Entity, telemetry.MetricLatency).Values()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed must reproduce identical telemetry")
		}
	}
}

func TestStepRPS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := StepRPS(10, 100, 5, 8, 0, rng)
	if f(4) != 10 || f(5) != 100 || f(7) != 100 || f(8) != 10 {
		t.Fatal("step boundaries wrong")
	}
	g := ConstantRPS(0, 1, rng)
	for i := 0; i < 50; i++ {
		if g(i) < 0 {
			t.Fatal("RPS must be non-negative")
		}
	}
}

func TestSocialEntityCountNearPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sim := &Sim{
		Topo:  SocialNetwork(),
		Steps: 10,
		Workloads: []*Workload{
			{Name: "c1", Entry: "nginx-web-server", RPS: ConstantRPS(50, 1, rng)},
			{Name: "c2", Entry: "media-frontend", RPS: ConstantRPS(20, 1, rng)},
		},
		Seed: 1,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 24 services + 24 containers + 1 node + 2 clients + 2 flows = 53;
	// paper reports 57 total entities for this app — same order.
	if got := res.DB.NumEntities(); got < 50 || got > 60 {
		t.Fatalf("social entity count = %d, want ~57", got)
	}
}

// simSnapshot runs a faulted hotel-reservation sim from one seed and returns
// the telemetry snapshot bytes.
func simSnapshot(t *testing.T, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sim := &Sim{
		Topo:  HotelReservation(),
		Steps: 60,
		Workloads: []*Workload{
			{Name: "c", Entry: "frontend", RPS: ConstantRPS(100, 5, rng)},
			{Name: "burst", Entry: "frontend", RPS: StepRPS(10, 200, 40, 55, 2, rng)},
		},
		Faults:    []Fault{{Service: "rate", Kind: FaultCPU, Intensity: 0.5, Start: 40, Duration: 20}},
		Seed:      seed,
		NoiseFrac: 0.02,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.DB.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSimSeedSnapshotDeterminism pins the replay contract the fuzzed scenario
// suite relies on: a sim built and run twice from one seed (including the
// workload RPS generators, which draw from their own seeded rng) must produce
// byte-identical telemetry snapshots, so a fuzz failure replays exactly from
// its logged (family, index, seed) coordinates.
func TestSimSeedSnapshotDeterminism(t *testing.T) {
	a := simSnapshot(t, 11)
	b := simSnapshot(t, 11)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different telemetry snapshots")
	}
	if c := simSnapshot(t, 12); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical snapshots (seed unused?)")
	}
}
