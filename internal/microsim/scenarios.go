package microsim

import (
	"fmt"
	"math/rand"

	"murphy/internal/telemetry"
	"murphy/internal/tracing"
)

// Scenario is one generated failure case ready for diagnosis.
type Scenario struct {
	// Name identifies the scenario variant.
	Name string
	// Result is the emulated environment.
	Result *Result
	// Symptom is the problematic (entity, metric) pair an operator would
	// hand to a diagnosis tool.
	Symptom telemetry.Symptom
	// TruthEntity is the injected root cause's entity ID.
	TruthEntity telemetry.EntityID
	// Acceptable lists additional entities counted as hits under the
	// "relaxed" criteria of §6.1 (common services / common containers).
	Acceptable []telemetry.EntityID
	// FaultStart is the slice at which the incident begins.
	FaultStart int
	// CallDAG lists the directed cause→effect service edges Sage is given
	// (built from the affected entrypoint's call tree only, per §6.1).
	CallDAG [][2]telemetry.EntityID
	// sim is the emulation that produced Result, kept for trace emission.
	sim *Sim
}

// EmitTraces synthesizes Jaeger-style request traces for the scenario's
// emulation into the store; see Sim.EmitTraces.
func (sc *Scenario) EmitTraces(store *tracing.Store, tracesPerSlice int, seed int64) (int, error) {
	if sc.sim == nil {
		return 0, fmt.Errorf("microsim: scenario has no emulation attached")
	}
	return sc.sim.EmitTraces(sc.Result, store, tracesPerSlice, seed)
}

// InterferenceOptions parameterizes the Fig 5a performance-interference
// scenario on the hotel topology.
type InterferenceOptions struct {
	// Steps is the emulation length; the fault occupies the final quarter.
	Steps int
	// VictimBaseRPS is client B's steady request rate.
	VictimBaseRPS float64
	// AggressorBaseRPS is client A's pre-incident request rate.
	AggressorBaseRPS float64
	// AggressorSpikeRPS is client A's in-incident request rate.
	AggressorSpikeRPS float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultInterferenceOptions mirrors the paper's setup scaled to emulation.
func DefaultInterferenceOptions() InterferenceOptions {
	return InterferenceOptions{
		Steps:             400,
		VictimBaseRPS:     80,
		AggressorBaseRPS:  100,
		AggressorSpikeRPS: 1200,
		Seed:              1,
	}
}

// Interference builds the Fig 5a scenario: client A (aggressor) hits
// service 1 (search path), client B (victim) hits service 2 (reservation
// path); the two call trees share downstream services whose shared node
// saturates when A spikes, raising B's observed latency. The true root cause
// is client A's flow; the relaxed-accept set contains the overwhelmed common
// services and their containers. The relationship graph contains the cycle
// service1 ↔ common ↔ service2, which Sage cannot model: its DAG covers only
// the victim's call tree, so the aggressor is structurally invisible to it.
func Interference(opts InterferenceOptions) (*Scenario, error) {
	if opts.Steps < 40 {
		return nil, fmt.Errorf("microsim: interference needs at least 40 steps")
	}
	topo := HotelReservation()
	// Fig 5a's structure: the two API endpoints share common downstream
	// services. Make search (service 1) and reservation (service 2) both
	// call rate and profile, so the aggressor's influence reaches the victim
	// through the shared services — not through a common parent.
	topo.Services["search"].Children = []string{"geo", "rate", "profile"}
	topo.Services["reservation"].Children = []string{"profile", "rate"}
	rng := rand.New(rand.NewSource(opts.Seed))
	faultStart := opts.Steps * 3 / 4
	wA := &Workload{
		Name:  "clientA",
		Entry: "search",
		RPS:   StepRPS(opts.AggressorBaseRPS, opts.AggressorSpikeRPS, faultStart, opts.Steps, opts.AggressorBaseRPS*0.05, rng),
	}
	wB := &Workload{
		Name:  "clientB",
		Entry: "reservation",
		RPS:   ConstantRPS(opts.VictimBaseRPS, opts.VictimBaseRPS*0.05, rng),
	}
	// Move search's leaf dependencies onto the same node as reservation's so
	// they truly share hardware: geo, rate, profile all on node-5.
	topo.Services["geo"].Node = "node-5"
	topo.Services["rate"].Node = "node-5"
	topo.Services["profile"].Node = "node-5"
	sim := &Sim{
		Topo:      topo,
		Steps:     opts.Steps,
		Workloads: []*Workload{wA, wB},
		Seed:      opts.Seed,
		NoiseFrac: 0.02,
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	sc := &Scenario{
		Name:        fmt.Sprintf("interference-rps%d", int(opts.AggressorSpikeRPS)),
		sim:         sim,
		Result:      res,
		Symptom:     telemetry.Symptom{Entity: res.ClientEntity["clientB"], Metric: telemetry.MetricLatency, High: true},
		TruthEntity: res.ClientEntity["clientA"],
		FaultStart:  faultStart,
	}
	// Relaxed hits: the aggressor flow, the shared services and containers.
	sc.Acceptable = append(sc.Acceptable, res.FlowEntity["clientA"])
	for _, common := range []string{"geo", "rate", "profile"} {
		sc.Acceptable = append(sc.Acceptable, res.ServiceEntity[common], res.ContainerEntity[common])
	}
	sc.CallDAG = victimCallDAG(topo, res, "reservation")
	return sc, nil
}

// VictimCallDAG builds the cause→effect DAG Sage receives: only the victim
// entrypoint's call tree, with edges from callee to caller (a slow callee
// causes a slow caller) plus container→service edges (a stressed container
// causes a slow service). It is exported so scenario builders outside this
// package (the metamorph fuzzer) can hand Sage the same honest DAG view.
func VictimCallDAG(topo *Topology, res *Result, entry string) [][2]telemetry.EntityID {
	return victimCallDAG(topo, res, entry)
}

func victimCallDAG(topo *Topology, res *Result, entry string) [][2]telemetry.EntityID {
	var edges [][2]telemetry.EntityID
	seen := map[string]bool{}
	var walk func(string)
	walk = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		edges = append(edges, [2]telemetry.EntityID{res.ContainerEntity[name], res.ServiceEntity[name]})
		for _, c := range topo.Services[name].Children {
			edges = append(edges, [2]telemetry.EntityID{res.ServiceEntity[c], res.ServiceEntity[name]})
			walk(c)
		}
	}
	walk(entry)
	return edges
}

// ContentionOptions parameterizes the §6.3 resource-contention scenarios.
type ContentionOptions struct {
	// Topo selects the application ("hotel" or "social").
	Topo string
	// Steps is the emulation length.
	Steps int
	// PriorIncidents is how many short-lived prior faults are injected into
	// the training window (the paper uses up to 14).
	PriorIncidents int
	// Kind is the stressed resource.
	Kind FaultKind
	// Intensity is the stress magnitude (utilization fraction).
	Intensity float64
	// Seed drives fault placement and noise.
	Seed int64
}

// DefaultContentionOptions returns a hotel-topology CPU contention setup.
func DefaultContentionOptions() ContentionOptions {
	return ContentionOptions{Topo: "hotel", Steps: 360, PriorIncidents: 4, Kind: FaultCPU, Intensity: 0.55, Seed: 1}
}

// Contention builds one §6.3 scenario: a resource fault on a random
// container of the chosen application while a steady client workload runs.
// The symptom is the entrypoint client's latency; the truth is the stressed
// container. The call graph here is a clean DAG (no interference between
// entrypoints), which is Sage's home turf.
func Contention(opts ContentionOptions) (*Scenario, error) {
	if opts.Steps < 60 {
		return nil, fmt.Errorf("microsim: contention needs at least 60 steps")
	}
	var topo *Topology
	switch opts.Topo {
	case "hotel", "":
		topo = HotelReservation()
	case "social":
		topo = SocialNetwork()
	default:
		return nil, fmt.Errorf("microsim: unknown topology %q", opts.Topo)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	entry := topo.Entrypoints[0]
	// Choose the faulty service among those in the entry's call tree so the
	// fault actually affects the symptom.
	mult := topo.callMultipliers(entry)
	var inTree []string
	for _, name := range topo.ServiceNames() {
		if mult[name] > 0 {
			inTree = append(inTree, name)
		}
	}
	target := inTree[rng.Intn(len(inTree))]
	// Faults last 5-10 minutes at the 10 s grain (§5.1.2), regardless of
	// how long the surrounding trace is.
	faultDur := 30 + rng.Intn(30)
	if faultDur > opts.Steps/5 {
		faultDur = opts.Steps / 5
	}
	faultStart := opts.Steps - faultDur
	faults := []Fault{{
		Service:   target,
		Kind:      opts.Kind,
		Intensity: opts.Intensity,
		Start:     faultStart,
		Duration:  faultDur,
	}}
	// Prior incidents: short faults on random services inside the training
	// window (§6.3 "for realism, as in Sage"). They avoid the main fault's
	// container: the incident to be diagnosed involves a metric pattern that
	// has not occurred in the past, which is the premise of the paper's
	// online-vs-offline comparison (§6.5.1, §6.2).
	others := make([]string, 0, len(inTree)-1)
	for _, s := range inTree {
		if s != target {
			others = append(others, s)
		}
	}
	if len(others) == 0 {
		others = inTree
	}
	for i := 0; i < opts.PriorIncidents; i++ {
		svc := others[rng.Intn(len(others))]
		start := 10 + rng.Intn(faultStart-30)
		faults = append(faults, Fault{
			Service:   svc,
			Kind:      opts.Kind,
			Intensity: opts.Intensity * (0.5 + rng.Float64()*0.5),
			Start:     start,
			Duration:  5 + rng.Intn(10),
		})
	}
	// Baseline request rate sized so the cluster sits at moderate load:
	// the single-node social deployment saturates far earlier than the
	// 7-node hotel cluster.
	baseRPS := 120.0
	if opts.Topo == "social" {
		baseRPS = 25.0
	}
	w := &Workload{Name: "client", Entry: entry, RPS: ConstantRPS(baseRPS, baseRPS*0.05, rng)}
	sim := &Sim{
		Topo:      topo,
		Steps:     opts.Steps,
		Workloads: []*Workload{w},
		Faults:    faults,
		Seed:      opts.Seed,
		NoiseFrac: 0.02,
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	sc := &Scenario{
		Name:        fmt.Sprintf("contention-%s-%s-%s", opts.Topo, opts.Kind, target),
		sim:         sim,
		Result:      res,
		Symptom:     telemetry.Symptom{Entity: res.ClientEntity["client"], Metric: telemetry.MetricLatency, High: true},
		TruthEntity: res.ContainerEntity[target],
		Acceptable:  []telemetry.EntityID{res.ServiceEntity[target]},
		FaultStart:  faultStart,
	}
	sc.CallDAG = victimCallDAG(topo, res, entry)
	// Sage's DAG also needs the client at the top: entry service causes the
	// client's latency.
	sc.CallDAG = append(sc.CallDAG, [2]telemetry.EntityID{res.ServiceEntity[entry], res.ClientEntity["client"]})
	return sc, nil
}
