// Package microsim emulates the DeathStarBench microservice testbeds of
// §5.1.2: the hotel-reservation and social-network applications, an
// open-loop wrk2-like request generator, container resource accounting on
// shared nodes with M/M/1-style latency inflation under load, stress-ng-like
// resource-contention fault injection, and the performance-interference
// scenario of Fig 5a. The emulation writes ordinary telemetry (container
// CPU/mem/disk/net and per-service latency/RPS at 10 s grain) into a
// telemetry.DB, so every diagnosis scheme consumes it exactly as it would
// consume cAdvisor + Jaeger data.
package microsim

import "fmt"

// ServiceDef declares one microservice of an application topology.
type ServiceDef struct {
	// Name is the service name (also used to derive entity IDs).
	Name string
	// Children are the services this service calls per request.
	Children []string
	// CostCPU is CPU-seconds consumed per request.
	CostCPU float64
	// BaseLatencyMS is the service's uncontended processing latency.
	BaseLatencyMS float64
	// Node is the worker node the service's container is placed on.
	Node string
}

// Topology is a whole application: services, their call DAG, and nodes.
type Topology struct {
	// App is the application name used for entity tagging.
	App string
	// Services maps name to definition.
	Services map[string]*ServiceDef
	// Entrypoints are the user-facing services clients can hit.
	Entrypoints []string
	// Nodes lists worker-node names with their CPU capacity
	// (CPU-seconds per second, i.e. cores).
	Nodes map[string]float64
	// order is a deterministic service iteration order.
	order []string
}

// ServiceNames returns the services in deterministic declaration order.
func (tp *Topology) ServiceNames() []string { return tp.order }

// Validate checks referential integrity and acyclicity of the call graph.
func (tp *Topology) Validate() error {
	if tp.App == "" {
		return fmt.Errorf("microsim: topology needs an app name")
	}
	if len(tp.Services) == 0 {
		return fmt.Errorf("microsim: topology has no services")
	}
	for name, s := range tp.Services {
		if s.Name != name {
			return fmt.Errorf("microsim: service map key %q != name %q", name, s.Name)
		}
		if _, ok := tp.Nodes[s.Node]; !ok {
			return fmt.Errorf("microsim: service %q placed on unknown node %q", name, s.Node)
		}
		for _, c := range s.Children {
			if _, ok := tp.Services[c]; !ok {
				return fmt.Errorf("microsim: service %q calls unknown service %q", name, c)
			}
		}
	}
	for _, e := range tp.Entrypoints {
		if _, ok := tp.Services[e]; !ok {
			return fmt.Errorf("microsim: entrypoint %q unknown", e)
		}
	}
	// Cycle check by DFS colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(tp.Services))
	var dfs func(string) error
	dfs = func(u string) error {
		color[u] = gray
		for _, v := range tp.Services[u].Children {
			switch color[v] {
			case gray:
				return fmt.Errorf("microsim: call graph cycle through %q", v)
			case white:
				if err := dfs(v); err != nil {
					return err
				}
			}
		}
		color[u] = black
		return nil
	}
	for name := range tp.Services {
		if color[name] == white {
			if err := dfs(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// NewTopology assembles a custom topology from service definitions. The
// declaration order of defs becomes the deterministic iteration order, as in
// the built-in topologies; the scenario fuzzer uses it to compose synthetic
// call chains.
func NewTopology(app string, nodes map[string]float64, defs []*ServiceDef, entry ...string) *Topology {
	return newTopology(app, nodes, defs, entry...)
}

func newTopology(app string, nodes map[string]float64, defs []*ServiceDef, entry ...string) *Topology {
	tp := &Topology{App: app, Services: make(map[string]*ServiceDef, len(defs)), Nodes: nodes, Entrypoints: entry}
	for _, d := range defs {
		tp.Services[d.Name] = d
		tp.order = append(tp.order, d.Name)
	}
	return tp
}

// HotelReservation returns the hotel-reservation topology: 8 services on a
// 7-node cluster (as deployed on AWS in the paper), 16 relationship-graph
// entities once services and containers are both counted.
func HotelReservation() *Topology {
	nodes := map[string]float64{
		"node-0": 4, "node-1": 4, "node-2": 4, "node-3": 4,
		"node-4": 4, "node-5": 4, "node-6": 4,
	}
	defs := []*ServiceDef{
		{Name: "frontend", Children: []string{"search", "recommendation", "user", "reservation"}, CostCPU: 0.002, BaseLatencyMS: 2, Node: "node-0"},
		{Name: "search", Children: []string{"geo", "rate"}, CostCPU: 0.004, BaseLatencyMS: 3, Node: "node-1"},
		{Name: "recommendation", Children: []string{"profile"}, CostCPU: 0.003, BaseLatencyMS: 2, Node: "node-2"},
		{Name: "user", Children: nil, CostCPU: 0.002, BaseLatencyMS: 1, Node: "node-3"},
		{Name: "reservation", Children: []string{"profile"}, CostCPU: 0.004, BaseLatencyMS: 3, Node: "node-4"},
		{Name: "geo", Children: nil, CostCPU: 0.003, BaseLatencyMS: 2, Node: "node-5"},
		{Name: "rate", Children: nil, CostCPU: 0.003, BaseLatencyMS: 2, Node: "node-6"},
		{Name: "profile", Children: nil, CostCPU: 0.003, BaseLatencyMS: 2, Node: "node-5"},
	}
	return newTopology("hotel-reservation", nodes, defs, "frontend")
}

// SocialNetwork returns the social-network topology: 24 services co-located
// on a single 8-core node (the paper's single-node Docker deployment), 57
// relationship-graph entities once services, containers, the node, and the
// client-facing flows are counted.
func SocialNetwork() *Topology {
	nodes := map[string]float64{"node-0": 8}
	mk := func(name string, cost, lat float64, children ...string) *ServiceDef {
		return &ServiceDef{Name: name, Children: children, CostCPU: cost, BaseLatencyMS: lat, Node: "node-0"}
	}
	defs := []*ServiceDef{
		mk("nginx-web-server", 0.001, 1, "compose-post", "home-timeline", "user-timeline", "user-service"),
		mk("compose-post", 0.003, 2, "text-service", "media-service", "unique-id", "user-mention", "post-storage", "write-home-timeline"),
		mk("home-timeline", 0.002, 2, "post-storage", "social-graph"),
		mk("user-timeline", 0.002, 2, "post-storage", "user-timeline-db"),
		mk("user-service", 0.002, 1, "user-db", "user-cache"),
		mk("text-service", 0.002, 1, "url-shorten", "user-mention"),
		mk("media-service", 0.003, 2, "media-db"),
		mk("unique-id", 0.001, 1),
		mk("user-mention", 0.001, 1, "user-db"),
		mk("post-storage", 0.003, 2, "post-db", "post-cache"),
		mk("write-home-timeline", 0.002, 2, "home-timeline-db", "social-graph"),
		mk("social-graph", 0.002, 2, "social-graph-db", "social-graph-cache"),
		mk("url-shorten", 0.001, 1, "url-db"),
		mk("user-db", 0.004, 3),
		mk("user-cache", 0.001, 1),
		mk("post-db", 0.004, 3),
		mk("post-cache", 0.001, 1),
		mk("media-db", 0.004, 3),
		mk("user-timeline-db", 0.004, 3),
		mk("home-timeline-db", 0.004, 3),
		mk("social-graph-db", 0.004, 3),
		mk("social-graph-cache", 0.001, 1),
		mk("url-db", 0.003, 2),
		mk("media-frontend", 0.002, 1, "media-service"),
	}
	return newTopology("social-network", nodes, defs, "nginx-web-server", "media-frontend")
}

// callMultipliers returns, for one entrypoint, how many calls each service
// receives per entrypoint request (following the call DAG).
func (tp *Topology) callMultipliers(entry string) map[string]float64 {
	mult := make(map[string]float64, len(tp.Services))
	var walk func(name string, m float64)
	walk = func(name string, m float64) {
		mult[name] += m
		for _, c := range tp.Services[name].Children {
			walk(c, m)
		}
	}
	walk(entry, 1)
	return mult
}
