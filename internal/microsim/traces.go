package microsim

import (
	"fmt"
	"math/rand"

	"murphy/internal/telemetry"
	"murphy/internal/tracing"
)

// EmitTraces synthesizes Jaeger-style request traces from an emulation
// result: for each time slice and workload, it samples a few requests,
// builds the span tree following the call graph, and sizes span durations
// from the recorded per-service latencies of that slice (the end-to-end
// latency of a span covers its own processing plus its children, matching
// how the emulator composes latency). tracesPerSlice bounds the emitted
// volume before sampling; the store's sampler then thins further.
func (s *Sim) EmitTraces(res *Result, store *tracing.Store, tracesPerSlice int, seed int64) (int, error) {
	if tracesPerSlice <= 0 {
		return 0, fmt.Errorf("microsim: tracesPerSlice must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	db := res.DB
	latAt := func(svc string, slice int) float64 {
		v := db.At(res.ServiceEntity[svc], telemetry.MetricLatency, slice)
		if v != v || v < 0 {
			return 0
		}
		return v
	}
	emitted := 0
	for slice := 0; slice < db.Len(); slice++ {
		for _, w := range s.Workloads {
			for r := 0; r < tracesPerSlice; r++ {
				tr := &tracing.Trace{Slice: slice}
				var next tracing.SpanID
				var build func(svc string, parent tracing.SpanID, start int64) int64
				build = func(svc string, parent tracing.SpanID, start int64) int64 {
					id := next
					next++
					// Reserve the slot; duration is filled after children.
					tr.Spans = append(tr.Spans, tracing.Span{
						ID: id, Parent: parent, Service: svc, StartUS: start,
					})
					slot := len(tr.Spans) - 1
					total := latAt(svc, slice) * 1000 // ms → µs (e2e incl. children)
					jitter := 1 + rng.NormFloat64()*0.05
					if jitter < 0.5 {
						jitter = 0.5
					}
					dur := int64(total * jitter)
					if dur < 1 {
						dur = 1
					}
					// Children execute sequentially inside the parent.
					childStart := start
					for _, c := range s.Topo.Services[svc].Children {
						childStart += build(c, id, childStart)
					}
					if used := childStart - start; dur < used {
						dur = used
					}
					tr.Spans[slot].DurationUS = dur
					return dur
				}
				build(w.Entry, -1, 0)
				ok, err := store.Collect(tr)
				if err != nil {
					return emitted, err
				}
				if ok {
					emitted++
				}
			}
		}
	}
	return emitted, nil
}
