package microsim

import (
	"math"
	"math/rand"
	"testing"

	"murphy/internal/tracing"
)

func emittedStore(t *testing.T, rate float64) (*Sim, *Result, *tracing.Store, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	sim := &Sim{
		Topo:      HotelReservation(),
		Steps:     30,
		Workloads: []*Workload{{Name: "c", Entry: "frontend", RPS: ConstantRPS(100, 2, rng)}},
		Seed:      4,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	store := tracing.NewStore(rate)
	n, err := sim.EmitTraces(res, store, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return sim, res, store, n
}

func TestEmitTracesStructure(t *testing.T) {
	sim, _, store, n := emittedStore(t, 1)
	if n != 30*3 {
		t.Fatalf("emitted = %d, want 90", n)
	}
	if store.Len() != n {
		t.Fatal("all traces should be sampled at rate 1")
	}
	for _, tr := range store.Traces() {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.RootService() != "frontend" {
			t.Fatalf("root service = %s", tr.RootService())
		}
		// One span per service reached through the call tree per call.
		if len(tr.Spans) != 9 { // frontend + search,recommendation,user,reservation + geo,rate,profile(x2)
			t.Fatalf("span count = %d", len(tr.Spans))
		}
	}
	_ = sim
}

func TestEmitTracesCallGraphMatchesTopology(t *testing.T) {
	sim, _, store, _ := emittedStore(t, 1)
	edges := store.CallGraph()
	want := map[[2]string]bool{}
	for name, def := range sim.Topo.Services {
		for _, c := range def.Children {
			want[[2]string{name, c}] = true
		}
	}
	// Only edges reachable from the entry appear.
	for _, e := range edges {
		if !want[[2]string{e.Caller, e.Callee}] {
			t.Fatalf("extracted edge %v not in topology", e)
		}
	}
	// All edges in frontend's call tree must appear.
	mult := sim.Topo.callMultipliers("frontend")
	for pair := range want {
		if mult[pair[0]] > 0 {
			found := false
			for _, e := range edges {
				if e.Caller == pair[0] && e.Callee == pair[1] {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %v missing from extraction", pair)
			}
		}
	}
}

func TestEmitTracesLatencyMatchesTelemetry(t *testing.T) {
	_, res, store, _ := emittedStore(t, 1)
	// The root span duration should track the recorded frontend latency.
	recorded := res.ServiceLatency("frontend")
	traced := store.ServiceLatency("frontend", 30)
	for slice := 5; slice < 10; slice++ {
		if math.IsNaN(traced[slice]) {
			t.Fatal("traced latency missing")
		}
		rel := math.Abs(traced[slice]-recorded[slice]) / recorded[slice]
		if rel > 0.25 {
			t.Fatalf("slice %d: traced %v vs recorded %v", slice, traced[slice], recorded[slice])
		}
	}
}

func TestEmitTracesSampling(t *testing.T) {
	_, _, store, n := emittedStore(t, 0.3)
	if n == 0 || n >= 90 {
		t.Fatalf("sampled count = %d, want strictly between 0 and 90", n)
	}
	if store.Dropped()+store.Len() != 90 {
		t.Fatal("dropped+kept should cover all offers")
	}
}

func TestEmitTracesErrors(t *testing.T) {
	sim, res, _, _ := emittedStore(t, 1)
	if _, err := sim.EmitTraces(res, tracing.NewStore(1), 0, 1); err == nil {
		t.Fatal("zero tracesPerSlice should error")
	}
}
