package microsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"murphy/internal/telemetry"
)

// Workload is one open-loop client hitting an entrypoint service, in the
// style of wrk2: the offered request rate is independent of response times.
type Workload struct {
	// Name identifies the client (also the client entity name).
	Name string
	// Entry is the entrypoint service the client targets.
	Entry string
	// RPS returns the offered request rate at step t.
	RPS func(t int) float64
}

// ConstantRPS returns a rate function with Gaussian jitter around base.
func ConstantRPS(base, jitter float64, rng *rand.Rand) func(int) float64 {
	return func(int) float64 {
		v := base + rng.NormFloat64()*jitter
		if v < 0 {
			return 0
		}
		return v
	}
}

// StepRPS returns base RPS, stepping to spike for t in [from, to).
func StepRPS(base, spike float64, from, to int, jitter float64, rng *rand.Rand) func(int) float64 {
	return func(t int) float64 {
		v := base
		if t >= from && t < to {
			v = spike
		}
		v += rng.NormFloat64() * jitter
		if v < 0 {
			return 0
		}
		return v
	}
}

// FaultKind is the resource a contention fault stresses.
type FaultKind string

// Fault kinds injected by the stress-ng replacement.
const (
	FaultCPU  FaultKind = "cpu"
	FaultMem  FaultKind = "mem"
	FaultDisk FaultKind = "disk"
)

// Fault is one stress-ng-like resource-contention injection on a service's
// container for steps [Start, Start+Duration).
type Fault struct {
	Service   string
	Kind      FaultKind
	Intensity float64 // added utilization fraction (0..1)
	Start     int
	Duration  int
}

// active reports whether the fault is in effect at step t.
func (f Fault) active(t int) bool { return t >= f.Start && t < f.Start+f.Duration }

// Sim runs a discrete-time emulation of one topology under workloads and
// faults and records telemetry.
type Sim struct {
	// Topo is the application topology.
	Topo *Topology
	// Steps is the number of 10-second time slices to simulate.
	Steps int
	// Workloads are the open-loop clients.
	Workloads []*Workload
	// Faults are the injected resource-contention faults.
	Faults []Fault
	// Seed drives the emulation noise.
	Seed int64
	// NoiseFrac is the relative measurement noise on recorded metrics.
	NoiseFrac float64
}

// Result is the emulated environment ready for diagnosis.
type Result struct {
	// DB holds the recorded telemetry with relationship metadata.
	DB *telemetry.DB
	// ServiceEntity / ContainerEntity / NodeEntity / ClientEntity /
	// FlowEntity map simulation names to entity IDs.
	ServiceEntity   map[string]telemetry.EntityID
	ContainerEntity map[string]telemetry.EntityID
	NodeEntity      map[string]telemetry.EntityID
	ClientEntity    map[string]telemetry.EntityID
	FlowEntity      map[string]telemetry.EntityID
}

// ServiceLatency returns the recorded latency series values of a service.
func (r *Result) ServiceLatency(name string) []float64 {
	id := r.ServiceEntity[name]
	s := r.DB.Series(id, telemetry.MetricLatency)
	if s == nil {
		return nil
	}
	return s.Values()
}

// Run executes the emulation. The relationship graph it writes follows the
// monitoring platform's loose association rules: client↔flow↔entrypoint
// service; caller↔callee services; service↔its container; container↔its
// node. All associations are bidirectional — exactly the over-approximation
// Murphy expects (§4.1) — and co-located containers become mutually
// reachable through their shared node entity, which is how interference
// propagates without any call-graph edge.
func (s *Sim) Run() (*Result, error) {
	if err := s.Topo.Validate(); err != nil {
		return nil, err
	}
	if s.Steps <= 0 {
		return nil, fmt.Errorf("microsim: Steps must be positive")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	db := telemetry.NewDB(10)
	res := &Result{
		DB:              db,
		ServiceEntity:   make(map[string]telemetry.EntityID),
		ContainerEntity: make(map[string]telemetry.EntityID),
		NodeEntity:      make(map[string]telemetry.EntityID),
		ClientEntity:    make(map[string]telemetry.EntityID),
		FlowEntity:      make(map[string]telemetry.EntityID),
	}
	app := s.Topo.App

	// Entities: nodes.
	var nodeNames []string
	for n := range s.Topo.Nodes {
		nodeNames = append(nodeNames, n)
	}
	sort.Strings(nodeNames)
	for _, n := range nodeNames {
		id := telemetry.EntityID(app + "/node/" + n)
		res.NodeEntity[n] = id
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeNode, Name: n, App: app}); err != nil {
			return nil, err
		}
	}
	// Entities: services + containers.
	for _, name := range s.Topo.ServiceNames() {
		def := s.Topo.Services[name]
		sid := telemetry.EntityID(app + "/svc/" + name)
		cid := telemetry.EntityID(app + "/ctr/" + name)
		res.ServiceEntity[name] = sid
		res.ContainerEntity[name] = cid
		if err := db.AddEntity(&telemetry.Entity{ID: sid, Type: telemetry.TypeService, Name: name, App: app}); err != nil {
			return nil, err
		}
		if err := db.AddEntity(&telemetry.Entity{ID: cid, Type: telemetry.TypeContainer, Name: name + "-ctr", App: app}); err != nil {
			return nil, err
		}
		if err := db.Associate(sid, cid, telemetry.Bidirectional); err != nil {
			return nil, err
		}
		if err := db.Associate(cid, res.NodeEntity[def.Node], telemetry.Bidirectional); err != nil {
			return nil, err
		}
	}
	// Service call edges (loose, bidirectional: the platform sees RPC flows
	// but not their causal direction).
	for _, name := range s.Topo.ServiceNames() {
		for _, c := range s.Topo.Services[name].Children {
			if err := db.Associate(res.ServiceEntity[name], res.ServiceEntity[c], telemetry.Bidirectional); err != nil {
				return nil, err
			}
		}
	}
	// Clients and flows.
	for _, w := range s.Workloads {
		if _, ok := s.Topo.Services[w.Entry]; !ok {
			return nil, fmt.Errorf("microsim: workload %q targets unknown service %q", w.Name, w.Entry)
		}
		clid := telemetry.EntityID(app + "/client/" + w.Name)
		flid := telemetry.EntityID(app + "/flow/" + w.Name + "->" + w.Entry)
		res.ClientEntity[w.Name] = clid
		res.FlowEntity[w.Name] = flid
		if err := db.AddEntity(&telemetry.Entity{ID: clid, Type: telemetry.TypeClient, Name: w.Name, App: app}); err != nil {
			return nil, err
		}
		if err := db.AddEntity(&telemetry.Entity{ID: flid, Type: telemetry.TypeFlow, Name: w.Name + "->" + w.Entry, App: app}); err != nil {
			return nil, err
		}
		if err := db.Associate(clid, flid, telemetry.Bidirectional); err != nil {
			return nil, err
		}
		if err := db.Associate(flid, res.ServiceEntity[w.Entry], telemetry.Bidirectional); err != nil {
			return nil, err
		}
	}

	// Precompute per-workload call multipliers.
	mults := make([]map[string]float64, len(s.Workloads))
	for i, w := range s.Workloads {
		mults[i] = s.Topo.callMultipliers(w.Entry)
	}
	noise := func(v float64) float64 {
		if s.NoiseFrac <= 0 {
			return v
		}
		return v * (1 + rng.NormFloat64()*s.NoiseFrac)
	}

	// Per-step state.
	for t := 0; t < s.Steps; t++ {
		// Offered rates.
		clientRPS := make([]float64, len(s.Workloads))
		svcRPS := make(map[string]float64, len(s.Topo.Services))
		for i, w := range s.Workloads {
			clientRPS[i] = w.RPS(t)
			for svc, m := range mults[i] {
				svcRPS[svc] += clientRPS[i] * m
			}
		}
		// Container utilizations (before node contention).
		ctrCPU := make(map[string]float64, len(s.Topo.Services))
		ctrMem := make(map[string]float64, len(s.Topo.Services))
		ctrDisk := make(map[string]float64, len(s.Topo.Services))
		stress := make(map[string]float64, len(s.Faults))
		for _, name := range s.Topo.ServiceNames() {
			def := s.Topo.Services[name]
			ctrCPU[name] = svcRPS[name] * def.CostCPU
			ctrMem[name] = 0.2 + 0.001*svcRPS[name]
			ctrDisk[name] = 0.05 + 0.0005*svcRPS[name]
		}
		for _, f := range s.Faults {
			if !f.active(t) {
				continue
			}
			switch f.Kind {
			case FaultCPU:
				ctrCPU[f.Service] += f.Intensity * s.Topo.Nodes[s.Topo.Services[f.Service].Node]
				stress[f.Service] += f.Intensity
			case FaultMem:
				ctrMem[f.Service] += f.Intensity
				stress[f.Service] += f.Intensity * 1.2
			case FaultDisk:
				ctrDisk[f.Service] += f.Intensity
				stress[f.Service] += f.Intensity * 1.2
			}
		}
		// Node utilization: sum of its containers' CPU over capacity.
		nodeCPU := make(map[string]float64, len(s.Topo.Nodes))
		for _, name := range s.Topo.ServiceNames() {
			nodeCPU[s.Topo.Services[name].Node] += ctrCPU[name]
		}
		nodeUtil := make(map[string]float64, len(s.Topo.Nodes))
		for n, cap := range s.Topo.Nodes {
			nodeUtil[n] = nodeCPU[n] / cap
		}
		// Per-service own latency: base inflated by effective utilization of
		// its node (shared resource → co-located services interfere) and by
		// its own stress.
		ownLat := make(map[string]float64, len(s.Topo.Services))
		for _, name := range s.Topo.ServiceNames() {
			def := s.Topo.Services[name]
			u := nodeUtil[def.Node] + stress[name]
			if u > 0.97 {
				u = 0.97
			}
			if u < 0 {
				u = 0
			}
			ownLat[name] = def.BaseLatencyMS / (1 - u)
		}
		// End-to-end latency: own + sum of children (memoized per step).
		e2e := make(map[string]float64, len(s.Topo.Services))
		var latOf func(string) float64
		latOf = func(name string) float64 {
			if v, ok := e2e[name]; ok {
				return v
			}
			v := ownLat[name]
			for _, c := range s.Topo.Services[name].Children {
				v += latOf(c)
			}
			e2e[name] = v
			return v
		}

		// Record metrics.
		for _, name := range s.Topo.ServiceNames() {
			sid := res.ServiceEntity[name]
			cid := res.ContainerEntity[name]
			def := s.Topo.Services[name]
			cu := ctrCPU[name] / s.Topo.Nodes[def.Node]
			if cu > 1 {
				cu = 1
			}
			if err := db.Observe(sid, telemetry.MetricLatency, t, noise(latOf(name))); err != nil {
				return nil, err
			}
			if err := db.Observe(sid, telemetry.MetricRPS, t, noise(svcRPS[name])); err != nil {
				return nil, err
			}
			if err := db.Observe(cid, telemetry.MetricCPU, t, clamp01(noise(cu))); err != nil {
				return nil, err
			}
			if err := db.Observe(cid, telemetry.MetricMem, t, clamp01(noise(ctrMem[name]))); err != nil {
				return nil, err
			}
			if err := db.Observe(cid, telemetry.MetricDiskUtil, t, clamp01(noise(ctrDisk[name]))); err != nil {
				return nil, err
			}
			if err := db.Observe(cid, telemetry.MetricNetTx, t, noise(svcRPS[name]*2)); err != nil {
				return nil, err
			}
		}
		for _, n := range nodeNames {
			nid := res.NodeEntity[n]
			if err := db.Observe(nid, telemetry.MetricCPU, t, clamp01(noise(nodeUtil[n]))); err != nil {
				return nil, err
			}
			if err := db.Observe(nid, telemetry.MetricMem, t, clamp01(noise(0.3+0.3*nodeUtil[n]))); err != nil {
				return nil, err
			}
		}
		for i, w := range s.Workloads {
			clid := res.ClientEntity[w.Name]
			flid := res.FlowEntity[w.Name]
			if err := db.Observe(clid, telemetry.MetricRPS, t, noise(clientRPS[i])); err != nil {
				return nil, err
			}
			if err := db.Observe(clid, telemetry.MetricLatency, t, noise(latOf(w.Entry))); err != nil {
				return nil, err
			}
			if err := db.Observe(flid, telemetry.MetricThroughput, t, noise(clientRPS[i]*1500)); err != nil {
				return nil, err
			}
			if err := db.Observe(flid, telemetry.MetricSessions, t, noise(clientRPS[i]/2)); err != nil {
				return nil, err
			}
			if err := db.Observe(flid, telemetry.MetricRTT, t, noise(1+latOf(w.Entry)*0.05)); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

func clamp01(v float64) float64 {
	return math.Min(1, math.Max(0, v))
}
