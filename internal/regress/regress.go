// Package regress implements the metric-prediction models Murphy evaluates
// for its per-entity MRF factors (§6.6.1, Fig 8a): ridge regression (the
// model Murphy ships with), ordinary least squares, a Gaussian mixture model
// fitted by EM, a small multi-layer-perceptron neural network, and a linear
// support-vector regressor trained by subgradient descent. All models share
// the Predictor interface so the MRF core can swap them freely.
package regress

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"murphy/internal/mat"
	"murphy/internal/stats"
)

// Predictor is a trained model for one target metric given a feature vector
// of neighbor metrics in the same time slice.
type Predictor interface {
	// Fit trains the model on design matrix x (rows are time slices) and
	// target y. Implementations must record the residual standard deviation.
	Fit(x [][]float64, y []float64) error
	// Predict returns the model mean for one feature vector.
	Predict(x []float64) float64
	// ResidualStd returns the standard deviation of the training residuals;
	// the Gibbs sampler uses it as the noise scale when resampling.
	ResidualStd() float64
}

// Trainer constructs a fresh, untrained Predictor. The MRF core holds a
// Trainer so every entity factor gets its own model instance.
type Trainer func() Predictor

// ColumnsFitter is implemented by predictors that can train directly from
// feature columns (each column one feature across all time slices), skipping
// the row-major design matrix entirely. The MRF training pass holds its
// telemetry windows as columns, so a ColumnsFitter avoids materializing and
// then re-transposing an n×B row matrix per factor. Implementations must be
// bit-identical to Fit on the transposed input.
type ColumnsFitter interface {
	FitColumns(cols [][]float64, y []float64) error
}

// ErrNoData is returned by Fit when the training set is empty or degenerate.
var ErrNoData = errors.New("regress: no training data")

func checkShape(x [][]float64, y []float64) (nFeat int, err error) {
	if len(x) == 0 || len(x) != len(y) {
		return 0, ErrNoData
	}
	nFeat = len(x[0])
	for i, row := range x {
		if len(row) != nFeat {
			return 0, fmt.Errorf("regress: ragged design row %d", i)
		}
	}
	return nFeat, nil
}

func residualStd(pred func([]float64) float64, x [][]float64, y []float64) float64 {
	n := len(y)
	if n == 0 {
		return 0
	}
	ss := 0.0
	for i := range y {
		d := y[i] - pred(x[i])
		ss += d * d
	}
	s := math.Sqrt(ss / float64(n))
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 0
	}
	return s
}

// ---------------------------------------------------------------------------
// Ridge regression

// Ridge is ridge (L2-regularized) linear regression with feature
// standardization. It is the model the paper selected for production use.
type Ridge struct {
	// Lambda is the L2 penalty; zero yields ordinary least squares.
	Lambda float64

	coef      []float64 // per standardized feature
	intercept float64
	featMean  []float64
	featStd   []float64
	resid     float64
	fitted    bool
}

// NewRidge returns an untrained ridge model with the given penalty.
func NewRidge(lambda float64) *Ridge { return &Ridge{Lambda: lambda} }

// RidgeTrainer returns a Trainer producing ridge models with penalty lambda.
func RidgeTrainer(lambda float64) Trainer {
	return func() Predictor { return NewRidge(lambda) }
}

// OLSTrainer returns a Trainer producing ordinary-least-squares models
// (ridge with a vanishing penalty kept for numerical stability).
func OLSTrainer() Trainer {
	return func() Predictor { return NewRidge(1e-8) }
}

// Fit solves (Z'Z + lambda I) b = Z'y on standardized features Z.
func (r *Ridge) Fit(x [][]float64, y []float64) error {
	nFeat, err := checkShape(x, y)
	if err != nil {
		return err
	}
	n := len(y)
	if nFeat == 0 {
		// Intercept-only model.
		r.intercept = stats.Mean(y)
		r.coef = nil
		r.featMean, r.featStd = nil, nil
		r.resid = stats.StdDev(y)
		r.fitted = true
		return nil
	}
	// Standardize features; constant features get std 1 so they contribute 0.
	r.featMean = make([]float64, nFeat)
	r.featStd = make([]float64, nFeat)
	col := make([]float64, n)
	for j := 0; j < nFeat; j++ {
		for i := 0; i < n; i++ {
			col[i] = x[i][j]
		}
		m, s := stats.MeanStd(col)
		if s == 0 || math.IsNaN(s) {
			s = 1
		}
		r.featMean[j], r.featStd[j] = m, s
	}
	ymean := stats.Mean(y)
	z := mat.NewDense(n, nFeat)
	yc := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < nFeat; j++ {
			z.Set(i, j, (x[i][j]-r.featMean[j])/r.featStd[j])
		}
		yc[i] = y[i] - ymean
	}
	g := mat.Gram(z).AddDiag(r.Lambda + 1e-10)
	zt := z.T()
	zty, err := zt.MulVec(yc)
	if err != nil {
		return err
	}
	coef, err := mat.CholeskySolve(g, zty)
	if err != nil {
		coef, err = mat.Solve(g, zty)
		if err != nil {
			return fmt.Errorf("regress: ridge solve: %w", err)
		}
	}
	r.coef = coef
	r.intercept = ymean
	r.fitted = true
	r.resid = residualStd(r.Predict, x, y)
	return nil
}

// Predict returns the ridge mean for one feature vector. An untrained model
// predicts 0; a feature-count mismatch uses only the overlapping prefix, so
// degraded inputs (Table 2) degrade gracefully instead of panicking.
func (r *Ridge) Predict(x []float64) float64 {
	if !r.fitted {
		return 0
	}
	p := r.intercept
	n := len(r.coef)
	if len(x) < n {
		n = len(x)
	}
	for j := 0; j < n; j++ {
		p += r.coef[j] * (x[j] - r.featMean[j]) / r.featStd[j]
	}
	return p
}

// LinearTerms exposes the fitted standardized linear form,
//
//	ŷ = intercept + Σ_j coef[j]·(x[j]−mean[j])/std[j],
//
// so the batched sampling kernel can apply the model slice-at-a-time over
// whole chain vectors instead of calling Predict per sample. ok is false
// until Fit has run. The returned slices are the model's own backing arrays:
// callers must treat them as read-only.
func (r *Ridge) LinearTerms() (coef, mean, std []float64, intercept float64, ok bool) {
	return r.coef, r.featMean, r.featStd, r.intercept, r.fitted
}

// FitColumns trains the ridge from feature columns (cols[j][i] is feature j
// at time slice i), bit-identical to Fit on the row-major transpose: the
// standardization, the Gram/X'y accumulations (via the blocked column kernels
// in internal/mat), the solve, and the residual pass all execute the same
// floating-point operations in the same order. It exists for the training
// hot path, which holds telemetry windows as columns and previously paid an
// n×B row-matrix materialization plus a transpose per factor.
func (r *Ridge) FitColumns(cols [][]float64, y []float64) error {
	n := len(y)
	if n == 0 {
		return ErrNoData
	}
	nFeat := len(cols)
	for _, c := range cols {
		if len(c) != n {
			return ErrNoData
		}
	}
	if nFeat == 0 {
		r.intercept = stats.Mean(y)
		r.coef = nil
		r.featMean, r.featStd = nil, nil
		r.resid = stats.StdDev(y)
		r.fitted = true
		return nil
	}
	r.featMean = make([]float64, nFeat)
	r.featStd = make([]float64, nFeat)
	for j, c := range cols {
		m, s := stats.MeanStd(c)
		if s == 0 || math.IsNaN(s) {
			s = 1
		}
		r.featMean[j], r.featStd[j] = m, s
	}
	ymean := stats.Mean(y)
	zcols := make([][]float64, nFeat)
	for j, c := range cols {
		zc := make([]float64, n)
		m, s := r.featMean[j], r.featStd[j]
		for i, v := range c {
			zc[i] = (v - m) / s
		}
		zcols[j] = zc
	}
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - ymean
	}
	g := mat.GramCols(zcols).AddDiag(r.Lambda + 1e-10)
	zty := mat.MulVecCols(zcols, yc)
	coef, err := mat.CholeskySolve(g, zty)
	if err != nil {
		coef, err = mat.Solve(g, zty)
		if err != nil {
			return fmt.Errorf("regress: ridge solve: %w", err)
		}
	}
	r.coef = coef
	r.intercept = ymean
	r.fitted = true
	// Residuals, matching residualStd(r.Predict, rows, y) bit for bit: the
	// per-row prediction accumulates coefficient terms in feature order,
	// exactly like Predict on the assembled row.
	ss := 0.0
	for i := 0; i < n; i++ {
		p := r.intercept
		for j := 0; j < nFeat; j++ {
			p += r.coef[j] * (cols[j][i] - r.featMean[j]) / r.featStd[j]
		}
		d := y[i] - p
		ss += d * d
	}
	s := math.Sqrt(ss / float64(n))
	if math.IsNaN(s) || math.IsInf(s, 0) {
		s = 0
	}
	r.resid = s
	return nil
}

// ResidualStd returns the training residual standard deviation.
func (r *Ridge) ResidualStd() float64 { return r.resid }

// Coefficients returns the learned weights on standardized features.
func (r *Ridge) Coefficients() []float64 {
	out := make([]float64, len(r.coef))
	copy(out, r.coef)
	return out
}

// ---------------------------------------------------------------------------
// Gaussian mixture model

// GMM models the joint density of (features, target) as a mixture of
// axis-aligned Gaussians fitted by EM, and predicts the target by the
// mixture-weighted conditional mean.
type GMM struct {
	// K is the number of mixture components.
	K int
	// Iters is the number of EM iterations.
	Iters int
	// Seed makes component initialization deterministic.
	Seed int64

	dim     int // features + 1 (target is the last dimension)
	weights []float64
	means   [][]float64
	vars    [][]float64
	resid   float64
	fitted  bool
	ymean   float64
}

// NewGMM returns an untrained GMM with k components.
func NewGMM(k int, seed int64) *GMM { return &GMM{K: k, Iters: 30, Seed: seed} }

// GMMTrainer returns a Trainer producing k-component GMMs.
func GMMTrainer(k int, seed int64) Trainer {
	return func() Predictor { return NewGMM(k, seed) }
}

// Fit runs EM on the joint (x, y) sample.
func (g *GMM) Fit(x [][]float64, y []float64) error {
	nFeat, err := checkShape(x, y)
	if err != nil {
		return err
	}
	n := len(y)
	g.dim = nFeat + 1
	k := g.K
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, g.dim)
		copy(p, x[i])
		p[nFeat] = y[i]
		pts[i] = p
	}
	g.ymean = stats.Mean(y)
	rng := rand.New(rand.NewSource(g.Seed))
	// Initialize means at random points, variances at global variance.
	gvar := make([]float64, g.dim)
	for d := 0; d < g.dim; d++ {
		col := make([]float64, n)
		for i := range pts {
			col[i] = pts[i][d]
		}
		gvar[d] = stats.Variance(col)
		if gvar[d] < 1e-6 {
			gvar[d] = 1e-6
		}
	}
	g.weights = make([]float64, k)
	g.means = make([][]float64, k)
	g.vars = make([][]float64, k)
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		g.weights[c] = 1 / float64(k)
		g.means[c] = append([]float64(nil), pts[perm[c]]...)
		g.vars[c] = append([]float64(nil), gvar...)
	}
	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	for iter := 0; iter < g.Iters; iter++ {
		// E step: responsibilities via log densities.
		for i, p := range pts {
			maxLog := math.Inf(-1)
			logs := resp[i]
			for c := 0; c < k; c++ {
				logs[c] = math.Log(g.weights[c]+1e-300) + g.logGauss(c, p)
				if logs[c] > maxLog {
					maxLog = logs[c]
				}
			}
			sum := 0.0
			for c := 0; c < k; c++ {
				logs[c] = math.Exp(logs[c] - maxLog)
				sum += logs[c]
			}
			for c := 0; c < k; c++ {
				logs[c] /= sum
			}
		}
		// M step.
		for c := 0; c < k; c++ {
			wsum := 0.0
			mean := make([]float64, g.dim)
			for i, p := range pts {
				w := resp[i][c]
				wsum += w
				for d := 0; d < g.dim; d++ {
					mean[d] += w * p[d]
				}
			}
			if wsum < 1e-9 {
				continue // dead component; keep previous parameters
			}
			for d := 0; d < g.dim; d++ {
				mean[d] /= wsum
			}
			vr := make([]float64, g.dim)
			for i, p := range pts {
				w := resp[i][c]
				for d := 0; d < g.dim; d++ {
					dv := p[d] - mean[d]
					vr[d] += w * dv * dv
				}
			}
			for d := 0; d < g.dim; d++ {
				vr[d] = vr[d]/wsum + 1e-6
			}
			g.weights[c] = wsum / float64(n)
			g.means[c] = mean
			g.vars[c] = vr
		}
	}
	g.fitted = true
	g.resid = residualStd(g.Predict, x, y)
	return nil
}

func (g *GMM) logGauss(c int, p []float64) float64 {
	s := 0.0
	for d := 0; d < g.dim; d++ {
		dv := p[d] - g.means[c][d]
		s += -0.5*dv*dv/g.vars[c][d] - 0.5*math.Log(2*math.Pi*g.vars[c][d])
	}
	return s
}

// Predict returns E[y | x] under the mixture: the responsibility-weighted
// component means of the target dimension, with responsibilities computed
// from the feature dimensions only.
func (g *GMM) Predict(x []float64) float64 {
	if !g.fitted {
		return 0
	}
	nFeat := g.dim - 1
	k := len(g.weights)
	logs := make([]float64, k)
	maxLog := math.Inf(-1)
	for c := 0; c < k; c++ {
		s := math.Log(g.weights[c] + 1e-300)
		for d := 0; d < nFeat && d < len(x); d++ {
			dv := x[d] - g.means[c][d]
			s += -0.5*dv*dv/g.vars[c][d] - 0.5*math.Log(2*math.Pi*g.vars[c][d])
		}
		logs[c] = s
		if s > maxLog {
			maxLog = s
		}
	}
	sum, pred := 0.0, 0.0
	for c := 0; c < k; c++ {
		w := math.Exp(logs[c] - maxLog)
		sum += w
		pred += w * g.means[c][nFeat]
	}
	if sum == 0 {
		return g.ymean
	}
	return pred / sum
}

// ResidualStd returns the training residual standard deviation.
func (g *GMM) ResidualStd() float64 { return g.resid }

// ---------------------------------------------------------------------------
// Neural network

// MLP is a one-hidden-layer tanh network trained by mini-batch SGD with
// momentum. The paper's comparison used networks of up to 3 layers with 5
// neurons; with a few hundred training points these overfit or underfit,
// which is exactly the effect Fig 8a demonstrates.
type MLP struct {
	// Hidden is the hidden-layer width.
	Hidden int
	// Epochs is the number of passes over the training data.
	Epochs int
	// LR is the SGD learning rate.
	LR float64
	// Seed makes weight initialization deterministic.
	Seed int64

	w1        [][]float64 // hidden x in
	b1        []float64
	w2        []float64 // hidden
	b2        float64
	featMean  []float64
	featStd   []float64
	yMean     float64
	yStd      float64
	resid     float64
	fitted    bool
	nFeatures int
}

// NewMLP returns an untrained network with the given hidden width.
func NewMLP(hidden int, seed int64) *MLP {
	return &MLP{Hidden: hidden, Epochs: 60, LR: 0.02, Seed: seed}
}

// MLPTrainer returns a Trainer producing MLPs with the given hidden width.
func MLPTrainer(hidden int, seed int64) Trainer {
	return func() Predictor { return NewMLP(hidden, seed) }
}

// Fit trains the network on standardized inputs and target.
func (m *MLP) Fit(x [][]float64, y []float64) error {
	nFeat, err := checkShape(x, y)
	if err != nil {
		return err
	}
	n := len(y)
	m.nFeatures = nFeat
	m.featMean = make([]float64, nFeat)
	m.featStd = make([]float64, nFeat)
	col := make([]float64, n)
	for j := 0; j < nFeat; j++ {
		for i := 0; i < n; i++ {
			col[i] = x[i][j]
		}
		mu, s := stats.MeanStd(col)
		if s == 0 {
			s = 1
		}
		m.featMean[j], m.featStd[j] = mu, s
	}
	m.yMean, m.yStd = stats.MeanStd(y)
	if m.yStd == 0 {
		m.yStd = 1
	}
	h := m.Hidden
	if h < 1 {
		h = 1
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.w1 = make([][]float64, h)
	m.b1 = make([]float64, h)
	m.w2 = make([]float64, h)
	scale := 1 / math.Sqrt(float64(nFeat+1))
	for i := 0; i < h; i++ {
		m.w1[i] = make([]float64, nFeat)
		for j := range m.w1[i] {
			m.w1[i][j] = rng.NormFloat64() * scale
		}
		m.w2[i] = rng.NormFloat64() * scale
	}
	zx := make([][]float64, n)
	zy := make([]float64, n)
	for i := 0; i < n; i++ {
		zx[i] = make([]float64, nFeat)
		for j := 0; j < nFeat; j++ {
			zx[i][j] = (x[i][j] - m.featMean[j]) / m.featStd[j]
		}
		zy[i] = (y[i] - m.yMean) / m.yStd
	}
	hid := make([]float64, h)
	order := rng.Perm(n)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		lr := m.LR / (1 + 0.05*float64(epoch))
		for _, i := range order {
			// Forward.
			for k := 0; k < h; k++ {
				hid[k] = math.Tanh(mat.Dot(m.w1[k], zx[i]) + m.b1[k])
			}
			out := mat.Dot(m.w2, hid) + m.b2
			errv := out - zy[i]
			// Backward.
			for k := 0; k < h; k++ {
				gradW2 := errv * hid[k]
				dHid := errv * m.w2[k] * (1 - hid[k]*hid[k])
				m.w2[k] -= lr * gradW2
				for j := 0; j < nFeat; j++ {
					m.w1[k][j] -= lr * dHid * zx[i][j]
				}
				m.b1[k] -= lr * dHid
			}
			m.b2 -= lr * errv
		}
	}
	m.fitted = true
	m.resid = residualStd(m.Predict, x, y)
	return nil
}

// Predict returns the network output for one feature vector.
func (m *MLP) Predict(x []float64) float64 {
	if !m.fitted {
		return 0
	}
	h := len(m.w2)
	out := m.b2
	for k := 0; k < h; k++ {
		s := m.b1[k]
		for j := 0; j < m.nFeatures && j < len(x); j++ {
			s += m.w1[k][j] * (x[j] - m.featMean[j]) / m.featStd[j]
		}
		out += m.w2[k] * math.Tanh(s)
	}
	return out*m.yStd + m.yMean
}

// ResidualStd returns the training residual standard deviation.
func (m *MLP) ResidualStd() float64 { return m.resid }

// ---------------------------------------------------------------------------
// Linear SVR

// SVR is a linear epsilon-insensitive support-vector regressor trained by
// subgradient descent on the primal objective.
type SVR struct {
	// C is the slack penalty.
	C float64
	// Epsilon is the insensitive-tube half-width (in standardized units).
	Epsilon float64
	// Epochs is the number of passes of subgradient descent.
	Epochs int
	// Seed makes the sample order deterministic.
	Seed int64

	w         []float64
	b         float64
	featMean  []float64
	featStd   []float64
	yMean     float64
	yStd      float64
	resid     float64
	fitted    bool
	nFeatures int
}

// NewSVR returns an untrained linear SVR.
func NewSVR(seed int64) *SVR {
	return &SVR{C: 1.0, Epsilon: 0.1, Epochs: 60, Seed: seed}
}

// SVRTrainer returns a Trainer producing linear SVRs.
func SVRTrainer(seed int64) Trainer {
	return func() Predictor { return NewSVR(seed) }
}

// Fit runs subgradient descent on the epsilon-insensitive loss.
func (s *SVR) Fit(x [][]float64, y []float64) error {
	nFeat, err := checkShape(x, y)
	if err != nil {
		return err
	}
	n := len(y)
	s.nFeatures = nFeat
	s.featMean = make([]float64, nFeat)
	s.featStd = make([]float64, nFeat)
	col := make([]float64, n)
	for j := 0; j < nFeat; j++ {
		for i := 0; i < n; i++ {
			col[i] = x[i][j]
		}
		mu, sd := stats.MeanStd(col)
		if sd == 0 {
			sd = 1
		}
		s.featMean[j], s.featStd[j] = mu, sd
	}
	s.yMean, s.yStd = stats.MeanStd(y)
	if s.yStd == 0 {
		s.yStd = 1
	}
	zx := make([][]float64, n)
	zy := make([]float64, n)
	for i := 0; i < n; i++ {
		zx[i] = make([]float64, nFeat)
		for j := 0; j < nFeat; j++ {
			zx[i][j] = (x[i][j] - s.featMean[j]) / s.featStd[j]
		}
		zy[i] = (y[i] - s.yMean) / s.yStd
	}
	s.w = make([]float64, nFeat)
	s.b = 0
	rng := rand.New(rand.NewSource(s.Seed))
	t := 1.0
	for epoch := 0; epoch < s.Epochs; epoch++ {
		for _, i := range rng.Perm(n) {
			lr := 1 / (0.01 * (t + 100))
			t++
			pred := mat.Dot(s.w, zx[i]) + s.b
			diff := pred - zy[i]
			// Regularization shrink.
			for j := range s.w {
				s.w[j] *= 1 - lr*0.001
			}
			if math.Abs(diff) <= s.Epsilon {
				continue
			}
			g := s.C
			if diff < 0 {
				g = -s.C
			}
			for j := range s.w {
				s.w[j] -= lr * g * zx[i][j]
			}
			s.b -= lr * g
		}
	}
	s.fitted = true
	s.resid = residualStd(s.Predict, x, y)
	return nil
}

// Predict returns the SVR output for one feature vector.
func (s *SVR) Predict(x []float64) float64 {
	if !s.fitted {
		return 0
	}
	out := s.b
	for j := 0; j < s.nFeatures && j < len(x); j++ {
		out += s.w[j] * (x[j] - s.featMean[j]) / s.featStd[j]
	}
	return out*s.yStd + s.yMean
}

// ResidualStd returns the training residual standard deviation.
func (s *SVR) ResidualStd() float64 { return s.resid }
