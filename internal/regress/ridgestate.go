// Ridge state export/restore: the incremental trainer solves the ridge system
// from slid sufficient statistics and needs to materialize a fitted Ridge
// without a Fit call, and the persistent factor store needs to serialize a
// fitted Ridge across process restarts. RidgeState is that complete learned
// state; round-tripping through it preserves Predict/ResidualStd/LinearTerms
// bit for bit.
package regress

// RidgeState is the complete learned state of a fitted Ridge model.
type RidgeState struct {
	Lambda    float64   `json:"lambda"`
	Coef      []float64 `json:"coef,omitempty"`
	FeatMean  []float64 `json:"feat_mean,omitempty"`
	FeatStd   []float64 `json:"feat_std,omitempty"`
	Intercept float64   `json:"intercept"`
	Resid     float64   `json:"resid"`
	Fitted    bool      `json:"fitted"`
}

// State exports the model's learned state (slices are copied).
func (r *Ridge) State() RidgeState {
	cp := func(xs []float64) []float64 {
		if xs == nil {
			return nil
		}
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	return RidgeState{
		Lambda:    r.Lambda,
		Coef:      cp(r.coef),
		FeatMean:  cp(r.featMean),
		FeatStd:   cp(r.featStd),
		Intercept: r.intercept,
		Resid:     r.resid,
		Fitted:    r.fitted,
	}
}

// NewRidgeFromState materializes a Ridge from an exported state (slices are
// copied). The result predicts identically to the model that produced the
// state.
func NewRidgeFromState(st RidgeState) *Ridge {
	cp := func(xs []float64) []float64 {
		if xs == nil {
			return nil
		}
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	return &Ridge{
		Lambda:    st.Lambda,
		coef:      cp(st.Coef),
		featMean:  cp(st.FeatMean),
		featStd:   cp(st.FeatStd),
		intercept: st.Intercept,
		resid:     st.Resid,
		fitted:    st.Fitted,
	}
}
