package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeLinear generates y = 2*x0 - 3*x1 + 5 + noise.
func makeLinear(n int, noise float64, seed int64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{r.NormFloat64() * 3, r.NormFloat64() * 2}
		y[i] = 2*x[i][0] - 3*x[i][1] + 5 + r.NormFloat64()*noise
	}
	return x, y
}

func testRecoversLinear(t *testing.T, p Predictor, tol float64) {
	t.Helper()
	x, y := makeLinear(400, 0.05, 11)
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := [][]float64{{1, 1}, {0, 0}, {-2, 3}, {4, -1}}
	for _, q := range probe {
		want := 2*q[0] - 3*q[1] + 5
		got := p.Predict(q)
		if math.Abs(got-want) > tol {
			t.Fatalf("%T predict(%v) = %v, want %v (tol %v)", p, q, got, want, tol)
		}
	}
	if p.ResidualStd() < 0 || p.ResidualStd() > 2*tol+1 {
		t.Fatalf("%T residual std = %v, want nonnegative and < %v", p, p.ResidualStd(), 2*tol+1)
	}
}

func TestRidgeRecoversLinear(t *testing.T) { testRecoversLinear(t, NewRidge(0.1), 0.1) }
func TestOLSRecoversLinear(t *testing.T)   { testRecoversLinear(t, OLSTrainer()(), 0.05) }
func TestMLPApproximatesLinear(t *testing.T) {
	testRecoversLinear(t, NewMLP(8, 1), 1.5)
}
func TestSVRApproximatesLinear(t *testing.T) {
	testRecoversLinear(t, NewSVR(1), 2.0)
}
func TestGMMApproximatesLinear(t *testing.T) {
	// GMM conditional means are piecewise-constant-ish; allow loose tolerance.
	testRecoversLinear(t, NewGMM(6, 1), 4.0)
}

func TestRidgeInterceptOnly(t *testing.T) {
	r := NewRidge(0.1)
	x := [][]float64{{}, {}, {}}
	y := []float64{3, 5, 7}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Predict(nil)-5) > 1e-9 {
		t.Fatalf("intercept-only prediction = %v", r.Predict(nil))
	}
	if r.ResidualStd() <= 0 {
		t.Fatal("residual std of varying target should be positive")
	}
}

func TestRidgeConstantFeature(t *testing.T) {
	// A constant feature must not blow up the standardization.
	x := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{2, 4, 6, 8}
	r := NewRidge(0.01)
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Predict([]float64{2.5, 5})-5) > 0.3 {
		t.Fatalf("prediction with constant feature = %v", r.Predict([]float64{2.5, 5}))
	}
}

func TestRidgeShrinks(t *testing.T) {
	x, y := makeLinear(50, 0.5, 3)
	small := NewRidge(0.001)
	large := NewRidge(1000)
	if err := small.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := large.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ns, nl := 0.0, 0.0
	for i := range small.Coefficients() {
		ns += math.Abs(small.Coefficients()[i])
		nl += math.Abs(large.Coefficients()[i])
	}
	if nl >= ns {
		t.Fatalf("large lambda should shrink coefficients: %v vs %v", nl, ns)
	}
}

func TestFitErrors(t *testing.T) {
	models := []Predictor{NewRidge(0.1), NewGMM(2, 1), NewMLP(4, 1), NewSVR(1)}
	for _, m := range models {
		if err := m.Fit(nil, nil); err == nil {
			t.Fatalf("%T: empty fit should error", m)
		}
		if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
			t.Fatalf("%T: length mismatch should error", m)
		}
		if err := m.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
			t.Fatalf("%T: ragged rows should error", m)
		}
	}
}

func TestUntrainedPredictIsZero(t *testing.T) {
	models := []Predictor{NewRidge(0.1), NewGMM(2, 1), NewMLP(4, 1), NewSVR(1)}
	for _, m := range models {
		if m.Predict([]float64{1, 2}) != 0 {
			t.Fatalf("%T: untrained predict should be 0", m)
		}
		if m.ResidualStd() != 0 {
			t.Fatalf("%T: untrained residual std should be 0", m)
		}
	}
}

func TestPredictShortFeatureVector(t *testing.T) {
	// Degraded data (Table 2) can hand a shorter feature vector; models must
	// not panic and should use the overlap.
	x, y := makeLinear(100, 0.1, 5)
	models := []Predictor{NewRidge(0.1), NewGMM(3, 1), NewMLP(4, 1), NewSVR(1)}
	for _, m := range models {
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		got := m.Predict([]float64{1}) // only one of two features
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%T: short-vector predict = %v", m, got)
		}
	}
}

func TestGMMSeparatesClusters(t *testing.T) {
	// Two clusters with different target levels: GMM should track them while
	// a straight line through both would be off at the extremes.
	r := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			x = append(x, []float64{r.NormFloat64()*0.2 - 3})
			y = append(y, 10+r.NormFloat64()*0.1)
		} else {
			x = append(x, []float64{r.NormFloat64()*0.2 + 3})
			y = append(y, -10+r.NormFloat64()*0.1)
		}
	}
	g := NewGMM(2, 1)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Predict([]float64{-3})-10) > 1 {
		t.Fatalf("cluster 1 prediction = %v", g.Predict([]float64{-3}))
	}
	if math.Abs(g.Predict([]float64{3})+10) > 1 {
		t.Fatalf("cluster 2 prediction = %v", g.Predict([]float64{3}))
	}
}

func TestTrainersProduceFreshModels(t *testing.T) {
	for _, tr := range []Trainer{RidgeTrainer(0.1), OLSTrainer(), GMMTrainer(2, 1), MLPTrainer(4, 1), SVRTrainer(1)} {
		a, b := tr(), tr()
		if a == b {
			t.Fatal("Trainer must return distinct instances")
		}
		x, y := makeLinear(30, 0.1, 9)
		if err := a.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		// b stays untrained.
		if b.Predict([]float64{1, 1}) != 0 {
			t.Fatal("second instance should be untrained")
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	x, y := makeLinear(100, 0.3, 4)
	a, b := NewMLP(6, 42), NewMLP(6, 42)
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]float64{{0, 0}, {1, -1}} {
		if a.Predict(q) != b.Predict(q) {
			t.Fatal("same seed should give identical MLPs")
		}
	}
}

// Property: ridge predictions are finite for any finite inputs.
func TestRidgePredictFiniteProperty(t *testing.T) {
	x, y := makeLinear(60, 0.2, 8)
	r := NewRidge(0.5)
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		// Clamp to a physically plausible metric range; raw float64 extremes
		// overflow any linear model by construction.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		p := r.Predict([]float64{a, b})
		return !math.IsNaN(p) && !math.IsInf(p, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResidualStdReflectsNoise(t *testing.T) {
	quietX, quietY := makeLinear(300, 0.1, 6)
	noisyX, noisyY := makeLinear(300, 2.0, 6)
	q, n := NewRidge(0.1), NewRidge(0.1)
	if err := q.Fit(quietX, quietY); err != nil {
		t.Fatal(err)
	}
	if err := n.Fit(noisyX, noisyY); err != nil {
		t.Fatal(err)
	}
	if q.ResidualStd() >= n.ResidualStd() {
		t.Fatalf("noisier data should have larger residual std: %v vs %v", q.ResidualStd(), n.ResidualStd())
	}
}
