package regress

import (
	"math"
	"math/rand"
	"testing"
)

// fitPair trains one Ridge via row-major Fit and one via FitColumns on the
// same data and returns both.
func fitPair(t *testing.T, lambda float64, cols [][]float64, y []float64) (*Ridge, *Ridge) {
	t.Helper()
	n := len(y)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(cols))
		for j := range cols {
			row[j] = cols[j][i]
		}
		rows[i] = row
	}
	byRows := NewRidge(lambda)
	if err := byRows.Fit(rows, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	byCols := NewRidge(lambda)
	if err := byCols.FitColumns(cols, y); err != nil {
		t.Fatalf("FitColumns: %v", err)
	}
	return byRows, byCols
}

// assertSameRidge requires the two fits to be bit-identical: coefficients,
// residual std, and predictions on probe vectors.
func assertSameRidge(t *testing.T, label string, a, b *Ridge, probes [][]float64) {
	t.Helper()
	ca, cb := a.Coefficients(), b.Coefficients()
	if len(ca) != len(cb) {
		t.Fatalf("%s: %d coefficients vs %d", label, len(ca), len(cb))
	}
	for j := range ca {
		if math.Float64bits(ca[j]) != math.Float64bits(cb[j]) {
			t.Fatalf("%s: coef[%d] %v != %v", label, j, cb[j], ca[j])
		}
	}
	if math.Float64bits(a.ResidualStd()) != math.Float64bits(b.ResidualStd()) {
		t.Fatalf("%s: resid %v != %v", label, b.ResidualStd(), a.ResidualStd())
	}
	for _, p := range probes {
		if math.Float64bits(a.Predict(p)) != math.Float64bits(b.Predict(p)) {
			t.Fatalf("%s: Predict(%v) %v != %v", label, p, b.Predict(p), a.Predict(p))
		}
	}
}

// TestFitColumnsBitIdentical is the equivalence the parallel trainer depends
// on: fitting from telemetry columns must reproduce the row-major fit exactly,
// across sizes, penalties and feature counts.
func TestFitColumnsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 10, 255, 256, 257, 400} {
		for _, p := range []int{1, 3, 10} {
			for _, lambda := range []float64{0, 1, 1e-8} {
				cols := make([][]float64, p)
				for j := range cols {
					cols[j] = make([]float64, n)
					for i := range cols[j] {
						cols[j][i] = rng.NormFloat64() * float64(1+j)
					}
				}
				y := make([]float64, n)
				for i := range y {
					y[i] = rng.NormFloat64()
					for j := range cols {
						y[i] += 0.5 * cols[j][i]
					}
				}
				probes := [][]float64{make([]float64, p), cols0Row(cols, 0)}
				a, b := fitPair(t, lambda, cols, y)
				assertSameRidge(t, "random", a, b, probes)
			}
		}
	}
}

// cols0Row assembles row i of a column-major design matrix.
func cols0Row(cols [][]float64, i int) []float64 {
	row := make([]float64, len(cols))
	for j := range cols {
		row[j] = cols[j][i]
	}
	return row
}

// TestFitColumnsZeroVariance pins the degenerate paths: a constant feature
// (std forced to 1) and a zero-feature fit (intercept-only model).
func TestFitColumnsZeroVariance(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5, 6}
	constant := []float64{7, 7, 7, 7, 7, 7}
	varying := []float64{1, 2, 1, 2, 1, 2}
	a, b := fitPair(t, 1, [][]float64{constant, varying}, y)
	assertSameRidge(t, "constant-col", a, b, [][]float64{{7, 1}, {0, 0}})

	// Empty feature set: both paths fall back to the intercept-only model.
	byRows := NewRidge(1)
	if err := byRows.Fit([][]float64{{}, {}, {}}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	byCols := NewRidge(1)
	if err := byCols.FitColumns(nil, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	assertSameRidge(t, "intercept-only", byRows, byCols, [][]float64{nil, {5}})
}

// TestFitColumnsErrors pins the validation: empty targets and ragged columns
// are rejected.
func TestFitColumnsErrors(t *testing.T) {
	r := NewRidge(1)
	if err := r.FitColumns(nil, nil); err == nil {
		t.Error("empty target accepted")
	}
	if err := r.FitColumns([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged columns accepted")
	}
}
