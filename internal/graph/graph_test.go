package graph

import (
	"fmt"
	"testing"

	"murphy/internal/telemetry"
)

// buildDB creates entities a..e and associates them per the given pairs.
func buildDB(t *testing.T, n int, bidir [][2]string, directed [][2]string) *telemetry.DB {
	t.Helper()
	db := telemetry.NewDB(60)
	for i := 0; i < n; i++ {
		id := telemetry.EntityID(fmt.Sprintf("n%d", i))
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeVM, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range bidir {
		if err := db.Associate(telemetry.EntityID(p[0]), telemetry.EntityID(p[1]), telemetry.Bidirectional); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range directed {
		if err := db.Associate(telemetry.EntityID(p[0]), telemetry.EntityID(p[1]), telemetry.Directed); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestBuildExpandsFullComponent(t *testing.T) {
	// Chain n0 - n1 - n2 - n3, n4 isolated.
	db := buildDB(t, 5, [][2]string{{"n0", "n1"}, {"n1", "n2"}, {"n2", "n3"}}, nil)
	g, err := Build(db, []telemetry.EntityID{"n0"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if g.Contains("n4") {
		t.Fatal("isolated node must not be included")
	}
	if g.NumEdges() != 6 { // 3 bidirectional pairs
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
}

func TestBuildHopLimit(t *testing.T) {
	db := buildDB(t, 5, [][2]string{{"n0", "n1"}, {"n1", "n2"}, {"n2", "n3"}, {"n3", "n4"}}, nil)
	g, err := Build(db, []telemetry.EntityID{"n0"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 { // n0, n1, n2
		t.Fatalf("Len = %d, want 3", g.Len())
	}
}

func TestBuildErrors(t *testing.T) {
	db := buildDB(t, 2, nil, nil)
	if _, err := Build(db, nil, -1); err == nil {
		t.Fatal("empty seeds should error")
	}
	if _, err := Build(db, []telemetry.EntityID{"ghost"}, -1); err == nil {
		t.Fatal("unknown seed should error")
	}
}

func TestBuildMultipleSeeds(t *testing.T) {
	db := buildDB(t, 4, [][2]string{{"n0", "n1"}, {"n2", "n3"}}, nil)
	g, err := Build(db, []telemetry.EntityID{"n0", "n2", "n0"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("two components from two seeds: Len = %d", g.Len())
	}
}

func TestInOutNeighbors(t *testing.T) {
	db := buildDB(t, 3, nil, [][2]string{{"n0", "n1"}, {"n2", "n1"}})
	g, err := Build(db, []telemetry.EntityID{"n0", "n1", "n2"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := g.Index("n1")
	if len(g.In(i1)) != 2 || len(g.Out(i1)) != 0 {
		t.Fatalf("n1 in/out = %v/%v", g.In(i1), g.Out(i1))
	}
	ids := g.InIDs("n1")
	if len(ids) != 2 {
		t.Fatalf("InIDs = %v", ids)
	}
	if g.InIDs("ghost") != nil {
		t.Fatal("unknown entity InIDs should be nil")
	}
}

func TestCycleCounting(t *testing.T) {
	// Bidirectional pair = one 2-cycle; triangle of directed edges = one 3-cycle.
	db := buildDB(t, 5, [][2]string{{"n0", "n1"}}, [][2]string{{"n2", "n3"}, {"n3", "n4"}, {"n4", "n2"}})
	g, err := Build(db, []telemetry.EntityID{"n0", "n1", "n2", "n3", "n4"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CountCycles2(); got != 1 {
		t.Fatalf("CountCycles2 = %d, want 1", got)
	}
	if got := g.CountCycles3(); got != 1 {
		t.Fatalf("CountCycles3 = %d, want 1", got)
	}
}

func TestCycles3FromBidirectionalTriangle(t *testing.T) {
	// A bidirectional triangle contains two directed 3-cycles (one per
	// orientation).
	db := buildDB(t, 3, [][2]string{{"n0", "n1"}, {"n1", "n2"}, {"n0", "n2"}}, nil)
	g, _ := Build(db, []telemetry.EntityID{"n0"}, -1)
	if got := g.CountCycles3(); got != 2 {
		t.Fatalf("CountCycles3 = %d, want 2", got)
	}
	if got := g.CountCycles2(); got != 3 {
		t.Fatalf("CountCycles2 = %d, want 3", got)
	}
}

func TestInCycleAndIsDAG(t *testing.T) {
	db := buildDB(t, 4, nil, [][2]string{{"n0", "n1"}, {"n1", "n2"}, {"n2", "n0"}, {"n2", "n3"}})
	g, _ := Build(db, []telemetry.EntityID{"n0", "n3"}, -1)
	if g.IsDAG() {
		t.Fatal("graph with a 3-cycle is not a DAG")
	}
	i0, _ := g.Index("n0")
	i3, _ := g.Index("n3")
	if !g.InCycle(i0) {
		t.Fatal("n0 is on a cycle")
	}
	if g.InCycle(i3) {
		t.Fatal("n3 is not on a cycle")
	}
	dag := buildDB(t, 3, nil, [][2]string{{"n0", "n1"}, {"n1", "n2"}})
	gd, _ := Build(dag, []telemetry.EntityID{"n0"}, -1)
	if !gd.IsDAG() {
		t.Fatal("chain should be a DAG")
	}
}

func TestShortestPathSubgraph(t *testing.T) {
	// Diamond: n0→n1→n3, n0→n2→n3, plus long detour n0→n4→n5→n3.
	db := buildDB(t, 6, nil, [][2]string{
		{"n0", "n1"}, {"n1", "n3"}, {"n0", "n2"}, {"n2", "n3"},
		{"n0", "n4"}, {"n4", "n5"}, {"n5", "n3"},
	})
	g, _ := Build(db, []telemetry.EntityID{"n0"}, -1)
	sp := g.ShortestPathSubgraph("n0", "n3")
	if len(sp) != 4 {
		t.Fatalf("subgraph = %v, want n0,n1,n2,n3", sp)
	}
	if sp[0] != "n0" || sp[len(sp)-1] != "n3" {
		t.Fatalf("order wrong: %v", sp)
	}
	for _, id := range sp {
		if id == "n4" || id == "n5" {
			t.Fatal("detour nodes must be excluded")
		}
	}
}

func TestShortestPathSubgraphEdgeCases(t *testing.T) {
	db := buildDB(t, 3, nil, [][2]string{{"n0", "n1"}})
	g, _ := Build(db, []telemetry.EntityID{"n0", "n1", "n2"}, -1)
	if sp := g.ShortestPathSubgraph("n1", "n0"); sp != nil {
		t.Fatalf("unreachable should be nil, got %v", sp)
	}
	sp := g.ShortestPathSubgraph("n0", "n0")
	if len(sp) != 1 || sp[0] != "n0" {
		t.Fatalf("self path = %v", sp)
	}
	if g.ShortestPathSubgraph("ghost", "n0") != nil {
		t.Fatal("unknown source should be nil")
	}
	if g.ShortestPathSubgraph("n0", "ghost") != nil {
		t.Fatal("unknown target should be nil")
	}
}

func TestDistance(t *testing.T) {
	db := buildDB(t, 3, nil, [][2]string{{"n0", "n1"}, {"n1", "n2"}})
	g, _ := Build(db, []telemetry.EntityID{"n0"}, -1)
	if g.Distance("n0", "n2") != 2 {
		t.Fatalf("Distance = %d", g.Distance("n0", "n2"))
	}
	if g.Distance("n2", "n0") != -1 {
		t.Fatal("reverse distance should be -1")
	}
	if g.Distance("ghost", "n0") != -1 || g.Distance("n0", "ghost") != -1 {
		t.Fatal("unknown endpoints should be -1")
	}
}

func TestPrunedCandidates(t *testing.T) {
	// Star around n0 with a second ring; only some nodes "anomalous".
	db := buildDB(t, 6, [][2]string{
		{"n0", "n1"}, {"n0", "n2"}, {"n1", "n3"}, {"n2", "n4"}, {"n4", "n5"},
	}, nil)
	g, _ := Build(db, []telemetry.EntityID{"n0"}, -1)
	anomalous := func(id telemetry.EntityID) bool {
		return id == "n2" || id == "n4" || id == "n3"
	}
	got := g.PrunedCandidates("n0", anomalous, 0)
	// n2 anomalous -> expanded -> n4 anomalous -> expanded -> n5 not.
	// n1 not anomalous -> n3 never reached even though anomalous.
	want := map[telemetry.EntityID]bool{"n2": true, "n4": true}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected candidate %s", id)
		}
	}
	// Cap.
	got = g.PrunedCandidates("n0", anomalous, 1)
	if len(got) != 1 {
		t.Fatalf("capped candidates = %v", got)
	}
	if g.PrunedCandidates("ghost", anomalous, 0) != nil {
		t.Fatal("unknown symptom should be nil")
	}
}

func TestPrunedCandidatesFollowsBothDirections(t *testing.T) {
	// Directed edge n1→n0 only; pruning BFS from n0 must still reach n1,
	// because influence toward the symptom flows along in-edges.
	db := buildDB(t, 2, nil, [][2]string{{"n1", "n0"}})
	g, _ := Build(db, []telemetry.EntityID{"n0", "n1"}, -1)
	got := g.PrunedCandidates("n0", func(telemetry.EntityID) bool { return true }, 0)
	if len(got) != 1 || got[0] != "n1" {
		t.Fatalf("candidates = %v", got)
	}
}

func TestReverseDistances(t *testing.T) {
	// Directed chain n0 -> n1 -> n2, plus n3 hanging off n2 (n2 -> n3).
	db := buildDB(t, 4, nil, [][2]string{{"n0", "n1"}, {"n1", "n2"}, {"n2", "n3"}})
	g, err := Build(db, []telemetry.EntityID{"n0"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSubgraphCache(g)
	toN2 := c.ReverseDistances("n2")
	want := map[telemetry.EntityID]int{"n0": 2, "n1": 1, "n2": 0, "n3": -1}
	for id, d := range want {
		i, ok := g.Index(id)
		if !ok {
			t.Fatalf("%s missing from graph", id)
		}
		if toN2[i] != d {
			t.Errorf("dist(%s -> n2) = %d, want %d", id, toN2[i], d)
		}
	}
	// The memoized field is shared with ShortestPathSubgraph's reverse BFS.
	if again := c.ReverseDistances("n2"); &again[0] != &toN2[0] {
		t.Error("second call did not reuse the memoized distance field")
	}
	if c.ReverseDistances("ghost") != nil {
		t.Error("unknown destination should return nil")
	}
}
