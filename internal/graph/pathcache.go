package graph

import (
	"sync"

	"murphy/internal/telemetry"
)

// SubgraphCache memoizes ShortestPathSubgraph results for one (immutable)
// graph. A diagnosis evaluates every candidate against the same symptom, so
// the reverse BFS from the symptom is computed once and shared, and the
// per-(candidate, symptom) subgraph is computed at most once even when the
// same model serves many Diagnose calls.
//
// The cache is safe for concurrent use (DiagnoseParallel workers share one).
// Returned slices are shared between callers and the cache: treat them as
// read-only.
type SubgraphCache struct {
	g  *Graph
	mu sync.RWMutex
	// rev[di] is the reverse-BFS distance field toward node di.
	rev map[int][]int
	// paths[(ai,di)] is the memoized subgraph; nil-but-present means
	// "unreachable", so negative results are cached too.
	paths map[[2]int][]telemetry.EntityID
	// hook, when set, observes every memoization lookup (true on hit).
	hook func(hit bool)
}

// SetHook installs a lookup observer, called with true on every memoization
// hit and false on every miss. Set it before the cache is shared between
// goroutines; the hook itself must be safe for concurrent use.
func (c *SubgraphCache) SetHook(hook func(hit bool)) { c.hook = hook }

// NewSubgraphCache returns an empty cache over g. The graph must not be
// mutated while the cache is in use (Graph has no mutating methods after
// Build, so this holds by construction).
func NewSubgraphCache(g *Graph) *SubgraphCache {
	return &SubgraphCache{
		g:     g,
		rev:   make(map[int][]int),
		paths: make(map[[2]int][]telemetry.EntityID),
	}
}

// ShortestPathSubgraph is Graph.ShortestPathSubgraph with memoization keyed
// by (candidate, symptom).
func (c *SubgraphCache) ShortestPathSubgraph(a, d telemetry.EntityID) []telemetry.EntityID {
	ai, ok := c.g.index[a]
	if !ok {
		return nil
	}
	di, ok := c.g.index[d]
	if !ok {
		return nil
	}
	if ai == di {
		return []telemetry.EntityID{a}
	}
	key := [2]int{ai, di}
	c.mu.RLock()
	path, hit := c.paths[key]
	toD := c.rev[di]
	c.mu.RUnlock()
	if c.hook != nil {
		c.hook(hit)
	}
	if hit {
		return path
	}
	if toD == nil {
		toD = c.g.bfsDist(di, false)
	}
	path = c.g.shortestPathWith(ai, di, toD)
	c.mu.Lock()
	c.rev[di] = toD
	c.paths[key] = path
	c.mu.Unlock()
	return path
}

// ReverseDistances returns the memoized reverse-BFS distance field toward d:
// out[i] is the forward-edge hop count from node index i to d, or -1 when d
// is unreachable from i. It is the same field ShortestPathSubgraph shares
// across a diagnosis; the topology query surface reuses it to annotate which
// neighborhood nodes can influence the center entity. The slice is shared
// with the cache: treat it as read-only. Returns nil when d is not in the
// graph.
func (c *SubgraphCache) ReverseDistances(d telemetry.EntityID) []int {
	di, ok := c.g.index[d]
	if !ok {
		return nil
	}
	c.mu.RLock()
	toD := c.rev[di]
	c.mu.RUnlock()
	if toD != nil {
		return toD
	}
	toD = c.g.bfsDist(di, false)
	c.mu.Lock()
	c.rev[di] = toD
	c.mu.Unlock()
	return toD
}

// Len returns the number of memoized (candidate, symptom) entries.
func (c *SubgraphCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.paths)
}
