package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"murphy/internal/telemetry"
)

// Edge is one parsed association between two entities: a known caller→callee
// influence direction (Directed) or the loose metadata neighborhood default.
type Edge struct {
	From, To telemetry.EntityID
	Directed bool
}

// ParseEdgeList reads a plain-text edge list, the operator-facing format for
// overlaying known associations onto a telemetry snapshot (cmd/murphy
// -edges). One edge per line:
//
//	frontend-vm -> backend-vm    # a known directed (caller→callee) edge
//	backend-vm -- db-host        # a loose bidirectional association
//
// '#' starts a comment (whole-line or trailing); blank lines are ignored.
// Entity IDs are whitespace-free tokens. Self edges, empty IDs, and any
// other token layout are errors with a 1-based line number.
func ParseEdgeList(r io.Reader) ([]Edge, error) {
	var edges []Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: edge list line %d: want \"FROM -> TO\" or \"FROM -- TO\", got %d token(s)", lineNo, len(fields))
		}
		var directed bool
		switch fields[1] {
		case "->":
			directed = true
		case "--":
			directed = false
		default:
			return nil, fmt.Errorf("graph: edge list line %d: unknown connector %q (want -> or --)", lineNo, fields[1])
		}
		from, to := telemetry.EntityID(fields[0]), telemetry.EntityID(fields[2])
		if from == to {
			return nil, fmt.Errorf("graph: edge list line %d: self edge on %q", lineNo, from)
		}
		edges = append(edges, Edge{From: from, To: to, Directed: directed})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: edge list: %w", err)
	}
	return edges, nil
}

// FormatEdgeList renders edges in the ParseEdgeList format, one per line.
// ParseEdgeList(FormatEdgeList(edges)) round-trips exactly for any edge list
// whose IDs are valid (non-empty, whitespace- and '#'-free).
func FormatEdgeList(w io.Writer, edges []Edge) error {
	for _, e := range edges {
		conn := "--"
		if e.Directed {
			conn = "->"
		}
		if _, err := fmt.Fprintf(w, "%s %s %s\n", e.From, conn, e.To); err != nil {
			return err
		}
	}
	return nil
}

// ApplyEdgeList records the parsed edges as associations in the database.
// Edges naming unknown entities are reported, not silently dropped.
func ApplyEdgeList(db *telemetry.DB, edges []Edge) error {
	for _, e := range edges {
		kind := telemetry.Bidirectional
		if e.Directed {
			kind = telemetry.Directed
		}
		if err := db.Associate(e.From, e.To, kind); err != nil {
			return err
		}
	}
	return nil
}
