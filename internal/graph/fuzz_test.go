package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseEdgeList checks that the edge-list parser never panics, never
// yields malformed edges on accepted input, and round-trips through
// FormatEdgeList exactly. Parsed IDs can never contain whitespace (they are
// whitespace-split tokens) or '#' (a '#' truncates the line before
// tokenization), which is exactly what makes the round trip lossless.
func FuzzParseEdgeList(f *testing.F) {
	f.Add([]byte("a -> b\n"))
	f.Add([]byte("a -- b\nb -> c # trailing comment\n# full comment\n\n"))
	f.Add([]byte("frontend-vm -> backend-vm\nbackend-vm -- db-host"))
	f.Add([]byte("x -> x\n"))           // self edge: must error
	f.Add([]byte("a => b\n"))           // bad connector: must error
	f.Add([]byte("a -> b c\n"))         // token count: must error
	f.Add([]byte("\xff\xfe -> \x00\n")) // non-UTF8 IDs are tolerated
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := ParseEdgeList(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for i, e := range edges {
			if e.From == e.To {
				t.Fatalf("edge %d: self edge %q survived parsing", i, e.From)
			}
			for _, id := range []string{string(e.From), string(e.To)} {
				if id == "" || strings.ContainsAny(id, " \t\n\v\f\r#") {
					t.Fatalf("edge %d: malformed ID %q", i, id)
				}
			}
		}
		var buf bytes.Buffer
		if err := FormatEdgeList(&buf, edges); err != nil {
			t.Fatalf("format: %v", err)
		}
		again, err := ParseEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparse of formatted output failed: %v\n%s", err, buf.String())
		}
		if len(edges) != len(again) || (len(edges) > 0 && !reflect.DeepEqual(edges, again)) {
			t.Fatalf("round trip changed edges:\n got %v\nwant %v", again, edges)
		}
	})
}
