// Package graph implements Murphy's relationship graph (§4.1): the directed
// potential-influence graph grown by BFS from a seed set of affected
// entities, plus the graph algorithms the inference engine needs — shortest-
// path subgraphs between candidate and symptom, cycle statistics (§2.2), and
// the threshold-pruned candidate search space (§4.2).
package graph

import (
	"fmt"
	"sort"

	"murphy/internal/telemetry"
)

// Graph is a directed relationship graph over a subset of the entities in a
// monitoring database. Node indices are stable and dense.
type Graph struct {
	ids   []telemetry.EntityID
	index map[telemetry.EntityID]int
	out   [][]int
	in    [][]int
}

// Build grows the relationship graph from the seed set by repeated
// neighborhood expansion (S = neighbors(S)), up to maxHops levels; maxHops<0
// means no limit (expand to the reachable component). The edges of the
// resulting graph are exactly the database's influence edges restricted to
// the selected entities.
func Build(db *telemetry.DB, seeds []telemetry.EntityID, maxHops int) (*Graph, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("graph: empty seed set")
	}
	g := &Graph{index: make(map[telemetry.EntityID]int)}
	visited := make(map[telemetry.EntityID]bool)
	var frontier []telemetry.EntityID
	for _, s := range seeds {
		if !db.HasEntity(s) {
			return nil, fmt.Errorf("graph: seed %q not in database", s)
		}
		if !visited[s] {
			visited[s] = true
			frontier = append(frontier, s)
			g.addNode(s)
		}
	}
	for hop := 0; maxHops < 0 || hop < maxHops; hop++ {
		var next []telemetry.EntityID
		for _, u := range frontier {
			for _, v := range db.Neighbors(u) {
				if !visited[v] {
					visited[v] = true
					g.addNode(v)
					next = append(next, v)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	// Materialize edges among selected nodes.
	g.out = make([][]int, len(g.ids))
	g.in = make([][]int, len(g.ids))
	for ui, u := range g.ids {
		for _, v := range db.OutNeighbors(u) {
			if vi, ok := g.index[v]; ok {
				g.out[ui] = append(g.out[ui], vi)
				g.in[vi] = append(g.in[vi], ui)
			}
		}
	}
	for i := range g.out {
		sort.Ints(g.out[i])
		sort.Ints(g.in[i])
	}
	return g, nil
}

func (g *Graph) addNode(id telemetry.EntityID) {
	g.index[id] = len(g.ids)
	g.ids = append(g.ids, id)
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.ids) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, adj := range g.out {
		n += len(adj)
	}
	return n
}

// IDs returns the entity IDs in node-index order. The slice is shared;
// treat it as read-only.
func (g *Graph) IDs() []telemetry.EntityID { return g.ids }

// ID returns the entity ID of node i.
func (g *Graph) ID(i int) telemetry.EntityID { return g.ids[i] }

// Index returns the node index of an entity and whether it is present.
func (g *Graph) Index(id telemetry.EntityID) (int, bool) {
	i, ok := g.index[id]
	return i, ok
}

// Contains reports whether the entity is a node of the graph.
func (g *Graph) Contains(id telemetry.EntityID) bool {
	_, ok := g.index[id]
	return ok
}

// Out returns the out-neighbor indices of node i (shared; read-only).
func (g *Graph) Out(i int) []int { return g.out[i] }

// In returns the in-neighbor indices of node i (shared; read-only). These
// are the in_nbrs(v) over which the MRF factor P_v conditions.
func (g *Graph) In(i int) []int { return g.in[i] }

// InIDs returns the in-neighbor entity IDs of an entity.
func (g *Graph) InIDs(id telemetry.EntityID) []telemetry.EntityID {
	i, ok := g.index[id]
	if !ok {
		return nil
	}
	out := make([]telemetry.EntityID, len(g.in[i]))
	for k, j := range g.in[i] {
		out[k] = g.ids[j]
	}
	return out
}

// CountCycles2 returns the number of 2-cycles (u→v and v→u with u < v).
// Bidirectional associations make these ubiquitous (§2.2).
func (g *Graph) CountCycles2() int {
	n := 0
	for u := range g.out {
		for _, v := range g.out[u] {
			if u < v && g.hasEdge(v, u) {
				n++
			}
		}
	}
	return n
}

// CountCycles3 returns the number of directed 3-cycles u→v→w→u counted once
// per node set with a fixed starting orientation (u is the smallest index).
func (g *Graph) CountCycles3() int {
	n := 0
	for u := range g.out {
		for _, v := range g.out[u] {
			if v <= u {
				continue
			}
			for _, w := range g.out[v] {
				if w <= u || w == v {
					continue
				}
				if g.hasEdge(w, u) {
					n++
				}
			}
		}
	}
	return n
}

func (g *Graph) hasEdge(u, v int) bool {
	adj := g.out[u]
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// InCycle reports whether node i lies on some directed cycle, computed by
// checking whether i can reach itself.
func (g *Graph) InCycle(i int) bool {
	seen := make([]bool, len(g.ids))
	stack := append([]int(nil), g.out[i]...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == i {
			return true
		}
		if seen[u] {
			continue
		}
		seen[u] = true
		stack = append(stack, g.out[u]...)
	}
	return false
}

// IsDAG reports whether the graph has no directed cycles.
func (g *Graph) IsDAG() bool {
	indeg := make([]int, len(g.ids))
	for _, adj := range g.out {
		for _, v := range adj {
			indeg[v]++
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, v := range g.out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return seen == len(g.ids)
}

// bfsDist returns, for every node, the directed distance from src following
// edges in the given direction ("out" follows u→v, "in" follows v→u);
// unreachable nodes get -1.
func (g *Graph) bfsDist(src int, forward bool) []int {
	dist := make([]int, len(g.ids))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		adj := g.out[u]
		if !forward {
			adj = g.in[u]
		}
		for _, v := range adj {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPathSubgraph returns the nodes lying on at least one shortest
// directed path from a to d, ordered by increasing distance from a (the
// resampling order of §4.2, with ties broken by node index for determinism).
// It returns nil when d is unreachable from a. Both endpoints are included.
func (g *Graph) ShortestPathSubgraph(a, d telemetry.EntityID) []telemetry.EntityID {
	ai, ok := g.index[a]
	if !ok {
		return nil
	}
	di, ok := g.index[d]
	if !ok {
		return nil
	}
	if ai == di {
		return []telemetry.EntityID{a}
	}
	return g.shortestPathWith(ai, di, g.bfsDist(di, false))
}

// shortestPathWith is the shared core of ShortestPathSubgraph: it takes the
// reverse-BFS distance field toD (distance of every node to di), which a
// SubgraphCache computes once per symptom and reuses across candidates.
func (g *Graph) shortestPathWith(ai, di int, toD []int) []telemetry.EntityID {
	fromA := g.bfsDist(ai, true)
	total := fromA[di]
	if total == -1 {
		return nil
	}
	type nd struct{ idx, dist int }
	var nodes []nd
	for i := range g.ids {
		if fromA[i] >= 0 && toD[i] >= 0 && fromA[i]+toD[i] == total {
			nodes = append(nodes, nd{i, fromA[i]})
		}
	}
	sort.Slice(nodes, func(x, y int) bool {
		if nodes[x].dist != nodes[y].dist {
			return nodes[x].dist < nodes[y].dist
		}
		return nodes[x].idx < nodes[y].idx
	})
	out := make([]telemetry.EntityID, len(nodes))
	for i, n := range nodes {
		out[i] = g.ids[n.idx]
	}
	return out
}

// Distance returns the directed BFS distance from a to d, or -1.
func (g *Graph) Distance(a, d telemetry.EntityID) int {
	ai, ok := g.index[a]
	if !ok {
		return -1
	}
	di, ok := g.index[d]
	if !ok {
		return -1
	}
	return g.bfsDist(ai, true)[di]
}

// AnomalyFn reports whether an entity currently looks anomalous enough to
// keep exploring through. The MRF core supplies a conservative-threshold
// implementation.
type AnomalyFn func(id telemetry.EntityID) bool

// PrunedCandidates runs the candidate search-space pruning of §4.2: a BFS
// from the symptom entity that expands only through entities whose metrics
// are above conservative thresholds, returning all visited anomalous
// entities (excluding the symptom entity itself). maxCandidates caps the
// result (0 means unlimited). The same pruned space is fed to every
// comparison scheme for fairness.
func (g *Graph) PrunedCandidates(symptom telemetry.EntityID, anomalous AnomalyFn, maxCandidates int) []telemetry.EntityID {
	si, ok := g.index[symptom]
	if !ok {
		return nil
	}
	visited := make([]bool, len(g.ids))
	visited[si] = true
	queue := []int{si}
	var out []telemetry.EntityID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		// Explore both edge directions: influence may flow either way.
		for _, adj := range [][]int{g.out[u], g.in[u]} {
			for _, v := range adj {
				if visited[v] {
					continue
				}
				visited[v] = true
				if !anomalous(g.ids[v]) {
					continue // prune: do not output or expand through it
				}
				out = append(out, g.ids[v])
				if maxCandidates > 0 && len(out) >= maxCandidates {
					return out
				}
				queue = append(queue, v)
			}
		}
	}
	return out
}
