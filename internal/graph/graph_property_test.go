package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"murphy/internal/telemetry"
)

// randomGraph builds a random relationship graph over n nodes with roughly
// density*n*n directed edges (bidirectional associations, so 2-cycles
// abound), returning both the DB and the built graph.
func randomGraph(t testing.TB, seed int64, n int, density float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	db := telemetry.NewDB(60)
	ids := make([]telemetry.EntityID, n)
	for i := 0; i < n; i++ {
		ids[i] = telemetry.EntityID(fmt.Sprintf("n%d", i))
		if err := db.AddEntity(&telemetry.Entity{ID: ids[i], Type: telemetry.TypeVM, Name: string(ids[i])}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				if err := db.Associate(ids[i], ids[j], telemetry.Bidirectional); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Always connect sequentially so the graph is one component.
	for i := 1; i < n; i++ {
		if !db.HasEdge(ids[i-1], ids[i]) {
			if err := db.Associate(ids[i-1], ids[i], telemetry.Bidirectional); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := Build(db, []telemetry.EntityID{ids[0]}, -1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Property: every node of a shortest-path subgraph lies on a shortest path —
// dist(a,v) + dist(v,d) == dist(a,d) — and the sequence is ordered by
// distance from a with both endpoints present.
func TestShortestPathSubgraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := randomGraph(t, seed, n, 0.2)
		a := g.ID(rng.Intn(g.Len()))
		d := g.ID(rng.Intn(g.Len()))
		sp := g.ShortestPathSubgraph(a, d)
		total := g.Distance(a, d)
		if total == -1 {
			return sp == nil
		}
		if len(sp) == 0 || sp[0] != a || sp[len(sp)-1] != d {
			return a == d && len(sp) == 1 // self path
		}
		prev := -1
		for _, v := range sp {
			da := g.Distance(a, v)
			dd := g.Distance(v, d)
			if da == -1 || dd == -1 || da+dd != total {
				return false
			}
			if da < prev {
				return false // must be ordered by distance from a
			}
			prev = da
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of directed edges is even when every association is
// bidirectional, and CountCycles2 equals half the number of mutual pairs.
func TestBidirectionalEdgeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randomGraph(t, seed, n, 0.3)
		if g.NumEdges()%2 != 0 {
			return false
		}
		return g.CountCycles2() == g.NumEdges()/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: InCycle is true for every node with a bidirectional neighbor.
func TestInCycleProperty(t *testing.T) {
	g := randomGraph(t, 5, 10, 0.3)
	for i := 0; i < g.Len(); i++ {
		if len(g.Out(i)) > 0 && !g.InCycle(i) {
			t.Fatalf("node %d has a bidirectional edge but InCycle is false", i)
		}
	}
}

// Property: pruned candidates never include the symptom and are all
// reachable through anomalous entities only.
func TestPrunedCandidatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := randomGraph(t, seed, n, 0.25)
		anom := make(map[telemetry.EntityID]bool)
		for i := 0; i < g.Len(); i++ {
			if rng.Float64() < 0.5 {
				anom[g.ID(i)] = true
			}
		}
		sym := g.ID(rng.Intn(g.Len()))
		got := g.PrunedCandidates(sym, func(id telemetry.EntityID) bool { return anom[id] }, 0)
		for _, c := range got {
			if c == sym {
				return false
			}
			if !anom[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
