package sage

import (
	"errors"
	"math/rand"
	"testing"

	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// dagDB builds a call-graph DAG: faulty -> mid -> front (edges point from
// cause to effect: a fault in a downstream service raises latency upstream).
// A healthy sibling also feeds front.
func dagDB(t *testing.T) (*telemetry.DB, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	db := telemetry.NewDB(10)
	for _, id := range []telemetry.EntityID{"faulty", "sibling", "mid", "front"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeService, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][2]telemetry.EntityID{{"faulty", "mid"}, {"mid", "front"}, {"sibling", "front"}} {
		if err := db.Associate(p[0], p[1], telemetry.Directed); err != nil {
			t.Fatal(err)
		}
	}
	total := 150
	for tt := 0; tt < total; tt++ {
		stress := 0.0
		if tt >= total-6 {
			stress = 0.6 // injected contention on "faulty"
		}
		fCPU := 0.2 + stress + rng.NormFloat64()*0.02
		fLat := 5 + 40*fCPU + rng.NormFloat64()*0.5
		sLat := 4 + rng.NormFloat64()*0.3
		mLat := 3 + 0.9*fLat + rng.NormFloat64()*0.5
		frLat := 2 + 0.8*mLat + 0.3*sLat + rng.NormFloat64()*0.5
		obs := func(id telemetry.EntityID, m string, v float64) {
			t.Helper()
			if err := db.Observe(id, m, tt, v); err != nil {
				t.Fatal(err)
			}
		}
		obs("faulty", telemetry.MetricCPU, fCPU)
		obs("faulty", telemetry.MetricLatency, fLat)
		obs("sibling", telemetry.MetricLatency, sLat)
		obs("mid", telemetry.MetricLatency, mLat)
		obs("front", telemetry.MetricLatency, frLat)
	}
	g, err := graph.Build(db, []telemetry.EntityID{"faulty", "sibling"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

func TestTrainRejectsCycles(t *testing.T) {
	db := telemetry.NewDB(10)
	for _, id := range []telemetry.EntityID{"a", "b"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeService, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Associate("a", "b", telemetry.Bidirectional); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 20; tt++ {
		if err := db.Observe("a", telemetry.MetricLatency, tt, 1); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := graph.Build(db, []telemetry.EntityID{"a"}, -1)
	if _, err := Train(db, g, DefaultConfig()); !errors.Is(err, ErrCyclic) {
		t.Fatalf("cyclic input must return ErrCyclic, got %v", err)
	}
}

func TestDiagnoseFindsFaultyService(t *testing.T) {
	db, g := dagDB(t)
	m, err := Train(db, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sym := telemetry.Symptom{Entity: "front", Metric: telemetry.MetricLatency, High: true}
	got, err := m.Diagnose(sym, []telemetry.EntityID{"faulty", "sibling", "mid"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no root causes")
	}
	if got[0].Entity != "faulty" && got[0].Entity != "mid" {
		t.Fatalf("top cause should be on the faulty chain, got %v", RankedIDs(got))
	}
	for _, r := range got {
		if r.Entity == "sibling" && r.Improvement > got[0].Improvement/2 {
			t.Fatalf("healthy sibling scored too high: %+v", got)
		}
	}
}

func TestDiagnoseCannotSeeOutsideDAG(t *testing.T) {
	db, g := dagDB(t)
	m, err := Train(db, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sym := telemetry.Symptom{Entity: "front", Metric: telemetry.MetricLatency, High: true}
	// The true root cause of the interference scenario lives outside the
	// DAG; Sage must silently drop it.
	got, err := m.Diagnose(sym, []telemetry.EntityID{"external-client"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("outside-DAG candidate must be unscorable, got %v", RankedIDs(got))
	}
}

func TestDiagnoseErrors(t *testing.T) {
	db, g := dagDB(t)
	m, err := Train(db, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Diagnose(telemetry.Symptom{Entity: "ghost", Metric: telemetry.MetricLatency}, nil); err == nil {
		t.Fatal("unknown symptom entity should error")
	}
}

func TestTrainErrors(t *testing.T) {
	db := telemetry.NewDB(10)
	if err := db.AddEntity(&telemetry.Entity{ID: "a", Type: telemetry.TypeService, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Observe("a", telemetry.MetricLatency, 0, 1); err != nil {
		t.Fatal(err)
	}
	g, _ := graph.Build(db, []telemetry.EntityID{"a"}, -1)
	if _, err := Train(db, g, DefaultConfig()); err == nil {
		t.Fatal("too-short telemetry should error")
	}
}

func TestMinImprovementCutoff(t *testing.T) {
	db, g := dagDB(t)
	cfg := DefaultConfig()
	cfg.MinImprovement = 1e9
	m, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sym := telemetry.Symptom{Entity: "front", Metric: telemetry.MetricLatency, High: true}
	got, err := m.Diagnose(sym, []telemetry.EntityID{"faulty"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("improvement cutoff should drop everything")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	db, g := dagDB(t)
	m, err := Train(db, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int, len(m.topo))
	for i, n := range m.topo {
		pos[n] = i
	}
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Out(u) {
			if pos[u] > pos[v] {
				t.Fatal("topological order violates an edge")
			}
		}
	}
}
