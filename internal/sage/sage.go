// Package sage implements the Sage baseline (Gan et al., ASPLOS 2021) at the
// level the paper's comparison depends on: a counterfactual graphical model
// over a *causal DAG* — the microservice call graph — with one learned
// per-node model conditioned on the node's parents. The structural property
// the evaluation exercises is preserved faithfully: Sage refuses cyclic
// inputs, reasons only inside the call tree of the affected user-facing
// service, and therefore cannot name a root cause that lies outside its DAG
// (§6.1), while performing well when the DAG is the right model (§6.3).
//
// The authors' implementation uses conditional variational autoencoders per
// node; this reproduction substitutes per-node ridge regressors (documented
// in DESIGN.md), which keeps the counterfactual mechanics — intervene on a
// node's resource metrics, propagate downstream through the DAG, measure the
// predicted QoS improvement — identical in shape.
package sage

import (
	"errors"
	"fmt"
	"sort"

	"murphy/internal/graph"
	"murphy/internal/regress"
	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// ErrCyclic is returned when the supplied dependency graph is not a DAG.
// Sage's model cannot represent cycles (§2.3); callers in cyclic
// environments must prune edges first or skip the scheme entirely.
var ErrCyclic = errors.New("sage: dependency graph contains cycles; Sage requires a causal DAG")

// Config holds Sage's tunables.
type Config struct {
	// Window is the training window in slices.
	Window int
	// Lambda is the per-node ridge penalty.
	Lambda float64
	// HealthyQuantile is the training-window quantile used as the "normal"
	// value a counterfactual intervention restores a metric to.
	HealthyQuantile float64
	// MinImprovement drops candidates whose counterfactual improves the
	// symptom by less than this fraction of its historical std.
	MinImprovement float64
}

// DefaultConfig returns the configuration used in the evaluation.
func DefaultConfig() Config {
	return Config{Window: 300, Lambda: 1.0, HealthyQuantile: 0.5, MinImprovement: 0.05}
}

// Model is a trained Sage instance for one symptom environment.
type Model struct {
	cfg     Config
	db      *telemetry.DB
	g       *graph.Graph
	topo    []int // topological order of node indices
	parents [][]int
	// factors[node][metric] predicts the metric from the node's parents'
	// metrics (and is how interventions propagate downstream).
	factors map[int]map[string]*regress.Ridge
	// current value per (node index, metric).
	current map[int]map[string]float64
	lo, hi  int
}

// Train fits Sage on the dependency DAG g. Edges must point from cause to
// effect (caller RPS/load propagates to callee; callee latency propagates to
// caller is modeled by the reverse edge the call-graph extractor emits for
// latency aggregation — the graph supplied here is whatever DAG the
// environment can honestly provide). Returns ErrCyclic for non-DAG input.
func Train(db *telemetry.DB, g *graph.Graph, cfg Config) (*Model, error) {
	if !g.IsDAG() {
		return nil, ErrCyclic
	}
	if cfg.Window <= 8 {
		cfg.Window = DefaultConfig().Window
	}
	if cfg.HealthyQuantile <= 0 || cfg.HealthyQuantile >= 1 {
		cfg.HealthyQuantile = DefaultConfig().HealthyQuantile
	}
	if db.Len() < 8 {
		return nil, fmt.Errorf("sage: not enough telemetry (%d slices)", db.Len())
	}
	m := &Model{
		cfg:     cfg,
		db:      db,
		g:       g,
		factors: make(map[int]map[string]*regress.Ridge),
		current: make(map[int]map[string]float64),
	}
	m.hi = db.Len()
	m.lo = m.hi - cfg.Window
	if m.lo < 0 {
		m.lo = 0
	}
	m.topo = topoOrder(g)
	m.parents = make([][]int, g.Len())
	for i := range m.parents {
		m.parents[i] = g.In(i)
	}
	// Cache windows and currents.
	windows := make(map[int]map[string][]float64, g.Len())
	for i, id := range g.IDs() {
		windows[i] = make(map[string][]float64)
		m.current[i] = make(map[string]float64)
		for _, metric := range db.MetricNames(id) {
			w := db.Window(id, metric, m.lo, m.hi)
			windows[i][metric] = w
			m.current[i][metric] = w[len(w)-1]
		}
	}
	// Fit per-node factors on parent metrics.
	for i, id := range g.IDs() {
		m.factors[i] = make(map[string]*regress.Ridge)
		var featRefs [][2]interface{}
		for _, p := range m.parents[i] {
			for _, pm := range db.MetricNames(g.ID(p)) {
				featRefs = append(featRefs, [2]interface{}{p, pm})
			}
		}
		for _, metric := range db.MetricNames(id) {
			y := windows[i][metric]
			n := len(y)
			x := make([][]float64, n)
			for t := 0; t < n; t++ {
				row := make([]float64, len(featRefs))
				for j, fr := range featRefs {
					row[j] = windows[fr[0].(int)][fr[1].(string)][t]
				}
				x[t] = row
			}
			rg := regress.NewRidge(cfg.Lambda)
			if err := rg.Fit(x, y); err != nil {
				return nil, fmt.Errorf("sage: fit %s/%s: %w", id, metric, err)
			}
			m.factors[i][metric] = rg
		}
	}
	return m, nil
}

// topoOrder returns a topological order of the (acyclic) graph.
func topoOrder(g *graph.Graph) []int {
	n := g.Len()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			indeg[v]++
		}
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Out(u) {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return order
}

// Ranked is one scored candidate.
type Ranked struct {
	Entity telemetry.EntityID
	// Improvement is the predicted reduction of the symptom metric (in
	// historical-std units) if the candidate's metrics were restored to
	// healthy values.
	Improvement float64
}

// Diagnose ranks root causes for the symptom among candidates. Candidates
// outside the DAG — and any true root cause whose influence reaches the
// symptom only through edges the DAG cannot express — are unscorable and
// silently dropped; this is the structural limitation §6.1 demonstrates.
func (m *Model) Diagnose(symptom telemetry.Symptom, candidates []telemetry.EntityID) ([]Ranked, error) {
	si, ok := m.g.Index(symptom.Entity)
	if !ok {
		return nil, fmt.Errorf("sage: symptom entity %q not in DAG", symptom.Entity)
	}
	base := m.propagate(si, symptom.Metric, -1, nil)
	hist := m.db.Window(symptom.Entity, symptom.Metric, m.lo, m.hi)
	_, hstd := stats.MeanStd(hist)
	if hstd == 0 {
		hstd = 1
	}
	var out []Ranked
	seen := make(map[telemetry.EntityID]bool, len(candidates))
	for _, cand := range candidates {
		if seen[cand] {
			continue
		}
		seen[cand] = true
		ci, ok := m.g.Index(cand)
		if !ok || ci == si {
			continue
		}
		healthy := m.healthyValues(ci)
		cf := m.propagate(si, symptom.Metric, ci, healthy)
		impr := (base - cf) / hstd
		if !symptom.High {
			impr = -impr
		}
		if impr >= m.cfg.MinImprovement {
			out = append(out, Ranked{Entity: cand, Improvement: impr})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Improvement != out[j].Improvement {
			return out[i].Improvement > out[j].Improvement
		}
		return out[i].Entity < out[j].Entity
	})
	return out, nil
}

// healthyValues returns the intervention values for a node: each metric
// restored to its healthy training quantile.
func (m *Model) healthyValues(node int) map[string]float64 {
	id := m.g.ID(node)
	out := make(map[string]float64)
	for _, metric := range m.db.MetricNames(id) {
		w := m.db.Window(id, metric, m.lo, m.hi)
		out[metric] = stats.Quantile(w, m.cfg.HealthyQuantile)
	}
	return out
}

// propagate computes the model's prediction of (symptom node, metric) under
// an optional intervention: node `fix` (or -1 for none) has its metrics
// clamped to the given values, every other node's metrics are re-predicted
// from its parents in topological order, and observed current values are
// used for nodes upstream of any change.
func (m *Model) propagate(symptomNode int, symptomMetric string, fix int, fixVals map[string]float64) float64 {
	state := make(map[int]map[string]float64, m.g.Len())
	changed := make([]bool, m.g.Len())
	for _, u := range m.topo {
		if u == fix {
			state[u] = fixVals
			changed[u] = true
			continue
		}
		// A node is re-predicted only when some ancestor changed; otherwise
		// its observed current values stand.
		affected := false
		for _, p := range m.parents[u] {
			if changed[p] {
				affected = true
				break
			}
		}
		if !affected {
			state[u] = m.current[u]
			continue
		}
		changed[u] = true
		vals := make(map[string]float64)
		var feats []float64
		for _, p := range m.parents[u] {
			for _, pm := range m.db.MetricNames(m.g.ID(p)) {
				feats = append(feats, state[p][pm])
			}
		}
		for metric, f := range m.factors[u] {
			vals[metric] = f.Predict(feats)
		}
		state[u] = vals
	}
	return state[symptomNode][symptomMetric]
}

// RankedIDs extracts the ordered entity IDs from a ranking.
func RankedIDs(rs []Ranked) []telemetry.EntityID {
	out := make([]telemetry.EntityID, len(rs))
	for i, r := range rs {
		out[i] = r.Entity
	}
	return out
}
