package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicAccess(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatal("new series should be empty")
	}
	s.Append(1)
	s.Append(2)
	if s.Len() != 2 || s.At(0) != 1 || s.At(1) != 2 {
		t.Fatal("append/at wrong")
	}
	if !IsMissing(s.At(-1)) || !IsMissing(s.At(5)) {
		t.Fatal("out-of-range access should be Missing")
	}
}

func TestSetGrows(t *testing.T) {
	s := New()
	s.Set(3, 9)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if !IsMissing(s.At(0)) || !IsMissing(s.At(2)) || s.At(3) != 9 {
		t.Fatal("gap should be Missing")
	}
	s.Set(-1, 5) // no-op
	if s.Len() != 4 {
		t.Fatal("negative Set must be a no-op")
	}
	s.Set(0, 7)
	if s.At(0) != 7 {
		t.Fatal("Set existing index failed")
	}
}

func TestConstant(t *testing.T) {
	s := Constant(2.5, 4)
	if s.Len() != 4 {
		t.Fatal("wrong length")
	}
	for i := 0; i < 4; i++ {
		if s.At(i) != 2.5 {
			t.Fatal("constant value wrong")
		}
	}
}

func TestWindowClipping(t *testing.T) {
	s := FromValues([]float64{0, 1, 2, 3, 4})
	w := s.Window(1, 3)
	if len(w) != 2 || w[0] != 1 || w[1] != 2 {
		t.Fatalf("window = %v", w)
	}
	if got := s.Window(-10, 100); len(got) != 5 {
		t.Fatalf("clipped window = %v", got)
	}
	if s.Window(4, 2) != nil {
		t.Fatal("inverted window should be nil")
	}
	w = s.Window(0, 2)
	w[0] = 42
	if s.At(0) == 42 {
		t.Fatal("Window must copy")
	}
}

func TestWindowFilled(t *testing.T) {
	s := FromValues([]float64{1, Missing, 3})
	w := s.WindowFilled(0, 3, -1)
	if w[0] != 1 || w[1] != -1 || w[2] != 3 {
		t.Fatalf("filled window = %v", w)
	}
}

func TestLast(t *testing.T) {
	s := FromValues([]float64{1, 2, Missing})
	v, i := s.Last()
	if v != 2 || i != 1 {
		t.Fatalf("Last = %v @ %d", v, i)
	}
	v, i = New().Last()
	if !IsMissing(v) || i != -1 {
		t.Fatal("empty Last should be Missing, -1")
	}
	v, i = FromValues([]float64{Missing, Missing}).Last()
	if !IsMissing(v) || i != -1 {
		t.Fatal("all-missing Last should be Missing, -1")
	}
}

func TestFillMissing(t *testing.T) {
	s := FromValues([]float64{Missing, 1, Missing})
	s.FillMissing(0)
	if s.At(0) != 0 || s.At(2) != 0 || s.At(1) != 1 {
		t.Fatal("FillMissing wrong")
	}
	if s.MissingCount() != 0 {
		t.Fatal("MissingCount after fill should be 0")
	}
}

func TestTruncateAndAlign(t *testing.T) {
	s := FromValues([]float64{1, 2, 3, 4})
	s.Truncate(2)
	if s.Len() != 2 {
		t.Fatal("Truncate failed")
	}
	s.Truncate(10) // no-op
	if s.Len() != 2 {
		t.Fatal("Truncate beyond length must be a no-op")
	}
	s.Truncate(-1)
	if s.Len() != 0 {
		t.Fatal("negative Truncate should empty the series")
	}
	s = FromValues([]float64{1})
	s.Align(3)
	if s.Len() != 3 || !IsMissing(s.At(2)) {
		t.Fatal("Align pad failed")
	}
	s.Align(1)
	if s.Len() != 1 {
		t.Fatal("Align trim failed")
	}
}

func TestAggregate(t *testing.T) {
	s := FromValues([]float64{1, 3, 5, 7, 9})
	a, err := s.Aggregate(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 || a.At(0) != 2 || a.At(1) != 6 || a.At(2) != 9 {
		t.Fatalf("aggregate = %v", a.Values())
	}
	if _, err := s.Aggregate(0); err == nil {
		t.Fatal("factor 0 should error")
	}
	same, _ := s.Aggregate(1)
	if same.Len() != s.Len() {
		t.Fatal("factor-1 aggregate should be identity")
	}
	same.Set(0, 99)
	if s.At(0) == 99 {
		t.Fatal("factor-1 aggregate must be a copy")
	}
}

func TestAggregateWithMissing(t *testing.T) {
	s := FromValues([]float64{Missing, Missing, 4, 6})
	a, err := s.Aggregate(2)
	if err != nil {
		t.Fatal(err)
	}
	if !IsMissing(a.At(0)) {
		t.Fatal("all-missing group should aggregate to Missing")
	}
	if a.At(1) != 5 {
		t.Fatalf("second group = %v", a.At(1))
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := FromValues([]float64{1, 2})
	c := s.Clone()
	c.Set(0, 100)
	if s.At(0) == 100 {
		t.Fatal("Clone must be deep")
	}
}

// Property: aggregation preserves total length relationship and the mean of
// a fully observed series (up to the ragged tail group).
func TestAggregatePropertyMeanPreserved(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		factor := 1 + r.Intn(5)
		n := factor * (1 + r.Intn(20)) // exact multiple: every group full
		vals := make([]float64, n)
		sum := 0.0
		for i := range vals {
			vals[i] = r.Float64() * 100
			sum += vals[i]
		}
		a, err := FromValues(vals).Aggregate(factor)
		if err != nil {
			return false
		}
		if a.Len() != n/factor {
			return false
		}
		asum := 0.0
		for _, v := range a.Values() {
			asum += v
		}
		return math.Abs(sum/float64(n)-asum/float64(a.Len())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Window(lo,hi) always returns exactly the clipped range.
func TestWindowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30)
		s := New()
		for i := 0; i < n; i++ {
			s.Append(float64(i))
		}
		lo, hi := r.Intn(40)-5, r.Intn(40)-5
		w := s.Window(lo, hi)
		clo, chi := lo, hi
		if clo < 0 {
			clo = 0
		}
		if chi > n {
			chi = n
		}
		want := 0
		if chi > clo {
			want = chi - clo
		}
		if len(w) != want {
			return false
		}
		for i, v := range w {
			if v != float64(clo+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
