// Package timeseries provides the aligned metric time series used throughout
// the Murphy reproduction. The enterprise monitoring platform the paper
// builds on collects every metric on a common grid of time slices (minutes in
// production, 10 s in the DeathStarBench emulation), so a Series here is a
// dense slice of values on that shared grid, with NaN marking missing points.
package timeseries

import (
	"errors"
	"math"
)

// Missing is the sentinel for an absent observation.
var Missing = math.NaN()

// IsMissing reports whether v is the missing-value sentinel.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Series is a metric time series on the global slice grid. Index i is the
// observation for time slice i; the grid's wall-clock meaning (start time and
// interval) is owned by the telemetry database, not by the series itself.
type Series struct {
	vals []float64
}

// New returns an empty series.
func New() *Series { return &Series{} }

// FromValues builds a series that takes ownership of vals.
func FromValues(vals []float64) *Series { return &Series{vals: vals} }

// Constant returns a series of n copies of v.
func Constant(v float64, n int) *Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	return &Series{vals: vals}
}

// Len returns the number of time slices in the series.
func (s *Series) Len() int { return len(s.vals) }

// At returns the value at slice t, or Missing when t is out of range.
func (s *Series) At(t int) float64 {
	if t < 0 || t >= len(s.vals) {
		return Missing
	}
	return s.vals[t]
}

// Set assigns the value at slice t, growing the series with Missing values
// if t is beyond the current end.
func (s *Series) Set(t int, v float64) {
	if t < 0 {
		return
	}
	for len(s.vals) <= t {
		s.vals = append(s.vals, Missing)
	}
	s.vals[t] = v
}

// Append adds v as the next time slice.
func (s *Series) Append(v float64) { s.vals = append(s.vals, v) }

// Values returns the underlying storage. Callers must treat it as read-only.
func (s *Series) Values() []float64 { return s.vals }

// Clone returns a deep copy.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.vals))
	copy(v, s.vals)
	return &Series{vals: v}
}

// Window returns a copy of the half-open range [lo, hi), clipped to the
// series bounds. Out-of-range requests yield an empty slice.
func (s *Series) Window(lo, hi int) []float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.vals) {
		hi = len(s.vals)
	}
	if lo >= hi {
		return nil
	}
	out := make([]float64, hi-lo)
	copy(out, s.vals[lo:hi])
	return out
}

// WindowFilled is Window with missing points replaced by def. Murphy uses a
// default placeholder (e.g. 0% CPU) for newly created entities that lack
// history (§4.2 edge cases).
func (s *Series) WindowFilled(lo, hi int, def float64) []float64 {
	out := s.Window(lo, hi)
	for i, v := range out {
		if IsMissing(v) {
			out[i] = def
		}
	}
	return out
}

// Last returns the most recent non-missing value and its index, or
// (Missing, -1) when the series has no observations.
func (s *Series) Last() (float64, int) {
	for i := len(s.vals) - 1; i >= 0; i-- {
		if !IsMissing(s.vals[i]) {
			return s.vals[i], i
		}
	}
	return Missing, -1
}

// FillMissing replaces every missing point with def, in place.
func (s *Series) FillMissing(def float64) {
	for i, v := range s.vals {
		if IsMissing(v) {
			s.vals[i] = def
		}
	}
}

// Truncate shortens the series to at most n slices.
func (s *Series) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n < len(s.vals) {
		s.vals = s.vals[:n]
	}
}

// Aggregate downsamples the series by averaging consecutive groups of factor
// slices (the paper's platform aggregates day-old data into longer
// intervals). Missing values inside a group are skipped; a group with no
// observations aggregates to Missing. It returns an error for factor < 1.
func (s *Series) Aggregate(factor int) (*Series, error) {
	if factor < 1 {
		return nil, errors.New("timeseries: aggregation factor must be >= 1")
	}
	if factor == 1 {
		return s.Clone(), nil
	}
	n := (len(s.vals) + factor - 1) / factor
	out := make([]float64, 0, n)
	for i := 0; i < len(s.vals); i += factor {
		hi := i + factor
		if hi > len(s.vals) {
			hi = len(s.vals)
		}
		sum, cnt := 0.0, 0
		for _, v := range s.vals[i:hi] {
			if !IsMissing(v) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			out = append(out, Missing)
		} else {
			out = append(out, sum/float64(cnt))
		}
	}
	return &Series{vals: out}, nil
}

// MissingCount returns the number of missing observations.
func (s *Series) MissingCount() int {
	n := 0
	for _, v := range s.vals {
		if IsMissing(v) {
			n++
		}
	}
	return n
}

// Align trims or pads (with Missing) the series to exactly n slices.
func (s *Series) Align(n int) {
	for len(s.vals) < n {
		s.vals = append(s.vals, Missing)
	}
	s.vals = s.vals[:n]
}
