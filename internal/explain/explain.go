// Package explain generates the human-readable explanation chains of §4.3:
// every entity gets a coarse label from its current metrics and conservative
// thresholds, a small state machine encodes which label can cause which, and
// chains are traced from a root cause to the symptom entity such that every
// hop respects the causality rules. Explanations never change which root
// causes are selected; they only justify them.
package explain

import (
	"fmt"
	"strings"

	"murphy/internal/core"
	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// Label is the coarse health state assigned to an entity.
type Label int

const (
	// Okay means no threshold is exceeded.
	Okay Label = iota
	// HeavyHitter marks abnormally high offered load (throughput, sessions,
	// request rate, CPU-consuming load).
	HeavyHitter
	// HighDropRate marks packet drops or loss above threshold.
	HighDropRate
	// Degraded marks degraded performance: high latency or RTT.
	Degraded
	// NonFunctional marks a component that is down or unresponsive.
	NonFunctional
)

// String renders the label as in the paper's Figure 4.
func (l Label) String() string {
	switch l {
	case Okay:
		return "okay"
	case HeavyHitter:
		return "heavy hitter"
	case HighDropRate:
		return "high drop rate"
	case Degraded:
		return "degraded performance"
	case NonFunctional:
		return "non-functional"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// Thresholds are the conservative labeling thresholds (paper footnote 7:
// 25% CPU/memory/disk/port utilization, 0.1% drop rate, 50 TCP sessions or
// high byte count per interval).
type Thresholds struct {
	Utilization float64 // CPU/mem/disk/port utilization fraction exceeded
	DropRate    float64 // drop/loss rate exceeded
	Sessions    float64 // TCP session count exceeded
	Throughput  float64 // bytes per interval exceeded
	LatencyZ    float64 // latency z-score (vs history) exceeded
	LoadZ       float64 // load-ish metric z-score exceeded
}

// DefaultThresholds mirrors the paper's conservative settings.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Utilization: 0.25,
		DropRate:    0.001,
		Sessions:    50,
		Throughput:  1e9,
		LatencyZ:    2.0,
		LoadZ:       2.0,
	}
}

// canCause is the state machine of Figure 4: arrows indicate causal truths
// such as "a heavy-hitter flow can cause a high drop rate on a virtual NIC"
// or "a heavy hitter can cause high load on a VM".
var canCause = map[Label][]Label{
	HeavyHitter:   {HeavyHitter, HighDropRate, Degraded, NonFunctional},
	HighDropRate:  {Degraded, NonFunctional},
	Degraded:      {Degraded, NonFunctional},
	NonFunctional: {NonFunctional, Degraded},
}

// CanCause reports whether an entity labeled from can causally explain an
// entity labeled to.
func CanCause(from, to Label) bool {
	for _, l := range canCause[from] {
		if l == to {
			return true
		}
	}
	return false
}

// Labeler assigns labels from a trained model's current metric values.
type Labeler struct {
	model *core.Model
	db    *telemetry.DB
	th    Thresholds
}

// NewLabeler builds a labeler over the model used for diagnosis.
func NewLabeler(m *core.Model, db *telemetry.DB, th Thresholds) *Labeler {
	return &Labeler{model: m, db: db, th: th}
}

// Label assigns the entity's current label, checking the most severe states
// first so an entity that is both overloaded and dropping reports the more
// actionable cause-side label (heavy hitter beats degraded for flows;
// non-functional beats everything).
func (lb *Labeler) Label(id telemetry.EntityID) Label {
	e := lb.db.Entity(id)
	if e == nil {
		return Okay
	}
	now := lb.model.Now()
	val := func(metric string) (float64, bool) {
		// db.At copies under the DB lock, so labeling stays safe while an
		// ingest goroutine appends fresh slices (absent metrics read as NaN).
		v := lb.db.At(id, metric, now)
		if v != v { // NaN
			return 0, false
		}
		return v, true
	}
	// Non-functional: explicit up==0, or error rate saturated.
	if up, ok := val(telemetry.MetricUp); ok && up == 0 {
		return NonFunctional
	}
	if er, ok := val(telemetry.MetricErrorRate); ok && er >= 0.5 {
		return NonFunctional
	}
	// High drop rate.
	for _, mn := range []string{telemetry.MetricPktDrops, telemetry.MetricLoss} {
		if v, ok := val(mn); ok && v > lb.th.DropRate {
			return HighDropRate
		}
	}
	// Heavy hitter: offered load above absolute or historical thresholds.
	if v, ok := val(telemetry.MetricSessions); ok && v > lb.th.Sessions {
		return HeavyHitter
	}
	if v, ok := val(telemetry.MetricThroughput); ok && v > lb.th.Throughput {
		return HeavyHitter
	}
	for _, mn := range []string{telemetry.MetricRPS, telemetry.MetricThroughput, telemetry.MetricNetTx, telemetry.MetricNetRx, telemetry.MetricSessions} {
		if _, ok := val(mn); ok && lb.model.MetricZ(id, mn) > lb.th.LoadZ {
			return HeavyHitter
		}
	}
	for _, mn := range []string{telemetry.MetricCPU, telemetry.MetricMem, telemetry.MetricDiskUtil, telemetry.MetricBufferUtil, telemetry.MetricSpaceUtil} {
		if v, ok := val(mn); ok && v > lb.th.Utilization && lb.model.MetricZ(id, mn) > lb.th.LoadZ {
			return HeavyHitter
		}
	}
	// Degraded performance: high latency/RTT vs history.
	for _, mn := range []string{telemetry.MetricLatency, telemetry.MetricRTT} {
		if _, ok := val(mn); ok && lb.model.MetricZ(id, mn) > lb.th.LatencyZ {
			return Degraded
		}
	}
	return Okay
}

// Step is one hop of an explanation chain.
type Step struct {
	Entity telemetry.EntityID
	Label  Label
}

// Chain is a causal explanation path from root cause to symptom.
type Chain struct {
	Steps []Step
}

// String renders the chain as the paper's example output format:
// "Entity A (crawler) sent high requests to Entity B (front-end). ...".
func (c Chain) String() string { return c.Render(nil) }

// Render renders the chain, resolving entity names through db when non-nil.
func (c Chain) Render(db *telemetry.DB) string {
	if len(c.Steps) == 0 {
		return "(empty explanation)"
	}
	name := func(id telemetry.EntityID) string {
		if db != nil {
			if e := db.Entity(id); e != nil {
				return e.String()
			}
		}
		return string(id)
	}
	var b strings.Builder
	for i, s := range c.Steps {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s [%s]", name(s.Entity), s.Label)
	}
	return b.String()
}

// Sentences renders the chain as the prose explanation of the paper's
// Figure 2 output ("Entity A (crawler machine) sent high requests to Entity
// B (front-end). … Entity C (back-end) faced high load and CPU usage."):
// one sentence per hop, verb chosen by the cause's label, plus a closing
// sentence describing the final entity's state.
func (c Chain) Sentences(db *telemetry.DB) []string {
	if len(c.Steps) == 0 {
		return nil
	}
	name := func(id telemetry.EntityID) string {
		if db != nil {
			if e := db.Entity(id); e != nil {
				return fmt.Sprintf("%s (%s)", e.Name, e.Type)
			}
		}
		return string(id)
	}
	verb := func(l Label) string {
		switch l {
		case HeavyHitter:
			return "sent high load to"
		case HighDropRate:
			return "dropped traffic toward"
		case Degraded:
			return "slowed down"
		case NonFunctional:
			return "stopped serving"
		default:
			return "affected"
		}
	}
	state := func(l Label) string {
		switch l {
		case HeavyHitter:
			return "faced high load"
		case HighDropRate:
			return "experienced a high drop rate"
		case Degraded:
			return "suffered degraded performance"
		case NonFunctional:
			return "became non-functional"
		default:
			return "was affected"
		}
	}
	var out []string
	for i := 0; i+1 < len(c.Steps); i++ {
		a, b := c.Steps[i], c.Steps[i+1]
		out = append(out, fmt.Sprintf("Entity %s %s entity %s.", name(a.Entity), verb(a.Label), name(b.Entity)))
	}
	last := c.Steps[len(c.Steps)-1]
	out = append(out, fmt.Sprintf("Entity %s %s.", name(last.Entity), state(last.Label)))
	return out
}

// Explain traces a causal chain from the root cause to the symptom entity
// along relationship-graph edges such that every hop respects the label
// state machine and no hop passes through an Okay-labeled entity (other than
// possibly the symptom itself, whose problematic metric defines the
// incident). It prefers the shortest such chain; ok is false when none
// exists.
func Explain(lb *Labeler, g *graph.Graph, root, symptom telemetry.EntityID) (Chain, bool) {
	ri, ok := g.Index(root)
	if !ok {
		return Chain{}, false
	}
	si, ok := g.Index(symptom)
	if !ok {
		return Chain{}, false
	}
	labels := make([]Label, g.Len())
	for i, id := range g.IDs() {
		labels[i] = lb.Label(id)
	}
	if labels[ri] == Okay {
		// A root cause that looks Okay cannot anchor a labeled chain.
		return Chain{}, false
	}
	// BFS over label-respecting edges.
	prev := make([]int, g.Len())
	for i := range prev {
		prev[i] = -1
	}
	prev[ri] = ri
	queue := []int{ri}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == si {
			break
		}
		for _, v := range g.Out(u) {
			if prev[v] != -1 {
				continue
			}
			lv := labels[v]
			if v != si && lv == Okay {
				continue
			}
			if v == si && lv == Okay {
				// The symptom entity may not look anomalous under coarse
				// labels even though one metric is problematic; accept the
				// hop if the predecessor can cause degradation.
				if !CanCause(labels[u], Degraded) {
					continue
				}
			} else if !CanCause(labels[u], lv) {
				continue
			}
			prev[v] = u
			queue = append(queue, v)
		}
	}
	if prev[si] == -1 && ri != si {
		return Chain{}, false
	}
	// Reconstruct.
	var idxPath []int
	for v := si; ; v = prev[v] {
		idxPath = append(idxPath, v)
		if v == ri {
			break
		}
	}
	ch := Chain{}
	for i := len(idxPath) - 1; i >= 0; i-- {
		v := idxPath[i]
		ch.Steps = append(ch.Steps, Step{Entity: g.ID(v), Label: labels[v]})
	}
	return ch, true
}
