package explain

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"murphy/internal/core"
	"murphy/internal/graph"
	"murphy/internal/metamorph"
	"murphy/internal/telemetry"
)

// TestExplainCascadeGolden pins the full explanation chain produced on a
// fuzzed cascade scenario: the chain from the injected root cause to the
// client-latency symptom, both in arrow form and as prose sentences. Any
// change to labeling thresholds, the state machine, or chain tracing shows up
// as a golden diff. Regenerate with UPDATE_GOLDEN=1.
func TestExplainCascadeGolden(t *testing.T) {
	// Case 2 of the fixed-seed cascade family: a deep chain whose every hop
	// carries a non-Okay label, so the full path from the faulted container to
	// the client renders.
	const goldenPath = "testdata/cascade_chain.golden"
	c, err := metamorph.Generate(metamorph.FamilyCascade, 2, 0x6d757270)
	if err != nil {
		t.Fatal(err)
	}
	cfg := metamorph.BaseConfig()
	g, err := graph.Build(c.DB, []telemetry.EntityID{c.Symptom.Entity}, -1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.TrainOpt(context.Background(), c.DB, g, cfg, core.TrainOpts{Now: -1})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLabeler(model, c.DB, DefaultThresholds())
	ch, ok := Explain(lb, g, c.Truth, c.Symptom.Entity)
	if !ok {
		t.Fatalf("no explanation chain from fuzzed truth %s to symptom %s", c.Truth, c.Symptom.Entity)
	}
	var b strings.Builder
	b.WriteString(ch.Render(c.DB))
	b.WriteString("\n")
	for _, s := range ch.Sentences(c.DB) {
		b.WriteString(s)
		b.WriteString("\n")
	}
	got := b.String()

	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("explanation chain drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
