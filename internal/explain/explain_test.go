package explain

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"murphy/internal/core"
	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// crawlerDB reproduces the Figure 1 incident shape: a crawler client sends a
// heavy-hitter flow to a front-end VM, which fans out to a backend VM whose
// CPU saturates.
func crawlerDB(t *testing.T) (*telemetry.DB, *graph.Graph, *core.Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	db := telemetry.NewDB(600)
	for _, e := range []*telemetry.Entity{
		{ID: "crawler", Type: telemetry.TypeVM, Name: "crawler"},
		{ID: "flow1", Type: telemetry.TypeFlow, Name: "crawler->front"},
		{ID: "front", Type: telemetry.TypeVM, Name: "front"},
		{ID: "flow2", Type: telemetry.TypeFlow, Name: "front->back"},
		{ID: "back", Type: telemetry.TypeVM, Name: "back"},
		{ID: "bystander", Type: telemetry.TypeVM, Name: "bystander"},
	} {
		if err := db.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][2]telemetry.EntityID{
		{"crawler", "flow1"}, {"flow1", "front"}, {"front", "flow2"},
		{"flow2", "back"}, {"bystander", "back"},
	} {
		if err := db.Associate(p[0], p[1], telemetry.Bidirectional); err != nil {
			t.Fatal(err)
		}
	}
	total := 120
	for tt := 0; tt < total; tt++ {
		spike := 0.0
		if tt >= total-4 {
			spike = 1
		}
		obs := func(id telemetry.EntityID, m string, v float64) {
			t.Helper()
			if err := db.Observe(id, m, tt, v); err != nil {
				t.Fatal(err)
			}
		}
		obs("crawler", telemetry.MetricNetTx, 100+spike*900+rng.NormFloat64()*5)
		obs("flow1", telemetry.MetricSessions, 10+spike*200+rng.NormFloat64())
		obs("flow1", telemetry.MetricThroughput, 1e6+spike*5e9+rng.NormFloat64()*1e5)
		obs("front", telemetry.MetricCPU, 0.10+spike*0.5+rng.NormFloat64()*0.01)
		obs("flow2", telemetry.MetricSessions, 8+spike*150+rng.NormFloat64())
		obs("back", telemetry.MetricCPU, 0.12+spike*0.7+rng.NormFloat64()*0.01)
		obs("bystander", telemetry.MetricCPU, 0.1+rng.NormFloat64()*0.01)
	}
	g, err := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Samples = 200
	cfg.TrainWindow = 120
	m, err := core.Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db, g, m
}

func TestLabelAssignments(t *testing.T) {
	db, _, m := crawlerDB(t)
	lb := NewLabeler(m, db, DefaultThresholds())
	if got := lb.Label("flow1"); got != HeavyHitter {
		t.Fatalf("flow1 label = %v, want heavy hitter", got)
	}
	if got := lb.Label("back"); got != HeavyHitter {
		t.Fatalf("back label = %v, want heavy hitter (CPU spike)", got)
	}
	if got := lb.Label("bystander"); got != Okay {
		t.Fatalf("bystander label = %v, want okay", got)
	}
	if got := lb.Label("ghost"); got != Okay {
		t.Fatalf("unknown entity label = %v, want okay", got)
	}
}

func TestLabelNonFunctional(t *testing.T) {
	db, _, m := crawlerDB(t)
	// Give the bystander an "up" metric stuck at 0 in the final slice.
	for tt := 0; tt <= m.Now(); tt++ {
		v := 1.0
		if tt == m.Now() {
			v = 0
		}
		if err := db.Observe("bystander", telemetry.MetricUp, tt, v); err != nil {
			t.Fatal(err)
		}
	}
	lb := NewLabeler(m, db, DefaultThresholds())
	if got := lb.Label("bystander"); got != NonFunctional {
		t.Fatalf("down entity label = %v, want non-functional", got)
	}
}

// TestCanCauseStateMachine pins every transition of the Figure 4 label state
// machine: all 25 (from, to) pairs, one row each, so any edit to canCause
// shows up as a named transition flipping.
func TestCanCauseStateMachine(t *testing.T) {
	cases := []struct {
		from, to Label
		want     bool
	}{
		// Okay anchors nothing: a healthy entity explains no downstream state.
		{Okay, Okay, false},
		{Okay, HeavyHitter, false},
		{Okay, HighDropRate, false},
		{Okay, Degraded, false},
		{Okay, NonFunctional, false},
		// A heavy hitter propagates load and can produce every failure state,
		// but cannot explain a healthy entity.
		{HeavyHitter, Okay, false},
		{HeavyHitter, HeavyHitter, true},
		{HeavyHitter, HighDropRate, true},
		{HeavyHitter, Degraded, true},
		{HeavyHitter, NonFunctional, true},
		// Drops degrade or kill what is behind them; they do not create load.
		{HighDropRate, Okay, false},
		{HighDropRate, HeavyHitter, false},
		{HighDropRate, HighDropRate, false},
		{HighDropRate, Degraded, true},
		{HighDropRate, NonFunctional, true},
		// Degradation cascades downstream but never manufactures load or drops.
		{Degraded, Okay, false},
		{Degraded, HeavyHitter, false},
		{Degraded, HighDropRate, false},
		{Degraded, Degraded, true},
		{Degraded, NonFunctional, true},
		// A dead component starves or kills its dependents.
		{NonFunctional, Okay, false},
		{NonFunctional, HeavyHitter, false},
		{NonFunctional, HighDropRate, false},
		{NonFunctional, Degraded, true},
		{NonFunctional, NonFunctional, true},
	}
	if want, got := 25, len(cases); want != got {
		t.Fatalf("transition table covers %d pairs, want %d", got, want)
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%v->%v", c.from, c.to), func(t *testing.T) {
			if got := CanCause(c.from, c.to); got != c.want {
				t.Fatalf("CanCause(%v, %v) = %v, want %v", c.from, c.to, got, c.want)
			}
		})
	}
}

func TestExplainTracesCrawlerChain(t *testing.T) {
	db, g, m := crawlerDB(t)
	lb := NewLabeler(m, db, DefaultThresholds())
	ch, ok := Explain(lb, g, "flow1", "back")
	if !ok {
		t.Fatal("expected an explanation chain")
	}
	if ch.Steps[0].Entity != "flow1" || ch.Steps[len(ch.Steps)-1].Entity != "back" {
		t.Fatalf("chain endpoints wrong: %v", ch)
	}
	// The chain must not route through the Okay bystander.
	for _, s := range ch.Steps {
		if s.Entity == "bystander" {
			t.Fatal("chain must avoid okay-labeled entities")
		}
	}
	text := ch.Render(db)
	if !strings.Contains(text, "flow:crawler->front") || !strings.Contains(text, "heavy hitter") {
		t.Fatalf("rendered chain missing expected content: %s", text)
	}
}

func TestExplainRejectsOkayRoot(t *testing.T) {
	db, g, m := crawlerDB(t)
	lb := NewLabeler(m, db, DefaultThresholds())
	if _, ok := Explain(lb, g, "bystander", "back"); ok {
		t.Fatal("an Okay-labeled root cannot anchor a chain")
	}
}

func TestExplainUnknownEntities(t *testing.T) {
	db, g, m := crawlerDB(t)
	lb := NewLabeler(m, db, DefaultThresholds())
	if _, ok := Explain(lb, g, "ghost", "back"); ok {
		t.Fatal("unknown root should fail")
	}
	if _, ok := Explain(lb, g, "flow1", "ghost"); ok {
		t.Fatal("unknown symptom should fail")
	}
}

func TestLabelString(t *testing.T) {
	names := map[Label]string{
		Okay: "okay", HeavyHitter: "heavy hitter", HighDropRate: "high drop rate",
		Degraded: "degraded performance", NonFunctional: "non-functional",
	}
	for l, want := range names {
		if l.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(l), l.String(), want)
		}
	}
	if Label(99).String() != "label(99)" {
		t.Fatal("unknown label string wrong")
	}
}

func TestChainRenderEmpty(t *testing.T) {
	if (Chain{}).String() != "(empty explanation)" {
		t.Fatal("empty chain render wrong")
	}
}

func TestHighDropRateLabel(t *testing.T) {
	db, _, m := crawlerDB(t)
	for tt := 0; tt <= m.Now(); tt++ {
		v := 0.0
		if tt == m.Now() {
			v = 0.05 // 5% drops, above the 0.1% threshold
		}
		if err := db.Observe("bystander", telemetry.MetricPktDrops, tt, v); err != nil {
			t.Fatal(err)
		}
	}
	lb := NewLabeler(m, db, DefaultThresholds())
	if got := lb.Label("bystander"); got != HighDropRate {
		t.Fatalf("label = %v, want high drop rate", got)
	}
}

func TestChainSentences(t *testing.T) {
	db, g, m := crawlerDB(t)
	lb := NewLabeler(m, db, DefaultThresholds())
	ch, ok := Explain(lb, g, "flow1", "back")
	if !ok {
		t.Fatal("expected a chain")
	}
	sents := ch.Sentences(db)
	if len(sents) != len(ch.Steps) {
		t.Fatalf("want %d sentences (hops + closing state), got %d", len(ch.Steps), len(sents))
	}
	if !strings.Contains(sents[0], "sent high load to") {
		t.Fatalf("heavy hitter verb missing: %q", sents[0])
	}
	last := sents[len(sents)-1]
	if !strings.Contains(last, "faced high load") {
		t.Fatalf("closing state sentence wrong: %q", last)
	}
	// Without a DB the raw IDs are used.
	raw := ch.Sentences(nil)
	if !strings.Contains(raw[0], "flow1") {
		t.Fatalf("nil-db rendering should use IDs: %q", raw[0])
	}
	if (Chain{}).Sentences(db) != nil {
		t.Fatal("empty chain should render no sentences")
	}
}
