package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randCols(rng *rand.Rand, k, n int, scale float64) [][]float64 {
	cols := make([][]float64, k)
	for i := range cols {
		cols[i] = make([]float64, n)
		for j := range cols[i] {
			cols[i][j] = scale * rng.NormFloat64()
		}
	}
	return cols
}

func subCols(cols [][]float64, lo, hi int) [][]float64 {
	out := make([][]float64, len(cols))
	for i, c := range cols {
		out[i] = c[lo:hi]
	}
	return out
}

func maxAbsDiff(a, b *Dense) float64 {
	ra, ca := a.Dims()
	m := 0.0
	for i := 0; i < ra; i++ {
		for j := 0; j < ca; j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > m {
				m = d
			}
		}
	}
	return m
}

// TestGramColsUpdateFromZero checks the update kernel accumulates exactly
// like GramCols when fed the whole data: starting from a zero Gram and
// applying one update over all rows must be bit-identical (same blocked
// order, same mirroring).
func TestGramColsUpdateFromZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 255, 256, 257, 700} {
		cols := randCols(rng, 5, n, 1)
		want := GramCols(cols)
		got := NewDense(5, 5)
		GramColsUpdate(got, cols)
		if d := maxAbsDiff(got, want); d != 0 {
			t.Fatalf("n=%d: update-from-zero differs from GramCols by %v", n, d)
		}
	}
}

// TestGramSlideMatchesRecompute slides a window across a long stream via
// update/downdate and compares against the freshly recomputed Gram at every
// step. The tolerance is a rounding bound, not bit-identity: the slid Gram
// accumulates in a different order.
func TestGramSlideMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k, n, steps := 6, 120, 200
	stream := randCols(rng, k, n+steps, 3)
	g := GramCols(subCols(stream, 0, n))
	for s := 0; s < steps; s++ {
		GramColsUpdate(g, subCols(stream, n+s, n+s+1))
		GramColsDowndate(g, subCols(stream, s, s+1))
		fresh := GramCols(subCols(stream, s+1, n+s+1))
		// Error bound: each slide adds O(ε)·magnitudes; scale by the largest
		// diagonal (the natural magnitude of Gram entries).
		scale := 1.0
		for i := 0; i < k; i++ {
			if v := fresh.At(i, i); v > scale {
				scale = v
			}
		}
		if d := maxAbsDiff(g, fresh); d > 1e-10*scale*float64(s+1) {
			t.Fatalf("step %d: slid Gram differs from recompute by %v (scale %v)", s, d, scale)
		}
	}
}

// TestGramUpdateDowndateRoundTrip applies a block update then downdates the
// same block: the result must match the original within rounding.
func TestGramUpdateDowndateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cols := randCols(rng, 4, 300, 2)
	g := GramCols(cols)
	orig := g.Clone()
	blk := randCols(rng, 4, 17, 2)
	GramColsUpdate(g, blk)
	GramColsDowndate(g, blk)
	if d := maxAbsDiff(g, orig); d > 1e-9 {
		t.Fatalf("update+downdate round trip drifted by %v", d)
	}
}

// TestGramUpdateSymmetry checks the mirrored lower triangle stays exactly
// equal to the upper after updates and downdates.
func TestGramUpdateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := GramCols(randCols(rng, 5, 64, 1))
	GramColsUpdate(g, randCols(rng, 5, 3, 1))
	GramColsDowndate(g, randCols(rng, 5, 2, 1))
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d): %v != %v", i, j, g.At(i, j), g.At(j, i))
			}
		}
	}
}

func TestGramUpdateEmptyBlockNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := GramCols(randCols(rng, 3, 32, 1))
	orig := g.Clone()
	GramColsUpdate(g, [][]float64{{}, {}, {}})
	GramColsDowndate(g, [][]float64{{}, {}, {}})
	if d := maxAbsDiff(g, orig); d != 0 {
		t.Fatalf("empty update changed the Gram by %v", d)
	}
}

func TestGramUpdateDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on column-count mismatch")
		}
	}()
	GramColsUpdate(NewDense(3, 3), [][]float64{{1}, {2}})
}

func TestCrossColsSlideMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k, n, steps := 5, 100, 150
	stream := randCols(rng, k, n+steps, 2)
	ys := make([]float64, n+steps)
	for i := range ys {
		ys[i] = rng.NormFloat64() * 4
	}
	acc := MulVecCols(subCols(stream, 0, n), ys[:n])
	for s := 0; s < steps; s++ {
		CrossColsUpdate(acc, subCols(stream, n+s, n+s+1), ys[n+s:n+s+1])
		CrossColsDowndate(acc, subCols(stream, s, s+1), ys[s:s+1])
		fresh := MulVecCols(subCols(stream, s+1, n+s+1), ys[s+1:n+s+1])
		for i := range acc {
			if d := math.Abs(acc[i] - fresh[i]); d > 1e-9*(1+math.Abs(fresh[i]))*float64(s+1) {
				t.Fatalf("step %d col %d: slid cross %v vs recompute %v", s, i, acc[i], fresh[i])
			}
		}
	}
}

func TestCrossColsUpdateFromZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cols := randCols(rng, 4, 333, 1)
	ys := make([]float64, 333)
	for i := range ys {
		ys[i] = rng.NormFloat64()
	}
	want := MulVecCols(cols, ys)
	got := make([]float64, 4)
	CrossColsUpdate(got, cols, ys)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("col %d: %v != MulVecCols %v", i, got[i], want[i])
		}
	}
}
