// Rank-k update/downdate kernels for sliding-window Gram maintenance. As the
// training window slides, the appended rows contribute X'X += Σ x·x' and the
// expired rows X'X −= Σ x·x'; applying both as blocked corrections over the
// few entering/leaving rows is O(k·B²) per slide instead of the O(n·B²) full
// GramCols recomputation. The matching cross-term kernels maintain X'y.
package mat

import "fmt"

// checkUpdateDims validates the update columns against the Gram matrix g:
// one column per Gram dimension, all of equal length. A zero-length update
// (no entering/leaving rows) is valid and a no-op.
func checkUpdateDims(g *Dense, cols [][]float64) int {
	k := len(cols)
	r, c := g.Dims()
	if r != c || r != k {
		panic(fmt.Sprintf("mat: Gram update dimension mismatch: %dx%d Gram, %d columns", r, c, k))
	}
	if k == 0 {
		return 0
	}
	n := len(cols[0])
	for i, col := range cols {
		if len(col) != n {
			panic(fmt.Sprintf("mat: Gram update ragged column %d: len %d != %d", i, len(col), n))
		}
	}
	return n
}

// GramColsUpdate applies the appended rows' contribution to the Gram matrix
// in place: g += X'X of the entering rows, given as feature columns (cols[i]
// holds feature i's entering values). Like GramCols it processes rows in
// blocks, computes only j >= i, and mirrors, so a fresh Gram updated row
// block by row block accumulates in the same order GramCols would.
func GramColsUpdate(g *Dense, cols [][]float64) {
	n := checkUpdateDims(g, cols)
	k := len(cols)
	for lo := 0; lo < n; lo += gramBlockRows {
		hi := lo + gramBlockRows
		if hi > n {
			hi = n
		}
		for i := 0; i < k; i++ {
			ci := cols[i][lo:hi]
			gi := g.data[i*k:]
			for j := i; j < k; j++ {
				cj := cols[j][lo:hi]
				s := gi[j]
				for r, v := range ci {
					s += v * cj[r]
				}
				gi[j] = s
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.data[j*k+i] = g.data[i*k+j]
		}
	}
}

// GramColsDowndate removes the expired rows' contribution from the Gram
// matrix in place: g −= X'X of the leaving rows, given as feature columns.
func GramColsDowndate(g *Dense, cols [][]float64) {
	n := checkUpdateDims(g, cols)
	k := len(cols)
	for lo := 0; lo < n; lo += gramBlockRows {
		hi := lo + gramBlockRows
		if hi > n {
			hi = n
		}
		for i := 0; i < k; i++ {
			ci := cols[i][lo:hi]
			gi := g.data[i*k:]
			for j := i; j < k; j++ {
				cj := cols[j][lo:hi]
				s := gi[j]
				for r, v := range ci {
					s -= v * cj[r]
				}
				gi[j] = s
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.data[j*k+i] = g.data[i*k+j]
		}
	}
}

// checkCrossDims validates a cross-term update: one accumulator slot per
// column, columns and rhs of equal length.
func checkCrossDims(acc []float64, cols [][]float64, y []float64) {
	if len(cols) != len(acc) {
		panic(fmt.Sprintf("mat: cross update %d columns != %d accumulators", len(cols), len(acc)))
	}
	for i, c := range cols {
		if len(c) != len(y) {
			panic(fmt.Sprintf("mat: cross update column %d length %d != rhs %d", i, len(c), len(y)))
		}
	}
}

// CrossColsUpdate applies the appended rows' contribution to the cross-term
// vector in place: acc[i] += cols[i]·y. It is the X'y twin of
// GramColsUpdate.
func CrossColsUpdate(acc []float64, cols [][]float64, y []float64) {
	checkCrossDims(acc, cols, y)
	for i, c := range cols {
		s := acc[i]
		for r, v := range c {
			s += v * y[r]
		}
		acc[i] = s
	}
}

// CrossColsDowndate removes the expired rows' contribution from the
// cross-term vector in place: acc[i] −= cols[i]·y.
func CrossColsDowndate(acc []float64, cols [][]float64, y []float64) {
	checkCrossDims(acc, cols, y)
	for i, c := range cols {
		s := acc[i]
		for r, v := range c {
			s -= v * y[r]
		}
		acc[i] = s
	}
}
