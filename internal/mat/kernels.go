// Flat-slice kernels for the batched Gibbs sampler: the factor application
// loop is restructured from per-sample map lookups and interface calls into
// whole-chain-vector operations over contiguous slices, which these helpers
// implement with the bounds checks hoisted so the compiler can keep the
// inner loops tight.

package mat

// Fill sets every element of dst to v.
func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// Fill32 sets every element of dst to v.
func Fill32(dst []float32, v float32) {
	for i := range dst {
		dst[i] = v
	}
}

// AccumTerm adds one standardized regression term across a whole chain
// vector: dst[i] += c·(src[i]−mean)/std. The per-element operation order is
// exactly regress.Ridge.Predict's term evaluation, so applying the terms
// feature-by-feature over the batch stays bit-identical to the original
// sample-by-sample prediction loop.
func AccumTerm(dst, src []float64, c, mean, std float64) {
	if len(src) > len(dst) {
		src = src[:len(dst)]
	}
	dst = dst[:len(src)]
	for i, x := range src {
		dst[i] += c * (x - mean) / std
	}
}

// AddScaled32 adds w·src into dst element-wise: the float32 kernel's folded
// form of a regression term (the mean and std are folded into w and the
// step's bias ahead of time).
func AddScaled32(dst, src []float32, w float32) {
	if len(src) > len(dst) {
		src = src[:len(dst)]
	}
	dst = dst[:len(src)]
	for i, x := range src {
		dst[i] += w * x
	}
}

// Lincomb32x4 writes a four-term linear combination plus bias across a whole
// chain vector: dst[i] = bias + w0·s0[i] + w1·s1[i] + w2·s2[i] + w3·s3[i].
// Fusing the bias fill with the first four terms saves the separate Fill32
// pass and three of the four dst read-modify-write round trips that the
// term-at-a-time AddScaled32 form would pay.
func Lincomb32x4(dst, s0, s1, s2, s3 []float32, w0, w1, w2, w3, bias float32) {
	n := len(dst)
	dst, s0, s1, s2, s3 = dst[:n], s0[:n], s1[:n], s2[:n], s3[:n]
	for i := range dst {
		dst[i] = bias + w0*s0[i] + w1*s1[i] + w2*s2[i] + w3*s3[i]
	}
}

// AddScaled32x4 adds four scaled terms into dst element-wise:
// dst[i] += w0·s0[i] + w1·s1[i] + w2·s2[i] + w3·s3[i]. The four-feature
// fusion quarters the dst traffic of four AddScaled32 calls.
func AddScaled32x4(dst, s0, s1, s2, s3 []float32, w0, w1, w2, w3 float32) {
	n := len(dst)
	dst, s0, s1, s2, s3 = dst[:n], s0[:n], s1[:n], s2[:n], s3[:n]
	for i := range dst {
		dst[i] += w0*s0[i] + w1*s1[i] + w2*s2[i] + w3*s3[i]
	}
}

// Widen copies a float32 vector into a float64 one (dst and src must be the
// same length), bridging the float32 kernel's draws back into the float64
// test statistics.
func Widen(dst []float64, src []float32) {
	dst = dst[:len(src)]
	for i, x := range src {
		dst[i] = float64(x)
	}
}
