package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	r, c := m.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("dims %dx%d", r, c)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set failed")
	}
	row := m.Row(1)
	row[0] = 100
	if m.At(1, 0) == 100 {
		t.Fatal("Row must return a copy")
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dims")
		}
	}()
	NewDense(0, 3)
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("transpose dims %dx%d", r, c)
	}
	if tr.At(2, 0) != 3 || tr.At(0, 1) != 4 {
		t.Fatal("transpose values wrong")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewDense(3, 2)); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestGramMatchesTTimesX(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := NewDense(7, 4)
	for i := 0; i < 7; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, r.NormFloat64())
		}
	}
	g := Gram(x)
	ref, err := x.T().Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(g.At(i, j)-ref.At(i, j)) > 1e-10 {
				t.Fatalf("Gram[%d][%d] = %v, want %v", i, j, g.At(i, j), ref.At(i, j))
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix from A = B'B + I.
	a, _ := FromRows([][]float64{{4, 2, 0.6}, {2, 3, 0.4}, {0.6, 0.4, 2}})
	b := []float64{1, 2, 3}
	x, err := CholeskySolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := a.MulVec(x)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-9 {
			t.Fatalf("residual at %d: %v vs %v", i, got[i], b[i])
		}
	}
}

func TestCholeskySolveRejectsNonSPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := CholeskySolve(a, []float64{1, 1}); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	if _, err := CholeskySolve(NewDense(2, 3), []float64{1, 1}); err == nil {
		t.Fatal("non-square should error")
	}
	if _, err := CholeskySolve(NewDense(2, 2).AddDiag(1), []float64{1}); err == nil {
		t.Fatal("rhs mismatch should error")
	}
}

func TestSolveGeneral(t *testing.T) {
	// Requires pivoting: zero on the leading diagonal.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Fatalf("Solve = %v", x)
	}
	sing, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(sing, []float64{1, 1}); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || a.At(1, 0) != 1 || b[0] != 1 {
		t.Fatal("Solve mutated inputs")
	}
}

// Property: for random SPD systems, CholeskySolve and Solve agree.
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		x := NewDense(n+3, n)
		for i := 0; i < n+3; i++ {
			for j := 0; j < n; j++ {
				x.Set(i, j, r.NormFloat64())
			}
		}
		a := Gram(x).AddDiag(0.5)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err1 := CholeskySolve(a, b)
		x2, err2 := Solve(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAddDiag(t *testing.T) {
	m := NewDense(2, 2)
	m.AddDiag(3)
	if m.At(0, 0) != 3 || m.At(1, 1) != 3 || m.At(0, 1) != 0 {
		t.Fatal("AddDiag wrong")
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot product wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone must be deep")
	}
}
