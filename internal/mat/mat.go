// Package mat implements the small dense linear-algebra kernel Murphy's
// regression models need: matrices, products, and symmetric positive-definite
// solves (Cholesky with a pivoted Gaussian-elimination fallback). It is not a
// general-purpose BLAS; it is sized for regression problems with at most a
// few dozen features, which is what the top-B=10 feature selection of §4.2
// produces.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("mat: singular matrix")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r-by-c matrix. It panics if r or c is not
// positive, since a zero-sized matrix is always a programming error here.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mat: empty input")
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("mat: ragged row %d: len %d != %d", i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Dims returns the (rows, cols) of the matrix.
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.rows, m.cols)
	copy(n.data, m.data)
	return n
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m*n.
func (m *Dense) Mul(n *Dense) (*Dense, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("mat: dimension mismatch %dx%d * %dx%d", m.rows, m.cols, n.rows, n.cols)
	}
	out := NewDense(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			nk := n.data[k*n.cols : (k+1)*n.cols]
			for j, nkj := range nk {
				oi[j] += mik * nkj
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*x.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("mat: dimension mismatch %dx%d * vec %d", m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// AddDiag adds v to every diagonal element in place and returns m. It is the
// ridge-regularization step (X'X + lambda*I).
func (m *Dense) AddDiag(v float64) *Dense {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	for i := 0; i < n; i++ {
		m.data[i*m.cols+i] += v
	}
	return m
}

// Gram returns X'X for the design matrix x: a cols-by-cols symmetric matrix.
func Gram(x *Dense) *Dense {
	out := NewDense(x.cols, x.cols)
	for r := 0; r < x.rows; r++ {
		row := x.data[r*x.cols : (r+1)*x.cols]
		for i, vi := range row {
			if vi == 0 {
				continue
			}
			oi := out.data[i*out.cols : (i+1)*out.cols]
			for j, vj := range row {
				oi[j] += vi * vj
			}
		}
	}
	return out
}

// gramBlockRows is the row-tile size of the blocked Gram kernels: big enough
// to amortize the loop overhead, small enough that a tile of a dozen feature
// columns stays in L1/L2 while every (i, j) pair sweeps it.
const gramBlockRows = 256

// GramCols returns X'X for a design matrix given as feature columns (each
// column one feature, all of equal length). It is the column-major twin of
// Gram, bit-identical to Gram on the row-major equivalent: for every output
// element the products are accumulated over rows in ascending order, exactly
// as Gram's row sweep does. Rows are processed in blocks so all pairwise
// accumulations of a tile reuse cached column data, and symmetry is exploited
// by computing only j >= i and mirroring.
func GramCols(cols [][]float64) *Dense {
	k := len(cols)
	if k == 0 {
		panic("mat: GramCols needs at least one column")
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			panic(fmt.Sprintf("mat: GramCols ragged column %d: len %d != %d", i, len(c), n))
		}
	}
	out := NewDense(k, k)
	for lo := 0; lo < n; lo += gramBlockRows {
		hi := lo + gramBlockRows
		if hi > n {
			hi = n
		}
		for i := 0; i < k; i++ {
			ci := cols[i][lo:hi]
			oi := out.data[i*k:]
			for j := i; j < k; j++ {
				cj := cols[j][lo:hi]
				s := oi[j]
				for r, v := range ci {
					s += v * cj[r]
				}
				oi[j] = s
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			out.data[j*k+i] = out.data[i*k+j]
		}
	}
	return out
}

// MulVecCols returns X'y for a design matrix given as feature columns: one
// dot product per column, accumulated over rows in ascending order, so it is
// bit-identical to x.T().MulVec(y) on the row-major equivalent.
func MulVecCols(cols [][]float64, y []float64) []float64 {
	out := make([]float64, len(cols))
	for i, c := range cols {
		if len(c) != len(y) {
			panic(fmt.Sprintf("mat: MulVecCols column %d length %d != rhs %d", i, len(c), len(y)))
		}
		out[i] = Dot(c, y)
	}
	return out
}

// CholeskySolve solves A*x = b for symmetric positive-definite A. It returns
// ErrSingular when the factorization fails (A not positive definite).
// A and b are not modified.
func CholeskySolve(a *Dense, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Cholesky needs square matrix, got %dx%d", a.rows, a.cols)
	}
	if a.rows != len(b) {
		return nil, fmt.Errorf("mat: rhs length %d != %d", len(b), a.rows)
	}
	n := a.rows
	// Factor A = L L'.
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, ErrSingular
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * y[k]
		}
		y[i] = s / l[i*n+i]
	}
	// Back substitution L' x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	return x, nil
}

// Solve solves A*x = b by Gaussian elimination with partial pivoting. It is
// the fallback for systems that are not positive definite. A and b are not
// modified.
func Solve(a *Dense, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Solve needs square matrix, got %dx%d", a.rows, a.cols)
	}
	if a.rows != len(b) {
		return nil, fmt.Errorf("mat: rhs length %d != %d", len(b), a.rows)
	}
	n := a.rows
	aug := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				aug.data[col*n+j], aug.data[p*n+j] = aug.data[p*n+j], aug.data[col*n+j]
			}
			rhs[col], rhs[p] = rhs[p], rhs[col]
		}
		pivot := aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) / pivot
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aug.data[r*n+j] -= f * aug.data[col*n+j]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= aug.At(i, j) * x[j]
		}
		x[i] = s / aug.At(i, i)
	}
	return x, nil
}

// Dot returns the inner product of a and b. It panics on length mismatch,
// which is always a programming error.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
