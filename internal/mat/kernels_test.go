package mat

import (
	"math"
	"math/rand"
	"testing"
)

// TestAccumTermMatchesScalar pins the batched term application to the exact
// scalar arithmetic of the per-sample prediction loop: for random inputs the
// results must be bit-identical, not just close.
func TestAccumTermMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		c := rng.NormFloat64() * 3
		mean := rng.NormFloat64() * 10
		std := 0.1 + rng.Float64()*5
		src := make([]float64, n)
		dst := make([]float64, n)
		want := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64() * 7
			dst[i] = rng.NormFloat64()
			want[i] = dst[i] + c*(src[i]-mean)/std
		}
		AccumTerm(dst, src, c, mean, std)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("trial %d elem %d: got %v want %v (not bit-identical)", trial, i, dst[i], want[i])
			}
		}
	}
}

func TestAddScaled32(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		w := float32(rng.NormFloat64())
		src := make([]float32, n)
		dst := make([]float32, n)
		want := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
			dst[i] = float32(rng.NormFloat64())
			want[i] = dst[i] + w*src[i]
		}
		AddScaled32(dst, src, w)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("trial %d elem %d: got %v want %v", trial, i, dst[i], want[i])
			}
		}
	}
}

func TestFillAndWiden(t *testing.T) {
	d := make([]float64, 17)
	Fill(d, 3.5)
	for i, v := range d {
		if v != 3.5 {
			t.Fatalf("Fill elem %d = %v", i, v)
		}
	}
	f := make([]float32, 9)
	Fill32(f, -2)
	for i, v := range f {
		if v != -2 {
			t.Fatalf("Fill32 elem %d = %v", i, v)
		}
	}
	src := []float32{1.5, -0.25, float32(math.Pi)}
	out := make([]float64, len(src))
	Widen(out, src)
	for i := range src {
		if out[i] != float64(src[i]) {
			t.Fatalf("Widen elem %d = %v want %v", i, out[i], float64(src[i]))
		}
	}
}

// TestBlocked32Kernels pins the four-way fused forms against the scalar
// per-term arithmetic they replace. float32 addition is associative-sensitive,
// so the fused kernels may round differently from four sequential AddScaled32
// calls; the check is against the fused expression itself evaluated scalar-
// wise (which is what the kernel promises), with an exact-equality assertion.
func TestBlocked32Kernels(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		var w [4]float32
		var src [4][]float32
		for k := range src {
			w[k] = float32(rng.NormFloat64())
			src[k] = make([]float32, n)
			for i := range src[k] {
				src[k][i] = float32(rng.NormFloat64())
			}
		}
		bias := float32(rng.NormFloat64())
		dst := make([]float32, n)
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			want[i] = bias + w[0]*src[0][i] + w[1]*src[1][i] + w[2]*src[2][i] + w[3]*src[3][i]
		}
		Lincomb32x4(dst, src[0], src[1], src[2], src[3], w[0], w[1], w[2], w[3], bias)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("Lincomb32x4 trial %d elem %d: got %v want %v", trial, i, dst[i], want[i])
			}
		}
		add := make([]float32, n)
		for i := range add {
			add[i] = float32(rng.NormFloat64())
			want[i] = add[i] + (w[0]*src[0][i] + w[1]*src[1][i] + w[2]*src[2][i] + w[3]*src[3][i])
		}
		AddScaled32x4(add, src[0], src[1], src[2], src[3], w[0], w[1], w[2], w[3])
		for i := range add {
			if add[i] != want[i] {
				t.Fatalf("AddScaled32x4 trial %d elem %d: got %v want %v", trial, i, add[i], want[i])
			}
		}
	}
}

// TestAccumTermLengthClamp documents the defensive clamp: mismatched lengths
// apply only the overlapping prefix instead of panicking.
func TestAccumTermLengthClamp(t *testing.T) {
	dst := []float64{1, 1, 1}
	AccumTerm(dst, []float64{10, 10}, 1, 0, 1)
	if dst[0] != 11 || dst[1] != 11 || dst[2] != 1 {
		t.Fatalf("got %v", dst)
	}
	dst32 := []float32{1, 1}
	AddScaled32(dst32, []float32{2, 2, 2}, 3)
	if dst32[0] != 7 || dst32[1] != 7 {
		t.Fatalf("got %v", dst32)
	}
}
