package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randomCols builds p feature columns of n rows plus the row-major design
// matrix holding the same values.
func randomCols(rng *rand.Rand, n, p int) ([][]float64, *Dense) {
	cols := make([][]float64, p)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	x := NewDense(n, p)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			v := rng.NormFloat64() * float64(1+j)
			cols[j][i] = v
			x.Set(i, j, v)
		}
	}
	return cols, x
}

// TestGramColsBitIdentical checks GramCols against the row-major Gram at row
// counts spanning the blocking boundary (gramBlockRows = 256). Bit identity is
// required: the parallel trainer swaps one for the other and must not perturb
// ridge solutions.
func TestGramColsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 5, 255, 256, 257, 600} {
		for _, p := range []int{1, 3, 10} {
			cols, x := randomCols(rng, n, p)
			want := Gram(x)
			got := GramCols(cols)
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					if math.Float64bits(want.At(i, j)) != math.Float64bits(got.At(i, j)) {
						t.Fatalf("n=%d p=%d: Gram[%d,%d] cols=%v rows=%v", n, p, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
}

// TestMulVecColsBitIdentical checks MulVecCols against T().MulVec across the
// same row counts.
func TestMulVecColsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 5, 255, 256, 257, 600} {
		cols, x := randomCols(rng, n, 4)
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		want, err := x.T().MulVec(y)
		if err != nil {
			t.Fatal(err)
		}
		got := MulVecCols(cols, y)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d != %d", n, len(got), len(want))
		}
		for j := range want {
			if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
				t.Fatalf("n=%d: X'y[%d] cols=%v rows=%v", n, j, got[j], want[j])
			}
		}
	}
}

// TestGramColsPanicsOnBadInput pins the contract violations: no columns, and
// ragged columns.
func TestGramColsPanicsOnBadInput(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	assertPanics("empty", func() { GramCols(nil) })
	assertPanics("ragged", func() { GramCols([][]float64{{1, 2}, {1}}) })
	assertPanics("mulvec-ragged", func() { MulVecCols([][]float64{{1, 2}}, []float64{1}) })
}
