package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Enable()
	r.Add(CtrGibbsSamples, 1234)
	sp := r.StartStage(StageTrain)
	sp.End()
	r.Observe(HistSamplesPerTest, 800)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"murphy_gibbs_samples_total 1234",
		`murphy_stage_calls_total{stage="train"} 1`,
		"# TYPE murphy_samples_per_test histogram",
		`murphy_samples_per_test_bucket{le="+Inf"} 1`,
		"murphy_samples_per_test_sum 800",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestServeMuxEndpoints(t *testing.T) {
	r := New()
	r.Enable()
	r.Add(CtrCandidatesTested, 9)
	mux := NewServeMux(r, true)

	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "murphy_candidates_tested_total 9") {
		t.Fatalf("/metrics:\n%s", body)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/stats")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["candidates_tested"] != 9 {
		t.Fatalf("/stats counters: %+v", snap.Counters)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Enable()
	r.Add(CtrFactorsTrained, 3)
	sp := r.StartStage(StagePrune)
	sp.End()
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["factors_trained"] != 3 || !back.Enabled {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
