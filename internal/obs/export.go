package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders the recorder's data in the Prometheus text
// exposition format under the murphy_ namespace: one counter family per
// pipeline counter, per-stage span totals, and the power-of-two histograms.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "# TYPE murphy_%s_total counter\nmurphy_%s_total %d\n", name, name, snap.Counters[name])
	}
	b.WriteString("# TYPE murphy_stage_calls_total counter\n")
	for _, st := range snap.Stages {
		fmt.Fprintf(&b, "murphy_stage_calls_total{stage=%q} %d\n", st.Stage, st.Calls)
	}
	b.WriteString("# TYPE murphy_stage_wall_seconds_total counter\n")
	for _, st := range snap.Stages {
		fmt.Fprintf(&b, "murphy_stage_wall_seconds_total{stage=%q} %g\n", st.Stage, st.Wall.Seconds())
	}
	b.WriteString("# TYPE murphy_stage_cpu_seconds_total counter\n")
	for _, st := range snap.Stages {
		fmt.Fprintf(&b, "murphy_stage_cpu_seconds_total{stage=%q} %g\n", st.Stage, st.CPU.Seconds())
	}
	for _, h := range snap.Hists {
		fmt.Fprintf(&b, "# TYPE murphy_%s histogram\n", h.Name)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "murphy_%s_bucket{le=\"%d\"} %d\n", h.Name, bk.Le, bk.Count)
		}
		fmt.Fprintf(&b, "murphy_%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(&b, "murphy_%s_sum %d\nmurphy_%s_count %d\n", h.Name, h.Sum, h.Name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ExpvarPublish publishes the recorder's live snapshot as an expvar variable
// (visible on /debug/vars). Publishing the same name twice panics, per
// expvar semantics — publish once per process.
func (r *Recorder) ExpvarPublish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Handler serves the Prometheus text exposition of the recorder.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
}

// NewServeMux builds the long-running-process observability endpoint:
//
//	/metrics     Prometheus text exposition
//	/stats       JSON snapshot (the same schema as Snapshot)
//	/debug/vars  expvar (process-global)
//	/debug/pprof/...  net/http/pprof (only with withPprof)
//
// Mount it on a side port for always-on deployments (Sage-style continuous
// diagnosis) so stage timings, counters, and profiles are scrapeable while
// diagnoses run.
func NewServeMux(r *Recorder, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Table renders the per-stage breakdown and counters as an operator-facing
// text table.
func (s Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-8s %6s %12s %12s %10s\n", "stage", "calls", "wall", "cpu", "wall/call")
	for _, st := range s.Stages {
		if st.Calls == 0 {
			continue
		}
		per := time.Duration(0)
		if st.Calls > 0 {
			per = st.Wall / time.Duration(st.Calls)
		}
		fmt.Fprintf(&b, "  %-8s %6d %12s %12s %10s\n",
			st.Stage, st.Calls, fmtDur(st.Wall), fmtDur(st.CPU), fmtDur(per))
	}
	names := make([]string, 0, len(s.Counters))
	for name, v := range s.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-28s %12d\n", name, s.Counters[name])
	}
	return b.String()
}

// fmtDur rounds a duration for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.String()
}
