//go:build linux

package obs

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative CPU time (user + system).
// Stage spans report the delta over their lifetime; under concurrent
// evaluation the per-span delta includes CPU burned by sibling goroutines,
// which is why only the sequential top-level stages record CPU.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
