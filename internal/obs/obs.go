// Package obs is the diagnosis pipeline's self-instrumentation layer:
// per-stage spans (wall and CPU time), monotonic counters, power-of-two
// histograms, and a subscribable progress-event stream, so a system whose
// whole job is explaining other systems' performance can also explain its
// own.
//
// The design goal is near-zero cost when disabled: every Recorder method is
// nil-safe and guarded by one atomic load, counters are fixed-index atomics
// (no maps, no allocation on the hot path), and spans are value types. A
// pipeline can therefore call into a disabled Recorder unconditionally — the
// overhead is a predicted branch per call site.
//
// Layering: obs depends only on the standard library. The diagnosis core,
// the graph layer, and the resilience layer all feed it; the public facade
// translates its events into the exported Observer surface.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of a diagnosis. Stages are reported in this
// order in breakdowns; StageTest aggregates the per-candidate counterfactual
// tests of one diagnosis under a single span (per-candidate detail flows
// through Progress events and the HistTestWallMicros histogram).
type Stage uint8

// The pipeline stages, in execution order.
const (
	StageTrain   Stage = iota // online MRF training (per Diagnose/WhatIf call)
	StagePrune                // candidate search-space pruning (threshold BFS)
	StageTest                 // per-candidate counterfactual tests (aggregate)
	StageRank                 // cause ranking + partial-result assembly
	StageExplain              // explanation-chain generation
	numStages
)

var stageNames = [numStages]string{"train", "prune", "test", "rank", "explain"}

// String returns the stable lowercase stage name used in breakdown tables,
// observer events, and exported metrics.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists all pipeline stages in execution order.
func Stages() []Stage {
	return []Stage{StageTrain, StagePrune, StageTest, StageRank, StageExplain}
}

// Counter identifies one monotonic pipeline counter.
type Counter uint8

// The pipeline counters. Names (see Counter.Name) are the stable exported
// identifiers used in snapshots and the Prometheus exporter.
const (
	// CtrFactorsTrained counts per-metric factors fitted from scratch.
	CtrFactorsTrained Counter = iota
	// CtrFactorCacheHits / CtrFactorCacheMisses count factor-cache lookups
	// during training (zero when no cache is configured).
	CtrFactorCacheHits
	CtrFactorCacheMisses
	// CtrSubgraphCacheHits / CtrSubgraphCacheMisses count shortest-path
	// subgraph memoization lookups during candidate evaluation.
	CtrSubgraphCacheHits
	CtrSubgraphCacheMisses
	// CtrGibbsSamples counts Monte-Carlo draws of the Gibbs-variant
	// resampler, across all candidates and both (counterfactual, factual)
	// runs.
	CtrGibbsSamples
	// CtrEarlyStopDecisive counts counterfactual tests the sequential test
	// cut short; CtrEarlyStopExhausted counts tests that ran the full
	// sample budget (with early stopping enabled).
	CtrEarlyStopDecisive
	CtrEarlyStopExhausted
	// CtrCandidatesPruned counts graph entities the threshold BFS excluded
	// from the search space; CtrCandidatesTested counts candidates whose
	// counterfactual evaluation ran to completion; CtrCandidatesSkipped
	// counts candidates skipped by deadline, cancellation, or a recovered
	// evaluator panic.
	CtrCandidatesPruned
	CtrCandidatesTested
	CtrCandidatesSkipped
	// CtrCausesCertified counts candidates that passed the counterfactual
	// significance test.
	CtrCausesCertified
	// CtrReadRetries counts telemetry reads the resilience layer retried to
	// success; CtrReadFailures counts reads degraded to missing data after
	// retries; CtrBreakerTrips counts circuit-breaker open transitions.
	CtrReadRetries
	CtrReadFailures
	CtrBreakerTrips
	// CtrTrainParallelFits counts factor fits executed while the training
	// worker pool was active (pool size > 1); zero on serial training runs.
	CtrTrainParallelFits
	// CtrGibbsChains counts independent Gibbs chains launched by the
	// multi-chain sampler (Config.Chains >= 2); zero on the single-stream
	// sampler.
	CtrGibbsChains
	// CtrIngestBatches / CtrIngestPoints count telemetry batches and
	// individual observations accepted by the serve layer's ingest path;
	// CtrIngestShed counts batches rejected by admission control (429/503).
	CtrIngestBatches
	CtrIngestPoints
	CtrIngestShed
	// CtrDiagEnqueued / CtrDiagDequeued / CtrDiagCompleted trace the
	// bounded diagnosis work queue (live depth = enqueued − dequeued);
	// CtrDiagShed counts diagnosis requests rejected because the queue was
	// full or the daemon was draining.
	CtrDiagEnqueued
	CtrDiagDequeued
	CtrDiagCompleted
	CtrDiagShed
	// CtrWatchdogCancels counts diagnoses the serve watchdog cancelled (and
	// quarantined) for exceeding the stuck-diagnosis budget.
	CtrWatchdogCancels
	// CtrSnapshotsWritten / CtrSnapshotsRecovered count crash-safe state
	// snapshots persisted and restored by the serve layer.
	CtrSnapshotsWritten
	CtrSnapshotsRecovered
	// CtrIncTrainHits counts factors served from slid sufficient statistics
	// by the incremental trainer; CtrIncTrainRefits counts factors that fell
	// back to a full refit (initial anchors, selection changes, conditioning
	// or drift guards); CtrIncTrainDriftTrips counts the subset of refits
	// forced by the MASE drift score; CtrIncTrainReselects counts the subset
	// of hits that re-ranked features exactly and adopted a changed
	// selection in place (Gram rebuild, no full refit); CtrIncTrainSlides
	// counts window slides applied to the factor store's statistics.
	CtrIncTrainHits
	CtrIncTrainRefits
	CtrIncTrainDriftTrips
	CtrIncTrainReselects
	CtrIncTrainSlides
	// CtrTopologyQueries / CtrPerfQueries / CtrReportQueries count read
	// queries served by the daemon's operator query surface (topology
	// neighborhoods, per-entity performance summaries, report searches);
	// CtrReadShed counts read queries rejected by the read admission limit
	// or because the daemon was draining.
	CtrTopologyQueries
	CtrPerfQueries
	CtrReportQueries
	CtrReadShed
	// CtrReportsPersisted counts completed diagnosis reports durably
	// appended to the persisted report store.
	CtrReportsPersisted
	numCounters
)

var counterNames = [numCounters]string{
	"factors_trained",
	"factor_cache_hits",
	"factor_cache_misses",
	"subgraph_cache_hits",
	"subgraph_cache_misses",
	"gibbs_samples",
	"earlystop_decisive",
	"earlystop_exhausted",
	"candidates_pruned",
	"candidates_tested",
	"candidates_skipped",
	"causes_certified",
	"read_retries",
	"read_failures",
	"breaker_trips",
	"train_parallel_fits",
	"gibbs_chains",
	"ingest_batches",
	"ingest_points",
	"ingest_shed",
	"diag_enqueued",
	"diag_dequeued",
	"diag_completed",
	"diag_shed",
	"watchdog_cancels",
	"snapshots_written",
	"snapshots_recovered",
	"inctrain_hits",
	"inctrain_refits",
	"inctrain_drift_trips",
	"inctrain_reselects",
	"inctrain_slides",
	"topology_queries",
	"perf_queries",
	"report_queries",
	"read_shed",
	"reports_persisted",
}

// Name returns the stable snake_case counter name.
func (c Counter) Name() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// Counters lists every counter in declaration order.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Hist identifies one power-of-two histogram.
type Hist uint8

// The pipeline histograms.
const (
	// HistSamplesPerTest is the Monte-Carlo draw count per candidate
	// counterfactual test (shows what early stopping saves).
	HistSamplesPerTest Hist = iota
	// HistTestWallMicros is per-candidate evaluation wall time in µs.
	HistTestWallMicros
	numHists
)

var histNames = [numHists]string{"samples_per_test", "test_wall_micros"}

// Name returns the stable snake_case histogram name.
func (h Hist) Name() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "unknown"
}

// Observer receives the live event stream of an enabled Recorder. All
// callbacks are serialized by the Recorder (even when events originate on
// concurrent DiagnoseParallel workers), so implementations need no internal
// locking; they must not block, since they run inline with the pipeline.
type Observer interface {
	// StageStart fires when a pipeline stage begins.
	StageStart(st Stage)
	// StageEnd fires when a stage completes, with its wall-clock duration
	// and the process CPU time consumed while it ran (0 where the platform
	// offers no cheap process CPU clock).
	StageEnd(st Stage, wall, cpu time.Duration)
	// Progress fires as long-running stages advance — for StageTest, after
	// every candidate: done of total evaluated, entity naming the candidate
	// just finished.
	Progress(st Stage, done, total int, entity string)
}

// stageAgg accumulates one stage's span totals.
type stageAgg struct {
	calls atomic.Int64
	wall  atomic.Int64 // nanoseconds
	cpu   atomic.Int64 // nanoseconds
}

// Recorder collects the instrumentation of one diagnosis pipeline (or, via
// Global, of a whole process). The zero value is ready to use and disabled;
// all methods are safe on a nil *Recorder and safe for concurrent use.
type Recorder struct {
	enabled  atomic.Bool
	counters [numCounters]atomic.Int64
	stages   [numStages]stageAgg
	hists    [numHists]histogram

	mu        sync.Mutex
	observers []Observer
}

// New returns a disabled Recorder.
func New() *Recorder { return &Recorder{} }

var global = New()

// Global returns the process-wide Recorder. It starts disabled, so
// instrumented code paths that default to it (the core's training and
// inference, when no per-session Recorder is configured) pay only the atomic
// guard; cmd/murphybench -stats enables it.
func Global() *Recorder { return global }

// Enable turns collection and event dispatch on.
func (r *Recorder) Enable() {
	if r != nil {
		r.enabled.Store(true)
	}
}

// Disable turns collection off; accumulated data is kept.
func (r *Recorder) Disable() {
	if r != nil {
		r.enabled.Store(false)
	}
}

// Enabled reports whether the recorder is collecting.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Attach subscribes an observer to the event stream. Attaching does not
// enable the recorder.
func (r *Recorder) Attach(o Observer) {
	if r == nil || o == nil {
		return
	}
	r.mu.Lock()
	r.observers = append(r.observers, o)
	r.mu.Unlock()
}

// Reset zeroes all counters, stage aggregates, and histograms (observers and
// the enabled flag are kept). Concurrent writers may interleave with the
// zeroing; Reset is meant for quiescent points between runs.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.counters {
		r.counters[i].Store(0)
	}
	for i := range r.stages {
		r.stages[i].calls.Store(0)
		r.stages[i].wall.Store(0)
		r.stages[i].cpu.Store(0)
	}
	for i := range r.hists {
		r.hists[i].reset()
	}
}

// Add increments a counter by n. No-op when disabled.
func (r *Recorder) Add(c Counter, n int64) {
	if !r.Enabled() || c >= numCounters {
		return
	}
	r.counters[c].Add(n)
}

// Counter returns a counter's current value (0 on a nil recorder).
func (r *Recorder) Counter(c Counter) int64 {
	if r == nil || c >= numCounters {
		return 0
	}
	return r.counters[c].Load()
}

// Observe records a value into a histogram. No-op when disabled.
func (r *Recorder) Observe(h Hist, v int64) {
	if !r.Enabled() || h >= numHists {
		return
	}
	r.hists[h].observe(v)
}

// Span is an in-flight stage measurement returned by StartStage. The zero
// value (from a disabled or nil recorder) is a no-op.
type Span struct {
	r     *Recorder
	st    Stage
	start time.Time
	cpu0  time.Duration
}

// StartStage opens a span for a stage, dispatching StageStart to observers.
// Close it with End; a Span from a disabled recorder costs nothing to End.
func (r *Recorder) StartStage(st Stage) Span {
	if !r.Enabled() || st >= numStages {
		return Span{}
	}
	r.dispatch(func(o Observer) { o.StageStart(st) })
	return Span{r: r, st: st, start: time.Now(), cpu0: processCPU()}
}

// End closes the span: the stage's call count, wall time, and process CPU
// delta are accumulated, and StageEnd is dispatched to observers.
func (s Span) End() {
	if s.r == nil {
		return
	}
	wall := time.Since(s.start)
	var cpu time.Duration
	if c := processCPU(); c > 0 && s.cpu0 > 0 && c > s.cpu0 {
		cpu = c - s.cpu0
	}
	agg := &s.r.stages[s.st]
	agg.calls.Add(1)
	agg.wall.Add(int64(wall))
	agg.cpu.Add(int64(cpu))
	s.r.dispatch(func(o Observer) { o.StageEnd(s.st, wall, cpu) })
}

// Progress emits a progress event for a stage. It is safe to call from
// concurrent workers; dispatch to observers is serialized.
func (r *Recorder) Progress(st Stage, done, total int, entity string) {
	if !r.Enabled() {
		return
	}
	r.dispatch(func(o Observer) { o.Progress(st, done, total, entity) })
}

// dispatch runs f for every observer while holding the observer lock, so
// observer implementations see a serialized event stream.
func (r *Recorder) dispatch(f func(Observer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, o := range r.observers {
		f(o)
	}
}

// StageStats is one stage's accumulated span totals.
type StageStats struct {
	Stage string        `json:"stage"`
	Calls int64         `json:"calls"`
	Wall  time.Duration `json:"wall_ns"`
	CPU   time.Duration `json:"cpu_ns"`
}

// HistBucket is one cumulative histogram bucket: Count observations ≤ Le.
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistStats is one histogram's snapshot.
type HistStats struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a Recorder's data, safe to serialize.
type Snapshot struct {
	Enabled  bool             `json:"enabled"`
	Stages   []StageStats     `json:"stages"`
	Counters map[string]int64 `json:"counters"`
	Hists    []HistStats      `json:"histograms,omitempty"`
}

// Snapshot copies the recorder's current data. Valid (all-zero, Enabled
// false) on a nil recorder.
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{Counters: map[string]int64{}}
	if r == nil {
		return snap
	}
	snap.Enabled = r.enabled.Load()
	for _, st := range Stages() {
		agg := &r.stages[st]
		snap.Stages = append(snap.Stages, StageStats{
			Stage: st.String(),
			Calls: agg.calls.Load(),
			Wall:  time.Duration(agg.wall.Load()),
			CPU:   time.Duration(agg.cpu.Load()),
		})
	}
	for _, c := range Counters() {
		snap.Counters[c.Name()] = r.counters[c].Load()
	}
	for i := Hist(0); i < numHists; i++ {
		snap.Hists = append(snap.Hists, r.hists[i].snapshot(i.Name()))
	}
	return snap
}
