//go:build !linux

package obs

import "time"

// processCPU is unavailable without a cheap platform CPU clock; spans report
// zero CPU and breakdowns show wall time only.
func processCPU() time.Duration { return 0 }
