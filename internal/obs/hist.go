package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two buckets: bucket i holds values v
// with 2^(i-1) < v <= 2^i-ish (precisely: bits.Len64(v) == i), bucket 0
// holds v <= 0. 64 buckets cover the full int64 range with no configuration
// and no allocation.
const histBuckets = 65

// histogram is a lock-free power-of-two histogram. Observations cost one
// bits.Len64 and two atomic adds.
type histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func (h *histogram) observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

func (h *histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// snapshot renders the histogram with cumulative counts, omitting the empty
// tail (only buckets up to the highest non-empty one are emitted).
func (h *histogram) snapshot(name string) HistStats {
	st := HistStats{Name: name, Count: h.count.Load(), Sum: h.sum.Load()}
	top := -1
	counts := make([]int64, histBuckets)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	cum := int64(0)
	for i := 0; i <= top; i++ {
		cum += counts[i]
		le := int64(0)
		if i > 0 {
			if i >= 63 {
				le = int64(^uint64(0) >> 1) // +Inf-ish: max int64
			} else {
				le = int64(1) << i
			}
		}
		st.Buckets = append(st.Buckets, HistBucket{Le: le, Count: cum})
	}
	return st
}
