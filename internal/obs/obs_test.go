package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// recordingObserver captures the serialized event stream.
type recordingObserver struct {
	mu     sync.Mutex
	events []string
}

func (o *recordingObserver) StageStart(st Stage) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, "start "+st.String())
}

func (o *recordingObserver) StageEnd(st Stage, wall, cpu time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, "end "+st.String())
}

func (o *recordingObserver) Progress(st Stage, done, total int, entity string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, "progress")
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Enable()
	r.Disable()
	r.Add(CtrGibbsSamples, 10)
	r.Observe(HistSamplesPerTest, 5)
	r.Progress(StageTest, 1, 2, "x")
	r.Attach(&recordingObserver{})
	r.Reset()
	sp := r.StartStage(StageTrain)
	sp.End()
	if r.Enabled() {
		t.Fatal("nil recorder cannot be enabled")
	}
	if r.Counter(CtrGibbsSamples) != 0 {
		t.Fatal("nil recorder holds no counters")
	}
	snap := r.Snapshot()
	if snap.Enabled || len(snap.Stages) != 0 {
		t.Fatalf("nil snapshot should be empty: %+v", snap)
	}
}

func TestDisabledRecorderCollectsNothing(t *testing.T) {
	r := New()
	obs := &recordingObserver{}
	r.Attach(obs)
	r.Add(CtrFactorsTrained, 5)
	r.Observe(HistSamplesPerTest, 100)
	sp := r.StartStage(StageTrain)
	sp.End()
	r.Progress(StageTest, 1, 1, "e")
	if r.Counter(CtrFactorsTrained) != 0 {
		t.Fatal("disabled recorder must not count")
	}
	if len(obs.events) != 0 {
		t.Fatalf("disabled recorder must not dispatch: %v", obs.events)
	}
	snap := r.Snapshot()
	if snap.Enabled {
		t.Fatal("snapshot should report disabled")
	}
	for _, st := range snap.Stages {
		if st.Calls != 0 {
			t.Fatalf("stage %s recorded while disabled", st.Stage)
		}
	}
}

func TestCountersSpansAndSnapshot(t *testing.T) {
	r := New()
	r.Enable()
	obs := &recordingObserver{}
	r.Attach(obs)
	r.Add(CtrFactorsTrained, 3)
	r.Add(CtrFactorsTrained, 2)
	sp := r.StartStage(StageTrain)
	time.Sleep(time.Millisecond)
	sp.End()
	r.Progress(StageTest, 1, 4, "cand")

	if got := r.Counter(CtrFactorsTrained); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	snap := r.Snapshot()
	if !snap.Enabled {
		t.Fatal("snapshot should report enabled")
	}
	if snap.Counters["factors_trained"] != 5 {
		t.Fatalf("snapshot counter = %d", snap.Counters["factors_trained"])
	}
	var train StageStats
	for _, st := range snap.Stages {
		if st.Stage == "train" {
			train = st
		}
	}
	if train.Calls != 1 || train.Wall <= 0 {
		t.Fatalf("train stage = %+v", train)
	}
	want := []string{"start train", "end train", "progress"}
	if len(obs.events) != len(want) {
		t.Fatalf("events = %v", obs.events)
	}
	for i := range want {
		if obs.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, obs.events[i], want[i])
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	r.Enable()
	for _, v := range []int64{0, 1, 2, 3, 1000, 5000} {
		r.Observe(HistSamplesPerTest, v)
	}
	snap := r.Snapshot()
	var h HistStats
	for _, hs := range snap.Hists {
		if hs.Name == "samples_per_test" {
			h = hs
		}
	}
	if h.Count != 6 || h.Sum != 6006 {
		t.Fatalf("hist = %+v", h)
	}
	// Cumulative counts must be monotone and end at Count.
	last := int64(0)
	for _, b := range h.Buckets {
		if b.Count < last {
			t.Fatalf("non-monotone buckets: %+v", h.Buckets)
		}
		last = b.Count
	}
	if last != h.Count {
		t.Fatalf("cumulative tail %d != count %d", last, h.Count)
	}
}

func TestResetZeroes(t *testing.T) {
	r := New()
	r.Enable()
	r.Add(CtrGibbsSamples, 7)
	sp := r.StartStage(StageRank)
	sp.End()
	r.Observe(HistTestWallMicros, 42)
	r.Reset()
	snap := r.Snapshot()
	if snap.Counters["gibbs_samples"] != 0 {
		t.Fatal("counter survived reset")
	}
	for _, st := range snap.Stages {
		if st.Calls != 0 {
			t.Fatal("stage agg survived reset")
		}
	}
	for _, h := range snap.Hists {
		if h.Count != 0 {
			t.Fatal("hist survived reset")
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	r.Enable()
	r.Attach(&recordingObserver{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(CtrGibbsSamples, 1)
				r.Observe(HistSamplesPerTest, int64(i))
				r.Progress(StageTest, i, 200, "e")
				sp := r.StartStage(StageTest)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(CtrGibbsSamples); got != 1600 {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestStageAndCounterNames(t *testing.T) {
	if StageTrain.String() != "train" || StageExplain.String() != "explain" {
		t.Fatal("stage names changed")
	}
	if Stage(200).String() != "unknown" || Counter(200).Name() != "unknown" || Hist(200).Name() != "unknown" {
		t.Fatal("out-of-range names should be unknown")
	}
	seen := map[string]bool{}
	for _, c := range Counters() {
		if c.Name() == "" || seen[c.Name()] {
			t.Fatalf("counter name collision or empty: %q", c.Name())
		}
		seen[c.Name()] = true
	}
}

func TestTableRendersNonEmptyStages(t *testing.T) {
	r := New()
	r.Enable()
	sp := r.StartStage(StageTrain)
	sp.End()
	r.Add(CtrFactorsTrained, 12)
	table := r.Snapshot().Table()
	if !strings.Contains(table, "train") || !strings.Contains(table, "factors_trained") {
		t.Fatalf("table missing data:\n%s", table)
	}
	if strings.Contains(table, "explain") {
		t.Fatalf("table should omit idle stages:\n%s", table)
	}
}
