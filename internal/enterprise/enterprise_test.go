package enterprise

import (
	"testing"

	"murphy/internal/graph"
	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

func testOpts() GenOptions {
	return GenOptions{Apps: 7, Hosts: 6, Switches: 2, MaxVMsPerTier: 2, Steps: 160, Seed: 3}
}

func TestGenerateTopology(t *testing.T) {
	env, err := Generate(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(env.AppNames()) != 7 {
		t.Fatalf("apps = %d", len(env.AppNames()))
	}
	db := env.DB
	// Every app has a client flow associated with a web VM.
	for i := range env.apps {
		cf := env.ClientFlow(i)
		if db.Entity(cf) == nil || db.Entity(cf).Type != telemetry.TypeFlow {
			t.Fatalf("app %d client flow malformed", i)
		}
		if len(db.Neighbors(cf)) < 2 {
			t.Fatalf("client flow %s should touch client and web VM", cf)
		}
		if db.Entity(env.DBVM(i)).Tier != "db" {
			t.Fatal("DBVM should be db tier")
		}
		if db.Entity(env.WebVM(i)).Tier != "web" {
			t.Fatal("WebVM should be web tier")
		}
	}
	// Infra entities exist.
	if db.Entity("host-0") == nil || db.Entity("switch-0") == nil {
		t.Fatal("infra entities missing")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenOptions{}); err == nil {
		t.Fatal("zero options should error")
	}
}

func TestRunProducesCoupledMetrics(t *testing.T) {
	env, err := Generate(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	db := env.DB
	if db.Len() != 160 {
		t.Fatalf("timeline = %d", db.Len())
	}
	// Flow throughput should correlate strongly with the web VM's CPU — the
	// coupling the MRF learns from.
	for i := 0; i < 3; i++ {
		thr := db.Window(env.ClientFlow(i), telemetry.MetricThroughput, 0, db.Len())
		cpu := db.Window(env.WebVM(i), telemetry.MetricCPU, 0, db.Len())
		if r := stats.AbsPearson(thr, cpu); r < 0.5 {
			t.Fatalf("app %d: flow->VM coupling too weak: r=%v", i, r)
		}
	}
	// All VM CPU values in range.
	for i := range env.apps {
		cpu := db.Window(env.WebVM(i), telemetry.MetricCPU, 0, db.Len())
		for _, v := range cpu {
			if v < 0 || v > 1 {
				t.Fatalf("cpu out of range: %v", v)
			}
		}
	}
}

func TestRunTwiceFails(t *testing.T) {
	env, err := Generate(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestRelationshipGraphHasManyCycles(t *testing.T) {
	env, err := Generate(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(env.DB, env.DB.AppMembers(env.AppNames()[0]), -1)
	if err != nil {
		t.Fatal(err)
	}
	// Bidirectional associations make 2-cycles ubiquitous (§2.2).
	if g.CountCycles2() < 20 {
		t.Fatalf("2-cycles = %d, want plenty", g.CountCycles2())
	}
	if g.CountCycles3() < 1 {
		t.Fatalf("3-cycles = %d, want some", g.CountCycles3())
	}
	// Every VM of the app should be on a cycle.
	for _, id := range env.DB.AppMembers(env.AppNames()[0]) {
		if env.DB.Entity(id).Type != telemetry.TypeVM {
			continue
		}
		ix, ok := g.Index(id)
		if !ok {
			continue
		}
		if !g.InCycle(ix) {
			t.Fatalf("VM %s not on any cycle", id)
		}
	}
}

func TestIncidentLibraryComplete(t *testing.T) {
	env, err := Generate(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	incs, err := Incidents(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 13 {
		t.Fatalf("incidents = %d, want 13", len(incs))
	}
	calib := 0
	for i, inc := range incs {
		if inc.Index != i+1 {
			t.Fatalf("incident %d has index %d", i, inc.Index)
		}
		if len(inc.Truth) == 0 {
			t.Fatalf("incident %d has no ground truth", inc.Index)
		}
		for _, id := range inc.Truth {
			if env.DB.Entity(id) == nil {
				t.Fatalf("incident %d truth %q not an entity", inc.Index, id)
			}
		}
		if env.DB.Entity(inc.Symptom.Entity) == nil {
			t.Fatalf("incident %d symptom entity missing", inc.Index)
		}
		if inc.Calibration {
			calib++
		}
	}
	if calib != 2 {
		t.Fatalf("calibration incidents = %d, want 2 (§6.2)", calib)
	}
}

func TestIncidentsErrors(t *testing.T) {
	small := testOpts()
	small.Apps = 2
	env, err := Generate(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Incidents(env); err == nil {
		t.Fatal("too few apps should error")
	}
	shortOpts := testOpts()
	shortOpts.Steps = 50
	env2, err := Generate(shortOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Incidents(env2); err == nil {
		t.Fatal("too few steps should error")
	}
}

func TestRunIncidentCrawler(t *testing.T) {
	env, inc, err := RunIncident(testOpts(), ByIndex(2))
	if err != nil {
		t.Fatal(err)
	}
	if inc.Index != 2 {
		t.Fatalf("wrong incident: %d", inc.Index)
	}
	db := env.DB
	// The backend's CPU must be visibly higher in the fault window.
	sym := inc.Symptom
	series := db.Window(sym.Entity, sym.Metric, 0, db.Len())
	before := stats.Mean(series[inc.Start-30 : inc.Start])
	during := stats.Mean(series[inc.Start:])
	if during < before*1.3 {
		t.Fatalf("crawler incident should raise backend CPU: %v -> %v", before, during)
	}
	// The crawler flow throughput also spikes.
	thr := db.Window(inc.Truth[0], telemetry.MetricThroughput, 0, db.Len())
	if stats.Mean(thr[inc.Start:]) < stats.Mean(thr[:inc.Start])*3 {
		t.Fatal("crawler flow should be a heavy hitter")
	}
}

func TestRunIncidentDownedVMs(t *testing.T) {
	env, inc, err := RunIncident(testOpts(), ByIndex(1))
	if err != nil {
		t.Fatal(err)
	}
	// The crashed VMs report up=0 during the window.
	for _, vm := range inc.Truth {
		up := env.DB.At(vm, telemetry.MetricUp, inc.Start+2)
		if up != 0 {
			t.Fatalf("crashed VM %s reports up=%v", vm, up)
		}
	}
	if _, _, err := RunIncident(testOpts(), func([]*Incident) *Incident { return nil }); err == nil {
		t.Fatal("nil selection should error")
	}
}

func TestIncidentSymptomDetectable(t *testing.T) {
	// For a sample of incidents, the symptom entity's metric must be
	// anomalous at the end of the run: |z| >= 2 vs pre-incident history.
	for _, idx := range []int{2, 3, 5, 7, 12, 13} {
		env, inc, err := RunIncident(testOpts(), ByIndex(idx))
		if err != nil {
			t.Fatalf("incident %d: %v", idx, err)
		}
		db := env.DB
		series := db.Window(inc.Symptom.Entity, inc.Symptom.Metric, 0, db.Len())
		hist := series[:inc.Start]
		cur := series[len(series)-1]
		z := stats.ZScore(cur, hist)
		if inc.Symptom.High && z < 2 {
			t.Fatalf("incident %d: symptom z=%v, want >=2", idx, z)
		}
		if !inc.Symptom.High && z > -2 {
			t.Fatalf("incident %d: symptom z=%v, want <=-2", idx, z)
		}
	}
}

func TestDeterminism(t *testing.T) {
	e1, _, err := RunIncident(testOpts(), ByIndex(4))
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := RunIncident(testOpts(), ByIndex(4))
	if err != nil {
		t.Fatal(err)
	}
	id := e1.ClientFlow(3)
	a := e1.DB.Window(id, telemetry.MetricRTT, 0, e1.DB.Len())
	b := e2.DB.Window(id, telemetry.MetricRTT, 0, e2.DB.Len())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce identical telemetry")
		}
	}
}

func TestRunIncidentRecordsEvent(t *testing.T) {
	env, inc, err := RunIncident(testOpts(), ByIndex(7))
	if err != nil {
		t.Fatal(err)
	}
	evs := env.DB.EventsSince(inc.Start)
	if len(evs) != 1 {
		t.Fatalf("events = %+v, want the incident's config change", evs)
	}
	if evs[0].Entity != inc.Truth[0] || evs[0].Kind != telemetry.EventConfigChanged {
		t.Fatalf("event = %+v", evs[0])
	}
}
