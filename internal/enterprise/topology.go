// Package enterprise emulates the production environment the paper draws its
// datasets from: a private cloud of hosts, VMs, vNICs, ToR switches and
// ports, datastores, and TCP flows, monitored by an Aria-Operations-like
// platform. Metric dynamics are coupled — VM load follows incoming flows,
// host CPU aggregates its VMs and feeds back into their latency, switch-port
// congestion inflates flow RTT — so the relationship graph carries genuine
// cyclic influence (§2.2). On top of the generator sit the 13-incident
// library mirroring Table 1 and the large multi-app metrics dataset used by
// the model-selection and cyclic-effects micro-benchmarks (Fig 8a/8b).
package enterprise

import (
	"fmt"
	"math/rand"

	"murphy/internal/telemetry"
)

// GenOptions sizes the generated environment.
type GenOptions struct {
	// Apps is the number of applications.
	Apps int
	// Hosts is the size of the shared host pool.
	Hosts int
	// Switches is the number of ToR switches (each host connects to one
	// port of one switch).
	Switches int
	// MaxVMsPerTier caps the random per-tier VM count (min is 1).
	MaxVMsPerTier int
	// Steps is the number of 10-minute slices to simulate (one week ≈ 1008).
	Steps int
	// Seed drives topology layout and metric noise.
	Seed int64
}

// DefaultGenOptions returns a small but structurally complete environment.
func DefaultGenOptions() GenOptions {
	return GenOptions{Apps: 6, Hosts: 8, Switches: 2, MaxVMsPerTier: 2, Steps: 320, Seed: 1}
}

// vmRef ties a VM to its supporting entities.
type vmRef struct {
	vm, vnic telemetry.EntityID
	host     int
	// loadShare is this VM's share of its tier's load.
	loadShare float64
}

// flowRef is one inter-entity TCP flow.
type flowRef struct {
	id       telemetry.EntityID
	src, dst int // indices into app.vms, or -1 for the client
	// ports the flow traverses (switch ports of src/dst hosts).
	bytesPerReq float64
}

// appTopo is one generated application.
type appTopo struct {
	name string
	// client is the external client VM (e.g. a crawler); clientFlow is the
	// flow from it to the web tier.
	client     telemetry.EntityID
	clientFlow telemetry.EntityID
	// vms lists all VMs: web tier first, then app, then db.
	vms   []vmRef
	webIx []int
	appIx []int
	dbIx  []int
	flows []flowRef
	// demand parameters.
	baseDemand float64
	phase      float64
	datastore  telemetry.EntityID
	// lastFlowBytes caches per-flow throughput for the slice being recorded.
	lastFlowBytes map[telemetry.EntityID]float64
}

// hostInfo is one shared physical host.
type hostInfo struct {
	id       telemetry.EntityID
	pnic     telemetry.EntityID
	switchIx int
	port     telemetry.EntityID
	capacity float64 // CPU capacity in load units
}

// Env is a generated enterprise environment, pre-incident.
type Env struct {
	Opts  GenOptions
	DB    *telemetry.DB
	apps  []*appTopo
	hosts []*hostInfo
	rng   *rand.Rand
}

// AppNames returns the generated application names in order.
func (e *Env) AppNames() []string {
	out := make([]string, len(e.apps))
	for i, a := range e.apps {
		out[i] = a.name
	}
	return out
}

// DBVM returns the first database-tier VM of app i (the "backend SQL server"
// of Appendix A.2).
func (e *Env) DBVM(appIx int) telemetry.EntityID {
	a := e.apps[appIx]
	return a.vms[a.dbIx[0]].vm
}

// Client returns the external client VM of app i (the crawler of Fig 1).
func (e *Env) Client(appIx int) telemetry.EntityID { return e.apps[appIx].client }

// ClientFlow returns the client→web flow of app i.
func (e *Env) ClientFlow(appIx int) telemetry.EntityID { return e.apps[appIx].clientFlow }

// Flows returns all flow entities of app i: the client flow plus the
// inter-tier flows, in topology order.
func (e *Env) Flows(appIx int) []telemetry.EntityID {
	a := e.apps[appIx]
	out := []telemetry.EntityID{a.clientFlow}
	for _, fl := range a.flows {
		out = append(out, fl.id)
	}
	return out
}

// FrontendFlows returns the flows of app i that send requests into the web
// (front-end) tier — the flow population Appendix A.2 draws its perturbed
// top-5 from. In this topology that is the client flow; environments with
// several external clients would return several.
func (e *Env) FrontendFlows(appIx int) []telemetry.EntityID {
	return []telemetry.EntityID{e.apps[appIx].clientFlow}
}

// WebVM returns the first web-tier VM of app i.
func (e *Env) WebVM(appIx int) telemetry.EntityID {
	a := e.apps[appIx]
	return a.vms[a.webIx[0]].vm
}

// Generate lays out the topology and registers all entities and
// associations; metrics are produced by Run.
func Generate(opts GenOptions) (*Env, error) {
	if opts.Apps < 1 || opts.Hosts < 1 || opts.Switches < 1 {
		return nil, fmt.Errorf("enterprise: need at least 1 app, host, and switch")
	}
	if opts.MaxVMsPerTier < 1 {
		opts.MaxVMsPerTier = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	db := telemetry.NewDB(600)
	env := &Env{Opts: opts, DB: db, rng: rng}

	// Switches and per-host ports.
	switches := make([]telemetry.EntityID, opts.Switches)
	for i := range switches {
		sid := telemetry.EntityID(fmt.Sprintf("switch-%d", i))
		switches[i] = sid
		if err := db.AddEntity(&telemetry.Entity{ID: sid, Type: telemetry.TypeSwitch, Name: string(sid)}); err != nil {
			return nil, err
		}
	}
	for h := 0; h < opts.Hosts; h++ {
		hid := telemetry.EntityID(fmt.Sprintf("host-%d", h))
		pnic := telemetry.EntityID(fmt.Sprintf("pnic-%d", h))
		swIx := h % opts.Switches
		port := telemetry.EntityID(fmt.Sprintf("swport-%d-%d", swIx, h))
		for _, e := range []*telemetry.Entity{
			{ID: hid, Type: telemetry.TypeHost, Name: string(hid)},
			{ID: pnic, Type: telemetry.TypePhysNIC, Name: string(pnic)},
			{ID: port, Type: telemetry.TypeSwitchPort, Name: string(port)},
		} {
			if err := db.AddEntity(e); err != nil {
				return nil, err
			}
		}
		for _, pair := range [][2]telemetry.EntityID{{hid, pnic}, {pnic, port}, {port, switches[swIx]}} {
			if err := db.Associate(pair[0], pair[1], telemetry.Bidirectional); err != nil {
				return nil, err
			}
		}
		env.hosts = append(env.hosts, &hostInfo{
			id: hid, pnic: pnic, switchIx: swIx, port: port,
			capacity: 3 + rng.Float64()*2,
		})
	}

	nextHost := 0
	place := func() int {
		h := nextHost % opts.Hosts
		nextHost++
		return h
	}

	for ai := 0; ai < opts.Apps; ai++ {
		app := &appTopo{
			name:       fmt.Sprintf("app-%02d", ai),
			baseDemand: 40 + rng.Float64()*60,
			phase:      rng.Float64() * 6.28,
		}
		addVM := func(tier string, k int) (int, error) {
			vmID := telemetry.EntityID(fmt.Sprintf("%s/%s-vm-%d", app.name, tier, k))
			nicID := telemetry.EntityID(fmt.Sprintf("%s/%s-vnic-%d", app.name, tier, k))
			h := place()
			if err := db.AddEntity(&telemetry.Entity{ID: vmID, Type: telemetry.TypeVM, Name: string(vmID), App: app.name, Tier: tier}); err != nil {
				return 0, err
			}
			if err := db.AddEntity(&telemetry.Entity{ID: nicID, Type: telemetry.TypeVirtualNIC, Name: string(nicID), App: app.name}); err != nil {
				return 0, err
			}
			for _, pair := range [][2]telemetry.EntityID{{vmID, nicID}, {vmID, env.hosts[h].id}, {nicID, env.hosts[h].pnic}} {
				if err := db.Associate(pair[0], pair[1], telemetry.Bidirectional); err != nil {
					return 0, err
				}
			}
			app.vms = append(app.vms, vmRef{vm: vmID, vnic: nicID, host: h})
			return len(app.vms) - 1, nil
		}
		tierCount := func() int { return 1 + rng.Intn(opts.MaxVMsPerTier) }
		for k, n := 0, tierCount(); k < n; k++ {
			ix, err := addVM("web", k)
			if err != nil {
				return nil, err
			}
			app.webIx = append(app.webIx, ix)
		}
		for k, n := 0, tierCount(); k < n; k++ {
			ix, err := addVM("app", k)
			if err != nil {
				return nil, err
			}
			app.appIx = append(app.appIx, ix)
		}
		for k, n := 0, tierCount(); k < n; k++ {
			ix, err := addVM("db", k)
			if err != nil {
				return nil, err
			}
			app.dbIx = append(app.dbIx, ix)
		}
		for tierIxs, share := range map[*[]int]float64{&app.webIx: 1, &app.appIx: 1, &app.dbIx: 1} {
			for _, ix := range *tierIxs {
				app.vms[ix].loadShare = share / float64(len(*tierIxs))
			}
		}
		// Client VM + flow into the web tier.
		app.client = telemetry.EntityID(app.name + "/client-vm")
		app.clientFlow = telemetry.EntityID(app.name + "/flow-client-web")
		if err := db.AddEntity(&telemetry.Entity{ID: app.client, Type: telemetry.TypeVM, Name: string(app.client), App: app.name, Tier: "client"}); err != nil {
			return nil, err
		}
		if err := db.AddEntity(&telemetry.Entity{ID: app.clientFlow, Type: telemetry.TypeFlow, Name: string(app.clientFlow), App: app.name}); err != nil {
			return nil, err
		}
		if err := db.Associate(app.client, app.clientFlow, telemetry.Bidirectional); err != nil {
			return nil, err
		}
		if err := db.Associate(app.clientFlow, app.vms[app.webIx[0]].vm, telemetry.Bidirectional); err != nil {
			return nil, err
		}
		// Flows are also related to their endpoints' vNICs, as the platform
		// records; together with the VM↔vNIC edge this yields the
		// 3-cycles §2.2 reports as pervasive.
		if err := db.Associate(app.clientFlow, app.vms[app.webIx[0]].vnic, telemetry.Bidirectional); err != nil {
			return nil, err
		}
		// Inter-tier flows: each web VM to first app VM, each app VM to
		// first db VM.
		addFlow := func(srcIx, dstIx int, label string) error {
			fid := telemetry.EntityID(fmt.Sprintf("%s/flow-%s", app.name, label))
			if err := db.AddEntity(&telemetry.Entity{ID: fid, Type: telemetry.TypeFlow, Name: string(fid), App: app.name}); err != nil {
				return err
			}
			if err := db.Associate(app.vms[srcIx].vm, fid, telemetry.Bidirectional); err != nil {
				return err
			}
			if err := db.Associate(fid, app.vms[dstIx].vm, telemetry.Bidirectional); err != nil {
				return err
			}
			if err := db.Associate(fid, app.vms[srcIx].vnic, telemetry.Bidirectional); err != nil {
				return err
			}
			if err := db.Associate(fid, app.vms[dstIx].vnic, telemetry.Bidirectional); err != nil {
				return err
			}
			app.flows = append(app.flows, flowRef{id: fid, src: srcIx, dst: dstIx, bytesPerReq: 1200 + rng.Float64()*800})
			return nil
		}
		for i, w := range app.webIx {
			if err := addFlow(w, app.appIx[i%len(app.appIx)], fmt.Sprintf("web%d-app", i)); err != nil {
				return nil, err
			}
		}
		for i, a := range app.appIx {
			if err := addFlow(a, app.dbIx[i%len(app.dbIx)], fmt.Sprintf("app%d-db", i)); err != nil {
				return nil, err
			}
		}
		// Datastore backing the db tier.
		app.datastore = telemetry.EntityID(app.name + "/datastore")
		if err := db.AddEntity(&telemetry.Entity{ID: app.datastore, Type: telemetry.TypeDatastore, Name: string(app.datastore), App: app.name}); err != nil {
			return nil, err
		}
		if err := db.Associate(app.vms[app.dbIx[0]].vm, app.datastore, telemetry.Bidirectional); err != nil {
			return nil, err
		}
		env.apps = append(env.apps, app)
	}
	return env, nil
}
