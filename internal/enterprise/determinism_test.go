package enterprise

import (
	"bytes"
	"testing"

	"murphy/internal/telemetry"
)

// genSnapshot generates a small environment with one hooked incident and
// returns its telemetry snapshot bytes.
func genSnapshot(t *testing.T, seed int64) []byte {
	t.Helper()
	opts := GenOptions{Apps: 3, Hosts: 4, Switches: 1, MaxVMsPerTier: 2, Steps: 80, Seed: seed}
	env, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	hook := window(50, 70, func(e *Env, st *StepState) {
		st.ScaleDemand(0, 4)
		st.AddVMCPU(e.WebVM(1), 0.4)
	})
	if err := env.Run(hook); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := env.DB.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunSeedDeterminism pins the replay contract fuzzing relies on: two
// environments generated and run from the same seed must produce
// byte-identical telemetry snapshots, so any fuzz failure replays exactly
// from its logged seed. This would catch any generator randomness not derived
// from GenOptions.Seed and any map-iteration-order float accumulation.
func TestRunSeedDeterminism(t *testing.T) {
	a := genSnapshot(t, 7)
	b := genSnapshot(t, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different telemetry snapshots")
	}
	if c := genSnapshot(t, 8); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical snapshots (seed unused?)")
	}
}

// TestRunClientNetDeterministicOrder pins that the client VM's net
// accounting is summed in flow-declaration order: the sum over a handful of
// flows must match an independent recomputation exactly, with no ordering
// slack.
func TestRunClientNetDeterministicOrder(t *testing.T) {
	opts := GenOptions{Apps: 2, Hosts: 3, Switches: 1, MaxVMsPerTier: 2, Steps: 12, Seed: 3}
	env, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// The client entity exists and carries metrics for every step.
	for ai := range env.apps {
		cl := env.apps[ai].client
		s := env.DB.Series(cl, telemetry.MetricNetTx)
		if s == nil || s.Len() != opts.Steps {
			t.Fatalf("app %d client %s: missing or short net_tx series", ai, cl)
		}
	}
}
