package enterprise

import (
	"fmt"

	"murphy/internal/telemetry"
)

// Incident is one Table-1-style production incident: a fault hook injected
// into the simulation, the operator-decided ground truth, and the observed
// problematic symptom(s) a trouble ticket would name.
type Incident struct {
	// Index is the 1-based incident number matching Table 1's rows.
	Index int
	// Name summarizes the observed problem (Table 1 left column).
	Name string
	// AppIx is the affected application's index.
	AppIx int
	// Hook injects the fault during [Start, End) slices.
	Hook Hook
	// Start and End bound the fault window.
	Start, End int
	// Truth is the operator-decided resolution set. As in the paper, for
	// some incidents this is not the physically true cause (e.g. incident
	// 10, where operators rebooted the nodes although flows caused the
	// load).
	Truth []telemetry.EntityID
	// Symptom is the problematic (entity, metric) the operator hands to the
	// diagnosis tool.
	Symptom telemetry.Symptom
	// Calibration marks the incidents with fully certain ground truth that
	// §6.2 calibrates false-negative rates on.
	Calibration bool
}

// window returns a hook that applies f only inside [start, end).
func window(start, end int, f Hook) Hook {
	return func(env *Env, st *StepState) {
		if st.t >= start && st.t < end {
			f(env, st)
		}
	}
}

// Incidents instantiates the 13-incident library on a generated environment.
// The fault window occupies the final tenth of the timeline so the training
// window includes in-incident points (§6.5.1). Environments need at least 7
// apps for all incidents to target distinct applications.
func Incidents(env *Env) ([]*Incident, error) {
	steps := env.Opts.Steps
	if steps < 100 {
		return nil, fmt.Errorf("enterprise: need at least 100 steps for the incident library")
	}
	if len(env.apps) < 7 {
		return nil, fmt.Errorf("enterprise: need at least 7 apps, have %d", len(env.apps))
	}
	start := steps - steps/10
	end := steps
	app := func(i int) *appTopo { return env.apps[i%len(env.apps)] }

	var out []*Incident

	// 1. Two app nodes crashed due to a plugin.
	a1 := app(0)
	crash1, crash2 := a1.vms[a1.appIx[0]].vm, a1.vms[a1.webIx[0]].vm
	out = append(out, &Incident{
		Index: 1, Name: "two app nodes crashed due to a plugin", AppIx: 0,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.down[crash1] = true
			st.down[crash2] = true
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{crash1, crash2},
		Symptom: telemetry.Symptom{Entity: a1.clientFlow, Metric: telemetry.MetricThroughput, High: false},
	})

	// 2. App returning a 502 error — the Figure 1 crawler incident: the
	// client flow turns heavy hitter, saturating backend CPU. Calibration
	// incident (validated with operators in the paper).
	a2 := app(1)
	backend := a2.vms[a2.dbIx[0]].vm
	out = append(out, &Incident{
		Index: 2, Name: "app returning a 502 error (crawler heavy hitter)", AppIx: 1,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.demand[1%len(env.apps)] *= 8
		}),
		Start: start, End: end,
		Truth:       []telemetry.EntityID{a2.clientFlow, a2.client},
		Symptom:     telemetry.Symptom{Entity: backend, Metric: telemetry.MetricCPU, High: true},
		Calibration: true,
	})

	// 3. App unavailable — db VM memory exhaustion stalls the app.
	a3 := app(2)
	dbvm3 := a3.vms[a3.dbIx[0]].vm
	out = append(out, &Incident{
		Index: 3, Name: "app unavailable (db memory exhaustion)", AppIx: 2,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.extraVMMem[dbvm3] = 0.6
			st.extraVMCPU[dbvm3] = 0.85
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{dbvm3},
		Symptom: telemetry.Symptom{Entity: a3.vms[a3.webIx[0]].vm, Metric: telemetry.MetricCPU, High: true},
	})

	// 4. App slow, experiencing timeouts — a bulk backup flow congests the
	// ToR port of the web host, inflating flow RTT.
	a4 := app(3)
	victimPort := env.hosts[a4.vms[a4.webIx[0]].host].port
	out = append(out, &Incident{
		Index: 4, Name: "app slow, experiencing timeouts (port congestion)", AppIx: 3,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.extraPortLoad[victimPort] += 5e5
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{victimPort},
		Symptom: telemetry.Symptom{Entity: a4.clientFlow, Metric: telemetry.MetricRTT, High: true},
	})

	// 5. App unavailable — noisy-neighbor VM from another app overloads the
	// host the db VM lives on.
	a5 := app(4)
	victimHostIx := a5.vms[a5.dbIx[0]].host
	var noisy telemetry.EntityID
	for _, other := range env.apps {
		if other == a5 {
			continue
		}
		for _, vr := range other.vms {
			if vr.host == victimHostIx {
				noisy = vr.vm
				break
			}
		}
		if noisy != "" {
			break
		}
	}
	if noisy == "" {
		// Fall back to the client VM of another app pinned via extra CPU on
		// the host through a co-located web VM.
		noisy = env.apps[(4+1)%len(env.apps)].vms[0].vm
	}
	out = append(out, &Incident{
		Index: 5, Name: "app unavailable (noisy neighbor on shared host)", AppIx: 4,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.extraVMCPU[noisy] = 3.5
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{noisy, env.hosts[victimHostIx].id},
		Symptom: telemetry.Symptom{Entity: a5.vms[a5.dbIx[0]].vm, Metric: telemetry.MetricCPU, High: true},
	})

	// 6. App redirecting to a maintenance page — web VM taken down.
	a6 := app(5)
	web6 := a6.vms[a6.webIx[0]].vm
	out = append(out, &Incident{
		Index: 6, Name: "app redirecting to a maintenance page", AppIx: 5,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.down[web6] = true
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{web6},
		Symptom: telemetry.Symptom{Entity: a6.clientFlow, Metric: telemetry.MetricThroughput, High: false},
	})

	// 7. Heap memory issue with a node — one VM's memory climbs to the roof.
	// Calibration incident (unambiguous ground truth).
	a7 := app(6)
	heapVM := a7.vms[a7.appIx[0]].vm
	out = append(out, &Incident{
		Index: 7, Name: "heap memory issue with a node", AppIx: 6,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.extraVMMem[heapVM] = 0.55
		}),
		Start: start, End: end,
		Truth:       []telemetry.EntityID{heapVM},
		Symptom:     telemetry.Symptom{Entity: heapVM, Metric: telemetry.MetricMem, High: true},
		Calibration: true,
	})

	// 8. App performance degradation — sustained demand surge (growing
	// crawler-like load, smaller than incident 2).
	a8 := app(0)
	out = append(out, &Incident{
		Index: 8, Name: "app performance degradation (demand surge)", AppIx: 0,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.demand[0] *= 4
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{a8.clientFlow, a8.client},
		Symptom: telemetry.Symptom{Entity: a8.vms[a8.appIx[0]].vm, Metric: telemetry.MetricCPU, High: true},
	})

	// 9. App failing with 503 error — datastore saturation stalls the db VM.
	a9 := app(1)
	db9 := a9.vms[a9.dbIx[0]].vm
	out = append(out, &Incident{
		Index: 9, Name: "app failing with 503 error (datastore saturation)", AppIx: 1,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.extraVMDisk[db9] = 1.5
			st.extraVMCPU[db9] = 0.4
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{a9.datastore, db9},
		Symptom: telemetry.Symptom{Entity: db9, Metric: telemetry.MetricCPU, High: true},
	})

	// 10. Health check failing on 2 nodes — heavy flows push traffic at two
	// web VMs; operators rebooted the nodes, so the operator-decided truth
	// is the nodes, not the flows (the paper's mismatch case).
	a10 := app(2)
	web10 := a10.vms[a10.webIx[0]].vm
	app10 := a10.vms[a10.appIx[0]].vm
	out = append(out, &Incident{
		Index: 10, Name: "health check failing on 2 nodes", AppIx: 2,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.demand[2%len(env.apps)] *= 5
			st.extraVMCPU[web10] = 0.4
			st.extraVMCPU[app10] = 0.4
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{web10, app10},
		Symptom: telemetry.Symptom{Entity: web10, Metric: telemetry.MetricCPU, High: true},
	})

	// 11. App redirecting to a maintenance page (second occurrence,
	// different app): web VM down plus degraded app tier.
	a11 := app(3)
	web11 := a11.vms[a11.webIx[0]].vm
	out = append(out, &Incident{
		Index: 11, Name: "app redirecting to a maintenance page (2)", AppIx: 3,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.down[web11] = true
			st.extraVMCPU[a11.vms[a11.appIx[0]].vm] = 0.2
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{web11},
		Symptom: telemetry.Symptom{Entity: a11.clientFlow, Metric: telemetry.MetricThroughput, High: false},
	})

	// 12. Slowness in loading data — db disk stress with datastore impact.
	a12 := app(4)
	db12 := a12.vms[a12.dbIx[0]].vm
	out = append(out, &Incident{
		Index: 12, Name: "slowness in loading data", AppIx: 4,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.extraVMDisk[db12] = 2.0
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{db12, a12.datastore},
		Symptom: telemetry.Symptom{Entity: db12, Metric: telemetry.MetricDiskRead, High: true},
	})

	// 13. Performance alert about a node exceeding thresholds — an isolated
	// CPU excursion with no downstream impact; every scheme reported zero
	// FPs in the paper.
	a13 := app(5)
	alertVM := a13.vms[a13.appIx[0]].vm
	out = append(out, &Incident{
		Index: 13, Name: "performance alert about a node exceeding thresholds", AppIx: 5,
		Hook: window(start, end, func(env *Env, st *StepState) {
			st.extraVMCPU[alertVM] = 0.35
		}),
		Start: start, End: end,
		Truth:   []telemetry.EntityID{alertVM},
		Symptom: telemetry.Symptom{Entity: alertVM, Metric: telemetry.MetricCPU, High: true},
	})

	return out, nil
}

// RunIncident generates a fresh environment with the same options, replays
// the incident's hook, and returns the environment ready for diagnosis. Each
// incident gets its own environment, as each real incident is a separate
// trouble ticket.
func RunIncident(opts GenOptions, inc func([]*Incident) *Incident) (*Env, *Incident, error) {
	env, err := Generate(opts)
	if err != nil {
		return nil, nil, err
	}
	all, err := Incidents(env)
	if err != nil {
		return nil, nil, err
	}
	chosen := inc(all)
	if chosen == nil {
		return nil, nil, fmt.Errorf("enterprise: no incident selected")
	}
	if err := env.Run(chosen.Hook); err != nil {
		return nil, nil, err
	}
	// The platform records the configuration change behind the incident so
	// Murphy can surface it next to the diagnosis (§4.2 edge cases).
	if err := env.DB.RecordEvent(telemetry.Event{
		Slice:  chosen.Start,
		Kind:   telemetry.EventConfigChanged,
		Entity: chosen.Truth[0],
		Detail: chosen.Name,
	}); err != nil {
		return nil, nil, err
	}
	return env, chosen, nil
}

// ByIndex returns a selector for RunIncident picking the 1-based incident i.
func ByIndex(i int) func([]*Incident) *Incident {
	return func(all []*Incident) *Incident {
		for _, inc := range all {
			if inc.Index == i {
				return inc
			}
		}
		return nil
	}
}
