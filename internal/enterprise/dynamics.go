package enterprise

import (
	"fmt"
	"math"

	"murphy/internal/telemetry"
)

// StepState is the mutable per-slice simulation state an incident can hook.
type StepState struct {
	t int
	// demand per app (requests per second offered by the app's client).
	demand []float64
	// extraVMCPU / extraVMMem / extraVMDisk add load to specific VMs.
	extraVMCPU  map[telemetry.EntityID]float64
	extraVMMem  map[telemetry.EntityID]float64
	extraVMDisk map[telemetry.EntityID]float64
	// down marks entities as non-functional this slice.
	down map[telemetry.EntityID]bool
	// extraFlowBytes adds raw throughput to specific flows.
	extraFlowBytes map[telemetry.EntityID]float64
	// extraPortLoad adds traffic to specific switch ports.
	extraPortLoad map[telemetry.EntityID]float64
}

// Hook mutates the simulation state at each slice; incidents are hooks.
type Hook func(env *Env, st *StepState)

// Run simulates the environment for opts.Steps slices, applying the given
// hooks each step, and fills the env's telemetry database. It can be called
// once per generated Env.
func (e *Env) Run(hooks ...Hook) error {
	if e.DB.Len() != 0 {
		return fmt.Errorf("enterprise: Run called twice on the same Env")
	}
	rng := e.rng
	for t := 0; t < e.Opts.Steps; t++ {
		st := &StepState{
			t:              t,
			demand:         make([]float64, len(e.apps)),
			extraVMCPU:     map[telemetry.EntityID]float64{},
			extraVMMem:     map[telemetry.EntityID]float64{},
			extraVMDisk:    map[telemetry.EntityID]float64{},
			down:           map[telemetry.EntityID]bool{},
			extraFlowBytes: map[telemetry.EntityID]float64{},
			extraPortLoad:  map[telemetry.EntityID]float64{},
		}
		// Diurnal demand with noise (144 slices per day at 10-minute grain).
		for ai, app := range e.apps {
			d := app.baseDemand * (1 + 0.3*math.Sin(2*math.Pi*float64(t)/144+app.phase))
			d += rng.NormFloat64() * app.baseDemand * 0.04
			if d < 0 {
				d = 0
			}
			st.demand[ai] = d
		}
		for _, h := range hooks {
			h(e, st)
		}
		if err := e.record(st); err != nil {
			return err
		}
	}
	return nil
}

// record computes all coupled metrics for one slice and writes them.
func (e *Env) record(st *StepState) error {
	rng := e.rng
	t := st.t
	// Raw VM load per app tier.
	vmCPU := map[telemetry.EntityID]float64{}
	vmNet := map[telemetry.EntityID]float64{}
	hostLoad := make([]float64, len(e.hosts))
	portLoad := map[telemetry.EntityID]float64{}

	for ai, app := range e.apps {
		d := st.demand[ai]
		tierFactor := map[string]float64{"web": 0.0020, "app": 0.0028, "db": 0.0024}
		rawCPU := func(vr vmRef, tier string) float64 {
			load := d * vr.loadShare * tierFactor[tier]
			cpu := 0.08 + load + st.extraVMCPU[vr.vm]
			if st.down[vr.vm] {
				cpu = 0.01
			}
			return cpu
		}
		// Database tier first: a saturated db tier backs requests up into
		// the web/app tiers (queueing backpressure), one of the couplings
		// that make influence genuinely bidirectional across tiers.
		dbStress := 0.0
		for _, ix := range app.dbIx {
			vr := app.vms[ix]
			cpu := rawCPU(vr, "db")
			vmCPU[vr.vm] = cpu
			hostLoad[vr.host] += cpu
			if cpu > dbStress {
				dbStress = cpu
			}
		}
		backpressure := 0.0
		if dbStress > 0.85 {
			backpressure = (dbStress - 0.85) * 1.5
		}
		for _, tier := range []struct {
			name string
			ixs  []int
		}{{"web", app.webIx}, {"app", app.appIx}} {
			for _, ix := range tier.ixs {
				vr := app.vms[ix]
				cpu := rawCPU(vr, tier.name)
				if !st.down[vr.vm] {
					cpu += backpressure
				}
				vmCPU[vr.vm] = cpu
				hostLoad[vr.host] += cpu
			}
		}
		// Flows.
		flowBytes := map[telemetry.EntityID]float64{}
		flowBytes[app.clientFlow] = d*1500 + st.extraFlowBytes[app.clientFlow]
		for _, fl := range app.flows {
			flowBytes[fl.id] = d*fl.bytesPerReq + st.extraFlowBytes[fl.id]
		}
		// Net accounting on the client endpoint: the client terminates every
		// flow of its app. Summed in declaration order (client flow first,
		// then the inter-tier flows) rather than by ranging over the map, so
		// equal seeds replay to bit-identical telemetry — float addition is
		// not associative and map iteration order is randomized.
		vmNet[app.client] += flowBytes[app.clientFlow]
		for _, fl := range app.flows {
			vmNet[app.client] += flowBytes[fl.id]
		}
		// vNIC/net per VM: sum of adjacent flow bytes.
		addNet := func(vmIx int, b float64) {
			vmNet[app.vms[vmIx].vm] += b
			portLoad[e.hosts[app.vms[vmIx].host].port] += b
		}
		addNet(app.webIx[0], flowBytes[app.clientFlow])
		for _, fl := range app.flows {
			addNet(fl.src, flowBytes[fl.id])
			addNet(fl.dst, flowBytes[fl.id])
		}
		app.lastFlowBytes = flowBytes
	}
	for pid, extra := range st.extraPortLoad {
		portLoad[pid] += extra
	}

	// Host utilization and the contention feedback factor.
	hostUtil := make([]float64, len(e.hosts))
	for i, h := range e.hosts {
		hostUtil[i] = hostLoad[i] / h.capacity
	}
	// Port congestion.
	portUtil := map[telemetry.EntityID]float64{}
	for _, h := range e.hosts {
		portUtil[h.port] = portLoad[h.port] / 4e5 // port capacity in bytes/slice-second
	}

	noise := func(v, frac float64) float64 { return v * (1 + rng.NormFloat64()*frac) }
	obs := func(id telemetry.EntityID, m string, v float64) error {
		return e.DB.Observe(id, m, t, v)
	}

	// Write host / pnic / port / switch metrics.
	switchDrops := map[int]float64{}
	for i, h := range e.hosts {
		u := clamp01(noise(hostUtil[i], 0.03))
		if err := obs(h.id, telemetry.MetricCPU, u); err != nil {
			return err
		}
		if err := obs(h.id, telemetry.MetricMem, clamp01(0.3+0.4*u)); err != nil {
			return err
		}
		pu := portUtil[h.port]
		drops := 0.0
		if pu > 0.8 {
			drops = (pu - 0.8) * 0.05
		}
		if err := obs(h.pnic, telemetry.MetricNetTx, noise(portLoad[h.port], 0.03)); err != nil {
			return err
		}
		if err := obs(h.pnic, telemetry.MetricPktDrops, drops); err != nil {
			return err
		}
		if err := obs(h.port, telemetry.MetricNetTx, noise(portLoad[h.port], 0.03)); err != nil {
			return err
		}
		if err := obs(h.port, telemetry.MetricBufferUtil, clamp01(noise(pu, 0.05))); err != nil {
			return err
		}
		if err := obs(h.port, telemetry.MetricPktDrops, drops); err != nil {
			return err
		}
		switchDrops[h.switchIx] += drops
	}
	for si := 0; si < e.Opts.Switches; si++ {
		sid := telemetry.EntityID(fmt.Sprintf("switch-%d", si))
		if err := obs(sid, telemetry.MetricPktDrops, switchDrops[si]); err != nil {
			return err
		}
	}

	// Write app entities.
	for ai, app := range e.apps {
		d := st.demand[ai]
		for _, vr := range app.vms {
			hostU := hostUtil[vr.host]
			contention := 0.0
			if hostU > 0.8 {
				contention = (hostU - 0.8) * 3
			}
			cpu := clamp01(noise(vmCPU[vr.vm]*(1+contention), 0.03))
			mem := clamp01(noise(0.35+0.15*cpu+st.extraVMMem[vr.vm], 0.02))
			dsk := noise(2+10*cpu+st.extraVMDisk[vr.vm]*50, 0.05)
			up := 1.0
			if st.down[vr.vm] {
				up, cpu = 0, 0.01
			}
			for m, v := range map[string]float64{
				telemetry.MetricCPU: cpu, telemetry.MetricMem: mem,
				telemetry.MetricDiskRead: dsk, telemetry.MetricDiskWrite: dsk * 0.6,
				telemetry.MetricNetTx: noise(vmNet[vr.vm]*0.5, 0.03),
				telemetry.MetricNetRx: noise(vmNet[vr.vm]*0.5, 0.03),
				telemetry.MetricUp:    up,
			} {
				if err := obs(vr.vm, m, v); err != nil {
					return err
				}
			}
			if err := obs(vr.vnic, telemetry.MetricNetTx, noise(vmNet[vr.vm]*0.5, 0.03)); err != nil {
				return err
			}
			if err := obs(vr.vnic, telemetry.MetricNetRx, noise(vmNet[vr.vm]*0.5, 0.03)); err != nil {
				return err
			}
			nicDrops := 0.0
			if vmNet[vr.vm] > 3e5 {
				nicDrops = (vmNet[vr.vm] - 3e5) / 3e6
			}
			if err := obs(vr.vnic, telemetry.MetricPktDrops, nicDrops); err != nil {
				return err
			}
		}
		// Client VM.
		cvm := map[string]float64{
			telemetry.MetricCPU:   clamp01(noise(0.1+0.002*d, 0.03)),
			telemetry.MetricMem:   clamp01(noise(0.3, 0.02)),
			telemetry.MetricNetTx: noise(app.lastFlowBytes[app.clientFlow], 0.03),
			telemetry.MetricNetRx: noise(app.lastFlowBytes[app.clientFlow]*0.2, 0.03),
			telemetry.MetricUp:    1,
		}
		if st.down[app.client] {
			cvm[telemetry.MetricUp] = 0
		}
		for m, v := range cvm {
			if err := obs(app.client, m, v); err != nil {
				return err
			}
		}
		// Flows: throughput, sessions, and RTT inflated by congestion on the
		// destination host's port and by destination host contention — the
		// cyclic coupling of §2.2.
		writeFlow := func(fid telemetry.EntityID, bytes float64, dstHost int) error {
			pu := portUtil[e.hosts[dstHost].port]
			hu := hostUtil[dstHost]
			rtt := 2 + 30*pu*pu
			if hu > 0.85 {
				rtt += (hu - 0.85) * 40
			}
			loss := 0.0
			if pu > 0.8 {
				loss = (pu - 0.8) * 0.02
			}
			for m, v := range map[string]float64{
				telemetry.MetricThroughput: noise(bytes, 0.03),
				telemetry.MetricSessions:   noise(bytes/3000, 0.05),
				telemetry.MetricRTT:        noise(rtt, 0.05),
				telemetry.MetricLoss:       loss,
				telemetry.MetricRetransmit: loss * 2,
			} {
				if err := obs(fid, m, v); err != nil {
					return err
				}
			}
			return nil
		}
		if err := writeFlow(app.clientFlow, app.lastFlowBytes[app.clientFlow], app.vms[app.webIx[0]].host); err != nil {
			return err
		}
		for _, fl := range app.flows {
			if err := writeFlow(fl.id, app.lastFlowBytes[fl.id], app.vms[fl.dst].host); err != nil {
				return err
			}
		}
		// Datastore follows the db tier's disk activity.
		dbDisk := 0.0
		for _, ix := range app.dbIx {
			dbDisk += 2 + 10*vmCPU[app.vms[ix].vm] + st.extraVMDisk[app.vms[ix].vm]*50
		}
		for m, v := range map[string]float64{
			telemetry.MetricSpaceUtil: clamp01(noise(0.5+0.002*dbDisk, 0.01)),
			telemetry.MetricDiskRead:  noise(dbDisk, 0.04),
			telemetry.MetricDiskWrite: noise(dbDisk*0.7, 0.04),
		} {
			if err := obs(app.datastore, m, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// T returns the current time slice a hook is running at.
func (st *StepState) T() int { return st.t }

// ScaleDemand multiplies application appIx's offered demand this slice.
func (st *StepState) ScaleDemand(appIx int, factor float64) {
	if appIx >= 0 && appIx < len(st.demand) {
		st.demand[appIx] *= factor
	}
}

// AddVMCPU adds extra CPU load to a VM this slice (a stress or bug).
func (st *StepState) AddVMCPU(id telemetry.EntityID, load float64) {
	st.extraVMCPU[id] += load
}

// SetDown marks an entity non-functional this slice.
func (st *StepState) SetDown(id telemetry.EntityID) { st.down[id] = true }
