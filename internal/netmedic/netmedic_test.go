package netmedic

import (
	"math/rand"
	"testing"

	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// incidentDB builds a small dependency structure: cause -> mid -> sym, with a
// bystander attached to sym that stays normal.
func incidentDB(t *testing.T) (*telemetry.DB, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(12))
	db := telemetry.NewDB(600)
	for _, id := range []telemetry.EntityID{"cause", "mid", "sym", "bystander"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeVM, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][2]telemetry.EntityID{{"cause", "mid"}, {"mid", "sym"}, {"bystander", "sym"}} {
		if err := db.Associate(p[0], p[1], telemetry.Bidirectional); err != nil {
			t.Fatal(err)
		}
	}
	total := 150
	for tt := 0; tt < total; tt++ {
		spike := 0.0
		if tt >= total-5 {
			spike = 60
		}
		cv := 10 + spike + rng.NormFloat64()
		mv := cv*0.8 + rng.NormFloat64()
		sv := mv*1.1 + rng.NormFloat64()
		bv := 25 + rng.NormFloat64()
		for _, o := range []struct {
			id telemetry.EntityID
			v  float64
		}{{"cause", cv}, {"mid", mv}, {"sym", sv}, {"bystander", bv}} {
			if err := db.Observe(o.id, telemetry.MetricCPU, tt, o.v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := graph.Build(db, []telemetry.EntityID{"sym"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

func TestDiagnoseRanksUpstreamCause(t *testing.T) {
	db, g := incidentDB(t)
	sym := telemetry.Symptom{Entity: "sym", Metric: telemetry.MetricCPU, High: true}
	got, err := Diagnose(db, g, sym, []telemetry.EntityID{"cause", "mid", "bystander"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no candidates ranked")
	}
	// The correlated chain members must outrank the uncorrelated bystander.
	pos := map[telemetry.EntityID]int{}
	for i, r := range got {
		pos[r.Entity] = i
	}
	bys, ok := pos["bystander"]
	if ok {
		if c, ok2 := pos["cause"]; ok2 && c > bys {
			t.Fatalf("cause ranked below bystander: %v", RankedIDs(got))
		}
	}
	if got[0].Entity != "cause" && got[0].Entity != "mid" {
		t.Fatalf("top candidate should be on the causal chain, got %v", RankedIDs(got))
	}
}

func TestDiagnoseErrors(t *testing.T) {
	db, g := incidentDB(t)
	sym := telemetry.Symptom{Entity: "ghost", Metric: telemetry.MetricCPU, High: true}
	if _, err := Diagnose(db, g, sym, nil, DefaultConfig()); err == nil {
		t.Fatal("unknown symptom entity should error")
	}
}

func TestNormalDampReducesScores(t *testing.T) {
	db, g := incidentDB(t)
	sym := telemetry.Symptom{Entity: "sym", Metric: telemetry.MetricCPU, High: true}
	noDamp := DefaultConfig()
	noDamp.NormalDamp = 1.0
	noDamp.NormalZ = 3.0 // the bystander's routine noise stays below this
	damped := DefaultConfig()
	damped.NormalDamp = 0.01
	damped.NormalZ = 3.0
	a, err := Diagnose(db, g, sym, []telemetry.EntityID{"bystander"}, noDamp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Diagnose(db, g, sym, []telemetry.EntityID{"bystander"}, damped)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) > 0 && len(b) > 0 && b[0].Score >= a[0].Score {
		t.Fatalf("damping should reduce the bystander's score: %v vs %v", b[0].Score, a[0].Score)
	}
}

func TestMinScoreCutoff(t *testing.T) {
	db, g := incidentDB(t)
	sym := telemetry.Symptom{Entity: "sym", Metric: telemetry.MetricCPU, High: true}
	cfg := DefaultConfig()
	cfg.MinScore = 1e9 // nothing can reach this
	got, err := Diagnose(db, g, sym, []telemetry.EntityID{"cause", "mid"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("min score should cut everything, got %v", RankedIDs(got))
	}
}

func TestDefaultsAppliedForZeroConfig(t *testing.T) {
	db, g := incidentDB(t)
	sym := telemetry.Symptom{Entity: "sym", Metric: telemetry.MetricCPU, High: true}
	got, err := Diagnose(db, g, sym, []telemetry.EntityID{"cause"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("zero config should still work, got %v", got)
	}
}

func TestBestGeoMeanPathDirect(t *testing.T) {
	// Two nodes, single edge of weight 0.5: geometric mean of 1-edge path.
	weights := []map[int]float64{{1: 0.5}, {}}
	if got := bestGeoMeanPath(weights, 0, 1, 3); got != 0.5 {
		t.Fatalf("single edge geo mean = %v", got)
	}
	// Longer better-weighted path should win: 0->1 weight 0.1 vs 0->2->1
	// weights 0.9, 0.9 (geo mean 0.9).
	weights = []map[int]float64{{1: 0.1, 2: 0.9}, {}, {1: 0.9}}
	got := bestGeoMeanPath(weights, 0, 1, 3)
	if got < 0.89 || got > 0.91 {
		t.Fatalf("best geo mean = %v, want ~0.9", got)
	}
	// Unreachable.
	if bestGeoMeanPath([]map[int]float64{{}, {}}, 0, 1, 4) != 0 {
		t.Fatal("unreachable should be 0")
	}
}

func TestCandidateMissingFromGraphIgnored(t *testing.T) {
	db, g := incidentDB(t)
	sym := telemetry.Symptom{Entity: "sym", Metric: telemetry.MetricCPU, High: true}
	got, err := Diagnose(db, g, sym, []telemetry.EntityID{"not-in-graph"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("unknown candidate should be ignored")
	}
}
