// Package netmedic implements the NetMedic baseline (Kandula et al.,
// SIGCOMM 2009) at the granularity the paper compares against: a dependency
// graph whose edges carry weights derived from pairwise correlation of
// neighbor metric histories, a heuristic down-weighting of edges whose
// destination currently looks normal, path scores computed as geometric
// means of edge weights, and a final ranking that multiplies the best path
// score to the affected entity by the candidate's global downstream impact.
// These fixed heuristics — rather than a learned model — are what make the
// scheme brittle in the paper's environments (§2.3).
package netmedic

import (
	"fmt"
	"math"
	"sort"

	"murphy/internal/graph"
	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// Config holds NetMedic's tunables.
type Config struct {
	// Window is the history window (slices) for edge-weight correlations.
	Window int
	// MaxPathLen bounds the path search (paths longer than this contribute
	// nothing; keeps the geometric-mean DP tractable).
	MaxPathLen int
	// NormalDamp scales edge weights out of sources whose current state is
	// within NormalZ of history (the "ignore normal influence" rule: an
	// entity in a normal state is unlikely to be impacting its neighbors).
	NormalDamp float64
	// NormalZ is the z-score below which an entity counts as normal.
	NormalZ float64
	// MinScore drops candidates scoring below it (recall calibration).
	MinScore float64
}

// DefaultConfig returns the configuration used in the evaluation.
func DefaultConfig() Config {
	return Config{Window: 300, MaxPathLen: 6, NormalDamp: 0.1, NormalZ: 1.0, MinScore: 0}
}

// Ranked is one scored candidate.
type Ranked struct {
	Entity telemetry.EntityID
	Score  float64
}

// Diagnose ranks candidate root causes for the symptom.
func Diagnose(db *telemetry.DB, g *graph.Graph, symptom telemetry.Symptom, candidates []telemetry.EntityID, cfg Config) ([]Ranked, error) {
	if cfg.Window <= 2 {
		cfg.Window = DefaultConfig().Window
	}
	if cfg.MaxPathLen <= 0 {
		cfg.MaxPathLen = DefaultConfig().MaxPathLen
	}
	si, ok := g.Index(symptom.Entity)
	if !ok {
		return nil, fmt.Errorf("netmedic: symptom entity %q not in graph", symptom.Entity)
	}
	hi := db.Len()
	lo := hi - cfg.Window
	if lo < 0 {
		lo = 0
	}
	n := g.Len()

	// Abnormality of each entity: max |z| of current metrics vs window.
	abn := make([]float64, n)
	for i, id := range g.IDs() {
		abn[i] = abnormality(db, id, lo, hi)
	}

	// Edge weights: strongest |corr| between any metric pair across the
	// edge, damped when the destination looks normal now.
	weights := make([]map[int]float64, n)
	for u := 0; u < n; u++ {
		weights[u] = make(map[int]float64, len(g.Out(u)))
		for _, v := range g.Out(u) {
			w := edgeWeight(db, g.ID(u), g.ID(v), lo, hi)
			if abn[u] < cfg.NormalZ {
				w *= cfg.NormalDamp
			}
			weights[u][v] = w
		}
	}

	// best[v] = max over paths u..v (length <= MaxPathLen) of the geometric
	// mean of edge weights, computed per candidate u by DP over path length.
	var out []Ranked
	seen := make(map[telemetry.EntityID]bool, len(candidates))
	for _, cand := range candidates {
		ci, ok := g.Index(cand)
		if !ok || seen[cand] {
			continue
		}
		seen[cand] = true
		pathScore := 1.0 // self: the symptomatic entity explains itself
		if ci != si {
			pathScore = bestGeoMeanPath(weights, ci, si, cfg.MaxPathLen)
		}
		if pathScore == 0 {
			continue
		}
		impact := globalImpact(weights, abn, ci, cfg)
		score := pathScore * impact * (1 + abn[ci])
		if score >= cfg.MinScore {
			out = append(out, Ranked{Entity: cand, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	return out, nil
}

// Abnormality exposes the per-entity abnormality score (max |z| of current
// metrics vs the window) for invariant tests: an affine rescale of
// unit-bearing metrics must not reorder entities by abnormality.
func Abnormality(db *telemetry.DB, id telemetry.EntityID, lo, hi int) float64 {
	return abnormality(db, id, lo, hi)
}

// abnormality is the max |z| of an entity's current metrics vs history.
func abnormality(db *telemetry.DB, id telemetry.EntityID, lo, hi int) float64 {
	best := 0.0
	for _, metric := range db.MetricNames(id) {
		w := db.Window(id, metric, lo, hi)
		if len(w) < 3 {
			continue
		}
		cur := w[len(w)-1]
		z := math.Abs(stats.ZScore(cur, w[:len(w)-1]))
		if math.IsInf(z, 0) {
			z = 0 // constant history: treat as uninformative, like NetMedic's state templates
		}
		if z > best {
			best = z
		}
	}
	return best
}

// edgeWeight is the strongest absolute correlation between any metric of the
// source and any metric of the destination over the window.
func edgeWeight(db *telemetry.DB, src, dst telemetry.EntityID, lo, hi int) float64 {
	best := 0.0
	srcMetrics := db.MetricNames(src)
	dstMetrics := db.MetricNames(dst)
	for _, sm := range srcMetrics {
		sw := db.Window(src, sm, lo, hi)
		for _, dm := range dstMetrics {
			r := stats.AbsPearson(sw, db.Window(dst, dm, lo, hi))
			if r > best {
				best = r
			}
		}
	}
	return best
}

// bestGeoMeanPath returns the maximum geometric mean of edge weights over
// directed paths from src to dst of length 1..maxLen, via DP on (node, path
// length) over log-weights.
func bestGeoMeanPath(weights []map[int]float64, src, dst, maxLen int) float64 {
	n := len(weights)
	const negInf = math.MaxFloat64
	// dp[v] = best sum of log-weights over paths src..v with exactly k edges.
	dp := make([]float64, n)
	next := make([]float64, n)
	for i := range dp {
		dp[i] = -negInf
	}
	dp[src] = 0
	best := 0.0
	for k := 1; k <= maxLen; k++ {
		for i := range next {
			next[i] = -negInf
		}
		for u := 0; u < n; u++ {
			if dp[u] == -negInf {
				continue
			}
			for v, w := range weights[u] {
				if w <= 0 {
					continue
				}
				s := dp[u] + math.Log(w)
				if s > next[v] {
					next[v] = s
				}
			}
		}
		dp, next = next, dp
		if dp[dst] != -negInf {
			if gm := math.Exp(dp[dst] / float64(k)); gm > best {
				best = gm
			}
		}
	}
	return best
}

// globalImpact measures how much of the abnormal population the candidate
// plausibly influences: the abnormality-weighted mean of its best path
// scores to every abnormal entity.
func globalImpact(weights []map[int]float64, abn []float64, cand int, cfg Config) float64 {
	totalAbn, reached := 0.0, 0.0
	for v := range abn {
		if v == cand || abn[v] < cfg.NormalZ {
			continue
		}
		totalAbn += abn[v]
		if p := bestGeoMeanPath(weights, cand, v, cfg.MaxPathLen); p > 0 {
			reached += abn[v] * p
		}
	}
	if totalAbn == 0 {
		return 1
	}
	return reached / totalAbn
}

// RankedIDs extracts the ordered entity IDs from a ranking.
func RankedIDs(rs []Ranked) []telemetry.EntityID {
	out := make([]telemetry.EntityID, len(rs))
	for i, r := range rs {
		out[i] = r.Entity
	}
	return out
}
