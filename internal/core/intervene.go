package core

import (
	"sort"

	"murphy/internal/telemetry"
)

// PredictUnderIntervention implements the Appendix A.2 protocol: given
// overridden metric values for a set of source entities, resample the union
// of the shortest-path subgraphs from each source to the target for `rounds`
// Gibbs passes (deterministically: mean predictions, no noise) and return
// the resulting value of the target metric. Source entities are pinned to
// their overridden values; every other entity starts from its current value.
// ok is false when no source can reach the target.
//
// This is the subroutine behind Fig 8b: more rounds propagate effects across
// cycles further, so prediction accuracy through a cyclic region improves
// with rounds exactly when cyclic influence is real.
func (m *Model) PredictUnderIntervention(overrides map[telemetry.EntityID]map[string]float64, target telemetry.EntityID, targetMetric string, rounds int) (float64, bool) {
	if rounds <= 0 {
		rounds = m.cfg.GibbsRounds
	}
	// Union of shortest-path subgraphs with each node's minimum distance
	// from any source.
	dist := make(map[telemetry.EntityID]int)
	pinned := make(map[telemetry.EntityID]bool, len(overrides))
	reached := false
	for src := range overrides {
		pinned[src] = true
		path := m.paths.ShortestPathSubgraph(src, target)
		if path == nil {
			continue
		}
		reached = true
		for d, id := range path {
			if old, ok := dist[id]; !ok || d < old {
				dist[id] = d
			}
		}
	}
	if !reached {
		return 0, false
	}
	order := make([]telemetry.EntityID, 0, len(dist))
	for id := range dist {
		if !pinned[id] {
			order = append(order, id)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if dist[order[i]] != dist[order[j]] {
			return dist[order[i]] < dist[order[j]]
		}
		return order[i] < order[j]
	})
	// Build the start state.
	state := make(map[metricRef]float64, len(m.current))
	for k, v := range m.current {
		state[k] = v
	}
	for src, metrics := range overrides {
		for metric, v := range metrics {
			state[metricRef{src, metric}] = v
		}
	}
	// Deterministic resampling passes.
	for r := 0; r < rounds; r++ {
		for _, id := range order {
			for _, name := range m.metricsOf[id] {
				ref := metricRef{id, name}
				f := m.factors[ref]
				if f == nil {
					continue
				}
				state[ref] = f.model.Predict(m.featureVector(f, state))
			}
		}
	}
	return state[metricRef{target, targetMetric}], true
}
