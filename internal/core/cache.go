package core

import (
	"container/list"
	"sort"
	"sync"

	"murphy/internal/telemetry"
)

// DefaultFactorCacheCapacity is the entry cap a zero/negative capacity
// resolves to: roomy enough for a few full enterprise-scale models (a model
// holds one factor per (entity, metric) pair).
const DefaultFactorCacheCapacity = 8192

// FactorCache reuses trained per-metric factors across Train calls. Murphy
// retrains its MRF on every diagnosis (§4.2 online training), but between
// two diagnoses at the same time slice — an operator triaging several
// symptoms of one incident, or repeated what-if queries — every factor comes
// out identical: same ridge fit, same top-B neighbor selection, same
// historical mean/σ/median/MAD. The cache keys a factor by everything its
// training depends on (database identity, entity, metric, training window,
// in-neighborhood, TopB, Lambda) and hands the trained factor back instead
// of refitting, leaving only the window reads on the hot path.
//
// Correctness constraints, enforced by the training pass:
//   - Only the default ridge trainer is cached (a custom Trainer may be
//     stateful or nondeterministic).
//   - Only direct database reads are cached (an interposed telemetry.Source
//     may fail or degrade nondeterministically; see TrainOpts.Src).
//   - The database is identified by pointer: a Clone (e.g. a corrupted copy
//     in the Table-2 experiments) can never hit entries of its original.
//   - Cached factors are immutable after training and safe to share across
//     models and DiagnoseParallel workers; the cache itself is mutex-guarded.
//
// Entries are evicted LRU once the capacity is reached.
type FactorCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // of *factorCacheEntry; front = most recent
	entries map[factorCacheKey]*list.Element
	hits    uint64
	misses  uint64
}

type factorCacheKey struct {
	db      *telemetry.DB
	entity  telemetry.EntityID
	metric  string
	lo, hi  int
	topB    int
	lambda  float64
	nbrHash uint64
}

type factorCacheEntry struct {
	key factorCacheKey
	f   *factor
}

// NewFactorCache returns an empty cache holding at most capacity factors
// (<= 0 uses DefaultFactorCacheCapacity).
func NewFactorCache(capacity int) *FactorCache {
	if capacity <= 0 {
		capacity = DefaultFactorCacheCapacity
	}
	return &FactorCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[factorCacheKey]*list.Element),
	}
}

func (c *FactorCache) get(k factorCacheKey) (*factor, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*factorCacheEntry).f, true
}

func (c *FactorCache) put(k factorCacheKey, f *factor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		// A concurrent trainer got here first with an identical factor;
		// keep the incumbent so every model shares one instance.
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&factorCacheEntry{key: k, f: f})
	c.entries[k] = el
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*factorCacheEntry).key)
	}
}

// Len returns the number of cached factors.
func (c *FactorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// FactorCacheStats reports cache effectiveness counters.
type FactorCacheStats struct {
	Hits, Misses uint64
	Entries      int
	Capacity     int
}

// Stats returns a snapshot of the cache counters.
func (c *FactorCache) Stats() FactorCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return FactorCacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len(), Capacity: c.cap}
}

// neighborhoodHash fingerprints the in-neighborhood a factor's feature
// selection ranges over. It hashes the sorted in-neighbor IDs, so two graphs
// that select the same neighbor set (regardless of BFS discovery order)
// produce the same key. Metric sets per neighbor come from the database,
// which the key already pins by pointer and window.
func neighborhoodHash(inIDs []telemetry.EntityID) uint64 {
	sorted := make([]string, len(inIDs))
	for i, id := range inIDs {
		sorted[i] = string(id)
	}
	sort.Strings(sorted)
	var h uint64 = 14695981039346656037 // FNV-1a 64
	for _, s := range sorted {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff // separator so {"ab","c"} != {"a","bc"}
		h *= 1099511628211
	}
	return h
}
