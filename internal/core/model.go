package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"murphy/internal/graph"
	"murphy/internal/obs"
	"murphy/internal/regress"
	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// metricRef names one metric of one entity.
type metricRef struct {
	entity telemetry.EntityID
	metric string
}

func (r metricRef) String() string { return string(r.entity) + "/" + r.metric }

// factor is the learned per-metric factor: a model predicting one metric of
// an entity from selected neighbor metrics in the same time slice. The MRF's
// P_v is the product of its per-metric factors.
type factor struct {
	target   metricRef
	features []metricRef
	model    regress.Predictor
	// hmean/hstd are the historical mean and std of the target metric over
	// the training window; used for counterfactual placement.
	hmean, hstd float64
	// med and madScale are the training-window median and normal-consistent
	// MAD scale, kept so the robust anomaly score can be recomputed when a
	// model is rebound to a different diagnosis slice.
	med, madScale float64
	// rscore is |robust z| of the current value against the training
	// window (median/MAD). Plain z-scores of step anomalies saturate at
	// √((1-p)/p) regardless of magnitude once the incident is inside the
	// window, so ranking uses the robust score instead.
	rscore float64
	// novel marks a metric with too little observed history to judge
	// normality (a newly spawned entity, or erased history). Pruning treats
	// such entities conservatively: they cannot be certified normal.
	novel bool
}

// robustScoreAt recomputes the factor's anomaly score for a value v.
func (f *factor) robustScoreAt(v float64) float64 {
	var z float64
	switch {
	case f.madScale > 0:
		z = (v - f.med) / f.madScale
	case f.hstd > 0:
		z = (v - f.hmean) / f.hstd
	case v != f.med:
		z = 1e6
	}
	if z > 1e6 {
		z = 1e6
	}
	if z < -1e6 {
		z = -1e6
	}
	return math.Abs(z)
}

// Model is a trained MRF over a relationship graph: one factor per (entity,
// metric) pair, learned online from the trailing training window (§4.2
// "Model training"). It also caches the current (latest-slice) value of
// every metric, which is the state the inference algorithm perturbs.
type Model struct {
	cfg     Config
	db      *telemetry.DB
	g       *graph.Graph
	factors map[metricRef]*factor
	// current holds the value of every metric at the diagnosis time slice.
	current map[metricRef]float64
	// metricsOf caches the metric names per entity.
	metricsOf map[telemetry.EntityID][]string
	// trainLo/trainHi is the half-open training window on the slice grid.
	trainLo, trainHi int
	// now is the diagnosis time slice (the last slice of the window).
	now int
	// trainer builds one regression model per factor.
	trainer regress.Trainer
	// readFailures records telemetry reads that failed even after the
	// source's own resilience; training degraded each to missing data.
	readFailures []ReadFailure
	// evalHook, when set, runs at the start of every candidate evaluation.
	// It is a fault-injection seam: a hook that panics or stalls models a
	// poisoned candidate evaluator. Production diagnoses leave it nil.
	evalHook func(telemetry.EntityID)
	// paths memoizes shortest-path subgraphs keyed (candidate, symptom):
	// every candidate of one diagnosis shares the symptom's reverse BFS, and
	// repeated diagnoses reuse whole subgraphs. Shared (by pointer) with
	// Rebind copies — the graph is immutable after Build.
	paths *graph.SubgraphCache
	// arenas pools the Gibbs resampler's scratch buffers across candidate
	// evaluations and DiagnoseParallel workers.
	arenas *arenaPool
	// kern holds the sampling kernel's compiled artifacts — the metricRef →
	// slot table and the per-(candidate, symptom) execution plan cache.
	// Shared (by pointer) with Rebind copies: plans depend only on factor
	// topology and trained weights, which Rebind preserves.
	kern *kernelTables
	// base caches the slot-indexed flat copies of `current` the kernel
	// starts each pass from. Per-model (Rebind changes `current`).
	base *slotBase
	// obs receives pipeline instrumentation (stage spans, counters,
	// histograms, progress events). Never nil: trainAt defaults it to
	// obs.Global(), which is disabled unless something enables it, so the
	// hot paths pay only an atomic-load guard.
	obs *obs.Recorder
}

// ReadFailure records one training-window read that failed after the
// telemetry source's retries were exhausted. The affected series was
// degraded to missing data (placeholder-filled), per the paper's
// missing-history rule, instead of failing the diagnosis.
type ReadFailure struct {
	Entity telemetry.EntityID
	Metric string
	Err    error
}

// ReadFailures lists the degraded-to-missing reads of the training pass.
func (m *Model) ReadFailures() []ReadFailure { return m.readFailures }

// SetEvalHook installs a hook invoked at the start of every candidate
// evaluation, before any sampling. It exists for fault-injection tests and
// chaos drills — a hook that panics models a poisoned evaluator, which the
// diagnosis must absorb as a failed candidate rather than crash on.
func (m *Model) SetEvalHook(h func(telemetry.EntityID)) { m.evalHook = h }

// SetRecorder swaps the model's instrumentation recorder. rec must not be
// nil; pass a disabled recorder to silence a model trained with stats on.
// Not safe to call concurrently with a running diagnosis.
func (m *Model) SetRecorder(rec *obs.Recorder) { m.obs = rec }

// Train fits the MRF on the database restricted to the relationship graph,
// using the cfg.TrainWindow trailing slices ending at the database's last
// slice. Murphy never keeps pre-trained models: this runs on every
// diagnosis call so the window includes in-incident points.
func Train(db *telemetry.DB, g *graph.Graph, cfg Config) (*Model, error) {
	return TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1})
}

// TrainContext is Train with cooperative cancellation: training aborts with
// the context's error as soon as the context is done.
func TrainContext(ctx context.Context, db *telemetry.DB, g *graph.Graph, cfg Config) (*Model, error) {
	return TrainOpt(ctx, db, g, cfg, TrainOpts{Now: -1})
}

// TrainSource is TrainContext with the training-window reads routed through
// src — typically a resilience.Source (retries + circuit breaker) over a
// chaos injector or a remote collector. A read that still fails after the
// source's own resilience does not fail training: the series degrades to
// missing data (the §4.2 placeholder rule) and the failure is recorded on
// the model (ReadFailures). db remains the handle used for Rebind and
// explanation lookups.
func TrainSource(ctx context.Context, db *telemetry.DB, src telemetry.Source, g *graph.Graph, cfg Config) (*Model, error) {
	return TrainOpt(ctx, db, g, cfg, TrainOpts{Now: -1, Src: src})
}

// TrainAt fits the MRF with the training window ending at slice `now`
// (inclusive). A nil trainer uses ridge regression with cfg.Lambda — the
// paper's production choice; the Fig 8a comparison passes other trainers.
func TrainAt(db *telemetry.DB, g *graph.Graph, cfg Config, now int, trainer regress.Trainer) (*Model, error) {
	return trainAt(context.Background(), db, g, cfg, TrainOpts{Now: now, Trainer: trainer})
}

// TrainOpts collects the optional knobs of a training pass; the zero value
// (with Now set) reproduces TrainContext.
type TrainOpts struct {
	// Src interposes the resilient/faulty read path on the training-window
	// reads; nil reads the database directly (infallible).
	Src telemetry.Source
	// Now is the diagnosis time slice (training window endpoint, inclusive);
	// negative means the database's last slice.
	Now int
	// Trainer overrides the per-factor regression model; nil uses ridge with
	// cfg.Lambda (the paper's production choice).
	Trainer regress.Trainer
	// Cache, when non-nil, reuses trained factors across Train calls (see
	// FactorCache). It is consulted only on the default-trainer, direct-read
	// path; a custom Trainer or an interposed Src trains from scratch.
	Cache *FactorCache
	// Store, when non-nil, amortizes training across Train calls by sliding
	// per-(entity, window, hyperparameters) sufficient statistics instead of
	// recomputing every factor from scratch (see FactorStore). Like Cache it
	// is only consulted on the default-trainer, direct-read path, and when
	// both are set the store takes over (it subsumes whole-window reuse).
	Store *FactorStore
	// Obs receives pipeline instrumentation for this model (training spans
	// and counters now, inference spans on every later Diagnose call). Nil
	// falls back to obs.Global(), which is disabled by default.
	Obs *obs.Recorder
	// Workers bounds the training worker pool that fans the per-series
	// preprocessing and per-factor fits across cores. Zero or one runs the
	// historical serial loop (no goroutines, no channels); any larger count
	// produces bit-identical factors, so it is purely a latency knob.
	Workers int
}

// TrainOpt is the general training entry point: TrainContext plus the
// optional knobs of TrainOpts (interposed source, window endpoint, custom
// trainer, shared factor cache).
func TrainOpt(ctx context.Context, db *telemetry.DB, g *graph.Graph, cfg Config, opts TrainOpts) (*Model, error) {
	if opts.Now < 0 {
		opts.Now = db.Len() - 1
	}
	return trainAt(ctx, db, g, cfg, opts)
}

// trainAt is the shared training pass. opts.Src == nil reads the database
// directly (infallible); a non-nil source interposes the resilient/faulty
// read path, with per-series degradation on unrecoverable errors.
func trainAt(ctx context.Context, db *telemetry.DB, g *graph.Graph, cfg Config, opts TrainOpts) (*Model, error) {
	src, trainer := opts.Src, opts.Trainer
	now := opts.Now
	// The cache stores complete trained factors; it is only sound when the
	// factor is a pure function of the cache key, which requires the default
	// (deterministic, stateless) trainer and the direct (infallible)
	// database read path.
	cache := opts.Cache
	if trainer != nil || src != nil {
		cache = nil
	}
	rec := opts.Obs
	if rec == nil {
		rec = obs.Global()
	}
	sp := rec.StartStage(obs.StageTrain)
	defer sp.End()
	cfg = cfg.sanitized()
	if db.Len() == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	if now < 0 || now >= db.Len() {
		return nil, fmt.Errorf("core: training endpoint %d outside timeline [0,%d)", now, db.Len())
	}
	if trainer == nil {
		trainer = regress.RidgeTrainer(cfg.Lambda)
	}
	m := &Model{
		cfg:       cfg,
		db:        db,
		g:         g,
		factors:   make(map[metricRef]*factor),
		current:   make(map[metricRef]float64),
		metricsOf: make(map[telemetry.EntityID][]string),
		trainer:   trainer,
		now:       now,
		paths:     graph.NewSubgraphCache(g),
		arenas:    newArenaPool(),
		kern:      newKernelTables(),
		base:      &slotBase{},
		obs:       rec,
	}
	if rec.Enabled() {
		// The hook costs a closure call per subgraph lookup, so it is only
		// installed when the recorder is live at training time.
		m.paths.SetHook(func(hit bool) {
			if hit {
				rec.Add(obs.CtrSubgraphCacheHits, 1)
			} else {
				rec.Add(obs.CtrSubgraphCacheMisses, 1)
			}
		})
	}
	m.trainHi = now + 1
	m.trainLo = m.trainHi - cfg.TrainWindow
	if m.trainLo < 0 {
		m.trainLo = 0
	}
	n := m.trainHi - m.trainLo
	if n < 8 {
		return nil, fmt.Errorf("core: training window too short (%d slices)", n)
	}

	// The incremental store, like the cache, is only sound on the default
	// (deterministic, stateless) trainer and the direct (infallible) read
	// path. When it is in play, the incremental pass replaces the whole
	// from-scratch pipeline below.
	if store := opts.Store; store != nil && opts.Trainer == nil && src == nil {
		if err := store.train(ctx, m, opts, rec); err != nil {
			return nil, err
		}
		return m, nil
	}

	// readRaw fetches one raw training window, through src when present.
	// A context abort fails training; any other read error (already past
	// the source's own retries) degrades the series to all-missing, which
	// the placeholder machinery below absorbs exactly like never-observed
	// history.
	readRaw := func(id telemetry.EntityID, name string) ([]float64, error) {
		if src == nil {
			return db.RawWindow(id, name, m.trainLo, m.trainHi), nil
		}
		w, err := src.ReadRawWindow(ctx, id, name, m.trainLo, m.trainHi)
		if err == nil && len(w) == m.trainHi-m.trainLo {
			return w, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: training cancelled: %w", cerr)
		}
		if err == nil {
			err = fmt.Errorf("core: short read (%d of %d slices)", len(w), m.trainHi-m.trainLo)
		}
		m.readFailures = append(m.readFailures, ReadFailure{Entity: id, Metric: name, Err: err})
		rec.Add(obs.CtrReadFailures, 1)
		w = make([]float64, m.trainHi-m.trainLo)
		for i := range w {
			w[i] = math.NaN()
		}
		return w, nil
	}
	metricNames := func(id telemetry.EntityID) []string {
		if src == nil {
			return db.MetricNames(id)
		}
		return src.MetricNames(id)
	}

	// Cache training windows for every metric of every node once. Missing
	// observations get a placeholder (§4.2 edge cases); the placeholder is
	// the metric's observed median — zero-filling would fabricate a step
	// aligned with whenever observation began, which pollutes correlations.
	// raws keeps the pre-fill copies so anomaly scoring can distinguish
	// observed history from placeholders without a second read.
	//
	// Enumeration and raw reads stay serial: sources may be stateful (fault
	// injectors, rate-limited collectors) and the order of recorded read
	// failures is part of the model's contract. The pure per-series work —
	// placeholder fill, centering for the Pearson ranking — fans out below.
	type seriesPrep struct {
		ref metricRef
		raw []float64      // pre-fill copy (NaN = missing)
		col []float64      // placeholder-filled training column
		ctr stats.Centered // centered view of col
	}
	var prep []*seriesPrep
	for _, id := range g.IDs() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: training cancelled: %w", err)
		}
		names := metricNames(id)
		m.metricsOf[id] = names
		for _, name := range names {
			w, err := readRaw(id, name)
			if err != nil {
				return nil, err
			}
			prep = append(prep, &seriesPrep{ref: metricRef{id, name}, raw: w})
		}
	}
	workers := opts.Workers
	if err := forEachIndex(ctx, workers, len(prep), func(i int) error {
		p := prep[i]
		p.col = append([]float64(nil), p.raw...)
		def := stats.Median(observedOnly(p.raw))
		if def != def {
			def = 0 // nothing observed at all: the type default
		}
		for t, v := range p.col {
			if v != v {
				p.col[t] = def
			}
		}
		p.ctr = stats.Center(p.col)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("core: training cancelled: %w", err)
	}
	windows := make(map[metricRef][]float64, len(prep))
	raws := make(map[metricRef][]float64, len(prep))
	centered := make(map[metricRef]*stats.Centered, len(prep))
	for _, p := range prep {
		windows[p.ref] = p.col
		raws[p.ref] = p.raw
		centered[p.ref] = &p.ctr
		m.current[p.ref] = p.col[len(p.col)-1]
	}

	// Fit one factor per (entity, metric), consulting the factor cache when
	// one is in play: a hit hands back the immutable trained factor and
	// skips the correlation ranking, robust statistics, and the ridge fit.
	// Jobs are assembled in graph order and each writes only its own slot,
	// so the trained model is bit-identical whatever the pool size; the
	// candidate list and its ranking tie-break keys are built once per
	// entity (the tie-break used to call ref.String() inside the sort
	// comparator — two string allocations per comparison).
	type fitJob struct {
		ref      metricRef
		cand     []metricRef // shared across the entity's jobs
		candKeys []string    // cand[i].String(), precomputed
		candCtr  []*stats.Centered
		ckey     factorCacheKey
		useCache bool
		out      *factor
	}
	var jobs []*fitJob
	for _, id := range g.IDs() {
		inIDs := g.InIDs(id)
		var nbrHash uint64
		if cache != nil {
			nbrHash = neighborhoodHash(inIDs)
		}
		// Collect all candidate neighbor metric refs.
		var cand []metricRef
		for _, nb := range inIDs {
			for _, name := range m.metricsOf[nb] {
				cand = append(cand, metricRef{nb, name})
			}
		}
		candKeys := make([]string, len(cand))
		candCtr := make([]*stats.Centered, len(cand))
		for i, c := range cand {
			candKeys[i] = c.String()
			candCtr[i] = centered[c]
		}
		for _, name := range m.metricsOf[id] {
			job := &fitJob{
				ref:  metricRef{id, name},
				cand: cand, candKeys: candKeys, candCtr: candCtr,
			}
			if cache != nil {
				job.useCache = true
				job.ckey = factorCacheKey{
					db: db, entity: id, metric: name,
					lo: m.trainLo, hi: m.trainHi,
					topB: cfg.TopB, lambda: cfg.Lambda, nbrHash: nbrHash,
				}
			}
			jobs = append(jobs, job)
		}
	}
	pooled := workers > 1 && len(jobs) > 1
	if err := forEachIndex(ctx, workers, len(jobs), func(jid int) error {
		job := jobs[jid]
		if job.useCache {
			if f, ok := cache.get(job.ckey); ok {
				rec.Add(obs.CtrFactorCacheHits, 1)
				job.out = f
				return nil
			}
			rec.Add(obs.CtrFactorCacheMisses, 1)
		}
		ref := job.ref
		y := windows[ref]
		yctr := centered[ref]
		// The historical mean/std come from the centered view; the sum of
		// squares was accumulated in MeanStd's order, so the bits match.
		f := &factor{target: ref, hmean: yctr.Mean}
		if len(y) >= 2 {
			f.hstd = math.Sqrt(yctr.SumSq / float64(len(y)-1))
		}
		// Anomaly scoring uses only actually-observed history: an entity
		// whose past was never recorded (newly spawned, or the Table 2
		// missing-values corruption) must be judged against what was
		// seen, not against the training-time placeholders.
		obsY := observedOnly(raws[ref])
		// The in-incident tail does not count as judgeable history: if
		// everything observed is recent (post-erasure), normality cannot
		// be certified.
		if len(obsY) < n/4 {
			f.novel = true
			obsY = y
		}
		f.med = stats.Median(obsY)
		f.madScale = 1.4826 * stats.MAD(obsY)
		f.rscore = f.robustScoreAt(y[len(y)-1])
		// Rank candidates by |corr| with the target — one dot product per
		// pair over the precomputed centered columns; keep the top B
		// (one-in-ten rule, §4.2).
		rs := make([]float64, len(job.cand))
		order := make([]int, len(job.cand))
		for i := range job.cand {
			rs[i] = stats.AbsPearsonCentered(job.candCtr[i], yctr)
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if rs[ia] != rs[ib] {
				return rs[ia] > rs[ib]
			}
			return job.candKeys[ia] < job.candKeys[ib]
		})
		b := cfg.TopB
		if b > len(order) {
			b = len(order)
		}
		feats := make([]metricRef, 0, b)
		for _, i := range order[:b] {
			if rs[i] > 0 {
				feats = append(feats, job.cand[i])
			}
		}
		f.features = feats
		featCols := make([][]float64, len(feats))
		for j, fr := range feats {
			featCols[j] = windows[fr]
		}
		model := trainer()
		// The training windows already are the design matrix's columns: a
		// trainer with the column fast path (the default ridge) consumes
		// them directly; others get the row-major assembly.
		var ferr error
		if cf, ok := model.(regress.ColumnsFitter); ok {
			ferr = cf.FitColumns(featCols, y)
		} else {
			x := make([][]float64, n)
			for t := 0; t < n; t++ {
				row := make([]float64, len(feats))
				for j := range feats {
					row[j] = featCols[j][t]
				}
				x[t] = row
			}
			ferr = model.Fit(x, y)
		}
		if ferr != nil {
			return fmt.Errorf("core: fit factor %s: %w", ref, ferr)
		}
		f.model = model
		job.out = f
		rec.Add(obs.CtrFactorsTrained, 1)
		if pooled {
			rec.Add(obs.CtrTrainParallelFits, 1)
		}
		if job.useCache {
			cache.put(job.ckey, f)
		}
		return nil
	}); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("core: training cancelled: %w", err)
		}
		return nil, err
	}
	for _, job := range jobs {
		m.factors[job.ref] = job.out
	}
	return m, nil
}

// Rebind returns a copy of the model whose diagnosis slice is `now`: the
// factors stay as trained, but every current metric value and anomaly score
// is re-read from the database at the new slice. This is how the §6.5.1
// offline-training comparison evaluates a stale model against in-incident
// state.
func (m *Model) Rebind(now int) (*Model, error) {
	if now < 0 || now >= m.db.Len() {
		return nil, fmt.Errorf("core: rebind slice %d outside timeline [0,%d)", now, m.db.Len())
	}
	nm := *m
	nm.now = now
	nm.base = &slotBase{} // the flat start-state vectors track `current`
	nm.current = make(map[metricRef]float64, len(m.current))
	nm.factors = make(map[metricRef]*factor, len(m.factors))
	for _, id := range m.g.IDs() {
		for _, name := range m.metricsOf[id] {
			ref := metricRef{id, name}
			w := m.db.Window(id, name, now, now+1)
			nm.current[ref] = w[0]
			if old := m.factors[ref]; old != nil {
				f := *old
				f.rscore = f.robustScoreAt(w[0])
				nm.factors[ref] = &f
			}
		}
	}
	return &nm, nil
}

// Graph returns the relationship graph the model was trained on.
func (m *Model) Graph() *graph.Graph { return m.g }

// Config returns the sanitized configuration in effect.
func (m *Model) Config() Config { return m.cfg }

// Now returns the diagnosis time slice.
func (m *Model) Now() int { return m.now }

// NumFactors returns the number of trained (entity, metric) factors.
func (m *Model) NumFactors() int { return len(m.factors) }

// CurrentValue returns the value of (id, metric) at the diagnosis slice.
func (m *Model) CurrentValue(id telemetry.EntityID, metric string) float64 {
	return m.current[metricRef{id, metric}]
}

// AnomalyScore returns the entity's anomaly score: the maximum robust |z|
// of any of its current metrics against their training-window history
// (how many deviations the metric sits from its historical center). Root
// causes are ranked by this score (§4.2 "Ranking the root causes").
func (m *Model) AnomalyScore(id telemetry.EntityID) float64 {
	best := 0.0
	for _, name := range m.metricsOf[id] {
		f := m.factors[metricRef{id, name}]
		if f == nil {
			continue
		}
		if f.rscore > best {
			best = f.rscore
		}
	}
	return best
}

// conservativeThresholds are the paper's absolute pruning thresholds
// (footnote 7): 25% utilization, 0.1% drop rate, 50 sessions. Metrics whose
// units are environment-specific (latency, RPS, raw byte rates) have no
// absolute threshold and rely on the z-score test.
var conservativeThresholds = map[string]float64{
	telemetry.MetricCPU:        0.25,
	telemetry.MetricMem:        0.25,
	telemetry.MetricDiskUtil:   0.25,
	telemetry.MetricBufferUtil: 0.25,
	telemetry.MetricSpaceUtil:  0.25,
	telemetry.MetricPktDrops:   0.001,
	telemetry.MetricLoss:       0.001,
	telemetry.MetricRetransmit: 0.01,
	telemetry.MetricSessions:   50,
}

// IsAnomalous reports whether the entity clears the conservative pruning
// criteria of §4.2: some current metric is at least cfg.AnomalyZ robust
// standard deviations from its observed history, or exceeds the paper's
// absolute conservative threshold for its kind. The absolute arm keeps the
// search usable for entities whose history was never observed.
func (m *Model) IsAnomalous(id telemetry.EntityID) bool {
	if m.AnomalyScore(id) >= m.cfg.AnomalyZ {
		return true
	}
	for _, name := range m.metricsOf[id] {
		ref := metricRef{id, name}
		if f := m.factors[ref]; f != nil && f.novel {
			return true
		}
		th, ok := conservativeThresholds[name]
		if !ok {
			continue
		}
		if m.current[ref] > th {
			return true
		}
	}
	return false
}

// MetricZ returns the z-score of one current metric against its history.
func (m *Model) MetricZ(id telemetry.EntityID, metric string) float64 {
	ref := metricRef{id, metric}
	f := m.factors[ref]
	if f == nil || f.hstd == 0 {
		return 0
	}
	return (m.current[ref] - f.hmean) / f.hstd
}

// PredictMetric returns the factor's mean prediction for (id, metric) given
// the current values of its selected features. It is exported for the metric
// prediction micro-benchmarks (Fig 8a) and the cyclic-effects experiment
// (Fig 8b / Appendix A.2).
func (m *Model) PredictMetric(id telemetry.EntityID, metric string) (float64, bool) {
	f := m.factors[metricRef{id, metric}]
	if f == nil {
		return 0, false
	}
	return f.model.Predict(m.featureVector(f, m.current)), true
}

// observedOnly filters NaN (missing) observations out of a raw window.
func observedOnly(w []float64) []float64 {
	out := make([]float64, 0, len(w))
	for _, v := range w {
		if v == v {
			out = append(out, v)
		}
	}
	return out
}

// featureVector assembles a factor's input from a state map.
func (m *Model) featureVector(f *factor, state map[metricRef]float64) []float64 {
	x := make([]float64, len(f.features))
	for j, fr := range f.features {
		x[j] = state[fr]
	}
	return x
}
