package core

import (
	"murphy/internal/regress"
	"murphy/internal/telemetry"
)

// FactorView is a read-only snapshot of one trained factor's learned
// parameters. It exists for the incremental-training equivalence checks (the
// metamorph incremental arm and the inctrain benchmark harness compare a
// full retrain against the slid-statistics path factor by factor); diagnosis
// code never needs it.
type FactorView struct {
	// Features lists the selected neighbor metrics ("entity/metric"), in
	// ranking order.
	Features []string
	// Coef/FeatMean/FeatStd/Intercept/ResidualStd are the ridge model's
	// learned terms (standardized-feature coefficients). Empty/zero when the
	// factor's model is not the default ridge.
	Coef, FeatMean, FeatStd []float64
	Intercept, ResidualStd  float64
	// HMean/HStd/Med/MADScale/RScore/Novel are the factor's historical and
	// robust statistics over the training window.
	HMean, HStd, Med, MADScale, RScore float64
	Novel                              bool
}

// FactorView returns the learned parameters of the (id, metric) factor, or
// ok=false when no such factor was trained.
func (m *Model) FactorView(id telemetry.EntityID, metric string) (FactorView, bool) {
	f := m.factors[metricRef{id, metric}]
	if f == nil {
		return FactorView{}, false
	}
	v := FactorView{
		HMean: f.hmean, HStd: f.hstd,
		Med: f.med, MADScale: f.madScale,
		RScore: f.rscore, Novel: f.novel,
	}
	for _, fr := range f.features {
		v.Features = append(v.Features, fr.String())
	}
	if r, ok := f.model.(*regress.Ridge); ok {
		if coef, mean, std, intercept, fitted := r.LinearTerms(); fitted {
			v.Coef = append([]float64(nil), coef...)
			v.FeatMean = append([]float64(nil), mean...)
			v.FeatStd = append([]float64(nil), std...)
			v.Intercept = intercept
			v.ResidualStd = r.ResidualStd()
		}
	}
	return v, true
}
