package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"murphy/internal/telemetry"
)

// DiagnoseParallel is Diagnose with the candidate evaluations fanned out
// over a bounded worker pool — the parallelism optimization §6.7 suggests.
// Results are identical to the sequential Diagnose (each candidate's
// sampler is independently seeded), only wall time changes. workers <= 0
// uses GOMAXPROCS.
func (m *Model) DiagnoseParallel(symptom telemetry.Symptom, workers int) (*Diagnosis, error) {
	if err := m.checkSymptom(symptom); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	candidates := append(m.Candidates(symptom.Entity), symptom.Entity)
	type job struct {
		idx  int
		cand telemetry.EntityID
	}
	jobs := make(chan job)
	results := make([]*RootCause, len(candidates))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if verdict, ok := m.EvaluateCandidate(j.cand, symptom); ok {
					v := verdict
					results[j.idx] = &v
				}
			}
		}()
	}
	for i, c := range candidates {
		jobs <- job{i, c}
	}
	close(jobs)
	wg.Wait()
	var causes []RootCause
	for _, r := range results {
		if r != nil {
			causes = append(causes, *r)
		}
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].Score != causes[j].Score {
			return causes[i].Score > causes[j].Score
		}
		return causes[i].Entity < causes[j].Entity
	})
	return &Diagnosis{
		Symptom:    symptom,
		Causes:     causes,
		Candidates: candidates,
		Elapsed:    time.Since(start),
	}, nil
}
