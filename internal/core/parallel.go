package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"murphy/internal/obs"
	"murphy/internal/telemetry"
)

// DiagnoseParallel is Diagnose with the candidate evaluations fanned out
// over a bounded worker pool — the parallelism optimization §6.7 suggests.
// Results are identical to the sequential Diagnose (each candidate's
// sampler is independently seeded), only wall time changes. workers <= 0
// uses GOMAXPROCS.
func (m *Model) DiagnoseParallel(symptom telemetry.Symptom, workers int) (*Diagnosis, error) {
	return m.DiagnoseParallelContext(context.Background(), symptom, workers)
}

// DiagnoseParallelContext is DiagnoseParallel under cooperative
// cancellation, with the same partial-result semantics as DiagnoseContext:
// an expired deadline yields a partial Diagnosis (skipped candidates
// flagged and degraded to anomaly-score ranking), an explicit cancellation
// returns an error wrapping context.Canceled.
//
// Every worker evaluates candidates under panic recovery: a panicking
// candidate evaluation becomes a recorded skip + degraded verdict for that
// candidate while the rest of the diagnosis completes. Without the
// recovery, one panic would kill the worker goroutine and deadlock the
// caller in wg.Wait.
func (m *Model) DiagnoseParallelContext(ctx context.Context, symptom telemetry.Symptom, workers int) (*Diagnosis, error) {
	if err := m.checkSymptom(symptom); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		// One effective worker: the pool would only add goroutine/channel
		// overhead around what is exactly the sequential evaluation loop.
		return m.DiagnoseContext(ctx, symptom)
	}
	if m.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.Timeout)
		defer cancel()
	}
	start := time.Now()
	sp := m.obs.StartStage(obs.StagePrune)
	candidates := append(m.Candidates(symptom.Entity), symptom.Entity)
	sp.End()
	m.obs.Add(obs.CtrCandidatesPruned, int64(m.g.Len()-len(candidates)))
	// Each candidate's outcome lands in its own slot, so assembly below is
	// deterministic regardless of worker interleaving.
	type outcome struct {
		cause *RootCause
		skip  string // non-empty: skipped with this reason
	}
	results := make([]outcome, len(candidates))
	jobs := make(chan int)
	// done counts finished candidates across workers for progress events.
	// StageTest is one span over the whole fan-out (per-span CPU deltas of
	// overlapping spans would double-count process CPU).
	var done atomic.Int64
	sp = m.obs.StartStage(obs.StageTest)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				cand := candidates[idx]
				if err := ctx.Err(); err != nil {
					// Keep draining so the feeder never blocks; each
					// remaining candidate is recorded as skipped.
					results[idx] = outcome{skip: skipReason(err)}
					done.Add(1)
					continue
				}
				verdict, ok, err := m.evaluateCandidateSafe(ctx, cand, symptom)
				switch {
				case err != nil:
					results[idx] = outcome{skip: evalFailReason(err)}
				case ok:
					m.obs.Add(obs.CtrCandidatesTested, 1)
					v := verdict
					results[idx] = outcome{cause: &v}
				default:
					m.obs.Add(obs.CtrCandidatesTested, 1)
				}
				m.obs.Progress(obs.StageTest, int(done.Add(1)), len(candidates), string(cand))
			}
		}()
	}
	for i := range candidates {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	sp.End()

	d := &Diagnosis{Symptom: symptom, Candidates: candidates}
	sp = m.obs.StartStage(obs.StageRank)
	for i, r := range results {
		switch {
		case r.skip != "":
			m.recordSkip(d, candidates[i], r.skip)
		case r.cause != nil:
			m.obs.Add(obs.CtrCausesCertified, 1)
			d.Causes = append(d.Causes, *r.cause)
		}
	}
	finishDiagnosis(d, start)
	sp.End()
	if errors.Is(ctx.Err(), context.Canceled) {
		return d, fmt.Errorf("core: diagnosis cancelled: %w", ctx.Err())
	}
	return d, nil
}
