package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// forEachIndex runs fn(i) for every i in [0, n), fanning the calls across up
// to `workers` goroutines. It is the training pass's pool primitive, built so
// parallelism can never change results:
//
//   - workers <= 1 (or n <= 1) degrades to the plain inline loop — no
//     goroutines, no channels — so single-threaded configurations pay zero
//     scheduling overhead (GOMAXPROCS=1 boxes run exactly the historical
//     code path).
//   - Work items are claimed from an atomic counter and fn(i) must write only
//     to slot i of its output, so results are positionally deterministic
//     regardless of goroutine interleaving.
//   - The context is polled before every item; on cancellation remaining
//     items fail fast with the context error.
//
// The returned error is the lowest-index failure, which for deterministic fn
// is the same error the serial loop would have returned first.
func forEachIndex(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
