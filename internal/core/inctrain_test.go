package core

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// incViewTol is the rounding bound the slid-statistics path is held to
// against the full recomputation: the slid sums accumulate in a different
// order, so factors served from statistics match within rounding, not bit
// for bit (anchored/refit factors ARE bit-identical and tested as such).
const incViewTol = 1e-6

func floatClose(a, b, tol float64) bool {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return true
	}
	m := math.Abs(a)
	if mb := math.Abs(b); mb > m {
		m = mb
	}
	return math.Abs(a-b) <= tol*(1+m)
}

func sliceClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !floatClose(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// compareFactorViews requires every factor of the two models to agree within
// tol (tol = 0 demands bitwise equality).
func compareFactorViews(t *testing.T, label string, want, got *Model, db *telemetry.DB, g *graph.Graph, tol float64) {
	t.Helper()
	for _, id := range g.IDs() {
		for _, name := range db.MetricNames(id) {
			w, ok1 := want.FactorView(id, name)
			v, ok2 := got.FactorView(id, name)
			if ok1 != ok2 {
				t.Fatalf("%s: %s/%s: factor presence %v vs %v", label, id, name, ok1, ok2)
			}
			if !ok1 {
				continue
			}
			if len(w.Features) != len(v.Features) {
				t.Fatalf("%s: %s/%s: features %v vs %v", label, id, name, w.Features, v.Features)
			}
			for i := range w.Features {
				if w.Features[i] != v.Features[i] {
					t.Fatalf("%s: %s/%s: feature %d: %q vs %q", label, id, name, i, w.Features[i], v.Features[i])
				}
			}
			if !sliceClose(w.Coef, v.Coef, tol) || !sliceClose(w.FeatMean, v.FeatMean, tol) || !sliceClose(w.FeatStd, v.FeatStd, tol) {
				t.Fatalf("%s: %s/%s: model terms differ beyond %v:\n full %+v\n  inc %+v", label, id, name, tol, w, v)
			}
			for _, pair := range [][2]float64{
				{w.Intercept, v.Intercept}, {w.ResidualStd, v.ResidualStd},
				{w.HMean, v.HMean}, {w.HStd, v.HStd},
				{w.Med, v.Med}, {w.MADScale, v.MADScale}, {w.RScore, v.RScore},
			} {
				if !floatClose(pair[0], pair[1], tol) {
					t.Fatalf("%s: %s/%s: scalar differs beyond %v:\n full %+v\n  inc %+v", label, id, name, tol, w, v)
				}
			}
			if w.Novel != v.Novel {
				t.Fatalf("%s: %s/%s: novel %v vs %v", label, id, name, w.Novel, v.Novel)
			}
		}
	}
}

func fullTrainAt(t *testing.T, db *telemetry.DB, g *graph.Graph, cfg Config, now int) *Model {
	t.Helper()
	m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func incTrainAt(t *testing.T, db *telemetry.DB, g *graph.Graph, cfg Config, now int, store *FactorStore) *Model {
	t.Helper()
	m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: now, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIncrementalAnchorBitIdentical: the store's first (anchoring) train is
// a full refit of every factor through trainAt's exact path, so it must be
// bit-identical to a storeless train.
func TestIncrementalAnchorBitIdentical(t *testing.T) {
	db := chainDB(t, 320, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	store := NewFactorStore()
	inc := incTrainAt(t, db, g, cfg, 260, store)
	full := fullTrainAt(t, db, g, cfg, 260)
	compareFactorViews(t, "anchor", full, inc, db, g, 0)
	st := store.Stats()
	if st.Refits != 5 || st.Hits != 0 {
		t.Fatalf("anchor pass should refit everything: %+v", st)
	}
}

// TestIncrementalSlideMatchesFull slides the window point by point and
// compares the incremental factors against a from-scratch retrain along the
// way. The final diagnosis must certify the same causes in the same order.
func TestIncrementalSlideMatchesFull(t *testing.T) {
	db := chainDB(t, 320, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	store := NewFactorStore()
	var inc *Model
	for now := 250; now < 320; now++ {
		inc = incTrainAt(t, db, g, cfg, now, store)
		if (now-250)%10 == 0 || now == 319 {
			full := fullTrainAt(t, db, g, cfg, now)
			compareFactorViews(t, "slide", full, inc, db, g, incViewTol)
		}
	}
	st := store.Stats()
	if st.Hits == 0 {
		t.Fatalf("sliding should serve factors from statistics: %+v", st)
	}
	if st.Slides == 0 {
		t.Fatalf("no slides recorded: %+v", st)
	}

	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}
	full := fullTrainAt(t, db, g, cfg, 319)
	wantD, err := full.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	gotD, err := inc.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantD.Causes) != len(gotD.Causes) {
		t.Fatalf("cause count: full %d vs incremental %d", len(wantD.Causes), len(gotD.Causes))
	}
	for i := range wantD.Causes {
		if wantD.Causes[i].Entity != gotD.Causes[i].Entity {
			t.Fatalf("cause %d: full %q vs incremental %q", i, wantD.Causes[i].Entity, gotD.Causes[i].Entity)
		}
	}
}

// TestIncrementalRepeatedWindowIsPureHit: re-training at the same slice must
// reuse the previously fitted factors without even a solve.
func TestIncrementalRepeatedWindowIsPureHit(t *testing.T) {
	db := chainDB(t, 320, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	store := NewFactorStore()
	m1 := incTrainAt(t, db, g, cfg, 300, store)
	m2 := incTrainAt(t, db, g, cfg, 300, store)
	st := store.Stats()
	if st.Hits != 5 || st.Refits != 5 {
		t.Fatalf("expected 5 anchor refits + 5 pure hits: %+v", st)
	}
	compareFactorViews(t, "repeat", m1, m2, db, g, 0)
}

// twoNodeDB builds a minimal a->b chain where b's CPU tracks a's with gain
// `gain(t)`; used by the drift and recenter tests.
func twoNodeDB(t *testing.T, total int, seed int64, level float64, xAt func(rng *rand.Rand, tt int) float64, yOf func(rng *rand.Rand, tt int, x float64) float64) (*telemetry.DB, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := telemetry.NewDB(total + 8)
	for _, e := range []*telemetry.Entity{
		{ID: "a", Type: telemetry.TypeVM, Name: "a", App: "app"},
		{ID: "b", Type: telemetry.TypeVM, Name: "b", App: "app"},
	} {
		if err := db.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Associate("a", "b", telemetry.Bidirectional); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < total; tt++ {
		x := level + xAt(rng, tt)
		y := yOf(rng, tt, x)
		if err := db.Observe("a", telemetry.MetricCPU, tt, x); err != nil {
			t.Fatal(err)
		}
		if err := db.Observe("b", telemetry.MetricCPU, tt, y); err != nil {
			t.Fatal(err)
		}
	}
	g, err := graph.Build(db, []telemetry.EntityID{"b"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

// TestIncrementalDriftTrip flips the a->b relationship mid-stream: the stale
// model's one-step-ahead predictions degrade, the MASE drift score trips,
// and the store falls back to a full refit instead of serving a wrong model.
func TestIncrementalDriftTrip(t *testing.T) {
	db, g := twoNodeDB(t, 400, 7, 50,
		func(rng *rand.Rand, tt int) float64 { return 10*math.Sin(float64(tt)/15) + rng.NormFloat64() },
		func(rng *rand.Rand, tt int, x float64) float64 {
			if tt < 300 {
				return 2*x + 5 + rng.NormFloat64()*0.5
			}
			return -2*x + 210 + rng.NormFloat64()*0.5
		})
	cfg := testConfig()
	store := NewFactorStore()
	store.SetPolicy(2.0, 1<<30) // sensitive drift, no scheduled refresh
	var inc *Model
	for now := 249; now < 400; now++ {
		inc = incTrainAt(t, db, g, cfg, now, store)
	}
	st := store.Stats()
	if st.DriftTrips == 0 {
		t.Fatalf("relationship flip should trip the drift guard: %+v", st)
	}
	full := fullTrainAt(t, db, g, cfg, 399)
	compareFactorViews(t, "post-flip", full, inc, db, g, incViewTol)
}

// TestIncrementalRecenter runs a large-mean series with a drifting level:
// the shifted moments must recenter (exact closed-form corrections to the
// slid Gram/cross sums) and stay within rounding of the full retrain even
// when the window wanders far from its anchor.
func TestIncrementalRecenter(t *testing.T) {
	db, g := twoNodeDB(t, 420, 11, 1e6,
		func(rng *rand.Rand, tt int) float64 {
			return 0.8*float64(tt) + 3*math.Sin(float64(tt)/10) + rng.NormFloat64()
		},
		func(rng *rand.Rand, tt int, x float64) float64 {
			return 1e6 + 2*(x-1e6) + rng.NormFloat64()
		})
	cfg := testConfig()
	store := NewFactorStore()
	store.SetPolicy(1e9, 1<<30) // isolate the recenter machinery: no drift/refresh refits
	var inc *Model
	for now := 249; now < 420; now++ {
		inc = incTrainAt(t, db, g, cfg, now, store)
	}
	st := store.Stats()
	if st.Hits == 0 {
		t.Fatalf("recenter test should stay on the incremental path: %+v", st)
	}
	full := fullTrainAt(t, db, g, cfg, 419)
	compareFactorViews(t, "recenter", full, inc, db, g, incViewTol)
}

// TestIncrementalDegenerateSeries: a constant metric yields zero
// correlations and an intercept-only factor; the statistics path must agree
// with the full fit on that degenerate shape at every slide.
func TestIncrementalDegenerateSeries(t *testing.T) {
	db, g := twoNodeDB(t, 300, 13, 50,
		func(rng *rand.Rand, tt int) float64 { return 5*math.Sin(float64(tt)/9) + rng.NormFloat64() },
		func(rng *rand.Rand, tt int, x float64) float64 { return 42 }) // b is constant
	cfg := testConfig()
	store := NewFactorStore()
	var inc *Model
	for now := 249; now < 300; now++ {
		inc = incTrainAt(t, db, g, cfg, now, store)
	}
	full := fullTrainAt(t, db, g, cfg, 299)
	compareFactorViews(t, "degenerate", full, inc, db, g, incViewTol)
	if v, ok := inc.FactorView("b", telemetry.MetricCPU); !ok || len(v.Features) != 0 {
		t.Fatalf("constant target should select no features: %+v", v)
	}
}

// TestIncrementalDirtySeries: a series with missing observations inside the
// window is rebuilt (its placeholder fill is window-dependent), and every
// factor targeting it takes the bit-exact refit path on every slide.
func TestIncrementalDirtySeries(t *testing.T) {
	db := chainDB(t, 340, 5, 42)
	// Erase a stretch of front CPU inside the sliding range by rebuilding
	// the DB without those observations.
	rngDB := telemetry.NewDB(600)
	for _, id := range []telemetry.EntityID{"client", "flow", "front", "back", "decoy"} {
		e := db.Entity(id)
		if e == nil {
			t.Fatalf("missing entity %s", id)
		}
		if err := rngDB.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][2]telemetry.EntityID{
		{"client", "flow"}, {"flow", "front"}, {"front", "back"}, {"decoy", "back"},
	} {
		if err := rngDB.Associate(p[0], p[1], telemetry.Bidirectional); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []telemetry.EntityID{"client", "flow", "front", "back", "decoy"} {
		for _, name := range db.MetricNames(id) {
			w := db.RawWindow(id, name, 0, db.Len())
			for tt, v := range w {
				if id == "front" && tt >= 290 && tt < 300 {
					continue // the missing stretch
				}
				if v == v {
					if err := rngDB.Observe(id, name, tt, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	g := chainGraph(t, rngDB)
	cfg := testConfig()
	store := NewFactorStore()
	var inc *Model
	for now := 280; now < 340; now++ {
		inc = incTrainAt(t, rngDB, g, cfg, now, store)
		if (now-280)%15 == 0 || now == 339 {
			full := fullTrainAt(t, rngDB, g, cfg, now)
			compareFactorViews(t, "dirty", full, inc, rngDB, g, incViewTol)
			// The dirty-target factor must be bit-identical: it refits
			// through trainAt's exact path while any NaN is in-window.
			if now < 300+cfg.TrainWindow && now >= 290 {
				w, _ := full.FactorView("front", telemetry.MetricCPU)
				v, _ := inc.FactorView("front", telemetry.MetricCPU)
				if !sliceClose(w.Coef, v.Coef, 0) || w.Intercept != v.Intercept || w.Med != v.Med || w.MADScale != v.MADScale {
					t.Fatalf("dirty-target factor not bit-identical at %d:\n full %+v\n  inc %+v", now, w, v)
				}
			}
		}
	}
}

// TestFactorStoreSnapshotRoundTrip: snapshot -> restore into a fresh store
// -> the first train at the same window performs zero full retrains and
// returns bit-identical factors; subsequent slides keep matching the full
// retrain (the restored statistics are live, not just a cached model).
func TestFactorStoreSnapshotRoundTrip(t *testing.T) {
	db := chainDB(t, 340, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	store := NewFactorStore()
	var m1 *Model
	for now := 280; now <= 300; now++ {
		m1 = incTrainAt(t, db, g, cfg, now, store)
	}
	path := filepath.Join(t.TempDir(), "factors.json")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	warm := NewFactorStore()
	if err := warm.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	m2 := incTrainAt(t, db, g, cfg, 300, warm)
	st := warm.Stats()
	if st.Refits != 0 {
		t.Fatalf("warm restart must not retrain: %+v", st)
	}
	if st.Hits != 5 {
		t.Fatalf("warm restart should serve every factor: %+v", st)
	}
	compareFactorViews(t, "warm", m1, m2, db, g, 0)

	// The restored statistics must keep sliding correctly.
	var inc *Model
	for now := 301; now < 340; now++ {
		inc = incTrainAt(t, db, g, cfg, now, warm)
	}
	full := fullTrainAt(t, db, g, cfg, 339)
	compareFactorViews(t, "warm-slide", full, inc, db, g, incViewTol)
}

// TestFactorStoreSnapshotMismatchDiscarded: a snapshot taken under different
// hyperparameters (or against data the database no longer reproduces) is
// discarded at adoption — the warm restart degrades to a cold one, never to
// wrong factors.
func TestFactorStoreSnapshotMismatchDiscarded(t *testing.T) {
	db := chainDB(t, 340, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	store := NewFactorStore()
	incTrainAt(t, db, g, cfg, 300, store)
	snap, err := store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Hyperparameter mismatch: everything refits, nothing breaks.
	other := cfg
	other.TopB = cfg.TopB + 1
	cold := NewFactorStore()
	if err := cold.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	inc := incTrainAt(t, db, g, other, 300, cold)
	if st := cold.Stats(); st.Refits != 5 || st.Hits != 0 {
		t.Fatalf("mismatched snapshot must be discarded: %+v", st)
	}
	full := fullTrainAt(t, db, g, other, 300)
	compareFactorViews(t, "discard", full, inc, db, g, 0)

	// Different data (another seed): window fingerprints cannot match.
	db2 := chainDB(t, 340, 5, 99)
	g2 := chainGraph(t, db2)
	cold2 := NewFactorStore()
	if err := cold2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	inc2 := incTrainAt(t, db2, g2, cfg, 300, cold2)
	if st := cold2.Stats(); st.Refits != 5 {
		t.Fatalf("foreign-data snapshot must be discarded: %+v", st)
	}
	compareFactorViews(t, "discard-data", fullTrainAt(t, db2, g2, cfg, 300), inc2, db2, g2, 0)
}

// TestFactorCacheWindowBoundsInvalidate is the sliding-window regression
// test for the cache keying: the key carries the explicit [lo, hi) training
// window, so sliding by a single point must miss every entry (a stale
// factor served across windows was the failure mode this guards).
func TestFactorCacheWindowBoundsInvalidate(t *testing.T) {
	db := chainDB(t, 320, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	cache := NewFactorCache(0)
	if _, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: 300, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 5 || st.Hits != 0 {
		t.Fatalf("first train: %+v", st)
	}
	m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: 301, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Hits != 0 || st.Misses != 10 {
		t.Fatalf("one-point slide must invalidate every cache key: %+v", st)
	}
	compareFactorViews(t, "cache-slide", fullTrainAt(t, db, g, cfg, 301), m, db, g, 0)
}

// TestStoreSupersedesCache: when both reuse mechanisms are configured the
// store takes over and the cache must stay untouched.
func TestStoreSupersedesCache(t *testing.T) {
	db := chainDB(t, 320, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	cache := NewFactorCache(0)
	store := NewFactorStore()
	m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: 300, Cache: cache, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("cache must be bypassed when the store is set: %+v", st)
	}
	if st := store.Stats(); st.Refits != 5 {
		t.Fatalf("store should have anchored: %+v", st)
	}
	compareFactorViews(t, "supersede", fullTrainAt(t, db, g, cfg, 300), m, db, g, 0)
}

// TestIncrementalWorkersBitIdentical: the pooled factor phase must produce
// the same factors as the serial one.
func TestIncrementalWorkersBitIdentical(t *testing.T) {
	db := chainDB(t, 320, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	serial := NewFactorStore()
	pooled := NewFactorStore()
	var ms, mp *Model
	for now := 250; now < 280; now++ {
		var err error
		ms, err = TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: now, Store: serial})
		if err != nil {
			t.Fatal(err)
		}
		mp, err = TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: now, Store: pooled, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
	}
	compareFactorViews(t, "workers", ms, mp, db, g, 0)
	a, b := serial.Stats(), pooled.Stats()
	if a.Hits != b.Hits || a.Refits != b.Refits {
		t.Fatalf("pooled stats diverged: %+v vs %+v", a, b)
	}
}

// TestIncrementalFarJumpResets: sliding by more than half the window resets
// the store (re-anchoring beats sliding), and the result stays bit-exact.
func TestIncrementalFarJumpResets(t *testing.T) {
	db := chainDB(t, 340, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	store := NewFactorStore()
	incTrainAt(t, db, g, cfg, 220, store)
	m := incTrainAt(t, db, g, cfg, 339, store) // jump of 119 > 200/2
	st := store.Stats()
	if st.Resets == 0 {
		t.Fatalf("far jump should reset: %+v", st)
	}
	compareFactorViews(t, "jump", fullTrainAt(t, db, g, cfg, 339), m, db, g, 0)
}
