package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"murphy/internal/obs"
	"murphy/internal/regress"
	"murphy/internal/telemetry"
)

// TestParallelTrainingBitIdentical trains the same database at worker counts
// 1/2/4/8 and requires bit-identical diagnoses: the worker pool is a latency
// knob, never a results knob.
func TestParallelTrainingBitIdentical(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}

	serial, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.NumFactors() != serial.NumFactors() {
			t.Fatalf("workers=%d: %d factors vs %d", workers, m.NumFactors(), serial.NumFactors())
		}
		diag, err := m.Diagnose(sym)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameDiagnosis(t, "parallel training", want, diag)
	}
}

// TestParallelTrainingCounter verifies the pool instrumentation: pooled
// training reports its fits on CtrTrainParallelFits, serial training reports
// none.
func TestParallelTrainingCounter(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	for _, workers := range []int{1, 4} {
		rec := obs.New()
		rec.Enable()
		if _, err := TrainOpt(context.Background(), db, g, testConfig(), TrainOpts{Now: -1, Workers: workers, Obs: rec}); err != nil {
			t.Fatal(err)
		}
		fits := rec.Counter(obs.CtrTrainParallelFits)
		trained := rec.Counter(obs.CtrFactorsTrained)
		if workers == 1 && fits != 0 {
			t.Errorf("serial training reported %d pooled fits", fits)
		}
		if workers > 1 && fits != trained {
			t.Errorf("pooled training: %d pooled fits, %d factors trained", fits, trained)
		}
	}
}

// TestParallelTrainingWithFactorCache runs pooled training against a shared
// factor cache twice: the second pass must be served entirely from the cache
// and diagnoses must stay bit-identical to the cacheless serial run.
func TestParallelTrainingWithFactorCache(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}

	serial, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewFactorCache(0)
	for round := 0; round < 2; round++ {
		m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Workers: 4, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		diag, err := m.Diagnose(sym)
		if err != nil {
			t.Fatal(err)
		}
		sameDiagnosis(t, "pooled+cache round", want, diag)
	}
	st := cache.Stats()
	if st.Misses == 0 || st.Hits != st.Misses {
		t.Errorf("second pooled training should hit every factor: %+v", st)
	}
}

// cancelAfterTrainer wraps the ridge trainer so the shared context is
// cancelled after a fixed number of fits — a deterministic way to hit the
// pool mid-flight.
type cancelAfterTrainer struct {
	regress.Predictor
	fits   *atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c *cancelAfterTrainer) Fit(x [][]float64, y []float64) error {
	if c.fits.Add(1) == c.after {
		c.cancel()
	}
	return c.Predictor.Fit(x, y)
}

// TestParallelTrainingCancelMidPool cancels the context after a few fits and
// requires training to fail with the context error at every worker count —
// no hang, no partial model returned.
func TestParallelTrainingCancelMidPool(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var fits atomic.Int64
		trainer := regress.Trainer(func() regress.Predictor {
			return &cancelAfterTrainer{Predictor: regress.NewRidge(1), fits: &fits, after: 3, cancel: cancel}
		})
		m, err := TrainOpt(ctx, db, g, testConfig(), TrainOpts{Now: -1, Workers: workers, Trainer: trainer})
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: training survived cancellation (model %v)", workers, m != nil)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestParallelTrainingMoreWorkersThanJobs pins the pool-size clamp: far more
// workers than (entity, metric) pairs must still train correctly.
func TestParallelTrainingMoreWorkersThanJobs(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	m, err := TrainOpt(context.Background(), db, g, testConfig(), TrainOpts{Now: -1, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFactors() == 0 {
		t.Fatal("no factors trained")
	}
}

// TestForEachIndexSerialFallback proves the workers<=1 path never spawns a
// goroutine: fn observes a stable goroutine count and runs in index order.
func TestForEachIndexSerialFallback(t *testing.T) {
	before := runtime.NumGoroutine()
	var order []int
	err := forEachIndex(context.Background(), 1, 5, func(i int) error {
		if g := runtime.NumGoroutine(); g > before {
			t.Errorf("serial fallback spawned goroutines: %d > %d", g, before)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order %v", order)
		}
	}
	// Errors surface immediately and stop the loop.
	calls := 0
	wantErr := errors.New("boom")
	err = forEachIndex(context.Background(), 0, 5, func(i int) error {
		calls++
		if i == 1 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// TestForEachIndexLowestIndexError pins the deterministic error contract in
// pooled mode: with several failing items, the lowest index wins.
func TestForEachIndexLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := forEachIndex(context.Background(), 4, 8, func(i int) error {
		switch i {
		case 2:
			return errB
		case 1:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errA)
	}
}
