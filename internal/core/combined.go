package core

import (
	"fmt"

	"murphy/internal/graph"
	"murphy/internal/regress"
	"murphy/internal/telemetry"
)

// combinedPredictor blends a stale offline model with a fresh online model,
// weighting the online one by how much in-incident data it has seen. It is
// the §7 "Leveraging offline training" extension: offline training can use a
// much longer window, while online training knows the incident's pattern.
type combinedPredictor struct {
	offline, online regress.Predictor
	wOnline         float64
}

func (c *combinedPredictor) Fit([][]float64, []float64) error {
	return fmt.Errorf("core: combined predictor is assembled, not fitted")
}

func (c *combinedPredictor) Predict(x []float64) float64 {
	return c.wOnline*c.online.Predict(x) + (1-c.wOnline)*c.offline.Predict(x)
}

func (c *combinedPredictor) ResidualStd() float64 {
	// Conservative: the larger of the two (the blend cannot be more certain
	// than its sharper component on data neither has seen).
	a, b := c.offline.ResidualStd(), c.online.ResidualStd()
	if a > b {
		return a
	}
	return b
}

// TrainCombined fits two MRFs — one offline on the long window ending at
// offlineEnd (exclusive of the incident) and one online on the trailing
// window — and blends their factors with weight wOnline on the online model.
// The returned model carries the online model's current state and anomaly
// scores, so ranking and pruning reflect the incident.
func TrainCombined(db *telemetry.DB, g *graph.Graph, cfg Config, offlineEnd int, offlineWindow int, wOnline float64) (*Model, error) {
	if wOnline < 0 || wOnline > 1 {
		return nil, fmt.Errorf("core: online weight %v outside [0,1]", wOnline)
	}
	offCfg := cfg
	offCfg.TrainWindow = offlineWindow
	offline, err := TrainAt(db, g, offCfg, offlineEnd, nil)
	if err != nil {
		return nil, fmt.Errorf("core: offline half: %w", err)
	}
	online, err := Train(db, g, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: online half: %w", err)
	}
	for ref, of := range online.factors {
		if off, ok := offline.factors[ref]; ok && sameFeatures(of, off) {
			of.model = &combinedPredictor{offline: off.model, online: of.model, wOnline: wOnline}
		}
		// When the two halves selected different features (the topology or
		// workload changed between the windows — the very staleness §6.5.1
		// warns about), the online factor stands alone.
	}
	return online, nil
}

func sameFeatures(a, b *factor) bool {
	if len(a.features) != len(b.features) {
		return false
	}
	for i := range a.features {
		if a.features[i] != b.features[i] {
			return false
		}
	}
	return true
}
