package core

import (
	"testing"

	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

func TestDiagnoseParallelMatchesSequential(t *testing.T) {
	_, m := trainChain(t)
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}
	seq, err := m.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		par, err := m.DiagnoseParallel(sym, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Causes) != len(seq.Causes) {
			t.Fatalf("workers=%d: cause counts differ: %d vs %d", workers, len(par.Causes), len(seq.Causes))
		}
		for i := range par.Causes {
			if par.Causes[i].Entity != seq.Causes[i].Entity {
				t.Fatalf("workers=%d: ranking differs at %d: %v vs %v",
					workers, i, par.Ranked(), seq.Ranked())
			}
			if par.Causes[i].PValue != seq.Causes[i].PValue {
				t.Fatalf("workers=%d: p-values differ (non-deterministic sampling)", workers)
			}
		}
	}
}

func TestDiagnoseParallelErrors(t *testing.T) {
	_, m := trainChain(t)
	if _, err := m.DiagnoseParallel(telemetry.Symptom{Entity: "ghost", Metric: "x"}, 2); err == nil {
		t.Fatal("unknown symptom should error")
	}
}

func TestTrainCombined(t *testing.T) {
	db := chainDB(t, 400, 5, 21)
	g, err := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	// Offline half trains on [?, 300) — before the incident at 395+.
	m, err := TrainCombined(db, g, cfg, 299, 280, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range diag.Causes {
		if c.Entity == "client" {
			found = true
		}
	}
	if !found {
		t.Fatalf("combined model should still find the client: %v", diag.Ranked())
	}
}

func TestTrainCombinedErrors(t *testing.T) {
	db := chainDB(t, 400, 5, 22)
	g, _ := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	cfg := testConfig()
	if _, err := TrainCombined(db, g, cfg, 299, 280, 1.5); err == nil {
		t.Fatal("weight out of range should error")
	}
	if _, err := TrainCombined(db, g, cfg, -5, 280, 0.5); err == nil {
		t.Fatal("bad offline endpoint should error")
	}
}

func TestCombinedPredictorBlends(t *testing.T) {
	off := &constPredictor{v: 10, resid: 1}
	on := &constPredictor{v: 20, resid: 3}
	c := &combinedPredictor{offline: off, online: on, wOnline: 0.25}
	if got := c.Predict(nil); got != 0.25*20+0.75*10 {
		t.Fatalf("blend = %v", got)
	}
	if c.ResidualStd() != 3 {
		t.Fatal("residual should be the conservative max")
	}
	if c.Fit(nil, nil) == nil {
		t.Fatal("combined predictor must refuse Fit")
	}
}

type constPredictor struct{ v, resid float64 }

func (p *constPredictor) Fit([][]float64, []float64) error { return nil }
func (p *constPredictor) Predict([]float64) float64        { return p.v }
func (p *constPredictor) ResidualStd() float64             { return p.resid }

func TestRebind(t *testing.T) {
	db := chainDB(t, 300, 5, 30)
	g, err := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	// Train strictly before the incident.
	m, err := TrainAt(db, g, cfg, 250, nil)
	if err != nil {
		t.Fatal(err)
	}
	preScore := m.AnomalyScore("client")
	rb, err := m.Rebind(299)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Now() != 299 {
		t.Fatalf("rebound Now = %d", rb.Now())
	}
	// The incident slice must look far more anomalous than the quiet one.
	if rb.AnomalyScore("client") <= preScore+1 {
		t.Fatalf("rebind should expose the incident: %v -> %v", preScore, rb.AnomalyScore("client"))
	}
	// Original model untouched.
	if m.Now() != 250 {
		t.Fatal("Rebind must not mutate the original")
	}
	if _, err := m.Rebind(-1); err == nil {
		t.Fatal("negative rebind should error")
	}
	if _, err := m.Rebind(9999); err == nil {
		t.Fatal("out-of-range rebind should error")
	}
}

func TestDiagnoseMaxCandidates(t *testing.T) {
	db := chainDB(t, 220, 5, 31)
	g, _ := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	cfg := testConfig()
	cfg.MaxCandidates = 1
	m, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pruned space capped at 1 plus the symptom self-candidate.
	if len(diag.Candidates) > 2 {
		t.Fatalf("candidates = %v, want at most 2", diag.Candidates)
	}
}

func TestDiagnoseTimeout(t *testing.T) {
	db := chainDB(t, 220, 5, 32)
	g, _ := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	cfg := testConfig()
	cfg.Timeout = 1 // nanosecond: expires immediately
	m, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Causes) != 0 {
		t.Fatalf("expired deadline should stop evaluation, got %v", diag.Ranked())
	}
	if !diag.Partial || len(diag.Skipped) != len(diag.Candidates) {
		t.Fatalf("expired deadline should flag every candidate skipped: partial=%v skipped=%d/%d",
			diag.Partial, len(diag.Skipped), len(diag.Candidates))
	}
	if len(diag.Degraded) == 0 {
		t.Fatal("skipped candidates should fall back to the degraded ranking")
	}
}

func TestModelAccessors(t *testing.T) {
	_, m := trainChain(t)
	if m.Graph() == nil {
		t.Fatal("Graph accessor")
	}
	if m.CurrentValue("back", telemetry.MetricCPU) <= 0 {
		t.Fatal("CurrentValue should reflect the incident")
	}
}
