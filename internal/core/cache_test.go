package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"murphy/internal/graph"
	"murphy/internal/regress"
	"murphy/internal/telemetry"
)

// sameDiagnosis requires two diagnoses to certify identical causes: same
// entities, order, p-values, effects, and scores.
func sameDiagnosis(t *testing.T, label string, a, b *Diagnosis) {
	t.Helper()
	if len(a.Causes) != len(b.Causes) {
		t.Fatalf("%s: %d causes vs %d", label, len(a.Causes), len(b.Causes))
	}
	for i := range a.Causes {
		x, y := a.Causes[i], b.Causes[i]
		if x.Entity != y.Entity || x.PValue != y.PValue || x.Effect != y.Effect || x.Score != y.Score {
			t.Fatalf("%s: cause %d: %q p=%v e=%v vs %q p=%v e=%v",
				label, i, x.Entity, x.PValue, x.Effect, y.Entity, y.PValue, y.Effect)
		}
	}
}

func chainGraph(t *testing.T, db *telemetry.DB) *graph.Graph {
	t.Helper()
	g, err := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFactorCacheIdenticalResults retrains with a shared cache and checks
// (a) the second training is served entirely from the cache and (b) cached
// factors produce bit-identical diagnoses.
func TestFactorCacheIdenticalResults(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}

	plain, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewFactorCache(0)
	for round := 0; round < 2; round++ {
		m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		diag, err := m.Diagnose(sym)
		if err != nil {
			t.Fatal(err)
		}
		sameDiagnosis(t, "cached round", want, diag)
	}
	st := cache.Stats()
	if st.Misses == 0 || st.Hits != st.Misses {
		t.Errorf("second training should hit every factor: %+v", st)
	}
	if st.Entries != cache.Len() || st.Entries == 0 {
		t.Errorf("stats/Len mismatch: %+v vs %d", st, cache.Len())
	}
}

// TestFactorCacheSharedConcurrent hammers one cache from many goroutines,
// each training its own model and diagnosing in parallel — the
// DiagnoseParallel triage pattern the cache exists for. Meant to run under
// -race; every diagnosis must equal the uncached baseline.
func TestFactorCacheSharedConcurrent(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}

	plain, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}

	// A tiny capacity forces continuous eviction under contention, which is
	// the nastiest path: concurrent get/put/evict on shared factors.
	for _, capacity := range []int{0, 4} {
		cache := NewFactorCache(capacity)
		const goroutines = 8
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		diags := make([]*Diagnosis, goroutines)
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Cache: cache})
				if err != nil {
					errs <- err
					return
				}
				diag, err := m.DiagnoseParallel(sym, 4)
				if err != nil {
					errs <- err
					return
				}
				diags[slot] = diag
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for i, diag := range diags {
			sameDiagnosis(t, "concurrent trainer", want, diag)
			_ = i
		}
		if capacity > 0 && cache.Len() > capacity {
			t.Errorf("capacity %d exceeded: %d entries", capacity, cache.Len())
		}
	}
}

// TestFactorCacheEviction checks the LRU bound and that an evicting cache
// stays behavior-preserving (evicted factors are simply retrained).
func TestFactorCacheEviction(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}

	plain, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewFactorCache(2) // far fewer than the model's factor count
	for round := 0; round < 3; round++ {
		m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if cache.Len() > 2 {
			t.Fatalf("round %d: %d entries exceed capacity 2", round, cache.Len())
		}
		diag, err := m.Diagnose(sym)
		if err != nil {
			t.Fatal(err)
		}
		sameDiagnosis(t, "evicting cache", want, diag)
	}
	if st := cache.Stats(); st.Capacity != 2 || st.Entries > 2 {
		t.Errorf("stats out of bounds: %+v", st)
	}
}

// TestFactorCacheBypassed checks the soundness guards: a custom trainer or
// an interposed source must leave the cache untouched (their factors are not
// reusable, and a fallible read path must not poison shared state).
func TestFactorCacheBypassed(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	cache := NewFactorCache(0)

	if _, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Cache: cache, Trainer: regress.MLPTrainer(3, 1)}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("custom trainer populated the cache: %d entries", cache.Len())
	}
	if _, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Cache: cache, Src: db}); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); cache.Len() != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("interposed source touched the cache: %d entries, %+v", cache.Len(), st)
	}
}

// TestFactorCacheDegradedPaths exercises the cache together with the
// resilience machinery: a panicking candidate evaluator (skip path) and an
// expiring deadline (partial path) must not corrupt cached factors — a
// clean retrain+diagnose afterwards still matches the baseline exactly.
func TestFactorCacheDegradedPaths(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}

	plain, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewFactorCache(0)

	// Skip path: one candidate's evaluation panics mid-diagnosis.
	m, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	m.SetEvalHook(func(a telemetry.EntityID) {
		if a == "decoy" {
			panic("poisoned evaluator")
		}
	})
	diag, err := m.DiagnoseParallel(sym, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Partial {
		t.Fatal("panicking candidate should mark the diagnosis partial")
	}

	// Partial path: the deadline expires during inference.
	m2, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	m2.SetEvalHook(func(telemetry.EntityID) { time.Sleep(5 * time.Millisecond) })
	ctx, cancel := context.WithTimeout(context.Background(), 12*time.Millisecond)
	defer cancel()
	if _, err := m2.DiagnoseParallelContext(ctx, sym, 4); err != nil {
		t.Fatalf("an expiring deadline should degrade, not error: %v", err)
	}

	// The cache must still serve pristine factors.
	m3, err := TrainOpt(context.Background(), db, g, cfg, TrainOpts{Now: -1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := m3.DiagnoseParallel(sym, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameDiagnosis(t, "after degraded runs", want, clean)
}

// TestEarlyStopDeterministicAndSound checks the early-stop path on the chain
// fixture: repeated runs are bit-identical (its RNG streams are seeded
// deterministically), the true cause chain stays certified with the same
// top-1, and SamplesUsed reflects actual truncation.
func TestEarlyStopDeterministicAndSound(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	cfg.Samples = 2000
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}

	plain, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}

	fastCfg := cfg
	fastCfg.EarlyStop = true
	fastCfg.EarlyStopConfidence = 0.999
	m, err := Train(db, g, fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.DiagnoseParallel(sym, 4)
	if err != nil {
		t.Fatal(err)
	}
	again, err := m.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	sameDiagnosis(t, "early-stop determinism (parallel vs sequential)", first, again)

	if len(want.Causes) == 0 || len(first.Causes) == 0 {
		t.Fatal("both paths should certify causes on the chain incident")
	}
	if want.Causes[0].Entity != first.Causes[0].Entity {
		t.Fatalf("top-1 differs: %q vs %q", want.Causes[0].Entity, first.Causes[0].Entity)
	}
	budget := 2 * fastCfg.Samples
	truncated := false
	for _, c := range first.Causes {
		if c.SamplesUsed <= 0 || c.SamplesUsed > budget {
			t.Errorf("cause %q: SamplesUsed %d outside (0, %d]", c.Entity, c.SamplesUsed, budget)
		}
		if c.SamplesUsed < budget {
			truncated = true
		}
	}
	if !truncated {
		t.Error("early stop never truncated the budget on a clear-cut incident")
	}
	for _, c := range want.Causes {
		if c.SamplesUsed != budget {
			t.Errorf("full path: cause %q used %d samples, want %d", c.Entity, c.SamplesUsed, budget)
		}
	}
}
