package core

import (
	"math"
	"math/rand"
	"testing"

	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// chainDB builds a telemetry DB with a causal chain
//
//	client --(flow)--> front VM --> back VM
//
// plus an uncorrelated decoy VM attached to the back VM. Client RPS drives
// flow throughput, front CPU, and back CPU linearly with small noise. During
// the last `incident` slices the client spikes, dragging the chain up; the
// decoy also spikes (so it passes anomaly pruning) but independently of the
// backend's history.
func chainDB(t *testing.T, total, incident int, seed int64) *telemetry.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := telemetry.NewDB(600)
	ents := []*telemetry.Entity{
		{ID: "client", Type: telemetry.TypeClient, Name: "crawler", App: "app"},
		{ID: "flow", Type: telemetry.TypeFlow, Name: "crawler->front", App: "app"},
		{ID: "front", Type: telemetry.TypeVM, Name: "front", App: "app"},
		{ID: "back", Type: telemetry.TypeVM, Name: "back", App: "app"},
		{ID: "decoy", Type: telemetry.TypeVM, Name: "decoy", App: "app"},
	}
	for _, e := range ents {
		if err := db.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][2]telemetry.EntityID{
		{"client", "flow"}, {"flow", "front"}, {"front", "back"}, {"decoy", "back"},
	} {
		if err := db.Associate(p[0], p[1], telemetry.Bidirectional); err != nil {
			t.Fatal(err)
		}
	}
	for tt := 0; tt < total; tt++ {
		rps := 50 + 10*math.Sin(float64(tt)/20) + rng.NormFloat64()*2
		if tt >= total-incident {
			rps += 200 // the incident: client goes heavy
		}
		thr := rps*1.5 + rng.NormFloat64()*2
		frontCPU := thr*0.2 + 5 + rng.NormFloat64()
		backCPU := frontCPU*1.2 + 3 + rng.NormFloat64()
		// The decoy is anomalous *now* but with a different temporal shape
		// (a slow ramp over the last 60 slices, not the incident's step), as
		// an independent fault would be.
		decoyCPU := 20 + rng.NormFloat64()*3
		if ramp := tt - (total - 60); ramp > 0 {
			decoyCPU += float64(ramp)
		}
		obs := func(id telemetry.EntityID, m string, v float64) {
			t.Helper()
			if err := db.Observe(id, m, tt, v); err != nil {
				t.Fatal(err)
			}
		}
		obs("client", telemetry.MetricRPS, rps)
		obs("flow", telemetry.MetricThroughput, thr)
		obs("front", telemetry.MetricCPU, frontCPU)
		obs("back", telemetry.MetricCPU, backCPU)
		obs("decoy", telemetry.MetricCPU, decoyCPU)
	}
	return db
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Samples = 300
	cfg.TrainWindow = 200
	return cfg
}

func trainChain(t *testing.T) (*telemetry.DB, *Model) {
	t.Helper()
	db := chainDB(t, 220, 5, 42)
	g, err := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(db, g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return db, m
}

func TestTrainBasics(t *testing.T) {
	_, m := trainChain(t)
	if m.NumFactors() != 5 {
		t.Fatalf("NumFactors = %d, want 5", m.NumFactors())
	}
	if m.Now() != 219 {
		t.Fatalf("Now = %d", m.Now())
	}
	// Current backend CPU should be well above its historical mean.
	if m.MetricZ("back", telemetry.MetricCPU) < 1 {
		t.Fatalf("backend CPU z = %v, want anomalous", m.MetricZ("back", telemetry.MetricCPU))
	}
	if !m.IsAnomalous("back") || !m.IsAnomalous("client") || !m.IsAnomalous("decoy") {
		t.Fatal("incident entities should be anomalous")
	}
	if m.AnomalyScore("back") <= 0 {
		t.Fatal("anomaly score should be positive")
	}
}

func TestTrainErrors(t *testing.T) {
	db := chainDB(t, 220, 5, 1)
	g, _ := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if _, err := Train(telemetry.NewDB(60), g, testConfig()); err == nil {
		t.Fatal("empty db should error")
	}
	if _, err := TrainAt(db, g, testConfig(), -1, nil); err == nil {
		t.Fatal("negative endpoint should error")
	}
	if _, err := TrainAt(db, g, testConfig(), 9999, nil); err == nil {
		t.Fatal("endpoint past timeline should error")
	}
	cfg := testConfig()
	if _, err := TrainAt(db, g, cfg, 3, nil); err == nil {
		t.Fatal("window of 4 slices should be too short")
	}
}

func TestDiagnoseFindsRootCauseNotDecoy(t *testing.T) {
	_, m := trainChain(t)
	diag, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Causes) == 0 {
		t.Fatal("no root causes found")
	}
	found := map[telemetry.EntityID]bool{}
	for _, c := range diag.Causes {
		found[c.Entity] = true
		if c.PValue > m.Config().Alpha {
			t.Fatalf("cause %s has p=%v above alpha", c.Entity, c.PValue)
		}
		if c.Effect < m.Config().MinEffect {
			t.Fatalf("cause %s has effect %v below floor", c.Entity, c.Effect)
		}
	}
	if !found["client"] {
		t.Fatalf("client should be diagnosed as a root cause; got %v", diag.Ranked())
	}
	// The independently-shaped decoy must either be rejected by the
	// counterfactual test or at least rank strictly below the true cause
	// (correlation is necessary but not sufficient — §4.2's caveat).
	ranked := diag.Ranked()
	clientPos, decoyPos := -1, -1
	for i, id := range ranked {
		switch id {
		case "client":
			clientPos = i
		case "decoy":
			decoyPos = i
		}
	}
	if decoyPos != -1 && decoyPos < clientPos {
		t.Fatalf("decoy must not outrank the true cause; got %v", ranked)
	}
}

func TestDiagnoseErrors(t *testing.T) {
	_, m := trainChain(t)
	if _, err := m.Diagnose(telemetry.Symptom{Entity: "ghost", Metric: telemetry.MetricCPU}); err == nil {
		t.Fatal("unknown entity should error")
	}
	if _, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: "no_such_metric"}); err == nil {
		t.Fatal("unknown metric should error")
	}
}

func TestCandidatesExcludeSymptomAndQuietEntities(t *testing.T) {
	_, m := trainChain(t)
	cands := m.Candidates("back")
	for _, c := range cands {
		if c == "back" {
			t.Fatal("symptom entity must not be a candidate")
		}
	}
	// front/flow/client/decoy all spike during the incident → all candidates.
	if len(cands) < 3 {
		t.Fatalf("expected most incident entities as candidates, got %v", cands)
	}
}

func TestEvaluateCandidateUnreachable(t *testing.T) {
	// A candidate with no path to the symptom must be rejected outright.
	db := chainDB(t, 220, 5, 3)
	// Add an isolated anomalous entity.
	if err := db.AddEntity(&telemetry.Entity{ID: "island", Type: telemetry.TypeVM, Name: "island"}); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 220; tt++ {
		v := 10.0
		if tt >= 215 {
			v = 90
		}
		if err := db.Observe("island", telemetry.MetricCPU, tt, v); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := graph.Build(db, []telemetry.EntityID{"back", "island"}, -1)
	m, err := Train(db, g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.EvaluateCandidate("island", telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}); ok {
		t.Fatal("unreachable candidate must not qualify")
	}
}

func TestDiagnoseDeterministic(t *testing.T) {
	_, m1 := trainChain(t)
	_, m2 := trainChain(t)
	d1, err := m1.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m2.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := d1.Ranked(), d2.Ranked()
	if len(r1) != len(r2) {
		t.Fatalf("non-deterministic lengths: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("non-deterministic ranking: %v vs %v", r1, r2)
		}
	}
}

func TestPredictMetric(t *testing.T) {
	_, m := trainChain(t)
	// Backend CPU is ~1.2*frontCPU + 3; prediction from current state should
	// be close to the current value.
	pred, ok := m.PredictMetric("back", telemetry.MetricCPU)
	if !ok {
		t.Fatal("factor should exist")
	}
	cur := m.CurrentValue("back", telemetry.MetricCPU)
	if math.Abs(pred-cur) > 10 {
		t.Fatalf("prediction %v too far from current %v", pred, cur)
	}
	if _, ok := m.PredictMetric("back", "nope"); ok {
		t.Fatal("unknown metric should report !ok")
	}
}

func TestLowSymptomDirection(t *testing.T) {
	// Invert the scenario: backend "throughput" collapses when client RPS
	// spikes (e.g. starvation). A Low symptom should still find the client.
	rng := rand.New(rand.NewSource(5))
	db := telemetry.NewDB(600)
	for _, e := range []*telemetry.Entity{
		{ID: "client", Type: telemetry.TypeClient, Name: "c"},
		{ID: "back", Type: telemetry.TypeVM, Name: "b"},
	} {
		if err := db.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Associate("client", "back", telemetry.Bidirectional); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 220; tt++ {
		rps := 50 + rng.NormFloat64()*3
		if tt >= 215 {
			rps += 200
		}
		thr := 1000 - 4*rps + rng.NormFloat64()*5
		if err := db.Observe("client", telemetry.MetricRPS, tt, rps); err != nil {
			t.Fatal(err)
		}
		if err := db.Observe("back", telemetry.MetricThroughput, tt, thr); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	m, err := Train(db, g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	diag, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricThroughput, High: false})
	if err != nil {
		t.Fatal(err)
	}
	// The client must be implicated; the symptom entity itself may also
	// appear (self-candidates are legal root causes by design).
	found := false
	for _, c := range diag.Causes {
		if c.Entity == "client" {
			found = true
		}
	}
	if !found {
		t.Fatalf("low-direction symptom should blame client, got %v", diag.Ranked())
	}
}

func TestConfigSanitized(t *testing.T) {
	var c Config // all zero
	s := c.sanitized()
	d := DefaultConfig()
	if s.TopB != d.TopB || s.GibbsRounds != d.GibbsRounds || s.Samples != d.Samples ||
		s.TrainWindow != d.TrainWindow || s.Alpha != d.Alpha || s.AnomalyZ != d.AnomalyZ {
		t.Fatalf("sanitized zero config should match defaults: %+v", s)
	}
	c = DefaultConfig()
	c.Alpha = 5 // invalid
	if got := c.sanitized().Alpha; got != d.Alpha {
		t.Fatalf("invalid alpha should reset, got %v", got)
	}
}

func TestRankedOrderByAnomalyScore(t *testing.T) {
	_, m := trainChain(t)
	diag, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diag.Causes); i++ {
		if diag.Causes[i-1].Score < diag.Causes[i].Score {
			t.Fatal("causes must be sorted by descending anomaly score")
		}
	}
}
