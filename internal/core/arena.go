package core

import "sync"

// arena is the per-chain scratch space of the batched Gibbs kernel. The
// sampler's state — one vector of n parallel chain values per touched
// (entity, metric) — lives in slot-indexed flat slices (see kernelTables'
// slot table), plus the merged draw buffers of the fixed-budget test and the
// float32 path's widening scratch. Every pass eagerly re-fills the slots its
// plan touches from the start state, so buffers never need clearing between
// passes, batches, or candidates; they just get reused at whatever capacity
// they last grew to.
//
// An arena is single-goroutine scratch; multi-chain and DiagnoseParallel
// workers each take their own from the model's pool.
type arena struct {
	vals64 [][]float64
	vals32 [][]float32
	// x is the per-sample feature gather buffer of generic (non-fused) steps.
	x []float64
	// d1/d2 hold the merged counterfactual/factual draws of the fixed-budget
	// test across all chains.
	d1, d2 []float64
	// conv is the float64 view of a float32 pass's symptom draws.
	conv []float64
}

func newArena() *arena { return &arena{} }

// slots64 returns the slot → chain-vector table, grown to nslots entries.
func (a *arena) slots64(nslots int) [][]float64 {
	if len(a.vals64) < nslots {
		nv := make([][]float64, nslots)
		copy(nv, a.vals64)
		a.vals64 = nv
	}
	return a.vals64
}

// slots32 is slots64 for the float32 kernel.
func (a *arena) slots32(nslots int) [][]float32 {
	if len(a.vals32) < nslots {
		nv := make([][]float32, nslots)
		copy(nv, a.vals32)
		a.vals32 = nv
	}
	return a.vals32
}

// draws1/draws2 return the two merged draw vectors, sized n.
func (a *arena) draws1(n int) []float64 {
	if cap(a.d1) < n {
		a.d1 = make([]float64, n)
	}
	return a.d1[:n]
}

func (a *arena) draws2(n int) []float64 {
	if cap(a.d2) < n {
		a.d2 = make([]float64, n)
	}
	return a.d2[:n]
}

// scratch64 returns the float32 path's widening buffer, sized n with at
// least hint capacity.
func (a *arena) scratch64(n, hint int) []float64 {
	if cap(a.conv) < n {
		a.conv = make([]float64, maxInt(n, hint))
	}
	return a.conv[:n]
}

// arenaPool hands out arenas to candidate evaluations; it is shared (by
// pointer) between a model and its Rebind copies, which is safe because an
// arena carries no model state.
type arenaPool struct{ p sync.Pool }

func newArenaPool() *arenaPool {
	return &arenaPool{p: sync.Pool{New: func() any { return newArena() }}}
}

func (ap *arenaPool) get() *arena  { return ap.p.Get().(*arena) }
func (ap *arenaPool) put(a *arena) { ap.p.Put(a) }
