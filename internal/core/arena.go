package core

import "sync"

// arena is the per-evaluation scratch space of the Gibbs resampler. One
// counterfactual test runs two resampling passes, each of which previously
// allocated a fresh chain buffer per touched (entity, metric) plus feature
// scratch — tens of thousands of short-lived slices per diagnosis. The arena
// keeps the buffers and hands them back across passes, batches, and (via the
// model's pool) candidates, with a generation counter standing in for
// clearing: a buffer whose gen is stale is reinitialized from the start
// state on first touch, exactly like a fresh allocation.
//
// An arena is single-goroutine scratch; DiagnoseParallel workers each take
// their own from the model's pool.
type arena struct {
	gen   int
	bufs  map[metricRef]*arenaBuf
	feats [][]float64
	x     []float64
}

type arenaBuf struct {
	gen  int
	vals []float64
}

func newArena() *arena {
	return &arena{bufs: make(map[metricRef]*arenaBuf)}
}

// reset invalidates every chain buffer (cheaply, by bumping the generation)
// so the next ensure reinitializes from its start state.
func (a *arena) reset() { a.gen++ }

// ensure returns the chain buffer for ref, sized n, initializing it from
// start[ref] if it has not been touched since the last reset. The returned
// slice is valid until the next reset.
func (a *arena) ensure(ref metricRef, n int, start map[metricRef]float64) []float64 {
	b := a.bufs[ref]
	if b == nil {
		b = &arenaBuf{gen: -1}
		a.bufs[ref] = b
	}
	if b.gen == a.gen && len(b.vals) == n {
		return b.vals
	}
	if cap(b.vals) < n {
		b.vals = make([]float64, n)
	} else {
		b.vals = b.vals[:n]
	}
	v := start[ref]
	for i := range b.vals {
		b.vals[i] = v
	}
	b.gen = a.gen
	return b.vals
}

// featureScratch returns a reusable [][]float64 of length k for gathering
// feature chains.
func (a *arena) featureScratch(k int) [][]float64 {
	if cap(a.feats) < k {
		a.feats = make([][]float64, k)
	}
	return a.feats[:k]
}

// arenaPool hands out arenas to candidate evaluations; it is shared (by
// pointer) between a model and its Rebind copies, which is safe because an
// arena carries no model state.
type arenaPool struct{ p sync.Pool }

func newArenaPool() *arenaPool {
	return &arenaPool{p: sync.Pool{New: func() any { return newArena() }}}
}

func (ap *arenaPool) get() *arena  { return ap.p.Get().(*arena) }
func (ap *arenaPool) put(a *arena) { a.reset(); ap.p.Put(a) }
