package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// RootCause is one diagnosed root-cause entity for a symptom.
type RootCause struct {
	Entity telemetry.EntityID
	// Score is the anomaly score used for ranking (higher ranks first).
	Score float64
	// PValue is the Welch t-test p-value of the counterfactual shift.
	PValue float64
	// Effect is the mean shift of the symptom metric under the
	// counterfactual, in units of the symptom metric's historical std
	// (positive = the counterfactual alleviates the symptom).
	Effect float64
	// Path is the shortest-path subgraph (candidate → symptom) the
	// resampler walked, in resampling order.
	Path []telemetry.EntityID
}

// Diagnosis is the result of one Diagnose call.
type Diagnosis struct {
	Symptom telemetry.Symptom
	// Causes is the ranked list of root-cause entities (best first).
	Causes []RootCause
	// Candidates is the pruned search space that was evaluated.
	Candidates []telemetry.EntityID
	// Elapsed is the wall-clock inference time (excluding training).
	Elapsed time.Duration
}

// Ranked returns just the ordered root-cause entity IDs.
func (d *Diagnosis) Ranked() []telemetry.EntityID {
	out := make([]telemetry.EntityID, len(d.Causes))
	for i, c := range d.Causes {
		out[i] = c.Entity
	}
	return out
}

// Diagnose runs the full inference of §4.2 for one symptom: prune the
// candidate search space, evaluate every candidate with the counterfactual
// resampling algorithm, keep the significant ones, and rank them by anomaly
// score.
func (m *Model) Diagnose(symptom telemetry.Symptom) (*Diagnosis, error) {
	if err := m.checkSymptom(symptom); err != nil {
		return nil, err
	}
	start := time.Now()
	deadline := time.Time{}
	if m.cfg.Timeout > 0 {
		deadline = start.Add(m.cfg.Timeout)
	}
	// The symptom entity itself is always a legal candidate: many real
	// incidents resolve to the symptomatic entity (a local memory leak, a
	// threshold excursion with no upstream driver). Its counterfactual is
	// the degenerate one-node path: normalizing its own anomalous metrics.
	candidates := append(m.Candidates(symptom.Entity), symptom.Entity)
	var causes []RootCause
	for _, cand := range candidates {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		verdict, ok := m.EvaluateCandidate(cand, symptom)
		if !ok {
			continue
		}
		causes = append(causes, verdict)
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].Score != causes[j].Score {
			return causes[i].Score > causes[j].Score
		}
		return causes[i].Entity < causes[j].Entity
	})
	return &Diagnosis{
		Symptom:    symptom,
		Causes:     causes,
		Candidates: candidates,
		Elapsed:    time.Since(start),
	}, nil
}

// checkSymptom validates that a symptom is diagnosable against this model.
func (m *Model) checkSymptom(symptom telemetry.Symptom) error {
	if !m.g.Contains(symptom.Entity) {
		return fmt.Errorf("core: symptom entity %q not in relationship graph", symptom.Entity)
	}
	if _, ok := m.factors[metricRef{symptom.Entity, symptom.Metric}]; !ok {
		return fmt.Errorf("core: no telemetry for symptom metric %s/%s", symptom.Entity, symptom.Metric)
	}
	return nil
}

// Candidates returns the pruned root-cause search space for a symptom
// entity: a threshold-guided BFS per §4.2. The symptom entity itself is
// always excluded; the same space is handed to the baselines for fairness.
func (m *Model) Candidates(symptom telemetry.EntityID) []telemetry.EntityID {
	return m.g.PrunedCandidates(symptom, m.IsAnomalous, m.cfg.MaxCandidates)
}

// EvaluateCandidate runs the counterfactual test: would moving candidate A's
// anomalous metrics two standard deviations toward normal significantly move
// the symptom metric toward normal? It returns the verdict and whether A
// qualifies as a root cause.
func (m *Model) EvaluateCandidate(a telemetry.EntityID, symptom telemetry.Symptom) (RootCause, bool) {
	d := symptom.Entity
	path := m.g.ShortestPathSubgraph(a, d)
	if path == nil {
		return RootCause{}, false // A cannot influence D in the graph
	}
	symRef := metricRef{d, symptom.Metric}
	symFactor := m.factors[symRef]
	if symFactor == nil {
		return RootCause{}, false
	}
	cf := m.counterfactualState(a)
	if cf == nil {
		return RootCause{}, false // nothing to perturb
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed ^ int64(hashID(a))<<1 ^ int64(hashID(d))))
	d1 := m.resampleSymptom(path, cf, symRef, rng)        // counterfactual start
	d2 := m.resampleSymptom(path, m.current, symRef, rng) // factual start

	alt := stats.Less // high symptom: counterfactual should be lower
	if !symptom.High {
		alt = stats.Greater
	}
	res, err := stats.WelchTTest(d1, d2, alt)
	if err != nil {
		return RootCause{}, false
	}
	shift := stats.Mean(d2) - stats.Mean(d1) // >0 when counterfactual lowers D
	if !symptom.High {
		shift = -shift
	}
	scale := symFactor.hstd
	if scale == 0 {
		scale = 1
	}
	effect := shift / scale
	rc := RootCause{
		Entity: a,
		Score:  m.AnomalyScore(a),
		PValue: res.P,
		Effect: effect,
		Path:   path,
	}
	if res.P > m.cfg.Alpha || effect < m.cfg.MinEffect {
		// The verdict is still returned populated so callers can inspect
		// why the candidate was rejected.
		return rc, false
	}
	return rc, true
}

// counterfactualState returns a copy of the current state with candidate A's
// anomalous metrics moved cfg.CounterfactualSigma standard deviations toward
// their historical means. When none of A's metrics clear the pruning
// threshold, the single most anomalous metric is moved instead; a candidate
// with no usable history yields nil.
func (m *Model) counterfactualState(a telemetry.EntityID) map[metricRef]float64 {
	cf := make(map[metricRef]float64, len(m.current))
	for k, v := range m.current {
		cf[k] = v
	}
	moved := false
	bestRef := metricRef{}
	bestZ := 0.0
	for _, name := range m.metricsOf[a] {
		ref := metricRef{a, name}
		f := m.factors[ref]
		if f == nil || f.hstd == 0 {
			continue
		}
		z := (m.current[ref] - f.hmean) / f.hstd
		az := math.Abs(z)
		if az > bestZ {
			bestZ, bestRef = az, ref
		}
		if az >= m.cfg.AnomalyZ {
			cf[ref] = m.moveTowardNormal(ref, z)
			moved = true
		}
	}
	if !moved {
		if bestZ == 0 {
			return nil
		}
		f := m.factors[bestRef]
		z := (m.current[bestRef] - f.hmean) / f.hstd
		cf[bestRef] = m.moveTowardNormal(bestRef, z)
	}
	return cf
}

// moveTowardNormal returns the counterfactual value for a metric whose
// current z-score is z: cfg.CounterfactualSigma standard deviations toward
// the historical mean, without overshooting it.
func (m *Model) moveTowardNormal(ref metricRef, z float64) float64 {
	f := m.factors[ref]
	step := m.cfg.CounterfactualSigma
	if step > math.Abs(z) {
		step = math.Abs(z)
	}
	if z > 0 {
		return m.current[ref] - step*f.hstd
	}
	return m.current[ref] + step*f.hstd
}

// resampleSymptom runs the Gibbs-variant resampler: starting from the given
// state, it resamples every metric of every node on the path (ordered by
// distance from the candidate), repeats for cfg.GibbsRounds rounds, and
// returns cfg.Samples Monte-Carlo draws of the symptom metric. The candidate
// (first node) is pinned: its state is the perturbation under test.
//
// All chains are advanced in lockstep so the per-factor feature assembly is
// amortized across samples.
func (m *Model) resampleSymptom(path []telemetry.EntityID, start map[metricRef]float64, symRef metricRef, rng *rand.Rand) []float64 {
	n := m.cfg.Samples
	// chainState[ref][i] is the value of ref in chain i.
	chainState := make(map[metricRef][]float64)
	ensure := func(ref metricRef) []float64 {
		vs, ok := chainState[ref]
		if !ok {
			vs = make([]float64, n)
			v := start[ref]
			for i := range vs {
				vs[i] = v
			}
			chainState[ref] = vs
		}
		return vs
	}
	// Pre-touch the symptom ref so a degenerate path still yields samples.
	ensure(symRef)

	x := make([]float64, 0, 16)
	for round := 0; round < m.cfg.GibbsRounds; round++ {
		for pi, id := range path {
			if pi == 0 {
				continue // the candidate's perturbed state is held fixed
			}
			for _, name := range m.metricsOf[id] {
				ref := metricRef{id, name}
				f := m.factors[ref]
				if f == nil {
					continue
				}
				out := ensure(ref)
				// Gather feature chains (ensuring initializes any feature
				// not yet materialized from the start state).
				featChains := make([][]float64, len(f.features))
				for j, fr := range f.features {
					featChains[j] = ensure(fr)
				}
				noise := f.model.ResidualStd()
				for i := 0; i < n; i++ {
					x = x[:0]
					for j := range featChains {
						x = append(x, featChains[j][i])
					}
					v := f.model.Predict(x)
					if noise > 0 {
						v += rng.NormFloat64() * noise
					}
					out[i] = v
				}
			}
		}
	}
	res := make([]float64, n)
	copy(res, chainState[symRef])
	return res
}

// hashID gives a stable small hash of an entity ID for seeding.
func hashID(id telemetry.EntityID) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}
