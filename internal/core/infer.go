package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"murphy/internal/obs"
	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// RootCause is one diagnosed root-cause entity for a symptom.
type RootCause struct {
	Entity telemetry.EntityID
	// Score is the anomaly score used for ranking (higher ranks first).
	Score float64
	// PValue is the Welch t-test p-value of the counterfactual shift.
	PValue float64
	// Effect is the mean shift of the symptom metric under the
	// counterfactual, in units of the symptom metric's historical std
	// (positive = the counterfactual alleviates the symptom).
	Effect float64
	// Path is the shortest-path subgraph (candidate → symptom) the
	// resampler walked, in resampling order. The slice may be shared with
	// the model's path cache; treat it as read-only.
	Path []telemetry.EntityID
	// SamplesUsed is the total number of Monte-Carlo draws the verdict
	// consumed across the factual and counterfactual runs. Without early
	// stopping it is 2×cfg.Samples; with cfg.EarlyStop it shows how much of
	// the budget the sequential test actually needed.
	SamplesUsed int
	// Degraded marks an anomaly-score-only fallback verdict: the candidate's
	// counterfactual evaluation failed or was cut off, so it was ranked by
	// anomaly score alone without the significance test (PValue and Effect
	// are NaN). Reason says why.
	Degraded bool
	// Reason explains a degraded verdict ("deadline exceeded", "panic: …").
	Reason string
}

// SkippedCandidate records one candidate whose counterfactual evaluation
// did not complete, and why.
type SkippedCandidate struct {
	Entity telemetry.EntityID
	Reason string
}

// Diagnosis is the result of one Diagnose call.
type Diagnosis struct {
	Symptom telemetry.Symptom
	// Causes is the ranked list of root-cause entities (best first).
	Causes []RootCause
	// Degraded ranks (by anomaly score alone) the candidates whose full
	// counterfactual evaluation failed or was cut short — the degradation
	// policy's fallback. Entries carry Degraded=true and a Reason. They are
	// kept separate from Causes so a degraded guess can never displace a
	// certified root cause.
	Degraded []RootCause
	// Skipped lists every candidate that was not fully evaluated, with the
	// reason (deadline, cancellation, evaluator panic).
	Skipped []SkippedCandidate
	// Partial is true when at least one candidate was skipped: the ranked
	// lists are valid but may be incomplete.
	Partial bool
	// Candidates is the pruned search space that was evaluated.
	Candidates []telemetry.EntityID
	// Elapsed is the wall-clock inference time (excluding training).
	Elapsed time.Duration
}

// Ranked returns just the ordered root-cause entity IDs.
func (d *Diagnosis) Ranked() []telemetry.EntityID {
	out := make([]telemetry.EntityID, len(d.Causes))
	for i, c := range d.Causes {
		out[i] = c.Entity
	}
	return out
}

// Diagnose runs the full inference of §4.2 for one symptom: prune the
// candidate search space, evaluate every candidate with the counterfactual
// resampling algorithm, keep the significant ones, and rank them by anomaly
// score. It is DiagnoseContext with a background context (cfg.Timeout, when
// set, still bounds the call).
func (m *Model) Diagnose(symptom telemetry.Symptom) (*Diagnosis, error) {
	return m.DiagnoseContext(context.Background(), symptom)
}

// DiagnoseContext is Diagnose under cooperative cancellation. The deadline
// semantics implement graceful degradation rather than all-or-nothing:
//
//   - An expired deadline (the context's, or cfg.Timeout) stops evaluating
//     further candidates and returns a *partial* Diagnosis — the causes
//     certified so far stay ranked, every unevaluated candidate is recorded
//     in Skipped with a reason and falls back to the anomaly-score-only
//     Degraded ranking. No error is returned: an operator with a deadline
//     wants the best available answer, not a timeout.
//   - An explicitly cancelled context returns promptly with an error
//     wrapping context.Canceled (alongside the partial diagnosis assembled
//     so far): cancellation means the answer is no longer wanted.
//
// A candidate evaluation that panics (a poisoned factor, a bug in a custom
// trainer) is recovered, recorded in Skipped, and degraded like a timeout,
// so one bad candidate cannot take down a diagnosis.
func (m *Model) DiagnoseContext(ctx context.Context, symptom telemetry.Symptom) (*Diagnosis, error) {
	if err := m.checkSymptom(symptom); err != nil {
		return nil, err
	}
	if m.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.Timeout)
		defer cancel()
	}
	start := time.Now()
	// The symptom entity itself is always a legal candidate: many real
	// incidents resolve to the symptomatic entity (a local memory leak, a
	// threshold excursion with no upstream driver). Its counterfactual is
	// the degenerate one-node path: normalizing its own anomalous metrics.
	sp := m.obs.StartStage(obs.StagePrune)
	candidates := append(m.Candidates(symptom.Entity), symptom.Entity)
	sp.End()
	m.obs.Add(obs.CtrCandidatesPruned, int64(m.g.Len()-len(candidates)))
	d := &Diagnosis{Symptom: symptom, Candidates: candidates}
	sp = m.obs.StartStage(obs.StageTest)
	for i, cand := range candidates {
		if err := ctx.Err(); err != nil {
			m.recordSkip(d, cand, skipReason(err))
			continue
		}
		verdict, ok, err := m.evaluateCandidateSafe(ctx, cand, symptom)
		if err != nil {
			m.recordSkip(d, cand, evalFailReason(err))
			continue
		}
		m.obs.Add(obs.CtrCandidatesTested, 1)
		if ok {
			m.obs.Add(obs.CtrCausesCertified, 1)
			d.Causes = append(d.Causes, verdict)
		}
		m.obs.Progress(obs.StageTest, i+1, len(candidates), string(cand))
	}
	sp.End()
	sp = m.obs.StartStage(obs.StageRank)
	finishDiagnosis(d, start)
	sp.End()
	if errors.Is(ctx.Err(), context.Canceled) {
		return d, fmt.Errorf("core: diagnosis cancelled: %w", ctx.Err())
	}
	return d, nil
}

// skipReason renders a context error as a skip reason.
func skipReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline exceeded"
	}
	return "cancelled"
}

// evalFailReason renders an evaluation failure (context abort mid-sampling,
// or a recovered panic) as a skip reason.
func evalFailReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return skipReason(err)
	}
	return err.Error()
}

// recordSkip registers a not-fully-evaluated candidate: a Skipped entry plus
// an anomaly-score-only Degraded verdict (the degradation policy: when the
// counterfactual test cannot run, rank by how anomalous the entity looks).
func (m *Model) recordSkip(d *Diagnosis, cand telemetry.EntityID, reason string) {
	m.obs.Add(obs.CtrCandidatesSkipped, 1)
	d.Skipped = append(d.Skipped, SkippedCandidate{Entity: cand, Reason: reason})
	d.Degraded = append(d.Degraded, RootCause{
		Entity:   cand,
		Score:    m.AnomalyScore(cand),
		PValue:   math.NaN(),
		Effect:   math.NaN(),
		Degraded: true,
		Reason:   reason,
	})
}

// finishDiagnosis ranks the cause lists and stamps the partial flag.
func finishDiagnosis(d *Diagnosis, start time.Time) {
	sortCauses(d.Causes)
	sortCauses(d.Degraded)
	d.Partial = len(d.Skipped) > 0
	d.Elapsed = time.Since(start)
}

func sortCauses(causes []RootCause) {
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].Score != causes[j].Score {
			return causes[i].Score > causes[j].Score
		}
		return causes[i].Entity < causes[j].Entity
	})
}

// evaluateCandidateSafe runs one candidate evaluation under panic recovery
// and cancellation: a panic or a context abort becomes an error, never a
// crashed or deadlocked diagnosis.
func (m *Model) evaluateCandidateSafe(ctx context.Context, a telemetry.EntityID, symptom telemetry.Symptom) (rc RootCause, ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			rc, ok = RootCause{}, false
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return m.evaluateCandidate(ctx, a, symptom)
}

// checkSymptom validates that a symptom is diagnosable against this model.
func (m *Model) checkSymptom(symptom telemetry.Symptom) error {
	if !m.g.Contains(symptom.Entity) {
		return fmt.Errorf("core: symptom entity %q not in relationship graph", symptom.Entity)
	}
	if _, ok := m.factors[metricRef{symptom.Entity, symptom.Metric}]; !ok {
		return fmt.Errorf("core: no telemetry for symptom metric %s/%s", symptom.Entity, symptom.Metric)
	}
	return nil
}

// Candidates returns the pruned root-cause search space for a symptom
// entity: a threshold-guided BFS per §4.2. The symptom entity itself is
// always excluded; the same space is handed to the baselines for fairness.
func (m *Model) Candidates(symptom telemetry.EntityID) []telemetry.EntityID {
	return m.g.PrunedCandidates(symptom, m.IsAnomalous, m.cfg.MaxCandidates)
}

// EvaluateCandidate runs the counterfactual test: would moving candidate A's
// anomalous metrics two standard deviations toward normal significantly move
// the symptom metric toward normal? It returns the verdict and whether A
// qualifies as a root cause.
func (m *Model) EvaluateCandidate(a telemetry.EntityID, symptom telemetry.Symptom) (RootCause, bool) {
	rc, ok, _ := m.evaluateCandidate(context.Background(), a, symptom)
	return rc, ok
}

// evaluateCandidate is EvaluateCandidate under a context: the per-candidate
// Gibbs sampling loop checks for cancellation between resampling passes, so
// a deadline cuts a stalled evaluation short instead of running it to
// completion.
func (m *Model) evaluateCandidate(ctx context.Context, a telemetry.EntityID, symptom telemetry.Symptom) (RootCause, bool, error) {
	if m.evalHook != nil {
		m.evalHook(a)
	}
	if m.obs.Enabled() {
		t0 := time.Now()
		defer func() {
			m.obs.Observe(obs.HistTestWallMicros, time.Since(t0).Microseconds())
		}()
	}
	d := symptom.Entity
	path := m.paths.ShortestPathSubgraph(a, d)
	if path == nil {
		return RootCause{}, false, nil // A cannot influence D in the graph
	}
	symRef := metricRef{d, symptom.Metric}
	symFactor := m.factors[symRef]
	if symFactor == nil {
		return RootCause{}, false, nil
	}
	ov := m.counterfactualOverrides(a)
	if ov == nil {
		return RootCause{}, false, nil // nothing to perturb
	}
	alt := stats.Less // high symptom: counterfactual should be lower
	if !symptom.High {
		alt = stats.Greater
	}
	ar := m.arenas.get()
	defer m.arenas.put(ar)

	scale := symFactor.hstd
	if scale == 0 {
		scale = 1
	}
	sign := 1.0 // orient shift so >0 means "counterfactual moves D toward normal"
	if !symptom.High {
		sign = -1
	}
	plan := m.planFor(a, symRef, path)
	res, shift, used, statErr := m.sampleCandidate(ctx, a, d, plan, ov, alt, ar, sign/scale)
	if statErr != nil {
		if errors.Is(statErr, stats.ErrInsufficientData) {
			return RootCause{}, false, nil
		}
		return RootCause{}, false, statErr
	}
	m.obs.Observe(obs.HistSamplesPerTest, int64(used))
	effect := sign * shift / scale
	rc := RootCause{
		Entity:      a,
		Score:       m.AnomalyScore(a),
		PValue:      res.P,
		Effect:      effect,
		Path:        path,
		SamplesUsed: used,
	}
	if res.P > m.cfg.Alpha || effect < m.cfg.MinEffect {
		// The verdict is still returned populated so callers can inspect
		// why the candidate was rejected.
		return rc, false, nil
	}
	return rc, true, nil
}

// earlyStopBatch is the draw granularity of the sequential test; the verdict
// is re-examined after every counterfactual+factual batch pair once
// earlyStopMinSamples draws per side have accumulated.
const (
	earlyStopBatch      = 256
	earlyStopMinSamples = 512
)

// sampleCandidate runs one candidate's counterfactual test on the batched
// kernel, returning the test result, the raw mean shift
// mean(factual)−mean(counterfactual), and the total draws consumed. It is
// the single sampling path behind every configuration — fixed-budget or
// sequential, one chain or many — with the mode differences reduced to seed
// derivation, budget partitioning, and when the verdict is examined:
//
//   - Fixed budget (cfg.EarlyStop off): every chain draws its whole quota
//     counterfactual-then-factual from one stream into its owned segment of
//     the merged draw vectors, then one batch Welch t-test runs on the
//     merge. A single chain reproduces the original sequential sampler's
//     stream bit-for-bit (one pairSeed stream, CF then F).
//
//   - Sequential (cfg.EarlyStop on): each chain owns two independent
//     streams (counterfactual and factual, so neither run's draws depend on
//     where the other stopped) and draws in earlyStopBatch-sized rounds;
//     batches merge into the streaming Welch state in chain order, and the
//     shared three-exit verdict (earlyStopVerdict) decides when to stop:
//
//   - the effect is decisively below MinEffect → rejected, whatever p
//     says (this is what stops near-null candidates: their t statistic
//     hovers in the undecided band forever, but their effect pins to ~0
//     quickly);
//
//   - p is decisively above Alpha → rejected;
//
//   - p is decisively below Alpha AND the effect is decisively above
//     MinEffect → accepted.
//
// Chain c always owns the same budget slice and the same seeds, and merges
// happen in chain order, so for a fixed chain count every verdict is
// bit-identical no matter how many goroutines actually ran. Seed derivation
// is keyed on the configured chain count (not the budget-clamped effective
// one): a single-chain config uses the pairSeed stream directly — the
// historical bit pattern the golden rankings pin — while any multi-chain
// config derives per-chain streams through chainSeed.
//
// effScale maps a raw mean shift to the signed effect the accept criterion
// uses (±1/hstd of the symptom factor).
func (m *Model) sampleCandidate(ctx context.Context, a, d telemetry.EntityID, plan *pathPlan, ov *overrides, alt stats.Alternative, ar *arena, effScale float64) (stats.TTestResult, float64, int, error) {
	n := m.cfg.Samples
	base := m.pairSeed(a, d)
	multi := m.cfg.Chains > 1
	k := 1
	if multi {
		k = m.chainCount(n)
		m.obs.Add(obs.CtrGibbsChains, int64(k))
	}
	seedOf := func(c int) int64 {
		if multi {
			return chainSeed(base, c)
		}
		return base
	}

	if !m.cfg.EarlyStop {
		d1 := ar.draws1(n) // counterfactual draws
		d2 := ar.draws2(n) // factual draws
		err := m.runChains(ctx, k, ar, func(c int, car *arena) error {
			lo, hi := chainBounds(n, k, c)
			ns := m.newStream(seedOf(c))
			out, err := m.runPass(ctx, plan, ov, ns, car, hi-lo)
			if err != nil {
				return err
			}
			copy(d1[lo:hi], out) // the factual pass below reuses the arena
			out, err = m.runPass(ctx, plan, nil, ns, car, hi-lo)
			if err != nil {
				return err
			}
			copy(d2[lo:hi], out)
			return nil
		})
		if err != nil {
			return stats.TTestResult{}, 0, 0, err
		}
		res, err := stats.WelchTTest(d1, d2, alt)
		if err != nil {
			return stats.TTestResult{}, 0, 0, err
		}
		return res, stats.Mean(d2) - stats.Mean(d1), 2 * n, nil
	}

	// esChain is one chain's sequential-test state: its two noise streams,
	// its share of the budget, and reusable buffers holding the current
	// round's draws until the in-order merge.
	type esChain struct {
		cf, f   noiseStream
		quota   int
		drawn   int
		cfD, fD []float64
	}
	chains := make([]*esChain, k)
	for c := range chains {
		lo, hi := chainBounds(n, k, c)
		seed := seedOf(c)
		chains[c] = &esChain{
			cf:    m.newStream(seed),
			f:     m.newStream(seed ^ 0x5e9c3779b97f4a7d), // independent stream
			quota: hi - lo,
		}
	}
	zConf := stats.NormalQuantile(m.cfg.EarlyStopConfidence)
	var st stats.StreamingWelch
	minDraws := earlyStopMinSamples
	if minDraws > n {
		minDraws = n
	}
	decisive := false
	for drawn := 0; drawn < n && !decisive; {
		err := m.runChains(ctx, k, ar, func(c int, car *arena) error {
			ch := chains[c]
			b := min(earlyStopBatch, ch.quota-ch.drawn)
			ch.cfD, ch.fD = ch.cfD[:0], ch.fD[:0]
			if b == 0 {
				return nil
			}
			out, err := m.runPass(ctx, plan, ov, ch.cf, car, b)
			if err != nil {
				return err
			}
			ch.cfD = append(ch.cfD, out...)
			out, err = m.runPass(ctx, plan, nil, ch.f, car, b)
			if err != nil {
				return err
			}
			ch.fD = append(ch.fD, out...)
			ch.drawn += b
			return nil
		})
		if err != nil {
			return stats.TTestResult{}, 0, 0, err
		}
		for _, ch := range chains { // merge in chain order: deterministic moments
			st.A.AddAll(ch.cfD)
			st.B.AddAll(ch.fD)
			drawn += len(ch.cfD)
		}
		if drawn < minDraws {
			continue
		}
		if m.earlyStopVerdict(&st, alt, zConf, effScale) {
			decisive = true
		}
	}
	if decisive {
		m.obs.Add(obs.CtrEarlyStopDecisive, 1)
	} else {
		m.obs.Add(obs.CtrEarlyStopExhausted, 1)
	}
	res, err := st.Test(alt)
	if err != nil {
		return stats.TTestResult{}, 0, 0, err
	}
	return res, st.B.Mean() - st.A.Mean(), st.A.Count() + st.B.Count(), nil
}

// earlyStopVerdict evaluates the three decisive exits of the sequential test
// against the current streaming state (A = counterfactual draws, B = factual
// draws), returning true when sampling can stop:
//
//   - the effect is decisively below MinEffect → rejected, whatever p says;
//   - p is decisively above Alpha → rejected;
//   - p is decisively below Alpha AND the effect is decisively above
//     MinEffect → accepted.
//
// It is shared by the single-stream and the multi-chain sequential samplers so
// both stop on exactly the same criteria.
func (m *Model) earlyStopVerdict(st *stats.StreamingWelch, alt stats.Alternative, zConf, effScale float64) bool {
	eff := effScale * (st.B.Mean() - st.A.Mean())
	na, nb := float64(st.A.Count()), float64(st.B.Count())
	effSE := math.Abs(effScale) * math.Sqrt(st.A.Variance()/na+st.B.Variance()/nb)
	if eff+zConf*effSE < m.cfg.MinEffect {
		return true // effect decisively below MinEffect: rejected whatever p says
	}
	sig, decided := st.Decisive(alt, m.cfg.Alpha, zConf)
	if !decided {
		return false
	}
	if !sig {
		return true // p decisively above Alpha: rejected no matter the effect
	}
	return eff-zConf*effSE > m.cfg.MinEffect // both arms of the accept criterion decided
}

// counterfactualOverrides returns candidate A's counterfactual start state:
// its anomalous metrics moved cfg.CounterfactualSigma standard deviations
// toward their historical means, as a sparse slot override list on top of
// the model's current state. When none of A's metrics clear the pruning
// threshold, the single most anomalous metric is moved instead; a candidate
// with no usable history yields nil. (The sampler used to copy the whole
// current-state map per candidate just to move these few entries; the
// override list is the same perturbation without the copy.)
func (m *Model) counterfactualOverrides(a telemetry.EntityID) *overrides {
	slotOf := m.slots()
	ov := &overrides{}
	moved := false
	bestRef := metricRef{}
	bestZ := 0.0
	for _, name := range m.metricsOf[a] {
		ref := metricRef{a, name}
		f := m.factors[ref]
		if f == nil || f.hstd == 0 {
			continue
		}
		z := (m.current[ref] - f.hmean) / f.hstd
		az := math.Abs(z)
		if az > bestZ {
			bestZ, bestRef = az, ref
		}
		if az >= m.cfg.AnomalyZ {
			ov.slots = append(ov.slots, slotOf[ref])
			ov.vals = append(ov.vals, m.moveTowardNormal(ref, z))
			moved = true
		}
	}
	if !moved {
		if bestZ == 0 {
			return nil
		}
		f := m.factors[bestRef]
		z := (m.current[bestRef] - f.hmean) / f.hstd
		ov.slots = append(ov.slots, slotOf[bestRef])
		ov.vals = append(ov.vals, m.moveTowardNormal(bestRef, z))
	}
	return ov
}

// moveTowardNormal returns the counterfactual value for a metric whose
// current z-score is z: cfg.CounterfactualSigma standard deviations toward
// the historical mean, without overshooting it.
func (m *Model) moveTowardNormal(ref metricRef, z float64) float64 {
	f := m.factors[ref]
	step := m.cfg.CounterfactualSigma
	if step > math.Abs(z) {
		step = math.Abs(z)
	}
	if z > 0 {
		return m.current[ref] - step*f.hstd
	}
	return m.current[ref] + step*f.hstd
}

// pairSeed derives the RNG base seed for one (candidate, symptom) test:
// cfg.Seed mixed with hashes of both entity IDs, or whatever cfg.SeedFor
// says when the hook is set (metamorphic rename testing).
func (m *Model) pairSeed(a, d telemetry.EntityID) int64 {
	if m.cfg.SeedFor != nil {
		return m.cfg.SeedFor(a, d)
	}
	return PairSeed(m.cfg.Seed, a, d)
}

// PairSeed is the default per-candidate-pair seed derivation: the configured
// base seed mixed with stable hashes of the candidate and symptom entity IDs.
// It is exported so metamorphic transforms that rename entities can install a
// Config.SeedFor hook reproducing the original IDs' streams.
func PairSeed(seed int64, a, d telemetry.EntityID) int64 {
	return seed ^ int64(hashID(a))<<1 ^ int64(hashID(d))
}

// hashID gives a stable small hash of an entity ID for seeding.
func hashID(id telemetry.EntityID) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}
