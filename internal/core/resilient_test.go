package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// TestDiagnosePanickingCandidate is the regression test for the worker-pool
// deadlock: a panicking candidate evaluation used to kill the worker
// goroutine before wg.Done, hanging every DiagnoseParallel caller. The
// panic must instead become a recorded skip while the rest of the diagnosis
// completes.
func TestDiagnosePanickingCandidate(t *testing.T) {
	for _, mode := range []string{"sequential", "parallel"} {
		t.Run(mode, func(t *testing.T) {
			_, m := trainChain(t)
			m.SetEvalHook(func(a telemetry.EntityID) {
				if a == "decoy" {
					panic("poisoned evaluator")
				}
			})
			sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}

			done := make(chan struct{})
			var diag *Diagnosis
			var err error
			go func() {
				defer close(done)
				if mode == "parallel" {
					diag, err = m.DiagnoseParallel(sym, 4)
				} else {
					diag, err = m.Diagnose(sym)
				}
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("diagnosis deadlocked on a panicking candidate")
			}
			if err != nil {
				t.Fatal(err)
			}
			if !diag.Partial {
				t.Fatal("a panicking candidate should mark the diagnosis partial")
			}
			var skip *SkippedCandidate
			for i := range diag.Skipped {
				if diag.Skipped[i].Entity == "decoy" {
					skip = &diag.Skipped[i]
				}
			}
			if skip == nil {
				t.Fatalf("decoy should be recorded as skipped: %+v", diag.Skipped)
			}
			if !strings.Contains(skip.Reason, "panic") {
				t.Fatalf("skip reason = %q, want a panic marker", skip.Reason)
			}
			// The true cause still comes out of the surviving candidates.
			found := false
			for _, c := range diag.Causes {
				if c.Entity == "client" {
					found = true
				}
				if c.Degraded {
					t.Fatal("certified cause list must not contain degraded entries")
				}
			}
			if !found {
				t.Fatalf("client should survive the poisoned decoy: %v", diag.Ranked())
			}
			// The decoy falls back to the degraded ranking, flagged.
			if len(diag.Degraded) != 1 || diag.Degraded[0].Entity != "decoy" || !diag.Degraded[0].Degraded {
				t.Fatalf("degraded = %+v", diag.Degraded)
			}
		})
	}
}

func TestDiagnoseContextCancelled(t *testing.T) {
	_, m := trainChain(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	diag, err := m.DiagnoseContext(ctx, telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled diagnosis did not return promptly")
	}
	if diag == nil || !diag.Partial {
		t.Fatal("cancellation should still hand back the partial diagnosis")
	}
	// Parallel path: same contract.
	if _, err := m.DiagnoseParallelContext(ctx, telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want wrapped context.Canceled", err)
	}
}

func TestDiagnoseContextDeadlinePartial(t *testing.T) {
	db := chainDB(t, 220, 5, 33)
	g, err := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy sampling so full inference takes visibly longer than the
	// deadline; the ctx checks inside the Gibbs loop must cut it short.
	cfg := testConfig()
	cfg.Samples = 60000
	cfg.GibbsRounds = 8
	m, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}
	deadline := 30 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	diag, err := m.DiagnoseContext(ctx, sym)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("an expired deadline must degrade, not error: %v", err)
	}
	if diag == nil {
		t.Fatal("nil diagnosis")
	}
	if !diag.Partial || len(diag.Skipped) == 0 {
		t.Fatalf("deadline should leave a partial diagnosis: partial=%v skipped=%d evaluated causes=%d",
			diag.Partial, len(diag.Skipped), len(diag.Causes))
	}
	for _, s := range diag.Skipped {
		if s.Reason != "deadline exceeded" {
			t.Fatalf("skip reason = %q", s.Reason)
		}
	}
	// Generous CI margin, but far below the multi-second full inference:
	// the acceptance target is ~1.5x the deadline.
	if elapsed > time.Second {
		t.Fatalf("deadline %v overshot to %v", deadline, elapsed)
	}
	// Degraded fallback is ranked by anomaly score (descending).
	for i := 1; i < len(diag.Degraded); i++ {
		if diag.Degraded[i-1].Score < diag.Degraded[i].Score {
			t.Fatal("degraded list must be ranked by anomaly score")
		}
	}
}

func TestTrainContextCancelled(t *testing.T) {
	db := chainDB(t, 220, 5, 34)
	g, err := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainContext(ctx, db, g, testConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// brokenSource fails every read of one entity and passes the rest through.
type brokenSource struct {
	db     *telemetry.DB
	broken telemetry.EntityID
}

func (b *brokenSource) Len() int                                   { return b.db.Len() }
func (b *brokenSource) Entities() []telemetry.EntityID             { return b.db.Entities() }
func (b *brokenSource) MetricNames(id telemetry.EntityID) []string { return b.db.MetricNames(id) }
func (b *brokenSource) ReadRawWindow(ctx context.Context, id telemetry.EntityID, metric string, lo, hi int) ([]float64, error) {
	if id == b.broken {
		return nil, fmt.Errorf("collector shard down for %s", id)
	}
	return b.db.ReadRawWindow(ctx, id, metric, lo, hi)
}

func TestTrainSourceDegradesFailedReads(t *testing.T) {
	db := chainDB(t, 220, 5, 35)
	g, err := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	src := &brokenSource{db: db, broken: "decoy"}
	m, err := TrainSource(context.Background(), db, src, g, testConfig())
	if err != nil {
		t.Fatalf("unreadable series must degrade, not fail training: %v", err)
	}
	fails := m.ReadFailures()
	if len(fails) == 0 {
		t.Fatal("read failures should be recorded")
	}
	for _, f := range fails {
		if f.Entity != "decoy" {
			t.Fatalf("unexpected failure %+v", f)
		}
	}
	// The diagnosis still runs and still finds the true cause: the decoy's
	// missing history makes it "novel", not fatal.
	diag, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range diag.Causes {
		if c.Entity == "client" {
			found = true
		}
	}
	if !found {
		t.Fatalf("client should survive a dead collector shard: %v", diag.Ranked())
	}
}

func TestTrainSourceMatchesDirectTraining(t *testing.T) {
	db := chainDB(t, 220, 5, 36)
	g, err := graph.Build(db, []telemetry.EntityID{"back"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Train(db, g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	viaSrc, err := TrainSource(context.Background(), db, db, g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}
	a, err := direct.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaSrc.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Causes) != len(b.Causes) {
		t.Fatalf("cause counts differ: %d vs %d", len(a.Causes), len(b.Causes))
	}
	for i := range a.Causes {
		if a.Causes[i].Entity != b.Causes[i].Entity || a.Causes[i].PValue != b.Causes[i].PValue {
			t.Fatalf("rank %d differs: %+v vs %+v", i, a.Causes[i], b.Causes[i])
		}
	}
}

func TestParallelPartialMatchesSequentialCertified(t *testing.T) {
	// With a panicking candidate, the certified causes of the parallel and
	// sequential paths must still agree (determinism under degradation).
	sym := telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}
	run := func(parallel bool) *Diagnosis {
		_, m := trainChain(t)
		m.SetEvalHook(func(a telemetry.EntityID) {
			if a == "front" {
				panic("poisoned")
			}
		})
		var d *Diagnosis
		var err error
		if parallel {
			d, err = m.DiagnoseParallel(sym, 4)
		} else {
			d, err = m.Diagnose(sym)
		}
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	seq, par := run(false), run(true)
	if len(seq.Causes) != len(par.Causes) {
		t.Fatalf("certified counts differ: %d vs %d", len(seq.Causes), len(par.Causes))
	}
	for i := range seq.Causes {
		if seq.Causes[i].Entity != par.Causes[i].Entity {
			t.Fatalf("rank %d differs: %v vs %v", i, seq.Ranked(), par.Ranked())
		}
	}
	if len(seq.Skipped) != 1 || len(par.Skipped) != 1 {
		t.Fatalf("skips: seq=%v par=%v", seq.Skipped, par.Skipped)
	}
}
