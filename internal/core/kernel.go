// The batched Gibbs sampling kernel. The original resampler walked the
// shortest-path subgraph per sample with a map lookup and an interface call
// per (factor, feature, sample) triple; this kernel compiles the walk once
// per (candidate, symptom) pair into a flat execution plan — slot-indexed
// state vectors, per-step feature index tables, and the trained regression
// terms as contiguous slices — and then applies each factor across the whole
// chain vector at a time with the helpers in internal/mat.
//
// Two arithmetic widths share the plan. The float64 path reproduces the
// original per-sample sampler bit-for-bit: math/rand noise streams consumed
// in the same order, and the term arithmetic c·(x−mean)/std applied in
// Ridge.Predict's exact operation order (mat.AccumTerm). The float32 fast
// path folds each term to one multiply-add (w = c/std, means folded into a
// per-step bias) and swaps the noise source for the ziggurat in
// internal/stats — a different, faster stream, validated against float64 by
// the metamorph invariants rather than bit-compared.

package core

import (
	"context"
	"math/rand"
	"sync"

	"murphy/internal/mat"
	"murphy/internal/obs"
	"murphy/internal/regress"
	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// kernelTables holds the sampling kernel's compiled artifacts: the global
// metricRef → slot table and the per-(candidate, symptom) plan cache. One
// instance is shared (by pointer) across a model and its Rebind copies —
// both tables depend only on factor topology and trained weights, which
// Rebind preserves (factor value-copies share the trained model pointers).
type kernelTables struct {
	once   sync.Once
	slotOf map[metricRef]int32
	nslots int

	mu    sync.RWMutex
	plans map[planKey]*pathPlan
}

func newKernelTables() *kernelTables {
	return &kernelTables{plans: make(map[planKey]*pathPlan)}
}

// planKey identifies one compiled plan: the candidate, the symptom entity,
// and the symptom metric (the path is a pure function of the first two via
// the subgraph cache).
type planKey struct {
	a, d   telemetry.EntityID
	metric string
}

// planStep is one factor application of a resampling round: read the feature
// slots, predict, add noise, write the output slot.
type planStep struct {
	out   int32
	feats []int32
	// Linear fast path (model == nil): the standardized ridge terms, aliasing
	// the trained model's slices. Applied per feature via mat.AccumTerm so the
	// arithmetic stays bit-identical to Ridge.Predict.
	coef, mean, std []float64
	intercept       float64
	// Folded float32 form: w32[j] = coef[j]/std[j], with the means folded
	// into bias32, so the float32 kernel does one multiply-add per feature.
	w32    []float32
	bias32 float32
	// model is the generic per-sample fallback: non-linear regressors, an
	// untrained factor, or a factor whose target aliases one of its own
	// features (where the batched form would break read-after-write order).
	model   regress.Predictor
	noise   float64
	noise32 float32
}

// pathPlan is the compiled resampling walk for one (candidate, symptom)
// pair: one round's steps in the original path iteration order (candidate
// node excluded — its perturbed state is pinned), plus the deduplicated set
// of slots the walk touches (for start-state initialization) and the symptom
// metric's slot.
type pathPlan struct {
	steps   []planStep
	touched []int32
	symSlot int32
}

// linearTermer is the regressor interface of the fused fast path.
type linearTermer interface {
	LinearTerms() (coef, mean, std []float64, intercept float64, ok bool)
}

// slots builds (once) the metricRef → slot table covering every factor
// target and feature, and returns it.
func (m *Model) slots() map[metricRef]int32 {
	kt := m.kern
	kt.once.Do(func() {
		slotOf := make(map[metricRef]int32)
		add := func(r metricRef) {
			if _, ok := slotOf[r]; !ok {
				slotOf[r] = int32(len(slotOf))
			}
		}
		for ref, f := range m.factors {
			add(ref)
			for _, fr := range f.features {
				add(fr)
			}
		}
		kt.slotOf = slotOf
		kt.nslots = len(slotOf)
	})
	return kt.slotOf
}

// slotBase caches a model's start state (`current`) as slot-indexed flat
// vectors, built lazily on first use. Per-model, never shared: Rebind
// changes `current`, so each copy gets a fresh one.
type slotBase struct {
	once64 sync.Once
	v64    []float64
	once32 sync.Once
	v32    []float32
}

func (m *Model) base64() []float64 {
	b := m.base
	b.once64.Do(func() {
		slotOf := m.slots()
		v := make([]float64, m.kern.nslots)
		for ref, s := range slotOf {
			v[s] = m.current[ref]
		}
		b.v64 = v
	})
	return b.v64
}

func (m *Model) base32() []float32 {
	b := m.base
	b.once32.Do(func() {
		v64 := m.base64()
		v := make([]float32, len(v64))
		for i, x := range v64 {
			v[i] = float32(x)
		}
		b.v32 = v
	})
	return b.v32
}

// overrides is one candidate's counterfactual start state as a sparse
// slot → value list. The sampler used to copy the entire current-state map
// per candidate just to move a handful of entries; the override list
// replaces the copy with the moved entries alone, applied on top of the
// model's flat base vectors at pass start.
type overrides struct {
	slots []int32
	vals  []float64
}

// planFor returns the compiled plan for one (candidate, symptom) pair,
// compiling and caching it on first use. Candidates re-tested across
// diagnoses (and Rebind copies) skip the per-ref map walks entirely.
func (m *Model) planFor(a telemetry.EntityID, symRef metricRef, path []telemetry.EntityID) *pathPlan {
	kt := m.kern
	key := planKey{a, symRef.entity, symRef.metric}
	kt.mu.RLock()
	p := kt.plans[key]
	kt.mu.RUnlock()
	if p != nil {
		return p
	}
	p = m.compilePlan(path, symRef)
	kt.mu.Lock()
	if prev, ok := kt.plans[key]; ok {
		p = prev // lost the compile race; keep the canonical plan
	} else {
		kt.plans[key] = p
	}
	kt.mu.Unlock()
	return p
}

// compilePlan flattens one resampling walk: for every factor of every
// non-candidate node on the path (in the original iteration order), resolve
// the output and feature slots and extract the regression terms when the
// trained model exposes them.
func (m *Model) compilePlan(path []telemetry.EntityID, symRef metricRef) *pathPlan {
	slotOf := m.slots()
	p := &pathPlan{symSlot: slotOf[symRef]}
	seen := make(map[int32]bool)
	touch := func(s int32) {
		if !seen[s] {
			seen[s] = true
			p.touched = append(p.touched, s)
		}
	}
	touch(p.symSlot)
	for pi, id := range path {
		if pi == 0 {
			continue // the candidate's perturbed state is held fixed
		}
		for _, name := range m.metricsOf[id] {
			ref := metricRef{id, name}
			f := m.factors[ref]
			if f == nil {
				continue
			}
			st := planStep{out: slotOf[ref], noise: f.model.ResidualStd()}
			st.noise32 = float32(st.noise)
			touch(st.out)
			aliased := false
			st.feats = make([]int32, len(f.features))
			for j, fr := range f.features {
				fs := slotOf[fr]
				st.feats[j] = fs
				touch(fs)
				if fs == st.out {
					aliased = true
				}
			}
			if lt, ok := f.model.(linearTermer); ok && !aliased {
				if coef, mean, std, intercept, fitted := lt.LinearTerms(); fitted {
					// Predict evaluates min(len(coef), len(x)) terms; mirror
					// that prefix truncation (coef may even be nil for an
					// intercept-only factor).
					nterms := len(coef)
					if nterms > len(st.feats) {
						nterms = len(st.feats)
					}
					if nterms > len(mean) {
						nterms = len(mean)
					}
					if nterms > len(std) {
						nterms = len(std)
					}
					st.coef, st.mean, st.std = coef[:nterms], mean[:nterms], std[:nterms]
					st.intercept = intercept
					st.w32 = make([]float32, nterms)
					bias := intercept
					for j := 0; j < nterms; j++ {
						st.w32[j] = float32(coef[j] / std[j])
						bias -= coef[j] * mean[j] / std[j]
					}
					st.bias32 = float32(bias)
					p.steps = append(p.steps, st)
					continue
				}
			}
			st.model = f.model
			p.steps = append(p.steps, st)
		}
	}
	return p
}

// noiseStream is one chain's noise source; exactly one field is non-nil.
// The float64 kernel keeps *rand.Rand so its draw stream is bit-identical
// to the original sampler's; the float32 kernel uses the ziggurat source.
type noiseStream struct {
	r *rand.Rand
	z *stats.NormSource
}

// newStream seeds one noise stream at the configured precision.
func (m *Model) newStream(seed int64) noiseStream {
	if m.cfg.Sampler.Precision == PrecisionFloat32 {
		return noiseStream{z: stats.NewNormSource(seed)}
	}
	return noiseStream{r: rand.New(rand.NewSource(seed))}
}

// runPass runs one resampling pass of n draws — every chain vector through
// cfg.GibbsRounds rounds of the plan's steps — starting from the model's
// current state with ov's overrides applied (ov == nil is the factual
// start). It returns the symptom metric's n draws as float64s regardless of
// kernel precision (the float32 path widens into arena scratch); the slice
// is arena-owned and valid until the arena's next pass.
func (m *Model) runPass(ctx context.Context, plan *pathPlan, ov *overrides, ns noiseStream, ar *arena, n int) ([]float64, error) {
	hint := n
	if h := m.cfg.Sampler.ArenaSamples; h > hint {
		hint = h
	}
	if m.cfg.Sampler.Precision == PrecisionFloat32 {
		out32, err := m.runPass32(ctx, plan, ov, ns.z, ar, n, hint)
		if err != nil {
			return nil, err
		}
		conv := ar.scratch64(n, hint)
		mat.Widen(conv, out32)
		return conv, nil
	}
	return m.runPass64(ctx, plan, ov, ns.r, ar, n, hint)
}

func (m *Model) runPass64(ctx context.Context, plan *pathPlan, ov *overrides, rng *rand.Rand, ar *arena, n, hint int) ([]float64, error) {
	base := m.base64()
	vals := ar.slots64(m.kern.nslots)
	ensure := func(s int32) []float64 {
		buf := vals[s]
		if cap(buf) < n {
			buf = make([]float64, maxInt(n, hint))
			vals[s] = buf
		}
		return buf[:n]
	}
	for _, s := range plan.touched {
		mat.Fill(ensure(s), base[s])
	}
	if ov != nil {
		for i, s := range ov.slots {
			mat.Fill(ensure(s), ov.vals[i])
		}
	}
	x := ar.x[:0]
	defer func() { ar.x = x[:0] }()
	for round := 0; round < m.cfg.GibbsRounds; round++ {
		for si := range plan.steps {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			st := &plan.steps[si]
			out := vals[st.out][:n]
			if st.model != nil {
				// Generic fallback: the original per-sample loop, noise
				// drawn inline so the RNG stream order is preserved.
				for i := 0; i < n; i++ {
					x = x[:0]
					for _, fs := range st.feats {
						x = append(x, vals[fs][i])
					}
					v := st.model.Predict(x)
					if st.noise > 0 {
						v += rng.NormFloat64() * st.noise
					}
					out[i] = v
				}
				continue
			}
			mat.Fill(out, st.intercept)
			for j := range st.coef {
				mat.AccumTerm(out, vals[st.feats[j]][:n], st.coef[j], st.mean[j], st.std[j])
			}
			if st.noise > 0 {
				// Batched after the fused accumulation: predictions consume
				// no randomness, so draw i still lands on sample i — the
				// same stream assignment as the per-sample loop.
				for i := range out {
					out[i] += rng.NormFloat64() * st.noise
				}
			}
		}
	}
	m.obs.Add(obs.CtrGibbsSamples, int64(n))
	return vals[plan.symSlot][:n], nil
}

func (m *Model) runPass32(ctx context.Context, plan *pathPlan, ov *overrides, zs *stats.NormSource, ar *arena, n, hint int) ([]float32, error) {
	base := m.base32()
	vals := ar.slots32(m.kern.nslots)
	ensure := func(s int32) []float32 {
		buf := vals[s]
		if cap(buf) < n {
			buf = make([]float32, maxInt(n, hint))
			vals[s] = buf
		}
		return buf[:n]
	}
	for _, s := range plan.touched {
		mat.Fill32(ensure(s), base[s])
	}
	if ov != nil {
		for i, s := range ov.slots {
			mat.Fill32(ensure(s), float32(ov.vals[i]))
		}
	}
	x := ar.x[:0]
	defer func() { ar.x = x[:0] }()
	for round := 0; round < m.cfg.GibbsRounds; round++ {
		for si := range plan.steps {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			st := &plan.steps[si]
			out := vals[st.out][:n]
			if st.model != nil {
				for i := 0; i < n; i++ {
					x = x[:0]
					for _, fs := range st.feats {
						x = append(x, float64(vals[fs][i]))
					}
					v := float32(st.model.Predict(x))
					if st.noise32 > 0 {
						v += float32(zs.NormFloat64()) * st.noise32
					}
					out[i] = v
				}
				continue
			}
			// Apply the folded terms in blocks of four: the first block
			// fuses the bias fill, later blocks quarter the dst traffic,
			// and a scalar tail covers the remainder.
			nf := len(st.w32)
			j := 0
			if nf >= 4 {
				mat.Lincomb32x4(out,
					vals[st.feats[0]][:n], vals[st.feats[1]][:n],
					vals[st.feats[2]][:n], vals[st.feats[3]][:n],
					st.w32[0], st.w32[1], st.w32[2], st.w32[3], st.bias32)
				j = 4
				for ; j+4 <= nf; j += 4 {
					mat.AddScaled32x4(out,
						vals[st.feats[j]][:n], vals[st.feats[j+1]][:n],
						vals[st.feats[j+2]][:n], vals[st.feats[j+3]][:n],
						st.w32[j], st.w32[j+1], st.w32[j+2], st.w32[j+3])
				}
			} else {
				mat.Fill32(out, st.bias32)
			}
			for ; j < nf; j++ {
				mat.AddScaled32(out, vals[st.feats[j]][:n], st.w32[j])
			}
			if st.noise32 > 0 {
				zs.AddNoise32(out, st.noise32)
			}
		}
	}
	m.obs.Add(obs.CtrGibbsSamples, int64(n))
	return vals[plan.symSlot][:n], nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
