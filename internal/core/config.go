// Package core implements the paper's primary contribution: the Markov
// Random Field over the relationship graph, trained online at diagnosis time,
// and the counterfactual Gibbs-sampling-variant inference that decides which
// entities are root causes of a problematic symptom (§4.2).
package core

import (
	"time"

	"murphy/internal/telemetry"
)

// Config collects the tunable parameters of Murphy's algorithm. The defaults
// are the values the paper settled on.
type Config struct {
	// TopB is the number of neighbor metrics selected (by absolute
	// correlation with the target metric) as features of each per-entity
	// factor. The paper uses B=10 per the one-in-ten rule.
	TopB int
	// GibbsRounds is W, the number of resampling passes over the shortest-
	// path subgraph. The paper settles on W=4 (§6.8).
	GibbsRounds int
	// Samples is the number of Monte-Carlo samples drawn for each of the
	// counterfactual and factual starts before the t-test. The paper uses
	// 5000; experiments may reduce it (the code path is identical).
	Samples int
	// TrainWindow is the number of trailing time slices used for online
	// training (the paper trains on the prior week, a few hundred points).
	TrainWindow int
	// Lambda is the ridge penalty of the per-factor regression.
	Lambda float64
	// CounterfactualSigma is how many historical standard deviations the
	// counterfactual value is moved (toward normal). The paper uses 2.
	CounterfactualSigma float64
	// Alpha is the t-test significance level for declaring a root cause.
	Alpha float64
	// MinEffect is the minimum mean shift of the symptom metric (in units
	// of its historical standard deviation) required in addition to
	// statistical significance. With thousands of samples a t-test detects
	// arbitrarily small shifts; this keeps the shift practically relevant.
	MinEffect float64
	// MaxCandidates caps the pruned candidate search space (0 = unlimited).
	MaxCandidates int
	// AnomalyZ is the conservative z-score threshold used when pruning the
	// candidate search space: only entities with some metric at least this
	// many standard deviations from its historical mean are explored.
	AnomalyZ float64
	// Seed makes sampling deterministic.
	Seed int64
	// Timeout bounds a whole Diagnose call (0 = no bound).
	Timeout time.Duration
	// EarlyStop enables sequential significance testing: the Monte-Carlo
	// samples of each counterfactual test are drawn in batches through a
	// streaming Welch t-test, and sampling stops as soon as the verdict at
	// Alpha is decided with margin to spare (see stats.StreamingWelch). This
	// cuts the Samples budget by an order of magnitude for clear-cut
	// candidates; borderline candidates still run the full budget. The
	// accept/reject verdicts are the same in practice, but reported p-values
	// come from the truncated sample.
	EarlyStop bool
	// EarlyStopConfidence is how decided a verdict must be before sampling
	// stops early, as a confidence c in (0.5, 1): both the t statistic
	// (vs its critical value) and the effect estimate (vs MinEffect) must
	// sit Φ⁻¹(c) standard deviations past their thresholds. Zero (or out of
	// range) defaults to 0.999 (≈3.1σ).
	EarlyStopConfidence float64
	// SeedFor, when non-nil, replaces the default per-candidate-pair RNG
	// seed derivation (Seed mixed with hashes of the candidate and symptom
	// entity IDs). It exists for metamorphic testing: a transform that
	// renames entities can supply the original IDs' seeds so the sampling
	// streams — and therefore every p-value bit — survive the rename.
	// Production diagnoses should leave it nil.
	SeedFor func(candidate, symptom telemetry.EntityID) int64
	// Chains splits each counterfactual test's factual and counterfactual
	// Monte-Carlo draws across K independent Gibbs chains, each with its own
	// splitmix-derived RNG stream and arena, executed on up to
	// min(K, GOMAXPROCS) goroutines. For a fixed K the merged draws are
	// bit-identical regardless of how many goroutines actually run (one
	// included), so verdicts never depend on scheduling. 0 or 1 keeps the
	// single-stream sampler — the historical bit pattern the golden rankings
	// are pinned against; K >= 2 changes individual p-value bits (different
	// RNG streams) but preserves the rankings on clear-cut workloads.
	Chains int
	// Sampler bundles every sampling-kernel knob behind one versioned
	// surface. A non-zero bundle field overrides the corresponding flat
	// field above (EarlyStop, EarlyStopConfidence, Chains — kept as
	// deprecated aliases); new kernel knobs (Precision, ArenaSamples) exist
	// only here. After sanitization the bundle and the aliases agree, so
	// either view reports the effective configuration.
	Sampler SamplerConfig
}

// Precision selects the floating-point width of the Gibbs sampling kernel.
type Precision uint8

const (
	// PrecisionFloat64 is the default kernel: float64 chain state with
	// math/rand noise streams, bit-identical to the original per-sample
	// sampler (the golden rankings are pinned against it).
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 is the fast path: float32 chain state, regression
	// terms folded to one multiply-add per feature, and a ziggurat noise
	// source several times faster than math/rand. Verdicts are validated
	// against float64 by the metamorph rescale-equivalence and
	// certified-set-equality invariants rather than bit-compared.
	PrecisionFloat32
)

// String names the precision for flags and logs.
func (p Precision) String() string {
	if p == PrecisionFloat32 {
		return "float32"
	}
	return "float64"
}

// SamplerConfig is the bundled configuration of the batched Gibbs sampling
// kernel: arithmetic precision, chain parallelism, sequential early
// stopping, and scratch sizing. The zero value inherits the deprecated flat
// Config fields and otherwise means "defaults".
type SamplerConfig struct {
	// Precision selects float64 (default, bit-compatible with the original
	// sampler) or the float32 fast path.
	Precision Precision
	// Chains is the number of independent Gibbs chains per counterfactual
	// test (see Config.Chains). 0 inherits Config.Chains.
	Chains int
	// EarlyStop enables the sequential streaming-Welch test (see
	// Config.EarlyStop). false inherits Config.EarlyStop, so the deprecated
	// flag cannot be un-set through the bundle.
	EarlyStop bool
	// EarlyStopConfidence is the sequential test's decision confidence (see
	// Config.EarlyStopConfidence). 0 inherits the flat field.
	EarlyStopConfidence float64
	// ArenaSamples pre-sizes the per-chain scratch vectors (in samples) so
	// arenas reused across diagnoses with growing budgets never regrow
	// mid-pass. 0 sizes buffers on demand from each pass's batch size.
	ArenaSamples int
}

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config {
	return Config{
		TopB:                10,
		GibbsRounds:         4,
		Samples:             5000,
		TrainWindow:         300,
		Lambda:              1.0,
		CounterfactualSigma: 2.0,
		Alpha:               0.01,
		MinEffect:           0.05,
		MaxCandidates:       0,
		AnomalyZ:            1.5,
		Seed:                1,
	}
}

// sanitized returns a copy with out-of-range values clamped to safe ones, so
// a partially filled Config never produces a degenerate run.
func (c Config) sanitized() Config {
	d := DefaultConfig()
	if c.TopB <= 0 {
		c.TopB = d.TopB
	}
	if c.GibbsRounds <= 0 {
		c.GibbsRounds = d.GibbsRounds
	}
	if c.Samples < 4 {
		c.Samples = d.Samples
	}
	if c.TrainWindow < 8 {
		c.TrainWindow = d.TrainWindow
	}
	if c.Lambda < 0 {
		c.Lambda = d.Lambda
	}
	if c.CounterfactualSigma <= 0 {
		c.CounterfactualSigma = d.CounterfactualSigma
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = d.Alpha
	}
	if c.MinEffect < 0 {
		c.MinEffect = d.MinEffect
	}
	if c.AnomalyZ <= 0 {
		c.AnomalyZ = d.AnomalyZ
	}
	if c.EarlyStopConfidence <= 0.5 || c.EarlyStopConfidence >= 1 {
		c.EarlyStopConfidence = 0.999
	}
	// Resolve the sampler bundle against the deprecated flat aliases: a
	// non-zero bundle field wins, an unset one inherits, and the result is
	// mirrored both ways so cfg.Sampler and the flat fields agree.
	if c.Sampler.Chains > 0 {
		c.Chains = c.Sampler.Chains
	}
	if c.Sampler.EarlyStop {
		c.EarlyStop = true
	}
	if c.Sampler.EarlyStopConfidence > 0.5 && c.Sampler.EarlyStopConfidence < 1 {
		c.EarlyStopConfidence = c.Sampler.EarlyStopConfidence
	}
	if c.Sampler.ArenaSamples < 0 {
		c.Sampler.ArenaSamples = 0
	}
	c.Sampler.Chains = c.Chains
	c.Sampler.EarlyStop = c.EarlyStop
	c.Sampler.EarlyStopConfidence = c.EarlyStopConfidence
	return c
}
