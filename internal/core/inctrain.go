package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"murphy/internal/graph"
	"murphy/internal/mat"
	"murphy/internal/obs"
	"murphy/internal/regress"
	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// Incremental training defaults and guard thresholds.
const (
	// DefaultDriftThreshold is the MASE score of a factor's one-step-ahead
	// predictions above which the incremental trainer falls back to a full
	// refit: the stale model predicts several times worse than a naive
	// forecaster, so the neighbor relationship it learned has shifted.
	DefaultDriftThreshold = 4.0
	// DefaultRefreshEvery bounds how many window slides a factor's sufficient
	// statistics may accumulate before a full re-anchor, capping the
	// accumulated floating-point drift of the slid Gram/cross sums.
	DefaultRefreshEvery = 512
	// selectionMarginEps is the minimum |Pearson| gap between adjacent
	// feature-selection ranks for the incremental ranking to be trusted: the
	// slid correlations differ from the full recomputation by rounding only,
	// so any gap wider than this guarantees the same top-B selection. A
	// narrower gap falls back to the full (bit-identical) ranking.
	selectionMarginEps = 1e-9
	// recenterFrac: a series' shifted moments are re-anchored once the mean
	// has drifted this fraction of a standard deviation from the anchor,
	// keeping the centered-sum-of-squares cancellation error bounded.
	recenterFrac = 0.25
	// driftMinPairs is the one-step-ahead prediction evidence required
	// before the drift score can trip a retrain.
	driftMinPairs = 8
	// driftWindow is how many one-step-ahead pairs the drift tracker keeps.
	driftWindow = 32
	// factorStoreSnapshotVersion versions the persisted store layout.
	factorStoreSnapshotVersion = 1
)

// seriesState is the incremental trainer's per-(entity, metric) state: the
// placeholder-filled window, its sorted copy (for O(1) median / O(n) MAD),
// shifted running moments, and the in-window missing-value bookkeeping.
type seriesState struct {
	win    []float64 // placeholder-filled window, aligned [lo, hi)
	sorted *stats.SortedWindow
	mom    stats.WindowMoments
	// nanAt lists the absolute slice indices of missing raw observations
	// inside the window. Non-empty means the series is "dirty": its
	// placeholder fill is the observed median of the *current* window, which
	// changes as the window slides, so the series is rebuilt from the raw
	// window on every train instead of slid.
	nanAt []int
	// epoch is bumped on every full rebuild; factor statistics recorded
	// against an older epoch are stale and force a refit/recompute.
	epoch uint32
	// med/madScale/novel are the target-side robust statistics, stored only
	// for dirty series (computed over the observed values at rebuild time);
	// clean series derive them from the sorted window on demand.
	med, madScale float64
	novel         bool
}

// targetStats returns the robust center/scale and novelty flag for the
// series as a factor target, matching trainAt's observed-only computation.
func (st *seriesState) targetStats() (med, madScale float64, novel bool) {
	if len(st.nanAt) > 0 {
		return st.med, st.madScale, st.novel
	}
	return st.sorted.Median(), 1.4826 * st.sorted.MAD(), false
}

// newSeriesState builds the full per-series state from a raw window starting
// at absolute slice lo, replicating trainAt's placeholder rule exactly.
func newSeriesState(raw []float64, lo int) *seriesState {
	st := &seriesState{win: append([]float64(nil), raw...)}
	for i, v := range raw {
		if v != v {
			st.nanAt = append(st.nanAt, lo+i)
		}
	}
	if len(st.nanAt) > 0 {
		obsY := observedOnly(raw)
		def := stats.Median(obsY)
		if def != def {
			def = 0
		}
		for i, v := range st.win {
			if v != v {
				st.win[i] = def
			}
		}
		st.novel = len(obsY) < len(raw)/4
		if st.novel {
			obsY = st.win
		}
		st.med = stats.Median(obsY)
		st.madScale = 1.4826 * stats.MAD(obsY)
	}
	st.mom.Anchor(st.win)
	st.sorted = stats.NewSortedWindow(st.win)
	return st
}

// storeEntry is the incremental trainer's per-factor state: the last trained
// factor plus the sufficient statistics that slide with the window — the
// shifted Gram over the selected features, the matching cross-term vector,
// the per-candidate cross products driving feature selection, and the drift
// tracker.
type storeEntry struct {
	f        *factor // immutable, shared with the models that got it
	fittedHi int     // window endpoint the factor was fitted/derived at

	feats       []metricRef // selected features, ranked order
	cand        []metricRef // candidate list the cross stats align with
	targetEpoch uint32
	featEpochs  []uint32
	candEpochs  []uint32

	gram   *mat.Dense // Σ (x_j−sh_j)(x_k−sh_k) over feats; nil when no feats
	xty    []float64  // Σ (x_j−sh_j)(y−sh_y) over feats
	cross  []float64  // Σ (x_c−sh_c)(y−sh_y) per candidate
	slides int        // slides since the statistics were last anchored
	drift  *stats.DriftTracker
}

// FactorStore is the persistent incremental factor store behind
// TrainOpts.Store: it keeps per-(entity, metric) sufficient statistics —
// shifted Gram matrices, cross-term vectors, running moments, sorted windows
// — keyed to an explicit training window [lo, hi) and the hyperparameters
// (TrainWindow, TopB, Lambda) they were built under, and slides them as the
// window advances instead of letting every Train call recompute
// mat.GramCols, the |Pearson| ranking, and the robust statistics from
// scratch. A factor is served from the slid statistics (a "hit": one O(B³)
// solve, no O(n·C) passes). When the slid ranking cannot prove the feature
// selection (adjacent ranks within selectionMarginEps — routine in
// homogeneous topologies full of near-duplicate series), the store re-ranks
// with the exact centered |Pearson| the full path computes, and a changed
// selection is adopted in place (a "reselect": cross terms picked from the
// slid per-candidate accumulators, only the B×B Gram rebuilt). A full refit
// happens only when a guard trips:
//
//   - the MASE drift score of the factor's one-step-ahead predictions
//     exceeds the drift threshold (the learned relationship shifted);
//   - numeric conditioning fails (non-PD standardized Gram, negative
//     residual sum of squares), or RefreshEvery slides accumulated;
//   - the window slid by more than half its width, the hyperparameters or
//     database changed, or a series has in-window missing values (its
//     placeholder fill is window-dependent).
//
// Every fallback is a full refit through the same bit-exact path trainAt
// takes (stats.Center ranking + Ridge.FitColumns), so an anchored or refit
// factor is bit-identical to a full retrain; slid factors agree within a
// rounding bound (property-tested by the metamorph incremental arm).
//
// The store serializes to a compact snapshot (Snapshot/SaveFile with the
// same temp+fsync+rename discipline as the serve layer) and restores with
// consistency validation against the restored database, so a murphyd warm
// restart's first diagnosis performs zero full retrains.
//
// Like the FactorCache it supersedes, the store is only consulted on the
// default-trainer, direct-read path, and it identifies the window by
// explicit [lo, hi) bounds: a slid window can never alias stale entries.
// All methods are safe for concurrent use; a training pass holds the store
// lock, so concurrent Train calls on one store serialize.
type FactorStore struct {
	mu             sync.Mutex
	driftThreshold float64
	refreshEvery   int

	db      *telemetry.DB
	g       *graph.Graph
	window  int
	topB    int
	lambda  float64
	lo, hi  int
	series  map[metricRef]*seriesState
	entries map[metricRef]*storeEntry
	pending *factorStoreJSON // decoded snapshot awaiting adoption

	hits, refits, reselects, driftTrips, slideCount, resets uint64
}

// NewFactorStore returns an empty incremental factor store with the default
// drift threshold and refresh interval.
func NewFactorStore() *FactorStore {
	return &FactorStore{
		driftThreshold: DefaultDriftThreshold,
		refreshEvery:   DefaultRefreshEvery,
	}
}

// SetPolicy overrides the retrain guards: driftThreshold is the MASE score
// above which a factor is refit (<= 0 keeps the current value), refreshEvery
// the slide budget before a forced re-anchor (<= 0 keeps the current value).
func (s *FactorStore) SetPolicy(driftThreshold float64, refreshEvery int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if driftThreshold > 0 {
		s.driftThreshold = driftThreshold
	}
	if refreshEvery > 0 {
		s.refreshEvery = refreshEvery
	}
}

// FactorStoreStats reports the incremental trainer's effectiveness counters.
type FactorStoreStats struct {
	// Hits counts factors served from slid sufficient statistics; Refits
	// counts factors that took the full refit path (initial anchors
	// included); DriftTrips is the subset of refits forced by the MASE drift
	// score; Slides counts window slides applied to the statistics; Resets
	// counts whole-store invalidations (database/hyperparameter changes,
	// out-of-order windows); Reselects is the subset of hits that re-ranked
	// features exactly and adopted a changed selection in place.
	Hits, Refits, Reselects, DriftTrips, Slides, Resets uint64
	// Factors and Series are the current state sizes.
	Factors, Series int
	// DriftThreshold and RefreshEvery echo the active retrain policy.
	DriftThreshold float64
	RefreshEvery   int
}

// Stats returns a snapshot of the store's counters.
func (s *FactorStore) Stats() FactorStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return FactorStoreStats{
		Hits: s.hits, Refits: s.refits, Reselects: s.reselects,
		DriftTrips: s.driftTrips,
		Slides:     s.slideCount, Resets: s.resets,
		Factors: len(s.entries), Series: len(s.series),
		DriftThreshold: s.driftThreshold, RefreshEvery: s.refreshEvery,
	}
}

// FactorHealth is the residual health of one trained factor, keyed by the
// target metric. The daemon's per-entity performance endpoint serves it so an
// operator can see whether the model behind a diagnosis is fresh or drifting.
type FactorHealth struct {
	// Metric is the factor's target metric on the queried entity.
	Metric string
	// Trained reports whether a fitted factor is live for the metric.
	Trained bool
	// Features is the number of selected regression features.
	Features int
	// Slides counts window slides absorbed since the factor's statistics
	// were last anchored by a full refit.
	Slides int
	// DriftScore is the MASE of the factor's one-step-ahead predictions
	// against the naive forecast of the current window — 0 while fewer than
	// the evidence minimum pairs are recorded. DriftThreshold is the score
	// above which the next training pass forces a refit.
	DriftScore     float64
	DriftThreshold float64
}

// EntityHealth reports the residual health of every factor the store holds
// for one entity, sorted by metric name. Nil when the store has not trained
// the entity yet.
func (s *FactorStore) EntityHealth(id telemetry.EntityID) []FactorHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []FactorHealth
	for ref, e := range s.entries {
		if ref.entity != id {
			continue
		}
		h := FactorHealth{
			Metric:         ref.metric,
			Trained:        e.f != nil,
			Features:       len(e.feats),
			Slides:         e.slides,
			DriftThreshold: s.driftThreshold,
		}
		if sty := s.series[ref]; sty != nil && e.drift != nil {
			h.DriftScore = e.drift.Score(sty.win, driftMinPairs)
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}

// Reset discards all incremental state (the next train re-anchors from
// scratch). Counters and policy survive.
func (s *FactorStore) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetLocked(nil, nil, 0, 0, 0)
}

func (s *FactorStore) resetLocked(db *telemetry.DB, g *graph.Graph, window, topB int, lambda float64) {
	s.db, s.g = db, g
	s.window, s.topB, s.lambda = window, topB, lambda
	s.lo, s.hi = 0, 0
	s.series = make(map[metricRef]*seriesState)
	s.entries = make(map[metricRef]*storeEntry)
}

// refsEqual reports whether two metricRef slices are element-wise equal.
func refsEqual(a, b []metricRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// incPrep lazily shares the full-refit precomputations across the refitting
// factors of one training pass: centered views (for the bit-identical
// |Pearson| ranking) and shift-subtracted columns (for anchoring the slid
// statistics). Guarded by a mutex because the factor phase runs pooled.
type incPrep struct {
	mu      sync.Mutex
	store   *FactorStore
	ctr     map[metricRef]*stats.Centered
	shifted map[metricRef][]float64
}

func (p *incPrep) centered(ref metricRef) *stats.Centered {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.ctr[ref]; ok {
		return c
	}
	c := stats.Center(p.store.series[ref].win)
	p.ctr[ref] = &c
	return &c
}

func (p *incPrep) shiftedCol(ref metricRef) []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.shifted[ref]; ok {
		return c
	}
	st := p.store.series[ref]
	c := make([]float64, len(st.win))
	for i, v := range st.win {
		c[i] = v - st.mom.Shift
	}
	p.shifted[ref] = c
	return c
}

// incJob is one factor's unit of work in the incremental training pass.
type incJob struct {
	ref       metricRef
	cand      []metricRef // shared across the entity's jobs
	candKeys  []string
	entry     *storeEntry
	out       *factor
	hit       bool
	refit     bool
	reselect  bool
	driftTrip bool
}

// candIndex finds a candidate's position in the job's candidate list.
func (j *incJob) candIndex(ref metricRef) (int, bool) {
	for i, c := range j.cand {
		if c == ref {
			return i, true
		}
	}
	return 0, false
}

// train is the incremental training pass: it fills the prepared Model shell
// from the store's slid statistics, refitting only where a guard trips. The
// caller (trainAt) has already validated the window and set m's bounds.
func (s *FactorStore) train(ctx context.Context, m *Model, opts TrainOpts, rec *obs.Recorder) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, g, cfg := m.db, m.g, m.cfg
	lo, hi := m.trainLo, m.trainHi

	// Bind to (database, graph, hyperparameters); any change voids the
	// state. The window bounds are explicit in every entry's validity (the
	// statistics are *defined* over [lo, hi)), so a slid window can never
	// alias a stale entry — it either slides the statistics or resets.
	if s.db != db || s.g != g || s.window != cfg.TrainWindow || s.topB != cfg.TopB || s.lambda != cfg.Lambda {
		if s.db != nil && (len(s.entries) > 0 || len(s.series) > 0) {
			s.resets++
		}
		s.resetLocked(db, g, cfg.TrainWindow, cfg.TopB, cfg.Lambda)
	}
	if s.pending != nil {
		s.adoptLocked(db, cfg)
	}
	if len(s.series) > 0 {
		drop, add := lo-s.lo, hi-s.hi
		if add < 0 || drop < 0 || drop > s.hi-s.lo || add > cfg.TrainWindow/2 {
			// Backwards or far-forward jump: re-anchoring is cheaper (or the
			// only correct option).
			s.resets++
			s.resetLocked(db, g, cfg.TrainWindow, cfg.TopB, cfg.Lambda)
		}
	}
	anchor := len(s.series) == 0
	if anchor {
		s.lo, s.hi = lo, hi
	}

	// Phase 1: slide (or build) every series' state. Serial: the per-point
	// work is trivial and the enumeration order is part of determinism.
	drop, add := lo-s.lo, hi-s.hi
	leaving := make(map[metricRef][]float64)
	live := make(map[metricRef]bool)
	for _, id := range g.IDs() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: training cancelled: %w", err)
		}
		names := db.MetricNames(id)
		m.metricsOf[id] = names
		for _, name := range names {
			ref := metricRef{id, name}
			live[ref] = true
			st, ok := s.series[ref]
			if !ok {
				s.series[ref] = newSeriesState(db.RawWindow(id, name, lo, hi), lo)
				continue
			}
			if add == 0 && drop == 0 {
				continue
			}
			leaving[ref] = s.slideSeries(st, ref, lo, hi, drop, add)
		}
	}
	for ref := range s.series {
		if !live[ref] {
			delete(s.series, ref)
		}
	}
	if add > 0 {
		s.slideCount += uint64(add)
		rec.Add(obs.CtrIncTrainSlides, int64(add))
	}

	// Phase 2: assemble the factor jobs in graph order (same order and
	// candidate construction as trainAt) and make sure every job has an
	// entry before the pooled phase mutates them.
	var jobs []*incJob
	for _, id := range g.IDs() {
		var cand []metricRef
		for _, nb := range g.InIDs(id) {
			for _, name := range m.metricsOf[nb] {
				cand = append(cand, metricRef{nb, name})
			}
		}
		candKeys := make([]string, len(cand))
		for i, c := range cand {
			candKeys[i] = c.String()
		}
		for _, name := range m.metricsOf[id] {
			ref := metricRef{id, name}
			e, ok := s.entries[ref]
			if !ok {
				e = &storeEntry{drift: stats.NewDriftTracker(driftWindow)}
				s.entries[ref] = e
			}
			jobs = append(jobs, &incJob{ref: ref, cand: cand, candKeys: candKeys, entry: e})
		}
	}
	jobRefs := make(map[metricRef]bool, len(jobs))
	for _, job := range jobs {
		jobRefs[job.ref] = true
	}
	for ref := range s.entries {
		if !jobRefs[ref] {
			delete(s.entries, ref)
		}
	}

	// Phase 3: per-factor pooled pass — slide the entry's statistics, run
	// the guards, and either derive the factor from the statistics (hit) or
	// fall back to the bit-exact full refit.
	prep := &incPrep{store: s, ctr: make(map[metricRef]*stats.Centered), shifted: make(map[metricRef][]float64)}
	pooled := opts.Workers > 1 && len(jobs) > 1
	if err := forEachIndex(ctx, opts.Workers, len(jobs), func(i int) error {
		return s.runJob(jobs[i], lo, hi, drop, add, leaving, prep, cfg)
	}); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("core: training cancelled: %w", err)
		}
		return err
	}

	// Phase 4: recenter drifted series and apply the exact closed-form
	// correction to every entry's statistics. All corrections are computed
	// against the pre-recenter S1 values, then the moments re-anchor.
	s.recenterLocked(hi - lo)

	var hits, refits, reselects, trips int64
	for _, job := range jobs {
		m.factors[job.ref] = job.out
		switch {
		case job.hit:
			hits++
			if job.reselect {
				reselects++
			}
		case job.refit:
			refits++
		}
		if job.driftTrip {
			trips++
		}
	}
	for ref, st := range s.series {
		m.current[ref] = st.win[len(st.win)-1]
	}
	s.lo, s.hi = lo, hi
	s.hits += uint64(hits)
	s.refits += uint64(refits)
	s.reselects += uint64(reselects)
	s.driftTrips += uint64(trips)
	rec.Add(obs.CtrIncTrainHits, hits)
	rec.Add(obs.CtrIncTrainRefits, refits)
	rec.Add(obs.CtrIncTrainReselects, reselects)
	rec.Add(obs.CtrIncTrainDriftTrips, trips)
	rec.Add(obs.CtrFactorsTrained, refits)
	if pooled {
		rec.Add(obs.CtrTrainParallelFits, refits)
	}
	return nil
}

// slideSeries advances one series' state from [s.lo, s.hi) to [lo, hi) and
// returns the leaving values (the window prefix that expired), which the
// factor phase downdates against. A series with in-window missing values is
// rebuilt instead (its placeholder fill depends on the window content), which
// bumps its epoch and invalidates dependent factor statistics.
func (s *FactorStore) slideSeries(st *seriesState, ref metricRef, lo, hi, drop, add int) []float64 {
	left := append([]float64(nil), st.win[:drop]...)
	enter := s.db.RawWindow(ref.entity, ref.metric, s.hi, hi)
	// Expire bookkeeping for missing values that left the window.
	for len(st.nanAt) > 0 && st.nanAt[0] < lo {
		st.nanAt = st.nanAt[1:]
	}
	dirty := len(st.nanAt) > 0
	for i, v := range enter {
		if v != v {
			st.nanAt = append(st.nanAt, s.hi+i)
			dirty = true
		}
	}
	if dirty {
		oldEpoch := st.epoch
		*st = *newSeriesState(s.db.RawWindow(ref.entity, ref.metric, lo, hi), lo)
		st.epoch = oldEpoch + 1
		return left
	}
	for _, u := range st.win[:drop] {
		st.mom.Pop(u)
		st.sorted.Remove(u)
	}
	for _, v := range enter {
		st.mom.Push(v)
		st.sorted.Insert(v)
	}
	st.win = append(st.win[:0], st.win[drop:]...)
	st.win = append(st.win, enter...)
	return left
}

// runJob processes one factor: guards, statistic slides, and either the
// statistics-derived solve or the full refit.
func (s *FactorStore) runJob(job *incJob, lo, hi, drop, add int, leaving map[metricRef][]float64, prep *incPrep, cfg Config) error {
	e := job.entry
	sty := s.series[job.ref]
	n := len(sty.win)

	needRefit := false
	trip := false
	switch {
	case e.f == nil || e.fittedHi == 0:
		needRefit = true // fresh (or never-anchored) entry
	case !refsEqual(e.cand, job.cand):
		needRefit = true // candidate set changed (metrics appeared/vanished)
	case sty.epoch != e.targetEpoch:
		needRefit = true // target rebuilt (missing values in window)
	default:
		for j, fr := range e.feats {
			fst, ok := s.series[fr]
			if !ok || fst.epoch != e.featEpochs[j] {
				needRefit = true
				break
			}
		}
	}

	if !needRefit && (add > 0 || drop > 0) {
		s.slideEntry(e, job, sty, n, drop, add, leaving)
		e.slides += add
		if e.slides >= s.refreshEvery {
			needRefit = true // scheduled re-anchor bounds accumulated rounding
		} else if score := e.drift.Score(sty.win, driftMinPairs); score > s.driftThreshold {
			needRefit, trip = true, true
		}
	}

	if !needRefit && add == 0 && drop == 0 && e.fittedHi == hi {
		// Same window as the last fit: the trained factor is exactly valid.
		job.out, job.hit = e.f, true
		return nil
	}

	if !needRefit {
		if f, ok := s.solveFromStats(e, job, sty, n, prep, cfg); ok {
			e.f, e.fittedHi = f, hi
			job.out, job.hit = f, true
			return nil
		}
		needRefit = true // selection margin / selection change / conditioning
	}

	f, err := s.refitEntry(e, job, sty, n, hi, prep, cfg)
	if err != nil {
		return err
	}
	job.out, job.refit, job.driftTrip = f, true, trip
	return nil
}

// slideEntry applies the entering/expired rows to the entry's sufficient
// statistics as blocked rank-1 corrections, refreshes stale candidate cross
// terms, and records the one-step-ahead drift evidence.
func (s *FactorStore) slideEntry(e *storeEntry, job *incJob, sty *seriesState, n, drop, add int, leaving map[metricRef][]float64) {
	shY := sty.mom.Shift
	enterY := make([]float64, add)
	for i := 0; i < add; i++ {
		enterY[i] = sty.win[n-add+i] - shY
	}
	leaveY := make([]float64, drop)
	leftY := leaving[job.ref]
	for i := 0; i < drop; i++ {
		leaveY[i] = leftY[i] - shY
	}

	if len(e.feats) > 0 {
		enterCols := make([][]float64, len(e.feats))
		leaveCols := make([][]float64, len(e.feats))
		for j, fr := range e.feats {
			fst := s.series[fr]
			ec := make([]float64, add)
			for i := 0; i < add; i++ {
				ec[i] = fst.win[n-add+i] - fst.mom.Shift
			}
			lc := make([]float64, drop)
			lf := leaving[fr]
			for i := 0; i < drop; i++ {
				lc[i] = lf[i] - fst.mom.Shift
			}
			enterCols[j], leaveCols[j] = ec, lc
		}
		mat.GramColsUpdate(e.gram, enterCols)
		mat.GramColsDowndate(e.gram, leaveCols)
		mat.CrossColsUpdate(e.xty, enterCols, enterY)
		mat.CrossColsDowndate(e.xty, leaveCols, leaveY)
	}

	for ci, c := range job.cand {
		cst := s.series[c]
		if cst.epoch != e.candEpochs[ci] {
			// Candidate rebuilt since its cross term was accumulated:
			// recompute it over the current window.
			shC := cst.mom.Shift
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += (cst.win[i] - shC) * (sty.win[i] - shY)
			}
			e.cross[ci] = sum
			e.candEpochs[ci] = cst.epoch
			continue
		}
		shC := cst.mom.Shift
		sum := e.cross[ci]
		for i := 0; i < add; i++ {
			sum += (cst.win[n-add+i] - shC) * enterY[i]
		}
		lf := leaving[c]
		for i := 0; i < drop; i++ {
			sum -= (lf[i] - shC) * leaveY[i]
		}
		e.cross[ci] = sum
	}

	// Drift evidence: how well does the stale model predict the points that
	// just entered the window?
	if e.f != nil && e.f.model != nil {
		x := make([]float64, len(e.feats))
		for i := 0; i < add; i++ {
			t := n - add + i
			for j, fr := range e.feats {
				x[j] = s.series[fr].win[t]
			}
			e.drift.Push(e.f.model.Predict(x), sty.win[t])
		}
	}
}

// solveFromStats re-ranks the candidates from the slid moments and, when the
// selection provably matches the full ranking, derives the ridge fit from
// the sufficient statistics: an O(C + B³) path replacing the O(n·C + n·B²)
// full recomputation. ok is false when a guard trips.
func (s *FactorStore) solveFromStats(e *storeEntry, job *incJob, sty *seriesState, n int, prep *incPrep, cfg Config) (*factor, bool) {
	momY := &sty.mom
	s1y := momY.S1
	cssY := momY.CenteredSumSq()
	nf := float64(n)

	rs := make([]float64, len(job.cand))
	order := make([]int, len(job.cand))
	for i, c := range job.cand {
		cst := s.series[c]
		num := e.cross[i] - cst.mom.S1*s1y/nf
		den := math.Sqrt(cst.mom.CenteredSumSq() * cssY)
		r := 0.0
		if den > 0 {
			r = math.Abs(num / den)
			if math.IsNaN(r) {
				r = 0
			}
		}
		rs[i] = r
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if rs[ia] != rs[ib] {
			return rs[ia] > rs[ib]
		}
		return job.candKeys[ia] < job.candKeys[ib]
	})
	b := cfg.TopB
	if b > len(order) {
		b = len(order)
	}
	// Margin guard: the slid correlations agree with the full recomputation
	// to rounding; adjacent ranks closer than the margin (or selected ranks
	// grazing zero) could order differently under the full ranking, so the
	// slid ranking alone cannot prove the selection.
	trusted := true
	for i := 0; i < b; i++ {
		ri := rs[order[i]]
		if ri == 0 {
			break // everything from here on is unselected either way
		}
		if ri < selectionMarginEps ||
			(i+1 < len(order) && ri-rs[order[i+1]] < selectionMarginEps) {
			trusted = false
			break
		}
	}
	var feats []metricRef
	if trusted {
		feats = make([]metricRef, 0, b)
		for _, i := range order[:b] {
			if rs[i] > 0 {
				feats = append(feats, job.cand[i])
			}
		}
	}
	if !trusted || !refsEqual(feats, e.feats) {
		// The slid ranking cannot prove the selection (sub-margin gaps are
		// routine in homogeneous topologies, where near-duplicate series tie
		// almost exactly). Re-rank with the exact centered |Pearson| the
		// full path computes — bit-identical selection by construction at
		// O(n·C), still skipping the O(n·B²) fit and the O(n·(B+C))
		// re-anchor a full refit would pay.
		feats = s.rankExact(job, prep, cfg)
		if !refsEqual(feats, e.feats) {
			// The selection genuinely changed. The slid cross accumulators
			// already hold X'y against the current shifts for every
			// candidate, so adopt the new selection in place: pick the
			// cross terms, rebuild only the B×B Gram over the shifted
			// columns, and fall through to the closed-form solve.
			if !s.reselectEntry(e, job, feats, prep) {
				return nil, false
			}
			job.reselect = true
		}
	}

	nb := len(e.feats)
	st := regress.RidgeState{Lambda: cfg.Lambda, Fitted: true}
	if nb == 0 {
		st.Intercept = momY.Mean()
		st.Resid = momY.Std()
	} else {
		featMean := make([]float64, nb)
		featStd := make([]float64, nb)
		s1 := make([]float64, nb)
		for j, fr := range e.feats {
			fm := &s.series[fr].mom
			featMean[j] = fm.Mean()
			sd := fm.Std()
			if sd == 0 || math.IsNaN(sd) {
				sd = 1
			}
			featStd[j] = sd
			s1[j] = fm.S1
		}
		zg := mat.NewDense(nb, nb)
		for j := 0; j < nb; j++ {
			for k := j; k < nb; k++ {
				cg := e.gram.At(j, k) - s1[j]*s1[k]/nf
				v := cg / (featStd[j] * featStd[k])
				zg.Set(j, k, v)
				zg.Set(k, j, v)
			}
		}
		rhs := make([]float64, nb)
		for j := 0; j < nb; j++ {
			rhs[j] = (e.xty[j] - s1[j]*s1y/nf) / featStd[j]
		}
		ridged := zg.Clone().AddDiag(cfg.Lambda + 1e-10)
		coef, err := mat.CholeskySolve(ridged, rhs)
		if err != nil {
			coef, err = mat.Solve(ridged, rhs)
		}
		if err != nil {
			return nil, false // conditioning: let the full path decide
		}
		// Residual sum of squares from the statistics:
		// ss = Σ(y−ŷ)² = CSS_y − 2 c·rhs + cᵀ ZG c (ZG without the ridge).
		quad := 0.0
		for j := 0; j < nb; j++ {
			row := 0.0
			for k := 0; k < nb; k++ {
				row += zg.At(j, k) * coef[k]
			}
			quad += coef[j] * row
		}
		ss := cssY - 2*mat.Dot(coef, rhs) + quad
		if ss < -1e-6*(cssY+1) {
			return nil, false // cancellation exceeded the trust budget
		}
		if ss < 0 {
			ss = 0
		}
		resid := math.Sqrt(ss / nf)
		if math.IsNaN(resid) || math.IsInf(resid, 0) {
			resid = 0
		}
		st.Coef = coef
		st.FeatMean = featMean
		st.FeatStd = featStd
		st.Intercept = momY.Mean()
		st.Resid = resid
	}

	med, madScale, novel := sty.targetStats()
	f := &factor{
		target:   job.ref,
		features: append([]metricRef(nil), e.feats...),
		model:    regress.NewRidgeFromState(st),
		hmean:    momY.Mean(),
		med:      med,
		madScale: madScale,
		novel:    novel,
	}
	if n >= 2 {
		f.hstd = momY.Std()
	}
	f.rscore = f.robustScoreAt(sty.win[n-1])
	return f, true
}

// reselectEntry adopts a changed feature selection without a full refit:
// xty comes from the candidate cross accumulators (already slid against the
// current shifts), and the selected-feature Gram is rebuilt from the
// batch-shared shifted columns. Returns false — forcing the full refit —
// when any new feature's cross term is stale (epoch moved since it was
// accumulated; slideEntry refreshes those, so this is a safety net).
func (s *FactorStore) reselectEntry(e *storeEntry, job *incJob, feats []metricRef, prep *incPrep) bool {
	xty := make([]float64, len(feats))
	epochs := make([]uint32, len(feats))
	for j, fr := range feats {
		ci, ok := job.candIndex(fr)
		if !ok || s.series[fr].epoch != e.candEpochs[ci] {
			return false
		}
		xty[j] = e.cross[ci]
		epochs[j] = s.series[fr].epoch
	}
	e.feats = append(e.feats[:0], feats...)
	e.featEpochs = epochs
	e.xty = xty
	if len(feats) == 0 {
		e.gram = nil
		return true
	}
	cols := make([][]float64, len(feats))
	for j, fr := range feats {
		cols[j] = prep.shiftedCol(fr)
	}
	e.gram = mat.GramCols(cols)
	return true
}

// rankExact performs the full path's feature selection: centered |Pearson|
// ranking over the window with the candidate-key tiebreak, bit-identical to
// trainAt's. The centered columns come from the batch-shared prep cache, so
// the per-entry cost is one length-n dot product per candidate.
func (s *FactorStore) rankExact(job *incJob, prep *incPrep, cfg Config) []metricRef {
	yctr := prep.centered(job.ref)
	rs := make([]float64, len(job.cand))
	order := make([]int, len(job.cand))
	for i, c := range job.cand {
		rs[i] = stats.AbsPearsonCentered(prep.centered(c), yctr)
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if rs[ia] != rs[ib] {
			return rs[ia] > rs[ib]
		}
		return job.candKeys[ia] < job.candKeys[ib]
	})
	b := cfg.TopB
	if b > len(order) {
		b = len(order)
	}
	feats := make([]metricRef, 0, b)
	for _, i := range order[:b] {
		if rs[i] > 0 {
			feats = append(feats, job.cand[i])
		}
	}
	return feats
}

// refitEntry is the fallback: the bit-exact full fit trainAt would perform
// (centered |Pearson| ranking, Ridge.FitColumns), plus a fresh anchor of the
// entry's sufficient statistics against the current shifts.
func (s *FactorStore) refitEntry(e *storeEntry, job *incJob, sty *seriesState, n, hi int, prep *incPrep, cfg Config) (*factor, error) {
	yctr := prep.centered(job.ref)
	f := &factor{target: job.ref, hmean: yctr.Mean}
	if n >= 2 {
		f.hstd = math.Sqrt(yctr.SumSq / float64(n-1))
	}
	f.med, f.madScale, f.novel = sty.targetStats()
	f.rscore = f.robustScoreAt(sty.win[n-1])

	feats := s.rankExact(job, prep, cfg)
	f.features = feats
	featCols := make([][]float64, len(feats))
	for j, fr := range feats {
		featCols[j] = s.series[fr].win
	}
	model := regress.NewRidge(cfg.Lambda)
	if err := model.FitColumns(featCols, sty.win); err != nil {
		return nil, fmt.Errorf("core: fit factor %s: %w", job.ref, err)
	}
	f.model = model

	// Anchor the slid statistics against the current shifts.
	shiftedY := prep.shiftedCol(job.ref)
	e.feats = append(e.feats[:0], feats...)
	e.cand = job.cand
	e.targetEpoch = sty.epoch
	e.featEpochs = make([]uint32, len(feats))
	if len(feats) > 0 {
		shiftedCols := make([][]float64, len(feats))
		for j, fr := range feats {
			shiftedCols[j] = prep.shiftedCol(fr)
			e.featEpochs[j] = s.series[fr].epoch
		}
		e.gram = mat.GramCols(shiftedCols)
		e.xty = mat.MulVecCols(shiftedCols, shiftedY)
	} else {
		e.gram, e.xty = nil, nil
	}
	e.cross = make([]float64, len(job.cand))
	e.candEpochs = make([]uint32, len(job.cand))
	for i, c := range job.cand {
		e.cross[i] = mat.Dot(prep.shiftedCol(c), shiftedY)
		e.candEpochs[i] = s.series[c].epoch
	}
	e.slides = 0
	e.drift.Reset()
	e.f, e.fittedHi = f, hi
	return f, nil
}

// recenterLocked re-anchors every series whose mean drifted more than
// recenterFrac standard deviations from its shift, applying the exact
// closed-form correction to every entry's Gram/cross statistics:
//
//	Σ(x_j−sh_j−d_j)(x_k−sh_k−d_k) = G_jk − d_j·S1_k − d_k·S1_j + N·d_j·d_k
//
// with all S1 values read before any moment is mutated (d is zero for series
// that keep their anchor), so the algebra is exact regardless of how many
// series recenter at once.
func (s *FactorStore) recenterLocked(n int) {
	deltas := make(map[metricRef]float64)
	for ref, st := range s.series {
		d := st.mom.S1 / float64(st.mom.N)
		sd := st.mom.Std()
		if st.mom.N == 0 || d == 0 {
			continue
		}
		if (sd > 0 && math.Abs(d) > recenterFrac*sd) || sd == 0 {
			deltas[ref] = d
		}
	}
	if len(deltas) == 0 {
		return
	}
	nf := float64(n)
	s1of := func(ref metricRef) float64 { return s.series[ref].mom.S1 }
	for ref, e := range s.entries {
		if e.f == nil || e.fittedHi == 0 {
			continue
		}
		dy := deltas[ref]
		s1y := s1of(ref)
		touched := dy != 0
		if !touched {
			for _, fr := range e.feats {
				if deltas[fr] != 0 {
					touched = true
					break
				}
			}
		}
		if touched && len(e.feats) > 0 {
			dj := make([]float64, len(e.feats))
			s1j := make([]float64, len(e.feats))
			for j, fr := range e.feats {
				dj[j] = deltas[fr]
				s1j[j] = s1of(fr)
			}
			for j := 0; j < len(e.feats); j++ {
				for k := j; k < len(e.feats); k++ {
					if dj[j] == 0 && dj[k] == 0 {
						continue
					}
					v := e.gram.At(j, k) - dj[j]*s1j[k] - dj[k]*s1j[j] + nf*dj[j]*dj[k]
					e.gram.Set(j, k, v)
					e.gram.Set(k, j, v)
				}
			}
			for j := 0; j < len(e.feats); j++ {
				if dj[j] == 0 && dy == 0 {
					continue
				}
				e.xty[j] += -dj[j]*s1y - dy*s1j[j] + nf*dj[j]*dy
			}
		}
		for ci, c := range e.cand {
			dc := deltas[c]
			if dc == 0 && dy == 0 {
				continue
			}
			e.cross[ci] += -dc*s1y - dy*s1of(c) + nf*dc*dy
		}
	}
	for ref := range deltas {
		s.series[ref].mom.Recenter()
	}
}

// ---------------------------------------------------------------------------
// Persistence: the store serializes to a compact JSON snapshot so a murphyd
// warm restart resumes sliding where the previous process stopped instead of
// paying a full retrain. Windows cannot be persisted (the restored process
// re-reads them from the recovered database), so each series carries bitwise
// fingerprints of its window endpoints plus its missing-value positions; a
// snapshot only adopts against a database that reproduces them exactly.
// ---------------------------------------------------------------------------

// factorStoreRefJSON names one (entity, metric) pair in a snapshot.
type factorStoreRefJSON struct {
	Entity string `json:"entity"`
	Metric string `json:"metric"`
}

func refToJSON(r metricRef) factorStoreRefJSON {
	return factorStoreRefJSON{Entity: string(r.entity), Metric: r.metric}
}

func refFromJSON(j factorStoreRefJSON) metricRef {
	return metricRef{telemetry.EntityID(j.Entity), j.Metric}
}

type factorStoreSeriesJSON struct {
	factorStoreRefJSON
	Shift float64 `json:"shift"`
	S1    float64 `json:"s1"`
	S2    float64 `json:"s2"`
	NanAt []int   `json:"nan_at,omitempty"`
	Epoch uint32  `json:"epoch"`
	// First/Last are bitwise fingerprints of the placeholder-filled window's
	// endpoints; adoption rebuilds the window from the database and requires
	// exact equality.
	First float64 `json:"first"`
	Last  float64 `json:"last"`
}

type factorStoreEntryJSON struct {
	factorStoreRefJSON
	Feats       []factorStoreRefJSON `json:"feats,omitempty"`
	TargetEpoch uint32               `json:"target_epoch"`
	FeatEpochs  []uint32             `json:"feat_epochs,omitempty"`
	Gram        []float64            `json:"gram,omitempty"`
	Xty         []float64            `json:"xty,omitempty"`
	Cross       []float64            `json:"cross,omitempty"`
	CandEpochs  []uint32             `json:"cand_epochs,omitempty"`
	// CandHash fingerprints the candidate list the cross statistics align
	// with; adoption re-derives the list from the graph and database and
	// requires the hash to match.
	CandHash     uint64             `json:"cand_hash"`
	Slides       int                `json:"slides"`
	FittedHi     int                `json:"fitted_hi"`
	DriftPreds   []float64          `json:"drift_preds,omitempty"`
	DriftActuals []float64          `json:"drift_actuals,omitempty"`
	Model        regress.RidgeState `json:"model"`
	Hmean        float64            `json:"hmean"`
	Hstd         float64            `json:"hstd"`
	Med          float64            `json:"med"`
	MadScale     float64            `json:"mad_scale"`
	Rscore       float64            `json:"rscore"`
	Novel        bool               `json:"novel,omitempty"`
}

// factorStoreJSON is the on-disk snapshot layout.
type factorStoreJSON struct {
	Version int                     `json:"version"`
	Window  int                     `json:"window"`
	TopB    int                     `json:"top_b"`
	Lambda  float64                 `json:"lambda"`
	Lo      int                     `json:"lo"`
	Hi      int                     `json:"hi"`
	Series  []factorStoreSeriesJSON `json:"series,omitempty"`
	Entries []factorStoreEntryJSON  `json:"entries,omitempty"`
}

// candListHash fingerprints a candidate list (order-sensitive).
func candListHash(cand []metricRef) uint64 {
	h := fnv.New64a()
	for _, c := range cand {
		h.Write([]byte(c.String()))
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

// Snapshot serializes the store's incremental state. The snapshot is
// self-validating on restore: it embeds the hyperparameters, window bounds,
// per-series window fingerprints, and per-entry candidate-list hashes, and
// adoption discards anything the restored database does not reproduce.
func (s *FactorStore) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := factorStoreJSON{
		Version: factorStoreSnapshotVersion,
		Window:  s.window, TopB: s.topB, Lambda: s.lambda,
		Lo: s.lo, Hi: s.hi,
	}
	refs := make([]metricRef, 0, len(s.series))
	for ref := range s.series {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a].String() < refs[b].String() })
	for _, ref := range refs {
		st := s.series[ref]
		if len(st.win) == 0 {
			continue
		}
		p.Series = append(p.Series, factorStoreSeriesJSON{
			factorStoreRefJSON: refToJSON(ref),
			Shift:              st.mom.Shift, S1: st.mom.S1, S2: st.mom.S2,
			NanAt: append([]int(nil), st.nanAt...),
			Epoch: st.epoch,
			First: st.win[0], Last: st.win[len(st.win)-1],
		})
	}
	erefs := make([]metricRef, 0, len(s.entries))
	for ref := range s.entries {
		erefs = append(erefs, ref)
	}
	sort.Slice(erefs, func(a, b int) bool { return erefs[a].String() < erefs[b].String() })
	for _, ref := range erefs {
		e := s.entries[ref]
		if e.f == nil || e.fittedHi == 0 {
			continue // never anchored: nothing worth persisting
		}
		ridge, ok := e.f.model.(*regress.Ridge)
		if !ok {
			continue
		}
		ej := factorStoreEntryJSON{
			factorStoreRefJSON: refToJSON(ref),
			TargetEpoch:        e.targetEpoch,
			FeatEpochs:         append([]uint32(nil), e.featEpochs...),
			Xty:                append([]float64(nil), e.xty...),
			Cross:              append([]float64(nil), e.cross...),
			CandEpochs:         append([]uint32(nil), e.candEpochs...),
			CandHash:           candListHash(e.cand),
			Slides:             e.slides,
			FittedHi:           e.fittedHi,
			Model:              ridge.State(),
			Hmean:              e.f.hmean, Hstd: e.f.hstd,
			Med: e.f.med, MadScale: e.f.madScale,
			Rscore: e.f.rscore, Novel: e.f.novel,
		}
		for _, fr := range e.feats {
			ej.Feats = append(ej.Feats, refToJSON(fr))
		}
		if e.gram != nil {
			nb := len(e.feats)
			ej.Gram = make([]float64, 0, nb*nb)
			for i := 0; i < nb; i++ {
				for j := 0; j < nb; j++ {
					ej.Gram = append(ej.Gram, e.gram.At(i, j))
				}
			}
		}
		ej.DriftPreds, ej.DriftActuals = e.drift.Pairs()
		p.Entries = append(p.Entries, ej)
	}
	return json.Marshal(p)
}

// RestoreSnapshot stages a snapshot for adoption. Nothing is validated here
// beyond the JSON shape and version: the snapshot can only be checked against
// a database and graph, which arrive with the next training pass — adoption
// happens there, silently discarding anything inconsistent (a failed warm
// restart degrades to a cold one, never to wrong factors).
func (s *FactorStore) RestoreSnapshot(data []byte) error {
	var p factorStoreJSON
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("core: factor store snapshot: %w", err)
	}
	if p.Version != factorStoreSnapshotVersion {
		return fmt.Errorf("core: factor store snapshot version %d (want %d)", p.Version, factorStoreSnapshotVersion)
	}
	s.mu.Lock()
	s.pending = &p
	s.mu.Unlock()
	return nil
}

// SaveFile writes the snapshot with the crash-safe discipline of the serve
// layer's snapshots: temp file, fsync, atomic rename.
func (s *FactorStore) SaveFile(path string) error {
	data, err := s.Snapshot()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".factorstore-*.tmp")
	if err != nil {
		return fmt.Errorf("core: factor store save: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("core: factor store save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: factor store save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: factor store save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("core: factor store save: %w", err)
	}
	return nil
}

// LoadFile reads a snapshot written by SaveFile and stages it for adoption.
func (s *FactorStore) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: factor store load: %w", err)
	}
	return s.RestoreSnapshot(data)
}

// adoptLocked validates the staged snapshot against the bound database and
// graph and installs whatever checks out. Validation is conservative: a
// hyperparameter or window-bound mismatch discards everything; a series whose
// rebuilt window does not reproduce the persisted fingerprints discards
// everything (the statistics are only meaningful over those exact values); an
// entry whose candidate list or features no longer resolve is skipped alone
// (it refits on first use).
func (s *FactorStore) adoptLocked(db *telemetry.DB, cfg Config) {
	p := s.pending
	s.pending = nil
	if p == nil || len(s.series) > 0 {
		return // live state is fresher than any snapshot
	}
	if p.Window != cfg.TrainWindow || p.TopB != cfg.TopB || p.Lambda != cfg.Lambda {
		return
	}
	n := p.Hi - p.Lo
	if p.Lo < 0 || n < 8 || n > cfg.TrainWindow || p.Hi > db.Len() {
		return
	}
	series := make(map[metricRef]*seriesState, len(p.Series))
	for _, sj := range p.Series {
		ref := refFromJSON(sj.factorStoreRefJSON)
		st := newSeriesState(db.RawWindow(ref.entity, ref.metric, p.Lo, p.Hi), p.Lo)
		if len(st.win) != n || st.win[0] != sj.First || st.win[n-1] != sj.Last {
			return
		}
		if len(st.nanAt) != len(sj.NanAt) {
			return
		}
		for i, at := range st.nanAt {
			if at != sj.NanAt[i] {
				return
			}
		}
		// Keep the persisted shifted moments (the entry statistics are taken
		// against these shifts) and the persisted epoch counter.
		st.mom = stats.WindowMoments{Shift: sj.Shift, N: n, S1: sj.S1, S2: sj.S2}
		st.epoch = sj.Epoch
		series[ref] = st
	}
	type candInfo struct {
		cand []metricRef
		hash uint64
	}
	candOf := make(map[telemetry.EntityID]*candInfo)
	entries := make(map[metricRef]*storeEntry, len(p.Entries))
	for i := range p.Entries {
		ej := &p.Entries[i]
		ref := refFromJSON(ej.factorStoreRefJSON)
		if series[ref] == nil {
			continue
		}
		ci := candOf[ref.entity]
		if ci == nil {
			var cand []metricRef
			for _, nb := range s.g.InIDs(ref.entity) {
				for _, name := range db.MetricNames(nb) {
					cand = append(cand, metricRef{nb, name})
				}
			}
			ci = &candInfo{cand: cand, hash: candListHash(cand)}
			candOf[ref.entity] = ci
		}
		if ci.hash != ej.CandHash || len(ej.Cross) != len(ci.cand) || len(ej.CandEpochs) != len(ci.cand) {
			continue
		}
		nb := len(ej.Feats)
		if len(ej.FeatEpochs) != nb || len(ej.Xty) != nb || len(ej.Gram) != nb*nb {
			continue
		}
		feats := make([]metricRef, nb)
		ok := true
		for j, fj := range ej.Feats {
			fr := refFromJSON(fj)
			if series[fr] == nil {
				ok = false
				break
			}
			feats[j] = fr
		}
		if !ok || len(ej.DriftPreds) != len(ej.DriftActuals) {
			continue
		}
		e := &storeEntry{
			fittedHi:    ej.FittedHi,
			feats:       feats,
			cand:        ci.cand,
			targetEpoch: ej.TargetEpoch,
			featEpochs:  append([]uint32(nil), ej.FeatEpochs...),
			candEpochs:  append([]uint32(nil), ej.CandEpochs...),
			xty:         append([]float64(nil), ej.Xty...),
			cross:       append([]float64(nil), ej.Cross...),
			slides:      ej.Slides,
			drift:       stats.NewDriftTracker(driftWindow),
		}
		if nb > 0 {
			e.gram = mat.NewDense(nb, nb)
			for r := 0; r < nb; r++ {
				for c := 0; c < nb; c++ {
					e.gram.Set(r, c, ej.Gram[r*nb+c])
				}
			}
		}
		for j := range ej.DriftPreds {
			e.drift.Push(ej.DriftPreds[j], ej.DriftActuals[j])
		}
		e.f = &factor{
			target:   ref,
			features: append([]metricRef(nil), feats...),
			model:    regress.NewRidgeFromState(ej.Model),
			hmean:    ej.Hmean, hstd: ej.Hstd,
			med: ej.Med, madScale: ej.MadScale,
			rscore: ej.Rscore, novel: ej.Novel,
		}
		entries[ref] = e
	}
	s.series = series
	s.entries = entries
	s.lo, s.hi = p.Lo, p.Hi
}
