// Multi-chain Gibbs sampling: one candidate's factual and counterfactual
// Monte-Carlo budgets are split across Config.Chains independent chains, each
// with its own splitmix-derived RNG stream and its own arena, executed on up
// to min(K, GOMAXPROCS) goroutines. Chain c always owns the same contiguous
// slice of the budget and the same seed, and merges happen in chain order, so
// for a fixed K the merged draws — and every verdict derived from them — are
// bit-identical no matter how many goroutines actually ran.

package core

import (
	"context"
	"math/rand"
	"runtime"
	"sync"

	"murphy/internal/obs"
	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche of the seed
// counter, the standard generator for deriving independent per-stream seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SplitMix64 exposes the engine's seed-derivation finalizer for scenario
// generators and fuzzers: deriving every sub-seed (per scenario family, per
// case index) through the same bijective avalanche the sampler uses keeps
// fuzzed workloads deterministic and replayable from a single logged seed
// without correlated RNG streams.
func SplitMix64(x uint64) uint64 { return splitmix64(x) }

// chainSeed derives chain c's RNG seed from the candidate-pair base seed.
// Consecutive chains land in unrelated parts of the splitmix sequence, so the
// per-chain streams are statistically independent while staying a pure
// function of (base, c).
func chainSeed(base int64, c int) int64 {
	return int64(splitmix64(uint64(base) + uint64(c)*0x9e3779b97f4a7c15))
}

// chainCount clamps the configured chain count to the sample budget (every
// chain must own at least one draw).
func (m *Model) chainCount(n int) int {
	k := m.cfg.Chains
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// chainBounds returns the half-open budget slice [lo, hi) owned by chain c
// when n draws are split across k chains: the first n%k chains get one extra.
func chainBounds(n, k, c int) (int, int) {
	q, r := n/k, n%k
	lo := c*q + min(c, r)
	hi := lo + q
	if c < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runChains executes fn(c, arena) for chains 0..k-1 on up to
// min(k, GOMAXPROCS) goroutines. With one usable processor (or one chain) it
// degrades to the plain inline loop reusing the caller's arena — no
// goroutines, no extra arenas. In pooled mode every worker checks out its own
// arena, and fn must confine its writes to chain c's own output slots; the
// lowest-index error is returned, mirroring what a sequential run would hit
// first.
func (m *Model) runChains(ctx context.Context, k int, ar *arena, fn func(c int, ar *arena) error) error {
	p := min(k, runtime.GOMAXPROCS(0))
	if p <= 1 {
		for c := 0; c < k; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(c, ar); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, k)
	var nextMu sync.Mutex
	next := 0
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			war := m.arenas.get()
			defer m.arenas.put(war)
			for {
				nextMu.Lock()
				c := next
				next++
				nextMu.Unlock()
				if c >= k {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[c] = err
					continue
				}
				errs[c] = fn(c, war)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sampleFullChains is sampleFull with the two cfg.Samples budgets split across
// K chains. Chain c draws its counterfactual slice and then its factual slice
// from one per-chain RNG (the same CF-then-F order as the single-stream
// sampler uses globally) and copies both into its owned segments of the merged
// draw vectors; the batch t-test then runs on the merged vectors exactly as in
// sampleFull.
func (m *Model) sampleFullChains(ctx context.Context, a, d telemetry.EntityID, path []telemetry.EntityID, cf map[metricRef]float64, symRef metricRef, alt stats.Alternative, ar *arena) (stats.TTestResult, float64, int, error) {
	n := m.cfg.Samples
	k := m.chainCount(n)
	base := m.pairSeed(a, d)
	d1 := make([]float64, n) // counterfactual draws
	d2 := make([]float64, n) // factual draws
	m.obs.Add(obs.CtrGibbsChains, int64(k))
	err := m.runChains(ctx, k, ar, func(c int, car *arena) error {
		lo, hi := chainBounds(n, k, c)
		rng := rand.New(rand.NewSource(chainSeed(base, c)))
		out, err := m.resampleSymptom(ctx, path, cf, symRef, rng, car, hi-lo)
		if err != nil {
			return err
		}
		copy(d1[lo:hi], out) // the factual pass below reuses the arena
		out, err = m.resampleSymptom(ctx, path, m.current, symRef, rng, car, hi-lo)
		if err != nil {
			return err
		}
		copy(d2[lo:hi], out)
		return nil
	})
	if err != nil {
		return stats.TTestResult{}, 0, 0, err
	}
	res, err := stats.WelchTTest(d1, d2, alt)
	if err != nil {
		return stats.TTestResult{}, 0, 0, err
	}
	return res, stats.Mean(d2) - stats.Mean(d1), 2 * n, nil
}

// gibbsChain is one chain's state in the sequential multi-chain sampler: its
// two RNG streams (counterfactual and factual, mirroring sampleEarlyStop's
// independent streams), its share of the budget, and reusable buffers holding
// the current round's draws until the in-order merge.
type gibbsChain struct {
	rngCF, rngF *rand.Rand
	quota       int // total draws per side this chain owns
	drawn       int // draws per side taken so far
	cfD, fD     []float64
}

// sampleEarlyStopChains is the sequential test over K chains: each round,
// every unfinished chain draws one counterfactual+factual batch pair (in
// parallel), the batches merge into the streaming Welch state in chain order,
// and the shared three-exit verdict (earlyStopVerdict) decides whether to
// stop. Merging in chain order keeps the streaming moments a pure function of
// (seed, K, rounds), so verdicts are bit-identical at any goroutine count.
func (m *Model) sampleEarlyStopChains(ctx context.Context, a, d telemetry.EntityID, path []telemetry.EntityID, cf map[metricRef]float64, symRef metricRef, alt stats.Alternative, ar *arena, effScale float64) (stats.TTestResult, float64, int, error) {
	n := m.cfg.Samples
	k := m.chainCount(n)
	base := m.pairSeed(a, d)
	chains := make([]*gibbsChain, k)
	for c := 0; c < k; c++ {
		lo, hi := chainBounds(n, k, c)
		seed := chainSeed(base, c)
		chains[c] = &gibbsChain{
			rngCF: rand.New(rand.NewSource(seed)),
			rngF:  rand.New(rand.NewSource(seed ^ 0x5e9c3779b97f4a7d)),
			quota: hi - lo,
		}
	}
	m.obs.Add(obs.CtrGibbsChains, int64(k))
	zConf := stats.NormalQuantile(m.cfg.EarlyStopConfidence)
	var st stats.StreamingWelch
	minDraws := earlyStopMinSamples
	if minDraws > n {
		minDraws = n
	}
	decisive := false
	for drawn := 0; drawn < n && !decisive; {
		err := m.runChains(ctx, k, ar, func(c int, car *arena) error {
			ch := chains[c]
			b := min(earlyStopBatch, ch.quota-ch.drawn)
			ch.cfD, ch.fD = ch.cfD[:0], ch.fD[:0]
			if b == 0 {
				return nil
			}
			out, err := m.resampleSymptom(ctx, path, cf, symRef, ch.rngCF, car, b)
			if err != nil {
				return err
			}
			ch.cfD = append(ch.cfD, out...)
			out, err = m.resampleSymptom(ctx, path, m.current, symRef, ch.rngF, car, b)
			if err != nil {
				return err
			}
			ch.fD = append(ch.fD, out...)
			ch.drawn += b
			return nil
		})
		if err != nil {
			return stats.TTestResult{}, 0, 0, err
		}
		for _, ch := range chains { // merge in chain order: deterministic moments
			st.A.AddAll(ch.cfD)
			st.B.AddAll(ch.fD)
			drawn += len(ch.cfD)
		}
		if drawn < minDraws {
			continue
		}
		if m.earlyStopVerdict(&st, alt, zConf, effScale) {
			decisive = true
		}
	}
	if decisive {
		m.obs.Add(obs.CtrEarlyStopDecisive, 1)
	} else {
		m.obs.Add(obs.CtrEarlyStopExhausted, 1)
	}
	res, err := st.Test(alt)
	if err != nil {
		return stats.TTestResult{}, 0, 0, err
	}
	return res, st.B.Mean() - st.A.Mean(), st.A.Count() + st.B.Count(), nil
}
