// Multi-chain Gibbs sampling: one candidate's factual and counterfactual
// Monte-Carlo budgets are split across Config.Chains independent chains, each
// with its own splitmix-derived RNG stream and its own arena, executed on up
// to min(K, GOMAXPROCS) goroutines. Chain c always owns the same contiguous
// slice of the budget and the same seed, and merges happen in chain order, so
// for a fixed K the merged draws — and every verdict derived from them — are
// bit-identical no matter how many goroutines actually ran.

package core

import (
	"context"
	"runtime"
	"sync"
)

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche of the seed
// counter, the standard generator for deriving independent per-stream seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SplitMix64 exposes the engine's seed-derivation finalizer for scenario
// generators and fuzzers: deriving every sub-seed (per scenario family, per
// case index) through the same bijective avalanche the sampler uses keeps
// fuzzed workloads deterministic and replayable from a single logged seed
// without correlated RNG streams.
func SplitMix64(x uint64) uint64 { return splitmix64(x) }

// chainSeed derives chain c's RNG seed from the candidate-pair base seed.
// Consecutive chains land in unrelated parts of the splitmix sequence, so the
// per-chain streams are statistically independent while staying a pure
// function of (base, c).
func chainSeed(base int64, c int) int64 {
	return int64(splitmix64(uint64(base) + uint64(c)*0x9e3779b97f4a7c15))
}

// chainCount clamps the configured chain count to the sample budget (every
// chain must own at least one draw).
func (m *Model) chainCount(n int) int {
	k := m.cfg.Chains
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// chainBounds returns the half-open budget slice [lo, hi) owned by chain c
// when n draws are split across k chains: the first n%k chains get one extra.
func chainBounds(n, k, c int) (int, int) {
	q, r := n/k, n%k
	lo := c*q + min(c, r)
	hi := lo + q
	if c < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runChains executes fn(c, arena) for chains 0..k-1 on up to
// min(k, GOMAXPROCS) goroutines. With one usable processor (or one chain) it
// degrades to the plain inline loop reusing the caller's arena — no
// goroutines, no extra arenas. In pooled mode every worker checks out its own
// arena, and fn must confine its writes to chain c's own output slots; the
// lowest-index error is returned, mirroring what a sequential run would hit
// first.
func (m *Model) runChains(ctx context.Context, k int, ar *arena, fn func(c int, ar *arena) error) error {
	p := min(k, runtime.GOMAXPROCS(0))
	if p <= 1 {
		for c := 0; c < k; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(c, ar); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, k)
	var nextMu sync.Mutex
	next := 0
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			war := m.arenas.get()
			defer m.arenas.put(war)
			for {
				nextMu.Lock()
				c := next
				next++
				nextMu.Unlock()
				if c >= k {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[c] = err
					continue
				}
				errs[c] = fn(c, war)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
