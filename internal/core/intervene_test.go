package core

import (
	"math"
	"testing"

	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

func TestPredictUnderInterventionPropagates(t *testing.T) {
	_, m := trainChain(t)
	// Lowering the client's RPS to its historical quiet level should lower
	// the predicted backend CPU well below its current (incident) value.
	quiet := 50.0
	pred, ok := m.PredictUnderIntervention(
		map[telemetry.EntityID]map[string]float64{
			"client": {telemetry.MetricRPS: quiet},
		},
		"back", telemetry.MetricCPU, 4)
	if !ok {
		t.Fatal("client should reach back")
	}
	cur := m.CurrentValue("back", telemetry.MetricCPU)
	if pred >= cur-10 {
		t.Fatalf("intervention should lower backend CPU: pred %v vs current %v", pred, cur)
	}
	// The fully converged value would be backCPU ≈ ((50*1.5)*0.2+5)*1.2+3 =
	// 24; with bidirectional edges the Gibbs passes converge only partially
	// (the paper's own caveat in §4.2), so require movement most of the way.
	if pred < 10 || pred > (cur+24)/2 {
		t.Fatalf("prediction %v not between ~24 and halfway to current %v", pred, cur)
	}
	// More rounds must not move the prediction away from the true value —
	// the Fig 8b property that motivates W > 1.
	pred1, _ := m.PredictUnderIntervention(
		map[telemetry.EntityID]map[string]float64{"client": {telemetry.MetricRPS: quiet}},
		"back", telemetry.MetricCPU, 1)
	pred8, _ := m.PredictUnderIntervention(
		map[telemetry.EntityID]map[string]float64{"client": {telemetry.MetricRPS: quiet}},
		"back", telemetry.MetricCPU, 8)
	if math.Abs(pred8-24) > math.Abs(pred1-24)+1e-9 {
		t.Fatalf("more rounds should converge toward truth: 1 round %v, 8 rounds %v", pred1, pred8)
	}
}

func TestPredictUnderInterventionDeterministic(t *testing.T) {
	_, m := trainChain(t)
	ov := map[telemetry.EntityID]map[string]float64{"client": {telemetry.MetricRPS: 60}}
	a, _ := m.PredictUnderIntervention(ov, "back", telemetry.MetricCPU, 4)
	b, _ := m.PredictUnderIntervention(ov, "back", telemetry.MetricCPU, 4)
	if a != b {
		t.Fatal("intervention prediction must be deterministic")
	}
}

func TestPredictUnderInterventionUnreachable(t *testing.T) {
	db := chainDB(t, 220, 5, 9)
	if err := db.AddEntity(&telemetry.Entity{ID: "island", Type: telemetry.TypeVM, Name: "i"}); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 220; tt++ {
		if err := db.Observe("island", telemetry.MetricCPU, tt, 10); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := graph.Build(db, []telemetry.EntityID{"back", "island"}, -1)
	m, err := Train(db, g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.PredictUnderIntervention(
		map[telemetry.EntityID]map[string]float64{"island": {telemetry.MetricCPU: 5}},
		"back", telemetry.MetricCPU, 2); ok {
		t.Fatal("unreachable source should report !ok")
	}
}

func TestPredictUnderInterventionDefaultRounds(t *testing.T) {
	_, m := trainChain(t)
	ov := map[telemetry.EntityID]map[string]float64{"client": {telemetry.MetricRPS: 60}}
	a, ok := m.PredictUnderIntervention(ov, "back", telemetry.MetricCPU, 0)
	if !ok {
		t.Fatal("should reach")
	}
	b, _ := m.PredictUnderIntervention(ov, "back", telemetry.MetricCPU, m.Config().GibbsRounds)
	if a != b {
		t.Fatal("rounds=0 should default to configured Gibbs rounds")
	}
}
