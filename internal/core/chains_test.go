package core

import (
	"runtime"
	"testing"

	"murphy/internal/obs"
	"murphy/internal/telemetry"
)

func TestChainBounds(t *testing.T) {
	cases := []struct{ n, k int }{
		{10, 1}, {10, 2}, {10, 3}, {10, 4}, {7, 7}, {300, 4}, {5, 2},
	}
	for _, tc := range cases {
		prev := 0
		total := 0
		for c := 0; c < tc.k; c++ {
			lo, hi := chainBounds(tc.n, tc.k, c)
			if lo != prev {
				t.Fatalf("n=%d k=%d chain %d: lo=%d, want %d (contiguous)", tc.n, tc.k, c, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d k=%d chain %d: hi=%d < lo=%d", tc.n, tc.k, c, hi, lo)
			}
			if span := hi - lo; span != tc.n/tc.k && span != tc.n/tc.k+1 {
				t.Fatalf("n=%d k=%d chain %d: span %d not balanced", tc.n, tc.k, c, span)
			}
			total += hi - lo
			prev = hi
		}
		if total != tc.n {
			t.Fatalf("n=%d k=%d: chains cover %d draws", tc.n, tc.k, total)
		}
	}
}

func TestChainSeedIndependence(t *testing.T) {
	// Distinct chains of the same base must get distinct seeds, and the seed
	// must be a pure function of (base, chain).
	seen := map[int64]bool{}
	for c := 0; c < 64; c++ {
		s := chainSeed(12345, c)
		if seen[s] {
			t.Fatalf("chain %d: duplicate seed %d", c, s)
		}
		seen[s] = true
		if s != chainSeed(12345, c) {
			t.Fatalf("chain %d: seed not deterministic", c)
		}
	}
	if chainSeed(1, 0) == chainSeed(2, 0) {
		t.Fatal("different bases produced the same chain-0 seed")
	}
}

func TestChainCountClamp(t *testing.T) {
	m := &Model{cfg: Config{Chains: 8}}
	if got := m.chainCount(3); got != 3 {
		t.Errorf("chainCount(3) with Chains=8 = %d, want 3", got)
	}
	m.cfg.Chains = 0
	if got := m.chainCount(100); got != 1 {
		t.Errorf("chainCount with Chains=0 = %d, want 1", got)
	}
}

// diagnoseChains trains on the shared chain DB with the given chain count and
// early-stop setting and returns the diagnosis of the standard symptom.
func diagnoseChains(t *testing.T, chains int, earlyStop bool) *Diagnosis {
	t.Helper()
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	cfg.Chains = chains
	cfg.EarlyStop = earlyStop
	m, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	return diag
}

// TestChainsSingleMatchesLegacy pins the compatibility contract: Chains=1 must
// reproduce the single-stream sampler's bits exactly (the golden rankings
// depend on them).
func TestChainsSingleMatchesLegacy(t *testing.T) {
	for _, es := range []bool{false, true} {
		legacy := diagnoseChains(t, 0, es)
		one := diagnoseChains(t, 1, es)
		sameDiagnosis(t, "chains=1 vs legacy", legacy, one)
	}
}

// TestChainsBitIdenticalAcrossProcs fixes the chain count and varies
// GOMAXPROCS: the merged verdicts must be bit-identical whether the chains ran
// inline on one processor or concurrently on four.
func TestChainsBitIdenticalAcrossProcs(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, es := range []bool{false, true} {
		runtime.GOMAXPROCS(1)
		inline := diagnoseChains(t, 4, es)
		runtime.GOMAXPROCS(4)
		pooled := diagnoseChains(t, 4, es)
		sameDiagnosis(t, "chains across GOMAXPROCS", inline, pooled)
	}
}

// TestChainsPreserveRankings allows chain counts to change p-value bits (they
// use different RNG streams) but requires the certified ranked entity order to
// survive: same causes, same order, at 1, 2 and 4 chains, for both samplers.
func TestChainsPreserveRankings(t *testing.T) {
	for _, es := range []bool{false, true} {
		base := diagnoseChains(t, 1, es)
		if len(base.Causes) == 0 {
			t.Fatalf("earlyStop=%v: baseline found no causes", es)
		}
		for _, k := range []int{2, 4} {
			diag := diagnoseChains(t, k, es)
			if len(diag.Causes) != len(base.Causes) {
				t.Fatalf("earlyStop=%v chains=%d: %d causes vs %d", es, k, len(diag.Causes), len(base.Causes))
			}
			for i := range base.Causes {
				if diag.Causes[i].Entity != base.Causes[i].Entity {
					t.Fatalf("earlyStop=%v chains=%d: rank %d is %s, want %s",
						es, k, i, diag.Causes[i].Entity, base.Causes[i].Entity)
				}
			}
		}
	}
}

// TestChainsCounter verifies multi-chain sampling reports its chain spawns.
func TestChainsCounter(t *testing.T) {
	db := chainDB(t, 220, 5, 42)
	g := chainGraph(t, db)
	cfg := testConfig()
	cfg.Chains = 4
	m, err := Train(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	rec.Enable()
	m.SetRecorder(rec)
	if _, err := m.Diagnose(telemetry.Symptom{Entity: "back", Metric: telemetry.MetricCPU, High: true}); err != nil {
		t.Fatal(err)
	}
	chains := rec.Counter(obs.CtrGibbsChains)
	if chains == 0 || chains%4 != 0 {
		t.Errorf("CtrGibbsChains = %d, want a positive multiple of 4", chains)
	}
}
