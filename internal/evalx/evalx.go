// Package evalx provides the accuracy metrics and protocols of §6: top-K
// recall, precision (1/rank of the first true hit), their "relaxed" variants
// that accept near-misses like common services/containers, and the
// false-positive counting protocol of §6.2 in which every scheme's cutoff is
// calibrated to achieve recall 1 on designated calibration incidents.
package evalx

import (
	"murphy/internal/telemetry"
)

// Hit reports whether any of the first k entries of ranked is in accept.
func Hit(ranked []telemetry.EntityID, accept map[telemetry.EntityID]bool, k int) bool {
	if k > len(ranked) {
		k = len(ranked)
	}
	for _, id := range ranked[:k] {
		if accept[id] {
			return true
		}
	}
	return false
}

// AcceptSet builds a membership set from entity lists.
func AcceptSet(lists ...[]telemetry.EntityID) map[telemetry.EntityID]bool {
	set := make(map[telemetry.EntityID]bool)
	for _, l := range lists {
		for _, id := range l {
			set[id] = true
		}
	}
	return set
}

// TopKRecall returns the fraction of cases where the accept set was hit in
// the top k of the corresponding ranking.
func TopKRecall(rankings [][]telemetry.EntityID, accepts []map[telemetry.EntityID]bool, k int) float64 {
	if len(rankings) == 0 {
		return 0
	}
	hits := 0
	for i, r := range rankings {
		if Hit(r, accepts[i], k) {
			hits++
		}
	}
	return float64(hits) / float64(len(rankings))
}

// Precision returns 1/r where r is the 1-based rank of the first accepted
// entity, or 0 when none is ranked. This matches the paper's definition: the
// operator walks the list top-down and false positives past the first hit
// don't matter.
func Precision(ranked []telemetry.EntityID, accept map[telemetry.EntityID]bool) float64 {
	for i, id := range ranked {
		if accept[id] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// MeanPrecision averages Precision over cases.
func MeanPrecision(rankings [][]telemetry.EntityID, accepts []map[telemetry.EntityID]bool) float64 {
	if len(rankings) == 0 {
		return 0
	}
	s := 0.0
	for i, r := range rankings {
		s += Precision(r, accepts[i])
	}
	return float64(s) / float64(len(rankings))
}

// FalsePositives counts the entries of ranked[:cutoff] that are not in the
// truth set (Table 1's metric). cutoff <= 0 means the whole list.
func FalsePositives(ranked []telemetry.EntityID, truth map[telemetry.EntityID]bool, cutoff int) int {
	if cutoff <= 0 || cutoff > len(ranked) {
		cutoff = len(ranked)
	}
	fp := 0
	for _, id := range ranked[:cutoff] {
		if !truth[id] {
			fp++
		}
	}
	return fp
}

// CalibrationCase is one incident used to calibrate a scheme's cutoff.
type CalibrationCase struct {
	Ranked []telemetry.EntityID
	Truth  map[telemetry.EntityID]bool
}

// CalibrateCutoff returns the smallest cutoff K such that every calibration
// case has all of its truth entities inside the top K (recall 1 with zero
// false negatives, the §6.2 protocol), and ok=false when some truth entity
// is absent from a ranking entirely — in that case K covers the full lists.
func CalibrateCutoff(cases []CalibrationCase) (int, bool) {
	k, ok := 1, true
	for _, c := range cases {
		for truthID := range c.Truth {
			found := false
			for i, id := range c.Ranked {
				if id == truthID {
					if i+1 > k {
						k = i + 1
					}
					found = true
					break
				}
			}
			if !found {
				ok = false
				if len(c.Ranked) > k {
					k = len(c.Ranked)
				}
			}
		}
	}
	return k, ok
}

// Recall01 returns 1 if any truth entity appears in ranked[:cutoff], else 0.
func Recall01(ranked []telemetry.EntityID, truth map[telemetry.EntityID]bool, cutoff int) float64 {
	if Hit(ranked, truth, cutoffOrAll(ranked, cutoff)) {
		return 1
	}
	return 0
}

func cutoffOrAll(ranked []telemetry.EntityID, cutoff int) int {
	if cutoff <= 0 || cutoff > len(ranked) {
		return len(ranked)
	}
	return cutoff
}
