package evalx

import (
	"testing"

	"murphy/internal/telemetry"
)

func ids(ss ...string) []telemetry.EntityID {
	out := make([]telemetry.EntityID, len(ss))
	for i, s := range ss {
		out[i] = telemetry.EntityID(s)
	}
	return out
}

func TestHit(t *testing.T) {
	ranked := ids("a", "b", "c")
	accept := AcceptSet(ids("c"))
	if Hit(ranked, accept, 2) {
		t.Fatal("c is rank 3, not in top 2")
	}
	if !Hit(ranked, accept, 3) {
		t.Fatal("c is in top 3")
	}
	if !Hit(ranked, accept, 100) {
		t.Fatal("k beyond length should clamp")
	}
	if Hit(nil, accept, 5) {
		t.Fatal("empty ranking never hits")
	}
}

func TestTopKRecall(t *testing.T) {
	rankings := [][]telemetry.EntityID{ids("a", "b"), ids("x", "y"), ids("t", "u", "v")}
	accepts := []map[telemetry.EntityID]bool{
		AcceptSet(ids("b")), AcceptSet(ids("z")), AcceptSet(ids("v")),
	}
	if got := TopKRecall(rankings, accepts, 2); got != 1.0/3 {
		t.Fatalf("top-2 recall = %v, want 1/3", got)
	}
	if got := TopKRecall(rankings, accepts, 3); got != 2.0/3 {
		t.Fatalf("top-3 recall = %v, want 2/3", got)
	}
	if TopKRecall(nil, nil, 5) != 0 {
		t.Fatal("empty input should be 0")
	}
}

func TestPrecision(t *testing.T) {
	ranked := ids("a", "b", "c")
	if got := Precision(ranked, AcceptSet(ids("a"))); got != 1 {
		t.Fatalf("precision = %v", got)
	}
	if got := Precision(ranked, AcceptSet(ids("c"))); got != 1.0/3 {
		t.Fatalf("precision = %v", got)
	}
	if got := Precision(ranked, AcceptSet(ids("z"))); got != 0 {
		t.Fatalf("precision = %v", got)
	}
	mp := MeanPrecision([][]telemetry.EntityID{ranked, ranked},
		[]map[telemetry.EntityID]bool{AcceptSet(ids("a")), AcceptSet(ids("z"))})
	if mp != 0.5 {
		t.Fatalf("mean precision = %v", mp)
	}
	if MeanPrecision(nil, nil) != 0 {
		t.Fatal("empty mean precision should be 0")
	}
}

func TestFalsePositives(t *testing.T) {
	ranked := ids("a", "b", "c", "d")
	truth := AcceptSet(ids("b"))
	if got := FalsePositives(ranked, truth, 3); got != 2 {
		t.Fatalf("FP in top 3 = %d, want 2 (a, c)", got)
	}
	if got := FalsePositives(ranked, truth, 0); got != 3 {
		t.Fatalf("FP over all = %d, want 3", got)
	}
	if got := FalsePositives(ranked, truth, 100); got != 3 {
		t.Fatal("cutoff beyond length should clamp")
	}
}

func TestCalibrateCutoff(t *testing.T) {
	cases := []CalibrationCase{
		{Ranked: ids("x", "t1", "y"), Truth: AcceptSet(ids("t1"))},
		{Ranked: ids("t2", "x"), Truth: AcceptSet(ids("t2"))},
	}
	k, ok := CalibrateCutoff(cases)
	if !ok || k != 2 {
		t.Fatalf("cutoff = %d ok=%v, want 2 true", k, ok)
	}
	// Truth missing from one ranking: ok=false, k covers full list.
	cases = append(cases, CalibrationCase{Ranked: ids("a", "b", "c", "d"), Truth: AcceptSet(ids("zz"))})
	k, ok = CalibrateCutoff(cases)
	if ok || k != 4 {
		t.Fatalf("cutoff = %d ok=%v, want 4 false", k, ok)
	}
	// Multi-entity truth: K must cover the deepest one.
	k, ok = CalibrateCutoff([]CalibrationCase{
		{Ranked: ids("t1", "x", "t2"), Truth: AcceptSet(ids("t1", "t2"))},
	})
	if !ok || k != 3 {
		t.Fatalf("multi-truth cutoff = %d ok=%v", k, ok)
	}
}

func TestRecall01(t *testing.T) {
	ranked := ids("a", "b")
	if Recall01(ranked, AcceptSet(ids("b")), 1) != 0 {
		t.Fatal("b outside cutoff 1")
	}
	if Recall01(ranked, AcceptSet(ids("b")), 2) != 1 {
		t.Fatal("b inside cutoff 2")
	}
	if Recall01(ranked, AcceptSet(ids("b")), 0) != 1 {
		t.Fatal("cutoff 0 means whole list")
	}
}
