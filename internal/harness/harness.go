// Package harness regenerates every table and figure of the paper's
// evaluation (§6) on the emulated environments: one runner per experiment,
// each returning a structured result whose String() prints the same rows or
// series the paper reports. The benchmarks in the repository root and the
// murphybench CLI are thin wrappers around these runners.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"murphy/internal/core"
	"murphy/internal/explainit"
	"murphy/internal/graph"
	"murphy/internal/microsim"
	"murphy/internal/netmedic"
	"murphy/internal/telemetry"
)

// Scheme names used in result rows.
const (
	SchemeMurphy    = "Murphy"
	SchemeSage      = "Sage"
	SchemeNetMedic  = "NetMedic"
	SchemeExplainIt = "ExplainIT"
)

// Schemes is the fixed comparison order used in all printed results.
var Schemes = []string{SchemeMurphy, SchemeSage, SchemeNetMedic, SchemeExplainIt}

// murphyConfig returns the Murphy configuration used across experiments;
// samples is reduced from the paper's 5000 to keep harness runs fast — the
// code path is identical and the t-test remains well-powered.
func murphyConfig(samples, trainWindow int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Samples = samples
	cfg.TrainWindow = trainWindow
	return cfg
}

// schemeRankings runs all four schemes on one microsim scenario and returns
// each scheme's ranked root-cause list. Every scheme receives the same
// pruned candidate search space (§4.2). Sage receives the scenario's causal
// call DAG; when the true cause lies outside it, Sage simply cannot rank it.
func schemeRankings(sc *microsim.Scenario, cfg core.Config) (map[string][]telemetry.EntityID, error) {
	db := sc.Result.DB
	out := make(map[string][]telemetry.EntityID, 4)

	g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		return nil, fmt.Errorf("harness: build graph: %w", err)
	}
	model, err := core.Train(db, g, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: train murphy: %w", err)
	}
	diag, err := model.Diagnose(sc.Symptom)
	if err != nil {
		return nil, fmt.Errorf("harness: murphy diagnose: %w", err)
	}
	out[SchemeMurphy] = diag.Ranked()
	candidates := diag.Candidates

	// ExplainIt.
	eiCfg := explainit.DefaultConfig()
	eiCfg.Window = cfg.TrainWindow
	ei, err := explainit.Diagnose(db, sc.Symptom, candidates, eiCfg)
	if err != nil {
		return nil, fmt.Errorf("harness: explainit: %w", err)
	}
	out[SchemeExplainIt] = explainit.RankedIDs(ei)

	// NetMedic.
	nmCfg := netmedic.DefaultConfig()
	nmCfg.Window = cfg.TrainWindow
	nm, err := netmedic.Diagnose(db, g, sc.Symptom, candidates, nmCfg)
	if err != nil {
		return nil, fmt.Errorf("harness: netmedic: %w", err)
	}
	out[SchemeNetMedic] = netmedic.RankedIDs(nm)

	// Sage: DAG-only view of the same telemetry.
	out[SchemeSage] = sageRanking(db, sc, cfg, candidates)
	return out, nil
}

// sageRanking trains Sage on the scenario's call DAG and ranks the
// candidates; see dagRanking for the unusable-environment semantics.
func sageRanking(db *telemetry.DB, sc *microsim.Scenario, cfg core.Config, candidates []telemetry.EntityID) []telemetry.EntityID {
	return dagRanking(db, sc.CallDAG, sc.Symptom, cfg.TrainWindow, candidates)
}

// fmtCurve renders a K→accuracy curve as "K=1:0.75 K=5:0.86 ...".
func fmtCurve(curve map[int]float64) string {
	ks := make([]int, 0, len(curve))
	for k := range curve {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	parts := make([]string, 0, len(ks))
	for _, k := range ks {
		parts = append(parts, fmt.Sprintf("K=%d:%.2f", k, curve[k]))
	}
	return strings.Join(parts, " ")
}
