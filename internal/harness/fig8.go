package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"murphy/internal/core"
	"murphy/internal/enterprise"
	"murphy/internal/graph"
	"murphy/internal/regress"
	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// Fig8aOptions parameterizes the metric-prediction model comparison
// (§6.6.1): one model per entity metric, trained on the first part of the
// window and scored by MASE on the held-out tail, across a large multi-app
// metrics dataset.
type Fig8aOptions struct {
	// Gen sizes the metrics dataset (the paper uses ~17K entities across
	// 300 apps; the generator scales to that with Apps/Hosts large).
	Gen enterprise.GenOptions
	// HoldoutFrac is the tail fraction scored as test data.
	HoldoutFrac float64
	// MaxEntities caps the evaluated entities (0 = all).
	MaxEntities int
	// Seeds for the stochastic models.
	Seed int64
}

// DefaultFig8aOptions returns a dataset that exercises every entity type.
func DefaultFig8aOptions() Fig8aOptions {
	gen := enterprise.DefaultGenOptions()
	gen.Apps = 10
	gen.Hosts = 8
	gen.Steps = 300
	return Fig8aOptions{Gen: gen, HoldoutFrac: 0.25, Seed: 1}
}

// Fig8aModels is the comparison order of Fig 8a.
var Fig8aModels = []string{"linear regression", "SVM", "GMM", "neural network"}

// Fig8aResult carries the per-model MASE samples across entities.
type Fig8aResult struct {
	Opts Fig8aOptions
	// MASE[model] is the per-entity error sample (one value per entity:
	// the mean MASE across its metrics).
	MASE map[string][]float64
	// Entities is how many entities were scored.
	Entities int
}

// RunFig8a trains each candidate model per entity metric on neighbor metrics
// and scores held-out prediction error.
func RunFig8a(opts Fig8aOptions) (*Fig8aResult, error) {
	env, err := enterprise.Generate(opts.Gen)
	if err != nil {
		return nil, err
	}
	if err := env.Run(); err != nil {
		return nil, err
	}
	db := env.DB
	g, err := graph.Build(db, db.Entities()[:1], -1)
	if err != nil {
		return nil, err
	}
	split := int(float64(db.Len()) * (1 - opts.HoldoutFrac))
	if split < 8 || split >= db.Len() {
		return nil, fmt.Errorf("harness: bad holdout split %d of %d", split, db.Len())
	}
	trainers := map[string]regress.Trainer{
		"linear regression": regress.RidgeTrainer(1.0),
		"SVM":               regress.SVRTrainer(opts.Seed),
		"GMM":               regress.GMMTrainer(3, opts.Seed),
		"neural network":    regress.MLPTrainer(5, opts.Seed),
	}
	res := &Fig8aResult{Opts: opts, MASE: map[string][]float64{}}
	ids := g.IDs()
	for _, id := range ids {
		if opts.MaxEntities > 0 && res.Entities >= opts.MaxEntities {
			break
		}
		metrics := db.MetricNames(id)
		if len(metrics) == 0 {
			continue
		}
		// Collect neighbor feature refs once per entity.
		type ref struct {
			id telemetry.EntityID
			m  string
		}
		var feats []ref
		for _, nb := range g.InIDs(id) {
			for _, nm := range db.MetricNames(nb) {
				feats = append(feats, ref{nb, nm})
			}
		}
		if len(feats) == 0 {
			continue
		}
		perModel := map[string][]float64{}
		for _, metric := range metrics {
			y := db.Window(id, metric, 0, db.Len())
			// Select top-10 features by training-window correlation, as
			// Murphy's factors do.
			type scored struct {
				r ref
				c float64
			}
			rank := make([]scored, 0, len(feats))
			for _, fr := range feats {
				w := db.Window(fr.id, fr.m, 0, split)
				rank = append(rank, scored{fr, stats.AbsPearson(w, y[:split])})
			}
			sort.Slice(rank, func(i, j int) bool {
				if rank[i].c != rank[j].c {
					return rank[i].c > rank[j].c
				}
				if rank[i].r.id != rank[j].r.id {
					return rank[i].r.id < rank[j].r.id
				}
				return rank[i].r.m < rank[j].r.m
			})
			b := 10
			if b > len(rank) {
				b = len(rank)
			}
			sel := rank[:b]
			x := make([][]float64, db.Len())
			for t := 0; t < db.Len(); t++ {
				row := make([]float64, len(sel))
				for j, s := range sel {
					row[j] = db.At(s.r.id, s.r.m, t)
				}
				x[t] = row
			}
			for name, tr := range trainers {
				model := tr()
				if err := model.Fit(x[:split], y[:split]); err != nil {
					continue
				}
				pred := make([]float64, db.Len()-split)
				for t := split; t < db.Len(); t++ {
					pred[t-split] = model.Predict(x[t])
				}
				m, err := stats.MASE(pred, y[split:], y[:split])
				if err != nil || math.IsInf(m, 0) || math.IsNaN(m) {
					continue
				}
				perModel[name] = append(perModel[name], m)
			}
		}
		counted := false
		for name, ms := range perModel {
			if len(ms) == 0 {
				continue
			}
			res.MASE[name] = append(res.MASE[name], stats.Mean(ms))
			counted = true
		}
		if counted {
			res.Entities++
		}
	}
	return res, nil
}

// MedianMASE returns each model's median per-entity error.
func (r *Fig8aResult) MedianMASE() map[string]float64 {
	out := map[string]float64{}
	for name, ms := range r.MASE {
		out[name] = stats.Median(ms)
	}
	return out
}

// String prints the CDF summary (quartiles) per model.
func (r *Fig8aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8a — metric prediction error (MASE) across %d entities\n", r.Entities)
	for _, name := range Fig8aModels {
		ms := r.MASE[name]
		if len(ms) == 0 {
			fmt.Fprintf(&b, "  %-18s (no data)\n", name)
			continue
		}
		e := stats.NewECDF(ms)
		fmt.Fprintf(&b, "  %-18s p25 %.3f  median %.3f  p75 %.3f  p95 %.3f\n",
			name, e.Quantile(0.25), e.Quantile(0.5), e.Quantile(0.75), e.Quantile(0.95))
	}
	return b.String()
}

// Fig8bOptions parameterizes the cyclic-effects experiment (§6.6.2 and
// Appendix A.2): predict a backend SQL server's metrics after perturbing the
// application's flows to their values at another time point, for varying
// Gibbs rounds.
type Fig8bOptions struct {
	// Gen sizes the environment; each app supplies scenarios.
	Gen enterprise.GenOptions
	// ScenariosPerApp is how many (t1, t2) pairs are tested per app.
	ScenariosPerApp int
	// Rounds are the Gibbs-round counts on the x axis.
	Rounds []int
	// Delta and Epsilon are the (Δ, ε)-closeness criteria.
	Delta, Epsilon float64
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
}

// DefaultFig8bOptions mirrors the appendix: 24 apps, rounds 1/2/4/8,
// multiplicative-or-small-additive closeness.
func DefaultFig8bOptions() Fig8bOptions {
	gen := enterprise.DefaultGenOptions()
	gen.Apps = 24
	gen.Hosts = 12
	gen.Steps = 300
	return Fig8bOptions{
		Gen: gen, ScenariosPerApp: 32, Rounds: []int{1, 2, 4, 8},
		Delta: 1.5, Epsilon: 0.15, Samples: 200, TrainWindow: 280,
	}
}

// Fig8bResult carries correctly-predicted scenario counts per round count.
type Fig8bResult struct {
	Opts Fig8bOptions
	// Correct[w] is the number of correctly predicted scenarios with w
	// Gibbs rounds.
	Correct map[int]int
	// Total is the number of scenarios evaluated.
	Total int
}

// RunFig8b runs the Appendix A.2 protocol on the enterprise metrics dataset.
func RunFig8b(opts Fig8bOptions) (*Fig8bResult, error) {
	env, err := enterprise.Generate(opts.Gen)
	if err != nil {
		return nil, err
	}
	if err := env.Run(); err != nil {
		return nil, err
	}
	db := env.DB
	res := &Fig8bResult{Opts: opts, Correct: map[int]int{}}
	cfg := murphyConfig(opts.Samples, opts.TrainWindow)
	for appIx, appName := range env.AppNames() {
		// Relationship graph around the app.
		g, err := graph.Build(db, db.AppMembers(appName), 3)
		if err != nil {
			return nil, err
		}
		model, err := core.Train(db, g, cfg)
		if err != nil {
			return nil, err
		}
		q := env.DBVM(appIx) // the backend SQL server
		qSeries := db.Window(q, telemetry.MetricCPU, 0, db.Len())
		maxSeen := stats.Max(qSeries)
		// Appendix A.2: among the flows that send requests to the app's
		// front-end, pick the top-5 by correlation with Q.
		flows := env.FrontendFlows(appIx)
		sort.Slice(flows, func(i, j int) bool {
			ci := stats.AbsPearson(db.Window(flows[i], telemetry.MetricThroughput, 0, db.Len()), qSeries)
			cj := stats.AbsPearson(db.Window(flows[j], telemetry.MetricThroughput, 0, db.Len()), qSeries)
			if ci != cj {
				return ci > cj
			}
			return flows[i] < flows[j]
		})
		if len(flows) > 5 {
			flows = flows[:5]
		}
		for s := 0; s < opts.ScenariosPerApp; s++ {
			// Pick t1 (the diagnosis slice context is "current": use the
			// trained model's now) and t2 with significantly different Q
			// metrics: stride through the timeline.
			t2 := (s*17 + 31) % (db.Len() - 1)
			actual := db.At(q, telemetry.MetricCPU, t2)
			cur := model.CurrentValue(q, telemetry.MetricCPU)
			if math.Abs(actual-cur) < 1e-6 {
				continue
			}
			// Override the selected flows' metrics with their t2 values.
			overrides := map[telemetry.EntityID]map[string]float64{}
			for _, flow := range flows {
				overrides[flow] = map[string]float64{
					telemetry.MetricThroughput: db.At(flow, telemetry.MetricThroughput, t2),
					telemetry.MetricSessions:   db.At(flow, telemetry.MetricSessions, t2),
					telemetry.MetricRTT:        db.At(flow, telemetry.MetricRTT, t2),
				}
			}
			res.Total++
			for _, w := range opts.Rounds {
				pred, ok := model.PredictUnderIntervention(overrides, q, telemetry.MetricCPU, w)
				if !ok {
					continue
				}
				// (Δ, ε)-criteria on the predicted *change*: multiplicative
				// band Δ or additive band ε·maxSeen.
				dPred := pred - cur
				dTrue := actual - cur
				okMul := dTrue != 0 && dPred/dTrue > 1/opts.Delta && dPred/dTrue < opts.Delta
				okAdd := math.Abs(dPred-dTrue) < opts.Epsilon*maxSeen
				if okMul || okAdd {
					res.Correct[w]++
				}
			}
		}
	}
	return res, nil
}

// String prints the Fig 8b series.
func (r *Fig8bResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8b — cyclic effects: correctly predicted scenarios (of %d) vs Gibbs rounds\n", r.Total)
	for _, w := range r.Opts.Rounds {
		fmt.Fprintf(&b, "  W=%d: %d\n", w, r.Correct[w])
	}
	return b.String()
}
