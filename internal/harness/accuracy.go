package harness

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"murphy/internal/metamorph"
	"murphy/internal/telemetry"
)

// FamilyAccuracy is the accuracy of one fuzzed scenario family.
type FamilyAccuracy struct {
	// Cases is how many fuzzed cases were diagnosed.
	Cases int `json:"cases"`
	// Precision is the mean reciprocal rank of the first acceptable entity
	// in the certified ranking (1.0 = always ranked first, 0 = never found).
	Precision float64 `json:"precision"`
	// Top1/Top3/Top5 are the fractions of cases with an acceptable entity
	// in the top k of the certified ranking (top-k recall, §6.1).
	Top1 float64 `json:"top1"`
	Top3 float64 `json:"top3"`
	Top5 float64 `json:"top5"`
}

// observe accumulates one case's ranking into the tally: rank credit is the
// reciprocal rank of the first acceptable entity, top-k counters tick when it
// sits within k. Call finish once every case of the family is in.
func (a *FamilyAccuracy) observe(ranked []telemetry.EntityID, accept map[telemetry.EntityID]bool) {
	a.Cases++
	rank := 0 // 1-based rank of the first acceptable entity
	for k, id := range ranked {
		if accept[id] {
			rank = k + 1
			break
		}
	}
	if rank == 0 {
		return
	}
	a.Precision += 1 / float64(rank)
	if rank <= 1 {
		a.Top1++
	}
	if rank <= 3 {
		a.Top3++
	}
	if rank <= 5 {
		a.Top5++
	}
}

// finish converts the accumulated tallies into per-case means.
func (a *FamilyAccuracy) finish() {
	if a.Cases == 0 {
		return
	}
	n := float64(a.Cases)
	a.Precision /= n
	a.Top1 /= n
	a.Top3 /= n
	a.Top5 /= n
}

// AccuracyResult is the diagnosis accuracy over the fuzzed scenario suite:
// the numbers cmd/accguard pins in CI.
type AccuracyResult struct {
	// Seed is the base seed the suite expanded from.
	Seed int64 `json:"seed"`
	// CasesPerFamily is the suite size knob.
	CasesPerFamily int `json:"cases_per_family"`
	// Families maps family name to its accuracy.
	Families map[string]FamilyAccuracy `json:"families"`
}

// RunAccuracy diagnoses casesPerFamily fuzzed scenarios of every metamorph
// family with the reference configuration and scores the certified rankings
// against each case's relaxed accept set.
func RunAccuracy(seed int64, casesPerFamily int) (*AccuracyResult, error) {
	if casesPerFamily <= 0 {
		return nil, fmt.Errorf("harness: casesPerFamily must be positive")
	}
	out := &AccuracyResult{Seed: seed, CasesPerFamily: casesPerFamily, Families: make(map[string]FamilyAccuracy, len(metamorph.Families))}
	for _, fam := range metamorph.Families {
		var acc FamilyAccuracy
		for i := 0; i < casesPerFamily; i++ {
			c, err := metamorph.Generate(fam, i, seed)
			if err != nil {
				return nil, fmt.Errorf("harness: %w", err)
			}
			diag, err := metamorph.Diagnose(c, metamorph.Options{})
			if err != nil {
				return nil, fmt.Errorf("harness: %s[%d] seed=%d: %w", fam, i, c.Seed, err)
			}
			acc.observe(diag.Ranked(), c.Accept)
		}
		acc.finish()
		out.Families[fam] = acc
	}
	return out, nil
}

// String renders the accuracy table (one row per family, fixed order).
func (r *AccuracyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Diagnosis accuracy on the fuzzed scenario suite (seed=%d, %d cases/family)\n", r.Seed, r.CasesPerFamily)
	fmt.Fprintf(&b, "%-15s %8s %8s %8s %8s\n", "family", "prec", "top1", "top3", "top5")
	for _, fam := range familyOrder(r.Families) {
		acc := r.Families[fam]
		fmt.Fprintf(&b, "%-15s %8.3f %8.3f %8.3f %8.3f\n", fam, acc.Precision, acc.Top1, acc.Top3, acc.Top5)
	}
	return b.String()
}

// MarshalIndent renders the result as pretty JSON (the acc_baseline.json /
// acc_report.json wire format).
func (r *AccuracyResult) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseAccuracy parses an accuracy JSON file written by MarshalIndent.
func ParseAccuracy(data []byte) (*AccuracyResult, error) {
	var r AccuracyResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse accuracy JSON: %w", err)
	}
	if r.Families == nil {
		return nil, fmt.Errorf("parse accuracy JSON: no families recorded")
	}
	return &r, nil
}

// familyOrder returns metamorph's fixed family order, with any extra keys
// (a baseline written by a newer suite) appended alphabetically.
func familyOrder(m map[string]FamilyAccuracy) []string {
	seen := map[string]bool{}
	var out []string
	for _, fam := range metamorph.Families {
		if _, ok := m[fam]; ok {
			out = append(out, fam)
			seen[fam] = true
		}
	}
	var extra []string
	for fam := range m {
		if !seen[fam] {
			extra = append(extra, fam)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
