package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"murphy/internal/core"
	"murphy/internal/explainit"
	"murphy/internal/graph"
	"murphy/internal/metamorph"
	"murphy/internal/netmedic"
	"murphy/internal/regress"
	"murphy/internal/sage"
	"murphy/internal/telemetry"
)

// CaseEnv is the shared evaluation environment for one fuzzed metamorph
// case: every scheme diagnoses the same telemetry through the same pruned
// candidate search space (§4.2), so accuracy differences measure the methods,
// not their inputs. The Murphy model and diagnosis are built exactly as
// metamorph.Diagnose's reference path does, which keeps the Murphy rows of
// the comparative table bit-identical to RunAccuracy's.
type CaseEnv struct {
	// Case is the fuzzed scenario under diagnosis.
	Case *metamorph.Case
	// Graph is the relationship graph grown from the symptom entity.
	Graph *graph.Graph
	// Model is the trained Murphy model (reference configuration).
	Model *core.Model
	// Diag is Murphy's diagnosis of the case's symptom.
	Diag *core.Diagnosis
	// Candidates is the pruned candidate search space every scheme ranks.
	Candidates []telemetry.EntityID
}

// NewCaseEnv trains Murphy on the case with the metamorph reference
// configuration and captures the candidate space all baselines share.
func NewCaseEnv(c *metamorph.Case) (*CaseEnv, error) {
	g, err := graph.Build(c.DB, []telemetry.EntityID{c.Symptom.Entity}, -1)
	if err != nil {
		return nil, fmt.Errorf("build graph: %w", err)
	}
	model, err := core.TrainOpt(context.Background(), c.DB, g, metamorph.BaseConfig(), core.TrainOpts{Now: -1})
	if err != nil {
		return nil, fmt.Errorf("train murphy: %w", err)
	}
	diag, err := model.Diagnose(c.Symptom)
	if err != nil {
		return nil, fmt.Errorf("murphy diagnose: %w", err)
	}
	return &CaseEnv{Case: c, Graph: g, Model: model, Diag: diag, Candidates: diag.Candidates}, nil
}

// Diagnoser adapts one root-cause analysis method to the comparative
// harness: given a case environment, produce a ranked root-cause list. An
// empty ranking is a valid answer ("cannot diagnose"), scored as a miss.
type Diagnoser interface {
	// Name is the scheme name used in result rows (one of Schemes).
	Name() string
	// Diagnose ranks root causes for the environment's symptom.
	Diagnose(env *CaseEnv) ([]telemetry.EntityID, error)
}

// Diagnosers returns all four methods in the fixed Schemes order.
func Diagnosers() []Diagnoser {
	return []Diagnoser{murphyDiagnoser{}, sageDiagnoser{}, netmedicDiagnoser{}, explainitDiagnoser{}}
}

type murphyDiagnoser struct{}

func (murphyDiagnoser) Name() string { return SchemeMurphy }

func (murphyDiagnoser) Diagnose(env *CaseEnv) ([]telemetry.EntityID, error) {
	return env.Diag.Ranked(), nil
}

type netmedicDiagnoser struct{}

func (netmedicDiagnoser) Name() string { return SchemeNetMedic }

func (netmedicDiagnoser) Diagnose(env *CaseEnv) ([]telemetry.EntityID, error) {
	cfg := netmedic.DefaultConfig()
	cfg.Window = metamorph.BaseConfig().TrainWindow
	nm, err := netmedic.Diagnose(env.Case.DB, env.Graph, env.Case.Symptom, env.Candidates, cfg)
	if err != nil {
		return nil, err
	}
	return netmedic.RankedIDs(nm), nil
}

type explainitDiagnoser struct{}

func (explainitDiagnoser) Name() string { return SchemeExplainIt }

func (explainitDiagnoser) Diagnose(env *CaseEnv) ([]telemetry.EntityID, error) {
	cfg := explainit.DefaultConfig()
	cfg.Window = metamorph.BaseConfig().TrainWindow
	ei, err := explainit.Diagnose(env.Case.DB, env.Case.Symptom, env.Candidates, cfg)
	if err != nil {
		return nil, err
	}
	return explainit.RankedIDs(ei), nil
}

type sageDiagnoser struct{}

func (sageDiagnoser) Name() string { return SchemeSage }

func (sageDiagnoser) Diagnose(env *CaseEnv) ([]telemetry.EntityID, error) {
	return dagRanking(env.Case.DB, env.Case.CallDAG, env.Case.Symptom, metamorph.BaseConfig().TrainWindow, env.Candidates), nil
}

// dagRanking trains Sage on a causal call DAG over the telemetry and ranks
// the candidates. An unusable environment — no DAG, cyclic DAG, or a symptom
// the DAG cannot reach — yields an empty ranking, mirroring §6.1/§6.2 where
// Sage structurally cannot produce the root cause. The BFS seed is the
// smallest entity in the DAG so the result is independent of the edge list's
// order.
func dagRanking(db *telemetry.DB, callDAG [][2]telemetry.EntityID, symptom telemetry.Symptom, window int, candidates []telemetry.EntityID) []telemetry.EntityID {
	if len(callDAG) == 0 {
		return nil
	}
	dagDB := db.Clone()
	dagDB.RemoveAllEdges()
	seed := callDAG[0][0]
	for _, e := range callDAG {
		if err := dagDB.Associate(e[0], e[1], telemetry.Directed); err != nil {
			return nil
		}
		if e[0] < seed {
			seed = e[0]
		}
		if e[1] < seed {
			seed = e[1]
		}
	}
	g, err := graph.Build(dagDB, []telemetry.EntityID{seed}, -1)
	if err != nil || !g.Contains(symptom.Entity) {
		return nil
	}
	sCfg := sage.DefaultConfig()
	sCfg.Window = window
	m, err := sage.Train(dagDB, g, sCfg)
	if err != nil {
		return nil
	}
	ranked, err := m.Diagnose(symptom, candidates)
	if err != nil {
		return nil
	}
	return sage.RankedIDs(ranked)
}

// BaselinesResult is the comparative accuracy of every method over the
// fuzzed scenario suite: the per-method numbers cmd/accguard pins in CI
// (Murphy gated, baselines tracked).
type BaselinesResult struct {
	// Seed is the base seed the suite expanded from.
	Seed int64 `json:"seed"`
	// CasesPerFamily is the suite size knob.
	CasesPerFamily int `json:"cases_per_family"`
	// Methods maps scheme name → family name → accuracy.
	Methods map[string]map[string]FamilyAccuracy `json:"methods"`
}

// RunBaselines diagnoses casesPerFamily fuzzed scenarios of every metamorph
// family with all four methods and scores each certified ranking against the
// same relaxed accept sets. The Murphy column equals RunAccuracy's output
// for the same (seed, casesPerFamily).
func RunBaselines(seed int64, casesPerFamily int) (*BaselinesResult, error) {
	if casesPerFamily <= 0 {
		return nil, fmt.Errorf("harness: casesPerFamily must be positive")
	}
	ds := Diagnosers()
	out := &BaselinesResult{Seed: seed, CasesPerFamily: casesPerFamily, Methods: make(map[string]map[string]FamilyAccuracy, len(ds))}
	for _, d := range ds {
		out.Methods[d.Name()] = make(map[string]FamilyAccuracy, len(metamorph.Families))
	}
	for _, fam := range metamorph.Families {
		tallies := make(map[string]*FamilyAccuracy, len(ds))
		for _, d := range ds {
			tallies[d.Name()] = &FamilyAccuracy{}
		}
		for i := 0; i < casesPerFamily; i++ {
			c, err := metamorph.Generate(fam, i, seed)
			if err != nil {
				return nil, fmt.Errorf("harness: %w", err)
			}
			env, err := NewCaseEnv(c)
			if err != nil {
				return nil, fmt.Errorf("harness: %s[%d] seed=%d: %w", fam, i, c.Seed, err)
			}
			for _, d := range ds {
				ranked, err := d.Diagnose(env)
				if err != nil {
					return nil, fmt.Errorf("harness: %s on %s[%d] seed=%d: %w", d.Name(), fam, i, c.Seed, err)
				}
				tallies[d.Name()].observe(ranked, c.Accept)
			}
		}
		for name, t := range tallies {
			t.finish()
			out.Methods[name][fam] = *t
		}
	}
	return out, nil
}

// String renders the comparative table: one block per family, one row per
// method in the fixed Schemes order.
func (r *BaselinesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Comparative accuracy on the fuzzed scenario suite (seed=%d, %d cases/family)\n", r.Seed, r.CasesPerFamily)
	fmt.Fprintf(&b, "%-15s %-10s %8s %8s %8s %8s\n", "family", "method", "prec", "top1", "top3", "top5")
	for _, fam := range familyOrder(r.Methods[SchemeMurphy]) {
		for _, scheme := range Schemes {
			acc, ok := r.Methods[scheme][fam]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-15s %-10s %8.3f %8.3f %8.3f %8.3f\n", fam, scheme, acc.Precision, acc.Top1, acc.Top3, acc.Top5)
		}
	}
	return b.String()
}

// MarshalIndent renders the result as pretty JSON (the acc_baseline.json /
// acc_report.json wire format since the comparative schema).
func (r *BaselinesResult) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseBaselines parses a comparative accuracy JSON file. Legacy Murphy-only
// files (the pre-comparative `families` shape) are upgraded in place: their
// numbers become the Murphy method, other methods absent.
func ParseBaselines(data []byte) (*BaselinesResult, error) {
	var r BaselinesResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse baselines JSON: %w", err)
	}
	if len(r.Methods) == 0 {
		legacy, err := ParseAccuracy(data)
		if err != nil {
			return nil, fmt.Errorf("parse baselines JSON: no methods recorded and not a legacy accuracy file")
		}
		r.Seed = legacy.Seed
		r.CasesPerFamily = legacy.CasesPerFamily
		r.Methods = map[string]map[string]FamilyAccuracy{SchemeMurphy: legacy.Families}
	}
	if len(r.Methods[SchemeMurphy]) == 0 {
		return nil, fmt.Errorf("parse baselines JSON: no Murphy rows recorded")
	}
	return &r, nil
}

// SweepRegressors is the Fig 8a comparison order: the factor regression
// model swapped into Murphy's training path.
var SweepRegressors = []string{"ridge", "OLS", "GMM", "MLP", "SVR"}

// RegressorSweepResult is the end-to-end Fig 8a sweep: Murphy's diagnosis
// accuracy with each candidate factor regressor, over the same fuzzed suite.
type RegressorSweepResult struct {
	// Seed is the base seed the suite expanded from.
	Seed int64 `json:"seed"`
	// CasesPerFamily is the suite size knob.
	CasesPerFamily int `json:"cases_per_family"`
	// Regressors maps regressor name → family name → accuracy.
	Regressors map[string]map[string]FamilyAccuracy `json:"regressors"`
}

// RunRegressorSweep reproduces Fig 8a end to end: instead of scoring held-out
// MASE, each candidate regressor is swapped into Murphy's training path via
// core.TrainOpts.Trainer and the full pipeline diagnoses the fuzzed suite.
// A regressor whose training fails on a case (e.g. a degenerate GMM fit)
// scores that case as a miss rather than aborting the sweep.
func RunRegressorSweep(seed int64, casesPerFamily int) (*RegressorSweepResult, error) {
	if casesPerFamily <= 0 {
		return nil, fmt.Errorf("harness: casesPerFamily must be positive")
	}
	trainers := map[string]regress.Trainer{
		"ridge": nil, // nil selects the default path: ridge with cfg.Lambda
		"OLS":   regress.OLSTrainer(),
		"GMM":   regress.GMMTrainer(3, seed),
		"MLP":   regress.MLPTrainer(5, seed),
		"SVR":   regress.SVRTrainer(seed),
	}
	out := &RegressorSweepResult{Seed: seed, CasesPerFamily: casesPerFamily, Regressors: make(map[string]map[string]FamilyAccuracy, len(SweepRegressors))}
	for _, name := range SweepRegressors {
		out.Regressors[name] = make(map[string]FamilyAccuracy, len(metamorph.Families))
	}
	for _, fam := range metamorph.Families {
		tallies := make(map[string]*FamilyAccuracy, len(SweepRegressors))
		for _, name := range SweepRegressors {
			tallies[name] = &FamilyAccuracy{}
		}
		for i := 0; i < casesPerFamily; i++ {
			c, err := metamorph.Generate(fam, i, seed)
			if err != nil {
				return nil, fmt.Errorf("harness: %w", err)
			}
			g, err := graph.Build(c.DB, []telemetry.EntityID{c.Symptom.Entity}, -1)
			if err != nil {
				return nil, fmt.Errorf("harness: %s[%d] seed=%d: build graph: %w", fam, i, c.Seed, err)
			}
			for _, name := range SweepRegressors {
				ranked := regressorRanking(c, g, trainers[name])
				tallies[name].observe(ranked, c.Accept)
			}
		}
		for name, t := range tallies {
			t.finish()
			out.Regressors[name][fam] = *t
		}
	}
	return out, nil
}

// regressorRanking diagnoses one case with the given factor trainer swapped
// into Murphy's training path; any failure yields an empty ranking (a miss).
func regressorRanking(c *metamorph.Case, g *graph.Graph, tr regress.Trainer) []telemetry.EntityID {
	model, err := core.TrainOpt(context.Background(), c.DB, g, metamorph.BaseConfig(), core.TrainOpts{Now: -1, Trainer: tr})
	if err != nil {
		return nil
	}
	diag, err := model.Diagnose(c.Symptom)
	if err != nil {
		return nil
	}
	return diag.Ranked()
}

// String renders the sweep as a precision grid (regressor × family) plus the
// across-family mean, the end-to-end analogue of Fig 8a's MASE CDF.
func (r *RegressorSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8a end-to-end — Murphy accuracy by factor regressor (seed=%d, %d cases/family)\n", r.Seed, r.CasesPerFamily)
	fams := familyOrder(r.Regressors["ridge"])
	fmt.Fprintf(&b, "%-10s", "regressor")
	for _, fam := range fams {
		fmt.Fprintf(&b, " %13s", fam)
	}
	fmt.Fprintf(&b, " %8s\n", "mean")
	for _, name := range SweepRegressors {
		rows, ok := r.Regressors[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-10s", name)
		sum := 0.0
		for _, fam := range fams {
			acc := rows[fam]
			sum += acc.Precision
			fmt.Fprintf(&b, " %13.3f", acc.Precision)
		}
		mean := 0.0
		if len(fams) > 0 {
			mean = sum / float64(len(fams))
		}
		fmt.Fprintf(&b, " %8.3f\n", mean)
	}
	return b.String()
}
