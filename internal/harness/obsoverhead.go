package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"murphy/internal/core"
	"murphy/internal/graph"
	"murphy/internal/microsim"
	"murphy/internal/obs"
	"murphy/internal/telemetry"
)

// ObsOverheadOptions parameterizes the instrumentation-overhead A/B: the
// Table-2 contention workload diagnosed with the obs layer disabled versus
// enabled, same seeds and configuration.
type ObsOverheadOptions struct {
	// Scenarios is the number of contention incidents.
	Scenarios int
	// Steps is the emulation length per scenario.
	Steps int
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
	// Rounds is how many times each incident is diagnosed per arm.
	Rounds int
	// Seed drives scenario generation.
	Seed int64
}

// DefaultObsOverheadOptions returns the configuration the overhead numbers
// in EXPERIMENTS.md are stated against.
func DefaultObsOverheadOptions() ObsOverheadOptions {
	return ObsOverheadOptions{Scenarios: 3, Steps: 300, Samples: 2000, TrainWindow: 280, Rounds: 3, Seed: 1}
}

// ObsOverheadResult carries the A/B timings and the enabled run's snapshot.
type ObsOverheadResult struct {
	Opts ObsOverheadOptions
	// Diagnoses is Scenarios * Rounds (per arm).
	Diagnoses int
	// OffTime / OnTime are total train+diagnose wall times with the
	// instrumentation layer disabled / enabled.
	OffTime, OnTime time.Duration
	// DeltaPct is (OnTime-OffTime)/OffTime in percent (negative when the
	// enabled run happened to be faster — the true overhead is within
	// measurement noise).
	DeltaPct float64
	// Stats is the enabled arm's accumulated instrumentation, whose
	// breakdown table String renders.
	Stats obs.Snapshot
}

// RunObsOverhead measures what the obs layer costs when enabled, and shows
// the per-stage breakdown it buys. The disabled arm exercises the same
// instrumented code paths with a disabled recorder — the production
// configuration whose overhead the ≤2% budget bounds.
func RunObsOverhead(opts ObsOverheadOptions) (*ObsOverheadResult, error) {
	if opts.Scenarios <= 0 || opts.Rounds <= 0 {
		return nil, fmt.Errorf("harness: need at least one scenario and round")
	}
	cfg := murphyConfig(opts.Samples, opts.TrainWindow)
	res := &ObsOverheadResult{Opts: opts}
	rec := obs.New()
	kinds := []microsim.FaultKind{microsim.FaultCPU, microsim.FaultMem, microsim.FaultDisk}
	for v := 0; v < opts.Scenarios; v++ {
		sc, err := microsim.Contention(microsim.ContentionOptions{
			Topo: "hotel", Steps: opts.Steps, PriorIncidents: 4,
			Kind: kinds[v%len(kinds)], Intensity: 0.5, Seed: opts.Seed + int64(v),
		})
		if err != nil {
			return nil, err
		}
		db := sc.Result.DB
		g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
		if err != nil {
			return nil, err
		}
		run := func() (time.Duration, error) {
			t0 := time.Now()
			for r := 0; r < opts.Rounds; r++ {
				model, err := core.TrainOpt(context.Background(), db, g, cfg, core.TrainOpts{Now: -1, Obs: rec})
				if err != nil {
					return 0, err
				}
				if _, err := model.Diagnose(sc.Symptom); err != nil {
					return 0, err
				}
			}
			return time.Since(t0), nil
		}
		// Interleave the arms per scenario so thermal/cache drift hits both.
		rec.Disable()
		dt, err := run()
		if err != nil {
			return nil, err
		}
		res.OffTime += dt
		rec.Enable()
		dt, err = run()
		if err != nil {
			return nil, err
		}
		res.OnTime += dt
		res.Diagnoses += opts.Rounds
	}
	if res.OffTime > 0 {
		res.DeltaPct = 100 * float64(res.OnTime-res.OffTime) / float64(res.OffTime)
	}
	res.Stats = rec.Snapshot()
	return res, nil
}

// String prints the overhead A/B and the stage breakdown the enabled layer
// produced.
func (r *ObsOverheadResult) String() string {
	var b strings.Builder
	b.WriteString("observability overhead — obs layer disabled vs enabled\n")
	fmt.Fprintf(&b, "  workload: %d contention scenarios × %d diagnoses, %d samples\n",
		r.Opts.Scenarios, r.Opts.Rounds, r.Opts.Samples)
	fmt.Fprintf(&b, "  %-28s %12s\n", "instrumentation disabled", r.OffTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-28s %12s\n", "instrumentation enabled", r.OnTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  delta %+.1f%%\n", r.DeltaPct)
	b.WriteString("  stage breakdown (enabled arm):\n")
	b.WriteString(r.Stats.Table())
	return b.String()
}
