package harness

import (
	"strings"
	"testing"
)

// The harness tests run each experiment at reduced scale (same code path as
// the full runs) and assert the paper's qualitative shape, not absolute
// numbers.

func TestFig5Shape(t *testing.T) {
	opts := DefaultFig5Options()
	opts.Variants = 6
	opts.Samples = 200
	res, err := RunFig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	// Murphy finds the interference root cause; Sage structurally cannot.
	if res.Recall[SchemeMurphy] < 0.6 {
		t.Fatalf("Murphy top-5 recall = %v, want high", res.Recall[SchemeMurphy])
	}
	if res.TopK[SchemeSage][10] != 0 {
		t.Fatalf("Sage must score 0 (root cause outside its model), got %v", res.TopK[SchemeSage][10])
	}
	if res.Recall[SchemeMurphy] <= res.Recall[SchemeNetMedic] {
		t.Fatalf("Murphy (%v) should beat NetMedic (%v)", res.Recall[SchemeMurphy], res.Recall[SchemeNetMedic])
	}
	// Relaxed metrics are at least as high as strict ones.
	for _, s := range Schemes {
		if res.RelaxedRecall[s]+1e-9 < res.Recall[s] {
			t.Fatalf("%s: relaxed recall below strict", s)
		}
	}
	// Murphy should have perfect relaxed recall as in the paper.
	if res.RelaxedRecall[SchemeMurphy] < 0.9 {
		t.Fatalf("Murphy relaxed recall = %v, want ~1", res.RelaxedRecall[SchemeMurphy])
	}
	if !strings.Contains(res.String(), "Fig 5c") {
		t.Fatal("result should render")
	}
}

func TestFig6Shape(t *testing.T) {
	for _, topo := range []string{"hotel", "social"} {
		opts := DefaultFig6Options()
		opts.Topo = topo
		opts.Scenarios = 6
		opts.Samples = 200
		res, err := RunFig6(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Log("\n" + res.String())
		// DAG home turf: both Murphy and Sage should do well; Murphy at
		// least as well as the others on top-5.
		m := res.TopK[SchemeMurphy][5]
		if m < 0.5 {
			t.Fatalf("%s: Murphy top-5 = %v, want high", topo, m)
		}
		if m+1e-9 < res.TopK[SchemeNetMedic][5]-0.35 {
			t.Fatalf("%s: Murphy (%v) should not trail NetMedic (%v) badly", topo, m, res.TopK[SchemeNetMedic][5])
		}
		// Curves are monotone in K.
		for _, s := range Schemes {
			prev := -1.0
			for _, k := range opts.Ks {
				if res.TopK[s][k] < prev-1e-9 {
					t.Fatalf("%s: %s curve not monotone", topo, s)
				}
				prev = res.TopK[s][k]
			}
		}
	}
}

func TestFig6ErrorPaths(t *testing.T) {
	if _, err := RunFig6(Fig6Options{}); err == nil {
		t.Fatal("zero scenarios should error")
	}
	if _, err := RunFig5(Fig5Options{}); err == nil {
		t.Fatal("zero variants should error")
	}
	if _, err := RunTable2(Table2Options{}); err == nil {
		t.Fatal("zero scenarios should error")
	}
	if _, err := RunFig7(Fig7Options{}); err == nil {
		t.Fatal("zero scenarios should error")
	}
}

func TestTable1Shape(t *testing.T) {
	opts := DefaultTable1Options()
	opts.Gen.Steps = 240
	opts.Samples = 200
	res, err := RunTable1(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if len(res.Rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(res.Rows))
	}
	if res.SageApplicable {
		t.Fatal("Sage must be inapplicable on the cyclic enterprise input")
	}
	// The headline: Murphy produces far fewer FPs than both baselines at
	// comparable recall.
	if res.AvgFPs[SchemeMurphy] >= res.AvgFPs[SchemeNetMedic] {
		t.Fatalf("Murphy avg FPs %v should beat NetMedic %v", res.AvgFPs[SchemeMurphy], res.AvgFPs[SchemeNetMedic])
	}
	if res.AvgFPs[SchemeMurphy] >= res.AvgFPs[SchemeExplainIt] {
		t.Fatalf("Murphy avg FPs %v should beat ExplainIT %v", res.AvgFPs[SchemeMurphy], res.AvgFPs[SchemeExplainIt])
	}
	// Calibration incidents must be recalled by construction.
	for _, row := range res.Rows {
		if row.Index == 2 || row.Index == 7 {
			if row.Recall[SchemeMurphy] != 1 {
				t.Fatalf("incident %d: Murphy must recall its calibration case", row.Index)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	opts := DefaultTable2Options()
	opts.Scenarios = 5
	opts.Samples = 1000
	res, err := RunTable2(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	// The paper's claim: Murphy and Sage are fairly robust (6% / 10% loss);
	// assert a modest bounded drop rather than exact values.
	for _, s := range []string{SchemeMurphy, SchemeSage} {
		if res.Recall[s]["unchanged"] < 0.5 {
			t.Fatalf("%s unchanged recall = %v, want high", s, res.Recall[s]["unchanged"])
		}
		if res.Aggregate[s] < res.Recall[s]["unchanged"]-0.4 {
			t.Fatalf("%s aggregate %v dropped too far from unchanged %v", s, res.Aggregate[s], res.Recall[s]["unchanged"])
		}
	}
	if res.Aggregate[SchemeMurphy] < 0.5 {
		t.Fatalf("Murphy aggregate = %v, want robust", res.Aggregate[SchemeMurphy])
	}
}

func TestFig7Shape(t *testing.T) {
	opts := DefaultFig7Options()
	opts.Scenarios = 5
	opts.Samples = 200
	opts.NTrains = []int{128, 512}
	res, err := RunFig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	// Online training dominates offline — the paper's 90% vs 15% gap.
	if res.OnFreshData <= res.TrainedOffline {
		t.Fatalf("online (%v) must beat offline (%v)", res.OnFreshData, res.TrainedOffline)
	}
	if res.OnFreshData < 0.5 {
		t.Fatalf("online accuracy = %v, want high", res.OnFreshData)
	}
	if res.NoPriorIncidents < 0.4 {
		t.Fatalf("no-prior-incidents accuracy = %v, want decent", res.NoPriorIncidents)
	}
	// Longer training should not hurt much.
	if res.ByNTrain[512] < res.ByNTrain[128]-0.35 {
		t.Fatalf("ntrain=512 (%v) should not trail ntrain=128 (%v) badly", res.ByNTrain[512], res.ByNTrain[128])
	}
}

func TestFig8aShape(t *testing.T) {
	opts := DefaultFig8aOptions()
	opts.Gen.Apps = 4
	opts.Gen.Steps = 160
	opts.MaxEntities = 40
	res, err := RunFig8a(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if res.Entities < 20 {
		t.Fatalf("entities scored = %d, want plenty", res.Entities)
	}
	med := res.MedianMASE()
	// The headline of Fig 8a: ridge dominates the alternatives.
	if med["linear regression"] >= med["GMM"] {
		t.Fatalf("ridge median %v should beat GMM %v", med["linear regression"], med["GMM"])
	}
	if med["linear regression"] >= med["neural network"] {
		t.Fatalf("ridge median %v should beat NN %v", med["linear regression"], med["neural network"])
	}
	if med["linear regression"] >= med["SVM"]*2 {
		t.Fatalf("ridge median %v should be competitive with SVM %v", med["linear regression"], med["SVM"])
	}
}

func TestFig8bShape(t *testing.T) {
	opts := DefaultFig8bOptions()
	opts.Gen.Apps = 8
	opts.Gen.Hosts = 8
	opts.Gen.Steps = 200
	opts.ScenariosPerApp = 8
	opts.TrainWindow = 180
	res, err := RunFig8b(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if res.Total == 0 {
		t.Fatal("no scenarios evaluated")
	}
	// More Gibbs rounds should not reduce correct predictions and should
	// help at least somewhat from W=1 to W=8 (the cyclic-effects claim).
	if res.Correct[8] < res.Correct[1] {
		t.Fatalf("W=8 (%d) should not trail W=1 (%d)", res.Correct[8], res.Correct[1])
	}
	if res.Correct[4] == 0 {
		t.Fatal("W=4 should predict some scenarios correctly")
	}
}

func TestScalingAndSensitivity(t *testing.T) {
	sOpts := DefaultScalingOptions()
	sOpts.AppCounts = []int{2, 4}
	sRes, err := RunScaling(sOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + sRes.String())
	if len(sRes.Points) != 2 {
		t.Fatal("expected two scaling points")
	}
	if sRes.Points[1].Entities <= sRes.Points[0].Entities {
		t.Fatal("larger environment should have more entities")
	}
	for _, p := range sRes.Points {
		if p.TrainTime <= 0 || p.DiagTime <= 0 {
			t.Fatal("times must be measured")
		}
	}

	senOpts := DefaultSensitivityOptions()
	senOpts.Scenarios = 3
	senOpts.Samples = 150
	senOpts.Ws = []int{1, 4}
	senOpts.NTrains = []int{128, 256}
	senRes, err := RunSensitivity(senOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + senRes.String())
	if senRes.ByW[4].MeanTime < senRes.ByW[1].MeanTime {
		t.Log("note: W=4 measured faster than W=1 (timer noise at this scale)")
	}
	if senRes.ByW[4].Recall == 0 && senRes.ByW[1].Recall == 0 {
		t.Fatal("sensitivity sweep found nothing at any W")
	}
}

func TestCycleStats(t *testing.T) {
	gen := DefaultTable1Options().Gen
	gen.Steps = 160
	res, err := RunCycleStats(gen)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if res.Cycles2 < 50 {
		t.Fatalf("2-cycles = %d, want pervasive", res.Cycles2)
	}
	if res.Cycles3 < 10 {
		t.Fatalf("3-cycles = %d, want plenty", res.Cycles3)
	}
	if res.VMsCyclic != res.VMsTotal {
		t.Fatalf("every VM should be on a cycle: %d/%d", res.VMsCyclic, res.VMsTotal)
	}
}
