package harness

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"murphy/internal/core"
	"murphy/internal/graph"
	"murphy/internal/microsim"
	"murphy/internal/obs"
	"murphy/internal/telemetry"
)

// TrainScaleOptions parameterizes the parallel train-and-sample scaling
// experiment: end-to-end Diagnose wall time on the Table-2 contention
// workload across training/inference worker counts and Gibbs chain counts.
type TrainScaleOptions struct {
	// Scenarios is the number of contention incidents.
	Scenarios int
	// Steps is the emulation length per scenario.
	Steps int
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
	// Workers are the worker counts to sweep; each point runs the training
	// pool, the DiagnoseParallel fan-out, and GOMAXPROCS at that count.
	Workers []int
	// Chains are the Gibbs chain counts to sweep (at the largest worker
	// count): each counterfactual test's draws split across this many
	// independently seeded chains.
	Chains []int
	// Seed drives scenario generation.
	Seed int64
}

// DefaultTrainScaleOptions returns the sweep the EXPERIMENTS table reports:
// workers 1/2/4/8 and chains 1/2/4.
func DefaultTrainScaleOptions() TrainScaleOptions {
	return TrainScaleOptions{
		Scenarios: 2, Steps: 300, Samples: 2000, TrainWindow: 280,
		Workers: []int{1, 2, 4, 8}, Chains: []int{1, 2, 4}, Seed: 1,
	}
}

// TrainScalePoint is one measured (workers, chains) configuration, summed
// over all scenarios.
type TrainScalePoint struct {
	// Workers is the training-pool and candidate fan-out width; Chains is
	// the per-test Gibbs chain count.
	Workers, Chains int
	// TrainTime / DiagTime are total wall times across scenarios.
	TrainTime, DiagTime time.Duration
	// Speedup is the serial baseline's end-to-end (train+diagnose) wall time
	// divided by this point's.
	Speedup float64
	// SamplesPerSec is the Monte-Carlo draw throughput during inference.
	SamplesPerSec float64
	// RankingsIdentical reports whether every diagnosis certified the same
	// ranked entities as the serial (workers=1, chains=1) baseline.
	RankingsIdentical bool
	// BitIdentical reports whether every verdict (p-value, effect, score)
	// is bit-equal to the workers=1 run at the same chain count — the
	// determinism contract: worker count must never change bits; chain
	// count is allowed to (different RNG streams).
	BitIdentical bool
}

// TrainScaleResult carries the scaling sweep.
type TrainScaleResult struct {
	Opts TrainScaleOptions
	// HostProcs is runtime.NumCPU of the measuring host — scaling headroom
	// is bounded by it no matter what GOMAXPROCS is set to.
	HostProcs int
	// Baseline is the serial point (workers=1, chains=1).
	Baseline TrainScalePoint
	// Points are the swept configurations, serial baseline first.
	Points []TrainScalePoint
}

// RunTrainScale measures end-to-end Diagnose wall time across worker and
// chain counts on the Table-2 contention workload. For every configuration it
// also verifies the engine's determinism contract against the serial run:
// certified rankings must match at every point, and verdicts must be
// bit-identical across worker counts at a fixed chain count.
func RunTrainScale(opts TrainScaleOptions) (*TrainScaleResult, error) {
	if opts.Scenarios <= 0 {
		return nil, fmt.Errorf("harness: need at least one scenario")
	}
	if len(opts.Workers) == 0 {
		opts.Workers = []int{1}
	}
	if len(opts.Chains) == 0 {
		opts.Chains = []int{1}
	}
	// Build every scenario once; all configurations diagnose the same data.
	type scenario struct {
		db  *telemetry.DB
		g   *graph.Graph
		sym telemetry.Symptom
	}
	var scs []scenario
	kinds := []microsim.FaultKind{microsim.FaultCPU, microsim.FaultMem, microsim.FaultDisk}
	for v := 0; v < opts.Scenarios; v++ {
		sc, err := microsim.Contention(microsim.ContentionOptions{
			Topo: "hotel", Steps: opts.Steps, PriorIncidents: 4,
			Kind: kinds[v%len(kinds)], Intensity: 0.5, Seed: opts.Seed + int64(v),
		})
		if err != nil {
			return nil, err
		}
		g, err := graph.Build(sc.Result.DB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
		if err != nil {
			return nil, err
		}
		scs = append(scs, scenario{db: sc.Result.DB, g: g, sym: sc.Symptom})
	}

	oldProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(oldProcs)

	// runPoint diagnoses every scenario at one (workers, chains) setting.
	runPoint := func(workers, chains int) (*TrainScalePoint, []*core.Diagnosis, error) {
		procs := workers
		if chains > procs {
			procs = chains
		}
		runtime.GOMAXPROCS(procs)
		rec := obs.New()
		rec.Enable()
		p := &TrainScalePoint{Workers: workers, Chains: chains}
		var diags []*core.Diagnosis
		for _, sc := range scs {
			cfg := murphyConfig(opts.Samples, opts.TrainWindow)
			cfg.Chains = chains
			t0 := time.Now()
			model, err := core.TrainOpt(context.Background(), sc.db, sc.g, cfg,
				core.TrainOpts{Now: -1, Workers: workers, Obs: rec})
			if err != nil {
				return nil, nil, err
			}
			p.TrainTime += time.Since(t0)
			t0 = time.Now()
			diag, err := model.DiagnoseParallel(sc.sym, workers)
			if err != nil {
				return nil, nil, err
			}
			p.DiagTime += time.Since(t0)
			diags = append(diags, diag)
		}
		if secs := p.DiagTime.Seconds(); secs > 0 {
			p.SamplesPerSec = float64(rec.Counter(obs.CtrGibbsSamples)) / secs
		}
		return p, diags, nil
	}

	res := &TrainScaleResult{Opts: opts, HostProcs: runtime.NumCPU()}
	base, baseDiags, err := runPoint(1, 1)
	if err != nil {
		return nil, err
	}
	base.Speedup = 1
	base.RankingsIdentical, base.BitIdentical = true, true
	res.Baseline = *base
	res.Points = append(res.Points, *base)
	baseWall := base.TrainTime + base.DiagTime

	// serialByChains[c] holds the workers=1 diagnoses at chain count c — the
	// bit-identity reference for every wider worker count.
	serialByChains := map[int][]*core.Diagnosis{1: baseDiags}
	for _, c := range opts.Chains {
		for _, w := range opts.Workers {
			if w == 1 && c == 1 {
				continue // the baseline, already recorded
			}
			p, diags, err := runPoint(w, c)
			if err != nil {
				return nil, err
			}
			if wall := p.TrainTime + p.DiagTime; wall > 0 {
				p.Speedup = float64(baseWall) / float64(wall)
			}
			ref, ok := serialByChains[c]
			if !ok {
				// First run at this chain count becomes the reference (the
				// sweep starts each chain count at the smallest worker count).
				serialByChains[c] = diags
				ref = diags
			}
			p.RankingsIdentical, p.BitIdentical = true, true
			for i, d := range diags {
				if !sameCauses(ref[i], d) {
					p.BitIdentical = false
				}
				if !sameRankedEntities(baseDiags[i], d) {
					p.RankingsIdentical = false
				}
			}
			res.Points = append(res.Points, *p)
		}
	}
	return res, nil
}

// sameRankedEntities reports whether two diagnoses certified the same ranked
// entity list (ignoring p-values/effects, which legitimately differ across
// chain counts).
func sameRankedEntities(a, b *core.Diagnosis) bool {
	if len(a.Causes) != len(b.Causes) {
		return false
	}
	for i := range a.Causes {
		if a.Causes[i].Entity != b.Causes[i].Entity {
			return false
		}
	}
	return true
}

// String prints the scaling table.
func (r *TrainScaleResult) String() string {
	var b strings.Builder
	b.WriteString("parallel train-and-sample scaling — Table-2 contention workload\n")
	fmt.Fprintf(&b, "  workload: %d scenarios, %d samples, window %d; host CPUs: %d\n",
		r.Opts.Scenarios, r.Opts.Samples, r.Opts.TrainWindow, r.HostProcs)
	fmt.Fprintf(&b, "  %7s %6s %10s %10s %8s %12s %9s %8s\n",
		"workers", "chains", "train", "diagnose", "speedup", "samples/s", "rankings", "bits")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %7d %6d %10s %10s %7.2fx %12.0f %9v %8v\n",
			p.Workers, p.Chains,
			p.TrainTime.Round(time.Millisecond), p.DiagTime.Round(time.Millisecond),
			p.Speedup, p.SamplesPerSec, p.RankingsIdentical, p.BitIdentical)
	}
	return b.String()
}
