package harness

import (
	"fmt"
	"strings"

	"murphy/internal/evalx"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// Fig6Options parameterizes the resource-contention experiment (§6.3).
type Fig6Options struct {
	// Topo is "social" (Fig 6b) or "hotel" (Fig 6c).
	Topo string
	// Scenarios is the number of fault injections (the paper runs >200
	// across both applications).
	Scenarios int
	// Steps is the emulation length per scenario.
	Steps int
	// PriorIncidents is the number of short prior faults in the training
	// window (up to 14 in the paper).
	PriorIncidents int
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
	// Ks are the top-K cutoffs of the accuracy curve.
	Ks []int
	// Seed drives scenario generation.
	Seed int64
}

// DefaultFig6Options returns a fast hotel-topology configuration.
func DefaultFig6Options() Fig6Options {
	return Fig6Options{
		Topo: "hotel", Scenarios: 24, Steps: 300, PriorIncidents: 4,
		Samples: 400, TrainWindow: 280, Ks: []int{1, 2, 4, 5, 8}, Seed: 1,
	}
}

// Fig6Result carries one application's top-K accuracy curves.
type Fig6Result struct {
	Opts Fig6Options
	// TopK[scheme][k] is top-K recall.
	TopK map[string]map[int]float64
}

// RunFig6 generates contention scenarios (cycling through CPU, memory, and
// disk faults) and scores every scheme.
func RunFig6(opts Fig6Options) (*Fig6Result, error) {
	if opts.Scenarios <= 0 {
		return nil, fmt.Errorf("harness: need at least one scenario")
	}
	cfg := murphyConfig(opts.Samples, opts.TrainWindow)
	kinds := []microsim.FaultKind{microsim.FaultCPU, microsim.FaultMem, microsim.FaultDisk}
	rankings := map[string][][]telemetry.EntityID{}
	var accepts []map[telemetry.EntityID]bool
	for v := 0; v < opts.Scenarios; v++ {
		cOpts := microsim.ContentionOptions{
			Topo:           opts.Topo,
			Steps:          opts.Steps,
			PriorIncidents: opts.PriorIncidents,
			Kind:           kinds[v%len(kinds)],
			Intensity:      0.45 + 0.1*float64(v%3),
			Seed:           opts.Seed + int64(v),
		}
		sc, err := microsim.Contention(cOpts)
		if err != nil {
			return nil, err
		}
		rs, err := schemeRankings(sc, cfg)
		if err != nil {
			return nil, err
		}
		// Truth: the stressed container; its service counts too (the same
		// physical fault observed one association away).
		accepts = append(accepts, evalx.AcceptSet([]telemetry.EntityID{sc.TruthEntity}, sc.Acceptable))
		for _, s := range Schemes {
			rankings[s] = append(rankings[s], rs[s])
		}
	}
	res := &Fig6Result{Opts: opts, TopK: map[string]map[int]float64{}}
	for _, s := range Schemes {
		curve := map[int]float64{}
		for _, k := range opts.Ks {
			curve[k] = evalx.TopKRecall(rankings[s], accepts, k)
		}
		res.TopK[s] = curve
	}
	return res, nil
}

// String prints the Fig 6 curve for this application.
func (r *Fig6Result) String() string {
	var b strings.Builder
	label := "6c (hotel-reservation)"
	if r.Opts.Topo == "social" {
		label = "6b (social-network)"
	}
	fmt.Fprintf(&b, "Fig %s — Top-K accuracy, resource contention (%d scenarios)\n", label, r.Opts.Scenarios)
	for _, s := range Schemes {
		fmt.Fprintf(&b, "  %-10s %s\n", s, fmtCurve(r.TopK[s]))
	}
	return b.String()
}
