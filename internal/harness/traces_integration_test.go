package harness

import (
	"testing"

	"murphy/internal/graph"
	"murphy/internal/microsim"
	"murphy/internal/sage"
	"murphy/internal/telemetry"
	"murphy/internal/tracing"
)

// TestSageFromExtractedCallGraph drives the full production path: the
// emulator emits Jaeger-style traces, the tracing store extracts the call
// graph, the extracted DAG (plus container→service edges) becomes Sage's
// causal model, and Sage diagnoses the contention fault — without ever
// touching the hard-coded topology.
func TestSageFromExtractedCallGraph(t *testing.T) {
	sc, err := microsim.Contention(microsim.ContentionOptions{
		Topo: "hotel", Steps: 240, PriorIncidents: 4,
		Kind: microsim.FaultCPU, Intensity: 0.6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := tracing.NewStore(1)
	if _, err := sc.EmitTraces(store, 2, 3); err != nil {
		t.Fatal(err)
	}
	edges := store.CallGraph()
	if len(edges) == 0 {
		t.Fatal("no call edges extracted")
	}

	// Build the Sage DB: service latency edges callee→caller (a slow callee
	// slows its caller) plus container→service edges, and the entry→client
	// edge, exactly as the scenario's hand-built DAG does — but derived
	// from traces.
	db := sc.Result.DB
	dagDB := db.Clone()
	dagDB.RemoveAllEdges()
	svcID := func(name string) telemetry.EntityID { return sc.Result.ServiceEntity[name] }
	ctrID := func(name string) telemetry.EntityID { return sc.Result.ContainerEntity[name] }
	seen := map[string]bool{}
	for _, e := range edges {
		if err := dagDB.Associate(svcID(e.Callee), svcID(e.Caller), telemetry.Directed); err != nil {
			t.Fatal(err)
		}
		seen[e.Caller], seen[e.Callee] = true, true
	}
	for name := range seen {
		if err := dagDB.Associate(ctrID(name), svcID(name), telemetry.Directed); err != nil {
			t.Fatal(err)
		}
	}
	entry := "frontend"
	if err := dagDB.Associate(svcID(entry), sc.Result.ClientEntity["client"], telemetry.Directed); err != nil {
		t.Fatal(err)
	}

	g, err := graph.Build(dagDB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsDAG() {
		t.Fatal("extracted call graph must be acyclic")
	}
	sCfg := sage.DefaultConfig()
	sCfg.Window = 220
	m, err := sage.Train(dagDB, g, sCfg)
	if err != nil {
		t.Fatal(err)
	}
	var candidates []telemetry.EntityID
	for _, id := range g.IDs() {
		candidates = append(candidates, id)
	}
	ranked, err := m.Diagnose(sc.Symptom, candidates)
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for i, r := range ranked {
		if i >= 5 {
			break
		}
		if r.Entity == sc.TruthEntity || (len(sc.Acceptable) > 0 && r.Entity == sc.Acceptable[0]) {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("Sage over the trace-extracted DAG should find the fault; got %v", sage.RankedIDs(ranked))
	}
}
