package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"murphy/internal/core"
	"murphy/internal/enterprise"
	"murphy/internal/evalx"
	"murphy/internal/graph"
	"murphy/internal/microsim"
	"murphy/internal/obs"
	"murphy/internal/telemetry"
)

// ScalingOptions parameterizes the §6.7 runtime study: training + inference
// wall time as the relationship graph grows.
type ScalingOptions struct {
	// AppCounts are the environment sizes to sweep.
	AppCounts []int
	// Steps is the timeline length.
	Steps int
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
}

// DefaultScalingOptions returns a small sweep.
func DefaultScalingOptions() ScalingOptions {
	return ScalingOptions{AppCounts: []int{2, 4, 8}, Steps: 200, Samples: 200, TrainWindow: 180}
}

// ScalingPoint is one measured environment size.
type ScalingPoint struct {
	Apps       int
	Entities   int
	Edges      int
	TrainTime  time.Duration
	DiagTime   time.Duration
	Candidates int
}

// ScalingResult carries the runtime sweep.
type ScalingResult struct {
	Opts   ScalingOptions
	Points []ScalingPoint
}

// RunScaling measures Murphy's online-training and inference time across
// environment sizes (the complexity is O((N+M)T + (N+M)W), §6.7).
func RunScaling(opts ScalingOptions) (*ScalingResult, error) {
	res := &ScalingResult{Opts: opts}
	for _, apps := range opts.AppCounts {
		gen := enterprise.DefaultGenOptions()
		gen.Apps = apps
		if gen.Apps < 7 {
			// The incident library needs 7 apps; use the crawler-style hook
			// directly instead for small sizes.
			gen.Apps = apps
		}
		gen.Hosts = 2 + apps
		gen.Steps = opts.Steps
		env, err := enterprise.Generate(gen)
		if err != nil {
			return nil, err
		}
		// A demand surge on app 0 is representative and valid at any size.
		if err := env.Run(func(e *enterprise.Env, st *enterprise.StepState) {
			if st.T() >= opts.Steps-opts.Steps/10 {
				st.ScaleDemand(0, 6)
			}
		}); err != nil {
			return nil, err
		}
		db := env.DB
		symptom := telemetry.Symptom{Entity: env.DBVM(0), Metric: telemetry.MetricCPU, High: true}
		g, err := graph.Build(db, []telemetry.EntityID{symptom.Entity}, -1)
		if err != nil {
			return nil, err
		}
		cfg := murphyConfig(opts.Samples, opts.TrainWindow)
		t0 := time.Now()
		model, err := core.Train(db, g, cfg)
		if err != nil {
			return nil, err
		}
		trainTime := time.Since(t0)
		diag, err := model.Diagnose(symptom)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ScalingPoint{
			Apps:       apps,
			Entities:   g.Len(),
			Edges:      g.NumEdges(),
			TrainTime:  trainTime,
			DiagTime:   diag.Elapsed,
			Candidates: len(diag.Candidates),
		})
	}
	return res, nil
}

// String prints the scaling table.
func (r *ScalingResult) String() string {
	var b strings.Builder
	b.WriteString("§6.7 — runtime vs relationship-graph size\n")
	fmt.Fprintf(&b, "  %6s %9s %7s %12s %12s %11s\n", "apps", "entities", "edges", "train", "diagnose", "candidates")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %6d %9d %7d %12s %12s %11d\n",
			p.Apps, p.Entities, p.Edges, p.TrainTime.Round(time.Millisecond), p.DiagTime.Round(time.Millisecond), p.Candidates)
	}
	return b.String()
}

// SensitivityOptions parameterizes the §6.8 sweeps over W and ntrain.
type SensitivityOptions struct {
	// Scenarios per configuration.
	Scenarios int
	// Steps per scenario.
	Steps int
	// Samples configures Murphy.
	Samples int
	// Ws are the Gibbs-round counts to sweep.
	Ws []int
	// NTrains are the training lengths to sweep.
	NTrains []int
	// Seed drives scenario generation.
	Seed int64
}

// DefaultSensitivityOptions returns the paper's sweep points.
func DefaultSensitivityOptions() SensitivityOptions {
	return SensitivityOptions{Scenarios: 8, Steps: 620, Samples: 300, Ws: []int{1, 2, 4, 8}, NTrains: []int{128, 256, 512}, Seed: 1}
}

// SensitivityResult carries accuracy and time per parameter value.
type SensitivityResult struct {
	Opts SensitivityOptions
	// ByW[w] is (top-5 recall, mean diagnosis time) at w Gibbs rounds.
	ByW map[int]AccTime
	// ByNTrain[n] is the same for training lengths.
	ByNTrain map[int]AccTime
}

// AccTime pairs an accuracy with a mean wall time.
type AccTime struct {
	Recall   float64
	MeanTime time.Duration
}

// RunSensitivity sweeps W and ntrain on contention scenarios.
func RunSensitivity(opts SensitivityOptions) (*SensitivityResult, error) {
	res := &SensitivityResult{Opts: opts, ByW: map[int]AccTime{}, ByNTrain: map[int]AccTime{}}
	run := func(w, nTrain int) (AccTime, error) {
		var rankings [][]telemetry.EntityID
		var accepts []map[telemetry.EntityID]bool
		var total time.Duration
		kinds := []microsim.FaultKind{microsim.FaultCPU, microsim.FaultMem, microsim.FaultDisk}
		for v := 0; v < opts.Scenarios; v++ {
			sc, err := microsim.Contention(microsim.ContentionOptions{
				Topo: "hotel", Steps: opts.Steps, PriorIncidents: 4,
				Kind: kinds[v%len(kinds)], Intensity: 0.5, Seed: opts.Seed + int64(v),
			})
			if err != nil {
				return AccTime{}, err
			}
			db := sc.Result.DB
			g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
			if err != nil {
				return AccTime{}, err
			}
			cfg := murphyConfig(opts.Samples, nTrain)
			cfg.GibbsRounds = w
			model, err := core.Train(db, g, cfg)
			if err != nil {
				return AccTime{}, err
			}
			diag, err := model.Diagnose(sc.Symptom)
			if err != nil {
				return AccTime{}, err
			}
			total += diag.Elapsed
			rankings = append(rankings, diag.Ranked())
			accepts = append(accepts, evalx.AcceptSet([]telemetry.EntityID{sc.TruthEntity}, sc.Acceptable))
		}
		return AccTime{
			Recall:   evalx.TopKRecall(rankings, accepts, 5),
			MeanTime: total / time.Duration(opts.Scenarios),
		}, nil
	}
	for _, w := range opts.Ws {
		at, err := run(w, 280)
		if err != nil {
			return nil, err
		}
		res.ByW[w] = at
	}
	for _, n := range opts.NTrains {
		at, err := run(4, n)
		if err != nil {
			return nil, err
		}
		res.ByNTrain[n] = at
	}
	return res, nil
}

// String prints the sensitivity tables.
func (r *SensitivityResult) String() string {
	var b strings.Builder
	b.WriteString("§6.8 — sensitivity\n  Gibbs rounds W:\n")
	for _, w := range r.Opts.Ws {
		at := r.ByW[w]
		fmt.Fprintf(&b, "    W=%d  recall %.2f  mean diagnose %s\n", w, at.Recall, at.MeanTime.Round(time.Millisecond))
	}
	b.WriteString("  training length:\n")
	for _, n := range r.Opts.NTrains {
		at := r.ByNTrain[n]
		fmt.Fprintf(&b, "    ntrain=%d  recall %.2f  mean diagnose %s\n", n, at.Recall, at.MeanTime.Round(time.Millisecond))
	}
	return b.String()
}

// CycleStatsResult summarizes §2.2's cycle statistics for an incident graph.
type CycleStatsResult struct {
	Entities  int
	Edges     int
	Cycles2   int
	Cycles3   int
	VMsTotal  int
	VMsCyclic int
}

// RunCycleStats builds the relationship graph of a representative incident
// and reports its cycle statistics (§2.2 reports >2000 2-cycles and >4000
// 3-cycles on average, with every affected VM on at least one cycle).
func RunCycleStats(gen enterprise.GenOptions) (*CycleStatsResult, error) {
	env, inc, err := enterprise.RunIncident(gen, enterprise.ByIndex(2))
	if err != nil {
		return nil, err
	}
	g, err := graph.Build(env.DB, []telemetry.EntityID{inc.Symptom.Entity}, -1)
	if err != nil {
		return nil, err
	}
	res := &CycleStatsResult{
		Entities: g.Len(),
		Edges:    g.NumEdges(),
		Cycles2:  g.CountCycles2(),
		Cycles3:  g.CountCycles3(),
	}
	for i, id := range g.IDs() {
		if env.DB.Entity(id).Type != telemetry.TypeVM {
			continue
		}
		res.VMsTotal++
		if g.InCycle(i) {
			res.VMsCyclic++
		}
	}
	return res, nil
}

// String prints the cycle statistics.
func (r *CycleStatsResult) String() string {
	return fmt.Sprintf("§2.2 — incident graph: %d entities, %d edges, %d 2-cycles, %d 3-cycles, %d/%d VMs on a cycle\n",
		r.Entities, r.Edges, r.Cycles2, r.Cycles3, r.VMsCyclic, r.VMsTotal)
}

// FastPathOptions parameterizes the shared-computation fast-path A/B
// measurement: the Table-2 contention workload diagnosed with the classic
// fixed-budget inference versus the factor cache + early-stopped
// counterfactual tests, both fanned out over DiagnoseParallel workers.
type FastPathOptions struct {
	// Scenarios is the number of contention incidents.
	Scenarios int
	// Steps is the emulation length per scenario.
	Steps int
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
	// Workers is the DiagnoseParallel fan-out.
	Workers int
	// Rounds is how many times each incident is diagnosed at the same
	// slice (an operator re-triaging: this is what the factor cache
	// amortizes — every round after the first hits cached factors).
	Rounds int
	// Confidence is the early-stop confidence (0 uses the 0.999 default).
	Confidence float64
	// Seed drives scenario generation.
	Seed int64
}

// DefaultFastPathOptions returns the configuration the PR's speedup target
// is stated against.
func DefaultFastPathOptions() FastPathOptions {
	return FastPathOptions{
		Scenarios: 4, Steps: 300, Samples: 4000, TrainWindow: 280,
		Workers: 4, Rounds: 2, Confidence: 0.999, Seed: 1,
	}
}

// FastPathResult carries the A/B timings and the equivalence checks.
type FastPathResult struct {
	Opts FastPathOptions
	// Diagnoses is Scenarios * Rounds.
	Diagnoses int
	// BaselineTime / CacheOnlyTime / FastTime are total train+diagnose
	// wall times across all diagnoses for: the classic path, the factor
	// cache with full-budget sampling, and cache + early stop.
	BaselineTime, CacheOnlyTime, FastTime time.Duration
	// Speedup is BaselineTime / FastTime.
	Speedup float64
	// RankingsIdentical is whether the cache-only ranked cause lists (and
	// their p-values) are bit-identical to the baseline's, per diagnosis.
	RankingsIdentical bool
	// Top1Identical is whether the fast path's top-ranked cause matches
	// the baseline's in every diagnosis.
	Top1Identical bool
	// BaselineSamples / FastSamples total the Monte-Carlo draws spent in
	// certified causes.
	BaselineSamples, FastSamples int
	// F32Time is the total train+diagnose wall time of the float32-kernel
	// arm (full sample budget, factor cache — the kernel A/B against the
	// baseline arm).
	F32Time time.Duration
	// BaselineSamplesPerSec / F32SamplesPerSec are raw sampling-kernel
	// throughputs (Monte-Carlo draws per second of diagnosis wall time) of
	// the float64 baseline and the float32 fast-path arms.
	BaselineSamplesPerSec, F32SamplesPerSec float64
	// KernelSpeedup is F32SamplesPerSec / BaselineSamplesPerSec.
	KernelSpeedup float64
	// F32CausesIdentical is whether the float32 kernel certified exactly the
	// baseline's ranked cause list (same entities, same order) in every
	// diagnosis — the certified-set equality check of the fast path.
	F32CausesIdentical bool
	// CacheStats aggregates the factor cache counters of the fast runs.
	CacheStats core.FactorCacheStats
}

// RunFastPath measures the inference fast path against the classic
// fixed-budget implementation on uncorrupted Table-2 contention scenarios.
func RunFastPath(opts FastPathOptions) (*FastPathResult, error) {
	if opts.Scenarios <= 0 || opts.Rounds <= 0 {
		return nil, fmt.Errorf("harness: need at least one scenario and round")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	baseCfg := murphyConfig(opts.Samples, opts.TrainWindow)
	fastCfg := baseCfg
	fastCfg.EarlyStop = true
	fastCfg.EarlyStopConfidence = opts.Confidence
	f32Cfg := baseCfg
	f32Cfg.Sampler.Precision = core.PrecisionFloat32
	res := &FastPathResult{Opts: opts, RankingsIdentical: true, Top1Identical: true, F32CausesIdentical: true}
	var baseDraws, f32Draws int64
	var baseDiagTime, f32DiagTime time.Duration
	kinds := []microsim.FaultKind{microsim.FaultCPU, microsim.FaultMem, microsim.FaultDisk}
	for v := 0; v < opts.Scenarios; v++ {
		sc, err := microsim.Contention(microsim.ContentionOptions{
			Topo: "hotel", Steps: opts.Steps, PriorIncidents: 4,
			Kind: kinds[v%len(kinds)], Intensity: 0.5, Seed: opts.Seed + int64(v),
		})
		if err != nil {
			return nil, err
		}
		db := sc.Result.DB
		g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
		if err != nil {
			return nil, err
		}
		// run returns the diagnoses, the total train+diagnose wall time, the
		// diagnosis-only wall time, and the Monte-Carlo draws taken — the
		// last two feed the raw kernel-throughput (samples/sec) comparison.
		run := func(cfg core.Config, cache *core.FactorCache) ([]*core.Diagnosis, time.Duration, time.Duration, int64, error) {
			rec := obs.New()
			rec.Enable()
			var out []*core.Diagnosis
			var diagTime time.Duration
			t0 := time.Now()
			for r := 0; r < opts.Rounds; r++ {
				model, err := core.TrainOpt(context.Background(), db, g, cfg, core.TrainOpts{Now: -1, Cache: cache, Obs: rec})
				if err != nil {
					return nil, 0, 0, 0, err
				}
				d0 := time.Now()
				diag, err := model.DiagnoseParallel(sc.Symptom, opts.Workers)
				if err != nil {
					return nil, 0, 0, 0, err
				}
				diagTime += time.Since(d0)
				out = append(out, diag)
			}
			return out, time.Since(t0), diagTime, rec.Counter(obs.CtrGibbsSamples), nil
		}
		base, dt, diagDt, draws, err := run(baseCfg, nil)
		if err != nil {
			return nil, err
		}
		res.BaselineTime += dt
		baseDiagTime += diagDt
		baseDraws += draws
		cached, dt, _, _, err := run(baseCfg, core.NewFactorCache(0))
		if err != nil {
			return nil, err
		}
		res.CacheOnlyTime += dt
		fastCache := core.NewFactorCache(0)
		fast, dt, _, _, err := run(fastCfg, fastCache)
		if err != nil {
			return nil, err
		}
		res.FastTime += dt
		f32, dt, diagDt, draws, err := run(f32Cfg, core.NewFactorCache(0))
		if err != nil {
			return nil, err
		}
		res.F32Time += dt
		f32DiagTime += diagDt
		f32Draws += draws
		for r := 0; r < opts.Rounds; r++ {
			if !sameRanked(base[r], f32[r]) {
				res.F32CausesIdentical = false
			}
		}
		st := fastCache.Stats()
		res.CacheStats.Hits += st.Hits
		res.CacheStats.Misses += st.Misses
		res.CacheStats.Entries += st.Entries
		res.CacheStats.Capacity = st.Capacity
		for r := 0; r < opts.Rounds; r++ {
			res.Diagnoses++
			if !sameCauses(base[r], cached[r]) {
				res.RankingsIdentical = false
			}
			if top1(base[r]) != top1(fast[r]) {
				res.Top1Identical = false
			}
			for _, c := range base[r].Causes {
				res.BaselineSamples += c.SamplesUsed
			}
			for _, c := range fast[r].Causes {
				res.FastSamples += c.SamplesUsed
			}
		}
	}
	if res.FastTime > 0 {
		res.Speedup = float64(res.BaselineTime) / float64(res.FastTime)
	}
	if s := baseDiagTime.Seconds(); s > 0 {
		res.BaselineSamplesPerSec = float64(baseDraws) / s
	}
	if s := f32DiagTime.Seconds(); s > 0 {
		res.F32SamplesPerSec = float64(f32Draws) / s
	}
	if res.BaselineSamplesPerSec > 0 {
		res.KernelSpeedup = res.F32SamplesPerSec / res.BaselineSamplesPerSec
	}
	return res, nil
}

// sameRanked reports whether two diagnoses certified the same ranked cause
// entities (set and order; p-value bits are allowed to differ — this is the
// cross-precision equivalence check, not the bit-identity one).
func sameRanked(a, b *core.Diagnosis) bool {
	if len(a.Causes) != len(b.Causes) {
		return false
	}
	for i := range a.Causes {
		if a.Causes[i].Entity != b.Causes[i].Entity {
			return false
		}
	}
	return true
}

// sameCauses reports whether two diagnoses certified the same causes, in the
// same order, with identical p-values and effects.
func sameCauses(a, b *core.Diagnosis) bool {
	if len(a.Causes) != len(b.Causes) {
		return false
	}
	for i := range a.Causes {
		x, y := a.Causes[i], b.Causes[i]
		if x.Entity != y.Entity || x.PValue != y.PValue || x.Effect != y.Effect || x.Score != y.Score {
			return false
		}
	}
	return true
}

// top1 returns the top-ranked certified cause ("" when none passed).
func top1(d *core.Diagnosis) telemetry.EntityID {
	if len(d.Causes) == 0 {
		return ""
	}
	return d.Causes[0].Entity
}

// String prints the fast-path A/B table.
func (r *FastPathResult) String() string {
	var b strings.Builder
	b.WriteString("inference fast path — factor cache + early-stopped counterfactual tests\n")
	fmt.Fprintf(&b, "  workload: %d contention scenarios × %d diagnoses, %d samples, %d workers\n",
		r.Opts.Scenarios, r.Opts.Rounds, r.Opts.Samples, r.Opts.Workers)
	fmt.Fprintf(&b, "  %-28s %12s\n", "baseline (classic)", r.BaselineTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-28s %12s\n", "factor cache only", r.CacheOnlyTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-28s %12s\n", "cache + early stop", r.FastTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-28s %12s\n", "float32 kernel", r.F32Time.Round(time.Millisecond))
	fmt.Fprintf(&b, "  speedup %.1fx   rankings identical (cache): %v   top-1 identical (fast): %v\n",
		r.Speedup, r.RankingsIdentical, r.Top1Identical)
	fmt.Fprintf(&b, "  kernel throughput: %.3gM samples/sec (float64) -> %.3gM samples/sec (float32), %.1fx, causes identical: %v\n",
		r.BaselineSamplesPerSec/1e6, r.F32SamplesPerSec/1e6, r.KernelSpeedup, r.F32CausesIdentical)
	fmt.Fprintf(&b, "  MC draws in causes: %d -> %d   cache: %d hits / %d misses\n",
		r.BaselineSamples, r.FastSamples, r.CacheStats.Hits, r.CacheStats.Misses)
	return b.String()
}
