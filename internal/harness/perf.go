package harness

import (
	"fmt"
	"strings"
	"time"

	"murphy/internal/core"
	"murphy/internal/enterprise"
	"murphy/internal/evalx"
	"murphy/internal/graph"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// ScalingOptions parameterizes the §6.7 runtime study: training + inference
// wall time as the relationship graph grows.
type ScalingOptions struct {
	// AppCounts are the environment sizes to sweep.
	AppCounts []int
	// Steps is the timeline length.
	Steps int
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
}

// DefaultScalingOptions returns a small sweep.
func DefaultScalingOptions() ScalingOptions {
	return ScalingOptions{AppCounts: []int{2, 4, 8}, Steps: 200, Samples: 200, TrainWindow: 180}
}

// ScalingPoint is one measured environment size.
type ScalingPoint struct {
	Apps       int
	Entities   int
	Edges      int
	TrainTime  time.Duration
	DiagTime   time.Duration
	Candidates int
}

// ScalingResult carries the runtime sweep.
type ScalingResult struct {
	Opts   ScalingOptions
	Points []ScalingPoint
}

// RunScaling measures Murphy's online-training and inference time across
// environment sizes (the complexity is O((N+M)T + (N+M)W), §6.7).
func RunScaling(opts ScalingOptions) (*ScalingResult, error) {
	res := &ScalingResult{Opts: opts}
	for _, apps := range opts.AppCounts {
		gen := enterprise.DefaultGenOptions()
		gen.Apps = apps
		if gen.Apps < 7 {
			// The incident library needs 7 apps; use the crawler-style hook
			// directly instead for small sizes.
			gen.Apps = apps
		}
		gen.Hosts = 2 + apps
		gen.Steps = opts.Steps
		env, err := enterprise.Generate(gen)
		if err != nil {
			return nil, err
		}
		// A demand surge on app 0 is representative and valid at any size.
		if err := env.Run(func(e *enterprise.Env, st *enterprise.StepState) {
			if st.T() >= opts.Steps-opts.Steps/10 {
				st.ScaleDemand(0, 6)
			}
		}); err != nil {
			return nil, err
		}
		db := env.DB
		symptom := telemetry.Symptom{Entity: env.DBVM(0), Metric: telemetry.MetricCPU, High: true}
		g, err := graph.Build(db, []telemetry.EntityID{symptom.Entity}, -1)
		if err != nil {
			return nil, err
		}
		cfg := murphyConfig(opts.Samples, opts.TrainWindow)
		t0 := time.Now()
		model, err := core.Train(db, g, cfg)
		if err != nil {
			return nil, err
		}
		trainTime := time.Since(t0)
		diag, err := model.Diagnose(symptom)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ScalingPoint{
			Apps:       apps,
			Entities:   g.Len(),
			Edges:      g.NumEdges(),
			TrainTime:  trainTime,
			DiagTime:   diag.Elapsed,
			Candidates: len(diag.Candidates),
		})
	}
	return res, nil
}

// String prints the scaling table.
func (r *ScalingResult) String() string {
	var b strings.Builder
	b.WriteString("§6.7 — runtime vs relationship-graph size\n")
	fmt.Fprintf(&b, "  %6s %9s %7s %12s %12s %11s\n", "apps", "entities", "edges", "train", "diagnose", "candidates")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %6d %9d %7d %12s %12s %11d\n",
			p.Apps, p.Entities, p.Edges, p.TrainTime.Round(time.Millisecond), p.DiagTime.Round(time.Millisecond), p.Candidates)
	}
	return b.String()
}

// SensitivityOptions parameterizes the §6.8 sweeps over W and ntrain.
type SensitivityOptions struct {
	// Scenarios per configuration.
	Scenarios int
	// Steps per scenario.
	Steps int
	// Samples configures Murphy.
	Samples int
	// Ws are the Gibbs-round counts to sweep.
	Ws []int
	// NTrains are the training lengths to sweep.
	NTrains []int
	// Seed drives scenario generation.
	Seed int64
}

// DefaultSensitivityOptions returns the paper's sweep points.
func DefaultSensitivityOptions() SensitivityOptions {
	return SensitivityOptions{Scenarios: 8, Steps: 620, Samples: 300, Ws: []int{1, 2, 4, 8}, NTrains: []int{128, 256, 512}, Seed: 1}
}

// SensitivityResult carries accuracy and time per parameter value.
type SensitivityResult struct {
	Opts SensitivityOptions
	// ByW[w] is (top-5 recall, mean diagnosis time) at w Gibbs rounds.
	ByW map[int]AccTime
	// ByNTrain[n] is the same for training lengths.
	ByNTrain map[int]AccTime
}

// AccTime pairs an accuracy with a mean wall time.
type AccTime struct {
	Recall   float64
	MeanTime time.Duration
}

// RunSensitivity sweeps W and ntrain on contention scenarios.
func RunSensitivity(opts SensitivityOptions) (*SensitivityResult, error) {
	res := &SensitivityResult{Opts: opts, ByW: map[int]AccTime{}, ByNTrain: map[int]AccTime{}}
	run := func(w, nTrain int) (AccTime, error) {
		var rankings [][]telemetry.EntityID
		var accepts []map[telemetry.EntityID]bool
		var total time.Duration
		kinds := []microsim.FaultKind{microsim.FaultCPU, microsim.FaultMem, microsim.FaultDisk}
		for v := 0; v < opts.Scenarios; v++ {
			sc, err := microsim.Contention(microsim.ContentionOptions{
				Topo: "hotel", Steps: opts.Steps, PriorIncidents: 4,
				Kind: kinds[v%len(kinds)], Intensity: 0.5, Seed: opts.Seed + int64(v),
			})
			if err != nil {
				return AccTime{}, err
			}
			db := sc.Result.DB
			g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
			if err != nil {
				return AccTime{}, err
			}
			cfg := murphyConfig(opts.Samples, nTrain)
			cfg.GibbsRounds = w
			model, err := core.Train(db, g, cfg)
			if err != nil {
				return AccTime{}, err
			}
			diag, err := model.Diagnose(sc.Symptom)
			if err != nil {
				return AccTime{}, err
			}
			total += diag.Elapsed
			rankings = append(rankings, diag.Ranked())
			accepts = append(accepts, evalx.AcceptSet([]telemetry.EntityID{sc.TruthEntity}, sc.Acceptable))
		}
		return AccTime{
			Recall:   evalx.TopKRecall(rankings, accepts, 5),
			MeanTime: total / time.Duration(opts.Scenarios),
		}, nil
	}
	for _, w := range opts.Ws {
		at, err := run(w, 280)
		if err != nil {
			return nil, err
		}
		res.ByW[w] = at
	}
	for _, n := range opts.NTrains {
		at, err := run(4, n)
		if err != nil {
			return nil, err
		}
		res.ByNTrain[n] = at
	}
	return res, nil
}

// String prints the sensitivity tables.
func (r *SensitivityResult) String() string {
	var b strings.Builder
	b.WriteString("§6.8 — sensitivity\n  Gibbs rounds W:\n")
	for _, w := range r.Opts.Ws {
		at := r.ByW[w]
		fmt.Fprintf(&b, "    W=%d  recall %.2f  mean diagnose %s\n", w, at.Recall, at.MeanTime.Round(time.Millisecond))
	}
	b.WriteString("  training length:\n")
	for _, n := range r.Opts.NTrains {
		at := r.ByNTrain[n]
		fmt.Fprintf(&b, "    ntrain=%d  recall %.2f  mean diagnose %s\n", n, at.Recall, at.MeanTime.Round(time.Millisecond))
	}
	return b.String()
}

// CycleStatsResult summarizes §2.2's cycle statistics for an incident graph.
type CycleStatsResult struct {
	Entities  int
	Edges     int
	Cycles2   int
	Cycles3   int
	VMsTotal  int
	VMsCyclic int
}

// RunCycleStats builds the relationship graph of a representative incident
// and reports its cycle statistics (§2.2 reports >2000 2-cycles and >4000
// 3-cycles on average, with every affected VM on at least one cycle).
func RunCycleStats(gen enterprise.GenOptions) (*CycleStatsResult, error) {
	env, inc, err := enterprise.RunIncident(gen, enterprise.ByIndex(2))
	if err != nil {
		return nil, err
	}
	g, err := graph.Build(env.DB, []telemetry.EntityID{inc.Symptom.Entity}, -1)
	if err != nil {
		return nil, err
	}
	res := &CycleStatsResult{
		Entities: g.Len(),
		Edges:    g.NumEdges(),
		Cycles2:  g.CountCycles2(),
		Cycles3:  g.CountCycles3(),
	}
	for i, id := range g.IDs() {
		if env.DB.Entity(id).Type != telemetry.TypeVM {
			continue
		}
		res.VMsTotal++
		if g.InCycle(i) {
			res.VMsCyclic++
		}
	}
	return res, nil
}

// String prints the cycle statistics.
func (r *CycleStatsResult) String() string {
	return fmt.Sprintf("§2.2 — incident graph: %d entities, %d edges, %d 2-cycles, %d 3-cycles, %d/%d VMs on a cycle\n",
		r.Entities, r.Edges, r.Cycles2, r.Cycles3, r.VMsCyclic, r.VMsTotal)
}
