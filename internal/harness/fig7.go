package harness

import (
	"fmt"
	"strings"

	"murphy/internal/core"
	"murphy/internal/evalx"
	"murphy/internal/graph"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// Fig7Options parameterizes the microbenchmarks of §6.5: no-prior-incident
// accuracy, online vs offline training, and the training-length sweep.
type Fig7Options struct {
	// Scenarios per bar.
	Scenarios int
	// Steps is the emulation length per scenario.
	Steps int
	// Samples configures Murphy's Monte-Carlo sampling.
	Samples int
	// NTrains are the training-length bars (the paper uses 128/256/512).
	NTrains []int
	// Seed drives scenario generation.
	Seed int64
}

// DefaultFig7Options returns a fast configuration with the paper's bars.
func DefaultFig7Options() Fig7Options {
	return Fig7Options{Scenarios: 12, Steps: 620, Samples: 400, NTrains: []int{128, 256, 512}, Seed: 1}
}

// Fig7Result carries the bar values: top-5 recall per variant.
type Fig7Result struct {
	Opts Fig7Options
	// NoPriorIncidents is accuracy when the training window contains no
	// prior faults.
	NoPriorIncidents float64
	// TrainedOffline is accuracy when the training window ends before the
	// incident begins (maximum prior incidents for fairness, as in §6.5.1).
	TrainedOffline float64
	// OnFreshData is accuracy with standard online training.
	OnFreshData float64
	// ByNTrain maps training length to accuracy.
	ByNTrain map[int]float64
}

// RunFig7 measures Murphy's accuracy across the §6.5 training variants.
func RunFig7(opts Fig7Options) (*Fig7Result, error) {
	if opts.Scenarios <= 0 {
		return nil, fmt.Errorf("harness: need at least one scenario")
	}
	res := &Fig7Result{Opts: opts, ByNTrain: map[int]float64{}}

	run := func(prior int, offline bool, nTrain int) (float64, error) {
		var rankings [][]telemetry.EntityID
		var accepts []map[telemetry.EntityID]bool
		kinds := []microsim.FaultKind{microsim.FaultCPU, microsim.FaultMem, microsim.FaultDisk}
		for v := 0; v < opts.Scenarios; v++ {
			sc, err := microsim.Contention(microsim.ContentionOptions{
				Topo:           "hotel",
				Steps:          opts.Steps,
				PriorIncidents: prior,
				Kind:           kinds[v%len(kinds)],
				Intensity:      0.5,
				Seed:           opts.Seed + int64(v),
			})
			if err != nil {
				return 0, err
			}
			db := sc.Result.DB
			g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
			if err != nil {
				return 0, err
			}
			cfg := murphyConfig(opts.Samples, nTrain)
			var model *core.Model
			if offline {
				// Train strictly before the incident window; diagnose the
				// in-incident state by re-binding the model's endpoint.
				model, err = core.TrainAt(db, g, cfg, sc.FaultStart-1, nil)
				if err != nil {
					return 0, err
				}
				model, err = model.Rebind(db.Len() - 1)
				if err != nil {
					return 0, err
				}
			} else {
				model, err = core.Train(db, g, cfg)
				if err != nil {
					return 0, err
				}
			}
			diag, err := model.Diagnose(sc.Symptom)
			if err != nil {
				return 0, err
			}
			rankings = append(rankings, diag.Ranked())
			accepts = append(accepts, evalx.AcceptSet([]telemetry.EntityID{sc.TruthEntity}, sc.Acceptable))
		}
		return evalx.TopKRecall(rankings, accepts, 5), nil
	}

	var err error
	if res.NoPriorIncidents, err = run(0, false, 280); err != nil {
		return nil, err
	}
	if res.TrainedOffline, err = run(14, true, 280); err != nil {
		return nil, err
	}
	if res.OnFreshData, err = run(14, false, 280); err != nil {
		return nil, err
	}
	for _, n := range opts.NTrains {
		acc, err := run(4, false, n)
		if err != nil {
			return nil, err
		}
		res.ByNTrain[n] = acc
	}
	return res, nil
}

// String prints the Fig 7 bars.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 7 — Murphy microbenchmarks (top-5 recall)\n")
	fmt.Fprintf(&b, "  %-24s %.2f\n", "no prior incidents", r.NoPriorIncidents)
	fmt.Fprintf(&b, "  %-24s %.2f\n", "trained offline", r.TrainedOffline)
	fmt.Fprintf(&b, "  %-24s %.2f\n", "on fresh data (online)", r.OnFreshData)
	for _, n := range r.Opts.NTrains {
		fmt.Fprintf(&b, "  ntrain = %-15d %.2f\n", n, r.ByNTrain[n])
	}
	return b.String()
}
