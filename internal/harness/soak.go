package harness

import (
	"murphy/internal/serve"
)

// SoakOptions parameterizes the chaos soak drill of the always-on daemon;
// it aliases the serve package's options so the murphybench CLI and the CI
// soak-smoke job configure the drill through the harness like every other
// experiment.
type SoakOptions = serve.SoakOptions

// SoakResult is the drill outcome, including the degradation-ladder
// evidence (Violations) and the latency/shed numbers behind the overload
// table in EXPERIMENTS.md.
type SoakResult = serve.SoakResult

// DefaultSoakOptions returns a CI-sized drill: a few seconds of sustained
// 2x overload under moderate chaos.
func DefaultSoakOptions() SoakOptions { return serve.DefaultSoakOptions() }

// RunSoak boots the always-on daemon over a microsim scenario with chaos on
// its telemetry read path, hammers ingest and diagnosis past the admission
// limits, then drains gracefully — returning every degradation-ladder
// measurement. An empty Violations() list is the pass criterion.
func RunSoak(opts SoakOptions) (*SoakResult, error) { return serve.RunSoak(opts) }
