package harness

import (
	"fmt"
	"strings"

	"murphy/internal/core"
	"murphy/internal/enterprise"
	"murphy/internal/evalx"
	"murphy/internal/explainit"
	"murphy/internal/graph"
	"murphy/internal/netmedic"
	"murphy/internal/sage"
	"murphy/internal/telemetry"
)

// Table1Options parameterizes the production-incident experiment (§6.2).
type Table1Options struct {
	// Gen sizes the enterprise environment each incident is replayed in.
	Gen enterprise.GenOptions
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
}

// DefaultTable1Options returns an environment sized like the evaluation's.
func DefaultTable1Options() Table1Options {
	gen := enterprise.DefaultGenOptions()
	gen.Apps = 8
	gen.Hosts = 8
	gen.Steps = 320
	return Table1Options{Gen: gen, Samples: 400, TrainWindow: 280}
}

// Table1Row is one incident's outcome across schemes.
type Table1Row struct {
	Index int
	Name  string
	// FPs per scheme at the calibrated cutoff; -1 marks a scheme that
	// cannot run in this environment (Sage, which needs a causal DAG).
	FPs map[string]int
	// Recall01 per scheme at the calibrated cutoff.
	Recall map[string]float64
}

// Table1Result is the full Table 1 reproduction.
type Table1Result struct {
	Opts Table1Options
	Rows []Table1Row
	// Cutoff per scheme chosen by the §6.2 calibration protocol.
	Cutoff map[string]int
	// AvgFPs per scheme.
	AvgFPs map[string]float64
	// MeanRecall per scheme across all incidents.
	MeanRecall map[string]float64
	// SageApplicable is always false here: the environment is cyclic.
	SageApplicable bool
}

// table1Schemes are the schemes that can run on the cyclic enterprise input.
var table1Schemes = []string{SchemeMurphy, SchemeNetMedic, SchemeExplainIt}

// RunTable1 replays the 13 incidents, runs each applicable scheme, calibrates
// per-scheme cutoffs for zero false negatives on the calibration incidents,
// and counts false positives per incident.
func RunTable1(opts Table1Options) (*Table1Result, error) {
	cfg := murphyConfig(opts.Samples, opts.TrainWindow)
	type caseResult struct {
		inc     *enterprise.Incident
		ranked  map[string][]telemetry.EntityID
		truth   map[telemetry.EntityID]bool
		isCalib bool
	}
	var cases []caseResult
	// Probe incident count from one generation.
	probeEnv, err := enterprise.Generate(opts.Gen)
	if err != nil {
		return nil, err
	}
	probe, err := enterprise.Incidents(probeEnv)
	if err != nil {
		return nil, err
	}
	sageOK := false
	for _, meta := range probe {
		env, inc, err := enterprise.RunIncident(opts.Gen, enterprise.ByIndex(meta.Index))
		if err != nil {
			return nil, fmt.Errorf("harness: incident %d: %w", meta.Index, err)
		}
		db := env.DB
		// Seed with all entities of the affected application and expand four
		// hops, as the paper's incident dataset was collected (§5.1.1).
		appName := env.AppNames()[inc.AppIx]
		seeds := append([]telemetry.EntityID(nil), db.AppMembers(appName)...)
		seeds = append(seeds, inc.Symptom.Entity)
		g, err := graph.Build(db, seeds, 4)
		if err != nil {
			return nil, err
		}
		model, err := core.Train(db, g, cfg)
		if err != nil {
			return nil, err
		}
		diag, err := model.Diagnose(inc.Symptom)
		if err != nil {
			return nil, err
		}
		candidates := diag.Candidates
		ranked := map[string][]telemetry.EntityID{SchemeMurphy: diag.Ranked()}

		eiCfg := explainit.DefaultConfig()
		eiCfg.Window = cfg.TrainWindow
		ei, err := explainit.Diagnose(db, inc.Symptom, candidates, eiCfg)
		if err != nil {
			return nil, err
		}
		ranked[SchemeExplainIt] = explainit.RankedIDs(ei)

		nmCfg := netmedic.DefaultConfig()
		nmCfg.Window = cfg.TrainWindow
		nm, err := netmedic.Diagnose(db, g, inc.Symptom, candidates, nmCfg)
		if err != nil {
			return nil, err
		}
		ranked[SchemeNetMedic] = netmedic.RankedIDs(nm)

		// Sage structurally cannot run: the relationship graph is cyclic and
		// no causal DAG exists for arbitrary enterprise applications (§6.2).
		if _, err := sage.Train(db, g, sage.DefaultConfig()); err == nil {
			sageOK = true // would indicate the environment lost its cycles
		}

		cases = append(cases, caseResult{
			inc:     inc,
			ranked:  ranked,
			truth:   evalx.AcceptSet(inc.Truth),
			isCalib: inc.Calibration,
		})
	}

	res := &Table1Result{
		Opts:           opts,
		Cutoff:         map[string]int{},
		AvgFPs:         map[string]float64{},
		MeanRecall:     map[string]float64{},
		SageApplicable: sageOK,
	}
	// Calibrate per scheme.
	for _, s := range table1Schemes {
		var calib []evalx.CalibrationCase
		for _, c := range cases {
			if c.isCalib {
				calib = append(calib, evalx.CalibrationCase{Ranked: c.ranked[s], Truth: c.truth})
			}
		}
		k, _ := evalx.CalibrateCutoff(calib)
		res.Cutoff[s] = k
	}
	// Score per incident.
	for _, c := range cases {
		row := Table1Row{Index: c.inc.Index, Name: c.inc.Name, FPs: map[string]int{}, Recall: map[string]float64{}}
		for _, s := range table1Schemes {
			cut := res.Cutoff[s]
			row.FPs[s] = evalx.FalsePositives(c.ranked[s], c.truth, cut)
			row.Recall[s] = evalx.Recall01(c.ranked[s], c.truth, cut)
			res.AvgFPs[s] += float64(row.FPs[s])
			res.MeanRecall[s] += row.Recall[s]
		}
		row.FPs[SchemeSage] = -1
		res.Rows = append(res.Rows, row)
	}
	for _, s := range table1Schemes {
		res.AvgFPs[s] /= float64(len(cases))
		res.MeanRecall[s] /= float64(len(cases))
	}
	return res, nil
}

// String prints the Table 1 rows.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1 — false positives per incident (operator-decided ground truth)\n")
	fmt.Fprintf(&b, "  %-55s %8s %9s %10s\n", "incident", "Murphy", "NetMedic", "ExplainIT")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %2d. %-51s %8d %9d %10d\n", row.Index, row.Name,
			row.FPs[SchemeMurphy], row.FPs[SchemeNetMedic], row.FPs[SchemeExplainIt])
	}
	fmt.Fprintf(&b, "  %-55s %8.1f %9.1f %10.1f\n", "average false positives",
		r.AvgFPs[SchemeMurphy], r.AvgFPs[SchemeNetMedic], r.AvgFPs[SchemeExplainIt])
	fmt.Fprintf(&b, "  mean recall: Murphy %.2f, NetMedic %.2f, ExplainIT %.2f (cutoffs %v)\n",
		r.MeanRecall[SchemeMurphy], r.MeanRecall[SchemeNetMedic], r.MeanRecall[SchemeExplainIt], r.Cutoff)
	b.WriteString("  Sage: not applicable (requires a causal DAG; the enterprise relationship graph is cyclic)\n")
	return b.String()
}
