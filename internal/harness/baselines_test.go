package harness

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"murphy/internal/metamorph"
	"murphy/internal/telemetry"
)

// baselineEnv builds the shared case environment for one family's index-0
// case of the fixed test seed.
func baselineEnv(t *testing.T, fam string) *CaseEnv {
	t.Helper()
	c, err := metamorph.Generate(fam, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewCaseEnv(c)
	if err != nil {
		t.Fatalf("%s: %v", fam, err)
	}
	return env
}

func sameRanking(a, b []telemetry.EntityID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBaselineDeterminism checks every diagnoser's ranking is byte-identical
// across repeated runs, across a freshly regenerated identical case (fresh
// training included), and across candidate-order permutation. Each baseline
// dedupes its candidates and breaks score ties by entity ID, so the input
// order the harness happens to enumerate must never leak into the ranking.
func TestBaselineDeterminism(t *testing.T) {
	for _, fam := range metamorph.Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			env := baselineEnv(t, fam)
			env2 := baselineEnv(t, fam) // identical case, fresh training
			for _, d := range Diagnosers() {
				ref, err := d.Diagnose(env)
				if err != nil {
					t.Fatalf("%s: %v", d.Name(), err)
				}
				again, err := d.Diagnose(env)
				if err != nil {
					t.Fatalf("%s rerun: %v", d.Name(), err)
				}
				if !sameRanking(ref, again) {
					t.Errorf("%s: ranking differs across runs on the same env:\n%v\n%v", d.Name(), ref, again)
				}
				fresh, err := d.Diagnose(env2)
				if err != nil {
					t.Fatalf("%s fresh env: %v", d.Name(), err)
				}
				if !sameRanking(ref, fresh) {
					t.Errorf("%s: ranking differs across identically generated envs:\n%v\n%v", d.Name(), ref, fresh)
				}
				// Candidate-order permutations: reversed and seed-shuffled,
				// with the symptom entity duplicated to exercise dedup.
				for name, perm := range map[string][]telemetry.EntityID{
					"reversed": reversedIDs(env.Candidates),
					"shuffled": shuffledIDs(env.Candidates, 42),
					"duped":    append(append([]telemetry.EntityID(nil), env.Candidates...), env.Candidates...),
				} {
					penv := *env
					penv.Candidates = perm
					got, err := d.Diagnose(&penv)
					if err != nil {
						t.Fatalf("%s %s candidates: %v", d.Name(), name, err)
					}
					if !sameRanking(ref, got) {
						t.Errorf("%s: ranking depends on %s candidate order:\n%v\n%v", d.Name(), name, ref, got)
					}
				}
			}
			// Sage additionally must not care about the call DAG's edge-list
			// order.
			if len(env.Case.CallDAG) > 0 {
				ref, _ := (sageDiagnoser{}).Diagnose(env)
				penv := *env
				pc := *env.Case
				pc.CallDAG = reversedEdges(env.Case.CallDAG)
				penv.Case = &pc
				got, _ := (sageDiagnoser{}).Diagnose(&penv)
				if !sameRanking(ref, got) {
					t.Errorf("Sage: ranking depends on call-DAG edge order:\n%v\n%v", ref, got)
				}
			}
		})
	}
}

func reversedIDs(ids []telemetry.EntityID) []telemetry.EntityID {
	out := make([]telemetry.EntityID, len(ids))
	for i, id := range ids {
		out[len(ids)-1-i] = id
	}
	return out
}

func shuffledIDs(ids []telemetry.EntityID, seed int64) []telemetry.EntityID {
	out := append([]telemetry.EntityID(nil), ids...)
	rand.New(rand.NewSource(seed)).Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func reversedEdges(edges [][2]telemetry.EntityID) [][2]telemetry.EntityID {
	out := make([][2]telemetry.EntityID, len(edges))
	for i, e := range edges {
		out[len(edges)-1-i] = e
	}
	return out
}

// TestMurphyColumnMatchesRunAccuracy pins the comparative harness to the
// accuracy harness: the Murphy method's per-family numbers must equal
// RunAccuracy's for the same suite, because both run the identical reference
// training/diagnosis path. If these drift apart, the bake-off is no longer
// measuring the Murphy that accguard gates.
func TestMurphyColumnMatchesRunAccuracy(t *testing.T) {
	const seed, cases = 1, 4
	cmp, err := RunBaselines(seed, cases)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := RunAccuracy(seed, cases)
	if err != nil {
		t.Fatal(err)
	}
	for fam, want := range acc.Families {
		got, ok := cmp.Methods[SchemeMurphy][fam]
		if !ok {
			t.Fatalf("family %s missing from comparative Murphy rows", fam)
		}
		if got != want {
			t.Errorf("family %s: comparative Murphy row %+v != RunAccuracy %+v", fam, got, want)
		}
	}
}

// TestBaselinesGoldenRankings pins one seeded scenario per family with every
// method's full ranking, so any ranking change in any method is visible in
// review diffs. Regenerate with UPDATE_GOLDEN=1.
func TestBaselinesGoldenRankings(t *testing.T) {
	const goldenPath = "testdata/baseline_rankings.golden"
	var b strings.Builder
	for _, fam := range metamorph.Families {
		env := baselineEnv(t, fam)
		fmt.Fprintf(&b, "family %s (seed=%d) symptom=%s truth=%s\n", fam, env.Case.Seed, env.Case.Symptom.Entity, env.Case.Truth)
		for _, d := range Diagnosers() {
			ranked, err := d.Diagnose(env)
			if err != nil {
				t.Fatalf("%s on %s: %v", d.Name(), fam, err)
			}
			ids := make([]string, len(ranked))
			for i, id := range ranked {
				ids[i] = string(id)
			}
			fmt.Fprintf(&b, "  %-10s %s\n", d.Name(), strings.Join(ids, " > "))
		}
	}
	got := b.String()

	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("per-method rankings drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestParseBaselinesLegacy checks the pre-comparative Murphy-only baseline
// schema still parses, upgraded into the Murphy method.
func TestParseBaselinesLegacy(t *testing.T) {
	legacy := []byte(`{"seed":7,"cases_per_family":3,"families":{"cascade":{"cases":3,"precision":1,"top1":1,"top3":1,"top5":1}}}`)
	r, err := ParseBaselines(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != 7 || r.CasesPerFamily != 3 {
		t.Errorf("legacy header lost: %+v", r)
	}
	if got := r.Methods[SchemeMurphy]["cascade"]; got.Precision != 1 || got.Cases != 3 {
		t.Errorf("legacy families not upgraded to Murphy method: %+v", got)
	}
	// Round-trip: the upgraded result re-marshals in the new schema.
	data, err := r.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ParseBaselines(data)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Methods[SchemeMurphy]["cascade"] != r.Methods[SchemeMurphy]["cascade"] {
		t.Errorf("round-trip lost data: %+v vs %+v", r2, r)
	}
}
