package harness

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"murphy/internal/core"
	"murphy/internal/enterprise"
	"murphy/internal/graph"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// IncTrainOptions parameterizes the incremental-training replay: a sliding
// window advances one slice at a time over the tail of a contention workload,
// and every slide trains the model twice — a full retrain from scratch and an
// incremental pass over the factor store's slid sufficient statistics. The
// experiment reports the steady-state cost ratio and verifies that the two
// paths produce equivalent factors and identical certified causes.
type IncTrainOptions struct {
	// Steps is the emulation length; the replay slides over its tail.
	Steps int
	// Slides is how many one-slice window advances are measured after the
	// anchoring pass.
	Slides int
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
	// Tolerance bounds the per-parameter relative delta between the full and
	// incremental factors at every slide.
	Tolerance float64
	// Seed drives scenario generation.
	Seed int64
	// Apps, when positive, replays over an enterprise environment of this
	// many three-tier applications (Apps+2 hosts) instead of the hotel
	// contention scenario — the scale arm of the experiment. At ~18 entities
	// per app, Apps=56 lands near 1k entities and Apps=560 near 10k.
	Apps int
}

// DefaultIncTrainOptions returns the replay the EXPERIMENTS table reports.
func DefaultIncTrainOptions() IncTrainOptions {
	return IncTrainOptions{
		Steps: 400, Slides: 40, Samples: 1000, TrainWindow: 300,
		Tolerance: 1e-6, Seed: 1,
	}
}

// IncTrainResult carries the replay measurements.
type IncTrainResult struct {
	Opts IncTrainOptions
	// Entities is the candidate-graph size of the replayed environment.
	Entities int
	// Factors is the trained factor count of the final model.
	Factors int
	// AnchorTime is the incremental path's first (anchoring) pass — a full
	// train that also populates the store's statistics.
	AnchorTime time.Duration
	// FullTime / IncTime are steady-state totals over the measured slides.
	FullTime, IncTime time.Duration
	// Speedup is FullTime / IncTime: the steady-state training-cost ratio.
	Speedup float64
	// MaxDelta is the worst per-parameter relative delta between the full
	// and incremental factors observed across every slide.
	MaxDelta float64
	// ToleranceOK reports MaxDelta <= Opts.Tolerance.
	ToleranceOK bool
	// CausesIdentical reports whether the final diagnosis certified the same
	// ranked cause entities on both paths. (Scores are compared through the
	// per-factor Tolerance, not bitwise: slid statistics agree with the full
	// retrain to ~1e-12, which is far inside the certification margins but
	// not last-ulp-identical after hundreds of Monte-Carlo draws.)
	CausesIdentical bool
	// Hits / Refits / Reselects / DriftTrips are the store's counters after
	// the replay.
	Hits, Refits, Reselects, DriftTrips uint64
}

// RunIncTrain replays a sliding window over the Table-2 contention workload,
// training full-window and incrementally at every slide, and reports the
// steady-state cost ratio plus the factor/diagnosis equivalence evidence.
func RunIncTrain(opts IncTrainOptions) (*IncTrainResult, error) {
	if opts.Slides <= 0 {
		return nil, fmt.Errorf("harness: need at least one slide")
	}
	if opts.TrainWindow+opts.Slides >= opts.Steps {
		return nil, fmt.Errorf("harness: need Steps > TrainWindow+Slides (%d+%d vs %d)",
			opts.TrainWindow, opts.Slides, opts.Steps)
	}
	var db *telemetry.DB
	var symptom telemetry.Symptom
	if opts.Apps > 0 {
		gen := enterprise.DefaultGenOptions()
		gen.Apps = opts.Apps
		gen.Hosts = 2 + opts.Apps
		gen.Steps = opts.Steps
		gen.Seed = opts.Seed
		env, err := enterprise.Generate(gen)
		if err != nil {
			return nil, err
		}
		// A demand surge on app 0 over the final tenth keeps the symptom
		// diagnosable at every scale (same shape as RunScaling).
		if err := env.Run(func(e *enterprise.Env, st *enterprise.StepState) {
			if st.T() >= opts.Steps-opts.Steps/10 {
				st.ScaleDemand(0, 6)
			}
		}); err != nil {
			return nil, err
		}
		db = env.DB
		symptom = telemetry.Symptom{Entity: env.DBVM(0), Metric: telemetry.MetricCPU, High: true}
	} else {
		sc, err := microsim.Contention(microsim.ContentionOptions{
			Topo: "hotel", Steps: opts.Steps, PriorIncidents: 4,
			Kind: microsim.FaultCPU, Intensity: 0.5, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		db = sc.Result.DB
		symptom = sc.Symptom
	}
	g, err := graph.Build(db, []telemetry.EntityID{symptom.Entity}, -1)
	if err != nil {
		return nil, err
	}
	cfg := murphyConfig(opts.Samples, opts.TrainWindow)
	ctx := context.Background()
	store := core.NewFactorStore()
	res := &IncTrainResult{Opts: opts, Entities: g.Len(), CausesIdentical: true}

	anchor := db.Len() - 1 - opts.Slides
	var fullModel, incModel *core.Model
	for t := anchor; t < db.Len(); t++ {
		t0 := time.Now()
		fullModel, err = core.TrainOpt(ctx, db, g, cfg, core.TrainOpts{Now: t})
		fullWall := time.Since(t0)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		incModel, err = core.TrainOpt(ctx, db, g, cfg, core.TrainOpts{Now: t, Store: store})
		incWall := time.Since(t0)
		if err != nil {
			return nil, err
		}
		if t == anchor {
			res.AnchorTime = incWall
		} else {
			res.FullTime += fullWall
			res.IncTime += incWall
		}
		n, d, err := compareFactors(db, fullModel, incModel)
		if err != nil {
			return nil, fmt.Errorf("harness: slide %d: %w", t, err)
		}
		res.Factors = n
		if d > res.MaxDelta {
			res.MaxDelta = d
		}
	}
	if res.IncTime > 0 {
		res.Speedup = float64(res.FullTime) / float64(res.IncTime)
	}
	res.ToleranceOK = res.MaxDelta <= opts.Tolerance

	fullDiag, err := fullModel.Diagnose(symptom)
	if err != nil {
		return nil, err
	}
	incDiag, err := incModel.Diagnose(symptom)
	if err != nil {
		return nil, err
	}
	res.CausesIdentical = sameRankedEntities(fullDiag, incDiag)

	st := store.Stats()
	res.Hits, res.Refits, res.Reselects, res.DriftTrips = st.Hits, st.Refits, st.Reselects, st.DriftTrips
	return res, nil
}

// compareFactors walks every (entity, metric) pair, requires the two models
// to have trained the same factor set, and returns the factor count and the
// worst per-parameter relative delta.
func compareFactors(db *telemetry.DB, full, inc *core.Model) (int, float64, error) {
	var n int
	var worst float64
	for _, id := range db.Entities() {
		for _, metric := range db.MetricNames(id) {
			fv, fok := full.FactorView(id, metric)
			iv, iok := inc.FactorView(id, metric)
			if fok != iok {
				return 0, 0, fmt.Errorf("factor %s/%s trained on one path only (full=%v inc=%v)", id, metric, fok, iok)
			}
			if !fok {
				continue
			}
			n++
			if len(fv.Features) != len(iv.Features) {
				return 0, 0, fmt.Errorf("factor %s/%s selected %d features vs %d", id, metric, len(fv.Features), len(iv.Features))
			}
			for i := range fv.Features {
				if fv.Features[i] != iv.Features[i] {
					return 0, 0, fmt.Errorf("factor %s/%s feature %d: %s vs %s", id, metric, i, fv.Features[i], iv.Features[i])
				}
			}
			pairs := [][2]float64{
				{fv.Intercept, iv.Intercept}, {fv.ResidualStd, iv.ResidualStd},
				{fv.HMean, iv.HMean}, {fv.HStd, iv.HStd},
				{fv.Med, iv.Med}, {fv.MADScale, iv.MADScale}, {fv.RScore, iv.RScore},
			}
			for i := range fv.Coef {
				pairs = append(pairs, [2]float64{fv.Coef[i], iv.Coef[i]},
					[2]float64{fv.FeatMean[i], iv.FeatMean[i]},
					[2]float64{fv.FeatStd[i], iv.FeatStd[i]})
			}
			for _, p := range pairs {
				if d := relDelta(p[0], p[1]); d > worst {
					worst = d
				}
			}
		}
	}
	return n, worst, nil
}

// relDelta is |a-b| scaled by max(1, |a|), so tiny parameters compare
// absolutely and large ones relatively. NaN-on-both compares equal.
func relDelta(a, b float64) float64 {
	if math.IsNaN(a) && math.IsNaN(b) {
		return 0
	}
	scale := math.Abs(a)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) / scale
}

// String prints the replay summary.
func (r *IncTrainResult) String() string {
	var b strings.Builder
	if r.Opts.Apps > 0 {
		fmt.Fprintf(&b, "incremental sliding-window training — enterprise replay (%d apps)\n", r.Opts.Apps)
	} else {
		b.WriteString("incremental sliding-window training — contention replay\n")
	}
	fmt.Fprintf(&b, "  workload: %d entities, window %d, %d slides, %d factors\n",
		r.Entities, r.Opts.TrainWindow, r.Opts.Slides, r.Factors)
	perFull := time.Duration(0)
	perInc := time.Duration(0)
	if r.Opts.Slides > 0 {
		perFull = r.FullTime / time.Duration(r.Opts.Slides)
		perInc = r.IncTime / time.Duration(r.Opts.Slides)
	}
	fmt.Fprintf(&b, "  full retrain: %10s total  (%s/slide)\n", r.FullTime.Round(time.Millisecond), perFull.Round(time.Microsecond))
	fmt.Fprintf(&b, "  incremental:  %10s total  (%s/slide)   speedup %.1fx\n",
		r.IncTime.Round(time.Millisecond), perInc.Round(time.Microsecond), r.Speedup)
	fmt.Fprintf(&b, "  anchor pass:  %10s (one-time store population)\n", r.AnchorTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  store: %d hits (%d reselects), %d refits, %d drift trips\n", r.Hits, r.Reselects, r.Refits, r.DriftTrips)
	fmt.Fprintf(&b, "  equivalence: max factor delta %.2e (tolerance %.0e, ok=%v), causes identical %v\n",
		r.MaxDelta, r.Opts.Tolerance, r.ToleranceOK, r.CausesIdentical)
	return b.String()
}
