package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"murphy/internal/degrade"
	"murphy/internal/evalx"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// Degradations are Table 2's corruption columns, in table order.
var Degradations = []string{"missing-values", "missing-edge", "missing-entity", "missing-metric", "unchanged"}

// Table2Options parameterizes the robustness experiment (§6.4), run on the
// cycle-free contention setup so Sage can participate.
type Table2Options struct {
	// Scenarios is the number of contention scenarios per degradation.
	Scenarios int
	// Steps is the emulation length per scenario.
	Steps int
	// Samples / TrainWindow configure Murphy.
	Samples, TrainWindow int
	// Seed drives scenario generation and corruption choices.
	Seed int64
}

// DefaultTable2Options returns a fast configuration.
func DefaultTable2Options() Table2Options {
	return Table2Options{Scenarios: 12, Steps: 300, Samples: 400, TrainWindow: 280, Seed: 1}
}

// Table2Result carries the top-5 recall per scheme per degradation.
type Table2Result struct {
	Opts Table2Options
	// Recall[scheme][degradation] is top-5 recall.
	Recall map[string]map[string]float64
	// Aggregate[scheme] averages the four degraded columns.
	Aggregate map[string]float64
}

// RunTable2 applies each Table 2 corruption to fresh contention scenarios
// and measures each scheme's top-5 recall.
func RunTable2(opts Table2Options) (*Table2Result, error) {
	if opts.Scenarios <= 0 {
		return nil, fmt.Errorf("harness: need at least one scenario")
	}
	cfg := murphyConfig(opts.Samples, opts.TrainWindow)
	res := &Table2Result{
		Opts:      opts,
		Recall:    map[string]map[string]float64{},
		Aggregate: map[string]float64{},
	}
	for _, s := range Schemes {
		res.Recall[s] = map[string]float64{}
	}
	kinds := []microsim.FaultKind{microsim.FaultCPU, microsim.FaultMem, microsim.FaultDisk}
	for _, deg := range Degradations {
		rankings := map[string][][]telemetry.EntityID{}
		var accepts []map[telemetry.EntityID]bool
		for v := 0; v < opts.Scenarios; v++ {
			cOpts := microsim.ContentionOptions{
				Topo:           "hotel",
				Steps:          opts.Steps,
				PriorIncidents: 4,
				Kind:           kinds[v%len(kinds)],
				Intensity:      0.5,
				Seed:           opts.Seed + int64(v),
			}
			sc, err := microsim.Contention(cOpts)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(opts.Seed*1000 + int64(v)))
			if err := corrupt(sc, deg, rng); err != nil {
				return nil, err
			}
			rs, err := schemeRankings(sc, cfg)
			if err != nil {
				return nil, err
			}
			accepts = append(accepts, evalx.AcceptSet([]telemetry.EntityID{sc.TruthEntity}, sc.Acceptable))
			for _, s := range Schemes {
				rankings[s] = append(rankings[s], rs[s])
			}
		}
		for _, s := range Schemes {
			res.Recall[s][deg] = evalx.TopKRecall(rankings[s], accepts, 5)
		}
	}
	for _, s := range Schemes {
		agg := 0.0
		for _, deg := range Degradations[:4] {
			agg += res.Recall[s][deg]
		}
		res.Aggregate[s] = agg / 4
	}
	return res, nil
}

// corrupt applies one Table 2 degradation in place to the scenario's DB.
func corrupt(sc *microsim.Scenario, deg string, rng *rand.Rand) error {
	db := sc.Result.DB
	prot := degrade.Protected{sc.Symptom.Entity: true, sc.TruthEntity: true}
	for _, id := range sc.Acceptable {
		prot[id] = true
	}
	switch deg {
	case "unchanged":
		return nil
	case "missing-edge":
		c, pair, err := degrade.MissingEdge(db, prot, rng)
		if err != nil {
			return err
		}
		sc.Result.DB = c
		// Drop the same edge from Sage's call DAG if it appears there.
		var kept [][2]telemetry.EntityID
		for _, e := range sc.CallDAG {
			if (e[0] == pair[0] && e[1] == pair[1]) || (e[0] == pair[1] && e[1] == pair[0]) {
				continue
			}
			kept = append(kept, e)
		}
		sc.CallDAG = kept
	case "missing-entity":
		c, victim, err := degrade.MissingEntity(db, prot, rng)
		if err != nil {
			return err
		}
		sc.Result.DB = c
		var kept [][2]telemetry.EntityID
		for _, e := range sc.CallDAG {
			if e[0] == victim || e[1] == victim {
				continue
			}
			kept = append(kept, e)
		}
		sc.CallDAG = kept
	case "missing-metric":
		c, _, err := degrade.MissingMetric(db, sc.TruthEntity, rng)
		if err != nil {
			return err
		}
		sc.Result.DB = c
	case "missing-values":
		c, _, err := degrade.MissingValues(db, 0.25, sc.FaultStart, rng)
		// A draw that selects no victims is not a corrupted run; redraw
		// rather than scoring a pristine copy as a robustness pass. The rng
		// advances every call, so this terminates (and in practice a 25%
		// fraction over dozens of entities virtually never misses twice).
		for attempts := 0; errors.Is(err, degrade.ErrNoneSelected) && attempts < 100; attempts++ {
			c, _, err = degrade.MissingValues(db, 0.25, sc.FaultStart, rng)
		}
		if err != nil {
			return err
		}
		sc.Result.DB = c
	default:
		return fmt.Errorf("harness: unknown degradation %q", deg)
	}
	return nil
}

// String prints Table 2.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2 — robustness: top-5 recall under degraded data\n")
	fmt.Fprintf(&b, "  %-10s", "scheme")
	for _, deg := range Degradations {
		fmt.Fprintf(&b, " %15s", deg)
	}
	fmt.Fprintf(&b, " %10s\n", "aggregate")
	for _, s := range Schemes {
		fmt.Fprintf(&b, "  %-10s", s)
		for _, deg := range Degradations {
			fmt.Fprintf(&b, " %15.2f", r.Recall[s][deg])
		}
		fmt.Fprintf(&b, " %10.2f\n", r.Aggregate[s])
	}
	return b.String()
}
