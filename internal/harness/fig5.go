package harness

import (
	"fmt"
	"strings"

	"murphy/internal/evalx"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// Fig5Options parameterizes the performance-interference experiment (§6.1).
type Fig5Options struct {
	// Variants is the number of interference scenarios (the paper uses 32,
	// varying the aggressor's request rate).
	Variants int
	// Steps is the emulation length per variant.
	Steps int
	// Samples is Murphy's Monte-Carlo sample count.
	Samples int
	// TrainWindow is the online-training window in slices.
	TrainWindow int
	// Ks are the top-K cutoffs of the Fig 5c curve.
	Ks []int
	// Seed drives scenario generation.
	Seed int64
}

// DefaultFig5Options returns a fast configuration with the paper's shape.
func DefaultFig5Options() Fig5Options {
	return Fig5Options{Variants: 32, Steps: 280, Samples: 400, TrainWindow: 260, Ks: []int{1, 2, 4, 5, 8, 10}, Seed: 1}
}

// Fig5Result carries the Fig 5c curve and the Fig 5d bars.
type Fig5Result struct {
	Opts Fig5Options
	// TopK[scheme][k] is top-K recall (Fig 5c).
	TopK map[string]map[int]float64
	// Recall and Precision at K=5, plus the relaxed variants (Fig 5d).
	Recall, Precision, RelaxedRecall, RelaxedPrecision map[string]float64
}

// RunFig5 generates the interference variants and scores every scheme.
func RunFig5(opts Fig5Options) (*Fig5Result, error) {
	if opts.Variants <= 0 {
		return nil, fmt.Errorf("harness: need at least one variant")
	}
	cfg := murphyConfig(opts.Samples, opts.TrainWindow)
	res := &Fig5Result{
		Opts:             opts,
		TopK:             map[string]map[int]float64{},
		Recall:           map[string]float64{},
		Precision:        map[string]float64{},
		RelaxedRecall:    map[string]float64{},
		RelaxedPrecision: map[string]float64{},
	}
	rankings := map[string][][]telemetry.EntityID{}
	var strictAccepts, relaxedAccepts []map[telemetry.EntityID]bool
	for v := 0; v < opts.Variants; v++ {
		iOpts := microsim.DefaultInterferenceOptions()
		iOpts.Steps = opts.Steps
		iOpts.Seed = opts.Seed + int64(v)
		// Sweep the aggressor rate across variants as the paper does.
		iOpts.AggressorSpikeRPS = 800 + float64(v%8)*150
		sc, err := microsim.Interference(iOpts)
		if err != nil {
			return nil, err
		}
		rs, err := schemeRankings(sc, cfg)
		if err != nil {
			return nil, err
		}
		// Strict truth: the aggressor client or its flow (the same physical
		// cause seen through either entity).
		strict := evalx.AcceptSet([]telemetry.EntityID{sc.TruthEntity, sc.Result.FlowEntity["clientA"]})
		relaxed := evalx.AcceptSet([]telemetry.EntityID{sc.TruthEntity}, sc.Acceptable)
		strictAccepts = append(strictAccepts, strict)
		relaxedAccepts = append(relaxedAccepts, relaxed)
		for _, s := range Schemes {
			rankings[s] = append(rankings[s], rs[s])
		}
	}
	for _, s := range Schemes {
		curve := map[int]float64{}
		for _, k := range opts.Ks {
			curve[k] = evalx.TopKRecall(rankings[s], strictAccepts, k)
		}
		res.TopK[s] = curve
		res.Recall[s] = evalx.TopKRecall(rankings[s], strictAccepts, 5)
		res.Precision[s] = evalx.MeanPrecision(rankings[s], strictAccepts)
		res.RelaxedRecall[s] = evalx.TopKRecall(rankings[s], relaxedAccepts, 5)
		res.RelaxedPrecision[s] = evalx.MeanPrecision(rankings[s], relaxedAccepts)
	}
	return res, nil
}

// String prints the Fig 5c curves and Fig 5d bars.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5c — Top-K accuracy, performance interference (%d variants)\n", r.Opts.Variants)
	for _, s := range Schemes {
		fmt.Fprintf(&b, "  %-10s %s\n", s, fmtCurve(r.TopK[s]))
	}
	b.WriteString("Fig 5d — precision/recall at K=5 (strict | relaxed)\n")
	for _, s := range Schemes {
		fmt.Fprintf(&b, "  %-10s recall %.2f  precision %.2f  | relaxed recall %.2f  relaxed precision %.2f\n",
			s, r.Recall[s], r.Precision[s], r.RelaxedRecall[s], r.RelaxedPrecision[s])
	}
	return b.String()
}
