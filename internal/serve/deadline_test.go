package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDeadlinePropagation is the degradation table for per-request deadline
// propagation: a client deadline shorter than the online-training time must
// come back promptly as an annotated partial-result report (never a hang,
// never a zero-value report), while a generous deadline yields a clean full
// report through the very same path.
func TestDeadlinePropagation(t *testing.T) {
	cases := []struct {
		name string
		// deadlineMs is the client deadline; readDelay slows every training
		// read so the training phase costs well over the short deadlines.
		deadlineMs   int
		readDelay    time.Duration
		wantErr      string // substring of the record's error annotation
		wantPartial  bool
		wantWatchdog bool
	}{
		{
			name:        "deadline expires during training",
			deadlineMs:  30,
			readDelay:   25 * time.Millisecond,
			wantErr:     "training",
			wantPartial: true,
		},
		{
			name:       "generous deadline completes fully",
			deadlineMs: 60000,
			readDelay:  0,
		},
		{
			name:         "unbounded request is capped by the watchdog",
			deadlineMs:   0, // server default (set high below) > watchdog
			readDelay:    50 * time.Millisecond,
			wantErr:      "watchdog",
			wantPartial:  true,
			wantWatchdog: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := newTestScenario(t)
			mutate := func(c *Config) {
				c.DefaultDeadline = time.Minute
				if tc.wantWatchdog {
					c.WatchdogTimeout = 20 * time.Millisecond
				}
			}
			var srv *Server
			if tc.readDelay > 0 {
				srv = newTestServer(t, sc, mutate, withSlowReads(sc.Result.DB, tc.readDelay))
			} else {
				srv = newTestServer(t, sc, mutate)
			}
			srv.Start()
			mux := srv.Mux()

			done := make(chan *ReportRecord, 1)
			go func() {
				w := post(t, mux, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom, DeadlineMs: tc.deadlineMs})
				if w.Code != http.StatusOK {
					t.Errorf("/diagnose = %d: %s", w.Code, w.Body.String())
					done <- nil
					return
				}
				var rec ReportRecord
				if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
					t.Error(err)
					done <- nil
					return
				}
				done <- &rec
			}()

			var rec *ReportRecord
			select {
			case rec = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("diagnosis hung: the deadline did not propagate")
			}
			if rec == nil {
				return // the goroutine already reported the failure
			}
			// Never a zero-value report, whatever the outcome.
			if rec.Report == nil || rec.Report.SchemaVersion == 0 {
				t.Fatalf("zero-value or missing report: %+v", rec)
			}
			if rec.Report.Symptom != sc.Symptom {
				t.Fatalf("report symptom = %v, want %v", rec.Report.Symptom, sc.Symptom)
			}
			if tc.wantErr == "" {
				if rec.Err != "" {
					t.Fatalf("unexpected error annotation: %q", rec.Err)
				}
				if rec.Report.Partial {
					t.Fatalf("generous deadline produced a partial report: %+v", rec.Report)
				}
				return
			}
			if !strings.Contains(rec.Err, tc.wantErr) {
				t.Fatalf("error annotation %q does not mention %q", rec.Err, tc.wantErr)
			}
			if rec.Report.Partial != tc.wantPartial {
				t.Fatalf("partial = %v, want %v", rec.Report.Partial, tc.wantPartial)
			}
			if tc.wantPartial {
				if len(rec.Report.Skipped) == 0 || !strings.Contains(rec.Report.Skipped[0].Reason, tc.wantErr) {
					t.Fatalf("partial report's Skipped does not carry the annotation: %+v", rec.Report.Skipped)
				}
			}
			if rec.Watchdog != tc.wantWatchdog {
				t.Fatalf("watchdog = %v, want %v", rec.Watchdog, tc.wantWatchdog)
			}
		})
	}
}
