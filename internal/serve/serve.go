// Package serve turns the one-shot diagnosis library into an always-on
// daemon: an HTTP/JSON ingest path that appends telemetry batches into the
// MonitoringDB as windows slide, a continuous symptom detector driving
// internal/anomaly over fresh windows, and a bounded diagnosis work queue
// feeding the facade's diagnosis entry points — plus the robustness
// machinery that makes the service production-shaped:
//
//   - Admission control and load shedding: the diagnosis queue and the
//     ingest path are bounded; overload answers 429/503 with Retry-After
//     instead of growing memory without bound.
//   - Per-request deadline propagation: a client deadline travels through
//     context into DiagnoseContext, so an expiring request yields a partial
//     report (certified causes kept, the rest flagged), never a hang.
//   - A watchdog that cancels diagnoses exceeding the stuck budget and
//     quarantines their symptom so the detector stops re-enqueueing it.
//   - Graceful drain on SIGTERM: stop admitting, finish in-flight work,
//     flush reports and a final state snapshot, then exit cleanly.
//   - Crash-safe periodic snapshots (temp file + atomic rename) with
//     recovery-on-restart, bounding data loss to one snapshot interval.
//
// The package is exercised end to end by the chaos soak harness (RunSoak),
// which runs the daemon under internal/chaos fault injection and sustained
// overload and asserts the degradation ladder.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"murphy"
	"murphy/internal/anomaly"
	"murphy/internal/obs"
	"murphy/internal/reportstore"
	"murphy/internal/telemetry"
)

// ErrTrainingDeadline annotates a diagnosis whose deadline expired during
// online training: there was no model to answer with, so the report is a
// partial shell whose Skipped entry carries this annotation (mirroring the
// degrade package's ErrNoneSelected convention of naming the "nothing useful
// happened" outcome rather than faking a result).
var ErrTrainingDeadline = errors.New("serve: deadline expired during online training; partial report carries no certified causes")

// ErrDrainCancelled annotates work cut short because the daemon was asked to
// stop and the drain grace period ran out.
var ErrDrainCancelled = errors.New("serve: cancelled during drain")

// State is the daemon lifecycle automaton.
type State int32

// Lifecycle states, in order.
const (
	// StateStarting covers construction and snapshot recovery; not ready.
	StateStarting State = iota
	// StateReady serves ingest and diagnosis traffic.
	StateReady
	// StateDraining stops admitting new work while in-flight finishes.
	StateDraining
	// StateStopped is terminal: all workers and loops have exited.
	StateStopped
)

func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	}
	return "unknown"
}

// Config tunes the daemon. Zero fields fall back to defaults suited to the
// emulated environments; production deployments scale QueueCap and Workers.
type Config struct {
	// QueueCap bounds the diagnosis work queue (default 16). A full queue
	// sheds with 429 + Retry-After — the queue is the only place diagnosis
	// work waits, so memory stays bounded under any offered load.
	QueueCap int
	// Workers is the number of diagnosis workers draining the queue
	// (default 1).
	Workers int
	// MaxBatchPoints caps the observations accepted in one ingest batch
	// (default 10000; larger batches answer 413).
	MaxBatchPoints int
	// MaxConcurrentIngest is the admission limit on simultaneously applied
	// ingest batches (default 4; excess answers 429 + Retry-After).
	MaxConcurrentIngest int
	// DefaultDeadline bounds a diagnosis when the client names none
	// (default 30 s).
	DefaultDeadline time.Duration
	// WatchdogTimeout is the hard per-diagnosis budget (default 2 min). A
	// diagnosis cancelled by the watchdog quarantines its symptom for
	// QuarantineFor so the detector stops feeding a stuck case back in.
	WatchdogTimeout time.Duration
	// QuarantineFor is how long a watchdog-killed symptom is banned from
	// detector re-enqueue (default 5 min).
	QuarantineFor time.Duration
	// DetectEvery is the continuous symptom detector cadence (0 disables
	// the detector; API-driven diagnosis still works).
	DetectEvery time.Duration
	// DetectTopK caps the symptoms enqueued per detector scan (default 4).
	DetectTopK int
	// DetectCooldown suppresses detector re-diagnosis of a symptom already
	// reported recently (default 30 s).
	DetectCooldown time.Duration
	// SnapshotPath is the crash-safe state snapshot file ("" disables
	// persistence). Snapshots are written to a temp file and renamed into
	// place, so a crash mid-write never corrupts the previous snapshot.
	SnapshotPath string
	// SnapshotEvery is the periodic snapshot cadence (default 30 s when
	// SnapshotPath is set). A snapshot is also written on drain.
	SnapshotEvery time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight work before
	// force-cancelling it (default 30 s).
	DrainTimeout time.Duration
	// ReportBuffer is how many completed reports the in-memory ring keeps
	// for the query API (default 128). With ReportDir set the ring remains
	// as the snapshot-embedded hot cache; the persisted store is the query
	// source.
	ReportBuffer int
	// ReportDir, when set, persists every completed report to an append-only
	// crash-safe segment store under the directory; GET /reports then
	// searches the store (entity/app/cause/time-range, paginated) instead of
	// the ring, and a diagnosis is acknowledged to its client only after the
	// durable append. "" keeps the ring-only behavior.
	ReportDir string
	// ReportRetention caps the records the persisted store keeps (default
	// 10000); older records are compacted away. Ignored without ReportDir.
	ReportRetention int
	// MaxConcurrentReads is the admission limit on simultaneously served
	// read queries — topology, per-entity performance, report search
	// (default 16; excess answers 429 + Retry-After).
	MaxConcurrentReads int
	// Pprof exposes /debug/pprof on the daemon mux when true.
	Pprof bool
	// Recorder, when set, receives the daemon's counters (and, via
	// WithRecorder, the pipeline's); nil allocates a private one.
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxBatchPoints <= 0 {
		c.MaxBatchPoints = 10000
	}
	if c.MaxConcurrentIngest <= 0 {
		c.MaxConcurrentIngest = 4
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.WatchdogTimeout <= 0 {
		c.WatchdogTimeout = 2 * time.Minute
	}
	if c.QuarantineFor <= 0 {
		c.QuarantineFor = 5 * time.Minute
	}
	if c.DetectTopK <= 0 {
		c.DetectTopK = 4
	}
	if c.DetectCooldown <= 0 {
		c.DetectCooldown = 30 * time.Second
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ReportBuffer <= 0 {
		c.ReportBuffer = 128
	}
	if c.ReportRetention <= 0 {
		c.ReportRetention = 10000
	}
	if c.MaxConcurrentReads <= 0 {
		c.MaxConcurrentReads = 16
	}
	return c
}

// job is one unit of diagnosis work on the bounded queue.
type job struct {
	symptom  telemetry.Symptom
	deadline time.Duration
	source   string // "api" or "detector"
	// result, when non-nil, receives the completed record (buffered,
	// capacity 1, so a departed waiter never blocks the worker).
	result     chan *ReportRecord
	enqueuedAt time.Time
}

// ReportRecord is one completed (or failed) diagnosis as stored in the
// report ring and served by the query API.
type ReportRecord struct {
	// Seq is the monotonically increasing completion sequence number.
	Seq int `json:"seq"`
	// Source is "api" for client-requested diagnoses, "detector" for the
	// continuous symptom detector's.
	Source string `json:"source"`
	// Symptom is the diagnosed (entity, metric, direction) triple.
	Symptom telemetry.Symptom `json:"symptom"`
	// Report is the versioned diagnosis report. On failure it is a partial
	// shell (Partial=true, the failure annotated in Skipped), never nil
	// and never a zero value.
	Report *murphy.Report `json:"report,omitempty"`
	// Err is the failure annotation, empty on success.
	Err string `json:"error,omitempty"`
	// Watchdog marks a diagnosis the watchdog cancelled and quarantined.
	Watchdog bool `json:"watchdog,omitempty"`
	// QueuedMs and WallMs are time spent waiting in the queue and being
	// diagnosed, in milliseconds.
	QueuedMs float64 `json:"queued_ms"`
	WallMs   float64 `json:"wall_ms"`
	// CompletedAt is the completion wall-clock time (UTC); report search
	// time-range filters run against it. Zero on records recovered from
	// snapshots written before the field existed.
	CompletedAt time.Time `json:"completed_at"`
}

// Server is the always-on diagnosis daemon over one monitoring database.
type Server struct {
	cfg Config
	db  *telemetry.DB
	sys *murphy.System
	rec *obs.Recorder
	det *anomaly.Detector

	ctx    context.Context
	cancel context.CancelFunc

	state     atomic.Int32
	queue     chan *job
	ingestSem chan struct{}
	readSem   chan struct{}
	wg        sync.WaitGroup

	// store is the persisted report store (nil without Config.ReportDir).
	// Appends happen under mu so records land in seq order; queries go
	// straight to the store's own lock.
	store *reportstore.Store

	started time.Time

	mu          sync.Mutex
	seq         int
	reports     []*ReportRecord // ring, oldest first, ≤ cfg.ReportBuffer
	pending     map[telemetry.Symptom]bool
	quarantine  map[telemetry.Symptom]time.Time
	recent      map[telemetry.Symptom]time.Time
	inflight    int
	maxDepth    int
	ewmaMs      float64
	lastScanned int
	dirty       bool
	lastSnap    time.Time
}

// New builds a daemon over db. sysOpts customize the underlying diagnosis
// System (chaos/resilience sources, sampling parameters, …); the daemon
// prepends WithRecorder so pipeline and daemon counters share one recorder.
// Call Restore (optional) and then Start before serving the Mux.
func New(db *telemetry.DB, cfg Config, sysOpts ...murphy.Option) (*Server, error) {
	cfg = cfg.withDefaults()
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.New()
	}
	rec.Enable()
	opts := append([]murphy.Option{murphy.WithRecorder(rec)}, sysOpts...)
	sys, err := murphy.New(db, opts...)
	if err != nil {
		return nil, fmt.Errorf("serve: build diagnosis system: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		db:          db,
		sys:         sys,
		rec:         rec,
		det:         anomaly.NewDetector(),
		ctx:         ctx,
		cancel:      cancel,
		queue:       make(chan *job, cfg.QueueCap),
		ingestSem:   make(chan struct{}, cfg.MaxConcurrentIngest),
		readSem:     make(chan struct{}, cfg.MaxConcurrentReads),
		pending:     make(map[telemetry.Symptom]bool),
		quarantine:  make(map[telemetry.Symptom]time.Time),
		recent:      make(map[telemetry.Symptom]time.Time),
		lastScanned: -1,
	}
	if cfg.ReportDir != "" {
		store, err := reportstore.Open(cfg.ReportDir, reportstore.Options{MaxRecords: cfg.ReportRetention})
		if err != nil {
			cancel()
			return nil, fmt.Errorf("serve: open report store: %w", err)
		}
		s.store = store
		// Resume the completion sequence past everything already persisted;
		// Recover later raises it further if the snapshot is ahead.
		s.seq = int(store.LastSeq())
	}
	s.state.Store(int32(StateStarting))
	return s, nil
}

// ReportStore exposes the persisted report store (nil without
// Config.ReportDir); tests and the CLI use it to inspect durability.
func (s *Server) ReportStore() *reportstore.Store { return s.store }

// State returns the daemon's lifecycle state.
func (s *Server) State() State { return State(s.state.Load()) }

// System exposes the underlying diagnosis session (for tests and the CLI).
func (s *Server) System() *murphy.System { return s.sys }

// Start launches the diagnosis workers and the detector/snapshot loops and
// flips the daemon to ready.
func (s *Server) Start() {
	s.started = time.Now()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cfg.DetectEvery > 0 {
		s.wg.Add(1)
		go s.detectorLoop()
	}
	if s.cfg.SnapshotPath != "" {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	s.state.Store(int32(StateReady))
}

// enqueue admits a job onto the bounded queue. It reports whether the job
// was admitted and, when shed, the suggested Retry-After in seconds. The
// state check and the channel send share the server mutex so a drain that
// has flipped the state observes no enqueue in flight after it locks once.
func (s *Server) enqueue(j *job) (ok bool, retryAfter int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.State() != StateReady {
		s.rec.Add(obs.CtrDiagShed, 1)
		return false, s.retryAfterLocked()
	}
	select {
	case s.queue <- j:
		s.rec.Add(obs.CtrDiagEnqueued, 1)
		if d := len(s.queue); d > s.maxDepth {
			s.maxDepth = d
		}
		if j.source == "detector" {
			s.pending[j.symptom] = true
		}
		return true, 0
	default:
		s.rec.Add(obs.CtrDiagShed, 1)
		return false, s.retryAfterLocked()
	}
}

// retryAfterLocked estimates how long until queue capacity frees up, from
// the observed per-diagnosis latency EWMA. Callers hold s.mu.
func (s *Server) retryAfterLocked() int {
	per := s.ewmaMs
	if per <= 0 {
		per = 1000
	}
	backlog := len(s.queue) + s.inflight
	secs := int(math.Ceil(float64(backlog+1) * per / 1000 / float64(s.cfg.Workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// worker drains the diagnosis queue until the daemon context is cancelled.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one diagnosis under its deadline and the watchdog, then
// records the outcome.
func (s *Server) runJob(j *job) {
	s.rec.Add(obs.CtrDiagDequeued, 1)
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
	}()

	deadline := j.deadline
	watchdogBound := deadline <= 0 || deadline >= s.cfg.WatchdogTimeout
	if watchdogBound {
		// The watchdog is the hard ceiling: even an unbounded client
		// request cannot hold a worker past it.
		deadline = s.cfg.WatchdogTimeout
	}
	jctx, cancel := context.WithTimeout(s.ctx, deadline)
	start := time.Now()
	report, err := s.sys.DiagnoseContext(jctx, j.symptom)
	elapsed := time.Since(start)
	cancel()

	rec := &ReportRecord{
		Source:   j.source,
		Symptom:  j.symptom,
		Report:   report,
		QueuedMs: float64(start.Sub(j.enqueuedAt)) / float64(time.Millisecond),
		WallMs:   float64(elapsed) / float64(time.Millisecond),
	}
	if err != nil {
		// Never hand back a zero-value report: annotate the failure in a
		// partial shell so the query API and the waiting client both see
		// what happened and what (nothing) was certified.
		reason := err.Error()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			if watchdogBound {
				// The hard budget, not the client's deadline, fired:
				// quarantine the symptom so the detector stops feeding a
				// stuck case back into the queue.
				rec.Watchdog = true
				s.rec.Add(obs.CtrWatchdogCancels, 1)
				s.mu.Lock()
				s.quarantine[j.symptom] = time.Now().Add(s.cfg.QuarantineFor)
				s.mu.Unlock()
				reason = fmt.Sprintf("serve: watchdog cancelled diagnosis after %s (budget %s); symptom quarantined", elapsed.Round(time.Millisecond), s.cfg.WatchdogTimeout)
			} else {
				reason = fmt.Sprintf("%v (deadline %s)", ErrTrainingDeadline, deadline)
			}
		case errors.Is(err, context.Canceled):
			reason = ErrDrainCancelled.Error()
		}
		rec.Err = reason
		rec.Report = &murphy.Report{
			SchemaVersion: murphy.SchemaVersion,
			Symptom:       j.symptom,
			Partial:       true,
			Skipped:       []murphy.Skipped{{Entity: j.symptom.Entity, Reason: reason}},
		}
	}
	s.complete(j, rec, elapsed)
}

// complete stamps, stores, and delivers one finished record. With a persisted
// store configured the record is durably appended (fsync) before it is
// delivered to the waiting client — an HTTP 200 on /diagnose therefore
// implies the report survives kill -9.
func (s *Server) complete(j *job, rec *ReportRecord, elapsed time.Duration) {
	s.rec.Add(obs.CtrDiagCompleted, 1)
	s.mu.Lock()
	s.seq++
	rec.Seq = s.seq
	rec.CompletedAt = time.Now().UTC()
	s.reports = append(s.reports, rec)
	if len(s.reports) > s.cfg.ReportBuffer {
		s.reports = s.reports[len(s.reports)-s.cfg.ReportBuffer:]
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	if s.ewmaMs == 0 {
		s.ewmaMs = ms
	} else {
		s.ewmaMs = 0.8*s.ewmaMs + 0.2*ms
	}
	if j.source == "detector" {
		delete(s.pending, j.symptom)
		s.recent[j.symptom] = time.Now()
	}
	s.dirty = true
	if s.store != nil {
		// Persist under mu: seq assignment and the append share the lock, so
		// the segment stays in seq order across concurrent workers. The
		// fsync costs ~1ms — noise next to the diagnosis it concludes.
		if srec := s.storeRecord(rec); srec != nil {
			if _, err := s.store.Append(srec); err == nil {
				s.rec.Add(obs.CtrReportsPersisted, 1)
			}
			// An append error (disk full, store closed mid-shutdown) keeps
			// the report in the ring; the reports_persisted counter falling
			// behind diag_completed is the operator signal.
		}
	}
	s.mu.Unlock()
	if j.result != nil {
		j.result <- rec
	}
}

// storeRecord maps a completed record to its persisted form: the indexed
// search fields plus the full wire record as payload.
func (s *Server) storeRecord(rec *ReportRecord) *reportstore.Record {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil
	}
	srec := &reportstore.Record{
		Seq:     int64(rec.Seq),
		At:      rec.CompletedAt,
		Source:  rec.Source,
		Entity:  string(rec.Symptom.Entity),
		Metric:  rec.Symptom.Metric,
		Failed:  rec.Err != "",
		Payload: payload,
	}
	if ent := s.db.Entity(rec.Symptom.Entity); ent != nil {
		srec.App = ent.App
	}
	if rec.Report != nil {
		for _, c := range rec.Report.Causes {
			if c.Degraded {
				continue // certified causes only; guesses are not searchable
			}
			srec.Causes = append(srec.Causes, string(c.Entity))
		}
	}
	return srec
}

// detectorLoop scans fresh windows for problematic symptoms and feeds them
// into the diagnosis queue, respecting quarantine, in-flight dedupe, and the
// re-diagnosis cooldown. Queue-full sheds silently (counted): the detector
// will see the symptom again on the next scan if it persists.
func (s *Server) detectorLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.DetectEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		if s.State() != StateReady {
			continue
		}
		now := s.db.Len() - 1
		s.mu.Lock()
		fresh := now >= 0 && now != s.lastScanned
		if fresh {
			s.lastScanned = now
		}
		s.mu.Unlock()
		if !fresh {
			continue
		}
		scored := s.det.ScanAll(s.db, now)
		enq := 0
		for _, sc := range scored {
			if enq >= s.cfg.DetectTopK {
				break
			}
			if !s.admitDetected(sc.Symptom) {
				continue
			}
			ok, _ := s.enqueue(&job{
				symptom:    sc.Symptom,
				deadline:   s.cfg.DefaultDeadline,
				source:     "detector",
				enqueuedAt: time.Now(),
			})
			if ok {
				enq++
			}
		}
	}
}

// admitDetected filters detector candidates through quarantine, pending
// dedupe, and the recent-report cooldown.
func (s *Server) admitDetected(sym telemetry.Symptom) bool {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if until, ok := s.quarantine[sym]; ok {
		if now.Before(until) {
			return false
		}
		delete(s.quarantine, sym)
	}
	if s.pending[sym] {
		return false
	}
	if at, ok := s.recent[sym]; ok && now.Sub(at) < s.cfg.DetectCooldown {
		return false
	}
	return true
}

// Drain gracefully stops the daemon: admission turns off (ingest and
// diagnosis answer 503, readiness flips), queued and in-flight diagnoses
// finish within DrainTimeout (then are force-cancelled into partial
// reports), loops stop, and — when persistence is configured — a final
// state snapshot flushes the report ring to disk. It is idempotent; the
// daemon ends in StateStopped with every goroutine joined.
func (s *Server) Drain(ctx context.Context) error {
	if !s.state.CompareAndSwap(int32(StateReady), int32(StateDraining)) {
		if s.State() == StateStopped {
			return nil
		}
		// Starting or already draining: fall through to the stop path so
		// concurrent callers all block until the daemon is down.
	}
	// Barrier: any enqueue that won the state race completes its channel
	// send before releasing the mutex; after this lock no new work appears.
	s.mu.Lock()
	s.mu.Unlock() //nolint:staticcheck // intentional barrier, not a critical section

	var drainErr error
	limit := time.NewTimer(s.cfg.DrainTimeout)
	defer limit.Stop()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
wait:
	for {
		s.mu.Lock()
		idle := len(s.queue) == 0 && s.inflight == 0
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-tick.C:
		case <-limit.C:
			drainErr = fmt.Errorf("serve: drain timeout after %s: force-cancelling in-flight diagnoses", s.cfg.DrainTimeout)
			break wait
		case <-ctx.Done():
			drainErr = fmt.Errorf("serve: drain cancelled: %w", ctx.Err())
			break wait
		}
	}
	// Stop workers and loops. In the forced path this cancels in-flight
	// job contexts too; DiagnoseContext returns promptly with an error and
	// the worker records a drain-cancelled partial report before exiting.
	s.cancel()
	s.wg.Wait()
	// Answer any jobs still sitting in the queue so their waiters unblock.
	for {
		select {
		case j := <-s.queue:
			s.complete(j, &ReportRecord{
				Source:  j.source,
				Symptom: j.symptom,
				Err:     ErrDrainCancelled.Error(),
				Report: &murphy.Report{
					SchemaVersion: murphy.SchemaVersion,
					Symptom:       j.symptom,
					Partial:       true,
					Skipped:       []murphy.Skipped{{Entity: j.symptom.Entity, Reason: ErrDrainCancelled.Error()}},
				},
			}, 0)
		default:
			if s.cfg.SnapshotPath != "" {
				if err := s.WriteSnapshot(); err != nil && drainErr == nil {
					drainErr = fmt.Errorf("serve: final snapshot: %w", err)
				}
			}
			if s.store != nil {
				if err := s.store.Close(); err != nil && drainErr == nil {
					drainErr = fmt.Errorf("serve: close report store: %w", err)
				}
			}
			s.state.Store(int32(StateStopped))
			return drainErr
		}
	}
}

// Close force-stops the daemon without draining — the crash path (and test
// cleanup). Queued work is abandoned, no final snapshot is written; the
// latest periodic snapshot on disk is what a restart recovers.
func (s *Server) Close() {
	if s.State() == StateStopped {
		return
	}
	s.state.Store(int32(StateDraining))
	s.cancel()
	s.wg.Wait()
	// Unblock any API waiters on queued jobs.
	for {
		select {
		case j := <-s.queue:
			if j.result != nil {
				j.result <- &ReportRecord{Symptom: j.symptom, Err: ErrDrainCancelled.Error()}
			}
		default:
			if s.store != nil {
				// Every acknowledged report was already fsynced; closing just
				// releases the handle.
				_ = s.store.Close()
			}
			s.state.Store(int32(StateStopped))
			return
		}
	}
}

// status is the /statusz view of the daemon's live state.
type status struct {
	State        string  `json:"state"`
	UptimeS      float64 `json:"uptime_s"`
	QueueDepth   int     `json:"queue_depth"`
	QueueCap     int     `json:"queue_cap"`
	Inflight     int     `json:"inflight"`
	MaxDepth     int     `json:"max_queue_depth"`
	EwmaMs       float64 `json:"diagnosis_ewma_ms"`
	Seq          int     `json:"reports_completed"`
	Quarantined  int     `json:"quarantined"`
	LastScanned  int     `json:"last_scanned_slice"`
	DBSlices     int     `json:"db_slices"`
	LastSnapshot string  `json:"last_snapshot,omitempty"`
	Goroutines   int     `json:"goroutines"`
}
