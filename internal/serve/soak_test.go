package serve

import (
	"path/filepath"
	"testing"
	"time"
)

// TestChaosSoakLadder runs the full chaos soak drill at reduced duration and
// asserts the degradation ladder end to end: partial-result reports over
// failures, bounded queue depth, sheds with Retry-After, zero goroutine
// leaks, and readiness flipping correctly across drain.
func TestChaosSoakLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("soak drill skipped in -short mode")
	}
	opts := DefaultSoakOptions()
	opts.Duration = 1500 * time.Millisecond
	opts.Steps = 120
	opts.Samples = 120
	opts.TrainWindow = 80
	opts.SnapshotPath = filepath.Join(t.TempDir(), "state.json")

	res, err := RunSoak(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	for _, v := range res.Violations() {
		t.Errorf("degradation ladder violated: %s", v)
	}
	// Beyond the ladder: the drill must actually have exercised overload
	// (requests offered past capacity on both paths).
	if res.IngestOK == 0 {
		t.Error("no ingest batch was accepted")
	}
	if res.DiagnoseRequests < res.OfferedBurst {
		t.Errorf("drill offered only %d diagnoses, want at least one full burst of %d", res.DiagnoseRequests, res.OfferedBurst)
	}
	if res.ReadRequests < res.ReadBurst {
		t.Errorf("drill offered only %d reads, want at least one full burst of %d", res.ReadRequests, res.ReadBurst)
	}
	// And the periodic snapshot loop must have persisted state: a restart
	// can recover the database the drill built.
	db, restore, err := RecoverFromDisk(opts.SnapshotPath)
	if err != nil {
		t.Fatalf("post-soak recovery: %v", err)
	}
	if db == nil || restore == nil {
		t.Fatal("soak left no recoverable snapshot")
	}
	if db.Len() == 0 {
		t.Fatal("recovered snapshot has an empty telemetry grid")
	}
}
