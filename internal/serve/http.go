package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"murphy/internal/obs"
	"murphy/internal/telemetry"
)

// IngestBatch is the wire form of one POST /ingest payload: new entities and
// edges to register, metric observations, and configuration-change events.
// Observations default to the batch's Slice, and the batch Slice defaults to
// the next slice after the newest one in the database — so a steady stream
// of slice-less batches slides the window forward one slice per batch.
type IngestBatch struct {
	// Slice is the default time slice for the batch's observations
	// (nil = current newest slice + 1... see above).
	Slice *int `json:"slice,omitempty"`
	// Entities registers new entities; already-known IDs are skipped, not
	// errors, so agents may re-announce idempotently.
	Entities []IngestEntity `json:"entities,omitempty"`
	// Edges associates entity pairs (directed from→to).
	Edges [][2]telemetry.EntityID `json:"edges,omitempty"`
	// Observations are the metric points.
	Observations []IngestPoint `json:"observations,omitempty"`
	// Events are configuration-change events.
	Events []IngestEvent `json:"events,omitempty"`
}

// IngestEntity is the wire form of an entity registration.
type IngestEntity struct {
	ID   telemetry.EntityID   `json:"id"`
	Type telemetry.EntityType `json:"type"`
	Name string               `json:"name,omitempty"`
	App  string               `json:"app,omitempty"`
	Tier string               `json:"tier,omitempty"`
}

// IngestPoint is one metric observation.
type IngestPoint struct {
	Entity telemetry.EntityID `json:"entity"`
	Metric string             `json:"metric"`
	// Slice overrides the batch slice for this point when set.
	Slice *int    `json:"slice,omitempty"`
	Value float64 `json:"value"`
}

// IngestEvent is one configuration-change event.
type IngestEvent struct {
	Slice  *int                `json:"slice,omitempty"`
	Kind   telemetry.EventKind `json:"kind"`
	Entity telemetry.EntityID  `json:"entity"`
	Detail string              `json:"detail,omitempty"`
}

// IngestResult is the wire form of a successful /ingest response.
type IngestResult struct {
	Slice    int      `json:"slice"`
	Accepted int      `json:"accepted"`
	Rejected []string `json:"rejected,omitempty"`
	DBSlices int      `json:"db_slices"`
}

// DiagnoseRequest is the wire form of POST /diagnose.
type DiagnoseRequest struct {
	Symptom telemetry.Symptom `json:"symptom"`
	// DeadlineMs bounds the diagnosis; 0 means the server default. The
	// watchdog budget is a hard ceiling regardless.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_s,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// writeShed answers an overload shed: 429 (or 503 while draining) with a
// Retry-After header estimated from the observed diagnosis latency.
func (s *Server) writeShed(w http.ResponseWriter, retryAfter int, msg string) {
	code := http.StatusTooManyRequests
	if s.State() != StateReady {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, code, errorBody{Error: msg, RetryAfter: retryAfter})
}

// Mux returns the daemon's HTTP handler: the System's observability mux
// (/metrics, /stats, /debug/vars, optionally /debug/pprof) extended with the
// service surface — POST /ingest, POST /diagnose, the operator query surface
// (GET /reports, GET /topology, GET /entities/{ref}/performance), and the
// /healthz /readyz /statusz probes.
func (s *Server) Mux() *http.ServeMux {
	mux := s.sys.ObservabilityMux(s.cfg.Pprof)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/diagnose", s.handleDiagnose)
	mux.HandleFunc("/reports", s.handleReports)
	mux.HandleFunc("/topology", s.handleTopology)
	mux.HandleFunc("/entities/", s.handleEntityPerf)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	return mux
}

// handleIngest applies one telemetry batch under the ingest admission
// semaphore. Sheds (429/503 + Retry-After) when too many batches are already
// being applied or the daemon is not ready; rejects oversized batches with
// 413 rather than letting a single request balloon memory.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.State() != StateReady {
		s.rec.Add(obs.CtrIngestShed, 1)
		s.writeShed(w, 5, "daemon is "+s.State().String()+", not accepting telemetry")
		return
	}
	select {
	case s.ingestSem <- struct{}{}:
		defer func() { <-s.ingestSem }()
	default:
		s.rec.Add(obs.CtrIngestShed, 1)
		s.writeShed(w, 1, "ingest admission limit reached")
		return
	}
	var batch IngestBatch
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&batch); err != nil {
		writeErr(w, http.StatusBadRequest, "decode batch: "+err.Error())
		return
	}
	if n := len(batch.Observations); n > s.cfg.MaxBatchPoints {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch has %d observations, limit %d", n, s.cfg.MaxBatchPoints))
		return
	}
	res, err := s.applyBatch(&batch)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// applyBatch registers entities/edges and appends observations and events.
// Per-point failures (unknown entity, negative slice) are collected into
// Rejected rather than aborting the batch: telemetry is append-mostly and a
// stray point must not discard its siblings.
func (s *Server) applyBatch(batch *IngestBatch) (*IngestResult, error) {
	slice := 0
	if batch.Slice != nil {
		slice = *batch.Slice
		if slice < 0 {
			return nil, fmt.Errorf("negative batch slice %d", slice)
		}
	} else {
		slice = s.db.Len() // next slice after the newest
	}
	res := &IngestResult{Slice: slice}
	for _, e := range batch.Entities {
		if e.ID == "" {
			res.Rejected = append(res.Rejected, "entity with empty id")
			continue
		}
		if s.db.HasEntity(e.ID) {
			continue
		}
		ent := &telemetry.Entity{ID: e.ID, Type: e.Type, Name: e.Name, App: e.App, Tier: e.Tier}
		if err := s.db.AddEntity(ent); err != nil {
			res.Rejected = append(res.Rejected, err.Error())
		}
	}
	for _, ed := range batch.Edges {
		if err := s.db.Associate(ed[0], ed[1], telemetry.Directed); err != nil {
			res.Rejected = append(res.Rejected, err.Error())
		}
	}
	for _, p := range batch.Observations {
		t := slice
		if p.Slice != nil {
			t = *p.Slice
		}
		if t < 0 {
			res.Rejected = append(res.Rejected, fmt.Sprintf("%s/%s: negative slice %d", p.Entity, p.Metric, t))
			continue
		}
		if err := s.db.Observe(p.Entity, p.Metric, t, p.Value); err != nil {
			res.Rejected = append(res.Rejected, err.Error())
			continue
		}
		res.Accepted++
	}
	for _, ev := range batch.Events {
		t := slice
		if ev.Slice != nil {
			t = *ev.Slice
		}
		if err := s.db.RecordEvent(telemetry.Event{Slice: t, Kind: ev.Kind, Entity: ev.Entity, Detail: ev.Detail}); err != nil {
			res.Rejected = append(res.Rejected, err.Error())
		}
	}
	res.DBSlices = s.db.Len()
	s.rec.Add(obs.CtrIngestBatches, 1)
	s.rec.Add(obs.CtrIngestPoints, int64(res.Accepted))
	s.markDirty()
	return res, nil
}

// handleDiagnose runs one client-requested diagnosis through the bounded
// queue and waits for its report. The request deadline propagates into
// DiagnoseContext; queue-full sheds with 429 + Retry-After.
func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req DiagnoseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	if req.Symptom.Entity == "" || req.Symptom.Metric == "" {
		writeErr(w, http.StatusBadRequest, "symptom needs entity and metric")
		return
	}
	deadline := time.Duration(req.DeadlineMs) * time.Millisecond
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	j := &job{
		symptom:    req.Symptom,
		deadline:   deadline,
		source:     "api",
		result:     make(chan *ReportRecord, 1),
		enqueuedAt: time.Now(),
	}
	ok, retryAfter := s.enqueue(j)
	if !ok {
		s.writeShed(w, retryAfter, "diagnosis queue full")
		return
	}
	select {
	case rec := <-j.result:
		writeJSON(w, http.StatusOK, rec)
	case <-r.Context().Done():
		// The client went away; the worker still completes the job into the
		// report ring (the buffered result channel absorbs the record).
		writeErr(w, http.StatusRequestTimeout, "client cancelled while waiting for diagnosis")
	}
}

// handleHealthz is liveness: 200 while the process can answer at all, 503
// only once the daemon has fully stopped.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.State() == StateStopped {
		writeErr(w, http.StatusServiceUnavailable, "stopped")
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: 200 only while the daemon admits work, so a
// load balancer stops routing to a draining instance before SIGTERM kills
// it.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := s.State()
	if st != StateReady {
		writeErr(w, http.StatusServiceUnavailable, st.String())
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

// handleStatusz serves the live operational status.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// Status returns a point-in-time view of the daemon's operational state.
func (s *Server) Status() map[string]any {
	s.mu.Lock()
	st := status{
		State:       s.State().String(),
		QueueDepth:  len(s.queue),
		QueueCap:    s.cfg.QueueCap,
		Inflight:    s.inflight,
		MaxDepth:    s.maxDepth,
		EwmaMs:      s.ewmaMs,
		Seq:         s.seq,
		Quarantined: len(s.quarantine),
		LastScanned: s.lastScanned,
		Goroutines:  runtime.NumGoroutine(),
	}
	if !s.lastSnap.IsZero() {
		st.LastSnapshot = s.lastSnap.UTC().Format(time.RFC3339)
	}
	s.mu.Unlock()
	if !s.started.IsZero() {
		st.UptimeS = time.Since(s.started).Seconds()
	}
	st.DBSlices = s.db.Len()
	// Serve as a map so the schema stays open for additions without
	// breaking strict clients.
	buf, _ := json.Marshal(st)
	var m map[string]any
	_ = json.Unmarshal(buf, &m)
	return m
}
