package serve

import (
	"context"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM, for
// driving graceful shutdown: both murphyd and `murphy -listen` block on it,
// then drain. A second signal restores default handling, so a stuck drain
// can still be killed interactively.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// ShutdownHTTP gracefully shuts an HTTP server down within timeout, closing
// it hard if the grace period expires. Shared by murphyd and the murphy CLI's
// -listen mode so both drain identically.
func ShutdownHTTP(srv *http.Server, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
		return err
	}
	return nil
}
