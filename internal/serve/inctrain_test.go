package serve

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"murphy"
	"murphy/internal/obs"
)

// TestKillAndRestartWarmTraining: when the daemon trains incrementally, the
// factor store rides the crash-safe state snapshot, and the first diagnosis
// after a kill-and-restart performs ZERO full retrains — every factor is
// served from the recovered sufficient statistics, and the diagnosis itself
// is unchanged from the pre-crash one.
func TestKillAndRestartWarmTraining(t *testing.T) {
	sc := newTestScenario(t)
	state := filepath.Join(t.TempDir(), "state.json")

	// First life: anchor the factor store with one diagnosis, snapshot, then
	// crash (Close: no drain, no extra snapshot).
	srv1 := newTestServer(t, sc, func(c *Config) {
		c.SnapshotPath = state
	}, murphy.WithIncrementalTraining(murphy.IncrementalTraining{}))
	srv1.Start()
	w1 := post(t, srv1.Mux(), "/diagnose", DiagnoseRequest{Symptom: sc.Symptom})
	if w1.Code != http.StatusOK {
		t.Fatalf("pre-kill diagnose = %d: %s", w1.Code, w1.Body.String())
	}
	var rec1 ReportRecord
	if err := json.Unmarshal(w1.Body.Bytes(), &rec1); err != nil {
		t.Fatal(err)
	}
	st1, ok := srv1.System().FactorStoreStats()
	if !ok || st1.Refits == 0 || st1.Factors == 0 {
		t.Fatalf("first life should anchor the store: %+v (ok=%v)", st1, ok)
	}
	if err := srv1.WriteSnapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	srv1.Close() // crash

	// Second life: recover database + factor store from disk. A dedicated
	// recorder isolates the post-recovery training counters.
	db2, restore, err := RecoverFromDisk(state)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if db2 == nil {
		t.Fatal("recovery found no snapshot")
	}
	rec := obs.New()
	mcfg := murphy.DefaultConfig()
	mcfg.Samples = 150
	mcfg.TrainWindow = 80
	srv2, err := New(db2, Config{QueueCap: 4, Workers: 1, Recorder: rec},
		murphy.WithConfig(mcfg), murphy.WithSeeds(sc.Symptom.Entity),
		murphy.WithIncrementalTraining(murphy.IncrementalTraining{}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	restore(srv2)
	srv2.Start()

	w2 := post(t, srv2.Mux(), "/diagnose", DiagnoseRequest{Symptom: sc.Symptom})
	if w2.Code != http.StatusOK {
		t.Fatalf("post-recovery diagnose = %d: %s", w2.Code, w2.Body.String())
	}
	var rec2 ReportRecord
	if err := json.Unmarshal(w2.Body.Bytes(), &rec2); err != nil {
		t.Fatal(err)
	}

	// The acceptance gate: zero full retrains after recovery. Every factor
	// came out of the snapshot as a pure reuse hit.
	st2, ok := srv2.System().FactorStoreStats()
	if !ok {
		t.Fatal("recovered daemon should expose factor store stats")
	}
	if st2.Refits != 0 {
		t.Fatalf("post-recovery diagnosis performed %d full retrains, want 0: %+v", st2.Refits, st2)
	}
	if st2.Hits == 0 || st2.Hits != st1.Refits {
		t.Fatalf("post-recovery hits = %d, want one per anchored factor (%d): %+v",
			st2.Hits, st1.Refits, st2)
	}
	if got := rec.Snapshot().Counters["factors_trained"]; got != 0 {
		t.Fatalf("factors_trained = %d after recovery, want 0", got)
	}

	// And the warm diagnosis is the pre-crash diagnosis: same causes in the
	// same order with bit-identical scores.
	if len(rec2.Report.Causes) != len(rec1.Report.Causes) {
		t.Fatalf("post-recovery causes = %d, want %d", len(rec2.Report.Causes), len(rec1.Report.Causes))
	}
	for i := range rec1.Report.Causes {
		a, b := rec1.Report.Causes[i], rec2.Report.Causes[i]
		if a.Entity != b.Entity || a.Score != b.Score {
			t.Fatalf("cause %d diverged across restart: %+v vs %+v", i, a, b)
		}
	}
}

// TestSnapshotWithoutStoreOmitsFactorState: a daemon training full windows
// writes snapshots without a factor-store payload, and recovery of such a
// snapshot into an incremental daemon just cold-starts.
func TestSnapshotWithoutStoreOmitsFactorState(t *testing.T) {
	sc := newTestScenario(t)
	state := filepath.Join(t.TempDir(), "state.json")
	srv1 := newTestServer(t, sc, func(c *Config) {
		c.SnapshotPath = state
	})
	srv1.Start()
	if w := post(t, srv1.Mux(), "/diagnose", DiagnoseRequest{Symptom: sc.Symptom}); w.Code != http.StatusOK {
		t.Fatalf("diagnose = %d", w.Code)
	}
	if err := srv1.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	snap, db2, err := LoadSnapshot(state)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.FactorStore) != 0 {
		t.Fatalf("full-window daemon snapshot should carry no factor store (%d bytes)", len(snap.FactorStore))
	}

	// Recovery into an incremental daemon cold-starts cleanly.
	mcfg := murphy.DefaultConfig()
	mcfg.Samples = 150
	mcfg.TrainWindow = 80
	srv2, err := New(db2, Config{QueueCap: 4, Workers: 1},
		murphy.WithConfig(mcfg), murphy.WithSeeds(sc.Symptom.Entity),
		murphy.WithIncrementalTraining(murphy.IncrementalTraining{}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.Recover(snap)
	srv2.Start()
	if w := post(t, srv2.Mux(), "/diagnose", DiagnoseRequest{Symptom: sc.Symptom}); w.Code != http.StatusOK {
		t.Fatalf("cold-start diagnose = %d", w.Code)
	}
	if st, _ := srv2.System().FactorStoreStats(); st.Refits == 0 {
		t.Fatalf("cold start should anchor from scratch: %+v", st)
	}
}
