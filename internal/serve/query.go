// The daemon's operator query surface: GET /topology (relationship-graph
// neighborhoods), GET /entities/{ref}/performance (sliding-window summaries),
// and GET /reports (search over the persisted report store, or the in-memory
// ring when no store is configured). All three ride the same admission and
// drain lifecycle as the write path: a draining daemon answers 503, and a
// bounded read semaphore sheds excess concurrency with 429 + Retry-After
// instead of letting queries pile onto a busy daemon.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"murphy"
	"murphy/internal/obs"
	"murphy/internal/reportstore"
	"murphy/internal/telemetry"
)

// ReportPage is the wire form of a GET /reports response: one page of
// matching report records (each a full ReportRecord), ascending by seq, plus
// the cursor resuming the scan.
type ReportPage struct {
	Reports []json.RawMessage `json:"reports"`
	Count   int               `json:"count"`
	// NextCursor is the opaque token for the next page; absent when the scan
	// is exhausted.
	NextCursor string `json:"next_cursor,omitempty"`
}

// readAdmit is the read-path admission gate: 503 while not ready (draining
// daemons must shed their load balancer), 429 once MaxConcurrentReads queries
// are already in flight. On success the caller must invoke release.
func (s *Server) readAdmit(w http.ResponseWriter) (release func(), ok bool) {
	if s.State() != StateReady {
		s.rec.Add(obs.CtrReadShed, 1)
		s.writeShed(w, 1, "daemon is "+s.State().String()+", not serving queries")
		return nil, false
	}
	select {
	case s.readSem <- struct{}{}:
		return func() { <-s.readSem }, true
	default:
		s.rec.Add(obs.CtrReadShed, 1)
		s.writeShed(w, 1, "read admission limit reached")
		return nil, false
	}
}

// handleTopology serves GET /topology?entity=&depth=: the relationship-graph
// neighborhood around an entity, nodes typed by entity kind and annotated
// with whether they can influence the center. Oversized depths clamp to the
// facade maximum (echoed in the response); malformed parameters answer 400,
// unknown entities 404.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	release, ok := s.readAdmit(w)
	if !ok {
		return
	}
	defer release()
	q := r.URL.Query()
	entity := q.Get("entity")
	if entity == "" {
		writeErr(w, http.StatusBadRequest, "missing entity parameter")
		return
	}
	depth := 0
	if v := q.Get("depth"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad depth: want a non-negative integer")
			return
		}
		depth = n
	}
	top, err := s.sys.Topology(telemetry.EntityID(entity), depth)
	if err != nil {
		if errors.Is(err, murphy.ErrUnknownEntity) {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.rec.Add(obs.CtrTopologyQueries, 1)
	writeJSON(w, http.StatusOK, top)
}

// handleEntityPerf serves GET /entities/{ref}/performance?window=: per-metric
// sliding-window summaries (mean/p50/p95/p99, anomaly score, trained-factor
// residual health when incremental training is live). Entity refs contain
// slashes, so the ref is everything between the /entities/ prefix and the
// /performance suffix.
func (s *Server) handleEntityPerf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	release, ok := s.readAdmit(w)
	if !ok {
		return
	}
	defer release()
	rest := strings.TrimPrefix(r.URL.Path, "/entities/")
	ref, found := strings.CutSuffix(rest, "/performance")
	if !found {
		writeErr(w, http.StatusNotFound, "unknown resource: want /entities/{ref}/performance")
		return
	}
	if ref == "" {
		writeErr(w, http.StatusBadRequest, "missing entity ref")
		return
	}
	window := 0
	if v := r.URL.Query().Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad window: want a positive integer slice count")
			return
		}
		window = n
	}
	sum, err := s.sys.EntitySummary(telemetry.EntityID(ref), window)
	if err != nil {
		if errors.Is(err, murphy.ErrUnknownEntity) {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.rec.Add(obs.CtrPerfQueries, 1)
	writeJSON(w, http.StatusOK, sum)
}

// handleReports serves GET /reports: a paginated search over completed
// diagnosis reports by entity, app, certified cause, source, and completion
// time range. With Config.ReportDir the persisted store (surviving restarts
// and ring eviction) is the source; otherwise the in-memory ring answers with
// identical semantics. ?since= accepts either a sequence number (the legacy
// ring protocol) or an RFC3339 timestamp; anything else is a 400.
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	release, ok := s.readAdmit(w)
	if !ok {
		return
	}
	defer release()
	q, err := parseReportQuery(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	var page *ReportPage
	if s.store != nil {
		sp, err := s.store.Query(q)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "report store: "+err.Error())
			return
		}
		page = &ReportPage{NextCursor: sp.NextCursor}
		for _, rec := range sp.Records {
			payload := rec.Payload
			if len(payload) == 0 {
				// A record without an embedded wire payload (not produced by
				// this daemon) still serves its indexed fields.
				buf, err := json.Marshal(rec)
				if err != nil {
					continue
				}
				payload = buf
			}
			page.Reports = append(page.Reports, payload)
		}
	} else {
		page = s.ringQuery(q)
	}
	page.Count = len(page.Reports)
	s.rec.Add(obs.CtrReportQueries, 1)
	writeJSON(w, http.StatusOK, page)
}

// parseReportQuery validates a /reports query string into a store query.
// Unknown parameters are ignored (the schema stays open); malformed values of
// known parameters are errors, never silently defaulted.
func parseReportQuery(vals url.Values) (reportstore.Query, error) {
	var q reportstore.Query
	q.Entity = vals.Get("entity")
	q.App = vals.Get("app")
	q.Cause = vals.Get("cause")
	q.Source = vals.Get("source")
	if v := vals.Get("since"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			if n < 0 {
				return q, fmt.Errorf("bad since: negative sequence number %d", n)
			}
			q.SinceSeq = int64(n)
		} else if ts, terr := time.Parse(time.RFC3339, v); terr == nil {
			q.Since = ts
		} else {
			return q, fmt.Errorf("bad since: %q is neither a sequence number nor an RFC3339 timestamp", v)
		}
	}
	if v := vals.Get("until"); v != "" {
		ts, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return q, fmt.Errorf("bad until: %q is not an RFC3339 timestamp", v)
		}
		q.Until = ts
	}
	if !q.Since.IsZero() && !q.Until.IsZero() && q.Until.Before(q.Since) {
		return q, fmt.Errorf("bad time range: until %s precedes since %s", q.Until.Format(time.RFC3339), q.Since.Format(time.RFC3339))
	}
	if v := vals.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > reportstore.MaxLimit {
			return q, fmt.Errorf("bad limit: want an integer in [1, %d]", reportstore.MaxLimit)
		}
		q.Limit = n
	}
	if v := vals.Get("cursor"); v != "" {
		after, err := reportstore.ParseCursor(v)
		if err != nil {
			return q, fmt.Errorf("bad cursor: %v", err)
		}
		q.AfterSeq = after
	}
	return q, nil
}

// ringQuery answers a report search from the in-memory ring with the same
// filter and pagination semantics as the persisted store.
func (s *Server) ringQuery(q reportstore.Query) *ReportPage {
	s.mu.Lock()
	recs := append([]*ReportRecord(nil), s.reports...)
	s.mu.Unlock()
	limit := q.Limit
	if limit <= 0 {
		limit = reportstore.DefaultLimit
	}
	if limit > reportstore.MaxLimit {
		limit = reportstore.MaxLimit
	}
	after := q.AfterSeq
	if q.SinceSeq > after {
		after = q.SinceSeq
	}
	page := &ReportPage{}
	var lastSeq int64
	for _, rec := range recs {
		if int64(rec.Seq) <= after {
			continue
		}
		srec := s.storeRecord(rec)
		if srec == nil || !q.Matches(srec) {
			continue
		}
		if len(page.Reports) == limit {
			// A further match exists, so the page is full, not exhausted.
			page.NextCursor = reportstore.Cursor(lastSeq)
			return page
		}
		page.Reports = append(page.Reports, srec.Payload)
		lastSeq = srec.Seq
	}
	return page
}
