package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"murphy"
	"murphy/internal/reportstore"
	"murphy/internal/telemetry"
)

// TestQueryHTTPContract pins the operator query surface's HTTP contract:
// method and parameter validation answer 400/405, unknown entities 404, and
// a daemon that is not ready sheds every query with 503 + Retry-After.
func TestQueryHTTPContract(t *testing.T) {
	sc := newTestScenario(t)
	srv := newTestServer(t, sc, nil)
	srv.Start()
	mux := srv.Mux()
	ent := string(sc.Symptom.Entity)

	cases := []struct {
		name   string
		method string
		path   string
		want   int
	}{
		{"topology post", http.MethodPost, "/topology?entity=" + url.QueryEscape(ent), http.StatusMethodNotAllowed},
		{"topology no entity", http.MethodGet, "/topology", http.StatusBadRequest},
		{"topology bad depth", http.MethodGet, "/topology?entity=" + url.QueryEscape(ent) + "&depth=abc", http.StatusBadRequest},
		{"topology negative depth", http.MethodGet, "/topology?entity=" + url.QueryEscape(ent) + "&depth=-1", http.StatusBadRequest},
		{"topology unknown entity", http.MethodGet, "/topology?entity=ghost-entity", http.StatusNotFound},
		{"topology ok", http.MethodGet, "/topology?entity=" + url.QueryEscape(ent) + "&depth=1", http.StatusOK},
		{"perf post", http.MethodPost, "/entities/" + ent + "/performance", http.StatusMethodNotAllowed},
		{"perf no ref", http.MethodGet, "/entities/performance", http.StatusNotFound},
		{"perf wrong suffix", http.MethodGet, "/entities/" + ent + "/nonsense", http.StatusNotFound},
		{"perf unknown entity", http.MethodGet, "/entities/ghost-entity/performance", http.StatusNotFound},
		{"perf bad window", http.MethodGet, "/entities/" + ent + "/performance?window=abc", http.StatusBadRequest},
		{"perf zero window", http.MethodGet, "/entities/" + ent + "/performance?window=0", http.StatusBadRequest},
		{"perf ok", http.MethodGet, "/entities/" + ent + "/performance?window=32", http.StatusOK},
		{"reports post", http.MethodPost, "/reports", http.StatusMethodNotAllowed},
		{"reports since seq", http.MethodGet, "/reports?since=12", http.StatusOK},
		{"reports since rfc3339", http.MethodGet, "/reports?since=" + url.QueryEscape("2026-01-02T15:04:05Z"), http.StatusOK},
		{"reports since malformed", http.MethodGet, "/reports?since=yesterday-ish", http.StatusBadRequest},
		{"reports since negative", http.MethodGet, "/reports?since=-4", http.StatusBadRequest},
		{"reports until malformed", http.MethodGet, "/reports?until=not-a-time", http.StatusBadRequest},
		{"reports inverted range", http.MethodGet, "/reports?since=" + url.QueryEscape("2026-01-02T00:00:00Z") + "&until=" + url.QueryEscape("2026-01-01T00:00:00Z"), http.StatusBadRequest},
		{"reports zero limit", http.MethodGet, "/reports?limit=0", http.StatusBadRequest},
		{"reports oversized limit", http.MethodGet, fmt.Sprintf("/reports?limit=%d", reportstore.MaxLimit+1), http.StatusBadRequest},
		{"reports bad cursor", http.MethodGet, "/reports?cursor=%21%21not-base64%21%21", http.StatusBadRequest},
		{"reports ok", http.MethodGet, "/reports?entity=" + url.QueryEscape(ent) + "&limit=10", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var code int
			var body string
			if tc.method == http.MethodGet {
				w := get(mux, tc.path)
				code, body = w.Code, w.Body.String()
			} else {
				w := post(t, mux, tc.path, struct{}{})
				code, body = w.Code, w.Body.String()
			}
			if code != tc.want {
				t.Fatalf("%s %s = %d, want %d: %s", tc.method, tc.path, code, tc.want, body)
			}
			if tc.want >= 400 {
				var e errorBody
				if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
					t.Fatalf("error response is not the JSON envelope: %s", body)
				}
			}
		})
	}

	// The mux's path cleaning redirects "//" before a handler runs; the
	// empty-ref guard still answers 400 when the raw path reaches it (as it
	// does behind proxies that skip cleaning).
	rw := httptest.NewRecorder()
	srv.handleEntityPerf(rw, httptest.NewRequest(http.MethodGet, "/entities//performance", nil))
	if rw.Code != http.StatusBadRequest {
		t.Fatalf("empty ref = %d, want 400: %s", rw.Code, rw.Body.String())
	}

	// Oversized depth is a clamp, not an error: the response echoes the
	// effective depth.
	w := get(mux, "/topology?entity="+url.QueryEscape(ent)+"&depth=999")
	if w.Code != http.StatusOK {
		t.Fatalf("clamped depth = %d: %s", w.Code, w.Body.String())
	}
	var top murphy.Topology
	if err := json.Unmarshal(w.Body.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	if top.Depth != murphy.MaxTopologyDepth {
		t.Fatalf("depth 999 clamped to %d, want %d", top.Depth, murphy.MaxTopologyDepth)
	}
}

// TestQueryNotReadySheds503 pins the lifecycle contract: a daemon that is not
// ready (here: built but never started) sheds every read with 503 and a
// Retry-After hint rather than serving from a half-initialized state.
func TestQueryNotReadySheds503(t *testing.T) {
	sc := newTestScenario(t)
	srv := newTestServer(t, sc, nil) // no Start: StateStarting
	mux := srv.Mux()
	for _, path := range []string{
		"/topology?entity=" + url.QueryEscape(string(sc.Symptom.Entity)),
		"/entities/" + string(sc.Symptom.Entity) + "/performance",
		"/reports",
	} {
		w := get(mux, path)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s on a starting daemon = %d, want 503: %s", path, w.Code, w.Body.String())
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatalf("GET %s: 503 without Retry-After", path)
		}
	}
}

// TestQueryResponsesDecodeStrictly pins the JSON schema round trip: every
// response decodes into its Go wire type with unknown fields disallowed, so
// the handlers never emit fields the published types do not carry.
func TestQueryResponsesDecodeStrictly(t *testing.T) {
	sc := newTestScenario(t)
	srv := newTestServer(t, sc, nil)
	srv.Start()
	mux := srv.Mux()
	ent := string(sc.Symptom.Entity)

	if w := post(t, mux, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom}); w.Code != http.StatusOK {
		t.Fatalf("diagnose = %d: %s", w.Code, w.Body.String())
	}

	strict := func(t *testing.T, body []byte, v any) {
		t.Helper()
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			t.Fatalf("strict decode into %T: %v\n%s", v, err, body)
		}
	}

	w := get(mux, "/topology?entity="+url.QueryEscape(ent)+"&depth=2")
	var top murphy.Topology
	strict(t, w.Body.Bytes(), &top)
	if top.Center != telemetry.EntityID(ent) || len(top.Nodes) == 0 {
		t.Fatalf("topology response incomplete: %+v", top)
	}

	w = get(mux, "/entities/"+ent+"/performance?window=40")
	var sum murphy.EntitySummary
	strict(t, w.Body.Bytes(), &sum)
	if sum.Entity != telemetry.EntityID(ent) || len(sum.Metrics) == 0 {
		t.Fatalf("summary response incomplete: %+v", sum)
	}

	w = get(mux, "/reports?limit=10")
	var page ReportPage
	strict(t, w.Body.Bytes(), &page)
	if page.Count != 1 || len(page.Reports) != 1 {
		t.Fatalf("report page = %+v, want the one diagnosis", page)
	}
	var rec ReportRecord
	if err := json.Unmarshal(page.Reports[0], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Symptom != sc.Symptom || rec.Report == nil {
		t.Fatalf("persisted payload incomplete: %+v", rec)
	}
}

// TestKill9LosesNoAcknowledgedReport is the serve-level durability drill: a
// report acknowledged to the client survives an abrupt daemon death (Close
// without drain — the segment was fsynced before the ack), and the restarted
// daemon serves it from the store and continues the sequence after it.
func TestKill9LosesNoAcknowledgedReport(t *testing.T) {
	sc := newTestScenario(t)
	dir := t.TempDir()
	srv := newTestServer(t, sc, func(c *Config) { c.ReportDir = dir })
	srv.Start()
	mux := srv.Mux()

	w := post(t, mux, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom})
	if w.Code != http.StatusOK {
		t.Fatalf("diagnose = %d: %s", w.Code, w.Body.String())
	}
	var acked ReportRecord
	if err := json.Unmarshal(w.Body.Bytes(), &acked); err != nil {
		t.Fatal(err)
	}
	srv.Close() // kill -9: no drain, no final snapshot

	// Second life over the same report dir: the acknowledged report is
	// there, searchable, and new work continues the sequence after it.
	srv2 := newTestServer(t, sc, func(c *Config) { c.ReportDir = dir })
	srv2.Start()
	mux2 := srv2.Mux()

	w = get(mux2, "/reports?entity="+url.QueryEscape(string(sc.Symptom.Entity)))
	if w.Code != http.StatusOK {
		t.Fatalf("post-crash /reports = %d: %s", w.Code, w.Body.String())
	}
	ring := decodeReportPage(t, w.Body.Bytes())
	if len(ring) != 1 || ring[0].Seq != acked.Seq || ring[0].Symptom != sc.Symptom {
		t.Fatalf("acknowledged report lost across kill -9: got %+v, want seq %d", ring, acked.Seq)
	}

	w = post(t, mux2, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom})
	if w.Code != http.StatusOK {
		t.Fatalf("post-crash diagnose = %d: %s", w.Code, w.Body.String())
	}
	var rec2 ReportRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec2); err != nil {
		t.Fatal(err)
	}
	if rec2.Seq != acked.Seq+1 {
		t.Fatalf("post-crash seq = %d, want %d (continue, never reuse)", rec2.Seq, acked.Seq+1)
	}
	if got := decodeReportPage(t, get(mux2, "/reports").Body.Bytes()); len(got) != 2 {
		t.Fatalf("store holds %d reports after the second diagnosis, want 2", len(got))
	}
}

// TestReportsPaginatesPersistedStore walks a preloaded store through the HTTP
// surface with small pages and stable cursors: every record is seen exactly
// once, in seq order, and filters compose with pagination.
func TestReportsPaginatesPersistedStore(t *testing.T) {
	sc := newTestScenario(t)
	dir := t.TempDir()

	// Preload the store the daemon will adopt.
	st, err := reportstore.Open(dir, reportstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 57
	for i := 1; i <= n; i++ {
		rec := &reportstore.Record{
			At:      time.Unix(int64(1700000000+i), 0).UTC(),
			Entity:  fmt.Sprintf("svc-%d", i%3),
			App:     "shop",
			Payload: json.RawMessage(fmt.Sprintf(`{"seq":%d}`, i)),
		}
		if _, err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv := newTestServer(t, sc, func(c *Config) { c.ReportDir = dir })
	srv.Start()
	mux := srv.Mux()

	var seen []int64
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("cursor walk did not terminate")
		}
		path := "/reports?limit=10"
		if cursor != "" {
			path += "&cursor=" + url.QueryEscape(cursor)
		}
		w := get(mux, path)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, w.Code, w.Body.String())
		}
		var page ReportPage
		if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		for _, raw := range page.Reports {
			var p struct {
				Seq int64 `json:"seq"`
			}
			if err := json.Unmarshal(raw, &p); err != nil {
				t.Fatal(err)
			}
			seen = append(seen, p.Seq)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != n {
		t.Fatalf("cursor walk saw %d records, want %d", len(seen), n)
	}
	for i, seq := range seen {
		if seq != int64(i+1) {
			t.Fatalf("walk out of order at %d: seq %d", i, seq)
		}
	}

	// A filter composes with pagination: svc-1 owns every third record.
	w := get(mux, "/reports?entity=svc-1&limit=1000")
	filtered := decodeRawPage(t, w.Body.Bytes())
	if len(filtered) != n/3 {
		t.Fatalf("entity filter matched %d, want %d", len(filtered), n/3)
	}
}

// decodeRawPage unwraps a report page without decoding payloads.
func decodeRawPage(t *testing.T, body []byte) []json.RawMessage {
	t.Helper()
	var page ReportPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("decode page: %v\n%s", err, body)
	}
	return page.Reports
}

// TestQueryGoldenResponses locks the /topology and /entities/.../performance
// wire format against golden files on the microsim fixture, and pins the
// restart contract: a daemon recovered from the same snapshot serves
// byte-identical responses. Regenerate with UPDATE_GOLDEN=1.
func TestQueryGoldenResponses(t *testing.T) {
	sc := newTestScenario(t)
	state := filepath.Join(t.TempDir(), "state.json")
	srv := newTestServer(t, sc, func(c *Config) { c.SnapshotPath = state })
	srv.Start()
	mux := srv.Mux()
	ent := string(sc.Symptom.Entity)

	paths := map[string]string{
		"topology.golden":    "/topology?entity=" + url.QueryEscape(ent) + "&depth=2",
		"performance.golden": "/entities/" + ent + "/performance?window=48",
	}
	got := map[string][]byte{}
	for name, path := range paths {
		w := get(mux, path)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, w.Code, w.Body.String())
		}
		got[name] = w.Body.Bytes()
	}

	// Restart byte-identity: recover a second daemon from the snapshot and
	// re-issue the same queries.
	if err := srv.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	db2, restore, err := RecoverFromDisk(state)
	if err != nil || db2 == nil {
		t.Fatalf("recover: %v (db=%v)", err, db2 != nil)
	}
	mcfg := murphy.DefaultConfig()
	mcfg.Samples = 150
	mcfg.TrainWindow = 80
	srv2, err := New(db2, Config{QueueCap: 4, Workers: 1}, murphy.WithConfig(mcfg), murphy.WithSeeds(sc.Symptom.Entity))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	restore(srv2)
	srv2.Start()
	mux2 := srv2.Mux()
	for name, path := range paths {
		w := get(mux2, path)
		if w.Code != http.StatusOK {
			t.Fatalf("post-restart GET %s = %d: %s", path, w.Code, w.Body.String())
		}
		if string(w.Body.Bytes()) != string(got[name]) {
			t.Fatalf("%s drifted across a snapshot restart:\n--- first ---\n%s--- second ---\n%s", path, got[name], w.Body.Bytes())
		}
	}

	for name, body := range got {
		goldenPath := filepath.Join("testdata", name)
		if os.Getenv("UPDATE_GOLDEN") == "1" {
			if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath, body, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", goldenPath)
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
		}
		if string(body) != string(want) {
			t.Fatalf("%s drifted from golden:\n--- got ---\n%s--- want ---\n%s", name, body, want)
		}
	}
}

// FuzzReportQuery drives the /reports query-string parser with arbitrary
// input: it must never panic, and whatever it accepts must be internally
// consistent (limits in range, cursors round-trippable, time ranges ordered).
func FuzzReportQuery(f *testing.F) {
	seeds := []string{
		"",
		"entity=web&app=shop&limit=10",
		"since=42",
		"since=2026-01-02T15:04:05Z&until=2026-01-03T00:00:00Z",
		"since=yesterday",
		"limit=1001",
		"cursor=djE6MTIzNA",
		"cursor=%%%",
		"entity=a/b%2Fc&cause=disk&source=detector",
		"since=-1&until=not-a-time",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			return // not a query string; the router would never deliver it
		}
		q, err := parseReportQuery(vals)
		if err != nil {
			return // rejected input answers 400; nothing else to hold
		}
		if q.Limit < 0 || q.Limit > reportstore.MaxLimit {
			t.Fatalf("accepted limit %d out of range", q.Limit)
		}
		if q.SinceSeq < 0 || q.AfterSeq < 0 {
			t.Fatalf("accepted negative seq bounds: since=%d after=%d", q.SinceSeq, q.AfterSeq)
		}
		if !q.Since.IsZero() && !q.Until.IsZero() && q.Until.Before(q.Since) {
			t.Fatalf("accepted inverted time range %v..%v", q.Since, q.Until)
		}
		if v := vals.Get("cursor"); v != "" {
			// An accepted cursor re-encodes to the same sequence position.
			if reportstore.Cursor(q.AfterSeq) == "" {
				t.Fatal("accepted cursor lost its position")
			}
		}
	})
}
