package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"murphy/internal/obs"
	"murphy/internal/telemetry"
)

// snapshotVersion versions the daemon snapshot format; snapshots from a
// newer version are rejected rather than silently misread.
const snapshotVersion = 1

// quarantineEntry is the wire form of one quarantined symptom.
type quarantineEntry struct {
	Symptom telemetry.Symptom `json:"symptom"`
	Until   time.Time         `json:"until"`
}

// daemonSnapshot is the crash-safe on-disk state: the monitoring database
// (embedded in its own snapshot format), the report ring, the quarantine
// list, and — when the system trains incrementally — the factor store's
// sufficient statistics, so a restarted daemon resumes serving correct
// diagnoses for pre-crash symptoms without retraining a single factor.
type daemonSnapshot struct {
	Version    int               `json:"version"`
	SavedAt    time.Time         `json:"saved_at"`
	Seq        int               `json:"seq"`
	DB         json.RawMessage   `json:"db"`
	Reports    []*ReportRecord   `json:"reports,omitempty"`
	Quarantine []quarantineEntry `json:"quarantine,omitempty"`
	// FactorStore is the incremental trainer's serialized state (absent when
	// the daemon trains full windows). It is self-validating on adoption: a
	// restored store that disagrees with the restored database degrades to a
	// cold start, never to wrong factors.
	FactorStore json.RawMessage `json:"factor_store,omitempty"`
}

// markDirty notes that state changed since the last snapshot, so the
// periodic loop knows whether writing is worthwhile.
func (s *Server) markDirty() {
	s.mu.Lock()
	s.dirty = true
	s.mu.Unlock()
}

// WriteSnapshot writes the daemon state to Config.SnapshotPath via a temp
// file in the same directory and an atomic rename, so a crash mid-write
// leaves the previous snapshot intact. No-op when persistence is disabled.
func (s *Server) WriteSnapshot() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	var dbBuf bytes.Buffer
	if err := s.db.WriteJSON(&dbBuf); err != nil {
		return fmt.Errorf("serve: snapshot db: %w", err)
	}
	var storeBuf []byte
	if fs := s.sys.FactorStore(); fs != nil {
		data, err := fs.Snapshot()
		if err != nil {
			return fmt.Errorf("serve: snapshot factor store: %w", err)
		}
		storeBuf = data
	}
	s.mu.Lock()
	snap := daemonSnapshot{
		Version: snapshotVersion,
		SavedAt: time.Now().UTC(),
		Seq:     s.seq,
		DB:      json.RawMessage(dbBuf.Bytes()),
		Reports: append([]*ReportRecord(nil), s.reports...),
	}
	snap.FactorStore = storeBuf
	for sym, until := range s.quarantine {
		snap.Quarantine = append(snap.Quarantine, quarantineEntry{Symptom: sym, Until: until})
	}
	s.mu.Unlock()

	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := os.CreateTemp(dir, ".murphyd-snap-*")
	if err != nil {
		return fmt.Errorf("serve: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(&snap); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: encode snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		return fmt.Errorf("serve: publish snapshot: %w", err)
	}
	s.rec.Add(obs.CtrSnapshotsWritten, 1)
	s.mu.Lock()
	s.dirty = false
	s.lastSnap = time.Now()
	s.mu.Unlock()
	return nil
}

// LoadSnapshot reads a daemon snapshot file and reconstructs the monitoring
// database it embeds. Callers build the Server over the returned DB and then
// call Restore with the same snapshot to recover the rest of the state.
func LoadSnapshot(path string) (*daemonSnapshot, *telemetry.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var snap daemonSnapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("serve: decode snapshot %s: %w", path, err)
	}
	if snap.Version > snapshotVersion {
		return nil, nil, fmt.Errorf("serve: snapshot version %d is newer than supported %d", snap.Version, snapshotVersion)
	}
	if len(snap.DB) == 0 {
		return nil, nil, fmt.Errorf("serve: snapshot %s has no database", path)
	}
	db, err := telemetry.ReadJSON(bytes.NewReader(snap.DB))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: snapshot db: %w", err)
	}
	return &snap, db, nil
}

// Recover restores a daemon's serving state (report ring, sequence counter,
// unexpired quarantine, and — when the system trains incrementally — the
// factor store's staged statistics) from a snapshot previously read by
// LoadSnapshot. Call it after New, before Start.
func (s *Server) Recover(snap *daemonSnapshot) {
	if snap == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if snap.Seq > s.seq {
		// New already advanced seq past the persisted report store's last
		// record; only move forward, never rewind onto acknowledged seqs.
		s.seq = snap.Seq
	}
	s.reports = append([]*ReportRecord(nil), snap.Reports...)
	if len(s.reports) > s.cfg.ReportBuffer {
		s.reports = s.reports[len(s.reports)-s.cfg.ReportBuffer:]
	}
	for _, q := range snap.Quarantine {
		if q.Until.After(now) {
			s.quarantine[q.Symptom] = q.Until
		}
	}
	s.mu.Unlock()
	if len(snap.FactorStore) > 0 {
		if fs := s.sys.FactorStore(); fs != nil {
			// Stage the persisted sufficient statistics; the first training
			// pass validates them against the recovered database and either
			// warm-starts (zero full retrains) or silently falls back to a
			// cold anchoring pass. A decode failure takes the same fallback.
			_ = fs.RestoreSnapshot(snap.FactorStore)
		}
	}
	s.rec.Add(obs.CtrSnapshotsRecovered, 1)
}

// RecoverFromDisk is the boot-time convenience: when the snapshot file
// exists, it loads it and returns the embedded DB plus a restore function to
// call on the Server built over that DB; when the file does not exist it
// returns (nil, nil, nil) and the caller boots fresh.
func RecoverFromDisk(path string) (*telemetry.DB, func(*Server), error) {
	if path == "" {
		return nil, nil, nil
	}
	snap, db, err := LoadSnapshot(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	return db, func(s *Server) { s.Recover(snap) }, nil
}

// snapshotLoop writes a snapshot every SnapshotEvery while state is dirty.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		s.mu.Lock()
		dirty := s.dirty
		s.mu.Unlock()
		if !dirty {
			continue
		}
		if err := s.WriteSnapshot(); err != nil {
			// Persistence is best-effort resilience, not correctness: log
			// through the counter (snapshots_written stops advancing) and
			// keep serving; the next tick retries.
			continue
		}
	}
}
