package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"murphy"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// newTestScenario builds a small interference scenario (fast to train on).
func newTestScenario(t *testing.T) *microsim.Scenario {
	t.Helper()
	opts := microsim.DefaultInterferenceOptions()
	opts.Steps = 120
	sc, err := microsim.Interference(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// newTestServer boots a daemon over the scenario with fast algorithm
// parameters; mutate applies config overrides before New, sysOpts extend the
// System options (e.g. a slowed read path).
func newTestServer(t *testing.T, sc *microsim.Scenario, mutate func(*Config), sysOpts ...murphy.Option) *Server {
	t.Helper()
	cfg := Config{
		QueueCap:        4,
		Workers:         1,
		DefaultDeadline: 30 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	mcfg := murphy.DefaultConfig()
	mcfg.Samples = 150
	mcfg.TrainWindow = 80
	opts := append([]murphy.Option{
		murphy.WithConfig(mcfg),
		murphy.WithSeeds(sc.Symptom.Entity),
	}, sysOpts...)
	srv, err := New(sc.Result.DB, cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// slowSource delays every training-window read by delay (respecting context
// cancellation), so tests can hold diagnoses in flight long enough to
// observe queueing, draining, and watchdog behavior deterministically.
type slowSource struct {
	db    *telemetry.DB
	delay time.Duration
}

func (s slowSource) Len() int                                   { return s.db.Len() }
func (s slowSource) Entities() []telemetry.EntityID             { return s.db.Entities() }
func (s slowSource) MetricNames(id telemetry.EntityID) []string { return s.db.MetricNames(id) }

func (s slowSource) ReadRawWindow(ctx context.Context, id telemetry.EntityID, metric string, lo, hi int) ([]float64, error) {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return s.db.ReadRawWindow(ctx, id, metric, lo, hi)
}

// withSlowReads interposes slowSource on the daemon's diagnosis read path.
func withSlowReads(db *telemetry.DB, delay time.Duration) murphy.Option {
	return murphy.WithResilience(murphy.Resilience{Source: slowSource{db: db, delay: delay}})
}

func post(t *testing.T, h http.Handler, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// decodeReportPage unwraps a GET /reports envelope back into report records.
func decodeReportPage(t *testing.T, body []byte) []*ReportRecord {
	t.Helper()
	var page ReportPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("decode report page: %v\n%s", err, body)
	}
	if page.Count != len(page.Reports) {
		t.Fatalf("page count %d != %d reports", page.Count, len(page.Reports))
	}
	out := make([]*ReportRecord, 0, len(page.Reports))
	for _, raw := range page.Reports {
		rec := new(ReportRecord)
		if err := json.Unmarshal(raw, rec); err != nil {
			t.Fatalf("decode report payload: %v\n%s", err, raw)
		}
		out = append(out, rec)
	}
	return out
}

func TestIngestAppendsAndProbesReport(t *testing.T) {
	sc := newTestScenario(t)
	srv := newTestServer(t, sc, nil)
	srv.Start()
	mux := srv.Mux()

	if w := get(mux, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", w.Code)
	}
	if w := get(mux, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", w.Code)
	}

	db := sc.Result.DB
	before := db.Len()
	ent := db.Entities()[0]
	metric := db.MetricNames(ent)[0]
	batch := IngestBatch{
		Entities: []IngestEntity{{ID: "ingest-vm", Type: telemetry.TypeVM, Name: "ingest-vm", App: "soak"}},
		Edges:    [][2]telemetry.EntityID{{ent, "ingest-vm"}},
		Observations: []IngestPoint{
			{Entity: ent, Metric: metric, Value: 1.5},
			{Entity: "ingest-vm", Metric: telemetry.MetricCPU, Value: 0.9},
			{Entity: "no-such-entity", Metric: "cpu_util", Value: 1},
		},
		Events: []IngestEvent{{Kind: telemetry.EventConfigChanged, Entity: "ingest-vm", Detail: "spawned"}},
	}
	w := post(t, mux, "/ingest", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", w.Code, w.Body.String())
	}
	var res IngestResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Slice != before {
		t.Fatalf("batch slice = %d, want the next slice %d", res.Slice, before)
	}
	if res.Accepted != 2 {
		t.Fatalf("accepted = %d, want 2 (one point targets an unknown entity)", res.Accepted)
	}
	if len(res.Rejected) != 1 || !strings.Contains(res.Rejected[0], "no-such-entity") {
		t.Fatalf("rejected = %v, want exactly the unknown-entity point", res.Rejected)
	}
	if db.Len() != before+1 {
		t.Fatalf("db.Len() = %d after batch, want %d (window slid one slice)", db.Len(), before+1)
	}
	if !db.HasEntity("ingest-vm") {
		t.Fatal("ingest did not register the announced entity")
	}
	if evs := db.EventsFor("ingest-vm"); len(evs) != 1 || evs[0].Slice != before {
		t.Fatalf("events for ingest-vm = %v, want one at slice %d", evs, before)
	}
	if w := get(mux, "/statusz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"state": "ready"`) {
		t.Fatalf("/statusz = %d: %s", w.Code, w.Body.String())
	}
}

func TestDiagnoseShedsWithRetryAfterUnderOverload(t *testing.T) {
	sc := newTestScenario(t)
	srv := newTestServer(t, sc, func(c *Config) {
		c.QueueCap = 2
		c.Workers = 1
	}, withSlowReads(sc.Result.DB, 10*time.Millisecond))
	srv.Start()
	mux := srv.Mux()

	// Offer 4x the queue capacity at once: with one worker the surplus must
	// shed 429 with a Retry-After hint, and nothing may report a status
	// outside {200, 429}.
	const offered = 8
	codes := make([]int, offered)
	retryAfter := make([]string, offered)
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, mux, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom})
			codes[i] = w.Code
			retryAfter[i] = w.Header().Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("shed response %d missing Retry-After header", i)
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, code)
		}
	}
	if ok == 0 {
		t.Fatal("no request succeeded under overload")
	}
	if shed == 0 {
		t.Fatalf("no request shed: offered %d against queue cap 2 + 1 worker", offered)
	}
	if depth := srv.maxDepthSnapshot(); depth > 2 {
		t.Fatalf("queue depth reached %d, capacity is 2", depth)
	}
}

func TestDrainFinishesInflightAndFlipsReadiness(t *testing.T) {
	sc := newTestScenario(t)
	srv := newTestServer(t, sc, func(c *Config) {
		c.DrainTimeout = time.Minute
	}, withSlowReads(sc.Result.DB, 10*time.Millisecond))
	srv.Start()
	mux := srv.Mux()

	// Put one diagnosis in flight, then drain while it runs.
	type result struct {
		code int
		body []byte
	}
	resCh := make(chan result, 1)
	go func() {
		w := post(t, mux, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom})
		resCh <- result{w.Code, w.Body.Bytes()}
	}()
	// Wait until the worker picks the job up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		busy := srv.inflight > 0
		srv.mu.Unlock()
		if busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("diagnosis never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if srv.State() != StateStopped {
		t.Fatalf("state = %v after drain, want stopped", srv.State())
	}
	if w := get(mux, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d after drain, want 503", w.Code)
	}
	// The in-flight diagnosis finished with a real report, not a
	// cancellation shell.
	r := <-resCh
	if r.code != http.StatusOK {
		t.Fatalf("in-flight diagnosis = %d: %s", r.code, r.body)
	}
	var rec ReportRecord
	if err := json.Unmarshal(r.body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Report == nil || rec.Err != "" {
		t.Fatalf("in-flight diagnosis was cut short during graceful drain: %+v", rec)
	}
	// New work after drain sheds with 503.
	if w := post(t, mux, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain diagnose = %d, want 503", w.Code)
	}
	if w := post(t, mux, "/ingest", IngestBatch{}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain ingest = %d, want 503", w.Code)
	}
}

func TestKillAndRestartRecoversSnapshotAndDiagnosis(t *testing.T) {
	sc := newTestScenario(t)
	state := filepath.Join(t.TempDir(), "state.json")

	// First life: serve one diagnosis, snapshot, then crash (Close, no
	// drain, no final snapshot beyond the explicit one).
	srv1 := newTestServer(t, sc, func(c *Config) {
		c.SnapshotPath = state
	})
	srv1.Start()
	mux1 := srv1.Mux()
	w := post(t, mux1, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom})
	if w.Code != http.StatusOK {
		t.Fatalf("pre-kill diagnose = %d: %s", w.Code, w.Body.String())
	}
	preLen := sc.Result.DB.Len()
	if err := srv1.WriteSnapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	srv1.Close() // crash

	// Second life: recover from disk into a fresh DB and daemon.
	db2, restore, err := RecoverFromDisk(state)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if db2 == nil {
		t.Fatal("recovery found no snapshot")
	}
	if db2.Len() != preLen {
		t.Fatalf("recovered db has %d slices, want %d", db2.Len(), preLen)
	}
	mcfg := murphy.DefaultConfig()
	mcfg.Samples = 150
	mcfg.TrainWindow = 80
	srv2, err := New(db2, Config{QueueCap: 4, Workers: 1},
		murphy.WithConfig(mcfg), murphy.WithSeeds(sc.Symptom.Entity))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	restore(srv2)
	srv2.Start()
	mux2 := srv2.Mux()

	// The pre-kill report survived into the ring with its sequence number.
	rw := get(mux2, "/reports")
	ring := decodeReportPage(t, rw.Body.Bytes())
	if len(ring) != 1 || ring[0].Seq != 1 || ring[0].Symptom != sc.Symptom {
		t.Fatalf("recovered report ring = %v, want the single pre-kill report", ring)
	}

	// And the recovered daemon serves a correct diagnosis for the pre-kill
	// symptom: the planted cause (or an acceptable alternative) ranks in
	// the top 3.
	w2 := post(t, mux2, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom})
	if w2.Code != http.StatusOK {
		t.Fatalf("post-recovery diagnose = %d: %s", w2.Code, w2.Body.String())
	}
	var rec ReportRecord
	if err := json.Unmarshal(w2.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Report == nil {
		t.Fatal("post-recovery diagnosis returned no report")
	}
	if !rankedWithin(rec.Report, sc.TruthEntity, sc.Acceptable, 3) {
		got := make([]telemetry.EntityID, 0, 3)
		for _, c := range rec.Report.Top(3) {
			got = append(got, c.Entity)
		}
		t.Fatalf("post-recovery diagnosis ranked %v in top 3, want %v (or one of %v)",
			got, sc.TruthEntity, sc.Acceptable)
	}
	if rec.Seq != 2 {
		t.Fatalf("post-recovery report seq = %d, want 2 (sequence continues across restart)", rec.Seq)
	}
}

func TestWatchdogCancelsAndQuarantines(t *testing.T) {
	sc := newTestScenario(t)
	srv := newTestServer(t, sc, func(c *Config) {
		// A watchdog budget far below the diagnosis cost: the job must be
		// cancelled and its symptom quarantined.
		c.WatchdogTimeout = 20 * time.Millisecond
		c.QuarantineFor = time.Hour
	}, withSlowReads(sc.Result.DB, 50*time.Millisecond))
	srv.Start()
	mux := srv.Mux()

	w := post(t, mux, "/diagnose", DiagnoseRequest{Symptom: sc.Symptom, DeadlineMs: 60000})
	if w.Code != http.StatusOK {
		t.Fatalf("/diagnose = %d: %s", w.Code, w.Body.String())
	}
	var rec ReportRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.Watchdog {
		t.Fatalf("record not flagged as watchdog-cancelled: %+v", rec)
	}
	if rec.Report == nil || !rec.Report.Partial || len(rec.Report.Skipped) == 0 {
		t.Fatalf("watchdog cancellation must yield an annotated partial report, got %+v", rec.Report)
	}
	if !strings.Contains(rec.Err, "watchdog") {
		t.Fatalf("error annotation %q does not name the watchdog", rec.Err)
	}
	srv.mu.Lock()
	_, quarantined := srv.quarantine[sc.Symptom]
	srv.mu.Unlock()
	if !quarantined {
		t.Fatal("watchdog-cancelled symptom not quarantined")
	}
	if srv.admitDetected(sc.Symptom) {
		t.Fatal("detector admission must refuse a quarantined symptom")
	}
	other := telemetry.Symptom{Entity: "someone-else", Metric: "cpu_util", High: true}
	if !srv.admitDetected(other) {
		t.Fatal("quarantine must be per-symptom, not global")
	}
}

func TestDetectorEnqueuesFreshSymptoms(t *testing.T) {
	sc := newTestScenario(t)
	srv := newTestServer(t, sc, func(c *Config) {
		c.DetectEvery = 10 * time.Millisecond
		c.DetectTopK = 2
	})
	srv.Start()
	mux := srv.Mux()

	// Slide the window with a blatantly anomalous value on one entity so
	// ScanAll flags it; the detector must pick it up and diagnose it.
	db := sc.Result.DB
	ent := db.Entities()[0]
	metric := db.MetricNames(ent)[0]
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		batch := IngestBatch{Observations: []IngestPoint{{Entity: ent, Metric: metric, Value: 1e6}}}
		if w := post(t, mux, "/ingest", batch); w.Code != http.StatusOK && w.Code != http.StatusTooManyRequests {
			t.Fatalf("/ingest = %d: %s", w.Code, w.Body.String())
		}
		rw := get(mux, "/reports")
		for _, rec := range decodeReportPage(t, rw.Body.Bytes()) {
			if rec.Source == "detector" {
				if rec.Report == nil {
					t.Fatalf("detector diagnosis has no report: %+v", rec)
				}
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("continuous detector never diagnosed the planted anomaly")
}

func TestSnapshotRejectsNewerVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	snap := fmt.Sprintf(`{"version": %d, "db": {"interval_seconds": 60}}`, snapshotVersion+1)
	if err := os.WriteFile(path, []byte(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshot(path); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("LoadSnapshot on newer version: err = %v, want version rejection", err)
	}
}
